// Steady-state artifact and model retrieval (the paper's scenario 2):
// a history is built by an exploratory session, and then users ask HYPPO
// to re-derive previously computed artifacts — fitted models, transformed
// datasets, evaluation scores — at minimum cost. With a storage budget,
// most requests resolve to loads; without one, HYPPO still wins by
// planning through cheap equivalent derivations.

#include <cstdio>

#include "common/string_util.h"
#include "core/hyppo.h"
#include "workload/datagen.h"
#include "workload/pipeline_generator.h"

int main() {
  using namespace hyppo;
  using namespace hyppo::workload;

  const UseCase use_case = UseCase::Higgs();
  const double multiplier = 0.004;

  core::HyppoSystem::Options options;
  options.runtime.storage_budget_bytes = 2ll << 20;
  core::HyppoSystem system(options);
  auto data = GenerateUseCase(use_case, multiplier, 42);
  data.status().Abort("generate");
  system.RegisterDataset(use_case.DatasetId(multiplier), *data);

  // Build a history of eight exploratory pipelines.
  PipelineGenerator generator(use_case, multiplier, /*seed=*/11);
  for (int i = 0; i < 8; ++i) {
    auto pipeline = generator.Next();
    pipeline.status().Abort("generate pipeline");
    auto report = system.RunPipeline(*pipeline);
    report.status().Abort("run");
  }
  const core::History& history = system.runtime().history();
  std::printf("history: %d artifacts, %d tasks, %zu materialized\n\n",
              history.num_artifacts(), history.num_tasks(),
              history.MaterializedArtifacts().size());

  // Collect the fitted model states recorded in the history.
  std::vector<std::string> models;
  std::vector<std::string> labels;
  for (NodeId v = 1; v < history.graph().num_artifacts(); ++v) {
    const core::ArtifactInfo& info = history.graph().artifact(v);
    if (info.kind != core::ArtifactKind::kOpState) {
      continue;
    }
    if (info.display.find("SVM") != std::string::npos ||
        info.display.find("Forest") != std::string::npos ||
        info.display.find("Tree") != std::string::npos ||
        info.display.find("Logistic") != std::string::npos) {
      models.push_back(info.name);
      labels.push_back(info.display);
    }
  }
  std::printf("retrieving %zu fitted models recorded in the history:\n",
              models.size());
  for (size_t i = 0; i < models.size(); ++i) {
    auto report = system.RetrieveArtifacts({models[i]});
    report.status().Abort("retrieve");
    const bool loaded = report->tasks_executed == 1;
    std::printf("  %-36s %s via %d task(s)%s\n", labels[i].c_str(),
                FormatSeconds(report->execute_seconds).c_str(),
                report->tasks_executed,
                loaded ? " [materialized: direct load]" : "");
  }

  // A joint request: several models at once share their derivation prefix.
  if (models.size() >= 2) {
    std::vector<std::string> joint(models.begin(),
                                   models.begin() +
                                       std::min<size_t>(3, models.size()));
    auto report = system.RetrieveArtifacts(joint);
    report.status().Abort("joint retrieve");
    std::printf(
        "\njoint request of %zu models: %s via %d tasks "
        "(shared derivations planned once)\n",
        joint.size(), FormatSeconds(report->execute_seconds).c_str(),
        report->tasks_executed);
  }
  return 0;
}
