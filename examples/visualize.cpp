// Visualization: emits Graphviz DOT for the paper's Fig. 1 pipeline, its
// augmentation against a warmed-up history, and the chosen optimal plan.
// Pipe any of the sections into `dot -Tsvg` to render:
//
//   ./visualize pipeline | dot -Tsvg > pipeline.svg

#include <cstdio>
#include <cstring>

#include "core/hyppo.h"
#include "workload/datagen.h"

namespace {

constexpr char kCode[] = R"(
data        = load("viz", rows=2000, cols=8)
train, test = sk.TrainTestSplit.split(data)
imp         = sk.SimpleImputer.fit(train, strategy=mean)
train_i     = imp.transform(train)
test_i      = imp.transform(test)
scaler      = sk.StandardScaler.fit(train_i)
train_s     = scaler.transform(train_i)
test_s      = scaler.transform(test_i)
model       = sk.DecisionTreeClassifier.fit(train_s, max_depth=5)
preds       = model.predict(test_s)
score       = evaluate(preds, test_s, metric="accuracy")
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace hyppo;
  const std::string what = argc > 1 ? argv[1] : "all";

  core::HyppoSystem system;
  auto data = workload::GenerateHiggs(2000, 8, 42);
  data.status().Abort("generate");
  system.RegisterDataset("viz", *data);

  // Warm the history so the augmentation has something to splice.
  auto warmup = system.RunCode(kCode, "viz-warmup");
  warmup.status().Abort("warmup");

  auto pipeline = system.Parse(kCode, "viz");
  pipeline.status().Abort("parse");

  if (what == "pipeline" || what == "all") {
    std::printf("%s\n", pipeline->graph.ToDot("pipeline_P").c_str());
  }

  auto planned = system.method().PlanPipeline(*pipeline);
  planned.status().Abort("plan");
  if (what == "augmentation" || what == "all") {
    std::printf("%s\n", planned->aug.graph.ToDot("augmentation_A").c_str());
  }
  if (what == "plan" || what == "all") {
    // Render the plan as the sub-hypergraph it selects.
    core::PipelineGraph plan_graph;
    for (EdgeId e : planned->plan.edges) {
      std::vector<NodeId> tails;
      for (NodeId t : planned->aug.graph.ordered_tail(e)) {
        tails.push_back(t == planned->aug.graph.source()
                            ? plan_graph.source()
                            : plan_graph.GetOrAddArtifact(
                                  planned->aug.graph.artifact(t)));
      }
      std::vector<NodeId> heads;
      for (NodeId h : planned->aug.graph.ordered_head(e)) {
        heads.push_back(
            plan_graph.GetOrAddArtifact(planned->aug.graph.artifact(h)));
      }
      plan_graph.AddTask(planned->aug.graph.task(e), tails, heads)
          .status()
          .Abort("plan graph");
    }
    std::printf("%s\n", plan_graph.ToDot("optimal_plan").c_str());
  }
  std::fprintf(stderr,
               "pipeline: %d tasks | augmentation: %d tasks | plan: %zu "
               "tasks (cost %.3fs)\n",
               pipeline->graph.num_tasks(), planned->aug.graph.num_tasks(),
               planned->plan.edges.size(), planned->plan.cost);
  return 0;
}
