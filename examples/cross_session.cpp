// Across-experiments reuse (paper §I): in large organizations multiple
// data scientists work on the same data. Session 1 explores, then saves
// its catalog (history + materialized artifacts) to disk. Session 2 — a
// different process, a different user — loads the catalog and submits its
// own pipeline: artifacts computed by session 1 come back from storage,
// and session 1's recorded derivations serve as equivalent alternatives.

#include <cstdio>
#include <filesystem>

#include "common/string_util.h"
#include "core/hyppo.h"
#include "workload/datagen.h"

namespace {

constexpr char kSession1Code[] = R"(
data        = load("shared", rows=4000, cols=10)
train, test = sk.TrainTestSplit.split(data)
imp         = sk.SimpleImputer.fit(train, strategy=mean)
train_i     = imp.transform(train)
test_i      = imp.transform(test)
scaler      = sk.StandardScaler.fit(train_i)
train_s     = scaler.transform(train_i)
test_s      = scaler.transform(test_i)
model       = sk.RandomForestClassifier.fit(train_s, n_estimators=10, max_depth=6)
preds       = model.predict(test_s)
score       = evaluate(preds, test_s, metric="accuracy")
)";

// Session 2's analyst prefers TensorFlow-flavoured preprocessing and asks
// a different question (F1 instead of accuracy) — everything upstream is
// *equivalent* to session 1's work.
constexpr char kSession2Code[] = R"(
data        = load("shared", rows=4000, cols=10)
train, test = tf.TrainTestSplit.split(data)
imp         = tf.SimpleImputer.fit(train, strategy=mean)
train_i     = imp.transform(train)
test_i      = imp.transform(test)
scaler      = tf.StandardScaler.fit(train_i)
train_s     = scaler.transform(train_i)
test_s      = scaler.transform(test_i)
model       = sk.RandomForestClassifier.fit(train_s, n_estimators=10, max_depth=6)
preds       = model.predict(test_s)
f1          = evaluate(preds, test_s, metric="f1")
)";

}  // namespace

int main() {
  using hyppo::core::HyppoSystem;

  const std::string catalog_dir =
      (std::filesystem::temp_directory_path() / "hyppo_shared_catalog")
          .string();
  std::filesystem::remove_all(catalog_dir);
  auto dataset = hyppo::workload::GenerateHiggs(4000, 10, /*seed=*/42);
  dataset.status().Abort("generate");

  // ---- Session 1: explore and save the catalog.
  {
    HyppoSystem::Options options;
    options.runtime.storage_budget_bytes = 4ll << 20;
    HyppoSystem session(options);
    session.RegisterDataset("shared", *dataset);
    auto report = session.RunCode(kSession1Code, "alice-1");
    report.status().Abort("session 1");
    std::printf("session 1 (alice): %d tasks in %s\n",
                report->tasks_executed,
                hyppo::FormatSeconds(report->execute_seconds).c_str());
    session.runtime().SaveCatalog(catalog_dir).Abort("save catalog");
    std::printf("catalog saved to %s (%zu artifacts materialized)\n\n",
                catalog_dir.c_str(),
                session.runtime().store().num_entries());
  }

  // ---- Session 2: a fresh process loads the catalog and benefits.
  {
    HyppoSystem::Options options;
    options.runtime.storage_budget_bytes = 4ll << 20;
    HyppoSystem session(options);
    session.RegisterDataset("shared", *dataset);
    session.runtime().LoadCatalog(catalog_dir).Abort("load catalog");
    std::printf("session 2 (bob) loaded: %d artifacts, %d tasks in H\n",
                session.runtime().history().num_artifacts(),
                session.runtime().history().num_tasks());
    auto report = session.RunCode(kSession2Code, "bob-1");
    report.status().Abort("session 2");
    std::printf(
        "session 2 pipeline (tfl preprocessing, new metric): %d tasks in "
        "%s\n",
        report->tasks_executed,
        hyppo::FormatSeconds(report->execute_seconds).c_str());
    for (const auto& [name, payload] : report->target_payloads) {
      if (const double* value = std::get_if<double>(&payload)) {
        std::printf("  f1 = %.4f\n", *value);
      }
    }
    std::printf(
        "\nBob's tfl split/imputer/scaler were recognized as equivalent to\n"
        "Alice's skl ones; the model and transformed data came back from\n"
        "the shared catalog instead of being recomputed.\n");
  }
  std::filesystem::remove_all(catalog_dir);
  return 0;
}
