// TAXI exploration with ensembles: regression pipelines on the NYC-taxi
// stand-in, extended with the paper's "advanced analysis" workload —
// StackingRegressor/VotingRegressor ensembles that combine models trained
// in earlier iterations (scenario 3). Reusing the already-fitted base
// models is where equivalence-aware planning shines.

#include <cstdio>

#include "common/string_util.h"
#include "core/hyppo.h"
#include "workload/datagen.h"
#include "workload/pipeline_generator.h"

int main() {
  using namespace hyppo;
  using namespace hyppo::workload;

  const UseCase use_case = UseCase::Taxi();
  const double multiplier = 0.004;  // 4000 rows

  core::RuntimeOptions runtime_options;
  runtime_options.storage_budget_bytes = 4ll << 20;
  core::Runtime runtime(runtime_options);
  runtime.RegisterDatasetGenerator(
      use_case.DatasetId(multiplier), [&]() {
        return GenerateUseCase(use_case, multiplier, /*seed=*/42);
      });
  core::HyppoMethod hyppo(&runtime);
  PipelineGenerator generator(use_case, multiplier, /*seed=*/3);

  auto run = [&](const core::Pipeline& pipeline) {
    auto planned = hyppo.PlanPipeline(pipeline);
    planned.status().Abort("plan");
    auto record =
        runtime.ExecuteAndRecord(pipeline, planned->aug, planned->plan);
    record.status().Abort("execute");
    hyppo.AfterExecution(pipeline, *planned, *record).Abort("materialize");
    return std::make_pair(record->seconds, planned->plan.edges.size());
  };

  // Phase 1: six ordinary exploratory iterations train a pool of models.
  std::printf("phase 1: exploratory iterations\n");
  for (int i = 0; i < 6; ++i) {
    auto pipeline = generator.Next();
    pipeline.status().Abort("generate");
    auto [seconds, tasks] = run(*pipeline);
    std::printf("  iter %d: %-30s %s (%zu tasks)\n", i,
                generator.history_specs().back().model.Signature().substr(0, 30).c_str(),
                FormatSeconds(seconds).c_str(), tasks);
  }

  // Phase 2: ensembles over the trained models. The shared preprocessing
  // prefix and the base model fits come straight from the history.
  std::printf("\nphase 2: ensembles over past models\n");
  const PipelineSpec base = generator.history_specs().front();
  std::vector<StageSpec> models;
  for (const PipelineSpec& spec : generator.history_specs()) {
    bool duplicate = false;
    for (const StageSpec& m : models) {
      duplicate = duplicate || m.Signature() == spec.model.Signature();
    }
    if (!duplicate && spec.PrefixSignature() == base.PrefixSignature()) {
      models.push_back(spec.model);
    }
  }
  while (models.size() < 2) {
    models.push_back(generator.RandomModel());
  }
  for (const char* ensemble : {"VotingRegressor", "StackingRegressor"}) {
    auto pipeline = generator.BuildEnsemblePipeline(base, models, ensemble,
                                                    std::string("ens-") +
                                                        ensemble);
    pipeline.status().Abort("ensemble");
    auto [seconds, tasks] = run(*pipeline);
    std::printf("  %-18s over %zu base models: %s (%zu tasks)\n", ensemble,
                models.size(), FormatSeconds(seconds).c_str(), tasks);
  }

  std::printf("\nhistory: %d artifacts, %d tasks, %zu materialized\n",
              runtime.history().num_artifacts(),
              runtime.history().num_tasks(),
              runtime.history().MaterializedArtifacts().size());
  return 0;
}
