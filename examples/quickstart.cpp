// Quickstart: the paper's Fig. 1 walkthrough, end to end.
//
// A user submits the Fig. 1(a) pipeline twice (the second time with a
// TensorFlow-flavoured scaler — an *equivalent* task). HYPPO parses the
// code into a hypergraph, augments it against the history, searches for
// the minimum-cost plan, executes it, and materializes artifacts. The
// second run demonstrates both reuse (materialized split outputs) and
// equivalence (the tfl scaler's outputs are recognized as the skl
// scaler's).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "core/hyppo.h"
#include "serving/session_manager.h"
#include "workload/datagen.h"
#include "workload/sweep_generator.h"

namespace {

constexpr char kPipelineV1[] = R"(
# Fig. 1(a): scikit-learn flavoured exploratory pipeline
data        = load("higgs", rows=8000, cols=30)
train, test = sk.TrainTestSplit.split(data, test_size=0.25)
imputer     = sk.SimpleImputer.fit(train, strategy=mean)
train_i     = imputer.transform(train)
test_i      = imputer.transform(test)
scaler      = sk.StandardScaler.fit(train_i)
train_s     = scaler.transform(train_i)
test_s      = scaler.transform(test_i)
model       = sk.DecisionTreeClassifier.fit(train_s, max_depth=6)
preds       = model.predict(test_s)
score       = evaluate(preds, test_s, metric="accuracy")
)";

// Iteration 2: same logical pipeline, but the user switched the scaler to
// the TensorFlow implementation (t7 in the paper's Fig. 1) and deepened
// the tree. Everything up to the scaler is reusable; the scaler itself is
// *equivalent*, so its artifacts are too.
constexpr char kPipelineV2[] = R"(
data        = load("higgs", rows=8000, cols=30)
train, test = sk.TrainTestSplit.split(data, test_size=0.25)
imputer     = sk.SimpleImputer.fit(train, strategy=mean)
train_i     = imputer.transform(train)
test_i      = imputer.transform(test)
scaler      = tf.StandardScaler.fit(train_i)
train_s     = scaler.transform(train_i)
test_s      = scaler.transform(test_i)
model       = sk.DecisionTreeClassifier.fit(train_s, max_depth=8)
preds       = model.predict(test_s)
score       = evaluate(preds, test_s, metric="accuracy")
)";

void PrintReport(const char* label,
                 const hyppo::core::HyppoSystem::RunReport& report) {
  std::printf("%s\n", label);
  std::printf("  plan: %d tasks, estimated cost %s\n",
              report.tasks_executed,
              hyppo::FormatSeconds(report.plan.cost).c_str());
  std::printf("  executed in %s (pipeline as written: ~%s)\n",
              hyppo::FormatSeconds(report.execute_seconds).c_str(),
              hyppo::FormatSeconds(report.baseline_seconds).c_str());
  std::printf("  planning overhead: %s\n",
              hyppo::FormatSeconds(report.optimize_seconds).c_str());
  for (const auto& [name, payload] : report.target_payloads) {
    if (const double* value = std::get_if<double>(&payload)) {
      std::printf("  target %s = %.4f\n", name.substr(0, 8).c_str(), *value);
    }
  }
}

// Multi-tenant serving demo (--sessions N, N > 1): N concurrent client
// sessions share one runtime (history + store) through a
// serving::SessionManager. Every session submits both Fig. 1 iterations;
// whichever session materializes the shared prefix first serves everyone
// else's plans (cross-session reuse, docs/SERVING.md).
int RunServingDemo(const hyppo::core::HyppoSystem::Options& base,
                   int num_sessions) {
  namespace serving = hyppo::serving;
  serving::ServingOptions options;
  options.runtime = base.runtime;
  options.method = base.method;
  options.max_in_flight_sessions = num_sessions;
  serving::SessionManager manager(options);
  manager.session_status().Abort("open store");

  auto higgs = hyppo::workload::GenerateHiggs(8000, 30, /*seed=*/42);
  higgs.status().Abort("GenerateHiggs");
  manager.runtime().RegisterDataset("higgs", *higgs);

  std::vector<serving::SessionRequest> requests;
  for (int s = 0; s < num_sessions; ++s) {
    serving::SessionRequest request;
    request.session_id = "client-" + std::to_string(s);
    auto v1 = hyppo::core::ParsePipeline(
        kPipelineV1, "fig1-v1-s" + std::to_string(s),
        manager.runtime().dictionary());
    v1.status().Abort("parse v1");
    auto v2 = hyppo::core::ParsePipeline(
        kPipelineV2, "fig1-v2-s" + std::to_string(s),
        manager.runtime().dictionary());
    v2.status().Abort("parse v2");
    request.pipelines.push_back(*std::move(v1));
    request.pipelines.push_back(*std::move(v2));
    requests.push_back(std::move(request));
  }

  std::printf("serving %d concurrent sessions against one shared history\n",
              num_sessions);
  const auto reports = manager.RunSessions(requests);
  for (const auto& report : reports) {
    report.status.Abort(report.session_id.c_str());
    std::printf(
        "  %s: %d pipelines, exec %s, reuse loads %lld "
        "(%lld cross-session)\n",
        report.session_id.c_str(), report.pipelines_completed,
        hyppo::FormatSeconds(report.charged_seconds).c_str(),
        static_cast<long long>(report.reuse_loads),
        static_cast<long long>(report.cross_session_loads));
  }
  const serving::SessionManager::Stats stats = manager.stats();
  // Marker line for the CI serving check.
  std::printf(
      "served %lld sessions with %lld cross-session reuse loads\n",
      static_cast<long long>(stats.sessions_completed),
      static_cast<long long>(stats.cross_session_loads));
  std::printf("history: %d artifacts, %zu materialized\n",
              manager.runtime().history().num_artifacts(),
              manager.runtime().history().MaterializedArtifacts().size());
  return 0;
}

// Hyperparameter-sweep demo (--sweep N): the canonical model grid from
// workload::SweepGenerator::DemoSweep — one preprocessing trunk, N model
// configurations — planned and executed as one merged batch
// (HyppoSystem::RunBatch, docs/SWEEP.md). The shared trunk runs once;
// every later member's plan is seeded with it.
int RunSweepDemo(const hyppo::core::HyppoSystem::Options& base,
                 int num_configs) {
  namespace workload = hyppo::workload;
  constexpr double kScale = 0.005;  // ~400-row dataset: fast demo runs
  hyppo::core::HyppoSystem system(base);
  system.runtime().session_status().Abort("open store");

  const workload::UseCase use_case = workload::UseCase::Higgs();
  system.runtime().RegisterDatasetGenerator(
      use_case.DatasetId(kScale),
      [use_case]() { return workload::GenerateUseCase(use_case, kScale, 7); });

  workload::SweepGenerator generator(use_case, kScale, /*seed=*/11);
  auto sweep = generator.DemoSweep(num_configs, "quickstart-sweep");
  sweep.status().Abort("generate sweep");

  std::printf("sweeping %d model configurations over one shared trunk\n",
              num_configs);
  auto report = system.RunBatch(sweep->pipelines);
  report.status().Abort("run sweep batch");
  for (size_t m = 0; m < report->reports.size(); ++m) {
    const auto& member = report->reports[m];
    std::printf("  config %zu: %d tasks executed, exec %s\n", m,
                member.tasks_executed,
                hyppo::FormatSeconds(member.execute_seconds).c_str());
  }
  // Marker line for the CI sweep check.
  std::printf(
      "batch-planned %zu sweep configs with %lld merged tasks and "
      "%lld shared-prefix skips\n",
      report->reports.size(), static_cast<long long>(report->merged_tasks),
      static_cast<long long>(report->shared_prefix_skips));
  std::printf("plan overhead for the whole batch: %s\n",
              hyppo::FormatSeconds(report->optimize_seconds).c_str());
  return 0;
}

}  // namespace

// Usage: quickstart [--parallelism <n|auto>] [--store-dir <dir>]
//        [--sessions <n>] [--sweep <n>] [catalog-dir]
//
// --parallelism sets the worker-thread count for execution and for the
// optimizer's parallel plan search ("auto" = all hardware threads).
// --store-dir makes the session durable: materialized artifacts live in a
// disk-backed tiered store under <dir> and the history is checkpointed
// there, so running quickstart twice with the same --store-dir reuses the
// first run's artifacts across the process boundary. --sessions N (N > 1)
// switches to the multi-tenant serving demo: N concurrent sessions share
// one history/store and reuse each other's materializations. --sweep N
// switches to the hyperparameter-sweep demo: N model configurations over
// one shared preprocessing trunk, planned and executed as a single
// merged batch (docs/SWEEP.md). An optional
// positional argument names a directory to save the session's catalog
// into (history + materialized artifacts); `tools/hyppo_lint <dir>` can
// then verify the saved history's invariants.
int main(int argc, char** argv) {
  using hyppo::core::HyppoSystem;

  HyppoSystem::Options options;
  options.runtime.storage_budget_bytes = 8ll << 20;  // 8 MiB budget

  const char* catalog_dir = nullptr;
  int sessions = 1;
  int sweep_configs = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--parallelism") == 0 && i + 1 < argc) {
      const std::string value = argv[++i];
      options.runtime.parallelism =
          value == "auto" ? hyppo::core::RuntimeOptions::DefaultParallelism()
                          : std::atoi(value.c_str());
      if (options.runtime.parallelism < 1) {
        std::fprintf(stderr, "invalid --parallelism value '%s'\n",
                     value.c_str());
        return 1;
      }
    } else if (std::strcmp(argv[i], "--store-dir") == 0 && i + 1 < argc) {
      options.runtime.store_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--sessions") == 0 && i + 1 < argc) {
      sessions = std::atoi(argv[++i]);
      if (sessions < 1) {
        std::fprintf(stderr, "invalid --sessions value '%s'\n", argv[i]);
        return 1;
      }
    } else if (std::strcmp(argv[i], "--sweep") == 0 && i + 1 < argc) {
      sweep_configs = std::atoi(argv[++i]);
      if (sweep_configs < 2) {
        std::fprintf(stderr, "invalid --sweep value '%s' (need >= 2)\n",
                     argv[i]);
        return 1;
      }
    } else {
      catalog_dir = argv[i];
    }
  }

  if (sessions > 1) {
    return RunServingDemo(options, sessions);
  }
  if (sweep_configs > 0) {
    return RunSweepDemo(options, sweep_configs);
  }

  HyppoSystem system(options);
  system.runtime().session_status().Abort("open store");
  if (!options.runtime.store_dir.empty()) {
    const size_t restored =
        system.runtime().history().MaterializedArtifacts().size();
    if (restored > 0) {
      // Marker line for the CI persistence check: the second run finds
      // the first run's artifacts already on disk.
      std::printf("reopened store with %zu artifacts\n", restored);
    } else {
      std::printf("opened fresh store at %s\n",
                  options.runtime.store_dir.c_str());
    }
  }

  // Register the (synthetic) HIGGS dataset the pipelines load.
  auto higgs = hyppo::workload::GenerateHiggs(8000, 30, /*seed=*/42);
  higgs.status().Abort("GenerateHiggs");
  system.RegisterDataset("higgs", *higgs);

  auto report1 = system.RunCode(kPipelineV1, "fig1-v1");
  report1.status().Abort("run v1");
  PrintReport("iteration 1 (cold history):", *report1);

  auto report2 = system.RunCode(kPipelineV2, "fig1-v2");
  report2.status().Abort("run v2");
  PrintReport("\niteration 2 (reuse + equivalences):", *report2);

  std::printf("\nhistory: %d artifacts, %d tasks, %zu materialized\n",
              system.runtime().history().num_artifacts(),
              system.runtime().history().num_tasks(),
              system.runtime().history().MaterializedArtifacts().size());
  std::printf(
      "iteration 2 executed %d of its 11 tasks: the split and the imputer\n"
      "came back from storage, and the tfl scaler's artifacts were\n"
      "recognized as equivalent to the materialized skl ones.\n",
      report2->tasks_executed);
  if (catalog_dir != nullptr) {
    system.runtime().SaveCatalog(catalog_dir).Abort("save catalog");
    std::printf("catalog saved to %s\n", catalog_dir);
  }
  return 0;
}
