#include "common/thread_pool.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace hyppo {

namespace {

// Identifies the pool (if any) whose WorkerLoop is running on this thread,
// so Submit/Wait can apply the serial-when-nested fallback (see the class
// comment).
thread_local const ThreadPool* current_worker_pool = nullptr;

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  const int count = std::max(1, num_threads);
  workers_.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

bool ThreadPool::InWorkerThread() const {
  return current_worker_pool == this;
}

bool ThreadPool::InAnyPoolWorker() { return current_worker_pool != nullptr; }

void ThreadPool::Submit(std::function<void()> task) {
  if (InWorkerThread()) {
    task();  // serial-when-nested: see the class comment
    return;
  }
  {
    std::unique_lock<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  if (InWorkerThread()) {
    return;  // serial-when-nested: inline submissions already completed
  }
  std::unique_lock<std::mutex> lock(mutex_);
  all_idle_.wait(lock, [this]() { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  current_worker_pool = this;
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(
          lock, [this]() { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // shutting down
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (--in_flight_ == 0) {
        all_idle_.notify_all();
      }
    }
  }
}

}  // namespace hyppo
