#ifndef HYPPO_COMMON_RNG_H_
#define HYPPO_COMMON_RNG_H_

#include <cstdint>
#include <cmath>
#include <vector>

namespace hyppo {

/// \brief Deterministic xoshiro256** pseudo-random generator.
///
/// All stochastic components (dataset generators, workload generators,
/// stochastic operators) take an explicit seed so that every experiment in
/// the repository is reproducible bit-for-bit.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) { Seed(seed); }

  /// Re-seeds the generator deterministically from a single 64-bit value.
  void Seed(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t NextBelow(uint64_t n) { return Next() % n; }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(NextBelow(
                    static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Standard normal via Box-Muller.
  double Gaussian();

  /// Gaussian with the given mean and standard deviation.
  double Gaussian(double mean, double stddev) {
    return mean + stddev * Gaussian();
  }

  /// Bernoulli draw with success probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Samples an index from a discrete distribution given by non-negative
  /// weights. Returns weights.size() - 1 on numerical fall-through.
  size_t Categorical(const std::vector<double>& weights);

  /// Fisher-Yates shuffles a vector in place.
  template <typename T>
  void Shuffle(std::vector<T>& values) {
    for (size_t i = values.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextBelow(i));
      std::swap(values[i - 1], values[j]);
    }
  }

  /// Exponential draw with the given rate.
  double Exponential(double rate);

 private:
  uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace hyppo

#endif  // HYPPO_COMMON_RNG_H_
