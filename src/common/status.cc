#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace hyppo {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kParseError:
      return "ParseError";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string result(StatusCodeToString(code_));
  result += ": ";
  result += message_;
  return result;
}

void Status::Abort(const char* context) const {
  if (ok()) {
    return;
  }
  std::fprintf(stderr, "HYPPO fatal: %s%s%s\n", context ? context : "",
               context ? ": " : "", ToString().c_str());
  std::abort();
}

}  // namespace hyppo
