#ifndef HYPPO_COMMON_SHARDED_TABLE_H_
#define HYPPO_COMMON_SHARDED_TABLE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>

namespace hyppo {

/// \brief Concurrent best-value-per-key map, sharded by key hash.
///
/// The table stores the FULL key: probes that collide on the hash land in
/// the same shard and bucket but are disambiguated by `Eq`, so two
/// distinct keys can never alias each other's values. This is the
/// soundness property the optimizer's dominance pruning relies on — a
/// 64-bit-signature map would silently merge colliding states and could
/// prune a cheaper optimal plan.
///
/// `Hash`/`Eq` may be transparent (expose `is_transparent`); heterogeneous
/// probes then avoid materializing a `Key` until the first insertion,
/// which keeps the dominance fast path allocation-free. With transparent
/// functors `Key` must be explicitly constructible from the probe type.
///
/// Improve/GetOr are safe to call concurrently; shard count is rounded up
/// to a power of two.
template <typename Key, typename Hash = std::hash<Key>,
          typename Eq = std::equal_to<Key>>
class ShardedMinTable {
 public:
  explicit ShardedMinTable(int num_shards = 1) {
    size_t shards = 1;
    while (shards < static_cast<size_t>(num_shards < 1 ? 1 : num_shards)) {
      shards <<= 1;
    }
    mask_ = shards - 1;
    shards_ = std::make_unique<Shard[]>(shards);
  }

  /// Insert-or-lower: records `value` for `key` unless an equivalent key
  /// already holds a value <= `value`, in which case the probe is
  /// dominated and false is returned.
  template <typename K>
  bool Improve(const K& key, double value) {
    Shard& shard = shards_[Hash{}(key)&mask_];
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.map.find(key);
    if (it == shard.map.end()) {
      shard.map.emplace(Key(key), value);
      return true;
    }
    if (it->second <= value) {
      return false;
    }
    it->second = value;
    return true;
  }

  /// Best recorded value for `key`, or `fallback` if absent.
  template <typename K>
  double GetOr(const K& key, double fallback) const {
    const Shard& shard = shards_[Hash{}(key)&mask_];
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.map.find(key);
    return it == shard.map.end() ? fallback : it->second;
  }

  /// Total number of distinct keys across all shards.
  int64_t size() const {
    int64_t total = 0;
    for (size_t s = 0; s <= mask_; ++s) {
      std::lock_guard<std::mutex> lock(shards_[s].mutex);
      total += static_cast<int64_t>(shards_[s].map.size());
    }
    return total;
  }

  int num_shards() const { return static_cast<int>(mask_ + 1); }

 private:
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<Key, double, Hash, Eq> map;
  };

  std::unique_ptr<Shard[]> shards_;
  size_t mask_ = 0;
};

}  // namespace hyppo

#endif  // HYPPO_COMMON_SHARDED_TABLE_H_
