#ifndef HYPPO_COMMON_HASH_H_
#define HYPPO_COMMON_HASH_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace hyppo {

/// \brief 64-bit FNV-1a hash of a byte string.
///
/// Canonical artifact names (see core/parser.h) are fixed-size hashes of
/// lineage strings; FNV-1a is stable across platforms and runs, which makes
/// equivalence keys reproducible between sessions.
uint64_t Fnv1a64(std::string_view data);

/// \brief Mixes a new 64-bit value into an existing hash (splitmix64 finalizer).
uint64_t HashCombine(uint64_t seed, uint64_t value);

/// \brief splitmix64 finalizer; good avalanche for single integers.
uint64_t Mix64(uint64_t x);

/// \brief Renders a 64-bit hash as a 16-character lower-case hex string.
std::string HashToHex(uint64_t hash);

}  // namespace hyppo

#endif  // HYPPO_COMMON_HASH_H_
