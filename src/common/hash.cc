#include "common/hash.h"

#include <array>

namespace hyppo {

uint64_t Fnv1a64(std::string_view data) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (unsigned char c : data) {
    hash ^= static_cast<uint64_t>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t HashCombine(uint64_t seed, uint64_t value) {
  return Mix64(seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 6) +
                       (seed >> 2)));
}

std::string HashToHex(uint64_t hash) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::array<char, 16> buf;
  for (int i = 15; i >= 0; --i) {
    buf[static_cast<size_t>(i)] = kDigits[hash & 0xf];
    hash >>= 4;
  }
  return std::string(buf.data(), buf.size());
}

}  // namespace hyppo
