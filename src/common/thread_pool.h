#ifndef HYPPO_COMMON_THREAD_POOL_H_
#define HYPPO_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hyppo {

/// \brief Fixed-size worker pool for executing independent tasks.
///
/// Used by the parallel plan executor (hyperedges whose inputs are all
/// available form a wave and run concurrently) and by the parallel
/// plan-search engine (one long-lived cooperating worker loop per
/// thread). Submit() enqueues work; Wait() blocks until every submitted
/// task has finished.
///
/// The pool is NOT re-entrant: a task running on a pool worker must not
/// call Submit() or Wait() on the same pool. Wait() from a worker is a
/// guaranteed deadlock (the waiting task itself counts as in-flight, so
/// the idle condition can never be reached), and Submit() from a worker
/// is one Wait() away from the same deadlock. Both calls abort with a
/// diagnostic instead of hanging; nest a second ThreadPool if a task
/// genuinely needs helpers.
class ThreadPool {
 public:
  /// Creates `num_threads` workers (at least 1).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Must not be called from a worker of this pool
  /// (aborts — see the class comment).
  void Submit(std::function<void()> task);

  /// Blocks until the queue is drained and all workers are idle. Must not
  /// be called from a worker of this pool (aborts — see the class
  /// comment).
  void Wait();

  /// True when the calling thread is one of this pool's workers.
  bool InWorkerThread() const;

  int num_threads() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_idle_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  int64_t in_flight_ = 0;
  bool shutting_down_ = false;
};

}  // namespace hyppo

#endif  // HYPPO_COMMON_THREAD_POOL_H_
