#ifndef HYPPO_COMMON_THREAD_POOL_H_
#define HYPPO_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hyppo {

/// \brief Fixed-size worker pool for executing independent tasks.
///
/// Used by the parallel plan executor: hyperedges whose inputs are all
/// available form a wave and run concurrently. Submit() enqueues work;
/// Wait() blocks until every submitted task has finished. The pool is not
/// re-entrant (tasks must not Submit).
class ThreadPool {
 public:
  /// Creates `num_threads` workers (at least 1).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task.
  void Submit(std::function<void()> task);

  /// Blocks until the queue is drained and all workers are idle.
  void Wait();

  int num_threads() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_idle_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  int64_t in_flight_ = 0;
  bool shutting_down_ = false;
};

}  // namespace hyppo

#endif  // HYPPO_COMMON_THREAD_POOL_H_
