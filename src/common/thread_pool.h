#ifndef HYPPO_COMMON_THREAD_POOL_H_
#define HYPPO_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hyppo {

/// \brief Fixed-size worker pool for executing independent tasks.
///
/// Used by the parallel plan executor (hyperedges whose inputs are all
/// available form a wave and run concurrently), by the parallel
/// plan-search engine (one long-lived cooperating worker loop per
/// thread), and by the ML kernel layer (src/ml/kernels). Submit()
/// enqueues work; Wait() blocks until every submitted task has finished.
///
/// Nesting policy ("serial-when-nested"): a task running on a pool
/// worker may call Submit() and Wait() on the same pool. Submit() from a
/// worker runs the task inline on the calling thread (queueing it and
/// then Wait()ing would deadlock: the waiting task itself counts as
/// in-flight, so the idle condition could never be reached), and Wait()
/// from a worker returns immediately — every task this worker submitted
/// has already run inline, and waiting for other threads' tasks from
/// inside a task would re-introduce the deadlock. The net effect is that
/// nested parallelism degrades to serial execution by construction
/// instead of deadlocking or oversubscribing; parallel kernels inside
/// parallel executor tasks rely on this (see docs/KERNELS.md).
class ThreadPool {
 public:
  /// Creates `num_threads` workers (at least 1).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. When called from a worker of this pool, runs the
  /// task inline instead (see the nesting policy above).
  void Submit(std::function<void()> task);

  /// Blocks until the queue is drained and all workers are idle. When
  /// called from a worker of this pool, returns immediately (see the
  /// nesting policy above).
  void Wait();

  /// True when the calling thread is one of this pool's workers.
  bool InWorkerThread() const;

  /// True when the calling thread is a worker of ANY ThreadPool. The
  /// kernel layer uses this to fall back to serial execution instead of
  /// fanning out from an already-parallel context (oversubscription
  /// guard).
  static bool InAnyPoolWorker();

  int num_threads() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_idle_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  int64_t in_flight_ = 0;
  bool shutting_down_ = false;
};

}  // namespace hyppo

#endif  // HYPPO_COMMON_THREAD_POOL_H_
