#ifndef HYPPO_COMMON_STRING_UTIL_H_
#define HYPPO_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace hyppo {

/// Splits `input` on `delim`, keeping empty fields.
std::vector<std::string> StrSplit(std::string_view input, char delim);

/// Joins `parts` with `sep` between consecutive elements.
std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep);

/// Strips ASCII whitespace from both ends.
std::string_view StripWhitespace(std::string_view input);

/// True if `input` begins with `prefix`.
bool StartsWith(std::string_view input, std::string_view prefix);

/// True if `input` ends with `suffix`.
bool EndsWith(std::string_view input, std::string_view suffix);

/// ASCII lower-casing.
std::string ToLower(std::string_view input);

/// Formats a double with `precision` significant-looking decimals, trimming
/// trailing zeros ("1.25", "3", "0.001").
std::string FormatDouble(double value, int precision = 6);

/// Formats a byte count with binary units ("1.5 MiB").
std::string FormatBytes(double bytes);

/// Formats a duration given in seconds with an adaptive unit
/// ("12.3 ms", "4.56 s").
std::string FormatSeconds(double seconds);

/// Escapes `input` for embedding inside a JSON string literal: `"` and
/// `\` get backslash escapes, the control characters with JSON
/// shorthands use them (\b \f \n \r \t), and every other byte below
/// 0x20 becomes \u00XX — so no control character can produce invalid
/// JSON. Bytes >= 0x20 (including UTF-8 multibyte sequences) pass
/// through untouched. Shared by the bench JSON writer and the analysis
/// diagnostics emitter.
std::string JsonEscape(std::string_view input);

}  // namespace hyppo

#endif  // HYPPO_COMMON_STRING_UTIL_H_
