#include "common/string_util.h"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace hyppo {

std::vector<std::string> StrSplit(std::string_view input, char delim) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    size_t pos = input.find(delim, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(input.substr(start));
      break;
    }
    parts.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep) {
  std::string result;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) {
      result += sep;
    }
    result += parts[i];
  }
  return result;
}

std::string_view StripWhitespace(std::string_view input) {
  size_t begin = 0;
  while (begin < input.size() &&
         std::isspace(static_cast<unsigned char>(input[begin]))) {
    ++begin;
  }
  size_t end = input.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(input[end - 1]))) {
    --end;
  }
  return input.substr(begin, end - begin);
}

bool StartsWith(std::string_view input, std::string_view prefix) {
  return input.size() >= prefix.size() &&
         input.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view input, std::string_view suffix) {
  return input.size() >= suffix.size() &&
         input.substr(input.size() - suffix.size()) == suffix;
}

std::string ToLower(std::string_view input) {
  std::string result(input);
  for (char& c : result) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return result;
}

std::string FormatDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  std::string s(buf);
  if (s.find('.') != std::string::npos) {
    size_t last = s.find_last_not_of('0');
    if (s[last] == '.') {
      --last;
    }
    s.erase(last + 1);
  }
  return s;
}

std::string FormatBytes(double bytes) {
  static constexpr const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  int unit = 0;
  double value = bytes;
  while (std::fabs(value) >= 1024.0 && unit < 4) {
    value /= 1024.0;
    ++unit;
  }
  return FormatDouble(value, 2) + " " + kUnits[unit];
}

std::string FormatSeconds(double seconds) {
  if (std::fabs(seconds) < 1e-3) {
    return FormatDouble(seconds * 1e6, 2) + " us";
  }
  if (std::fabs(seconds) < 1.0) {
    return FormatDouble(seconds * 1e3, 2) + " ms";
  }
  return FormatDouble(seconds, 3) + " s";
}

std::string JsonEscape(std::string_view input) {
  std::string out;
  out.reserve(input.size() + 2);
  for (const char raw : input) {
    const unsigned char c = static_cast<unsigned char>(raw);
    switch (raw) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += raw;
        }
    }
  }
  return out;
}

}  // namespace hyppo
