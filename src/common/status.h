#ifndef HYPPO_COMMON_STATUS_H_
#define HYPPO_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace hyppo {

/// \brief Error categories used across the library.
///
/// HYPPO library code does not throw exceptions; fallible operations return
/// a Status (or a Result<T>, see result.h) in the style of Apache
/// Arrow / RocksDB.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kResourceExhausted = 6,
  kInternal = 7,
  kNotImplemented = 8,
  kIoError = 9,
  kParseError = 10,
};

/// \brief Returns a stable human-readable name for a status code.
const char* StatusCodeToString(StatusCode code);

/// \brief Outcome of a fallible operation: a code plus a diagnostic message.
///
/// An OK status carries no allocation. Statuses are cheap to copy and move.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }
  bool IsNotImplemented() const {
    return code_ == StatusCode::kNotImplemented;
  }
  bool IsIoError() const { return code_ == StatusCode::kIoError; }
  bool IsParseError() const { return code_ == StatusCode::kParseError; }

  /// "OK" or "<CODE>: <message>".
  std::string ToString() const;

  /// Aborts the process with a diagnostic if the status is not OK.
  /// Use only for programmer errors in tests, examples, and benchmarks.
  void Abort(const char* context = nullptr) const;

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& st) {
  return os << st.ToString();
}

}  // namespace hyppo

/// Propagates a non-OK Status to the caller.
#define HYPPO_RETURN_NOT_OK(expr)                 \
  do {                                            \
    ::hyppo::Status _hyppo_status__ = (expr);     \
    if (!_hyppo_status__.ok()) {                  \
      return _hyppo_status__;                     \
    }                                             \
  } while (false)

#endif  // HYPPO_COMMON_STATUS_H_
