#ifndef HYPPO_COMMON_OBJECT_POOL_H_
#define HYPPO_COMMON_OBJECT_POOL_H_

#include <cstddef>
#include <utility>
#include <vector>

namespace hyppo {

/// \brief Free list of reusable objects for allocation-heavy loops.
///
/// Objects that own heap buffers (vectors, strings) keep their capacity
/// across Release/Acquire cycles, so a steady-state search loop stops
/// hitting the allocator entirely: the plan generator recycles its
/// per-state visited-bitsets and edge lists through one of these instead
/// of copying fresh vectors on every expansion.
///
/// NOT thread-safe by design — each search worker owns a private pool.
template <typename T>
class ObjectPool {
 public:
  /// Returns a recycled object (with arbitrary previous contents — the
  /// caller must overwrite every field) or a default-constructed one.
  T Acquire() {
    if (free_list_.empty()) {
      return T{};
    }
    T object = std::move(free_list_.back());
    free_list_.pop_back();
    return object;
  }

  /// Returns an object to the pool; its heap buffers stay allocated.
  void Release(T&& object) { free_list_.push_back(std::move(object)); }

  /// Number of objects currently parked in the free list.
  size_t available() const { return free_list_.size(); }

 private:
  std::vector<T> free_list_;
};

}  // namespace hyppo

#endif  // HYPPO_COMMON_OBJECT_POOL_H_
