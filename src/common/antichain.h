#ifndef HYPPO_COMMON_ANTICHAIN_H_
#define HYPPO_COMMON_ANTICHAIN_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

namespace hyppo {

/// \brief Wordwise bitset-subset test: true iff b ⊆ a. Both vectors must
/// have the same word count (one search space = one fixed bitset width).
inline bool BitsetContains(const std::vector<uint64_t>& a,
                           const std::vector<uint64_t>& b) {
  for (size_t i = 0; i < a.size(); ++i) {
    if ((a[i] & b[i]) != b[i]) {
      return false;
    }
  }
  return true;
}

/// \brief Concurrent antichain-per-key dominance table.
///
/// Keys partition the state space (the optimizer keys by the exact search
/// frontier); within one key the table keeps an *antichain* of
/// (bitset, cost) entries under the dominance partial order
///
///   A dominates B  ⇔  A.bits ⊇ B.bits  ∧  A.cost ≤ B.cost.
///
/// Unlike a flat best-cost-per-full-state map, which only prunes exact
/// revisits, the antichain prunes every state whose progress bitset is a
/// subset of a recorded state that was reached at most as expensively —
/// the downset-quotient idea from antichain-based games/automata solvers
/// (acacia-bonsai line of work), applied to best-first plan search.
///
/// Inserting a new entry erases recorded entries it dominates, so each
/// bucket stays an antichain and lookups stay proportional to the number
/// of incomparable frontiersome states, not all states ever seen.
///
/// Concurrency contract (same as ShardedMinTable): one mutex per shard,
/// shard chosen by key hash, so all probes for one key serialize on one
/// lock; Insert/BestDominating are safe to call concurrently. Shard count
/// is rounded up to a power of two.
template <typename Key, typename Hash = std::hash<Key>,
          typename Eq = std::equal_to<Key>>
class ShardedAntichainTable {
 public:
  explicit ShardedAntichainTable(int num_shards = 1) {
    size_t shards = 1;
    while (shards < static_cast<size_t>(num_shards < 1 ? 1 : num_shards)) {
      shards <<= 1;
    }
    mask_ = shards - 1;
    shards_ = std::make_unique<Shard[]>(shards);
  }

  /// Insert-unless-dominated: records (bits, cost) for `key` unless an
  /// entry with a superset bitset and cost <= `cost` already exists, in
  /// which case the probe is dominated and false is returned. On
  /// insertion, entries the new one dominates are erased.
  bool Improve(const Key& key, const std::vector<uint64_t>& bits,
               double cost) {
    Shard& shard = shards_[Hash{}(key)&mask_];
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.map.find(key);
    if (it == shard.map.end()) {
      it = shard.map.emplace(key, Bucket{}).first;
      it->second.push_back(Entry{bits, cost});
      return true;
    }
    Bucket& bucket = it->second;
    for (const Entry& entry : bucket) {
      if (entry.cost <= cost && BitsetContains(entry.bits, bits)) {
        return false;
      }
    }
    // Swap-erase entries the new state dominates; order within a bucket
    // carries no meaning.
    for (size_t i = 0; i < bucket.size();) {
      if (cost <= bucket[i].cost && BitsetContains(bits, bucket[i].bits)) {
        bucket[i] = std::move(bucket.back());
        bucket.pop_back();
      } else {
        ++i;
      }
    }
    bucket.push_back(Entry{bits, cost});
    return true;
  }

  /// Minimum cost over recorded entries whose bitset contains `bits`
  /// (i.e. states at least as advanced), or `fallback` if none. A state
  /// popped from an open list is stale when this is strictly below its
  /// own cost: some recorded state supersedes it.
  double BestDominating(const Key& key, const std::vector<uint64_t>& bits,
                        double fallback) const {
    const Shard& shard = shards_[Hash{}(key)&mask_];
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.map.find(key);
    if (it == shard.map.end()) {
      return fallback;
    }
    double best = fallback;
    for (const Entry& entry : it->second) {
      if (entry.cost < best && BitsetContains(entry.bits, bits)) {
        best = entry.cost;
      }
    }
    return best;
  }

  /// Total number of antichain entries across all shards.
  int64_t size() const {
    int64_t total = 0;
    for (size_t s = 0; s <= mask_; ++s) {
      std::lock_guard<std::mutex> lock(shards_[s].mutex);
      for (const auto& [key, bucket] : shards_[s].map) {
        total += static_cast<int64_t>(bucket.size());
      }
    }
    return total;
  }

  /// Number of distinct keys (antichain buckets) across all shards.
  int64_t num_keys() const {
    int64_t total = 0;
    for (size_t s = 0; s <= mask_; ++s) {
      std::lock_guard<std::mutex> lock(shards_[s].mutex);
      total += static_cast<int64_t>(shards_[s].map.size());
    }
    return total;
  }

  int num_shards() const { return static_cast<int>(mask_ + 1); }

 private:
  struct Entry {
    std::vector<uint64_t> bits;
    double cost = 0.0;
  };
  using Bucket = std::vector<Entry>;

  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<Key, Bucket, Hash, Eq> map;
  };

  std::unique_ptr<Shard[]> shards_;
  size_t mask_ = 0;
};

}  // namespace hyppo

#endif  // HYPPO_COMMON_ANTICHAIN_H_
