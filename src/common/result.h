#ifndef HYPPO_COMMON_RESULT_H_
#define HYPPO_COMMON_RESULT_H_

#include <cstdlib>
#include <optional>
#include <utility>

#include "common/status.h"

namespace hyppo {

/// \brief Value-or-Status discriminated holder, the return type of fallible
/// value-producing functions.
///
/// A Result is either OK and holds a T, or holds a non-OK Status.
/// Typical usage:
///
///   Result<Plan> plan = optimizer.Optimize(aug, targets);
///   HYPPO_RETURN_NOT_OK(plan.status());
///   Use(*plan);
///
/// or, inside a function that itself returns Status/Result:
///
///   HYPPO_ASSIGN_OR_RETURN(Plan plan, optimizer.Optimize(aug, targets));
template <typename T>
class Result {
 public:
  /// Constructs a Result holding a value (implicit to allow `return value;`).
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}
  /// Constructs a failed Result (implicit to allow `return status;`).
  /// Aborts if `status` is OK: an OK Result must carry a value.
  Result(Status status) : status_(std::move(status)) {
    if (status_.ok()) {
      Status::Internal("Result constructed from OK status without a value")
          .Abort("Result");
    }
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(Result&&) noexcept = default;

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Returns the held value. Must only be called when ok().
  const T& ValueOrDie() const& {
    if (!value_.has_value()) {
      DieEmpty();
    }
    return *value_;
  }
  T& ValueOrDie() & {
    if (!value_.has_value()) {
      DieEmpty();
    }
    return *value_;
  }
  T&& ValueOrDie() && {
    if (!value_.has_value()) {
      DieEmpty();
    }
    return std::move(*value_);
  }

  /// Moves the value out of the Result. Must only be called when ok().
  T MoveValueUnsafe() {
    if (!value_.has_value()) {
      DieEmpty();
    }
    return std::move(*value_);
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  T&& operator*() && { return std::move(*this).ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

  /// Returns the value, or `alternative` if this Result holds an error.
  T ValueOr(T alternative) const {
    return value_.has_value() ? *value_ : std::move(alternative);
  }

 private:
  /// A value access on an empty Result is a programmer error; an empty
  /// value_ and a non-OK status_ coincide by construction. Locally
  /// noreturn so flow analysis sees every dereference guarded.
  [[noreturn]] void DieEmpty() const {
    status_.Abort("Result::ValueOrDie on error");
    std::abort();
  }

  Status status_;
  std::optional<T> value_;
};

}  // namespace hyppo

#define HYPPO_CONCAT_IMPL_(x, y) x##y
#define HYPPO_CONCAT_(x, y) HYPPO_CONCAT_IMPL_(x, y)

/// Evaluates a Result expression; on error returns its Status, otherwise
/// moves the value into `lhs` (which may include a type declaration).
#define HYPPO_ASSIGN_OR_RETURN(lhs, rexpr)                              \
  HYPPO_ASSIGN_OR_RETURN_IMPL_(HYPPO_CONCAT_(_hyppo_result_, __LINE__), \
                               lhs, rexpr)

#define HYPPO_ASSIGN_OR_RETURN_IMPL_(result_name, lhs, rexpr) \
  auto result_name = (rexpr);                                 \
  if (!result_name.ok()) {                                    \
    return result_name.status();                              \
  }                                                           \
  lhs = std::move(result_name).ValueOrDie()

#endif  // HYPPO_COMMON_RESULT_H_
