#ifndef HYPPO_COMMON_CLOCK_H_
#define HYPPO_COMMON_CLOCK_H_

#include <chrono>

namespace hyppo {

/// \brief Time source abstraction.
///
/// Scenario experiments execute tasks for real and charge wall-clock time;
/// planner-scalability experiments charge analytic task costs against a
/// VirtualClock so runs are deterministic (DESIGN.md §4.3).
class Clock {
 public:
  virtual ~Clock() = default;
  /// Current time in seconds since an arbitrary epoch.
  virtual double Now() const = 0;
  /// Advances the clock by `seconds` (no-op for real clocks).
  virtual void Advance(double seconds) = 0;
};

/// Monotonic wall clock. Advance() is ignored.
class WallClock final : public Clock {
 public:
  double Now() const override {
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }
  void Advance(double /*seconds*/) override {}
};

/// Deterministic simulated clock; time moves only via Advance().
class VirtualClock final : public Clock {
 public:
  double Now() const override { return now_; }
  void Advance(double seconds) override { now_ += seconds; }
  void Reset(double now = 0.0) { now_ = now; }

 private:
  double now_ = 0.0;
};

/// RAII stopwatch over a Clock.
class Stopwatch {
 public:
  explicit Stopwatch(const Clock& clock) : clock_(clock), start_(clock.Now()) {}
  /// Seconds elapsed since construction or the last Restart().
  double Elapsed() const { return clock_.Now() - start_; }
  void Restart() { start_ = clock_.Now(); }

 private:
  const Clock& clock_;
  double start_;
};

}  // namespace hyppo

#endif  // HYPPO_COMMON_CLOCK_H_
