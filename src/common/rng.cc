#include "common/rng.h"

#include "common/hash.h"

namespace hyppo {

namespace {

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::Seed(uint64_t seed) {
  // Expand the single seed through splitmix64, as recommended by the
  // xoshiro authors, to avoid correlated low-entropy states.
  uint64_t s = seed;
  for (auto& word : state_) {
    s += 0x9e3779b97f4a7c15ULL;
    word = Mix64(s);
  }
  has_cached_gaussian_ = false;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  const double u2 = NextDouble();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * 3.14159265358979323846 * u2;
  cached_gaussian_ = radius * std::sin(angle);
  has_cached_gaussian_ = true;
  return radius * std::cos(angle);
}

size_t Rng::Categorical(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    total += w;
  }
  if (total <= 0.0 || weights.empty()) {
    return weights.empty() ? 0 : weights.size() - 1;
  }
  double draw = NextDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    draw -= weights[i];
    if (draw < 0.0) {
      return i;
    }
  }
  return weights.size() - 1;
}

double Rng::Exponential(double rate) {
  double u = 0.0;
  do {
    u = NextDouble();
  } while (u <= 1e-300);
  return -std::log(u) / rate;
}

}  // namespace hyppo
