#include "hypergraph/algorithms.h"

#include <algorithm>
#include <deque>
#include <limits>

namespace hyppo {

Result<std::vector<EdgeId>> BTopologicalEdgeOrder(
    const Hypergraph& graph, const std::vector<EdgeId>& edges,
    const std::vector<NodeId>& sources) {
  std::vector<bool> in_plan(static_cast<size_t>(graph.num_edge_slots()),
                            false);
  for (EdgeId e : edges) {
    if (!graph.IsLiveEdge(e)) {
      return Status::InvalidArgument("plan contains dead edge " +
                                     std::to_string(e));
    }
    in_plan[static_cast<size_t>(e)] = true;
  }
  std::vector<int32_t> missing_tail(
      static_cast<size_t>(graph.num_edge_slots()), 0);
  std::vector<bool> available(static_cast<size_t>(graph.num_nodes()), false);
  std::deque<NodeId> queue;
  auto mark = [&](NodeId node) {
    if (!available[static_cast<size_t>(node)]) {
      available[static_cast<size_t>(node)] = true;
      queue.push_back(node);
    }
  };
  for (NodeId s : sources) {
    if (graph.IsValidNode(s)) {
      mark(s);
    }
  }
  std::vector<EdgeId> order;
  order.reserve(edges.size());
  std::vector<bool> fired(static_cast<size_t>(graph.num_edge_slots()), false);
  auto fire = [&](EdgeId e) {
    fired[static_cast<size_t>(e)] = true;
    order.push_back(e);
    for (NodeId h : graph.edge(e).head) {
      mark(h);
    }
  };
  for (EdgeId e : edges) {
    missing_tail[static_cast<size_t>(e)] =
        static_cast<int32_t>(graph.edge(e).tail.size());
    if (graph.edge(e).tail.empty()) {
      fire(e);
    }
  }
  while (!queue.empty()) {
    NodeId node = queue.front();
    queue.pop_front();
    for (EdgeId e : graph.fstar(node)) {
      if (!in_plan[static_cast<size_t>(e)] || fired[static_cast<size_t>(e)]) {
        continue;
      }
      if (--missing_tail[static_cast<size_t>(e)] == 0) {
        fire(e);
      }
    }
  }
  if (order.size() != edges.size()) {
    return Status::FailedPrecondition(
        "plan is not executable: " +
        std::to_string(edges.size() - order.size()) +
        " task(s) can never obtain their inputs");
  }
  return order;
}

bool IsValidPlan(const Hypergraph& graph,
                 const std::vector<EdgeId>& plan_edges,
                 const std::vector<NodeId>& sources,
                 const std::vector<NodeId>& targets) {
  return graph.AreBConnected(targets, sources, &plan_edges);
}

bool IsMinimalPlan(const Hypergraph& graph,
                   const std::vector<EdgeId>& plan_edges,
                   const std::vector<NodeId>& sources,
                   const std::vector<NodeId>& targets) {
  if (!IsValidPlan(graph, plan_edges, sources, targets)) {
    return false;
  }
  for (size_t skip = 0; skip < plan_edges.size(); ++skip) {
    std::vector<EdgeId> reduced;
    reduced.reserve(plan_edges.size() - 1);
    for (size_t i = 0; i < plan_edges.size(); ++i) {
      if (i != skip) {
        reduced.push_back(plan_edges[i]);
      }
    }
    if (IsValidPlan(graph, reduced, sources, targets)) {
      return false;
    }
  }
  return true;
}

RelevanceClosure BackwardRelevance(const Hypergraph& graph,
                                   const std::vector<NodeId>& targets) {
  RelevanceClosure closure;
  closure.node_relevant.assign(static_cast<size_t>(graph.num_nodes()), false);
  closure.edge_relevant.assign(static_cast<size_t>(graph.num_edge_slots()),
                               false);
  std::deque<NodeId> queue;
  auto mark = [&](NodeId node) {
    if (graph.IsValidNode(node) &&
        !closure.node_relevant[static_cast<size_t>(node)]) {
      closure.node_relevant[static_cast<size_t>(node)] = true;
      queue.push_back(node);
    }
  };
  for (NodeId t : targets) {
    mark(t);
  }
  while (!queue.empty()) {
    NodeId node = queue.front();
    queue.pop_front();
    for (EdgeId e : graph.bstar(node)) {
      if (closure.edge_relevant[static_cast<size_t>(e)]) {
        continue;
      }
      closure.edge_relevant[static_cast<size_t>(e)] = true;
      for (NodeId u : graph.edge(e).tail) {
        mark(u);
      }
    }
  }
  return closure;
}

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Memoized depth DFS; `on_stack` breaks cycles by ignoring back-derivations.
double DepthDfs(const Hypergraph& graph, NodeId node, NodeId source,
                std::vector<double>& memo, std::vector<bool>& on_stack) {
  if (node == source) {
    return 0.0;
  }
  double& cached = memo[static_cast<size_t>(node)];
  if (cached >= 0.0 || cached == kInf) {
    return cached;
  }
  if (on_stack[static_cast<size_t>(node)]) {
    return kInf;  // back edge: not a usable derivation
  }
  on_stack[static_cast<size_t>(node)] = true;
  double sum = 0.0;
  int32_t usable = 0;
  for (EdgeId e : graph.bstar(node)) {
    const Hyperedge& edge = graph.edge(e);
    double tail_sum = 0.0;
    bool feasible = true;
    for (NodeId u : edge.tail) {
      double d = DepthDfs(graph, u, source, memo, on_stack);
      if (d == kInf) {
        feasible = false;
        break;
      }
      tail_sum += d;
    }
    if (!feasible) {
      continue;
    }
    double tail_avg =
        edge.tail.empty() ? 0.0 : tail_sum / static_cast<double>(edge.tail.size());
    sum += 1.0 + tail_avg;
    ++usable;
  }
  on_stack[static_cast<size_t>(node)] = false;
  cached = (usable == 0) ? kInf : sum / static_cast<double>(usable);
  return cached;
}

}  // namespace

std::vector<double> AverageDepthFromSource(const Hypergraph& graph,
                                           NodeId source) {
  std::vector<double> memo(static_cast<size_t>(graph.num_nodes()), -1.0);
  std::vector<bool> on_stack(static_cast<size_t>(graph.num_nodes()), false);
  if (graph.IsValidNode(source)) {
    memo[static_cast<size_t>(source)] = 0.0;
  }
  std::vector<double> depth(static_cast<size_t>(graph.num_nodes()), kInf);
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    depth[static_cast<size_t>(v)] =
        DepthDfs(graph, v, source, memo, on_stack);
  }
  return depth;
}

}  // namespace hyppo
