#ifndef HYPPO_HYPERGRAPH_TESTING_H_
#define HYPPO_HYPERGRAPH_TESTING_H_

#include <vector>

#include "hypergraph/hypergraph.h"

namespace hyppo {

/// \brief Test-only mutable access to Hypergraph internals.
///
/// The public Hypergraph API maintains the structural invariants the
/// analysis verifier checks (sorted edges, consistent stars, accurate
/// live count), so the corrupted-fixture tests need this backdoor to
/// manufacture violations. Never use outside tests.
struct HypergraphTestAccess {
  static Hyperedge& MutableEdge(Hypergraph& graph, EdgeId edge) {
    return graph.edges_[static_cast<size_t>(edge)];
  }
  static std::vector<EdgeId>& MutableBstar(Hypergraph& graph, NodeId node) {
    return graph.bstar_[static_cast<size_t>(node)];
  }
  static std::vector<EdgeId>& MutableFstar(Hypergraph& graph, NodeId node) {
    return graph.fstar_[static_cast<size_t>(node)];
  }
  static int32_t& MutableLiveCount(Hypergraph& graph) {
    return graph.num_live_edges_;
  }
};

}  // namespace hyppo

#endif  // HYPPO_HYPERGRAPH_TESTING_H_
