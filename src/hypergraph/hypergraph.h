#ifndef HYPPO_HYPERGRAPH_HYPERGRAPH_H_
#define HYPPO_HYPERGRAPH_HYPERGRAPH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace hyppo {

/// Dense node identifier within one Hypergraph (0-based).
using NodeId = int32_t;
/// Dense hyperedge identifier within one Hypergraph (0-based).
using EdgeId = int32_t;

inline constexpr NodeId kInvalidNode = -1;
inline constexpr EdgeId kInvalidEdge = -1;

/// \brief A directed hyperedge e = (tail(e), head(e)).
///
/// Following the paper's §III-B, a hyperedge connects a set of tail nodes
/// (the inputs of a task) to a set of head nodes (its outputs). Tails and
/// heads are kept sorted and duplicate-free.
struct Hyperedge {
  EdgeId id = kInvalidEdge;
  std::vector<NodeId> tail;
  std::vector<NodeId> head;
};

/// \brief A directed hypergraph G = (V, E).
///
/// Nodes and hyperedges carry dense integer ids; domain labels (artifact and
/// task metadata) are layered on top by Pipeline / History (src/core).
/// The structure maintains backward stars (bstar(v) = {e : v ∈ head(e)})
/// and forward stars (fstar(v) = {e : v ∈ tail(e)}) incrementally.
///
/// The class is append-only except for RemoveEdge, which supports history
/// eviction: evicting a materialized artifact removes its 'load' hyperedge
/// while keeping the node (paper §IV-H). Removed edge ids are never reused;
/// a removed edge keeps empty tail/head and is skipped by iteration helpers.
class Hypergraph {
 public:
  Hypergraph() = default;

  Hypergraph(const Hypergraph&) = default;
  Hypergraph& operator=(const Hypergraph&) = default;
  Hypergraph(Hypergraph&&) noexcept = default;
  Hypergraph& operator=(Hypergraph&&) noexcept = default;

  /// Appends a node and returns its id.
  NodeId AddNode();

  /// Appends `count` nodes; returns the id of the first.
  NodeId AddNodes(int32_t count);

  /// Appends a hyperedge. Tail may be empty (source edges); head must be
  /// non-empty and all node ids must exist. Duplicate node ids within the
  /// tail or head are coalesced.
  Result<EdgeId> AddEdge(std::vector<NodeId> tail, std::vector<NodeId> head);

  /// Removes a hyperedge (id stays allocated, marked dead).
  Status RemoveEdge(EdgeId edge);

  int32_t num_nodes() const { return static_cast<int32_t>(bstar_.size()); }
  /// Total edge slots, including removed ones.
  int32_t num_edge_slots() const { return static_cast<int32_t>(edges_.size()); }
  /// Number of live edges.
  int32_t num_edges() const { return num_live_edges_; }

  bool IsValidNode(NodeId node) const {
    return node >= 0 && node < num_nodes();
  }
  bool IsLiveEdge(EdgeId edge) const {
    return edge >= 0 && edge < num_edge_slots() &&
           !edges_[static_cast<size_t>(edge)].head.empty();
  }

  /// Returns the edge. Must be a live edge id.
  const Hyperedge& edge(EdgeId edge) const {
    return edges_[static_cast<size_t>(edge)];
  }

  /// Backward star of `node`: hyperedges producing it.
  const std::vector<EdgeId>& bstar(NodeId node) const {
    return bstar_[static_cast<size_t>(node)];
  }

  /// Forward star of `node`: hyperedges consuming it.
  const std::vector<EdgeId>& fstar(NodeId node) const {
    return fstar_[static_cast<size_t>(node)];
  }

  /// All live edge ids in ascending order.
  std::vector<EdgeId> LiveEdges() const;

  /// \brief Computes the set of nodes B-connected to `sources`.
  ///
  /// B-connection (Gallo et al. 1993, paper §III-B): t is B-connected to S
  /// iff t ∈ S, or some hyperedge with t in its head has every tail node
  /// B-connected to S. Implemented as forward chaining in O(|V| + Σ|e|).
  /// If `restrict_to_edges` is non-null, only those edges participate
  /// (used to validate plans, which are sub-hypergraphs).
  std::vector<bool> BConnectedFrom(
      const std::vector<NodeId>& sources,
      const std::vector<EdgeId>* restrict_to_edges = nullptr) const;

  /// True iff every node in `targets` is B-connected to `sources`,
  /// optionally restricted to a sub-hypergraph given by its edges.
  bool AreBConnected(const std::vector<NodeId>& targets,
                     const std::vector<NodeId>& sources,
                     const std::vector<EdgeId>* restrict_to_edges =
                         nullptr) const;

  /// \brief Emits the graph in Graphviz DOT, for debugging and docs.
  ///
  /// Hyperedges are rendered as intermediate box nodes. Label callbacks may
  /// be null, in which case ids are printed.
  std::string ToDot(
      const std::string& graph_name,
      const std::vector<std::string>* node_labels = nullptr,
      const std::vector<std::string>* edge_labels = nullptr) const;

 private:
  // Test-only backdoor (hypergraph/testing.h) used by the analysis
  // corrupted-fixture tests: the public API upholds the invariants the
  // verifier checks, so breaking them requires direct member access.
  friend struct HypergraphTestAccess;

  std::vector<Hyperedge> edges_;
  std::vector<std::vector<EdgeId>> bstar_;
  std::vector<std::vector<EdgeId>> fstar_;
  int32_t num_live_edges_ = 0;
};

}  // namespace hyppo

#endif  // HYPPO_HYPERGRAPH_HYPERGRAPH_H_
