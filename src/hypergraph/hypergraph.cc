#include "hypergraph/hypergraph.h"

#include <algorithm>
#include <deque>
#include <sstream>

namespace hyppo {

namespace {

void SortUnique(std::vector<NodeId>& nodes) {
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
}

}  // namespace

NodeId Hypergraph::AddNode() {
  bstar_.emplace_back();
  fstar_.emplace_back();
  return num_nodes() - 1;
}

NodeId Hypergraph::AddNodes(int32_t count) {
  NodeId first = num_nodes();
  for (int32_t i = 0; i < count; ++i) {
    AddNode();
  }
  return first;
}

Result<EdgeId> Hypergraph::AddEdge(std::vector<NodeId> tail,
                                   std::vector<NodeId> head) {
  if (head.empty()) {
    return Status::InvalidArgument("hyperedge head must be non-empty");
  }
  SortUnique(tail);
  SortUnique(head);
  for (NodeId node : tail) {
    if (!IsValidNode(node)) {
      return Status::InvalidArgument("tail node " + std::to_string(node) +
                                     " does not exist");
    }
  }
  for (NodeId node : head) {
    if (!IsValidNode(node)) {
      return Status::InvalidArgument("head node " + std::to_string(node) +
                                     " does not exist");
    }
  }
  EdgeId id = num_edge_slots();
  Hyperedge edge;
  edge.id = id;
  edge.tail = std::move(tail);
  edge.head = std::move(head);
  for (NodeId node : edge.tail) {
    fstar_[static_cast<size_t>(node)].push_back(id);
  }
  for (NodeId node : edge.head) {
    bstar_[static_cast<size_t>(node)].push_back(id);
  }
  edges_.push_back(std::move(edge));
  ++num_live_edges_;
  return id;
}

Status Hypergraph::RemoveEdge(EdgeId edge) {
  if (!IsLiveEdge(edge)) {
    return Status::NotFound("edge " + std::to_string(edge) +
                            " is not a live edge");
  }
  Hyperedge& e = edges_[static_cast<size_t>(edge)];
  for (NodeId node : e.tail) {
    auto& star = fstar_[static_cast<size_t>(node)];
    star.erase(std::remove(star.begin(), star.end(), edge), star.end());
  }
  for (NodeId node : e.head) {
    auto& star = bstar_[static_cast<size_t>(node)];
    star.erase(std::remove(star.begin(), star.end(), edge), star.end());
  }
  e.tail.clear();
  e.head.clear();
  --num_live_edges_;
  return Status::OK();
}

std::vector<EdgeId> Hypergraph::LiveEdges() const {
  std::vector<EdgeId> live;
  live.reserve(static_cast<size_t>(num_live_edges_));
  for (EdgeId e = 0; e < num_edge_slots(); ++e) {
    if (IsLiveEdge(e)) {
      live.push_back(e);
    }
  }
  return live;
}

std::vector<bool> Hypergraph::BConnectedFrom(
    const std::vector<NodeId>& sources,
    const std::vector<EdgeId>* restrict_to_edges) const {
  std::vector<bool> connected(static_cast<size_t>(num_nodes()), false);
  std::vector<bool> edge_allowed;
  if (restrict_to_edges != nullptr) {
    edge_allowed.assign(static_cast<size_t>(num_edge_slots()), false);
    for (EdgeId e : *restrict_to_edges) {
      if (IsLiveEdge(e)) {
        edge_allowed[static_cast<size_t>(e)] = true;
      }
    }
  }
  // Forward chaining: an edge fires once all of its tail is connected.
  std::vector<int32_t> missing_tail(static_cast<size_t>(num_edge_slots()), 0);
  for (EdgeId e = 0; e < num_edge_slots(); ++e) {
    if (IsLiveEdge(e)) {
      missing_tail[static_cast<size_t>(e)] =
          static_cast<int32_t>(edge(e).tail.size());
    }
  }
  std::deque<NodeId> queue;
  auto mark = [&](NodeId node) {
    if (!connected[static_cast<size_t>(node)]) {
      connected[static_cast<size_t>(node)] = true;
      queue.push_back(node);
    }
  };
  for (NodeId s : sources) {
    if (IsValidNode(s)) {
      mark(s);
    }
  }
  // Edges with empty tails fire immediately.
  for (EdgeId e = 0; e < num_edge_slots(); ++e) {
    if (IsLiveEdge(e) && edge(e).tail.empty() &&
        (restrict_to_edges == nullptr || edge_allowed[static_cast<size_t>(e)])) {
      for (NodeId h : edge(e).head) {
        mark(h);
      }
    }
  }
  while (!queue.empty()) {
    NodeId node = queue.front();
    queue.pop_front();
    for (EdgeId e : fstar(node)) {
      if (restrict_to_edges != nullptr &&
          !edge_allowed[static_cast<size_t>(e)]) {
        continue;
      }
      if (--missing_tail[static_cast<size_t>(e)] == 0) {
        for (NodeId h : edge(e).head) {
          mark(h);
        }
      }
    }
  }
  return connected;
}

bool Hypergraph::AreBConnected(
    const std::vector<NodeId>& targets, const std::vector<NodeId>& sources,
    const std::vector<EdgeId>* restrict_to_edges) const {
  std::vector<bool> connected = BConnectedFrom(sources, restrict_to_edges);
  for (NodeId t : targets) {
    if (!IsValidNode(t) || !connected[static_cast<size_t>(t)]) {
      return false;
    }
  }
  return true;
}

std::string Hypergraph::ToDot(
    const std::string& graph_name,
    const std::vector<std::string>* node_labels,
    const std::vector<std::string>* edge_labels) const {
  std::ostringstream os;
  os << "digraph \"" << graph_name << "\" {\n";
  os << "  rankdir=LR;\n";
  for (NodeId v = 0; v < num_nodes(); ++v) {
    os << "  v" << v << " [shape=ellipse,label=\"";
    if (node_labels != nullptr && static_cast<size_t>(v) < node_labels->size()) {
      os << (*node_labels)[static_cast<size_t>(v)];
    } else {
      os << "v" << v;
    }
    os << "\"];\n";
  }
  for (EdgeId e = 0; e < num_edge_slots(); ++e) {
    if (!IsLiveEdge(e)) {
      continue;
    }
    os << "  e" << e << " [shape=box,style=rounded,label=\"";
    if (edge_labels != nullptr && static_cast<size_t>(e) < edge_labels->size()) {
      os << (*edge_labels)[static_cast<size_t>(e)];
    } else {
      os << "t" << e;
    }
    os << "\"];\n";
    for (NodeId t : edge(e).tail) {
      os << "  v" << t << " -> e" << e << ";\n";
    }
    for (NodeId h : edge(e).head) {
      os << "  e" << e << " -> v" << h << ";\n";
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace hyppo
