#ifndef HYPPO_HYPERGRAPH_ALGORITHMS_H_
#define HYPPO_HYPERGRAPH_ALGORITHMS_H_

#include <vector>

#include "common/result.h"
#include "hypergraph/hypergraph.h"

namespace hyppo {

/// \brief Orders `edges` so that each hyperedge appears after every node in
/// its tail has been produced (by a preceding edge or by membership in
/// `sources`).
///
/// This is the execution order of a plan: a plan is executable iff such an
/// order exists for all of its edges (paper §III-C5 property (a)).
/// Returns FailedPrecondition when some edge can never fire.
Result<std::vector<EdgeId>> BTopologicalEdgeOrder(
    const Hypergraph& graph, const std::vector<EdgeId>& edges,
    const std::vector<NodeId>& sources);

/// \brief True iff `plan_edges` forms a valid S-T plan: every target is
/// B-connected to `sources` using only plan edges.
bool IsValidPlan(const Hypergraph& graph, const std::vector<EdgeId>& plan_edges,
                 const std::vector<NodeId>& sources,
                 const std::vector<NodeId>& targets);

/// \brief True iff the plan is valid and minimal: deleting any single
/// hyperedge breaks B-connection of some target (paper's Plan definition).
bool IsMinimalPlan(const Hypergraph& graph,
                   const std::vector<EdgeId>& plan_edges,
                   const std::vector<NodeId>& sources,
                   const std::vector<NodeId>& targets);

/// \brief Backward relevance closure: the sub-hypergraph that can
/// participate in producing `targets`.
///
/// Starting from the targets, every hyperedge in the backward star of an
/// included node is included together with its tail nodes, recursively.
/// Returns per-node and per-edge inclusion flags. The augmenter uses this to
/// prune history parts that cannot contribute to the current pipeline.
struct RelevanceClosure {
  std::vector<bool> node_relevant;
  std::vector<bool> edge_relevant;
};
RelevanceClosure BackwardRelevance(const Hypergraph& graph,
                                   const std::vector<NodeId>& targets);

/// \brief Average derivation depth of each node from `source`, in
/// hyperedges.
///
/// depth(source) = 0; for any other node, each incoming hyperedge e offers a
/// derivation of depth 1 + mean(depth(u) for u in tail(e)) (an empty tail
/// counts as depth 0), and depth(v) averages over the incoming hyperedges to
/// account for the alternative ways to obtain v (paper §III-D2, the plan
/// locality coefficient). Nodes unreachable from the source get depth
/// +infinity; cycles are broken by ignoring back-derivations.
std::vector<double> AverageDepthFromSource(const Hypergraph& graph,
                                           NodeId source);

}  // namespace hyppo

#endif  // HYPPO_HYPERGRAPH_ALGORITHMS_H_
