#include "core/materializer.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "hypergraph/algorithms.h"

namespace hyppo::core {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

std::vector<double> Materializer::RecomputeCosts(
    const History& history) const {
  const PipelineGraph& graph = history.graph();
  const Hypergraph& hg = graph.hypergraph();
  // Phase 1 — value iteration with sum-over-tails aggregation:
  // obtain(v) = min over incoming edges (including 'load' edges for
  // materialized artifacts) of (edge seconds + sum of tail obtain costs).
  std::vector<double> obtain(static_cast<size_t>(hg.num_nodes()), kInf);
  std::vector<double> edge_seconds(
      static_cast<size_t>(hg.num_edge_slots()), 0.0);
  for (EdgeId e = 0; e < hg.num_edge_slots(); ++e) {
    if (hg.IsLiveEdge(e)) {
      edge_seconds[static_cast<size_t>(e)] =
          augmenter_->EdgeSeconds(graph, e, history);
    }
  }
  obtain[static_cast<size_t>(graph.source())] = 0.0;
  bool changed = true;
  int guard = hg.num_nodes() + 2;
  while (changed && guard-- > 0) {
    changed = false;
    for (EdgeId e = 0; e < hg.num_edge_slots(); ++e) {
      if (!hg.IsLiveEdge(e)) {
        continue;
      }
      double tail_sum = 0.0;
      for (NodeId u : hg.edge(e).tail) {
        if (u == graph.source()) {
          continue;
        }
        if (obtain[static_cast<size_t>(u)] == kInf) {
          tail_sum = kInf;
          break;
        }
        tail_sum += obtain[static_cast<size_t>(u)];
      }
      if (tail_sum == kInf) {
        continue;
      }
      const double through = edge_seconds[static_cast<size_t>(e)] + tail_sum;
      for (NodeId h : hg.edge(e).head) {
        if (through < obtain[static_cast<size_t>(h)] - 1e-15) {
          obtain[static_cast<size_t>(h)] = through;
          changed = true;
        }
      }
    }
  }
  // Phase 2 — the paper's cost(v): the cost of *re-computing* v if it were
  // evicted, i.e. through compute edges only (v's own load edge excluded),
  // with inputs obtained as cheaply as the current materialization allows.
  std::vector<double> recompute(static_cast<size_t>(hg.num_nodes()), kInf);
  recompute[static_cast<size_t>(graph.source())] = 0.0;
  for (EdgeId e = 0; e < hg.num_edge_slots(); ++e) {
    if (!hg.IsLiveEdge(e) || graph.task(e).type == TaskType::kLoad) {
      continue;
    }
    double tail_sum = 0.0;
    for (NodeId u : hg.edge(e).tail) {
      if (u == graph.source()) {
        continue;
      }
      if (obtain[static_cast<size_t>(u)] == kInf) {
        tail_sum = kInf;
        break;
      }
      tail_sum += obtain[static_cast<size_t>(u)];
    }
    if (tail_sum == kInf) {
      continue;
    }
    const double through = edge_seconds[static_cast<size_t>(e)] + tail_sum;
    for (NodeId h : hg.edge(e).head) {
      recompute[static_cast<size_t>(h)] =
          std::min(recompute[static_cast<size_t>(h)], through);
    }
  }
  return recompute;
}

double Materializer::Gain(const History& history, NodeId node,
                          const Options& options) const {
  const PipelineGraph& graph = history.graph();
  return Gain(history, node, options, RecomputeCosts(history),
              AverageDepthFromSource(graph.hypergraph(), graph.source()));
}

double Materializer::Gain(const History& history, NodeId node,
                          const Options& options,
                          const std::vector<double>& recompute_costs,
                          const std::vector<double>& depths) const {
  const PipelineGraph& graph = history.graph();
  const ArtifactInfo& artifact = graph.artifact(node);
  const ArtifactRecord& record = history.record(node);
  const double freq =
      std::max<double>(1.0, static_cast<double>(record.access_count));
  // cost(v): the expected penalty of re-producing the artifact if evicted
  // — the minimum cost of a plan s -> v (paper §III-D2), estimated by
  // value iteration over the history. Falls back to the observed task
  // time when v is not derivable.
  double compute = recompute_costs[static_cast<size_t>(node)];
  if (compute == kInf || compute <= 0.0) {
    compute = record.compute_seconds;
  }
  const double load = std::max(
      1e-9, storage::StorageTier::Local().LoadSeconds(artifact.size_bytes));
  double gain = freq * compute / load;
  if (options.use_plan_locality) {
    const double d = depths[static_cast<size_t>(node)];
    if (d > 0.0 && d != kInf) {
      gain *= 1.0 / std::exp(1.0 / d);
    }
  }
  return gain;
}

Materializer::Decision Materializer::Decide(
    const History& history, const std::set<std::string>& storable,
    const Options& options) const {
  const PipelineGraph& graph = history.graph();
  struct Candidate {
    NodeId node;
    double score;
    int64_t size;
  };
  // Shared precomputations (Gain() recomputes them per node; for the
  // decision sweep we hoist them out).
  const std::vector<double> recompute = RecomputeCosts(history);
  const std::vector<double> depth =
      AverageDepthFromSource(graph.hypergraph(), graph.source());

  std::vector<Candidate> candidates;
  for (NodeId v = 1; v < graph.num_artifacts(); ++v) {
    const ArtifactInfo& artifact = graph.artifact(v);
    if (artifact.kind == ArtifactKind::kRaw ||
        artifact.kind == ArtifactKind::kSource) {
      continue;  // data sources are not decision candidates
    }
    if (artifact.size_bytes <= 0) {
      continue;
    }
    const bool already = history.IsMaterialized(v);
    if (!already && storable.count(artifact.name) == 0) {
      continue;  // payload unavailable: cannot be newly stored
    }
    const ArtifactRecord& record = history.record(v);
    double score = 0.0;
    switch (options.policy) {
      case Policy::kSpf:
        score = Gain(history, v, options, recompute, depth);
        break;
      case Policy::kLru:
        score = record.last_access_seconds;
        break;
      case Policy::kLfu:
        score = static_cast<double>(record.access_count);
        break;
      case Policy::kSff:
        // Smaller-files-first: the candidates are ranked descending by
        // score, so smaller artifacts must score *higher* (size itself
        // as the score kept the largest ones — inverted policy).
        score = 1.0 / static_cast<double>(
                          std::max<int64_t>(1, artifact.size_bytes));
        break;
    }
    if (score <= 0.0 && !already) {
      continue;  // no benefit from newly storing it
    }
    // A zero score does not force-evict an already-materialized artifact
    // (an LRU/LFU entry that was never accessed): it stays a candidate,
    // ranked last, and survives when budget headroom remains.
    candidates.push_back(Candidate{v, score, artifact.size_bytes});
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.score != b.score) {
                return a.score > b.score;
              }
              return a.node < b.node;
            });
  Decision decision;
  std::set<NodeId> selected;
  int64_t used = 0;
  for (const Candidate& c : candidates) {
    if (used + c.size > options.budget_bytes) {
      continue;  // does not fit; try smaller lower-ranked artifacts
    }
    selected.insert(c.node);
    used += c.size;
  }
  decision.selected_bytes = used;
  for (NodeId v : history.MaterializedArtifacts()) {
    if (selected.count(v) == 0) {
      decision.to_evict.push_back(v);
    }
  }
  for (NodeId v : selected) {
    if (!history.IsMaterialized(v)) {
      decision.to_store.push_back(v);
    }
  }
  return decision;
}

Status Materializer::Apply(
    History& history, storage::ArtifactStore& store, const Decision& decision,
    const std::map<std::string, ArtifactPayload>& available) {
  // Validate before mutating: every newly stored artifact needs its
  // payload at hand, so a FailedPrecondition surfaces with history and
  // store untouched.
  for (NodeId v : decision.to_store) {
    const ArtifactInfo& artifact = history.graph().artifact(v);
    if (available.count(artifact.name) == 0) {
      return Status::FailedPrecondition(
          "payload for artifact '" + artifact.display +
          "' is not available for materialization");
    }
  }
  // Store phase first (evictions used to run first, so a Put failing
  // mid-loop stranded history and store half-applied). A failed Put rolls
  // back what this call already stored; the transient cost is holding
  // old + new bytes until the evict phase trims back under budget.
  std::vector<NodeId> stored;
  for (NodeId v : decision.to_store) {
    const ArtifactInfo& artifact = history.graph().artifact(v);
    Status put = store.Put(artifact.name, available.at(artifact.name),
                           artifact.size_bytes);
    if (put.ok()) {
      put = history.MarkMaterialized(v);
      if (!put.ok()) {
        (void)store.Evict(artifact.name);
      }
    }
    if (!put.ok()) {
      for (NodeId undo : stored) {
        const std::string& name = history.graph().artifact(undo).name;
        (void)history.EvictMaterialized(undo);
        (void)store.Evict(name);
      }
      return put;
    }
    stored.push_back(v);
  }
  for (NodeId v : decision.to_evict) {
    const std::string& name = history.graph().artifact(v).name;
    HYPPO_RETURN_NOT_OK(history.EvictMaterialized(v));
    if (store.Contains(name)) {
      HYPPO_RETURN_NOT_OK(store.Evict(name));
    }
  }
  return Status::OK();
}

}  // namespace hyppo::core
