#ifndef HYPPO_CORE_GRAPH_H_
#define HYPPO_CORE_GRAPH_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/artifact.h"
#include "core/task.h"
#include "hypergraph/hypergraph.h"

namespace hyppo::core {

/// \brief A labelled directed hypergraph over artifacts and tasks — the
/// representation shared by pipelines, augmentations, and the history
/// (paper §III-C).
///
/// Node 0 is always the special source node `s` standing for all storage
/// locations. Nodes are indexed by canonical artifact name; tasks keep
/// their tails/heads in *declaration order* (the structural Hypergraph
/// sorts them, but executor input binding needs the semantic order, e.g.
/// ensemble base models must line up with their declared impls).
class PipelineGraph {
 public:
  PipelineGraph();

  PipelineGraph(const PipelineGraph&) = default;
  PipelineGraph& operator=(const PipelineGraph&) = default;
  PipelineGraph(PipelineGraph&&) noexcept = default;
  PipelineGraph& operator=(PipelineGraph&&) noexcept = default;

  NodeId source() const { return 0; }

  /// Adds an artifact node; fails if the name already exists.
  Result<NodeId> AddArtifact(ArtifactInfo info);

  /// Returns the node with this name, adding it if absent.
  NodeId GetOrAddArtifact(const ArtifactInfo& info);

  /// Adds a task hyperedge with ordered tails/heads (node ids must exist).
  Result<EdgeId> AddTask(TaskInfo info, std::vector<NodeId> tails,
                         std::vector<NodeId> heads);

  /// Adds a load task s -> node (the node becomes retrievable from
  /// storage). Returns the edge id.
  Result<EdgeId> AddLoadTask(NodeId node);

  /// Removes a task edge (used for load-edge eviction in the history).
  Status RemoveTask(EdgeId edge);

  const Hypergraph& hypergraph() const { return graph_; }

  int32_t num_artifacts() const { return graph_.num_nodes(); }
  int32_t num_tasks() const { return graph_.num_edges(); }

  const ArtifactInfo& artifact(NodeId node) const {
    return artifacts_[static_cast<size_t>(node)];
  }
  ArtifactInfo& artifact(NodeId node) {
    return artifacts_[static_cast<size_t>(node)];
  }

  const TaskInfo& task(EdgeId edge) const {
    return tasks_[static_cast<size_t>(edge)];
  }
  TaskInfo& task(EdgeId edge) { return tasks_[static_cast<size_t>(edge)]; }

  /// Ordered (declaration-order) tail/head node lists of a task.
  const std::vector<NodeId>& ordered_tail(EdgeId edge) const {
    return ordered_tails_[static_cast<size_t>(edge)];
  }
  const std::vector<NodeId>& ordered_head(EdgeId edge) const {
    return ordered_heads_[static_cast<size_t>(edge)];
  }

  /// Looks up an artifact node by canonical name.
  Result<NodeId> FindArtifact(const std::string& name) const;
  bool HasArtifact(const std::string& name) const {
    return by_name_.count(name) > 0;
  }

  /// Sink artifacts: non-source nodes with an empty forward star — the
  /// default targets of a pipeline (paper §III-C5).
  std::vector<NodeId> SinkArtifacts() const;

  /// A stable signature of a task edge (logical op, type, config, tail and
  /// head names) used to deduplicate edges during augmentation.
  std::string TaskSignature(EdgeId edge) const;

  /// Graphviz dump with artifact/task labels.
  std::string ToDot(const std::string& name) const;

 private:
  Hypergraph graph_;
  std::vector<ArtifactInfo> artifacts_;
  std::vector<TaskInfo> tasks_;
  std::vector<std::vector<NodeId>> ordered_tails_;
  std::vector<std::vector<NodeId>> ordered_heads_;
  std::map<std::string, NodeId> by_name_;
};

/// \brief A parsed ML pipeline: a labelled hypergraph plus its requested
/// target artifacts.
struct Pipeline {
  PipelineGraph graph;
  std::vector<NodeId> targets;
  /// Identifier used in experiment logs.
  std::string id;
};

}  // namespace hyppo::core

#endif  // HYPPO_CORE_GRAPH_H_
