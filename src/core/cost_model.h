#ifndef HYPPO_CORE_COST_MODEL_H_
#define HYPPO_CORE_COST_MODEL_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "common/result.h"
#include "core/task.h"
#include "ml/registry.h"

namespace hyppo::core {

/// \brief Monetary cost model (paper §III-C3 and §V-B1).
///
///   price(e)   = time(e) × price_per_time_unit
///              + Σ_{v ∈ tail(e)} size(v) × price_per_size_unit
///   price(run) = cet × 0.00018 + B × 0.023
///
/// The constants are the paper's averaged AWS/GCP/Azure quotes; sizes are
/// charged per GB.
struct PricingModel {
  double price_per_time_unit = 0.00018;  // EUR per second of compute
  double price_per_gb = 0.023;           // EUR per GB of storage

  /// Monetary cost of one task given its duration and total input bytes.
  double TaskPrice(double seconds, int64_t input_bytes) const {
    return seconds * price_per_time_unit +
           static_cast<double>(input_bytes) / 1e9 * price_per_gb;
  }

  /// Monetary cost of a whole experiment: cumulative execution time plus
  /// the rented storage budget.
  double ExperimentPrice(double cet_seconds, int64_t budget_bytes) const {
    return cet_seconds * price_per_time_unit +
           static_cast<double>(budget_bytes) / 1e9 * price_per_gb;
  }
};

/// \brief Task time estimator (paper §IV-G).
///
/// Maintains per-(impl, task type) statistics bucketed by the logarithm of
/// the input cell count ("crude estimate buckets rather than specific
/// values"). With no observations it falls back to the implementation's
/// registered cost formula (PhysicalOperator::CostHint). The monitor feeds
/// observations after every executed task, so estimates sharpen as the
/// history grows.
///
/// Thread-safe: concurrent serving sessions (src/serving) Observe from
/// their execution threads while other sessions estimate during
/// planning, so the bucket map is guarded by an internal mutex.
class CostEstimator {
 public:
  explicit CostEstimator(
      const ml::OperatorRegistry* registry = &ml::OperatorRegistry::Global())
      : registry_(registry) {}

  /// Records an observed execution.
  void Observe(const std::string& impl, TaskType type, int64_t rows,
               int64_t cols, double seconds);

  /// Estimated execution time of a (bound) task on the given input shape.
  /// Load tasks are not handled here — their cost comes from the storage
  /// tier model.
  double EstimateTaskSeconds(const TaskInfo& task, int64_t rows,
                             int64_t cols) const;

  /// Number of recorded observations.
  int64_t num_observations() const {
    return num_observations_.load(std::memory_order_relaxed);
  }

  /// Per-tier throughput calibration (kernel tier vs the blocked-tier
  /// plateau the registered CostHint formulas were tuned against).
  /// Formula-based estimates — the CostHint fallback and the generic
  /// linear-in-cells guess — are divided by this scale, so when the simd
  /// tier runs ~3x faster the planner's a-priori costs shrink
  /// accordingly instead of inheriting blocked-tier constants. Observed
  /// statistics are never scaled: they already measure the active tier.
  /// Runtime computes the scale at startup from
  /// ml::kernels::MeasureGemmGflops() / kCalibrationBaselineGflops when
  /// RuntimeOptions::calibrate_kernel_costs is set.
  void SetComputeThroughputScale(double scale) {
    compute_throughput_scale_.store(scale > 0.0 ? scale : 1.0,
                                    std::memory_order_relaxed);
  }
  double compute_throughput_scale() const {
    return compute_throughput_scale_.load(std::memory_order_relaxed);
  }

 private:
  struct BucketStats {
    double total_seconds = 0.0;
    double total_cells = 0.0;
    int64_t count = 0;
  };

  static std::string StatsKey(const std::string& impl, TaskType type) {
    return impl + "|" + TaskTypeToString(type);
  }
  static int CellBucket(int64_t rows, int64_t cols);

  const ml::OperatorRegistry* registry_;
  /// Guards stats_ (observations land from execution threads while
  /// planners estimate concurrently).
  mutable std::mutex stats_mutex_;
  std::map<std::string, std::map<int, BucketStats>> stats_;
  std::atomic<int64_t> num_observations_{0};
  std::atomic<double> compute_throughput_scale_{1.0};
};

}  // namespace hyppo::core

#endif  // HYPPO_CORE_COST_MODEL_H_
