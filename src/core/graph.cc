#include "core/graph.h"

#include <sstream>

namespace hyppo::core {

const char* ArtifactKindToString(ArtifactKind kind) {
  switch (kind) {
    case ArtifactKind::kSource:
      return "source";
    case ArtifactKind::kRaw:
      return "raw";
    case ArtifactKind::kTrain:
      return "train";
    case ArtifactKind::kTest:
      return "test";
    case ArtifactKind::kData:
      return "data";
    case ArtifactKind::kOpState:
      return "op-state";
    case ArtifactKind::kPredictions:
      return "predictions";
    case ArtifactKind::kValue:
      return "value";
  }
  return "unknown";
}

const char* TaskTypeToString(TaskType type) {
  switch (type) {
    case TaskType::kLoad:
      return "load";
    case TaskType::kSplit:
      return "split";
    case TaskType::kFit:
      return "fit";
    case TaskType::kTransform:
      return "transform";
    case TaskType::kPredict:
      return "predict";
    case TaskType::kEvaluate:
      return "evaluate";
  }
  return "unknown";
}

Result<TaskType> TaskTypeFromString(const std::string& name) {
  if (name == "load") return TaskType::kLoad;
  if (name == "split") return TaskType::kSplit;
  if (name == "fit") return TaskType::kFit;
  if (name == "transform") return TaskType::kTransform;
  if (name == "predict") return TaskType::kPredict;
  if (name == "evaluate") return TaskType::kEvaluate;
  return Status::InvalidArgument("unknown task type '" + name + "'");
}

Result<ml::MlTask> ToMlTask(TaskType type) {
  switch (type) {
    case TaskType::kSplit:
      return ml::MlTask::kSplit;
    case TaskType::kFit:
      return ml::MlTask::kFit;
    case TaskType::kTransform:
      return ml::MlTask::kTransform;
    case TaskType::kPredict:
      return ml::MlTask::kPredict;
    case TaskType::kEvaluate:
      return ml::MlTask::kEvaluate;
    case TaskType::kLoad:
      return Status::InvalidArgument("load tasks have no ML counterpart");
  }
  return Status::InvalidArgument("unknown task type");
}

PipelineGraph::PipelineGraph() {
  NodeId source = graph_.AddNode();
  (void)source;
  ArtifactInfo info;
  info.name = "__source__";
  info.kind = ArtifactKind::kSource;
  info.display = "s";
  artifacts_.push_back(info);
  by_name_.emplace(info.name, 0);
}

Result<NodeId> PipelineGraph::AddArtifact(ArtifactInfo info) {
  if (info.name.empty()) {
    return Status::InvalidArgument("artifact name must be non-empty");
  }
  if (by_name_.count(info.name) > 0) {
    return Status::AlreadyExists("artifact '" + info.name +
                                 "' already exists");
  }
  NodeId node = graph_.AddNode();
  by_name_.emplace(info.name, node);
  artifacts_.push_back(std::move(info));
  return node;
}

NodeId PipelineGraph::GetOrAddArtifact(const ArtifactInfo& info) {
  auto it = by_name_.find(info.name);
  if (it != by_name_.end()) {
    return it->second;
  }
  Result<NodeId> added = AddArtifact(info);
  return added.ValueOrDie();
}

Result<EdgeId> PipelineGraph::AddTask(TaskInfo info, std::vector<NodeId> tails,
                                      std::vector<NodeId> heads) {
  HYPPO_ASSIGN_OR_RETURN(EdgeId edge, graph_.AddEdge(tails, heads));
  // The structural edge may coalesce duplicates; keep declaration order
  // for executor binding.
  if (tasks_.size() < static_cast<size_t>(edge)) {
    return Status::Internal("task label vector out of sync");
  }
  tasks_.resize(static_cast<size_t>(edge) + 1);
  ordered_tails_.resize(static_cast<size_t>(edge) + 1);
  ordered_heads_.resize(static_cast<size_t>(edge) + 1);
  tasks_[static_cast<size_t>(edge)] = std::move(info);
  ordered_tails_[static_cast<size_t>(edge)] = std::move(tails);
  ordered_heads_[static_cast<size_t>(edge)] = std::move(heads);
  return edge;
}

Result<EdgeId> PipelineGraph::AddLoadTask(NodeId node) {
  if (node == source() || !graph_.IsValidNode(node)) {
    return Status::InvalidArgument("invalid load target node");
  }
  TaskInfo info;
  info.logical_op = kLoadOp;
  info.type = TaskType::kLoad;
  return AddTask(std::move(info), {source()}, {node});
}

Status PipelineGraph::RemoveTask(EdgeId edge) { return graph_.RemoveEdge(edge); }

Result<NodeId> PipelineGraph::FindArtifact(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return Status::NotFound("no artifact named '" + name + "'");
  }
  return it->second;
}

std::vector<NodeId> PipelineGraph::SinkArtifacts() const {
  std::vector<NodeId> sinks;
  for (NodeId v = 1; v < graph_.num_nodes(); ++v) {
    if (graph_.fstar(v).empty()) {
      sinks.push_back(v);
    }
  }
  return sinks;
}

std::string PipelineGraph::TaskSignature(EdgeId edge) const {
  const TaskInfo& info = tasks_[static_cast<size_t>(edge)];
  std::ostringstream os;
  os << info.logical_op << "|" << TaskTypeToString(info.type) << "|"
     << info.config.ToString() << "|" << info.impl << "|";
  for (NodeId t : ordered_tails_[static_cast<size_t>(edge)]) {
    os << artifact(t).name << ",";
  }
  os << "->";
  for (NodeId h : ordered_heads_[static_cast<size_t>(edge)]) {
    os << artifact(h).name << ",";
  }
  return os.str();
}

std::string PipelineGraph::ToDot(const std::string& name) const {
  std::vector<std::string> node_labels;
  node_labels.reserve(static_cast<size_t>(graph_.num_nodes()));
  for (NodeId v = 0; v < graph_.num_nodes(); ++v) {
    const ArtifactInfo& a = artifact(v);
    node_labels.push_back(a.display.empty() ? a.name.substr(0, 8)
                                            : a.display);
  }
  std::vector<std::string> edge_labels;
  edge_labels.reserve(static_cast<size_t>(graph_.num_edge_slots()));
  for (EdgeId e = 0; e < graph_.num_edge_slots(); ++e) {
    if (!graph_.IsLiveEdge(e)) {
      edge_labels.emplace_back();
      continue;
    }
    const TaskInfo& t = task(e);
    edge_labels.push_back(t.logical_op + "." + TaskTypeToString(t.type));
  }
  return graph_.ToDot(name, &node_labels, &edge_labels);
}

}  // namespace hyppo::core
