#include "core/batch_planner.h"

#include <map>
#include <set>
#include <string>
#include <utility>

#include "common/clock.h"

namespace hyppo::core {

Result<Pipeline> BatchPlanner::MergePipelines(
    const std::vector<Pipeline>& pipelines,
    std::vector<std::vector<NodeId>>* member_targets, Stats* stats) {
  if (pipelines.empty()) {
    return Status::InvalidArgument("cannot merge an empty pipeline batch");
  }
  Pipeline merged;
  merged.id = "batch(" + pipelines.front().id + "+" +
              std::to_string(pipelines.size() - 1) + ")";
  if (member_targets != nullptr) {
    member_targets->clear();
    member_targets->reserve(pipelines.size());
  }
  // Artifacts dedup by canonical name, tasks by signature — the same
  // identity the history uses, so two members' shared prefix folds into
  // one sub-hypergraph with one node id per artifact.
  std::set<std::string> signatures;
  std::set<NodeId> merged_target_set;
  for (const Pipeline& pipeline : pipelines) {
    const PipelineGraph& graph = pipeline.graph;
    std::vector<NodeId> to_merged(static_cast<size_t>(graph.num_artifacts()),
                                  kInvalidNode);
    to_merged[static_cast<size_t>(graph.source())] = merged.graph.source();
    for (NodeId v = 1; v < graph.num_artifacts(); ++v) {
      to_merged[static_cast<size_t>(v)] =
          merged.graph.GetOrAddArtifact(graph.artifact(v));
    }
    for (EdgeId e : graph.hypergraph().LiveEdges()) {
      std::vector<NodeId> tails;
      tails.reserve(graph.ordered_tail(e).size());
      for (NodeId t : graph.ordered_tail(e)) {
        tails.push_back(to_merged[static_cast<size_t>(t)]);
      }
      std::vector<NodeId> heads;
      heads.reserve(graph.ordered_head(e).size());
      for (NodeId h : graph.ordered_head(e)) {
        heads.push_back(to_merged[static_cast<size_t>(h)]);
      }
      HYPPO_ASSIGN_OR_RETURN(
          const EdgeId added,
          merged.graph.AddTask(graph.task(e), std::move(tails),
                               std::move(heads)));
      if (!signatures.insert(merged.graph.TaskSignature(added)).second) {
        HYPPO_RETURN_NOT_OK(merged.graph.RemoveTask(added));
        if (stats != nullptr) {
          ++stats->merged_tasks;
        }
      }
    }
    std::vector<NodeId> targets;
    targets.reserve(pipeline.targets.size());
    for (NodeId t : pipeline.targets) {
      const NodeId mt = to_merged[static_cast<size_t>(t)];
      targets.push_back(mt);
      if (merged_target_set.insert(mt).second) {
        merged.targets.push_back(mt);
      }
    }
    if (member_targets != nullptr) {
      member_targets->push_back(std::move(targets));
    }
  }
  if (stats != nullptr) {
    stats->distinct_tasks = merged.graph.num_tasks();
  }
  return merged;
}

Result<BatchPlanner::Planned> BatchPlanner::PlanBatch(
    const std::vector<Pipeline>& pipelines, const History& history,
    const Augmenter& augmenter, const Options& options,
    PlanGenerator::SearchStats* stats) {
  const WallClock clock;
  const Stopwatch stopwatch(clock);
  Planned planned;
  std::vector<std::vector<NodeId>> member_targets;
  HYPPO_ASSIGN_OR_RETURN(
      const Pipeline merged,
      MergePipelines(pipelines, &member_targets, &planned.stats));
  // ONE augmentation over the folded graph: equivalence splices, history
  // reuse, and load edges are discovered once instead of per member (the
  // pipeline is a subhypergraph of its augmentation with identical node
  // ids, so the member target ids carry over).
  HYPPO_ASSIGN_OR_RETURN(
      planned.merged,
      augmenter.Augment(merged, history, options.augment));
  // ONE admissible-bound fixed point, shared by every member search (the
  // bounds depend only on the graph and weights, not the targets).
  const PlanGenerator::LowerBounds bounds =
      PlanGenerator::ComputeLowerBounds(planned.merged);
  const PlanGenerator generator;
  planned.members.reserve(pipelines.size());
  for (std::vector<NodeId>& targets : member_targets) {
    Result<Plan> search = generator.OptimizeForTargets(
        planned.merged, targets, options.search, stats, &bounds);
    if (!search.ok() && search.status().IsResourceExhausted()) {
      // Accuracy sacrificed for a good plan in linear time (§IV-E), the
      // same trade HyppoMethod makes when its expansion budget runs out.
      PlanGenerator::Options greedy = options.search;
      greedy.strategy = PlanGenerator::Strategy::kGreedy;
      search = generator.OptimizeForTargets(planned.merged, targets, greedy,
                                            stats, &bounds);
    }
    MemberPlan member;
    HYPPO_ASSIGN_OR_RETURN(member.plan, std::move(search));
    member.targets = std::move(targets);
    planned.members.push_back(std::move(member));
  }
  // Shared-prefix accounting: every plan edge selected by k > 1 members
  // is work the batch executor pays once and seeds k - 1 times.
  std::map<EdgeId, int64_t> selected_by;
  for (const MemberPlan& member : planned.members) {
    for (EdgeId e : member.plan.edges) {
      ++selected_by[e];
    }
  }
  for (const auto& [edge, count] : selected_by) {
    (void)edge;
    if (count > 1) {
      planned.stats.shared_prefix_hits += count - 1;
    }
  }
  planned.optimize_seconds = stopwatch.Elapsed();
  return planned;
}

}  // namespace hyppo::core
