#include "core/optimizer.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <queue>

#include "analysis/graph_checks.h"
#include "common/hash.h"
#include "hypergraph/algorithms.h"

namespace hyppo::core {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// An incomplete plan (paper: Π with cost, visited, frontier, plan edges).
struct Partial {
  double cost = 0.0;
  double priority = 0.0;  // cost + heuristic (A*), else cost
  std::vector<uint64_t> visited;  // bitset over augmentation nodes
  std::vector<NodeId> frontier;   // sorted; never contains the source
  std::vector<EdgeId> edges;
};

bool TestBit(const std::vector<uint64_t>& bits, NodeId node) {
  return (bits[static_cast<size_t>(node) >> 6] >>
          (static_cast<size_t>(node) & 63)) &
         1;
}

void SetBit(std::vector<uint64_t>& bits, NodeId node) {
  bits[static_cast<size_t>(node) >> 6] |=
      uint64_t{1} << (static_cast<size_t>(node) & 63);
}

uint64_t StateSignature(const Partial& partial) {
  uint64_t hash = 0x9e3779b97f4a7c15ULL;
  for (uint64_t word : partial.visited) {
    hash = HashCombine(hash, word);
  }
  for (NodeId v : partial.frontier) {
    hash = HashCombine(hash, static_cast<uint64_t>(v) + 1);
  }
  return hash;
}

// Admissible lower bound on the cost of completing a partial plan:
// dist(v) = min over incoming edges e of w(e) + max over non-source tail
// nodes of dist(u). Any plan deriving v pays at least dist(v); a partial
// plan must still derive every frontier node, and the max over them is a
// valid joint lower bound (shared sub-derivations prevent summing).
std::vector<double> ComputeLowerBounds(const Augmentation& aug) {
  const Hypergraph& graph = aug.graph.hypergraph();
  const NodeId source = aug.graph.source();
  std::vector<double> dist(static_cast<size_t>(graph.num_nodes()), kInf);
  dist[static_cast<size_t>(source)] = 0.0;
  // Fixed-point iteration; converges in at most the longest-path length.
  bool changed = true;
  while (changed) {
    changed = false;
    for (EdgeId e = 0; e < graph.num_edge_slots(); ++e) {
      if (!graph.IsLiveEdge(e)) {
        continue;
      }
      double tail_max = 0.0;
      for (NodeId u : graph.edge(e).tail) {
        if (u == source) {
          continue;
        }
        tail_max = std::max(tail_max, dist[static_cast<size_t>(u)]);
        if (tail_max == kInf) {
          break;
        }
      }
      if (tail_max == kInf) {
        continue;
      }
      const double through = aug.edge_weight[static_cast<size_t>(e)] + tail_max;
      for (NodeId h : graph.edge(e).head) {
        if (through < dist[static_cast<size_t>(h)]) {
          dist[static_cast<size_t>(h)] = through;
          changed = true;
        }
      }
    }
  }
  return dist;
}

double HeuristicFor(const Partial& partial,
                    const std::vector<double>& lower_bounds) {
  double h = 0.0;
  for (NodeId v : partial.frontier) {
    h = std::max(h, lower_bounds[static_cast<size_t>(v)]);
  }
  return h == kInf ? 0.0 : h;
}

// Applies one move (a set of hyperedges, one per frontier node) to a
// partial plan — the body of EXPAND (Algorithm 2, lines 6-14).
Partial ApplyMove(const Augmentation& aug, const Partial& base,
                  const std::vector<EdgeId>& move, NodeId source) {
  Partial next;
  next.cost = base.cost;
  next.visited = base.visited;
  next.edges = base.edges;
  const Hypergraph& graph = aug.graph.hypergraph();
  std::vector<NodeId> frontier_candidates;
  for (EdgeId e : move) {
    const Hyperedge& edge = graph.edge(e);
    bool contributes = false;
    for (NodeId h : edge.head) {
      if (!TestBit(next.visited, h)) {
        contributes = true;
        break;
      }
    }
    if (!contributes) {
      continue;  // everything this edge produces is already planned
    }
    next.cost += aug.edge_weight[static_cast<size_t>(e)];
    for (NodeId h : edge.head) {
      SetBit(next.visited, h);
    }
    next.edges.push_back(e);
    for (NodeId u : edge.tail) {
      if (u != source && !TestBit(next.visited, u)) {
        frontier_candidates.push_back(u);
      }
    }
  }
  // Candidates may have become visited by a later edge in the same move.
  for (NodeId u : frontier_candidates) {
    if (!TestBit(next.visited, u)) {
      next.frontier.push_back(u);
    }
  }
  std::sort(next.frontier.begin(), next.frontier.end());
  next.frontier.erase(
      std::unique(next.frontier.begin(), next.frontier.end()),
      next.frontier.end());
  return next;
}

// Enumerates the cross product of backward-star options over the frontier
// (Algorithm 2, lines 2-5) and invokes `emit` per move.
template <typename Emit>
bool ForEachMove(const Augmentation& aug, const Partial& partial,
                 int64_t* budget, const Emit& emit) {
  const Hypergraph& graph = aug.graph.hypergraph();
  const size_t k = partial.frontier.size();
  std::vector<const std::vector<EdgeId>*> options(k);
  for (size_t i = 0; i < k; ++i) {
    options[i] = &graph.bstar(partial.frontier[i]);
    if (options[i]->empty()) {
      return true;  // dead end: some frontier node cannot be derived
    }
  }
  std::vector<size_t> index(k, 0);
  std::vector<EdgeId> move;
  while (true) {
    if (--(*budget) < 0) {
      return false;
    }
    move.clear();
    for (size_t i = 0; i < k; ++i) {
      move.push_back((*options[i])[index[i]]);
    }
    std::sort(move.begin(), move.end());
    move.erase(std::unique(move.begin(), move.end()), move.end());
    emit(move);
    // Advance the odometer.
    size_t pos = 0;
    while (pos < k && ++index[pos] == options[pos]->size()) {
      index[pos] = 0;
      ++pos;
    }
    if (pos == k) {
      return true;
    }
  }
}

Partial MakeInitialPartial(const Augmentation& aug,
                           const PlanGenerator::Options& options) {
  const Hypergraph& graph = aug.graph.hypergraph();
  const NodeId source = aug.graph.source();
  Partial initial;
  initial.visited.assign(
      (static_cast<size_t>(graph.num_nodes()) + 63) / 64, 0);
  for (NodeId t : aug.targets) {
    initial.frontier.push_back(t);
  }
  // Exploration mode: force mo = ceil(#new_tasks * c_exp) new tasks into
  // the initial plan (§IV-E).
  if (options.exploration > 0.0 && !aug.new_tasks.empty()) {
    const int64_t mo = static_cast<int64_t>(
        std::ceil(static_cast<double>(aug.new_tasks.size()) *
                  std::min(1.0, options.exploration)));
    for (int64_t i = 0; i < mo; ++i) {
      const EdgeId e = aug.new_tasks[static_cast<size_t>(i)];
      const Hyperedge& edge = graph.edge(e);
      bool contributes = false;
      for (NodeId h : edge.head) {
        if (!TestBit(initial.visited, h)) {
          contributes = true;
        }
      }
      if (!contributes) {
        continue;
      }
      initial.cost += aug.edge_weight[static_cast<size_t>(e)];
      initial.edges.push_back(e);
      for (NodeId h : edge.head) {
        SetBit(initial.visited, h);
      }
      for (NodeId u : edge.tail) {
        if (u != source) {
          initial.frontier.push_back(u);
        }
      }
    }
  }
  std::sort(initial.frontier.begin(), initial.frontier.end());
  initial.frontier.erase(
      std::unique(initial.frontier.begin(), initial.frontier.end()),
      initial.frontier.end());
  // Frontier nodes already produced by forced tasks need no derivation.
  std::vector<NodeId> frontier;
  for (NodeId v : initial.frontier) {
    if (!TestBit(initial.visited, v)) {
      frontier.push_back(v);
    }
  }
  initial.frontier = std::move(frontier);
  return initial;
}

}  // namespace

const char* PlanGenerator::StrategyToString(Strategy strategy) {
  switch (strategy) {
    case Strategy::kStack:
      return "HYPPO-STACK";
    case Strategy::kPriority:
      return "HYPPO-PRIORITY";
    case Strategy::kGreedy:
      return "HYPPO-GREEDY";
    case Strategy::kAStar:
      return "HYPPO-ASTAR";
  }
  return "unknown";
}

Status VerifyPlanStructure(const Augmentation& aug,
                           const std::vector<NodeId>& targets,
                           const Plan& plan) {
  analysis::PlanSpec spec;
  spec.graph = &aug.graph.hypergraph();
  spec.edges = &plan.edges;
  spec.source = aug.graph.source();
  spec.targets = &targets;
  spec.edge_weight = &aug.edge_weight;
  spec.claimed_cost = plan.cost;
  spec.edge_seconds = &aug.edge_seconds;
  spec.claimed_seconds = plan.seconds;
  analysis::AnalysisReport report = analysis::CheckPlanStructure(spec);
  if (!report.ok()) {
    return Status::Internal("plan verification failed (" + report.Summary() +
                            "):\n" + report.ToString());
  }
  return Status::OK();
}

Result<Plan> PlanGenerator::Optimize(const Augmentation& aug,
                                     const Options& options,
                                     SearchStats* stats) const {
  return OptimizeForTargets(aug, aug.targets, options, stats);
}

Result<Plan> PlanGenerator::OptimizeForTargets(
    const Augmentation& aug, const std::vector<NodeId>& targets,
    const Options& options, SearchStats* stats) const {
  if (targets.empty()) {
    return Status::InvalidArgument("no target artifacts");
  }
  const Hypergraph& graph = aug.graph.hypergraph();
  const NodeId source = aug.graph.source();
  for (NodeId t : targets) {
    if (!graph.IsValidNode(t) || t == source) {
      return Status::InvalidArgument("invalid target node");
    }
  }
  SearchStats local_stats;
  SearchStats& st = stats != nullptr ? *stats : local_stats;

  Augmentation const* aug_ptr = &aug;
  Partial initial;
  {
    Augmentation targeted;  // only used to reuse MakeInitialPartial
    PlanGenerator::Options init_options = options;
    if (&targets != &aug.targets) {
      // Build the initial partial from the requested targets.
      Partial p;
      p.visited.assign((static_cast<size_t>(graph.num_nodes()) + 63) / 64, 0);
      p.frontier = targets;
      std::sort(p.frontier.begin(), p.frontier.end());
      p.frontier.erase(std::unique(p.frontier.begin(), p.frontier.end()),
                       p.frontier.end());
      initial = std::move(p);
    } else {
      initial = MakeInitialPartial(aug, init_options);
    }
    (void)targeted;
  }

  std::vector<double> lower_bounds;
  if (options.strategy == Strategy::kAStar) {
    lower_bounds = ComputeLowerBounds(aug);
    initial.priority = initial.cost + HeuristicFor(initial, lower_bounds);
  } else {
    initial.priority = initial.cost;
  }

  // Greedy variant: follow the minimum-weight edge per frontier node;
  // each node is expanded at most once (linear time).
  if (options.strategy == Strategy::kGreedy) {
    Partial current = std::move(initial);
    while (!current.frontier.empty()) {
      std::vector<EdgeId> move;
      for (NodeId v : current.frontier) {
        const std::vector<EdgeId>& choices = graph.bstar(v);
        if (choices.empty()) {
          return Status::FailedPrecondition(
              "greedy search: artifact cannot be derived");
        }
        EdgeId best = choices[0];
        for (EdgeId e : choices) {
          if (aug.edge_weight[static_cast<size_t>(e)] <
              aug.edge_weight[static_cast<size_t>(best)]) {
            best = e;
          }
        }
        move.push_back(best);
      }
      std::sort(move.begin(), move.end());
      move.erase(std::unique(move.begin(), move.end()), move.end());
      Partial next = ApplyMove(*aug_ptr, current, move, source);
      ++st.expansions;
      if (next.frontier == current.frontier) {
        return Status::Internal("greedy search made no progress");
      }
      current = std::move(next);
    }
    Plan plan;
    plan.edges = std::move(current.edges);
    plan.cost = current.cost;
    for (EdgeId e : plan.edges) {
      plan.seconds += aug.edge_seconds[static_cast<size_t>(e)];
    }
    if (options.verify_plans) {
      HYPPO_RETURN_NOT_OK(VerifyPlanStructure(aug, targets, plan));
    }
    return plan;
  }

  double best_cost = kInf;
  Partial best_plan;
  bool found = false;
  int64_t budget = options.max_expansions;
  std::map<uint64_t, double> dominance;
  // With dominance pruning on, states are also filtered at insertion time;
  // this bounds the frontier containers' memory, which would otherwise
  // balloon on alternative-rich augmentations before the expansion budget
  // triggers.
  auto dominated_at_push = [&](const Partial& p) {
    if (!options.dominance_pruning) {
      return false;
    }
    const uint64_t signature = StateSignature(p);
    auto [it, inserted] = dominance.emplace(signature, p.cost);
    if (!inserted) {
      if (it->second <= p.cost) {
        ++st.pruned_by_dominance;
        return true;
      }
      it->second = p.cost;
    }
    return false;
  };

  auto is_complete = [](const Partial& p) { return p.frontier.empty(); };
  auto consider_complete = [&](const Partial& p) {
    // Guard: accept only executable plans (cycle-safety; see DESIGN.md).
    if (p.cost < best_cost &&
        IsValidPlan(graph, p.edges, {source}, targets)) {
      best_cost = p.cost;
      best_plan = p;
      found = true;
    }
  };

  if (options.strategy == Strategy::kStack) {
    std::vector<Partial> stack;
    stack.push_back(std::move(initial));
    while (!stack.empty()) {
      Partial current = std::move(stack.back());
      stack.pop_back();
      ++st.plans_examined;
      if (current.cost >= best_cost) {
        ++st.pruned_by_bound;
        continue;
      }
      if (is_complete(current)) {
        consider_complete(current);
        continue;
      }
      if (options.dominance_pruning) {
        // A strictly better same-signature state was pushed since.
        auto it = dominance.find(StateSignature(current));
        if (it != dominance.end() && it->second < current.cost - 1e-15) {
          ++st.pruned_by_dominance;
          continue;
        }
      }
      ++st.expansions;
      const bool within_budget = ForEachMove(
          aug, current, &budget, [&](const std::vector<EdgeId>& move) {
            Partial next = ApplyMove(*aug_ptr, current, move, source);
            if (next.cost >= best_cost) {
              ++st.pruned_by_bound;
            } else if (!dominated_at_push(next)) {
              stack.push_back(std::move(next));
            }
          });
      if (!within_budget) {
        return Status::ResourceExhausted(
            "plan search exceeded the expansion budget");
      }
    }
  } else {  // kPriority / kAStar
    auto by_priority = [](const Partial& a, const Partial& b) {
      return a.priority > b.priority;
    };
    std::priority_queue<Partial, std::vector<Partial>, decltype(by_priority)>
        queue(by_priority);
    queue.push(std::move(initial));
    while (!queue.empty()) {
      Partial current = queue.top();
      queue.pop();
      ++st.plans_examined;
      if (current.priority >= best_cost) {
        // Everything left is at least as expensive: done.
        break;
      }
      if (is_complete(current)) {
        consider_complete(current);
        continue;
      }
      if (options.dominance_pruning) {
        // A strictly better same-signature state was pushed since.
        auto it = dominance.find(StateSignature(current));
        if (it != dominance.end() && it->second < current.cost - 1e-15) {
          ++st.pruned_by_dominance;
          continue;
        }
      }
      ++st.expansions;
      const bool within_budget = ForEachMove(
          aug, current, &budget, [&](const std::vector<EdgeId>& move) {
            Partial next = ApplyMove(*aug_ptr, current, move, source);
            next.priority =
                options.strategy == Strategy::kAStar
                    ? next.cost + HeuristicFor(next, lower_bounds)
                    : next.cost;
            if (next.priority >= best_cost) {
              ++st.pruned_by_bound;
            } else if (!dominated_at_push(next)) {
              queue.push(std::move(next));
            }
          });
      if (!within_budget) {
        return Status::ResourceExhausted(
            "plan search exceeded the expansion budget");
      }
    }
  }

  if (!found) {
    return Status::FailedPrecondition(
        "no executable plan connects the source to the targets");
  }
  Plan plan;
  plan.edges = std::move(best_plan.edges);
  plan.cost = best_plan.cost;
  for (EdgeId e : plan.edges) {
    plan.seconds += aug.edge_seconds[static_cast<size_t>(e)];
  }
  if (options.verify_plans) {
    HYPPO_RETURN_NOT_OK(VerifyPlanStructure(aug, targets, plan));
  }
  return plan;
}

Result<Plan> PlanGenerator::OptimizePerTarget(const Augmentation& aug,
                                              const Options& options,
                                              SearchStats* stats) const {
  if (aug.targets.empty()) {
    return Status::InvalidArgument("no target artifacts");
  }
  Plan combined;
  std::vector<bool> in_plan(
      static_cast<size_t>(aug.graph.hypergraph().num_edge_slots()), false);
  for (NodeId target : aug.targets) {
    HYPPO_ASSIGN_OR_RETURN(
        Plan single, OptimizeForTargets(aug, {target}, options, stats));
    for (EdgeId e : single.edges) {
      if (!in_plan[static_cast<size_t>(e)]) {
        in_plan[static_cast<size_t>(e)] = true;
        combined.edges.push_back(e);
        combined.cost += aug.edge_weight[static_cast<size_t>(e)];
        combined.seconds += aug.edge_seconds[static_cast<size_t>(e)];
      }
    }
  }
  if (options.verify_plans) {
    HYPPO_RETURN_NOT_OK(VerifyPlanStructure(aug, aug.targets, combined));
  }
  return combined;
}

Result<Plan> PlanGenerator::BruteForce(const Augmentation& aug) const {
  Options options;
  options.strategy = Strategy::kStack;
  options.dominance_pruning = false;
  options.max_expansions = std::numeric_limits<int64_t>::max();
  // Disable bound pruning by running the stack search but with pruning
  // against best kept — pruning against the best bound does not change the
  // returned optimum, so the standard stack search already IS exhaustive
  // up to bound pruning; use it directly.
  return Optimize(aug, options);
}

}  // namespace hyppo::core
