#include "core/optimizer.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <condition_variable>
#include <limits>
#include <mutex>
#include <thread>

#include "analysis/graph_checks.h"
#include "common/antichain.h"
#include "common/hash.h"
#include "common/object_pool.h"
#include "common/thread_pool.h"
#include "hypergraph/algorithms.h"

namespace hyppo::core {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kCostEps = 1e-15;

using LowerBounds = PlanGenerator::LowerBounds;
using SearchStats = PlanGenerator::SearchStats;
using Strategy = PlanGenerator::Strategy;

// An incomplete plan (paper: Π with cost, visited, frontier, plan edges).
struct Partial {
  double cost = 0.0;
  double priority = 0.0;  // admissible lower bound on completion, else cost
  std::vector<uint64_t> visited;  // bitset over augmentation nodes
  std::vector<NodeId> frontier;   // sorted; never contains the source
  std::vector<EdgeId> edges;
};

bool TestBit(const std::vector<uint64_t>& bits, NodeId node) {
  return (bits[static_cast<size_t>(node) >> 6] >>
          (static_cast<size_t>(node) & 63)) &
         1;
}

void SetBit(std::vector<uint64_t>& bits, NodeId node) {
  bits[static_cast<size_t>(node) >> 6] |=
      uint64_t{1} << (static_cast<size_t>(node) & 63);
}

// Antichain dominance, keyed by the exact frontier. Two partial plans
// with the same frontier face the same remaining choices, so one that has
// visited a superset of the other's nodes at no greater cost can replay
// any completion of the weaker plan at most as expensively — the weaker
// plan is prunable. The table stores, per frontier, the antichain of
// (visited, cost) entries; a full-state min-table (the previous
// structure) is the degenerate case that only prunes exact revisits.
// The full frontier is stored as the key — a bare 64-bit hash would merge
// colliding states and could prune a cheaper optimal plan.
struct FrontierHash {
  size_t operator()(const std::vector<NodeId>& frontier) const {
    uint64_t hash = 0x9e3779b97f4a7c15ULL;
    for (NodeId v : frontier) {
      hash = HashCombine(hash, static_cast<uint64_t>(v) + 1);
    }
    return static_cast<size_t>(hash);
  }
};

using DominanceTable = ShardedAntichainTable<std::vector<NodeId>,
                                             FrontierHash>;

// Admissible priority (lower bound on the final cost of any completion):
//   max( cost + max_{v in frontier} min_incoming(v),
//        max_{v in frontier} derive_cost(v) ).
// The first term is sound because every frontier node still needs at least
// one more edge that the partial has not paid for (and one edge can cover
// several frontier nodes, hence max, not sum). The second is sound because
// the final plan contains a full B-derivation of each frontier node, which
// costs at least derive_cost(v) — but it must NOT be added to `cost`: the
// partial may already have paid for parts of that derivation (visited
// tails), and cost + derive_cost would double-count them. The previous A*
// heuristic made exactly that mistake and could prune the optimum
// (regression-tested in optimizer_parallel_test.cc).
double AdmissiblePriority(const Partial& p, const LowerBounds& lb) {
  double final_edge = 0.0;
  double total = p.cost;
  for (NodeId v : p.frontier) {
    final_edge = std::max(final_edge, lb.min_incoming[static_cast<size_t>(v)]);
    total = std::max(total, lb.derive_cost[static_cast<size_t>(v)]);
  }
  return std::max(p.cost + final_edge, total);
}

bool WorsePriority(const Partial& a, const Partial& b) {
  return a.priority > b.priority;
}

// Applies one move (a set of hyperedges, one per frontier node) to a
// partial plan — the body of EXPAND (Algorithm 2, lines 6-14). Writes into
// `next` (typically recycled from an ObjectPool, so its vectors keep their
// capacity and the steady-state search stops allocating).
void ApplyMoveInto(const Augmentation& aug, const Partial& base,
                   const std::vector<EdgeId>& move, NodeId source,
                   std::vector<NodeId>& scratch, Partial& next) {
  next.cost = base.cost;
  next.priority = 0.0;
  next.visited = base.visited;
  next.edges = base.edges;
  next.frontier.clear();
  scratch.clear();
  const Hypergraph& graph = aug.graph.hypergraph();
  for (EdgeId e : move) {
    const Hyperedge& edge = graph.edge(e);
    bool contributes = false;
    for (NodeId h : edge.head) {
      if (!TestBit(next.visited, h)) {
        contributes = true;
        break;
      }
    }
    if (!contributes) {
      continue;  // everything this edge produces is already planned
    }
    next.cost += aug.edge_weight[static_cast<size_t>(e)];
    for (NodeId h : edge.head) {
      SetBit(next.visited, h);
    }
    next.edges.push_back(e);
    for (NodeId u : edge.tail) {
      if (u != source && !TestBit(next.visited, u)) {
        scratch.push_back(u);
      }
    }
  }
  // Candidates may have become visited by a later edge in the same move.
  for (NodeId u : scratch) {
    if (!TestBit(next.visited, u)) {
      next.frontier.push_back(u);
    }
  }
  std::sort(next.frontier.begin(), next.frontier.end());
  next.frontier.erase(
      std::unique(next.frontier.begin(), next.frontier.end()),
      next.frontier.end());
}

// Enumerates the cross product of backward-star options over the frontier
// (Algorithm 2, lines 2-5) and invokes `emit` per move. `take_budget` is
// charged once per move; returning false aborts the enumeration (budget
// exhausted).
template <typename Budget, typename Emit>
bool ForEachMove(const Augmentation& aug, const Partial& partial,
                 Budget&& take_budget, const Emit& emit) {
  const Hypergraph& graph = aug.graph.hypergraph();
  const size_t k = partial.frontier.size();
  std::vector<const std::vector<EdgeId>*> options(k);
  for (size_t i = 0; i < k; ++i) {
    options[i] = &graph.bstar(partial.frontier[i]);
    if (options[i]->empty()) {
      return true;  // dead end: some frontier node cannot be derived
    }
  }
  std::vector<size_t> index(k, 0);
  std::vector<EdgeId> move;
  while (true) {
    if (!take_budget()) {
      return false;
    }
    move.clear();
    for (size_t i = 0; i < k; ++i) {
      move.push_back((*options[i])[index[i]]);
    }
    std::sort(move.begin(), move.end());
    move.erase(std::unique(move.begin(), move.end()), move.end());
    emit(move);
    // Advance the odometer.
    size_t pos = 0;
    while (pos < k && ++index[pos] == options[pos]->size()) {
      index[pos] = 0;
      ++pos;
    }
    if (pos == k) {
      return true;
    }
  }
}

Partial MakeInitialPartial(const Augmentation& aug,
                           const PlanGenerator::Options& options) {
  const Hypergraph& graph = aug.graph.hypergraph();
  const NodeId source = aug.graph.source();
  Partial initial;
  initial.visited.assign(
      (static_cast<size_t>(graph.num_nodes()) + 63) / 64, 0);
  for (NodeId t : aug.targets) {
    initial.frontier.push_back(t);
  }
  // Exploration mode: force mo = ceil(#new_tasks * c_exp) new tasks into
  // the initial plan (§IV-E).
  if (options.exploration > 0.0 && !aug.new_tasks.empty()) {
    const int64_t mo = static_cast<int64_t>(
        std::ceil(static_cast<double>(aug.new_tasks.size()) *
                  std::min(1.0, options.exploration)));
    for (int64_t i = 0; i < mo; ++i) {
      const EdgeId e = aug.new_tasks[static_cast<size_t>(i)];
      const Hyperedge& edge = graph.edge(e);
      bool contributes = false;
      for (NodeId h : edge.head) {
        if (!TestBit(initial.visited, h)) {
          contributes = true;
        }
      }
      if (!contributes) {
        continue;
      }
      initial.cost += aug.edge_weight[static_cast<size_t>(e)];
      initial.edges.push_back(e);
      for (NodeId h : edge.head) {
        SetBit(initial.visited, h);
      }
      for (NodeId u : edge.tail) {
        if (u != source) {
          initial.frontier.push_back(u);
        }
      }
    }
  }
  std::sort(initial.frontier.begin(), initial.frontier.end());
  initial.frontier.erase(
      std::unique(initial.frontier.begin(), initial.frontier.end()),
      initial.frontier.end());
  // Frontier nodes already produced by forced tasks need no derivation.
  std::vector<NodeId> frontier;
  for (NodeId v : initial.frontier) {
    if (!TestBit(initial.visited, v)) {
      frontier.push_back(v);
    }
  }
  initial.frontier = std::move(frontier);
  return initial;
}

int ResolveNumThreads(int num_threads) {
  if (num_threads > 0) {
    return num_threads;
  }
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware == 0 ? 1 : static_cast<int>(hardware);
}

// True when the search for `options` runs on the parallel engine.
bool UsesParallelEngine(const PlanGenerator::Options& options) {
  if (options.strategy == Strategy::kParallel) {
    return true;
  }
  return (options.strategy == Strategy::kPriority ||
          options.strategy == Strategy::kAStar) &&
         ResolveNumThreads(options.num_threads) > 1;
}

bool NeedsLowerBounds(const PlanGenerator::Options& options) {
  return options.strategy == Strategy::kAStar || UsesParallelEngine(options);
}

// ---------------------------------------------------------------------------
// Parallel best-first engine: N cooperating workers, each with a private
// open list (binary heap) and state pool, sharing (a) an atomic incumbent
// upper bound for pruning, (b) a sharded full-state dominance table, and
// (c) a global heap used both to seed idle workers and to redistribute
// load. Exhaustive branch-and-bound: every state below the incumbent bound
// is expanded eventually, so the returned plan is optimal regardless of
// interleaving.
class ParallelSearch {
 public:
  ParallelSearch(const Augmentation& aug, const std::vector<NodeId>& targets,
                 const PlanGenerator::Options& options, const LowerBounds& lb,
                 int num_threads)
      : aug_(aug),
        graph_(aug.graph.hypergraph()),
        source_(aug.graph.source()),
        sources_{aug.graph.source()},
        targets_(targets),
        lb_(lb),
        num_threads_(num_threads),
        dominance_(4 * num_threads),
        budget_(options.max_expansions) {}

  Result<Partial> Run(Partial initial, SearchStats& st) {
    initial.priority = AdmissiblePriority(initial, lb_);
    outstanding_.store(1, std::memory_order_relaxed);
    global_.push_back(std::move(initial));
    {
      ThreadPool pool(num_threads_);
      for (int i = 0; i < num_threads_; ++i) {
        pool.Submit([this]() { Worker(); });
      }
      pool.Wait();
    }
    st.threads_used = num_threads_;
    st.plans_examined += plans_examined_.load(std::memory_order_relaxed);
    st.expansions += expansions_.load(std::memory_order_relaxed);
    st.pruned_by_bound += pruned_by_bound_.load(std::memory_order_relaxed);
    st.pruned_by_dominance +=
        pruned_by_dominance_.load(std::memory_order_relaxed);
    if (out_of_budget_.load(std::memory_order_relaxed)) {
      return Status::ResourceExhausted(
          "plan search exceeded the expansion budget");
    }
    if (!found_) {
      return Status::FailedPrecondition(
          "no executable plan connects the source to the targets");
    }
    return std::move(best_);
  }

 private:
  // Budget grants are taken from the shared counter in chunks so workers
  // do not contend on it per move. Unused remainders of a grant are not
  // returned, so the engine may stop up to (threads-1)*kBudgetChunk moves
  // early — max_expansions is a safety valve, not an exact quota.
  static constexpr int64_t kBudgetChunk = 4096;

  void FinishOne() {
    if (outstanding_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Pair the notification with the queue mutex so a worker checking
      // the wait predicate cannot miss it.
      std::lock_guard<std::mutex> lock(queue_mutex_);
      work_available_.notify_all();
    }
  }

  void RecordComplete(const Partial& p) {
    // Guard: accept only executable plans (cycle-safety; see DESIGN.md).
    if (!IsValidPlan(graph_, p.edges, sources_, targets_)) {
      return;
    }
    std::lock_guard<std::mutex> lock(best_mutex_);
    if (p.cost < best_cost_) {
      best_cost_ = p.cost;
      best_ = p;
      found_ = true;
      // Published for lock-free pruning reads; monotone non-increasing
      // because every store happens under best_mutex_.
      bound_.store(p.cost, std::memory_order_release);
    }
  }

  void Worker() {
    std::vector<Partial> local;  // binary min-heap on priority
    ObjectPool<Partial> pool;
    std::vector<NodeId> scratch;
    int64_t budget_grant = 0;
    int64_t examined = 0;
    int64_t expansions = 0;
    int64_t pruned_bound = 0;
    int64_t pruned_dominance = 0;

    auto take_budget = [&]() -> bool {
      if (budget_grant > 0) {
        --budget_grant;
        return true;
      }
      const int64_t before =
          budget_.fetch_sub(kBudgetChunk, std::memory_order_relaxed);
      if (before <= 0) {
        return false;
      }
      budget_grant = std::min(before, kBudgetChunk) - 1;
      return true;
    };

    auto flush_stats = [&]() {
      plans_examined_.fetch_add(examined, std::memory_order_relaxed);
      expansions_.fetch_add(expansions, std::memory_order_relaxed);
      pruned_by_bound_.fetch_add(pruned_bound, std::memory_order_relaxed);
      pruned_by_dominance_.fetch_add(pruned_dominance,
                                     std::memory_order_relaxed);
    };

    while (true) {
      if (local.empty()) {
        std::unique_lock<std::mutex> lock(queue_mutex_);
        idle_.fetch_add(1, std::memory_order_release);
        work_available_.wait(lock, [this]() {
          return !global_.empty() ||
                 outstanding_.load(std::memory_order_acquire) == 0 ||
                 out_of_budget_.load(std::memory_order_acquire);
        });
        idle_.fetch_sub(1, std::memory_order_release);
        if (out_of_budget_.load(std::memory_order_acquire) ||
            (global_.empty() &&
             outstanding_.load(std::memory_order_acquire) == 0)) {
          flush_stats();
          return;
        }
        // Take a batch of the globally best states.
        const size_t batch = std::max<size_t>(
            1, global_.size() / static_cast<size_t>(num_threads_));
        for (size_t i = 0; i < batch && !global_.empty(); ++i) {
          std::pop_heap(global_.begin(), global_.end(), WorsePriority);
          local.push_back(std::move(global_.back()));
          global_.pop_back();
        }
        std::make_heap(local.begin(), local.end(), WorsePriority);
        continue;
      }

      std::pop_heap(local.begin(), local.end(), WorsePriority);
      Partial current = std::move(local.back());
      local.pop_back();
      ++examined;

      const double bound = bound_.load(std::memory_order_acquire);
      if (current.priority >= bound) {
        // The local heap pops its minimum: every remaining local state is
        // at least as expensive and can be discarded wholesale (the
        // parallel analogue of the serial early exit).
        pruned_bound += 1 + static_cast<int64_t>(local.size());
        pool.Release(std::move(current));
        FinishOne();
        for (Partial& p : local) {
          pool.Release(std::move(p));
          FinishOne();
        }
        local.clear();
        continue;
      }
      if (current.frontier.empty()) {
        RecordComplete(current);
        pool.Release(std::move(current));
        FinishOne();
        continue;
      }
      // A strictly better dominating plan was recorded since this state
      // was pushed.
      if (dominance_.BestDominating(current.frontier, current.visited, kInf) <
          current.cost - kCostEps) {
        ++pruned_dominance;
        pool.Release(std::move(current));
        FinishOne();
        continue;
      }

      ++expansions;
      const bool within_budget = ForEachMove(
          aug_, current, take_budget, [&](const std::vector<EdgeId>& move) {
            Partial next = pool.Acquire();
            ApplyMoveInto(aug_, current, move, source_, scratch, next);
            next.priority = AdmissiblePriority(next, lb_);
            if (next.priority >= bound_.load(std::memory_order_relaxed)) {
              ++pruned_bound;
              pool.Release(std::move(next));
              return;
            }
            if (!dominance_.Improve(next.frontier, next.visited, next.cost)) {
              ++pruned_dominance;
              pool.Release(std::move(next));
              return;
            }
            outstanding_.fetch_add(1, std::memory_order_acq_rel);
            local.push_back(std::move(next));
            std::push_heap(local.begin(), local.end(), WorsePriority);
          });
      pool.Release(std::move(current));
      if (!within_budget) {
        {
          std::lock_guard<std::mutex> lock(queue_mutex_);
          out_of_budget_.store(true, std::memory_order_release);
          work_available_.notify_all();
        }
        flush_stats();
        return;
      }

      // Shed load while peers are starved: hand the trailing half of the
      // local heap (its leaves — removing a suffix keeps the heap valid)
      // to the global heap and wake everyone.
      if (local.size() > 1 &&
          idle_.load(std::memory_order_acquire) > 0) {
        std::lock_guard<std::mutex> lock(queue_mutex_);
        const size_t share = local.size() / 2;
        for (size_t i = 0; i < share; ++i) {
          global_.push_back(std::move(local.back()));
          local.pop_back();
          std::push_heap(global_.begin(), global_.end(), WorsePriority);
        }
        work_available_.notify_all();
      }
      FinishOne();
    }
  }

  const Augmentation& aug_;
  const Hypergraph& graph_;
  const NodeId source_;
  const std::vector<NodeId> sources_;
  const std::vector<NodeId>& targets_;
  const LowerBounds& lb_;
  const int num_threads_;

  DominanceTable dominance_;
  std::atomic<int64_t> budget_;
  // Incumbent upper bound, mirrored from best_cost_ for lock-free reads.
  std::atomic<double> bound_{kInf};
  std::mutex best_mutex_;
  double best_cost_ = kInf;
  Partial best_;
  bool found_ = false;

  // States alive anywhere (global heap + local heaps + being expanded);
  // zero means the search space is exhausted.
  std::atomic<int64_t> outstanding_{0};
  std::atomic<bool> out_of_budget_{false};
  std::atomic<int> idle_{0};
  std::mutex queue_mutex_;
  std::condition_variable work_available_;
  std::vector<Partial> global_;  // binary min-heap on priority

  std::atomic<int64_t> plans_examined_{0};
  std::atomic<int64_t> expansions_{0};
  std::atomic<int64_t> pruned_by_bound_{0};
  std::atomic<int64_t> pruned_by_dominance_{0};
};

}  // namespace

const char* PlanGenerator::StrategyToString(Strategy strategy) {
  switch (strategy) {
    case Strategy::kStack:
      return "HYPPO-STACK";
    case Strategy::kPriority:
      return "HYPPO-PRIORITY";
    case Strategy::kGreedy:
      return "HYPPO-GREEDY";
    case Strategy::kAStar:
      return "HYPPO-ASTAR";
    case Strategy::kParallel:
      return "HYPPO-PARALLEL";
  }
  return "unknown";
}

PlanGenerator::LowerBounds PlanGenerator::ComputeLowerBounds(
    const Augmentation& aug) {
  const Hypergraph& graph = aug.graph.hypergraph();
  const NodeId source = aug.graph.source();
  LowerBounds lb;
  lb.derive_cost.assign(static_cast<size_t>(graph.num_nodes()), kInf);
  lb.min_incoming.assign(static_cast<size_t>(graph.num_nodes()), kInf);
  lb.derive_cost[static_cast<size_t>(source)] = 0.0;
  lb.min_incoming[static_cast<size_t>(source)] = 0.0;
  for (EdgeId e = 0; e < graph.num_edge_slots(); ++e) {
    if (!graph.IsLiveEdge(e)) {
      continue;
    }
    const double weight = aug.edge_weight[static_cast<size_t>(e)];
    for (NodeId h : graph.edge(e).head) {
      lb.min_incoming[static_cast<size_t>(h)] =
          std::min(lb.min_incoming[static_cast<size_t>(h)], weight);
    }
  }
  // dist(v) = min over incoming edges e of w(e) + max over non-source tail
  // nodes of dist(u): a lower bound on any B-derivation of v (max instead
  // of sum over the tail underestimates). Fixed-point iteration; converges
  // in at most the longest-path length.
  bool changed = true;
  while (changed) {
    changed = false;
    for (EdgeId e = 0; e < graph.num_edge_slots(); ++e) {
      if (!graph.IsLiveEdge(e)) {
        continue;
      }
      double tail_max = 0.0;
      for (NodeId u : graph.edge(e).tail) {
        if (u == source) {
          continue;
        }
        tail_max = std::max(tail_max, lb.derive_cost[static_cast<size_t>(u)]);
        if (tail_max == kInf) {
          break;
        }
      }
      if (tail_max == kInf) {
        continue;
      }
      const double through = aug.edge_weight[static_cast<size_t>(e)] + tail_max;
      for (NodeId h : graph.edge(e).head) {
        if (through < lb.derive_cost[static_cast<size_t>(h)]) {
          lb.derive_cost[static_cast<size_t>(h)] = through;
          changed = true;
        }
      }
    }
  }
  return lb;
}

Status VerifyPlanStructure(const Augmentation& aug,
                           const std::vector<NodeId>& targets,
                           const Plan& plan) {
  analysis::PlanSpec spec;
  spec.graph = &aug.graph.hypergraph();
  spec.edges = &plan.edges;
  spec.source = aug.graph.source();
  spec.targets = &targets;
  spec.edge_weight = &aug.edge_weight;
  spec.claimed_cost = plan.cost;
  spec.edge_seconds = &aug.edge_seconds;
  spec.claimed_seconds = plan.seconds;
  analysis::AnalysisReport report = analysis::CheckPlanStructure(spec);
  if (!report.ok()) {
    return Status::Internal("plan verification failed (" + report.Summary() +
                            "):\n" + report.ToString());
  }
  return Status::OK();
}

Status VerifyAugmentationStructure(const Augmentation& aug) {
  analysis::AugmentationSpec spec;
  spec.graph = &aug.graph.hypergraph();
  spec.source = aug.graph.source();
  spec.targets = &aug.targets;
  spec.edge_weight = &aug.edge_weight;
  spec.edge_seconds = &aug.edge_seconds;
  analysis::AnalysisReport report = analysis::CheckAugmentationStructure(spec);
  if (!report.ok()) {
    return Status::Internal("augmentation verification failed (" +
                            report.Summary() + "):\n" + report.ToString());
  }
  return Status::OK();
}

Result<Plan> PlanGenerator::Optimize(const Augmentation& aug,
                                     const Options& options,
                                     SearchStats* stats) const {
  return OptimizeForTargets(aug, aug.targets, options, stats);
}

Result<Plan> PlanGenerator::OptimizeForTargets(
    const Augmentation& aug, const std::vector<NodeId>& targets,
    const Options& options, SearchStats* stats,
    const LowerBounds* bounds) const {
  if (targets.empty()) {
    return Status::InvalidArgument("no target artifacts");
  }
  const Hypergraph& graph = aug.graph.hypergraph();
  const NodeId source = aug.graph.source();
  for (NodeId t : targets) {
    if (!graph.IsValidNode(t) || t == source) {
      return Status::InvalidArgument("invalid target node");
    }
  }
  SearchStats local_stats;
  SearchStats& st = stats != nullptr ? *stats : local_stats;

  Partial initial;
  if (&targets != &aug.targets) {
    // Build the initial partial from the requested targets.
    initial.visited.assign(
        (static_cast<size_t>(graph.num_nodes()) + 63) / 64, 0);
    initial.frontier = targets;
    std::sort(initial.frontier.begin(), initial.frontier.end());
    initial.frontier.erase(
        std::unique(initial.frontier.begin(), initial.frontier.end()),
        initial.frontier.end());
  } else {
    initial = MakeInitialPartial(aug, options);
  }

  // Lower bounds are target-independent; reuse the caller's when provided
  // (OptimizePerTarget amortizes one fixed point across all its calls).
  LowerBounds computed_bounds;
  const LowerBounds* lb = bounds;
  if (NeedsLowerBounds(options) && (lb == nullptr || lb->empty())) {
    computed_bounds = ComputeLowerBounds(aug);
    lb = &computed_bounds;
  }

  // Greedy variant: follow the minimum-weight edge per frontier node;
  // each node is expanded at most once (linear time).
  if (options.strategy == Strategy::kGreedy) {
    Partial current = std::move(initial);
    std::vector<NodeId> scratch;
    ObjectPool<Partial> pool;
    while (!current.frontier.empty()) {
      std::vector<EdgeId> move;
      for (NodeId v : current.frontier) {
        const std::vector<EdgeId>& choices = graph.bstar(v);
        if (choices.empty()) {
          return Status::FailedPrecondition(
              "greedy search: artifact cannot be derived");
        }
        EdgeId best = choices[0];
        for (EdgeId e : choices) {
          if (aug.edge_weight[static_cast<size_t>(e)] <
              aug.edge_weight[static_cast<size_t>(best)]) {
            best = e;
          }
        }
        move.push_back(best);
      }
      std::sort(move.begin(), move.end());
      move.erase(std::unique(move.begin(), move.end()), move.end());
      Partial next = pool.Acquire();
      ApplyMoveInto(aug, current, move, source, scratch, next);
      ++st.expansions;
      if (next.frontier == current.frontier) {
        return Status::Internal("greedy search made no progress");
      }
      pool.Release(std::move(current));
      current = std::move(next);
    }
    Plan plan;
    plan.edges = std::move(current.edges);
    plan.cost = current.cost;
    for (EdgeId e : plan.edges) {
      plan.seconds += aug.edge_seconds[static_cast<size_t>(e)];
    }
    if (options.verify_plans) {
      HYPPO_RETURN_NOT_OK(VerifyPlanStructure(aug, targets, plan));
    }
    return plan;
  }

  Result<Partial> best = [&]() -> Result<Partial> {
    if (UsesParallelEngine(options)) {
      const int threads = ResolveNumThreads(options.num_threads);
      ParallelSearch engine(aug, targets, options, *lb, threads);
      return engine.Run(std::move(initial), st);
    }

    const bool use_astar = options.strategy == Strategy::kAStar;
    initial.priority =
        use_astar ? AdmissiblePriority(initial, *lb) : initial.cost;

    double best_cost = kInf;
    Partial best_plan;
    bool found = false;
    int64_t budget = options.max_expansions;
    auto take_budget = [&budget]() { return --budget >= 0; };
    // Antichain dominance (single shard: the serial engines are
    // single-threaded, so the shard mutex is uncontended). With dominance
    // pruning on, states are also filtered at insertion time; this bounds
    // the open containers' memory, which would otherwise balloon on
    // alternative-rich augmentations before the expansion budget triggers.
    DominanceTable dominance(1);
    auto dominated_at_push = [&](const Partial& p) {
      if (!options.dominance_pruning) {
        return false;
      }
      if (!dominance.Improve(p.frontier, p.visited, p.cost)) {
        ++st.pruned_by_dominance;
        return true;
      }
      return false;
    };
    // A strictly better dominating plan was pushed since.
    auto dominated_at_pop = [&](const Partial& p) {
      if (!options.dominance_pruning) {
        return false;
      }
      if (dominance.BestDominating(p.frontier, p.visited, kInf) <
          p.cost - kCostEps) {
        ++st.pruned_by_dominance;
        return true;
      }
      return false;
    };
    auto consider_complete = [&](const Partial& p) {
      // Guard: accept only executable plans (cycle-safety; see DESIGN.md).
      if (p.cost < best_cost &&
          IsValidPlan(graph, p.edges, {source}, targets)) {
        best_cost = p.cost;
        best_plan = p;
        found = true;
      }
    };

    ObjectPool<Partial> pool;
    std::vector<NodeId> scratch;

    if (options.strategy == Strategy::kStack) {
      std::vector<Partial> stack;
      stack.push_back(std::move(initial));
      while (!stack.empty()) {
        Partial current = std::move(stack.back());
        stack.pop_back();
        ++st.plans_examined;
        if (current.cost >= best_cost) {
          ++st.pruned_by_bound;
          pool.Release(std::move(current));
          continue;
        }
        if (current.frontier.empty()) {
          consider_complete(current);
          pool.Release(std::move(current));
          continue;
        }
        if (dominated_at_pop(current)) {
          pool.Release(std::move(current));
          continue;
        }
        ++st.expansions;
        const bool within_budget = ForEachMove(
            aug, current, take_budget, [&](const std::vector<EdgeId>& move) {
              Partial next = pool.Acquire();
              ApplyMoveInto(aug, current, move, source, scratch, next);
              if (next.cost >= best_cost) {
                ++st.pruned_by_bound;
                pool.Release(std::move(next));
              } else if (dominated_at_push(next)) {
                pool.Release(std::move(next));
              } else {
                stack.push_back(std::move(next));
              }
            });
        pool.Release(std::move(current));
        if (!within_budget) {
          return Status::ResourceExhausted(
              "plan search exceeded the expansion budget");
        }
      }
    } else {  // kPriority / kAStar (serial)
      std::vector<Partial> open;  // binary min-heap on priority
      open.push_back(std::move(initial));
      while (!open.empty()) {
        std::pop_heap(open.begin(), open.end(), WorsePriority);
        Partial current = std::move(open.back());
        open.pop_back();
        ++st.plans_examined;
        if (current.priority >= best_cost) {
          // Everything left is at least as expensive: done.
          break;
        }
        if (current.frontier.empty()) {
          consider_complete(current);
          pool.Release(std::move(current));
          continue;
        }
        if (dominated_at_pop(current)) {
          pool.Release(std::move(current));
          continue;
        }
        ++st.expansions;
        const bool within_budget = ForEachMove(
            aug, current, take_budget, [&](const std::vector<EdgeId>& move) {
              Partial next = pool.Acquire();
              ApplyMoveInto(aug, current, move, source, scratch, next);
              next.priority =
                  use_astar ? AdmissiblePriority(next, *lb) : next.cost;
              if (next.priority >= best_cost) {
                ++st.pruned_by_bound;
                pool.Release(std::move(next));
              } else if (dominated_at_push(next)) {
                pool.Release(std::move(next));
              } else {
                open.push_back(std::move(next));
                std::push_heap(open.begin(), open.end(), WorsePriority);
              }
            });
        pool.Release(std::move(current));
        if (!within_budget) {
          return Status::ResourceExhausted(
              "plan search exceeded the expansion budget");
        }
      }
    }

    if (!found) {
      return Status::FailedPrecondition(
          "no executable plan connects the source to the targets");
    }
    return best_plan;
  }();

  HYPPO_ASSIGN_OR_RETURN(Partial best_plan, std::move(best));
  Plan plan;
  plan.edges = std::move(best_plan.edges);
  plan.cost = best_plan.cost;
  for (EdgeId e : plan.edges) {
    plan.seconds += aug.edge_seconds[static_cast<size_t>(e)];
  }
  if (options.verify_plans) {
    HYPPO_RETURN_NOT_OK(VerifyPlanStructure(aug, targets, plan));
  }
  return plan;
}

Result<Plan> PlanGenerator::OptimizePerTarget(const Augmentation& aug,
                                              const Options& options,
                                              SearchStats* stats) const {
  if (aug.targets.empty()) {
    return Status::InvalidArgument("no target artifacts");
  }
  // One fixed point shared by every per-target search (the bounds do not
  // depend on the targets).
  LowerBounds shared_bounds;
  const LowerBounds* lb = nullptr;
  if (NeedsLowerBounds(options)) {
    shared_bounds = ComputeLowerBounds(aug);
    lb = &shared_bounds;
  }
  Plan combined;
  std::vector<bool> in_plan(
      static_cast<size_t>(aug.graph.hypergraph().num_edge_slots()), false);
  for (NodeId target : aug.targets) {
    HYPPO_ASSIGN_OR_RETURN(
        Plan single, OptimizeForTargets(aug, {target}, options, stats, lb));
    for (EdgeId e : single.edges) {
      if (!in_plan[static_cast<size_t>(e)]) {
        in_plan[static_cast<size_t>(e)] = true;
        combined.edges.push_back(e);
        combined.cost += aug.edge_weight[static_cast<size_t>(e)];
        combined.seconds += aug.edge_seconds[static_cast<size_t>(e)];
      }
    }
  }
  if (options.verify_plans) {
    HYPPO_RETURN_NOT_OK(VerifyPlanStructure(aug, aug.targets, combined));
  }
  return combined;
}

Result<Plan> PlanGenerator::BruteForce(const Augmentation& aug) const {
  Options options;
  options.strategy = Strategy::kStack;
  options.dominance_pruning = false;
  options.max_expansions = std::numeric_limits<int64_t>::max();
  // Disable bound pruning by running the stack search but with pruning
  // against best kept — pruning against the best bound does not change the
  // returned optimum, so the standard stack search already IS exhaustive
  // up to bound pruning; use it directly.
  return Optimize(aug, options);
}

}  // namespace hyppo::core
