#ifndef HYPPO_CORE_DICTIONARY_H_
#define HYPPO_CORE_DICTIONARY_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/task.h"
#include "ml/registry.h"

namespace hyppo::core {

/// \brief The task dictionary D (paper §IV-B): maps `lop.tasktype` to the
/// list of equivalent physical implementations.
///
/// Entries are keyed by logical operator + task type; each value is an
/// ordered list of implementation names resolvable in the ML operator
/// registry. Logical operators with multiple implementations are the
/// candidates for equivalence-based optimization. Unknown operators are
/// treated as having the single implementation the user provided
/// (paper §IV-C).
class Dictionary {
 public:
  Dictionary() = default;

  /// Builds the default dictionary from every operator in `registry`,
  /// grouping implementations by logical operator and supported task
  /// types. This yields the paper's "40 operators" catalog (logical op ×
  /// task type entries over the built-in operator set).
  static Dictionary FromRegistry(const ml::OperatorRegistry& registry);

  /// Registers one implementation for `lop.tasktype`.
  Status Register(const std::string& logical_op, TaskType type,
                  const std::string& impl);

  /// Implementations of `lop.tasktype` (empty if unknown).
  const std::vector<std::string>& ImplsFor(const std::string& logical_op,
                                           TaskType type) const;

  /// True if the logical operator is known for this task type.
  bool Knows(const std::string& logical_op, TaskType type) const;

  /// Number of dictionary entries (lop × tasktype pairs).
  size_t num_entries() const { return entries_.size(); }

  /// All entry keys, "lop.tasktype", sorted.
  std::vector<std::string> Keys() const;

 private:
  static std::string Key(const std::string& logical_op, TaskType type) {
    return logical_op + "." + TaskTypeToString(type);
  }

  std::map<std::string, std::vector<std::string>> entries_;
};

}  // namespace hyppo::core

#endif  // HYPPO_CORE_DICTIONARY_H_
