#include "core/dictionary.h"

#include <algorithm>

namespace hyppo::core {

Dictionary Dictionary::FromRegistry(const ml::OperatorRegistry& registry) {
  Dictionary dictionary;
  static constexpr TaskType kTypes[] = {TaskType::kSplit, TaskType::kFit,
                                        TaskType::kTransform,
                                        TaskType::kPredict,
                                        TaskType::kEvaluate};
  for (const std::string& lop : registry.LogicalOps()) {
    for (const ml::PhysicalOperator* op : registry.ImplsFor(lop)) {
      for (TaskType type : kTypes) {
        Result<ml::MlTask> ml_task = ToMlTask(type);
        if (!ml_task.ok()) {
          continue;
        }
        if (op->SupportsTask(*ml_task)) {
          dictionary.Register(lop, type, op->impl_name())
              .Abort("Dictionary::FromRegistry");
        }
      }
    }
  }
  return dictionary;
}

Status Dictionary::Register(const std::string& logical_op, TaskType type,
                            const std::string& impl) {
  std::vector<std::string>& impls = entries_[Key(logical_op, type)];
  if (std::find(impls.begin(), impls.end(), impl) != impls.end()) {
    return Status::AlreadyExists("impl '" + impl + "' already registered for " +
                                 Key(logical_op, type));
  }
  impls.push_back(impl);
  return Status::OK();
}

const std::vector<std::string>& Dictionary::ImplsFor(
    const std::string& logical_op, TaskType type) const {
  static const std::vector<std::string> kEmpty;
  auto it = entries_.find(Key(logical_op, type));
  return it == entries_.end() ? kEmpty : it->second;
}

bool Dictionary::Knows(const std::string& logical_op, TaskType type) const {
  return entries_.count(Key(logical_op, type)) > 0;
}

std::vector<std::string> Dictionary::Keys() const {
  std::vector<std::string> keys;
  keys.reserve(entries_.size());
  for (const auto& [key, impls] : entries_) {
    keys.push_back(key);
  }
  return keys;
}

}  // namespace hyppo::core
