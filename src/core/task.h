#ifndef HYPPO_CORE_TASK_H_
#define HYPPO_CORE_TASK_H_

#include <string>

#include "common/result.h"
#include "ml/config.h"
#include "ml/operator.h"

namespace hyppo::core {

/// \brief Task types of hyperedges. Beyond the ML task types this adds
/// `kLoad`: retrieving an artifact from storage (edges out of the source
/// node s).
enum class TaskType {
  kLoad = 0,
  kSplit,
  kFit,
  kTransform,
  kPredict,
  kEvaluate,
};

const char* TaskTypeToString(TaskType type);
Result<TaskType> TaskTypeFromString(const std::string& name);

/// Maps a (non-load) task type to its ML counterpart.
Result<ml::MlTask> ToMlTask(TaskType type);

/// \brief Hyperedge label: the task of one hyperedge (paper §III-C1).
struct TaskInfo {
  /// Logical operator ("StandardScaler"); "__load__" for load tasks.
  std::string logical_op;
  TaskType type = TaskType::kFit;
  /// Operator configuration; participates in artifact naming.
  ml::Config config;
  /// Bound physical implementation ("skl.StandardScaler"). Load tasks
  /// leave this empty. The augmenter creates parallel hyperedges for
  /// alternative implementations of the same logical operator.
  std::string impl;
  /// 1-based DSL source line that declared this task; 0 for tasks built
  /// programmatically. Diagnostic-only: excluded from task signatures and
  /// from history serialization.
  int source_line = 0;
};

inline constexpr const char* kLoadOp = "__load__";

}  // namespace hyppo::core

#endif  // HYPPO_CORE_TASK_H_
