#ifndef HYPPO_CORE_ARTIFACT_H_
#define HYPPO_CORE_ARTIFACT_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "storage/artifact_store.h"

namespace hyppo::core {

/// \brief Artifact kinds tracked by HYPPO (paper §III-A and Fig. 5's
/// artifact-type study).
///
/// `kRaw` is the original dataset; `kTrain`/`kTest` are split partitions
/// (MBytes-scale); `kOpState` is a fitted operator state (KBytes-scale);
/// `kPredictions` is a per-row prediction vector; `kValue` is a scalar
/// metric (Bytes-scale). `kSource` labels only the special node s.
enum class ArtifactKind {
  kSource = 0,
  kRaw,
  kTrain,
  kTest,
  kData,  ///< derived feature data not tagged train/test
  kOpState,
  kPredictions,
  kValue,
};

const char* ArtifactKindToString(ArtifactKind kind);

/// \brief Node label of the pipeline/history hypergraphs.
///
/// `name` is the canonical lineage hash (core/naming.h): equivalent
/// artifacts — produced by equivalent tasks on the same inputs — share the
/// same name by construction, which is how the augmenter discovers
/// equivalences (paper §IV-C).
struct ArtifactInfo {
  std::string name;
  ArtifactKind kind = ArtifactKind::kData;
  /// Human-readable label for debugging ("train", "scaler_state", ...).
  std::string display;
  /// Size estimate in bytes (observed after execution; propagated
  /// statically during parsing before that).
  int64_t size_bytes = 0;
  /// Shape estimate, used by the cost estimator for task cost prediction.
  int64_t rows = 0;
  int64_t cols = 0;
};

using storage::ArtifactPayload;

}  // namespace hyppo::core

#endif  // HYPPO_CORE_ARTIFACT_H_
