#include "core/naming.h"

#include "common/hash.h"

namespace hyppo::core {

std::string SourceArtifactName(const std::string& dataset_id) {
  return HashToHex(Fnv1a64("source:" + dataset_id));
}

std::vector<std::string> TaskOutputNames(
    const TaskInfo& task, const std::vector<std::string>& input_names,
    int num_outputs) {
  std::string lineage = task.logical_op;
  lineage += '|';
  lineage += TaskTypeToString(task.type);
  lineage += '|';
  lineage += task.config.ToString();
  lineage += '|';
  for (const std::string& input : input_names) {
    lineage += input;
    lineage += ';';
  }
  const uint64_t base = Fnv1a64(lineage);
  std::vector<std::string> names;
  names.reserve(static_cast<size_t>(num_outputs));
  for (int i = 0; i < num_outputs; ++i) {
    names.push_back(
        HashToHex(HashCombine(base, static_cast<uint64_t>(i + 1))));
  }
  return names;
}

}  // namespace hyppo::core
