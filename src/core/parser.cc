#include "core/parser.h"

#include <map>
#include <vector>

#include "common/string_util.h"
#include "core/pipeline_builder.h"

namespace hyppo::core {

namespace {

// One parsed call argument: either an input variable reference or a
// key=value configuration entry.
struct Argument {
  bool is_config = false;
  std::string name;   // variable name or config key
  std::string value;  // config value (quotes stripped)
};

Result<std::string> CanonicalFramework(const std::string& alias) {
  if (alias == "sk" || alias == "skl" || alias == "sklearn") {
    return std::string("skl");
  }
  if (alias == "tf" || alias == "tfl" || alias == "tensorflow") {
    return std::string("tfl");
  }
  if (alias == "lgb" || alias == "lightgbm") {
    return std::string("lgb");
  }
  if (alias == "lib" || alias == "libsvm") {
    return std::string("lib");
  }
  return Status::ParseError("unknown framework alias '" + alias + "'");
}

std::string StripQuotes(std::string_view value) {
  if (value.size() >= 2 &&
      ((value.front() == '"' && value.back() == '"') ||
       (value.front() == '\'' && value.back() == '\''))) {
    return std::string(value.substr(1, value.size() - 2));
  }
  return std::string(value);
}

class ParserImpl {
 public:
  ParserImpl(const std::string& pipeline_id, const Dictionary& dictionary)
      : builder_(pipeline_id), dictionary_(dictionary) {}

  Status ParseLine(std::string_view line, int line_no) {
    line_ = line;
    line_no_ = line_no;
    builder_.set_next_source_line(line_no);
    const std::string_view stripped = StripWhitespace(line);
    if (stripped.empty() || stripped.front() == '#') {
      return Status::OK();
    }
    const size_t eq = stripped.find('=');
    if (eq == std::string_view::npos) {
      return Err("expected an assignment", ColOf(stripped));
    }
    // Left-hand side: one or two comma-separated variables.
    std::vector<std::string> lhs;
    for (const std::string& piece :
         StrSplit(stripped.substr(0, eq), ',')) {
      lhs.emplace_back(StripWhitespace(piece));
      if (lhs.back().empty()) {
        return Err("empty assignment target", ColOf(stripped));
      }
    }
    // Right-hand side: callee(args).
    const std::string_view rhs = StripWhitespace(stripped.substr(eq + 1));
    if (rhs.empty()) {
      return Err("expected a call expression",
                 ColOf(stripped.substr(eq, 1)) + 1);
    }
    const size_t open = rhs.find('(');
    if (open == std::string_view::npos || rhs.back() != ')') {
      return Err("expected a call expression", ColOf(rhs));
    }
    const std::string callee(StripWhitespace(rhs.substr(0, open)));
    HYPPO_ASSIGN_OR_RETURN(
        std::vector<Argument> args,
        ParseArguments(rhs.substr(open + 1, rhs.size() - open - 2)));
    return Dispatch(lhs, callee, args, rhs);
  }

  Result<Pipeline> Finish() && { return std::move(builder_).Build(); }

 private:
  /// "line N, col M: message" parse error; omits the column when unknown.
  Status Err(const std::string& message, int col = 0) const {
    std::string loc = "line " + std::to_string(line_no_);
    if (col > 0) {
      loc += ", col " + std::to_string(col);
    }
    return Status::ParseError(loc + ": " + message);
  }

  /// 1-based column of `sub` within the current line. Views carved out of
  /// the line resolve by pointer arithmetic; detached strings by search.
  int ColOf(std::string_view sub) const {
    if (!sub.empty() && sub.data() >= line_.data() &&
        sub.data() < line_.data() + line_.size()) {
      return static_cast<int>(sub.data() - line_.data()) + 1;
    }
    const size_t pos = line_.find(sub);
    return pos == std::string_view::npos ? 0 : static_cast<int>(pos) + 1;
  }

  // Splits "a, b, k=v" into arguments. No nested parentheses in the DSL.
  Result<std::vector<Argument>> ParseArguments(std::string_view args_text) {
    std::vector<Argument> args;
    if (StripWhitespace(args_text).empty()) {
      return args;
    }
    std::string_view rest = args_text;
    while (true) {
      const size_t comma = rest.find(',');
      const std::string_view piece = rest.substr(0, comma);
      const std::string_view trimmed = StripWhitespace(piece);
      if (trimmed.empty()) {
        return Err("empty argument",
                   piece.empty() ? ColOf(rest) : ColOf(piece));
      }
      const size_t eq = trimmed.find('=');
      Argument arg;
      if (eq == std::string_view::npos) {
        arg.is_config = false;
        arg.name = std::string(trimmed);
      } else {
        arg.is_config = true;
        arg.name = std::string(StripWhitespace(trimmed.substr(0, eq)));
        arg.value = StripQuotes(StripWhitespace(trimmed.substr(eq + 1)));
      }
      args.push_back(std::move(arg));
      if (comma == std::string_view::npos) {
        break;
      }
      rest = rest.substr(comma + 1);
    }
    return args;
  }

  Status Dispatch(const std::vector<std::string>& lhs,
                  const std::string& callee,
                  const std::vector<Argument>& args, std::string_view rhs) {
    const std::vector<std::string> parts = StrSplit(callee, '.');
    if (parts.size() == 1 && parts[0] == "load") {
      return HandleLoad(lhs, args, rhs);
    }
    if (parts.size() == 1 && parts[0] == "evaluate") {
      return HandleEvaluate(lhs, args, rhs);
    }
    if (parts.size() == 3) {
      return HandleOperatorCall(lhs, parts[0], parts[1], parts[2], args, rhs);
    }
    if (parts.size() == 2) {
      return HandleMethodCall(lhs, parts[0], parts[1], args, rhs);
    }
    return Err("cannot parse call '" + callee + "'", ColOf(rhs));
  }

  Status HandleLoad(const std::vector<std::string>& lhs,
                    const std::vector<Argument>& args, std::string_view rhs) {
    if (lhs.size() != 1) {
      return Err("load produces one artifact");
    }
    std::string dataset_id;
    int64_t rows = 0;
    int64_t cols = 0;
    int64_t size = 0;
    for (const Argument& arg : args) {
      if (!arg.is_config) {
        dataset_id = StripQuotes(arg.name);
      } else if (arg.name == "rows") {
        rows = std::strtoll(arg.value.c_str(), nullptr, 10);
      } else if (arg.name == "cols") {
        cols = std::strtoll(arg.value.c_str(), nullptr, 10);
      } else if (arg.name == "size") {
        size = std::strtoll(arg.value.c_str(), nullptr, 10);
      }
    }
    if (dataset_id.empty() || rows <= 0 || cols <= 0) {
      return Err("load requires a dataset id and rows=/cols=", ColOf(rhs));
    }
    HYPPO_ASSIGN_OR_RETURN(NodeId node,
                           builder_.LoadDataset(dataset_id, rows, cols, size));
    variables_[lhs[0]] = node;
    return Status::OK();
  }

  Status HandleEvaluate(const std::vector<std::string>& lhs,
                        const std::vector<Argument>& args,
                        std::string_view rhs) {
    std::vector<NodeId> inputs;
    std::string metric = "rmse";
    for (const Argument& arg : args) {
      if (arg.is_config) {
        if (arg.name == "metric") {
          metric = arg.value;
        }
        continue;
      }
      HYPPO_ASSIGN_OR_RETURN(NodeId node, Lookup(arg.name));
      inputs.push_back(node);
    }
    if (lhs.size() != 1 || inputs.size() != 2) {
      return Err("evaluate(preds, data, metric=...) produces one value",
                 ColOf(rhs));
    }
    HYPPO_ASSIGN_OR_RETURN(NodeId value,
                           builder_.Evaluate(inputs[0], inputs[1], metric));
    variables_[lhs[0]] = value;
    return Status::OK();
  }

  // fw.Operator.tasktype(inputs..., k=v...)
  Status HandleOperatorCall(const std::vector<std::string>& lhs,
                            const std::string& fw_alias,
                            const std::string& logical_op,
                            const std::string& task_name,
                            const std::vector<Argument>& args,
                            std::string_view rhs) {
    Result<std::string> framework = CanonicalFramework(fw_alias);
    if (!framework.ok()) {
      return Err(framework.status().message(), ColOf(rhs));
    }
    Result<TaskType> type = TaskTypeFromString(task_name);
    if (!type.ok()) {
      return Err(type.status().message(), ColOf(rhs));
    }
    TaskInfo task;
    task.logical_op = logical_op;
    task.type = *type;
    task.impl = *framework + "." + logical_op;
    std::vector<NodeId> inputs;
    for (const Argument& arg : args) {
      if (arg.is_config) {
        task.config.Set(arg.name, arg.value);
      } else {
        HYPPO_ASSIGN_OR_RETURN(NodeId node, Lookup(arg.name));
        inputs.push_back(node);
      }
    }
    if (inputs.empty()) {
      return Err("operator call needs at least one input", ColOf(rhs));
    }
    // Unknown operators are single-implementation operators (§IV-C): the
    // dictionary lookup is advisory, not gating.
    (void)dictionary_.Knows(logical_op, *type);
    const int num_outputs = *type == TaskType::kSplit ? 2 : 1;
    if (static_cast<size_t>(num_outputs) != lhs.size()) {
      return Err("task produces " + std::to_string(num_outputs) +
                 " artifacts but " + std::to_string(lhs.size()) +
                 " were assigned");
    }
    HYPPO_ASSIGN_OR_RETURN(std::vector<NodeId> outputs,
                           builder_.ApplyTask(task, inputs, num_outputs));
    for (size_t i = 0; i < lhs.size(); ++i) {
      variables_[lhs[i]] = outputs[i];
    }
    return Status::OK();
  }

  // var.transform(data) / var.predict(data): operator identity comes from
  // the fitted state variable.
  Status HandleMethodCall(const std::vector<std::string>& lhs,
                          const std::string& var, const std::string& method,
                          const std::vector<Argument>& args,
                          std::string_view rhs) {
    HYPPO_ASSIGN_OR_RETURN(NodeId state, Lookup(var));
    std::vector<NodeId> inputs;
    for (const Argument& arg : args) {
      if (arg.is_config) {
        continue;  // method calls take no extra configuration
      }
      HYPPO_ASSIGN_OR_RETURN(NodeId node, Lookup(arg.name));
      inputs.push_back(node);
    }
    if (lhs.size() != 1 || inputs.size() != 1) {
      return Err(method + " takes one input artifact", ColOf(rhs));
    }
    if (method == "transform") {
      HYPPO_ASSIGN_OR_RETURN(NodeId out,
                             builder_.Transform(state, inputs[0]));
      variables_[lhs[0]] = out;
      return Status::OK();
    }
    if (method == "predict") {
      HYPPO_ASSIGN_OR_RETURN(NodeId out, builder_.Predict(state, inputs[0]));
      variables_[lhs[0]] = out;
      return Status::OK();
    }
    return Err("unknown method '" + method + "'", ColOf(rhs));
  }

  Result<NodeId> Lookup(const std::string& var) const {
    return LookupAt(var, ColOf(var));
  }

  Result<NodeId> LookupAt(const std::string& var, int col) const {
    auto it = variables_.find(var);
    if (it == variables_.end()) {
      return Err("unknown variable '" + var + "'", col);
    }
    return it->second;
  }

  PipelineBuilder builder_;
  const Dictionary& dictionary_;
  std::map<std::string, NodeId> variables_;
  std::string_view line_;
  int line_no_ = 0;
};

}  // namespace

Result<Pipeline> ParsePipeline(const std::string& source,
                               const std::string& pipeline_id,
                               const Dictionary& dictionary) {
  ParserImpl parser(pipeline_id, dictionary);
  int line_no = 0;
  for (const std::string& line : StrSplit(source, '\n')) {
    ++line_no;
    HYPPO_RETURN_NOT_OK(parser.ParseLine(line, line_no));
  }
  return std::move(parser).Finish();
}

}  // namespace hyppo::core
