#include "core/augmenter.h"

#include <set>
#include <string>

#include "hypergraph/algorithms.h"

namespace hyppo::core {

namespace {

// Hit/miss telemetry of one augmentation's probes against the history
// index, flushed to the monitor at the end.
struct ProbeCounts {
  int64_t hits = 0;
  int64_t misses = 0;

  void Count(bool hit) { hit ? ++hits : ++misses; }
};

// Copies a history node's label into the augmentation if absent; returns
// the augmentation node id.
NodeId ImportNode(PipelineGraph& aug, const PipelineGraph& src, NodeId node) {
  return aug.GetOrAddArtifact(src.artifact(node));
}

// Reference O(V + E) relevance pass over the whole history — the
// pre-index behaviour, kept as the `use_index = false` baseline and the
// validation oracle for the indexed path.
std::vector<EdgeId> ScanRelevantEdges(const PipelineGraph& hist,
                                      const std::vector<NodeId>& matched) {
  std::vector<EdgeId> relevant;
  RelevanceClosure closure = BackwardRelevance(hist.hypergraph(), matched);
  for (EdgeId e = 0; e < hist.hypergraph().num_edge_slots(); ++e) {
    if (hist.hypergraph().IsLiveEdge(e) &&
        closure.edge_relevant[static_cast<size_t>(e)]) {
      relevant.push_back(e);
    }
  }
  return relevant;
}

// Live history edges backward-relevant to `matched`, ascending. Both
// paths return the same list; the indexed one only visits the relevant
// sub-hypergraph.
Result<std::vector<EdgeId>> RelevantEdges(const History& history,
                                          const std::vector<NodeId>& matched,
                                          const Augmenter::Options& options) {
  if (!options.use_index) {
    return ScanRelevantEdges(history.graph(), matched);
  }
  std::vector<EdgeId> relevant = history.CollectBackwardRelevantEdges(matched);
  if (options.validate_index) {
    const std::vector<EdgeId> reference =
        ScanRelevantEdges(history.graph(), matched);
    if (relevant != reference) {
      return Status::Internal(
          "history index diverged from reference scan: indexed backward "
          "relevance found " +
          std::to_string(relevant.size()) + " edge(s), the scan found " +
          std::to_string(reference.size()));
    }
  }
  return relevant;
}

// Splices the backward-relevant part of the history rooted at `matched`
// (history node ids) into `aug`, deduplicating by task signature.
Status SpliceHistory(PipelineGraph& aug, const History& history,
                     const std::vector<NodeId>& matched,
                     std::set<std::string>& signatures,
                     const Augmenter::Options& options) {
  if (matched.empty()) {
    return Status::OK();
  }
  const PipelineGraph& hist = history.graph();
  HYPPO_ASSIGN_OR_RETURN(std::vector<EdgeId> relevant,
                         RelevantEdges(history, matched, options));
  for (EdgeId e : relevant) {
    const TaskInfo& task = hist.task(e);
    if (task.type == TaskType::kLoad) {
      continue;  // load edges are added uniformly later
    }
    std::vector<NodeId> tails;
    for (NodeId t : hist.ordered_tail(e)) {
      tails.push_back(ImportNode(aug, hist, t));
    }
    std::vector<NodeId> heads;
    for (NodeId h : hist.ordered_head(e)) {
      heads.push_back(ImportNode(aug, hist, h));
    }
    TaskInfo copy = task;
    HYPPO_ASSIGN_OR_RETURN(EdgeId added, aug.AddTask(copy, tails, heads));
    if (!signatures.insert(aug.TaskSignature(added)).second) {
      HYPPO_RETURN_NOT_OK(aug.RemoveTask(added));
    }
  }
  return Status::OK();
}

// Adds parallel hyperedges for alternative physical implementations from
// the dictionary (equivalent tasks, paper §III-C2 case (b)).
Status AddDictionaryAlternatives(PipelineGraph& aug,
                                 const Dictionary& dictionary,
                                 std::set<std::string>& signatures) {
  const std::vector<EdgeId> existing = aug.hypergraph().LiveEdges();
  for (EdgeId e : existing) {
    // Copy: AddTask below grows the label vectors, which would invalidate
    // a reference into them.
    const TaskInfo task = aug.task(e);
    if (task.type == TaskType::kLoad) {
      continue;
    }
    for (const std::string& impl :
         dictionary.ImplsFor(task.logical_op, task.type)) {
      if (impl == task.impl) {
        continue;
      }
      TaskInfo alternative = task;
      alternative.impl = impl;
      std::vector<NodeId> tails = aug.ordered_tail(e);
      std::vector<NodeId> heads = aug.ordered_head(e);
      HYPPO_ASSIGN_OR_RETURN(
          EdgeId added, aug.AddTask(std::move(alternative), std::move(tails),
                                    std::move(heads)));
      if (!signatures.insert(aug.TaskSignature(added)).second) {
        HYPPO_RETURN_NOT_OK(aug.RemoveTask(added));
      }
    }
  }
  return Status::OK();
}

// Adds load edges for raw sources and (optionally) artifacts the history
// has materialized.
Status AddLoadEdges(PipelineGraph& aug, const History& history,
                    const Augmenter::Options& options, ProbeCounts* counts) {
  for (NodeId v = 1; v < aug.num_artifacts(); ++v) {
    const ArtifactInfo& artifact = aug.artifact(v);
    bool loadable = artifact.kind == ArtifactKind::kRaw;
    if (!loadable && options.use_materialized) {
      Result<NodeId> h_node = options.use_index
                                  ? history.FindArtifact(artifact.name)
                                  : history.graph().FindArtifact(artifact.name);
      if (options.use_index) {
        counts->Count(h_node.ok());
      }
      if (h_node.ok() && history.IsMaterialized(*h_node)) {
        loadable = true;
      }
    }
    if (!loadable) {
      continue;
    }
    bool has_load = false;
    for (EdgeId e : aug.hypergraph().bstar(v)) {
      if (aug.task(e).type == TaskType::kLoad) {
        has_load = true;
        break;
      }
    }
    if (!has_load) {
      HYPPO_RETURN_NOT_OK(aug.AddLoadTask(v).status());
    }
  }
  return Status::OK();
}

// Collects the compute edges of `graph` whose signature the history has
// not seen. The indexed path probes History::HasTaskSignature per edge;
// the scan path materializes every history signature per submission (the
// dominant pre-index cost at large histories).
Status CollectNewTasks(const PipelineGraph& graph, const History& history,
                       const Augmenter::Options& options,
                       std::vector<EdgeId>& new_tasks, ProbeCounts* counts) {
  std::set<std::string> scan_signatures;
  if (!options.use_index || options.validate_index) {
    for (EdgeId e : history.graph().hypergraph().LiveEdges()) {
      scan_signatures.insert(history.graph().TaskSignature(e));
    }
  }
  for (EdgeId e : graph.hypergraph().LiveEdges()) {
    if (graph.task(e).type == TaskType::kLoad) {
      continue;
    }
    const std::string signature = graph.TaskSignature(e);
    bool known;
    if (options.use_index) {
      known = history.HasTaskSignature(signature);
      counts->Count(known);
      if (options.validate_index &&
          known != (scan_signatures.count(signature) > 0)) {
        return Status::Internal(
            "history index diverged from reference scan on task signature '" +
            signature + "'");
      }
    } else {
      known = scan_signatures.count(signature) > 0;
    }
    if (!known) {
      new_tasks.push_back(e);
    }
  }
  return Status::OK();
}

}  // namespace

double Augmenter::EdgeSeconds(const PipelineGraph& graph, EdgeId edge,
                              const History& history) const {
  const TaskInfo& task = graph.task(edge);
  if (task.type == TaskType::kLoad) {
    const auto& heads = graph.ordered_head(edge);
    const ArtifactInfo& artifact = graph.artifact(heads[0]);
    const bool raw = artifact.kind == ArtifactKind::kRaw;
    const storage::StorageTier& tier = raw ? remote_tier_ : local_tier_;
    return tier.LoadSeconds(artifact.size_bytes);
  }
  // Compute edge. Prefer the history's observation for the identical task
  // (matched by head name + impl: the head name fully determines the
  // logical op, type, config, and inputs).
  Result<EdgeId> history_edge = [&]() -> Result<EdgeId> {
    const auto& heads = graph.ordered_head(edge);
    HYPPO_ASSIGN_OR_RETURN(
        NodeId h_node,
        history.FindArtifact(graph.artifact(heads[0]).name));
    for (EdgeId e : history.graph().hypergraph().bstar(h_node)) {
      const TaskInfo& h_task = history.graph().task(e);
      if (h_task.type == task.type && h_task.impl == task.impl) {
        return e;
      }
    }
    return Status::NotFound("no matching history task");
  }();
  if (history_edge.ok() && history.HasTaskObservation(*history_edge)) {
    return history.ObservedTaskSeconds(*history_edge, 0.0);
  }
  // Estimator over the primary data input's estimated shape.
  int64_t rows = 1;
  int64_t cols = 1;
  for (NodeId in : graph.ordered_tail(edge)) {
    const ArtifactInfo& a = graph.artifact(in);
    if (a.kind != ArtifactKind::kOpState && a.kind != ArtifactKind::kSource) {
      rows = a.rows;
      cols = a.cols;
      break;
    }
  }
  return estimator_->EstimateTaskSeconds(task, rows, cols);
}

double Augmenter::EdgeWeight(const PipelineGraph& graph, EdgeId edge,
                             const History& history,
                             Objective objective) const {
  const double seconds = EdgeSeconds(graph, edge, history);
  if (objective == Objective::kTime) {
    return seconds;
  }
  int64_t input_bytes = 0;
  for (NodeId in : graph.ordered_tail(edge)) {
    if (in != graph.source()) {
      input_bytes += graph.artifact(in).size_bytes;
    }
  }
  return pricing_.TaskPrice(seconds, input_bytes);
}

Result<Augmentation> Augmenter::Augment(const Pipeline& pipeline,
                                        const History& history,
                                        const Options& options) const {
  Augmentation aug;
  // 1. Start from a copy of the pipeline: P is a subhypergraph of A, with
  //    identical node ids for P's artifacts, so P's targets carry over.
  aug.graph = pipeline.graph;
  aug.targets = pipeline.targets;

  std::set<std::string> signatures;
  for (EdgeId e : aug.graph.hypergraph().LiveEdges()) {
    signatures.insert(aug.graph.TaskSignature(e));
  }

  const PipelineGraph& hist = history.graph();
  ProbeCounts counts;

  // 2. Splice in every history derivation that can contribute to an
  //    artifact (equivalent to one) in the pipeline. Equivalent artifacts
  //    share canonical names, so matching is a name lookup.
  if (options.use_history) {
    std::vector<NodeId> matched;
    for (NodeId v = 1; v < aug.graph.num_artifacts(); ++v) {
      Result<NodeId> h_node =
          options.use_index ? history.FindArtifact(aug.graph.artifact(v).name)
                            : hist.FindArtifact(aug.graph.artifact(v).name);
      if (options.use_index) {
        counts.Count(h_node.ok());
      }
      if (h_node.ok()) {
        matched.push_back(*h_node);
      }
    }
    HYPPO_RETURN_NOT_OK(
        SpliceHistory(aug.graph, history, matched, signatures, options));
  }

  // 3. Dictionary alternatives.
  if (options.use_equivalences) {
    HYPPO_RETURN_NOT_OK(
        AddDictionaryAlternatives(aug.graph, *dictionary_, signatures));
  }

  // 4. Load edges.
  HYPPO_RETURN_NOT_OK(AddLoadEdges(aug.graph, history, options, &counts));

  // 5. New tasks: compute edges whose signature the history has not seen.
  HYPPO_RETURN_NOT_OK(
      CollectNewTasks(aug.graph, history, options, aug.new_tasks, &counts));

  // 6. Weights.
  const int32_t slots = aug.graph.hypergraph().num_edge_slots();
  aug.edge_weight.assign(static_cast<size_t>(slots), 0.0);
  aug.edge_seconds.assign(static_cast<size_t>(slots), 0.0);
  for (EdgeId e = 0; e < slots; ++e) {
    if (!aug.graph.hypergraph().IsLiveEdge(e)) {
      continue;
    }
    aug.edge_seconds[static_cast<size_t>(e)] =
        EdgeSeconds(aug.graph, e, history);
    aug.edge_weight[static_cast<size_t>(e)] =
        options.objective == Objective::kTime
            ? aug.edge_seconds[static_cast<size_t>(e)]
            : EdgeWeight(aug.graph, e, history, options.objective);
  }
  if (monitor_ != nullptr && options.use_index) {
    monitor_->RecordIndexHits(counts.hits);
    monitor_->RecordIndexMisses(counts.misses);
  }
  return aug;
}

Result<Augmentation> Augmenter::AugmentForRetrieval(
    const History& history, const std::vector<std::string>& target_names,
    const Options& options) const {
  const PipelineGraph& hist = history.graph();
  ProbeCounts counts;
  std::vector<NodeId> matched;
  for (const std::string& name : target_names) {
    Result<NodeId> node = options.use_index ? history.FindArtifact(name)
                                            : hist.FindArtifact(name);
    if (options.use_index) {
      counts.Count(node.ok());
    }
    HYPPO_RETURN_NOT_OK(node.status());
    matched.push_back(*node);
  }
  Augmentation aug;
  std::set<std::string> signatures;
  HYPPO_RETURN_NOT_OK(
      SpliceHistory(aug.graph, history, matched, signatures, options));
  if (options.use_equivalences) {
    HYPPO_RETURN_NOT_OK(
        AddDictionaryAlternatives(aug.graph, *dictionary_, signatures));
  }
  HYPPO_RETURN_NOT_OK(AddLoadEdges(aug.graph, history, options, &counts));
  for (const std::string& name : target_names) {
    HYPPO_ASSIGN_OR_RETURN(NodeId node, aug.graph.FindArtifact(name));
    aug.targets.push_back(node);
  }
  // Weights; retrieval plans contain no new tasks from the pipeline's
  // perspective except spliced dictionary alternatives, which stay
  // eligible for exploration.
  HYPPO_RETURN_NOT_OK(
      CollectNewTasks(aug.graph, history, options, aug.new_tasks, &counts));
  const int32_t slots = aug.graph.hypergraph().num_edge_slots();
  aug.edge_weight.assign(static_cast<size_t>(slots), 0.0);
  aug.edge_seconds.assign(static_cast<size_t>(slots), 0.0);
  for (EdgeId e = 0; e < slots; ++e) {
    if (!aug.graph.hypergraph().IsLiveEdge(e)) {
      continue;
    }
    aug.edge_seconds[static_cast<size_t>(e)] =
        EdgeSeconds(aug.graph, e, history);
    aug.edge_weight[static_cast<size_t>(e)] =
        options.objective == Objective::kTime
            ? aug.edge_seconds[static_cast<size_t>(e)]
            : EdgeWeight(aug.graph, e, history, options.objective);
  }
  if (monitor_ != nullptr && options.use_index) {
    monitor_->RecordIndexHits(counts.hits);
    monitor_->RecordIndexMisses(counts.misses);
  }
  return aug;
}

}  // namespace hyppo::core
