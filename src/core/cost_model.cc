#include "core/cost_model.h"

#include <cmath>

namespace hyppo::core {

int CostEstimator::CellBucket(int64_t rows, int64_t cols) {
  const double cells =
      std::max<double>(1.0, static_cast<double>(rows) *
                                std::max<int64_t>(1, cols));
  return static_cast<int>(std::floor(std::log2(cells)));
}

void CostEstimator::Observe(const std::string& impl, TaskType type,
                            int64_t rows, int64_t cols, double seconds) {
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    BucketStats& bucket =
        stats_[StatsKey(impl, type)][CellBucket(rows, cols)];
    bucket.total_seconds += seconds;
    bucket.total_cells += static_cast<double>(rows) *
                          static_cast<double>(std::max<int64_t>(1, cols));
    ++bucket.count;
  }
  num_observations_.fetch_add(1, std::memory_order_relaxed);
}

double CostEstimator::EstimateTaskSeconds(const TaskInfo& task, int64_t rows,
                                          int64_t cols) const {
  const double cells = std::max<double>(
      1.0, static_cast<double>(rows) *
               static_cast<double>(std::max<int64_t>(1, cols)));
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    auto key_it = stats_.find(StatsKey(task.impl, task.type));
    if (key_it != stats_.end() && !key_it->second.empty()) {
      const int bucket = CellBucket(rows, cols);
      // Exact bucket, else nearest observed bucket scaled linearly by cell
      // count (operators in the catalog are near-linear in cells at fixed
      // configuration).
      auto exact = key_it->second.find(bucket);
      if (exact != key_it->second.end()) {
        return exact->second.total_seconds /
               static_cast<double>(exact->second.count);
      }
      int best_distance = 1 << 30;
      const BucketStats* best = nullptr;
      for (const auto& [b, stats] : key_it->second) {
        const int distance = std::abs(b - bucket);
        if (distance < best_distance) {
          best_distance = distance;
          best = &stats;
        }
      }
      if (best != nullptr && best->total_cells > 0.0) {
        const double seconds_per_cell =
            best->total_seconds / best->total_cells;
        return seconds_per_cell * cells;
      }
    }
  }
  // Fallback: the implementation's registered cost formula, corrected by
  // the measured kernel-tier throughput (formulas were tuned against the
  // blocked tier; see SetComputeThroughputScale).
  const double scale = compute_throughput_scale();
  if (!task.impl.empty()) {
    Result<const ml::PhysicalOperator*> op = registry_->Get(task.impl);
    if (op.ok()) {
      Result<ml::MlTask> ml_task = ToMlTask(task.type);
      if (ml_task.ok()) {
        return (*op)->CostHint(*ml_task, rows, cols, task.config) / scale;
      }
    }
  }
  // Unknown operator: generic linear-in-cells guess.
  return 1e-8 * cells / scale;
}

}  // namespace hyppo::core
