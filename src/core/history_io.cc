#include "core/history_io.h"

#include <filesystem>
#include <fstream>

#include "storage/serialization.h"

namespace hyppo::core {

namespace {

using storage::BinaryReader;
using storage::BinaryWriter;

constexpr uint32_t kHistoryMagic = 0x48595048;  // "HYPH"
constexpr uint32_t kVersion = 1;

// URL-safe-ish file name for a canonical artifact name (already hex).
std::string PayloadFileName(const std::string& name) {
  return name + ".bin";
}

}  // namespace

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IoError("cannot open '" + path + "' for reading");
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (!in.good() && !in.eof()) {
    return Status::IoError("error while reading '" + path + "'");
  }
  return bytes;
}

Status AtomicWriteFile(const std::string& path, const std::string& bytes) {
  namespace fs = std::filesystem;
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::IoError("cannot open '" + tmp + "' for writing");
    }
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out.good()) {
      out.close();
      std::error_code ec;
      fs::remove(tmp, ec);
      return Status::IoError("error while writing '" + tmp + "'");
    }
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    return Status::IoError("cannot rename '" + tmp + "' into place: " +
                           ec.message());
  }
  return Status::OK();
}

Result<std::string> SerializeHistory(const History& history) {
  const PipelineGraph& graph = history.graph();
  BinaryWriter writer;
  writer.WriteU32(kHistoryMagic);
  writer.WriteU32(kVersion);

  // Artifacts (excluding the implicit source node 0).
  writer.WriteU64(static_cast<uint64_t>(graph.num_artifacts() - 1));
  for (NodeId v = 1; v < graph.num_artifacts(); ++v) {
    const ArtifactInfo& info = graph.artifact(v);
    writer.WriteString(info.name);
    writer.WriteU32(static_cast<uint32_t>(info.kind));
    writer.WriteString(info.display);
    writer.WriteI64(info.size_bytes);
    writer.WriteI64(info.rows);
    writer.WriteI64(info.cols);
    const ArtifactRecord& record = history.record(v);
    writer.WriteDouble(record.compute_seconds);
    writer.WriteI64(record.compute_observations);
    writer.WriteI64(record.access_count);
    writer.WriteDouble(record.last_access_seconds);
    writer.WriteI64(record.version);
    writer.WriteBool(record.materialized);
  }

  // Compute tasks (load edges are reconstructed from the materialized /
  // raw flags, exactly as §IV-H describes them).
  std::vector<EdgeId> compute_edges;
  for (EdgeId e : graph.hypergraph().LiveEdges()) {
    if (graph.task(e).type != TaskType::kLoad) {
      compute_edges.push_back(e);
    }
  }
  writer.WriteU64(compute_edges.size());
  for (EdgeId e : compute_edges) {
    const TaskInfo& task = graph.task(e);
    writer.WriteString(task.logical_op);
    writer.WriteU32(static_cast<uint32_t>(task.type));
    writer.WriteString(task.impl);
    writer.WriteU64(task.config.values().size());
    for (const auto& [key, value] : task.config.values()) {
      writer.WriteString(key);
      writer.WriteString(value);
    }
    writer.WriteU64(graph.ordered_tail(e).size());
    for (NodeId t : graph.ordered_tail(e)) {
      writer.WriteString(graph.artifact(t).name);
    }
    writer.WriteU64(graph.ordered_head(e).size());
    for (NodeId h : graph.ordered_head(e)) {
      writer.WriteString(graph.artifact(h).name);
    }
    const auto [total_seconds, count] = history.TaskObservation(e);
    writer.WriteDouble(total_seconds);
    writer.WriteI64(count);
  }
  return writer.Take();
}

Result<History> DeserializeHistory(const std::string& bytes) {
  BinaryReader reader(bytes);
  HYPPO_ASSIGN_OR_RETURN(uint32_t magic, reader.ReadU32());
  if (magic != kHistoryMagic) {
    return Status::ParseError("bad history magic");
  }
  HYPPO_ASSIGN_OR_RETURN(uint32_t version, reader.ReadU32());
  if (version != kVersion) {
    return Status::ParseError("unsupported history version " +
                              std::to_string(version));
  }
  History history;
  HYPPO_ASSIGN_OR_RETURN(uint64_t artifacts, reader.ReadU64());
  struct Pending {
    NodeId node;
    bool materialized;
  };
  std::vector<Pending> pending;
  for (uint64_t i = 0; i < artifacts; ++i) {
    ArtifactInfo info;
    HYPPO_ASSIGN_OR_RETURN(info.name, reader.ReadString());
    HYPPO_ASSIGN_OR_RETURN(uint32_t kind, reader.ReadU32());
    info.kind = static_cast<ArtifactKind>(kind);
    HYPPO_ASSIGN_OR_RETURN(info.display, reader.ReadString());
    HYPPO_ASSIGN_OR_RETURN(info.size_bytes, reader.ReadI64());
    HYPPO_ASSIGN_OR_RETURN(info.rows, reader.ReadI64());
    HYPPO_ASSIGN_OR_RETURN(info.cols, reader.ReadI64());
    const NodeId node = history.Observe(info);
    ArtifactRecord& record = history.record(node);
    HYPPO_ASSIGN_OR_RETURN(record.compute_seconds, reader.ReadDouble());
    HYPPO_ASSIGN_OR_RETURN(record.compute_observations, reader.ReadI64());
    HYPPO_ASSIGN_OR_RETURN(record.access_count, reader.ReadI64());
    HYPPO_ASSIGN_OR_RETURN(record.last_access_seconds, reader.ReadDouble());
    HYPPO_ASSIGN_OR_RETURN(record.version, reader.ReadI64());
    HYPPO_ASSIGN_OR_RETURN(bool materialized, reader.ReadBool());
    if (info.kind == ArtifactKind::kRaw) {
      HYPPO_RETURN_NOT_OK(history.RegisterSourceData(node).status());
    } else if (materialized) {
      pending.push_back(Pending{node, true});
    }
  }
  HYPPO_ASSIGN_OR_RETURN(uint64_t tasks, reader.ReadU64());
  for (uint64_t i = 0; i < tasks; ++i) {
    TaskInfo task;
    HYPPO_ASSIGN_OR_RETURN(task.logical_op, reader.ReadString());
    HYPPO_ASSIGN_OR_RETURN(uint32_t type, reader.ReadU32());
    task.type = static_cast<TaskType>(type);
    HYPPO_ASSIGN_OR_RETURN(task.impl, reader.ReadString());
    HYPPO_ASSIGN_OR_RETURN(uint64_t config_entries, reader.ReadU64());
    for (uint64_t k = 0; k < config_entries; ++k) {
      HYPPO_ASSIGN_OR_RETURN(std::string key, reader.ReadString());
      HYPPO_ASSIGN_OR_RETURN(std::string value, reader.ReadString());
      task.config.Set(key, std::move(value));
    }
    auto read_nodes = [&]() -> Result<std::vector<NodeId>> {
      HYPPO_ASSIGN_OR_RETURN(uint64_t count, reader.ReadU64());
      std::vector<NodeId> nodes;
      for (uint64_t k = 0; k < count; ++k) {
        HYPPO_ASSIGN_OR_RETURN(std::string name, reader.ReadString());
        HYPPO_ASSIGN_OR_RETURN(NodeId node,
                               history.graph().FindArtifact(name));
        nodes.push_back(node);
      }
      return nodes;
    };
    HYPPO_ASSIGN_OR_RETURN(std::vector<NodeId> tails, read_nodes());
    HYPPO_ASSIGN_OR_RETURN(std::vector<NodeId> heads, read_nodes());
    HYPPO_ASSIGN_OR_RETURN(double total_seconds, reader.ReadDouble());
    HYPPO_ASSIGN_OR_RETURN(int64_t count, reader.ReadI64());
    // Replay the observations: one averaged observation per recorded run.
    if (count <= 0) {
      HYPPO_RETURN_NOT_OK(
          history.ObserveTask(task, tails, heads, -1.0).status());
    } else {
      const double mean = total_seconds / static_cast<double>(count);
      for (int64_t k = 0; k < count; ++k) {
        HYPPO_RETURN_NOT_OK(
            history.ObserveTask(task, tails, heads, mean).status());
      }
    }
  }
  for (const Pending& p : pending) {
    HYPPO_RETURN_NOT_OK(history.MarkMaterialized(p.node));
  }
  if (!reader.AtEnd()) {
    return Status::ParseError("trailing bytes after history");
  }
  return history;
}

Status SaveCatalog(const History& history,
                   const storage::ArtifactStore& store,
                   const std::string& directory) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(fs::path(directory) / "artifacts", ec);
  if (ec) {
    return Status::IoError("cannot create catalog directory '" + directory +
                           "': " + ec.message());
  }
  HYPPO_ASSIGN_OR_RETURN(std::string history_bytes,
                         SerializeHistory(history));
  HYPPO_RETURN_NOT_OK(AtomicWriteFile(
      (fs::path(directory) / "history.hyppo").string(), history_bytes));
  for (const std::string& key : store.Keys()) {
    HYPPO_ASSIGN_OR_RETURN(storage::ArtifactPayload payload, store.Get(key));
    HYPPO_ASSIGN_OR_RETURN(std::string bytes,
                           storage::SerializePayload(payload));
    HYPPO_RETURN_NOT_OK(AtomicWriteFile(
        (fs::path(directory) / "artifacts" / PayloadFileName(key)).string(),
        bytes));
  }
  return Status::OK();
}

Status LoadCatalog(const std::string& directory, History* history,
                   storage::ArtifactStore* store) {
  namespace fs = std::filesystem;
  HYPPO_ASSIGN_OR_RETURN(
      std::string history_bytes,
      ReadFileToString((fs::path(directory) / "history.hyppo").string()));
  HYPPO_ASSIGN_OR_RETURN(History loaded, DeserializeHistory(history_bytes));
  // Restore payloads; evict history entries whose payload is missing.
  for (NodeId v : loaded.MaterializedArtifacts()) {
    const ArtifactInfo& info = loaded.graph().artifact(v);
    const std::string path =
        (fs::path(directory) / "artifacts" / PayloadFileName(info.name))
            .string();
    Result<std::string> bytes = ReadFileToString(path);
    if (!bytes.ok()) {
      HYPPO_RETURN_NOT_OK(loaded.EvictMaterialized(v));
      continue;
    }
    HYPPO_ASSIGN_OR_RETURN(storage::ArtifactPayload payload,
                           storage::DeserializePayload(*bytes));
    HYPPO_RETURN_NOT_OK(store->Put(info.name, std::move(payload),
                                   info.size_bytes));
  }
  *history = std::move(loaded);
  return Status::OK();
}

}  // namespace hyppo::core
