#ifndef HYPPO_CORE_BATCH_PLANNER_H_
#define HYPPO_CORE_BATCH_PLANNER_H_

#include <vector>

#include "common/result.h"
#include "core/augmenter.h"
#include "core/optimizer.h"

namespace hyppo::core {

/// \brief Multi-query optimization for pipeline batches (hyperparameter
/// sweeps): a set of related pipelines is folded into ONE hypergraph by
/// task-signature dedup, augmented once against the history, and planned
/// per member against shared lower bounds.
///
/// A 50-config grid sweep shares whole prefixes (load -> impute -> scale
/// -> split); planning the members one-by-one re-pays augmentation and
/// search 50 times while the executor recomputes the shared prefix until
/// the history catches up. Folding the batch makes the sharing explicit:
/// merged members' plans reference the SAME node ids, so the runtime can
/// seed each member execution with every payload an earlier member
/// produced (Runtime::RunBatch), and the shared-prefix artifacts
/// accumulate batch-wide access counts (fan-out x recompute cost) before
/// one end-of-batch materialization decision.
class BatchPlanner {
 public:
  struct Options {
    Augmenter::Options augment;
    PlanGenerator::Options search;
  };

  /// One member's plan over the merged augmentation, with its targets
  /// re-expressed in merged-graph node ids.
  struct MemberPlan {
    Plan plan;
    std::vector<NodeId> targets;
  };

  struct Stats {
    /// Task edges merged away by cross-pipeline signature dedup.
    int64_t merged_tasks = 0;
    /// Distinct task edges the merged pipeline kept.
    int64_t distinct_tasks = 0;
    /// Planned edges shared by more than one member plan, counted once
    /// per extra member (3 members planning one edge = 2 hits) — the
    /// work the batch executor pays once instead of per member.
    int64_t shared_prefix_hits = 0;
  };

  struct Planned {
    /// The augmentation of the merged batch graph. Every member plan's
    /// edge/node ids refer to it.
    Augmentation merged;
    std::vector<MemberPlan> members;
    Stats stats;
    double optimize_seconds = 0.0;
  };

  /// Folds the batch's task graphs into one pipeline by canonical
  /// artifact name and task signature. `member_targets`, when non-null,
  /// receives each member's targets mapped into merged node ids.
  static Result<Pipeline> MergePipelines(
      const std::vector<Pipeline>& pipelines,
      std::vector<std::vector<NodeId>>* member_targets, Stats* stats);

  /// Merges, augments once, computes lower bounds once, and plans every
  /// member's targets over the shared augmentation. Members whose exact
  /// search exhausts its expansion budget fall back to greedy (the same
  /// accuracy trade HyppoMethod makes).
  static Result<Planned> PlanBatch(const std::vector<Pipeline>& pipelines,
                                   const History& history,
                                   const Augmenter& augmenter,
                                   const Options& options,
                                   PlanGenerator::SearchStats* stats = nullptr);
};

}  // namespace hyppo::core

#endif  // HYPPO_CORE_BATCH_PLANNER_H_
