#include "core/hyppo.h"

#include <set>

#include "common/clock.h"

namespace hyppo::core {

Result<Method::Planned> Method::PlanRetrieval(
    const std::vector<std::string>& /*artifact_names*/) {
  return Status::NotImplemented(name() + " does not support retrieval plans");
}

Result<BatchPlanner::Planned> Method::PlanPipelineBatch(
    const std::vector<Pipeline>& /*pipelines*/) {
  return Status::NotImplemented(name() + " does not support batch plans");
}

Status Method::AfterBatchExecution(
    const std::vector<Pipeline>& /*pipelines*/,
    const BatchPlanner::Planned& /*planned*/,
    const Runtime::BatchExecutionRecord& /*record*/) {
  return Status::NotImplemented(name() +
                                " does not support batch materialization");
}

Result<Plan> Method::ReplanAugmentation(const Augmentation& aug) {
  PlanGenerator generator;
  PlanGenerator::Options options;
  options.strategy = PlanGenerator::Strategy::kGreedy;
  options.verify_plans = runtime_->options().verify_plans;
  return generator.Optimize(aug, options);
}

Runtime::Replanner Method::MakeReplanner() {
  return [this](const Augmentation& aug) { return ReplanAugmentation(aug); };
}

HyppoMethod::HyppoMethod(Runtime* runtime)
    : HyppoMethod(runtime, Options()) {}

HyppoMethod::HyppoMethod(Runtime* runtime, Options options)
    : Method(runtime),
      options_(options),
      materializer_(&runtime->augmenter()) {
  options_.materialization.budget_bytes =
      runtime->options().storage_budget_bytes;
  options_.augment.objective = runtime->options().objective;
  // Production default: dominance pruning keeps the exact search fast on
  // alternative-rich augmentations without changing the returned optimum
  // (the scalability benches run the paper-faithful un-pruned variants
  // explicitly). A bounded expansion budget backs the search with a
  // greedy fallback.
  options_.search.dominance_pruning = true;
  if (options_.search.max_expansions > 200'000) {
    options_.search.max_expansions = 200'000;
  }
  options_.search.verify_plans = runtime->options().verify_plans;
  // The runtime's parallelism budget also drives the plan search:
  // kPriority/kAStar route to the parallel engine when it exceeds 1.
  options_.search.num_threads = runtime->options().parallelism;
}

Result<Method::Planned> HyppoMethod::PlanAugmentation(Augmentation aug) {
  WallClock clock;
  Stopwatch stopwatch(clock);
  // last_stats_ accumulates across searches; the monitor wants this
  // search's contribution, so record the delta.
  const int64_t pruned_before = last_stats_.pruned_by_dominance;
  Result<Plan> search = generator_.Optimize(aug, options_.search,
                                            &last_stats_);
  if (!search.ok() && search.status().IsResourceExhausted()) {
    // Accuracy sacrificed for a good plan in linear time (§IV-E).
    PlanGenerator::Options greedy = options_.search;
    greedy.strategy = PlanGenerator::Strategy::kGreedy;
    search = generator_.Optimize(aug, greedy, &last_stats_);
  }
  runtime_->monitor().RecordStatesPruned(last_stats_.pruned_by_dominance -
                                         pruned_before);
  HYPPO_ASSIGN_OR_RETURN(Plan plan, std::move(search));
  Planned planned;
  planned.aug = std::move(aug);
  planned.plan = std::move(plan);
  planned.optimize_seconds = stopwatch.Elapsed();
  return planned;
}

Result<Plan> HyppoMethod::ReplanAugmentation(const Augmentation& aug) {
  const int64_t pruned_before = last_stats_.pruned_by_dominance;
  Result<Plan> search = generator_.Optimize(aug, options_.search,
                                            &last_stats_);
  if (!search.ok() && search.status().IsResourceExhausted()) {
    PlanGenerator::Options greedy = options_.search;
    greedy.strategy = PlanGenerator::Strategy::kGreedy;
    search = generator_.Optimize(aug, greedy, &last_stats_);
  }
  runtime_->monitor().RecordStatesPruned(last_stats_.pruned_by_dominance -
                                         pruned_before);
  return search;
}

Result<Method::Planned> HyppoMethod::PlanPipeline(const Pipeline& pipeline) {
  WallClock clock;
  Stopwatch stopwatch(clock);
  HYPPO_ASSIGN_OR_RETURN(
      Augmentation aug,
      runtime_->augmenter().Augment(pipeline, runtime_->history(),
                                    options_.augment));
  HYPPO_ASSIGN_OR_RETURN(Planned planned, PlanAugmentation(std::move(aug)));
  planned.optimize_seconds = stopwatch.Elapsed();
  return planned;
}

Result<Method::Planned> HyppoMethod::PlanRetrieval(
    const std::vector<std::string>& artifact_names) {
  WallClock clock;
  Stopwatch stopwatch(clock);
  HYPPO_ASSIGN_OR_RETURN(
      Augmentation aug,
      runtime_->augmenter().AugmentForRetrieval(
          runtime_->history(), artifact_names, options_.augment));
  HYPPO_ASSIGN_OR_RETURN(Planned planned, PlanAugmentation(std::move(aug)));
  planned.optimize_seconds = stopwatch.Elapsed();
  return planned;
}

Result<BatchPlanner::Planned> HyppoMethod::PlanPipelineBatch(
    const std::vector<Pipeline>& pipelines) {
  const int64_t pruned_before = last_stats_.pruned_by_dominance;
  BatchPlanner::Options options;
  options.augment = options_.augment;
  options.search = options_.search;
  Result<BatchPlanner::Planned> planned = BatchPlanner::PlanBatch(
      pipelines, runtime_->history(), runtime_->augmenter(), options,
      &last_stats_);
  runtime_->monitor().RecordStatesPruned(last_stats_.pruned_by_dominance -
                                         pruned_before);
  if (planned.ok()) {
    runtime_->monitor().RecordBatchMergedTasks(planned->stats.merged_tasks);
    runtime_->monitor().RecordBatchPlanSeconds(planned->optimize_seconds);
  }
  return planned;
}

Status HyppoMethod::AfterBatchExecution(
    const std::vector<Pipeline>& /*pipelines*/,
    const BatchPlanner::Planned& /*planned*/,
    const Runtime::BatchExecutionRecord& record) {
  Materializer::Options options = options_.materialization;
  options.budget_bytes = runtime_->options().storage_budget_bytes;
  std::set<std::string> storable;
  std::map<std::string, ArtifactPayload> available;
  for (const Runtime::ExecutionRecord& member : record.members) {
    for (const auto& [name, payload] : member.payloads_by_name) {
      storable.insert(name);
      available.emplace(name, payload);
    }
  }
  Materializer::Decision decision =
      materializer_.Decide(runtime_->history(), storable, options);
  return materializer_.Apply(runtime_->history(), runtime_->store(), decision,
                             available);
}

Status HyppoMethod::AfterExecution(const Pipeline& /*pipeline*/,
                                   const Planned& /*planned*/,
                                   const Runtime::ExecutionRecord& record) {
  Materializer::Options options = options_.materialization;
  options.budget_bytes = runtime_->options().storage_budget_bytes;
  std::set<std::string> storable;
  std::map<std::string, ArtifactPayload> available;
  for (const auto& [name, payload] : record.payloads_by_name) {
    storable.insert(name);
    available.emplace(name, payload);
  }
  Materializer::Decision decision =
      materializer_.Decide(runtime_->history(), storable, options);
  return materializer_.Apply(runtime_->history(), runtime_->store(), decision,
                             available);
}

HyppoSystem::HyppoSystem() : HyppoSystem(Options()) {}

HyppoSystem::HyppoSystem(Options options)
    : runtime_(std::make_unique<Runtime>(options.runtime)),
      method_(std::make_unique<HyppoMethod>(runtime_.get(), options.method)) {
}

Result<Pipeline> HyppoSystem::Parse(const std::string& code,
                                    const std::string& id) {
  return ParsePipeline(code, id, runtime_->dictionary());
}

Result<HyppoSystem::RunReport> HyppoSystem::RunPipeline(
    const Pipeline& pipeline) {
  HYPPO_RETURN_NOT_OK(runtime_->session_status());
  HYPPO_ASSIGN_OR_RETURN(Method::Planned planned,
                         method_->PlanPipeline(pipeline));
  // Baseline estimate: executing the pipeline exactly as written.
  double baseline = 0.0;
  for (EdgeId e : pipeline.graph.hypergraph().LiveEdges()) {
    baseline += runtime_->augmenter().EdgeSeconds(pipeline.graph, e,
                                                  runtime_->history());
  }
  HYPPO_ASSIGN_OR_RETURN(
      Runtime::ExecutionRecord record,
      runtime_->ExecuteAndRecord(pipeline, planned.aug, planned.plan,
                                 method_->MakeReplanner()));
  HYPPO_RETURN_NOT_OK(method_->AfterExecution(pipeline, planned, record));
  // Durable sessions checkpoint the history after every pipeline: the
  // payloads are already on disk, and the snapshot makes them reloadable.
  HYPPO_RETURN_NOT_OK(runtime_->PersistSession());
  RunReport report;
  report.plan = planned.plan;
  report.execute_seconds = record.seconds;
  report.optimize_seconds = planned.optimize_seconds;
  report.baseline_seconds = baseline;
  report.tasks_executed = static_cast<int32_t>(planned.plan.edges.size());
  for (NodeId t : pipeline.targets) {
    const std::string& name = pipeline.graph.artifact(t).name;
    auto it = record.payloads_by_name.find(name);
    if (it != record.payloads_by_name.end()) {
      report.target_payloads.emplace(name, it->second);
    }
  }
  return report;
}

Result<HyppoSystem::BatchRunReport> HyppoSystem::RunBatch(
    const std::vector<Pipeline>& pipelines) {
  HYPPO_RETURN_NOT_OK(runtime_->session_status());
  BatchRunReport batch;
  if (!runtime_->options().batch_planning || pipelines.size() < 2) {
    // Sequential fallback: the baseline the sweep bench compares against.
    batch.reports.reserve(pipelines.size());
    for (const Pipeline& pipeline : pipelines) {
      HYPPO_ASSIGN_OR_RETURN(RunReport report, RunPipeline(pipeline));
      batch.optimize_seconds += report.optimize_seconds;
      batch.execute_seconds += report.execute_seconds;
      batch.reports.push_back(std::move(report));
    }
    return batch;
  }
  HYPPO_ASSIGN_OR_RETURN(BatchPlanner::Planned planned,
                         method_->PlanPipelineBatch(pipelines));
  HYPPO_ASSIGN_OR_RETURN(
      Runtime::BatchExecutionRecord record,
      runtime_->RunBatch(pipelines, planned.merged, planned.members,
                         method_->MakeReplanner()));
  HYPPO_RETURN_NOT_OK(
      method_->AfterBatchExecution(pipelines, planned, record));
  HYPPO_RETURN_NOT_OK(runtime_->PersistSession());
  batch.batched = true;
  batch.optimize_seconds = planned.optimize_seconds;
  batch.execute_seconds = record.seconds;
  batch.merged_tasks = planned.stats.merged_tasks;
  batch.shared_prefix_hits = planned.stats.shared_prefix_hits;
  batch.shared_prefix_skips = record.shared_prefix_skips;
  batch.reports.reserve(pipelines.size());
  const double amortized =
      planned.optimize_seconds / static_cast<double>(pipelines.size());
  for (size_t i = 0; i < pipelines.size(); ++i) {
    const Pipeline& pipeline = pipelines[i];
    RunReport report;
    report.plan = planned.members[i].plan;
    report.execute_seconds = record.members[i].seconds;
    report.optimize_seconds = amortized;
    for (EdgeId e : pipeline.graph.hypergraph().LiveEdges()) {
      report.baseline_seconds += runtime_->augmenter().EdgeSeconds(
          pipeline.graph, e, runtime_->history());
    }
    report.tasks_executed =
        static_cast<int32_t>(planned.members[i].plan.edges.size());
    for (NodeId t : pipeline.targets) {
      const std::string& name = pipeline.graph.artifact(t).name;
      const auto it = record.members[i].payloads_by_name.find(name);
      if (it != record.members[i].payloads_by_name.end()) {
        report.target_payloads.emplace(name, it->second);
      }
    }
    batch.reports.push_back(std::move(report));
  }
  return batch;
}

Result<HyppoSystem::RunReport> HyppoSystem::RunCode(const std::string& code,
                                                    const std::string& id) {
  HYPPO_ASSIGN_OR_RETURN(Pipeline pipeline, Parse(code, id));
  return RunPipeline(pipeline);
}

Result<HyppoSystem::RunReport> HyppoSystem::RetrieveArtifacts(
    const std::vector<std::string>& artifact_names) {
  HYPPO_ASSIGN_OR_RETURN(Method::Planned planned,
                         method_->PlanRetrieval(artifact_names));
  HYPPO_ASSIGN_OR_RETURN(
      Runtime::ExecutionRecord record,
      runtime_->ExecutePlanOnly(planned.aug, planned.plan,
                                method_->MakeReplanner()));
  RunReport report;
  report.plan = planned.plan;
  report.execute_seconds = record.seconds;
  report.optimize_seconds = planned.optimize_seconds;
  report.tasks_executed = static_cast<int32_t>(planned.plan.edges.size());
  for (const std::string& name : artifact_names) {
    auto it = record.payloads_by_name.find(name);
    if (it != record.payloads_by_name.end()) {
      report.target_payloads.emplace(name, it->second);
    }
  }
  return report;
}

}  // namespace hyppo::core
