#ifndef HYPPO_CORE_NAMING_H_
#define HYPPO_CORE_NAMING_H_

#include <string>
#include <vector>

#include "core/task.h"

namespace hyppo::core {

/// \brief Canonical artifact naming (paper §IV-C).
///
/// An artifact's name encodes its backward star recursively: the logical
/// operator, task type, and configuration of the producing task, the names
/// of its ordered inputs, and the output position. Names are 64-bit hashes
/// rendered as fixed-size hex strings. Crucially the *physical
/// implementation is excluded*, so artifacts produced by equivalent tasks
/// (different implementations of the same logical operator on the same
/// inputs) collide by construction — equivalence discovery reduces to name
/// lookup in the history.

/// Name of a raw dataset artifact identified by `dataset_id`
/// (e.g. "higgs@1.0").
std::string SourceArtifactName(const std::string& dataset_id);

/// Names for the `num_outputs` outputs of a task applied to inputs with
/// the given canonical names (in declaration order).
std::vector<std::string> TaskOutputNames(
    const TaskInfo& task, const std::vector<std::string>& input_names,
    int num_outputs);

}  // namespace hyppo::core

#endif  // HYPPO_CORE_NAMING_H_
