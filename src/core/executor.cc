#include "core/executor.h"

#include <algorithm>
#include <deque>
#include <utility>
#include <variant>

#include "common/thread_pool.h"
#include "hypergraph/algorithms.h"
#include "ml/kernels/kernels.h"

namespace hyppo::core {

namespace {

// Splits input payloads by kind in declaration order.
Result<ml::TaskInputs> BindInputs(
    const PipelineGraph& graph, EdgeId edge,
    const std::map<NodeId, ArtifactPayload>& payloads) {
  ml::TaskInputs inputs;
  for (NodeId in : graph.ordered_tail(edge)) {
    if (in == graph.source()) {
      continue;
    }
    auto it = payloads.find(in);
    if (it == payloads.end()) {
      return Status::Internal("input artifact '" +
                              graph.artifact(in).display +
                              "' has no payload; plan order is broken");
    }
    const ArtifactPayload& payload = it->second;
    if (const auto* dataset = std::get_if<ml::DatasetPtr>(&payload)) {
      inputs.datasets.push_back(*dataset);
    } else if (const auto* state = std::get_if<ml::OpStatePtr>(&payload)) {
      inputs.states.push_back(*state);
    } else if (const auto* preds =
                   std::get_if<ml::PredictionsPtr>(&payload)) {
      inputs.predictions.push_back(*preds);
    } else {
      return Status::Internal("unsupported input payload kind for task " +
                              graph.task(edge).logical_op);
    }
  }
  return inputs;
}

// Primary data shape of a task's inputs, for monitoring.
void InputShape(const PipelineGraph& graph, EdgeId edge, int64_t* rows,
                int64_t* cols) {
  *rows = 1;
  *cols = 1;
  for (NodeId in : graph.ordered_tail(edge)) {
    const ArtifactInfo& a = graph.artifact(in);
    if (a.kind != ArtifactKind::kOpState && a.kind != ArtifactKind::kSource) {
      *rows = a.rows;
      *cols = a.cols;
      return;
    }
  }
}

// Every head node already has a payload (recovered from a prior attempt).
bool AllHeadsPresent(const std::map<NodeId, ArtifactPayload>& payloads,
                     const std::vector<NodeId>& heads) {
  for (NodeId head : heads) {
    if (payloads.count(head) == 0) {
      return false;
    }
  }
  return true;
}

// Every non-source input has a payload; false means an upstream task
// failed and this one must be skipped.
bool TailsPresent(const PipelineGraph& graph, EdgeId edge,
                  const std::map<NodeId, ArtifactPayload>& payloads) {
  for (NodeId in : graph.ordered_tail(edge)) {
    if (in != graph.source() && payloads.count(in) == 0) {
      return false;
    }
  }
  return true;
}

}  // namespace

Result<double> Executor::RunLoadTask(
    const PipelineGraph& graph, EdgeId edge,
    std::map<NodeId, ArtifactPayload>* outputs, const Options& options) const {
  const NodeId head = graph.ordered_head(edge)[0];
  const ArtifactInfo& artifact = graph.artifact(head);
  const bool raw = artifact.kind == ArtifactKind::kRaw;
  if (options.simulate) {
    const storage::StorageTier tier = raw ? storage::StorageTier::Remote()
                                          : store_->tier();
    double seconds = tier.LoadSeconds(artifact.size_bytes);
    // Simulated loads never touch the store, so the fault hooks fire here
    // (real execution injects store faults through FaultInjectingStore).
    if (options.fault_injector != nullptr) {
      const storage::FaultSite site = raw ? storage::FaultSite::kResolver
                                          : storage::FaultSite::kStoreLoad;
      const std::string& key = raw ? artifact.display : artifact.name;
      const storage::FaultInjector::Decision decision =
          options.fault_injector->Decide(site, key);
      switch (decision.kind) {
        case storage::FaultKind::kNotFound:
          return Status::NotFound("injected fault: artifact '" +
                                  artifact.name +
                                  "' vanished from the store");
        case storage::FaultKind::kCorrupt:
          return Status::IoError("injected fault: corrupted payload for '" +
                                 artifact.display + "'");
        case storage::FaultKind::kFail:
          return Status::IoError("injected fault: resolver for '" +
                                 artifact.display + "' is unavailable");
        case storage::FaultKind::kSlowLoad:
          seconds *= decision.slow_multiplier;
          break;
        case storage::FaultKind::kNone:
          break;
      }
    }
    (*outputs)[head] = std::monostate{};
    return seconds;
  }
  if (raw) {
    if (!resolver_) {
      return Status::FailedPrecondition(
          "no dataset resolver registered for raw load of '" +
          artifact.display + "'");
    }
    if (options.fault_injector != nullptr &&
        options.fault_injector
                ->Decide(storage::FaultSite::kResolver, artifact.display)
                .kind != storage::FaultKind::kNone) {
      return Status::IoError("injected fault: resolver for '" +
                             artifact.display + "' is unavailable");
    }
    HYPPO_ASSIGN_OR_RETURN(ml::DatasetPtr dataset, resolver_(artifact.display));
    const int64_t bytes = dataset->SizeBytes();
    (*outputs)[head] = dataset;
    return storage::StorageTier::Remote().LoadSeconds(bytes);
  }
  HYPPO_ASSIGN_OR_RETURN(storage::ArtifactStore::Loaded loaded,
                         store_->Load(artifact.name));
  // A real-mode load must hold data; an empty payload means the store
  // entry rotted (or a fault decorator corrupted it).
  if (std::holds_alternative<std::monostate>(loaded.payload)) {
    return Status::IoError("corrupted payload for artifact '" +
                           artifact.display + "'");
  }
  (*outputs)[head] = std::move(loaded.payload);
  return loaded.seconds;
}

Result<double> Executor::RunComputeTask(
    const PipelineGraph& graph, EdgeId edge,
    const std::map<NodeId, ArtifactPayload>& inputs,
    std::map<NodeId, ArtifactPayload>* outputs, const Options& options) const {
  const TaskInfo& task = graph.task(edge);
  HYPPO_ASSIGN_OR_RETURN(const ml::PhysicalOperator* op,
                         registry_->Get(task.impl));
  HYPPO_ASSIGN_OR_RETURN(ml::MlTask ml_task, ToMlTask(task.type));
  HYPPO_ASSIGN_OR_RETURN(ml::TaskInputs bound,
                         BindInputs(graph, edge, inputs));
  // Grant the operator's kernels the runtime's parallelism for the span
  // of this call. On a pool worker (parallel executor) the kernels see
  // the nesting and stay serial; results are bitwise identical either
  // way (see ml/kernels/kernels.h), so serial and parallel schedules
  // keep producing byte-identical payloads.
  ml::kernels::KernelOptions kernel_options;
  kernel_options.num_threads = options.kernel_threads > 0
                                   ? options.kernel_threads
                                   : options.parallelism;
  ml::kernels::KernelScope kernel_scope(kernel_options);
  WallClock clock;
  Stopwatch stopwatch(clock);
  HYPPO_ASSIGN_OR_RETURN(ml::TaskOutputs produced,
                         op->Execute(ml_task, bound, task.config));
  const double seconds = stopwatch.Elapsed();
  // Bind outputs to head nodes: flattened in (datasets, states,
  // predictions, values) order, which matches head declaration order for
  // every operator in the catalog (each task type emits one kind).
  std::vector<ArtifactPayload> flat;
  for (auto& dataset : produced.datasets) {
    flat.emplace_back(std::move(dataset));
  }
  for (auto& state : produced.states) {
    flat.emplace_back(std::move(state));
  }
  for (auto& preds : produced.predictions) {
    flat.emplace_back(std::move(preds));
  }
  for (double value : produced.values) {
    flat.emplace_back(value);
  }
  const std::vector<NodeId>& heads = graph.ordered_head(edge);
  if (flat.size() != heads.size()) {
    return Status::Internal(
        task.impl + "." + TaskTypeToString(task.type) + " produced " +
        std::to_string(flat.size()) + " outputs for " +
        std::to_string(heads.size()) + " declared artifacts");
  }
  for (size_t i = 0; i < heads.size(); ++i) {
    (*outputs)[heads[i]] = std::move(flat[i]);
  }
  return seconds;
}

Result<double> Executor::RunTask(
    const Augmentation& aug, EdgeId edge,
    const std::map<NodeId, ArtifactPayload>& inputs,
    std::map<NodeId, ArtifactPayload>* outputs, const Options& options) const {
  const PipelineGraph& graph = aug.graph;
  const TaskInfo& task = graph.task(edge);
  if (task.type == TaskType::kLoad) {
    return RunLoadTask(graph, edge, outputs, options);
  }
  if (options.fault_injector != nullptr &&
      options.fault_injector
              ->Decide(storage::FaultSite::kCompute, graph.TaskSignature(edge))
              .kind != storage::FaultKind::kNone) {
    return Status::Internal("injected fault: operator " + task.impl + "." +
                            TaskTypeToString(task.type) + " failed");
  }
  if (options.simulate) {
    for (NodeId head : graph.ordered_head(edge)) {
      (*outputs)[head] = std::monostate{};
    }
    return aug.edge_seconds[static_cast<size_t>(edge)];
  }
  HYPPO_ASSIGN_OR_RETURN(double seconds,
                         RunComputeTask(graph, edge, inputs, outputs, options));
  if (options.charge_estimates) {
    return aug.edge_seconds[static_cast<size_t>(edge)];
  }
  return seconds;
}

Result<Executor::ExecutionResult> Executor::ExecuteSerial(
    const Augmentation& aug, const Plan& plan,
    const Options& options) const {
  const PipelineGraph& graph = aug.graph;
  HYPPO_ASSIGN_OR_RETURN(
      std::vector<EdgeId> order,
      BTopologicalEdgeOrder(graph.hypergraph(), plan.edges,
                            {graph.source()}));
  ExecutionResult result;
  if (options.seed_payloads != nullptr) {
    result.payloads = *options.seed_payloads;
  }
  for (EdgeId edge : order) {
    // Recovered outputs make the task a no-op.
    if (options.seed_payloads != nullptr &&
        AllHeadsPresent(result.payloads, graph.ordered_head(edge))) {
      ++result.reused_tasks;
      continue;
    }
    // An upstream failure starved this task's inputs: skip, don't abort.
    if (!TailsPresent(graph, edge, result.payloads)) {
      result.skipped_edges.push_back(edge);
      continue;
    }
    Result<double> run =
        RunTask(aug, edge, result.payloads, &result.payloads, options);
    if (!run.ok()) {
      result.failures.push_back(TaskFailure{edge, run.status()});
      continue;
    }
    const double seconds = *run;
    result.total_seconds += seconds;
    result.task_runs.push_back(TaskRun{edge, seconds});
    if (monitor_ != nullptr) {
      const TaskInfo& task = graph.task(edge);
      int64_t rows = 1;
      int64_t cols = 1;
      InputShape(graph, edge, &rows, &cols);
      monitor_->RecordTask(task.impl, task.type, rows, cols, seconds);
    }
  }
  result.critical_path_seconds = result.total_seconds;
  return result;
}

Result<Executor::ExecutionResult> Executor::ExecuteParallel(
    const Augmentation& aug, const Plan& plan,
    const Options& options) const {
  const PipelineGraph& graph = aug.graph;
  const Hypergraph& hg = graph.hypergraph();
  // Validate executability up front (same check the serial path performs).
  HYPPO_RETURN_NOT_OK(
      BTopologicalEdgeOrder(hg, plan.edges, {graph.source()}).status());

  std::vector<bool> in_plan(static_cast<size_t>(hg.num_edge_slots()), false);
  std::vector<int32_t> missing_tail(static_cast<size_t>(hg.num_edge_slots()),
                                    0);
  for (EdgeId e : plan.edges) {
    in_plan[static_cast<size_t>(e)] = true;
    missing_tail[static_cast<size_t>(e)] =
        static_cast<int32_t>(hg.edge(e).tail.size());
  }
  std::vector<bool> available(static_cast<size_t>(hg.num_nodes()), false);
  std::vector<bool> fired(static_cast<size_t>(hg.num_edge_slots()), false);
  std::deque<EdgeId> ready;
  auto mark_available = [&](NodeId node) {
    if (available[static_cast<size_t>(node)]) {
      return;
    }
    available[static_cast<size_t>(node)] = true;
    for (EdgeId e : hg.fstar(node)) {
      if (in_plan[static_cast<size_t>(e)] &&
          --missing_tail[static_cast<size_t>(e)] == 0) {
        ready.push_back(e);
      }
    }
  };

  ExecutionResult result;
  if (options.seed_payloads != nullptr) {
    result.payloads = *options.seed_payloads;
  }
  mark_available(graph.source());
  // Recovered payloads satisfy consumers even when their producing task
  // is starved this attempt.
  for (const auto& [node, payload] : result.payloads) {
    mark_available(node);
  }
  for (EdgeId e : plan.edges) {
    if (hg.edge(e).tail.empty() && !fired[static_cast<size_t>(e)]) {
      ready.push_back(e);
    }
  }

  ThreadPool pool(options.parallelism);
  struct WaveOutcome {
    EdgeId edge = kInvalidEdge;
    Result<double> seconds = Status::Internal("not run");
    std::map<NodeId, ArtifactPayload> outputs;
  };
  while (!ready.empty()) {
    // One wave: everything currently ready runs concurrently against the
    // frozen payload map; outputs merge afterwards.
    std::vector<EdgeId> candidates(ready.begin(), ready.end());
    ready.clear();
    std::vector<EdgeId> wave;
    wave.reserve(candidates.size());
    for (EdgeId e : candidates) {
      if (fired[static_cast<size_t>(e)]) {
        continue;
      }
      fired[static_cast<size_t>(e)] = true;
      if (options.seed_payloads != nullptr &&
          AllHeadsPresent(result.payloads, graph.ordered_head(e))) {
        ++result.reused_tasks;
        for (NodeId head : graph.ordered_head(e)) {
          mark_available(head);
        }
        continue;
      }
      wave.push_back(e);
    }
    if (wave.empty()) {
      continue;
    }
    std::vector<WaveOutcome> outcomes(wave.size());
    for (size_t i = 0; i < wave.size(); ++i) {
      outcomes[i].edge = wave[i];
      pool.Submit([this, &aug, &options, &result, &outcomes, i]() {
        WaveOutcome& outcome = outcomes[i];
        outcome.seconds = RunTask(aug, outcome.edge, result.payloads,
                                  &outcome.outputs, options);
      });
    }
    pool.Wait();
    double wave_max = 0.0;
    for (WaveOutcome& outcome : outcomes) {
      if (!outcome.seconds.ok()) {
        // The task died; its heads stay unavailable so dependants starve
        // into skipped_edges instead of running on garbage.
        result.failures.push_back(
            TaskFailure{outcome.edge, outcome.seconds.status()});
        continue;
      }
      const double seconds = *outcome.seconds;
      result.total_seconds += seconds;
      wave_max = std::max(wave_max, seconds);
      result.task_runs.push_back(TaskRun{outcome.edge, seconds});
      if (monitor_ != nullptr) {
        int64_t rows = 1;
        int64_t cols = 1;
        InputShape(graph, outcome.edge, &rows, &cols);
        monitor_->RecordTask(graph.task(outcome.edge).impl,
                             graph.task(outcome.edge).type, rows, cols,
                             seconds);
      }
      for (auto& [node, payload] : outcome.outputs) {
        result.payloads[node] = std::move(payload);
      }
      for (NodeId head : graph.ordered_head(outcome.edge)) {
        mark_available(head);
      }
    }
    result.critical_path_seconds += wave_max;
  }
  // Plan edges that never became ready were starved by a failure (or
  // fully covered by recovered payloads).
  for (EdgeId e : plan.edges) {
    if (fired[static_cast<size_t>(e)]) {
      continue;
    }
    if (options.seed_payloads != nullptr &&
        AllHeadsPresent(result.payloads, graph.ordered_head(e))) {
      ++result.reused_tasks;
    } else {
      result.skipped_edges.push_back(e);
    }
  }
  return result;
}

Result<Executor::ExecutionResult> Executor::Execute(
    const Augmentation& aug, const Plan& plan,
    const Options& options) const {
  if (options.verify_plans) {
    HYPPO_RETURN_NOT_OK(VerifyPlanStructure(aug, aug.targets, plan));
  }
  if (!options.simulate && options.parallelism > 1) {
    return ExecuteParallel(aug, plan, options);
  }
  return ExecuteSerial(aug, plan, options);
}

}  // namespace hyppo::core
