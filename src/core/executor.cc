#include "core/executor.h"

#include <algorithm>
#include <deque>

#include "common/thread_pool.h"
#include "hypergraph/algorithms.h"

namespace hyppo::core {

namespace {

// Splits input payloads by kind in declaration order.
Result<ml::TaskInputs> BindInputs(
    const PipelineGraph& graph, EdgeId edge,
    const std::map<NodeId, ArtifactPayload>& payloads) {
  ml::TaskInputs inputs;
  for (NodeId in : graph.ordered_tail(edge)) {
    if (in == graph.source()) {
      continue;
    }
    auto it = payloads.find(in);
    if (it == payloads.end()) {
      return Status::Internal("input artifact '" +
                              graph.artifact(in).display +
                              "' has no payload; plan order is broken");
    }
    const ArtifactPayload& payload = it->second;
    if (const auto* dataset = std::get_if<ml::DatasetPtr>(&payload)) {
      inputs.datasets.push_back(*dataset);
    } else if (const auto* state = std::get_if<ml::OpStatePtr>(&payload)) {
      inputs.states.push_back(*state);
    } else if (const auto* preds =
                   std::get_if<ml::PredictionsPtr>(&payload)) {
      inputs.predictions.push_back(*preds);
    } else {
      return Status::Internal("unsupported input payload kind for task " +
                              graph.task(edge).logical_op);
    }
  }
  return inputs;
}

// Primary data shape of a task's inputs, for monitoring.
void InputShape(const PipelineGraph& graph, EdgeId edge, int64_t* rows,
                int64_t* cols) {
  *rows = 1;
  *cols = 1;
  for (NodeId in : graph.ordered_tail(edge)) {
    const ArtifactInfo& a = graph.artifact(in);
    if (a.kind != ArtifactKind::kOpState && a.kind != ArtifactKind::kSource) {
      *rows = a.rows;
      *cols = a.cols;
      return;
    }
  }
}

}  // namespace

Result<double> Executor::RunLoadTask(
    const PipelineGraph& graph, EdgeId edge,
    const std::map<NodeId, ArtifactPayload>& /*inputs*/,
    std::map<NodeId, ArtifactPayload>* outputs, bool simulate) const {
  const NodeId head = graph.ordered_head(edge)[0];
  const ArtifactInfo& artifact = graph.artifact(head);
  if (simulate) {
    (*outputs)[head] = std::monostate{};
    const bool raw = artifact.kind == ArtifactKind::kRaw;
    const storage::StorageTier tier = raw ? storage::StorageTier::Remote()
                                          : store_->tier();
    return tier.LoadSeconds(artifact.size_bytes);
  }
  if (artifact.kind == ArtifactKind::kRaw) {
    if (!resolver_) {
      return Status::FailedPrecondition(
          "no dataset resolver registered for raw load of '" +
          artifact.display + "'");
    }
    HYPPO_ASSIGN_OR_RETURN(ml::DatasetPtr dataset, resolver_(artifact.display));
    const int64_t bytes = dataset->SizeBytes();
    (*outputs)[head] = dataset;
    return storage::StorageTier::Remote().LoadSeconds(bytes);
  }
  HYPPO_ASSIGN_OR_RETURN(ArtifactPayload payload,
                         store_->Get(artifact.name));
  const int64_t bytes = storage::PayloadSizeBytes(payload);
  (*outputs)[head] = std::move(payload);
  return store_->LoadSeconds(bytes);
}

Result<double> Executor::RunComputeTask(
    const PipelineGraph& graph, EdgeId edge,
    const std::map<NodeId, ArtifactPayload>& inputs,
    std::map<NodeId, ArtifactPayload>* outputs) const {
  const TaskInfo& task = graph.task(edge);
  HYPPO_ASSIGN_OR_RETURN(const ml::PhysicalOperator* op,
                         registry_->Get(task.impl));
  HYPPO_ASSIGN_OR_RETURN(ml::MlTask ml_task, ToMlTask(task.type));
  HYPPO_ASSIGN_OR_RETURN(ml::TaskInputs bound,
                         BindInputs(graph, edge, inputs));
  WallClock clock;
  Stopwatch stopwatch(clock);
  HYPPO_ASSIGN_OR_RETURN(ml::TaskOutputs produced,
                         op->Execute(ml_task, bound, task.config));
  const double seconds = stopwatch.Elapsed();
  // Bind outputs to head nodes: flattened in (datasets, states,
  // predictions, values) order, which matches head declaration order for
  // every operator in the catalog (each task type emits one kind).
  std::vector<ArtifactPayload> flat;
  for (auto& dataset : produced.datasets) {
    flat.emplace_back(std::move(dataset));
  }
  for (auto& state : produced.states) {
    flat.emplace_back(std::move(state));
  }
  for (auto& preds : produced.predictions) {
    flat.emplace_back(std::move(preds));
  }
  for (double value : produced.values) {
    flat.emplace_back(value);
  }
  const std::vector<NodeId>& heads = graph.ordered_head(edge);
  if (flat.size() != heads.size()) {
    return Status::Internal(
        task.impl + "." + TaskTypeToString(task.type) + " produced " +
        std::to_string(flat.size()) + " outputs for " +
        std::to_string(heads.size()) + " declared artifacts");
  }
  for (size_t i = 0; i < heads.size(); ++i) {
    (*outputs)[heads[i]] = std::move(flat[i]);
  }
  return seconds;
}

Result<Executor::ExecutionResult> Executor::ExecuteSerial(
    const Augmentation& aug, const Plan& plan,
    const Options& options) const {
  const PipelineGraph& graph = aug.graph;
  HYPPO_ASSIGN_OR_RETURN(
      std::vector<EdgeId> order,
      BTopologicalEdgeOrder(graph.hypergraph(), plan.edges,
                            {graph.source()}));
  ExecutionResult result;
  for (EdgeId edge : order) {
    const TaskInfo& task = graph.task(edge);
    double seconds = 0.0;
    if (options.simulate) {
      if (task.type == TaskType::kLoad) {
        HYPPO_ASSIGN_OR_RETURN(
            seconds, RunLoadTask(graph, edge, result.payloads,
                                 &result.payloads, true));
      } else {
        seconds = aug.edge_seconds[static_cast<size_t>(edge)];
        for (NodeId head : graph.ordered_head(edge)) {
          result.payloads[head] = std::monostate{};
        }
      }
    } else if (task.type == TaskType::kLoad) {
      HYPPO_ASSIGN_OR_RETURN(
          seconds,
          RunLoadTask(graph, edge, result.payloads, &result.payloads, false));
    } else {
      HYPPO_ASSIGN_OR_RETURN(
          seconds,
          RunComputeTask(graph, edge, result.payloads, &result.payloads));
    }
    result.total_seconds += seconds;
    result.task_runs.push_back(TaskRun{edge, seconds});
    if (monitor_ != nullptr) {
      int64_t rows = 1;
      int64_t cols = 1;
      InputShape(graph, edge, &rows, &cols);
      monitor_->RecordTask(task.impl, task.type, rows, cols, seconds);
    }
  }
  result.critical_path_seconds = result.total_seconds;
  return result;
}

Result<Executor::ExecutionResult> Executor::ExecuteParallel(
    const Augmentation& aug, const Plan& plan,
    const Options& options) const {
  const PipelineGraph& graph = aug.graph;
  const Hypergraph& hg = graph.hypergraph();
  // Validate executability up front (same check the serial path performs).
  HYPPO_RETURN_NOT_OK(
      BTopologicalEdgeOrder(hg, plan.edges, {graph.source()}).status());

  std::vector<bool> in_plan(static_cast<size_t>(hg.num_edge_slots()), false);
  std::vector<int32_t> missing_tail(static_cast<size_t>(hg.num_edge_slots()),
                                    0);
  for (EdgeId e : plan.edges) {
    in_plan[static_cast<size_t>(e)] = true;
    missing_tail[static_cast<size_t>(e)] =
        static_cast<int32_t>(hg.edge(e).tail.size());
  }
  std::vector<bool> available(static_cast<size_t>(hg.num_nodes()), false);
  std::vector<bool> fired(static_cast<size_t>(hg.num_edge_slots()), false);
  std::deque<EdgeId> ready;
  auto mark_available = [&](NodeId node) {
    if (available[static_cast<size_t>(node)]) {
      return;
    }
    available[static_cast<size_t>(node)] = true;
    for (EdgeId e : hg.fstar(node)) {
      if (in_plan[static_cast<size_t>(e)] &&
          --missing_tail[static_cast<size_t>(e)] == 0) {
        ready.push_back(e);
      }
    }
  };
  available[static_cast<size_t>(graph.source())] = true;
  for (EdgeId e : hg.fstar(graph.source())) {
    if (in_plan[static_cast<size_t>(e)] &&
        --missing_tail[static_cast<size_t>(e)] == 0) {
      ready.push_back(e);
    }
  }
  for (EdgeId e : plan.edges) {
    if (hg.edge(e).tail.empty() && !fired[static_cast<size_t>(e)]) {
      ready.push_back(e);
    }
  }

  ExecutionResult result;
  ThreadPool pool(options.parallelism);
  struct WaveOutcome {
    EdgeId edge = kInvalidEdge;
    Result<double> seconds = Status::Internal("not run");
    std::map<NodeId, ArtifactPayload> outputs;
  };
  while (!ready.empty()) {
    // One wave: everything currently ready runs concurrently against the
    // frozen payload map; outputs merge afterwards.
    std::vector<EdgeId> wave(ready.begin(), ready.end());
    ready.clear();
    std::vector<WaveOutcome> outcomes(wave.size());
    for (size_t i = 0; i < wave.size(); ++i) {
      outcomes[i].edge = wave[i];
      fired[static_cast<size_t>(wave[i])] = true;
      pool.Submit([this, &graph, &result, &outcomes, i]() {
        WaveOutcome& outcome = outcomes[i];
        const TaskInfo& task = graph.task(outcome.edge);
        if (task.type == TaskType::kLoad) {
          outcome.seconds = RunLoadTask(graph, outcome.edge, result.payloads,
                                        &outcome.outputs, false);
        } else {
          outcome.seconds = RunComputeTask(graph, outcome.edge,
                                           result.payloads, &outcome.outputs);
        }
      });
    }
    pool.Wait();
    double wave_max = 0.0;
    for (WaveOutcome& outcome : outcomes) {
      HYPPO_ASSIGN_OR_RETURN(double seconds, std::move(outcome.seconds));
      result.total_seconds += seconds;
      wave_max = std::max(wave_max, seconds);
      result.task_runs.push_back(TaskRun{outcome.edge, seconds});
      if (monitor_ != nullptr) {
        int64_t rows = 1;
        int64_t cols = 1;
        InputShape(graph, outcome.edge, &rows, &cols);
        monitor_->RecordTask(graph.task(outcome.edge).impl,
                             graph.task(outcome.edge).type, rows, cols,
                             seconds);
      }
      for (auto& [node, payload] : outcome.outputs) {
        result.payloads[node] = std::move(payload);
      }
    }
    result.critical_path_seconds += wave_max;
    for (const WaveOutcome& outcome : outcomes) {
      for (NodeId head : graph.ordered_head(outcome.edge)) {
        mark_available(head);
      }
    }
  }
  return result;
}

Result<Executor::ExecutionResult> Executor::Execute(
    const Augmentation& aug, const Plan& plan,
    const Options& options) const {
  if (options.verify_plans) {
    HYPPO_RETURN_NOT_OK(VerifyPlanStructure(aug, aug.targets, plan));
  }
  if (!options.simulate && options.parallelism > 1) {
    return ExecuteParallel(aug, plan, options);
  }
  return ExecuteSerial(aug, plan, options);
}

}  // namespace hyppo::core
