#include "core/pipeline_builder.h"

#include <algorithm>

namespace hyppo::core {

namespace {

// Rough static size estimate of an op-state, refined by observation later.
int64_t EstimateStateBytes(const std::string& logical_op, int64_t cols,
                           const ml::Config& config) {
  if (logical_op == "RandomForestClassifier" ||
      logical_op == "RandomForestRegressor" ||
      logical_op == "GradientBoostingRegressor") {
    const int64_t trees = config.GetInt("n_estimators", 20);
    const int64_t depth = config.GetInt("max_depth", 8);
    return trees * (int64_t{1} << std::min<int64_t>(depth, 12)) * 28;
  }
  if (logical_op == "DecisionTreeClassifier" ||
      logical_op == "DecisionTreeRegressor") {
    const int64_t depth = config.GetInt("max_depth", 6);
    return (int64_t{1} << std::min<int64_t>(depth, 12)) * 28;
  }
  if (logical_op == "KMeans") {
    return config.GetInt("n_clusters", 8) * cols * 8 + 64;
  }
  if (logical_op == "PCA") {
    return config.GetInt("n_components", 2) * cols * 8 + cols * 8 + 64;
  }
  // Scalers, imputers, linear models: a few vectors of size cols.
  return cols * 24 + 128;
}

int64_t TransformedCols(const std::string& logical_op, int64_t cols,
                        const ml::Config& config) {
  if (logical_op == "PolynomialFeatures") {
    return cols + cols * (cols + 1) / 2;
  }
  if (logical_op == "PCA") {
    return std::min<int64_t>(config.GetInt("n_components", 2), cols);
  }
  if (logical_op == "KMeans") {
    return config.GetInt("n_clusters", 8);
  }
  if (logical_op == "TaxiFeatures") {
    return cols + 3;
  }
  return cols;  // scalers, imputers, selectors (approximately)
}

}  // namespace

PipelineBuilder::PipelineBuilder(std::string pipeline_id)
    : id_(std::move(pipeline_id)) {}

Result<NodeId> PipelineBuilder::LoadDataset(const std::string& dataset_id,
                                            int64_t rows, int64_t cols,
                                            int64_t size_bytes) {
  ArtifactInfo info;
  info.name = SourceArtifactName(dataset_id);
  info.kind = ArtifactKind::kRaw;
  info.display = dataset_id;
  info.rows = rows;
  info.cols = cols;
  info.size_bytes = size_bytes > 0 ? size_bytes : (rows * (cols + 1) * 8);
  if (graph_.HasArtifact(info.name)) {
    return graph_.FindArtifact(info.name);
  }
  HYPPO_ASSIGN_OR_RETURN(NodeId node, graph_.AddArtifact(std::move(info)));
  HYPPO_RETURN_NOT_OK(graph_.AddLoadTask(node).status());
  return node;
}

std::vector<ArtifactInfo> PipelineBuilder::InferOutputs(
    const TaskInfo& task, const std::vector<NodeId>& inputs,
    int num_outputs) const {
  std::vector<std::string> input_names;
  input_names.reserve(inputs.size());
  for (NodeId in : inputs) {
    input_names.push_back(graph_.artifact(in).name);
  }
  const std::vector<std::string> names =
      TaskOutputNames(task, input_names, num_outputs);
  // The primary data input (first non-op-state input) drives shapes.
  const ArtifactInfo* data_in = nullptr;
  for (NodeId in : inputs) {
    const ArtifactInfo& a = graph_.artifact(in);
    if (a.kind != ArtifactKind::kOpState) {
      data_in = &a;
      break;
    }
  }
  std::vector<ArtifactInfo> outputs(static_cast<size_t>(num_outputs));
  for (int i = 0; i < num_outputs; ++i) {
    ArtifactInfo& out = outputs[static_cast<size_t>(i)];
    out.name = names[static_cast<size_t>(i)];
    switch (task.type) {
      case TaskType::kSplit: {
        const double test_size = task.config.GetDouble("test_size", 0.25);
        const int64_t rows = data_in != nullptr ? data_in->rows : 0;
        const int64_t cols = data_in != nullptr ? data_in->cols : 0;
        const int64_t test_rows =
            std::max<int64_t>(1, static_cast<int64_t>(
                                     static_cast<double>(rows) * test_size));
        out.kind = (i == 0) ? ArtifactKind::kTrain : ArtifactKind::kTest;
        out.rows = (i == 0) ? rows - test_rows : test_rows;
        out.cols = cols;
        out.size_bytes = out.rows * (cols + 1) * 8;
        out.display = (i == 0) ? "train" : "test";
        break;
      }
      case TaskType::kFit: {
        out.kind = ArtifactKind::kOpState;
        const int64_t cols = data_in != nullptr ? data_in->cols : 8;
        out.rows = 1;
        out.cols = cols;
        out.size_bytes = EstimateStateBytes(task.logical_op, cols, task.config);
        out.display = task.logical_op + "_state";
        break;
      }
      case TaskType::kTransform: {
        const int64_t rows = data_in != nullptr ? data_in->rows : 0;
        const int64_t cols_in = data_in != nullptr ? data_in->cols : 0;
        const int64_t cols =
            TransformedCols(task.logical_op, cols_in, task.config);
        out.kind = data_in != nullptr &&
                           (data_in->kind == ArtifactKind::kTrain ||
                            data_in->kind == ArtifactKind::kTest)
                       ? data_in->kind
                       : ArtifactKind::kData;
        out.rows = rows;
        out.cols = cols;
        out.size_bytes = rows * (cols + 1) * 8;
        out.display = task.logical_op + "(" +
                      (data_in != nullptr ? data_in->display : "?") + ")";
        break;
      }
      case TaskType::kPredict: {
        const int64_t rows = data_in != nullptr ? data_in->rows : 0;
        out.kind = ArtifactKind::kPredictions;
        out.rows = rows;
        out.cols = 1;
        out.size_bytes = rows * 8;
        out.display = "preds";
        break;
      }
      case TaskType::kEvaluate: {
        out.kind = ArtifactKind::kValue;
        out.rows = 1;
        out.cols = 1;
        out.size_bytes = 8;
        out.display = task.config.GetString("metric", "value");
        break;
      }
      case TaskType::kLoad:
        out.kind = ArtifactKind::kData;
        break;
    }
  }
  return outputs;
}

Result<std::vector<NodeId>> PipelineBuilder::ApplyTask(
    const TaskInfo& task, const std::vector<NodeId>& inputs,
    int num_outputs) {
  if (num_outputs <= 0) {
    return Status::InvalidArgument("task must have at least one output");
  }
  for (NodeId in : inputs) {
    if (!graph_.hypergraph().IsValidNode(in) || in == graph_.source()) {
      return Status::InvalidArgument("invalid task input node");
    }
  }
  std::vector<ArtifactInfo> outputs = InferOutputs(task, inputs, num_outputs);
  std::vector<NodeId> heads;
  heads.reserve(outputs.size());
  for (ArtifactInfo& out : outputs) {
    heads.push_back(graph_.GetOrAddArtifact(out));
  }
  TaskInfo stamped = task;
  if (stamped.source_line == 0) {
    stamped.source_line = next_source_line_;
  }
  HYPPO_RETURN_NOT_OK(graph_.AddTask(stamped, inputs, heads).status());
  return heads;
}

Result<std::pair<NodeId, NodeId>> PipelineBuilder::Split(
    NodeId data, const ml::Config& config, const std::string& impl) {
  TaskInfo task;
  task.logical_op = "TrainTestSplit";
  task.type = TaskType::kSplit;
  task.config = config;
  task.impl = impl;
  HYPPO_ASSIGN_OR_RETURN(std::vector<NodeId> outs,
                         ApplyTask(task, {data}, 2));
  return std::make_pair(outs[0], outs[1]);
}

Result<NodeId> PipelineBuilder::Fit(const std::string& logical_op,
                                    const std::string& impl, NodeId data,
                                    const ml::Config& config) {
  TaskInfo task;
  task.logical_op = logical_op;
  task.type = TaskType::kFit;
  task.config = config;
  task.impl = impl;
  HYPPO_ASSIGN_OR_RETURN(std::vector<NodeId> outs,
                         ApplyTask(task, {data}, 1));
  return outs[0];
}

Result<NodeId> PipelineBuilder::FitEnsemble(
    const std::string& logical_op, const std::string& impl,
    const std::vector<NodeId>& base_states, NodeId train_or_invalid,
    const ml::Config& config) {
  TaskInfo task;
  task.logical_op = logical_op;
  task.type = TaskType::kFit;
  task.config = config;
  task.impl = impl;
  std::vector<NodeId> inputs = base_states;
  if (train_or_invalid != kInvalidNode) {
    inputs.push_back(train_or_invalid);
  }
  HYPPO_ASSIGN_OR_RETURN(std::vector<NodeId> outs,
                         ApplyTask(task, inputs, 1));
  return outs[0];
}

Result<TaskInfo> PipelineBuilder::ProducerOf(NodeId state) const {
  const auto& bstar = graph_.hypergraph().bstar(state);
  for (EdgeId e : bstar) {
    const TaskInfo& task = graph_.task(e);
    if (task.type != TaskType::kLoad) {
      return task;
    }
  }
  return Status::NotFound("op-state node has no producing task");
}

Result<NodeId> PipelineBuilder::Transform(NodeId state, NodeId data) {
  HYPPO_ASSIGN_OR_RETURN(TaskInfo producer, ProducerOf(state));
  TaskInfo task;
  task.logical_op = producer.logical_op;
  task.type = TaskType::kTransform;
  task.config = producer.config;
  task.impl = producer.impl;
  HYPPO_ASSIGN_OR_RETURN(std::vector<NodeId> outs,
                         ApplyTask(task, {state, data}, 1));
  return outs[0];
}

Result<NodeId> PipelineBuilder::Predict(NodeId state, NodeId data) {
  HYPPO_ASSIGN_OR_RETURN(TaskInfo producer, ProducerOf(state));
  TaskInfo task;
  task.logical_op = producer.logical_op;
  task.type = TaskType::kPredict;
  task.config = producer.config;
  task.impl = producer.impl;
  HYPPO_ASSIGN_OR_RETURN(std::vector<NodeId> outs,
                         ApplyTask(task, {state, data}, 1));
  return outs[0];
}

Result<NodeId> PipelineBuilder::Evaluate(NodeId predictions, NodeId data,
                                         const std::string& metric) {
  TaskInfo task;
  task.logical_op = "Evaluator";
  task.type = TaskType::kEvaluate;
  task.config.Set("metric", metric);
  task.impl = "skl.Evaluator";
  HYPPO_ASSIGN_OR_RETURN(std::vector<NodeId> outs,
                         ApplyTask(task, {predictions, data}, 1));
  return outs[0];
}

Result<Pipeline> PipelineBuilder::Build() && {
  Pipeline pipeline;
  pipeline.id = std::move(id_);
  pipeline.targets = graph_.SinkArtifacts();
  if (pipeline.targets.empty()) {
    return Status::FailedPrecondition("pipeline has no target artifacts");
  }
  pipeline.graph = std::move(graph_);
  return pipeline;
}

}  // namespace hyppo::core
