#include "core/monitor.h"

namespace hyppo::core {

void Monitor::RecordTask(const std::string& impl, TaskType type, int64_t rows,
                         int64_t cols, double seconds) {
  {
    std::lock_guard<std::mutex> lock(aggregates_mutex_);
    Aggregate& agg = by_task_type_[type];
    agg.total_seconds += seconds;
    ++agg.count;
  }
  Add(&num_task_records_, 1);
  if (estimator_ != nullptr && type != TaskType::kLoad && !impl.empty()) {
    estimator_->Observe(impl, type, rows, cols, seconds);
  }
}

void Monitor::RecordArtifact(ArtifactKind kind, int64_t size_bytes,
                             double compute_seconds) {
  std::lock_guard<std::mutex> lock(aggregates_mutex_);
  Aggregate& agg = by_artifact_kind_[kind];
  agg.total_seconds += compute_seconds;
  agg.total_bytes += size_bytes;
  ++agg.count;
}

}  // namespace hyppo::core
