#ifndef HYPPO_CORE_HISTORY_IO_H_
#define HYPPO_CORE_HISTORY_IO_H_

#include <string>

#include "common/result.h"
#include "core/history.h"
#include "storage/artifact_store.h"

namespace hyppo::core {

/// \brief Catalog persistence: saving and restoring the history H together
/// with the materialized-artifact store.
///
/// This is what turns HYPPO's history into the paper's *across-experiments*
/// cache (§I): one data scientist's session can be saved and another
/// session — or another user working on the same data — loads it and
/// immediately reuses recorded derivations and materialized artifacts.
///
/// Layout: `<directory>/history.hyppo` holds the labelled hypergraph and
/// all statistics (binary, see storage/serialization.h for the encoding
/// primitives); each materialized payload lives in
/// `<directory>/artifacts/<canonical-name>.bin`.

/// Reads a whole file into a byte string.
Result<std::string> ReadFileToString(const std::string& path);

/// Crash-safe file write: bytes land in `<path>.tmp` and are renamed into
/// place, so `path` only ever holds a complete old or new version.
Status AtomicWriteFile(const std::string& path, const std::string& bytes);

/// Serializes the history graph + statistics to a byte buffer.
Result<std::string> SerializeHistory(const History& history);

/// Reconstructs a history from SerializeHistory output. Load edges for
/// materialized artifacts and source-data registrations are rebuilt.
Result<History> DeserializeHistory(const std::string& bytes);

/// Saves history + store under `directory` (created if needed).
Status SaveCatalog(const History& history,
                   const storage::ArtifactStore& store,
                   const std::string& directory);

/// Loads history + store from `directory`. Artifacts recorded as
/// materialized whose payload file is missing are evicted on load (the
/// history stays consistent with the store).
Status LoadCatalog(const std::string& directory, History* history,
                   storage::ArtifactStore* store);

}  // namespace hyppo::core

#endif  // HYPPO_CORE_HISTORY_IO_H_
