#ifndef HYPPO_CORE_PARSER_H_
#define HYPPO_CORE_PARSER_H_

#include <string>

#include "common/result.h"
#include "core/dictionary.h"
#include "core/graph.h"

namespace hyppo::core {

/// \brief Parser for the HYPPO pipeline DSL (paper §IV-C).
///
/// The DSL is the Python-like notation of the paper's Fig. 1(a): one
/// assignment per line, `#` comments, and four expression forms:
///
///   data        = load("higgs", rows=800000, cols=30)
///   train, test = sk.TrainTestSplit.split(data, test_size=0.25)
///   scaler      = sk.StandardScaler.fit(train)
///   train_s     = scaler.transform(train)
///   model       = sk.RandomForestClassifier.fit(train_s, n_estimators=20)
///   preds       = model.predict(test_s)
///   score       = evaluate(preds, test_s, metric="accuracy")
///
/// Framework aliases: sk/skl -> "skl", tf/tfl -> "tfl", lgb -> "lgb",
/// lib/libsvm -> "lib". The parser consults the dictionary to map each
/// call to a logical operator and task type; calls to unknown operators
/// are accepted as single-implementation operators (§IV-C). Artifact
/// names are assigned canonically (core/naming.h), which is what makes
/// equivalences discoverable later.
///
/// Returns the parsed Pipeline; targets are the sink artifacts.
Result<Pipeline> ParsePipeline(const std::string& source,
                               const std::string& pipeline_id,
                               const Dictionary& dictionary);

}  // namespace hyppo::core

#endif  // HYPPO_CORE_PARSER_H_
