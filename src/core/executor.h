#ifndef HYPPO_CORE_EXECUTOR_H_
#define HYPPO_CORE_EXECUTOR_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "core/monitor.h"
#include "core/optimizer.h"
#include "ml/registry.h"
#include "storage/artifact_store.h"
#include "storage/fault_injection.h"

namespace hyppo::core {

/// Resolves a raw dataset id (the artifact's display name) to its data —
/// the stand-in for the paper's remote storage locations. Called once per
/// raw-load task in real execution mode.
using DatasetResolver =
    std::function<Result<ml::DatasetPtr>(const std::string& dataset_id)>;

/// \brief Executes plans: topologically orders the plan's tasks, binds
/// artifact payloads to task inputs, runs physical operators (or simulates
/// them), and reports per-task timings for the monitor and the history.
///
/// Failure model: a task that errors (a lost or corrupted store entry, a
/// resolver outage, an operator fault) does NOT abort the run. The
/// executor records the failure, skips the tasks that transitively
/// depended on the dead artifact, and finishes everything else, so the
/// caller sees exactly which load/compute edges failed and which payloads
/// survived. The runtime's recovery loop (core/runtime.h) uses that
/// report to degrade the augmentation and re-plan. Execute() itself only
/// returns a non-OK Status for structural errors (an inexecutable plan).
class Executor {
 public:
  struct Options {
    /// Simulation mode: no operator runs; each task charges its estimated
    /// duration (augmentation edge_seconds) and produces placeholder
    /// payloads. Used by the planner-scalability experiments and the
    /// paper-scale scenario sweeps.
    bool simulate = false;
    /// Worker threads for real execution. With > 1, independent plan
    /// branches (hyperedges whose inputs are all available) run
    /// concurrently in waves. `total_seconds` semantics are unchanged
    /// (sum of per-task times — the billable compute the cost model
    /// prices); `critical_path_seconds` reports the parallel wall time.
    /// Ignored in simulation mode.
    int parallelism = 1;
    /// Thread bound handed to the ML kernel layer (ml/kernels) for the
    /// duration of each operator call: the executor installs a
    /// KernelScope{num_threads} around op fit/transform/predict so
    /// GEMM-shaped work inside operators can use intra-task parallelism.
    /// 0 (default) inherits `parallelism`. When tasks already run on
    /// pool workers (parallelism > 1) the kernels detect the nesting and
    /// stay serial, so the two levels compose without oversubscription.
    int kernel_threads = 0;
    /// Debug-mode assertion: structurally verify the plan against its
    /// augmentation (src/analysis) before executing anything. Fails with
    /// Internal on a broken plan instead of executing it.
    bool verify_plans = false;
    /// Charge compute tasks their augmentation estimate (edge_seconds)
    /// instead of measured wall time, while still executing operators for
    /// real. Makes `total_seconds` bit-identical across runs and across
    /// serial/parallel schedules — the differential and chaos tests rely
    /// on it.
    bool charge_estimates = false;
    /// Fault-injection hooks for operator and resolver faults (and for
    /// simulated loads, which never reach the store). Store-load faults
    /// in real execution are injected by wrapping the store in a
    /// storage::FaultInjectingStore sharing this injector. Null disables
    /// the hooks.
    storage::FaultInjector* fault_injector = nullptr;
    /// Payloads that survived a previous attempt, keyed by node id of the
    /// SAME augmentation. Tasks whose outputs are all present are skipped
    /// (counted in `reused_tasks`), so a recovery re-execution only pays
    /// for what was actually lost.
    const std::map<NodeId, ArtifactPayload>* seed_payloads = nullptr;
  };

  struct TaskRun {
    EdgeId edge = kInvalidEdge;
    double seconds = 0.0;
  };

  /// One task that errored, with the edge it ran for.
  struct TaskFailure {
    EdgeId edge = kInvalidEdge;
    Status status;
  };

  struct ExecutionResult {
    /// Total charged time: wall-clock for computes, storage-model time for
    /// loads (estimates everywhere in simulation mode).
    double total_seconds = 0.0;
    /// Wall time along the parallel schedule (== total_seconds for serial
    /// execution).
    double critical_path_seconds = 0.0;
    std::vector<TaskRun> task_runs;
    /// Payload per produced/loaded artifact node (includes seeded
    /// payloads).
    std::map<NodeId, ArtifactPayload> payloads;
    /// Tasks that errored this run.
    std::vector<TaskFailure> failures;
    /// Tasks never attempted because an upstream failure starved their
    /// inputs.
    std::vector<EdgeId> skipped_edges;
    /// Tasks skipped because every output payload was seeded.
    int64_t reused_tasks = 0;

    bool complete() const { return failures.empty() && skipped_edges.empty(); }
  };

  Executor(storage::ArtifactStore* store, DatasetResolver resolver,
           Monitor* monitor,
           const ml::OperatorRegistry* registry =
               &ml::OperatorRegistry::Global())
      : store_(store),
        resolver_(std::move(resolver)),
        monitor_(monitor),
        registry_(registry) {}

  /// Executes `plan` over the augmentation it was derived from.
  Result<ExecutionResult> Execute(const Augmentation& aug, const Plan& plan,
                                  const Options& options) const;

  /// Re-points the executor at another store (used by the runtime when
  /// fault injection wraps the store in a decorator).
  void set_store(storage::ArtifactStore* store) { store_ = store; }

 private:
  /// Runs one task reading inputs from `inputs` and writing produced
  /// payloads into `outputs` (which may alias `inputs` in serial mode;
  /// parallel waves use private output fragments merged afterwards).
  /// Dispatches on task type and simulation mode and applies the fault
  /// hooks.
  Result<double> RunTask(const Augmentation& aug, EdgeId edge,
                         const std::map<NodeId, ArtifactPayload>& inputs,
                         std::map<NodeId, ArtifactPayload>* outputs,
                         const Options& options) const;

  Result<double> RunLoadTask(const PipelineGraph& graph, EdgeId edge,
                             std::map<NodeId, ArtifactPayload>* outputs,
                             const Options& options) const;
  Result<double> RunComputeTask(const PipelineGraph& graph, EdgeId edge,
                                const std::map<NodeId, ArtifactPayload>& inputs,
                                std::map<NodeId, ArtifactPayload>* outputs,
                                const Options& options) const;

  Result<ExecutionResult> ExecuteSerial(const Augmentation& aug,
                                        const Plan& plan,
                                        const Options& options) const;
  Result<ExecutionResult> ExecuteParallel(const Augmentation& aug,
                                          const Plan& plan,
                                          const Options& options) const;

  storage::ArtifactStore* store_;
  DatasetResolver resolver_;
  Monitor* monitor_;
  const ml::OperatorRegistry* registry_;
};

}  // namespace hyppo::core

#endif  // HYPPO_CORE_EXECUTOR_H_
