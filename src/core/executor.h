#ifndef HYPPO_CORE_EXECUTOR_H_
#define HYPPO_CORE_EXECUTOR_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "core/monitor.h"
#include "core/optimizer.h"
#include "ml/registry.h"
#include "storage/artifact_store.h"

namespace hyppo::core {

/// Resolves a raw dataset id (the artifact's display name) to its data —
/// the stand-in for the paper's remote storage locations. Called once per
/// raw-load task in real execution mode.
using DatasetResolver =
    std::function<Result<ml::DatasetPtr>(const std::string& dataset_id)>;

/// \brief Executes plans: topologically orders the plan's tasks, binds
/// artifact payloads to task inputs, runs physical operators (or simulates
/// them), and reports per-task timings for the monitor and the history.
class Executor {
 public:
  struct Options {
    /// Simulation mode: no operator runs; each task charges its estimated
    /// duration (augmentation edge_seconds) and produces placeholder
    /// payloads. Used by the planner-scalability experiments and the
    /// paper-scale scenario sweeps.
    bool simulate = false;
    /// Worker threads for real execution. With > 1, independent plan
    /// branches (hyperedges whose inputs are all available) run
    /// concurrently in waves. `total_seconds` semantics are unchanged
    /// (sum of per-task times — the billable compute the cost model
    /// prices); `critical_path_seconds` reports the parallel wall time.
    /// Ignored in simulation mode.
    int parallelism = 1;
    /// Debug-mode assertion: structurally verify the plan against its
    /// augmentation (src/analysis) before executing anything. Fails with
    /// Internal on a broken plan instead of executing it.
    bool verify_plans = false;
  };

  struct TaskRun {
    EdgeId edge = kInvalidEdge;
    double seconds = 0.0;
  };

  struct ExecutionResult {
    /// Total charged time: wall-clock for computes, storage-model time for
    /// loads (estimates everywhere in simulation mode).
    double total_seconds = 0.0;
    /// Wall time along the parallel schedule (== total_seconds for serial
    /// execution).
    double critical_path_seconds = 0.0;
    std::vector<TaskRun> task_runs;
    /// Payload per produced/loaded artifact node.
    std::map<NodeId, ArtifactPayload> payloads;
  };

  Executor(storage::ArtifactStore* store, DatasetResolver resolver,
           Monitor* monitor,
           const ml::OperatorRegistry* registry =
               &ml::OperatorRegistry::Global())
      : store_(store),
        resolver_(std::move(resolver)),
        monitor_(monitor),
        registry_(registry) {}

  /// Executes `plan` over the augmentation it was derived from.
  Result<ExecutionResult> Execute(const Augmentation& aug, const Plan& plan,
                                  const Options& options) const;

 private:
  /// Runs one task reading inputs from `inputs` and writing produced
  /// payloads into `outputs` (which may alias `inputs` in serial mode;
  /// parallel waves use private output fragments merged afterwards).
  Result<double> RunLoadTask(const PipelineGraph& graph, EdgeId edge,
                             const std::map<NodeId, ArtifactPayload>& inputs,
                             std::map<NodeId, ArtifactPayload>* outputs,
                             bool simulate) const;
  Result<double> RunComputeTask(
      const PipelineGraph& graph, EdgeId edge,
      const std::map<NodeId, ArtifactPayload>& inputs,
      std::map<NodeId, ArtifactPayload>* outputs) const;

  Result<ExecutionResult> ExecuteSerial(const Augmentation& aug,
                                        const Plan& plan,
                                        const Options& options) const;
  Result<ExecutionResult> ExecuteParallel(const Augmentation& aug,
                                          const Plan& plan,
                                          const Options& options) const;

  storage::ArtifactStore* store_;
  DatasetResolver resolver_;
  Monitor* monitor_;
  const ml::OperatorRegistry* registry_;
};

}  // namespace hyppo::core

#endif  // HYPPO_CORE_EXECUTOR_H_
