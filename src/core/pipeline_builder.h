#ifndef HYPPO_CORE_PIPELINE_BUILDER_H_
#define HYPPO_CORE_PIPELINE_BUILDER_H_

#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "core/graph.h"
#include "core/naming.h"

namespace hyppo::core {

/// \brief Programmatic construction of Pipeline hypergraphs with canonical
/// naming and static shape/size propagation.
///
/// The builder mirrors what the DSL parser produces: every applied task
/// names its outputs from its logical operator, task type, configuration,
/// and input lineage (core/naming.h), and estimates output shapes so the
/// cost estimator can price tasks before anything has executed.
///
/// Example (the paper's Fig. 1(a) pipeline):
///
///   PipelineBuilder b("fig1");
///   NodeId data = *b.LoadDataset("higgs", 800000, 30);
///   auto [train, test] = *b.Split(data, {{"test_size", "0.25"}});
///   NodeId scaler = *b.Fit("StandardScaler", "skl.StandardScaler", train);
///   NodeId test_s = *b.Transform(scaler, test);
///   NodeId model = *b.Fit("RandomForestClassifier",
///                         "skl.RandomForestClassifier", train);
///   NodeId preds = *b.Predict(model, test_s);
///   Pipeline p = *std::move(b).Build();
class PipelineBuilder {
 public:
  explicit PipelineBuilder(std::string pipeline_id);

  /// Declares a raw dataset retrievable from the source s. `size_bytes`
  /// defaults to rows*cols*8 (+ target) when 0.
  Result<NodeId> LoadDataset(const std::string& dataset_id, int64_t rows,
                             int64_t cols, int64_t size_bytes = 0);

  /// Applies a task with explicit inputs and output count; returns the
  /// output nodes. This is the general form used by the parser and the
  /// workload generator; the helpers below cover the common shapes.
  Result<std::vector<NodeId>> ApplyTask(const TaskInfo& task,
                                        const std::vector<NodeId>& inputs,
                                        int num_outputs);

  /// data -> (train, test).
  Result<std::pair<NodeId, NodeId>> Split(
      NodeId data, const ml::Config& config = {},
      const std::string& impl = "skl.TrainTestSplit");

  /// data -> op-state. `logical_op` is looked up implicitly from the impl
  /// name's suffix if empty.
  Result<NodeId> Fit(const std::string& logical_op, const std::string& impl,
                     NodeId data, const ml::Config& config = {});

  /// Ensemble fit: base op-states (+ optional train data) -> op-state.
  Result<NodeId> FitEnsemble(const std::string& logical_op,
                             const std::string& impl,
                             const std::vector<NodeId>& base_states,
                             NodeId train_or_invalid,
                             const ml::Config& config = {});

  /// (op-state, data) -> data. Operator identity is taken from the state's
  /// producing task.
  Result<NodeId> Transform(NodeId state, NodeId data);

  /// (op-state, data) -> predictions.
  Result<NodeId> Predict(NodeId state, NodeId data);

  /// (predictions, data-with-target) -> value.
  Result<NodeId> Evaluate(NodeId predictions, NodeId data,
                          const std::string& metric);

  const PipelineGraph& graph() const { return graph_; }

  /// Source line stamped onto subsequently applied tasks (DSL parser sets
  /// this per statement so static-analysis diagnostics carry locations).
  void set_next_source_line(int line) { next_source_line_ = line; }

  /// Finalizes: targets are the sink artifacts.
  Result<Pipeline> Build() &&;

 private:
  /// Infers the kind/shape/size labels of the outputs of `task`.
  std::vector<ArtifactInfo> InferOutputs(const TaskInfo& task,
                                         const std::vector<NodeId>& inputs,
                                         int num_outputs) const;
  /// Finds the task that produced `state` (for transform/predict identity).
  Result<TaskInfo> ProducerOf(NodeId state) const;

  std::string id_;
  PipelineGraph graph_;
  int next_source_line_ = 0;
};

}  // namespace hyppo::core

#endif  // HYPPO_CORE_PIPELINE_BUILDER_H_
