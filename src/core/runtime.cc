#include "core/runtime.h"

#include <algorithm>
#include <filesystem>
#include <set>
#include <thread>

#include "analysis/graph_checks.h"
#include "ml/kernels/kernels.h"
#include "analysis/static/static_analyzer.h"
#include "core/history_io.h"
#include "storage/disk_store.h"
#include "storage/tiered_store.h"

namespace hyppo::core {

namespace {

// Static plan pre-check mirroring exactly what the executor's
// VerifyPlanStructure would verify (structure + claimed cost totals): a
// plan that clears here can provably skip the runtime re-verification.
// Writer-side guard of the serving catalog lock (see
// Runtime::set_catalog_mutex); a no-op when no lock is installed, so the
// single-owner path stays lock-free.
class CatalogWriteLock {
 public:
  explicit CatalogWriteLock(std::shared_mutex* mutex) : mutex_(mutex) {
    if (mutex_ != nullptr) {
      mutex_->lock();
    }
  }
  ~CatalogWriteLock() {
    if (mutex_ != nullptr) {
      mutex_->unlock();
    }
  }
  CatalogWriteLock(const CatalogWriteLock&) = delete;
  CatalogWriteLock& operator=(const CatalogWriteLock&) = delete;

 private:
  std::shared_mutex* mutex_;
};

bool StaticPlanPrecheck(const Augmentation& aug, const Plan& plan) {
  const analysis::StaticAnalyzer analyzer;
  analysis::AnalysisReport report =
      analyzer.CheckCostMonotonicity(aug.edge_weight, aug.edge_seconds);
  analysis::PlanSpec spec;
  spec.graph = &aug.graph.hypergraph();
  spec.edges = &plan.edges;
  spec.source = aug.graph.source();
  spec.targets = &aug.targets;
  spec.edge_weight = &aug.edge_weight;
  spec.claimed_cost = plan.cost;
  spec.edge_seconds = &aug.edge_seconds;
  spec.claimed_seconds = plan.seconds;
  report.Merge(analysis::CheckPlanStructure(spec));
  return report.ok();
}

}  // namespace

int RuntimeOptions::DefaultParallelism() {
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware == 0 ? 1 : static_cast<int>(hardware);
}

Runtime::Runtime(RuntimeOptions options, Dictionary dictionary)
    : options_(std::move(options)),
      dictionary_(std::move(dictionary)),
      estimator_(&ml::OperatorRegistry::Global()),
      monitor_(&estimator_),
      augmenter_(&dictionary_, &estimator_, storage::StorageTier::Local(),
                 storage::StorageTier::Remote(), options_.pricing) {
  augmenter_.set_monitor(&monitor_);
  if (options_.calibrate_kernel_costs) {
    // One-shot throughput probe through the kernel dispatcher; clamped so
    // a noisy reading cannot distort estimates by more than ~30x.
    const double measured = ml::kernels::MeasureGemmGflops();
    const double scale =
        std::clamp(measured / ml::kernels::kCalibrationBaselineGflops,
                   1.0 / 32.0, 32.0);
    estimator_.SetComputeThroughputScale(scale);
  }
  if (options_.store_dir.empty()) {
    store_ = std::make_unique<storage::InMemoryArtifactStore>(
        storage::StorageTier::Local());
  } else {
    auto disk =
        std::make_unique<storage::DiskArtifactStore>(options_.store_dir);
    session_status_ = disk->init_status();
    store_ = std::make_unique<storage::TieredArtifactStore>(std::move(disk));
    if (session_status_.ok()) {
      session_status_ = RestoreSession();
    }
  }
  executor_ = std::make_unique<Executor>(
      store_.get(),
      [this](const std::string& dataset_id) -> Result<ml::DatasetPtr> {
        std::lock_guard<std::mutex> lock(sources_mutex_);
        auto cached = resolved_sources_.find(dataset_id);
        if (cached != resolved_sources_.end()) {
          return cached->second;
        }
        auto it = sources_.find(dataset_id);
        if (it == sources_.end()) {
          return Status::NotFound("no registered dataset '" + dataset_id +
                                  "'");
        }
        HYPPO_ASSIGN_OR_RETURN(ml::DatasetPtr data, it->second());
        resolved_sources_.emplace(dataset_id, data);
        return data;
      },
      &monitor_);
}

void Runtime::RegisterDataset(const std::string& dataset_id,
                              ml::DatasetPtr data) {
  sources_[dataset_id] = [data]() -> Result<ml::DatasetPtr> { return data; };
}

void Runtime::RegisterDatasetGenerator(
    const std::string& dataset_id,
    std::function<Result<ml::DatasetPtr>()> generator) {
  sources_[dataset_id] = std::move(generator);
}

void Runtime::EnableFaultInjection(const storage::FaultPlan& plan) {
  fault_injector_ = std::make_unique<storage::FaultInjector>(plan);
  fault_store_ = std::make_unique<storage::FaultInjectingStore>(
      store_.get(), fault_injector_.get());
  executor_->set_store(fault_store_.get());
}

Status Runtime::DegradeAfterFailures(
    const std::vector<Executor::TaskFailure>& failures, Augmentation* aug) {
  for (const Executor::TaskFailure& failure : failures) {
    const TaskInfo& task = aug->graph.task(failure.edge);
    if (task.type != TaskType::kLoad) {
      continue;  // operator fault: transient, the retry re-runs it
    }
    const NodeId head = aug->graph.ordered_head(failure.edge)[0];
    const ArtifactInfo& artifact = aug->graph.artifact(head);
    if (artifact.kind == ArtifactKind::kRaw) {
      continue;  // resolver outage: transient, the source is not ours
    }
    // The materialized copy is dead: drop the load edge so no re-plan
    // trusts it, and purge the entry from the store and the history.
    HYPPO_RETURN_NOT_OK(aug->graph.RemoveTask(failure.edge));
    (void)store_->Evict(artifact.name);
    Result<NodeId> h_node = history_.graph().FindArtifact(artifact.name);
    if (h_node.ok()) {
      (void)history_.EvictMaterialized(*h_node);
    }
  }
  return Status::OK();
}

Result<Runtime::ExecutionRecord> Runtime::ExecuteInternal(
    const Augmentation& aug, const Plan& plan, const Replanner& replan,
    std::map<NodeId, ArtifactPayload>* batch_payloads) {
  Executor::Options exec_options;
  exec_options.simulate = options_.simulate;
  exec_options.parallelism = options_.parallelism;
  exec_options.kernel_threads = options_.kernel_threads;
  exec_options.verify_plans = options_.verify_plans;
  exec_options.fault_injector = fault_injector_.get();

  // Statically-cleared plans skip the executor's re-verification: the
  // pre-check proves the same invariants once, up front. Plans the
  // pre-check cannot clear fall back to the configured behavior.
  if (options_.static_checks && StaticPlanPrecheck(aug, plan)) {
    monitor_.RecordStaticClear();
    if (exec_options.verify_plans) {
      exec_options.verify_plans = false;
      monitor_.RecordPlanCheckSkipped();
    }
  }

  const int64_t faults_before =
      fault_injector_ ? fault_injector_->counters().total() : 0;

  ExecutionRecord record;
  std::vector<Executor::TaskRun> all_runs;
  std::map<NodeId, ArtifactPayload> surviving;
  double total_seconds = 0.0;

  // Batch seeding: earlier members' payloads pre-populate the surviving
  // map, so the first attempt already skips every task whose outputs a
  // batch sibling produced (shared prefixes execute once per batch).
  if (batch_payloads != nullptr && !batch_payloads->empty()) {
    surviving = *batch_payloads;
    exec_options.seed_payloads = &surviving;
  }

  // Attempt 0 runs the caller's plan. On failures, recovery degrades a
  // copy of the augmentation (node/edge ids stay stable under edge
  // removal, so payloads and task runs keep referring to `aug`), re-plans,
  // and re-executes seeded with every surviving payload.
  Augmentation degraded;
  const Augmentation* current_aug = &aug;
  Plan current_plan = plan;
  for (int attempt = 0;; ++attempt) {
    HYPPO_ASSIGN_OR_RETURN(
        Executor::ExecutionResult result,
        executor_->Execute(*current_aug, current_plan, exec_options));
    total_seconds += result.total_seconds;
    all_runs.insert(all_runs.end(), result.task_runs.begin(),
                    result.task_runs.end());
    for (auto& [node, payload] : result.payloads) {
      surviving[node] = std::move(payload);
    }
    if (attempt > 0) {
      record.recovered_tasks += result.reused_tasks;
      monitor_.RecordRecoveredTasks(result.reused_tasks);
    } else if (batch_payloads != nullptr && !batch_payloads->empty()) {
      record.seeded_tasks = result.reused_tasks;
    }
    if (result.complete()) {
      break;
    }
    record.failed_tasks += static_cast<int64_t>(result.failures.size());
    monitor_.RecordTaskFailures(static_cast<int64_t>(result.failures.size()));
    if (!replan || attempt >= options_.max_recovery_attempts) {
      if (!result.failures.empty()) {
        return result.failures.front().status;
      }
      return Status::Internal(
          "execution left " + std::to_string(result.skipped_edges.size()) +
          " tasks unexecuted with no failure to recover from");
    }
    if (attempt == 0) {
      degraded = aug;
      current_aug = &degraded;
    }
    {
      // Degradation purges rotten history/store entries: a catalog
      // mutation, serialized against concurrent sessions' planning.
      CatalogWriteLock commit(catalog_mutex_);
      HYPPO_RETURN_NOT_OK(DegradeAfterFailures(result.failures, &degraded));
    }
    if (options_.verify_plans) {
      HYPPO_RETURN_NOT_OK(VerifyAugmentationStructure(degraded));
    }
    ++record.replans;
    monitor_.RecordReplan();
    HYPPO_ASSIGN_OR_RETURN(current_plan, replan(degraded));
    // Re-planned plans are new objects: pre-check each one afresh before
    // deciding whether this attempt may skip the executor verification.
    exec_options.verify_plans = options_.verify_plans;
    if (options_.static_checks &&
        StaticPlanPrecheck(degraded, current_plan)) {
      monitor_.RecordStaticClear();
      if (exec_options.verify_plans) {
        exec_options.verify_plans = false;
        monitor_.RecordPlanCheckSkipped();
      }
    }
    exec_options.seed_payloads = &surviving;
  }
  if (fault_injector_) {
    monitor_.RecordInjectedFaults(fault_injector_->counters().total() -
                                  faults_before);
  }

  record.seconds = total_seconds;

  // Commit phase: everything below mutates the shared catalog (history
  // records + estimator feedback via the monitor already landed, clock,
  // compaction), so it runs under the writer lock while concurrent
  // sessions' planners wait on the reader side.
  CatalogWriteLock commit(catalog_mutex_);
  cumulative_seconds_.store(
      cumulative_seconds_.load(std::memory_order_relaxed) + total_seconds,
      std::memory_order_relaxed);

  // Refresh artifact metadata with observed payload sizes, then record
  // artifacts, tasks, and durations into the history.
  const PipelineGraph& graph = aug.graph;
  std::map<NodeId, NodeId> to_history;
  for (const auto& [node, payload] : surviving) {
    ArtifactInfo info = graph.artifact(node);
    const int64_t observed = storage::PayloadSizeBytes(payload);
    if (observed > 0) {
      info.size_bytes = observed;
      if (const auto* dataset = std::get_if<ml::DatasetPtr>(&payload)) {
        info.rows = (*dataset)->rows();
        info.cols = (*dataset)->cols();
      }
    }
    const NodeId h_node = history_.Observe(info);
    to_history[node] = h_node;
    history_.RecordAccess(h_node, now_seconds());
    if (info.kind == ArtifactKind::kRaw) {
      HYPPO_RETURN_NOT_OK(history_.RegisterSourceData(h_node).status());
    }
    record.payloads_by_name[info.name] = payload;
  }
  for (const Executor::TaskRun& run : all_runs) {
    const TaskInfo& task = graph.task(run.edge);
    if (task.type == TaskType::kLoad) {
      continue;  // load edges are managed by materialization state
    }
    std::vector<NodeId> tails;
    for (NodeId t : graph.ordered_tail(run.edge)) {
      if (t == graph.source()) {
        continue;
      }
      auto it = to_history.find(t);
      if (it == to_history.end()) {
        to_history[t] = history_.Observe(graph.artifact(t));
        it = to_history.find(t);
      }
      tails.push_back(it->second);
    }
    std::vector<NodeId> heads;
    for (NodeId h : graph.ordered_head(run.edge)) {
      auto it = to_history.find(h);
      if (it == to_history.end()) {
        to_history[h] = history_.Observe(graph.artifact(h));
        it = to_history.find(h);
      }
      heads.push_back(it->second);
      history_.RecordComputeSeconds(it->second, run.seconds);
      const ArtifactInfo& produced = history_.graph().artifact(it->second);
      monitor_.RecordArtifact(produced.kind, produced.size_bytes,
                              run.seconds);
    }
    HYPPO_RETURN_NOT_OK(
        history_.ObserveTask(task, tails, heads, run.seconds).status());
  }

  // Bound history growth: compaction runs after all of this execution's
  // observations landed, so the Pareto criteria see fresh access times and
  // durations. The materializer only consumes canonical names (never node
  // ids) after this returns, so rebuilding the history here is safe.
  if (options_.history_max_artifacts > 0 &&
      history_.num_artifacts() > options_.history_max_artifacts) {
    // In-flight batches keep referring to their merged augmentation's
    // artifacts (and their accumulated statistics) until the batch-wide
    // materialization decision commits; compaction must not drop them.
    std::set<std::string> pinned;
    {
      std::lock_guard<std::mutex> lock(pinned_mutex_);
      pinned.insert(pinned_artifacts_.begin(), pinned_artifacts_.end());
    }
    History::CompactionOptions copts;
    copts.max_nodes = options_.history_max_artifacts;
    copts.retain_fraction = options_.history_retain_fraction;
    copts.protect_names = pinned.empty() ? nullptr : &pinned;
    HYPPO_ASSIGN_OR_RETURN(History::CompactionStats cstats,
                           history_.Compact(copts, now_seconds()));
    monitor_.RecordHistoryCompacted(cstats.nodes_dropped);
  }
  if (batch_payloads != nullptr) {
    *batch_payloads = std::move(surviving);
  }
  return record;
}

Status Runtime::RecordPipelineStructure(const Pipeline& pipeline) {
  const PipelineGraph& graph = pipeline.graph;
  std::map<NodeId, NodeId> to_history;
  for (NodeId v = 1; v < graph.num_artifacts(); ++v) {
    const ArtifactInfo& info = graph.artifact(v);
    const NodeId h_node = history_.Observe(info);
    to_history[v] = h_node;
    history_.RecordAccess(h_node, now_seconds());
    if (info.kind == ArtifactKind::kRaw) {
      HYPPO_RETURN_NOT_OK(history_.RegisterSourceData(h_node).status());
    }
  }
  for (EdgeId e : graph.hypergraph().LiveEdges()) {
    const TaskInfo& task = graph.task(e);
    if (task.type == TaskType::kLoad) {
      continue;
    }
    std::vector<NodeId> tails;
    for (NodeId t : graph.ordered_tail(e)) {
      if (t != graph.source()) {
        tails.push_back(to_history[t]);
      }
    }
    std::vector<NodeId> heads;
    for (NodeId h : graph.ordered_head(e)) {
      heads.push_back(to_history[h]);
    }
    HYPPO_RETURN_NOT_OK(
        history_.ObserveTask(task, tails, heads, /*seconds=*/-1.0).status());
  }
  return Status::OK();
}

Result<Runtime::ExecutionRecord> Runtime::ExecuteAndRecord(
    const Pipeline& pipeline, const Augmentation& aug, const Plan& plan,
    const Replanner& replan) {
  // Fail-fast admission check: a malformed pipeline is rejected before it
  // touches the history, the planner, or shared-store budget. Bitwise
  // reproduction becomes a hard requirement once fault injection is
  // armed (recovery re-executes tasks and must reproduce payloads).
  if (options_.static_checks) {
    analysis::StaticAnalyzerOptions sa_options;
    sa_options.require_bitwise = fault_injector_ != nullptr;
    const analysis::StaticAnalyzer analyzer(sa_options);
    const analysis::AnalysisReport report = analyzer.AnalyzePipeline(
        pipeline.graph, dictionary_, ml::OperatorRegistry::Global());
    if (!report.ok()) {
      return Status::InvalidArgument(
          "static analysis rejected pipeline '" + pipeline.id + "' (" +
          report.Summary() + "):\n" + report.ToString());
    }
  }
  {
    // Structure recording mutates the history; commit it under the
    // serving catalog writer lock (no-op single-owner).
    CatalogWriteLock commit(catalog_mutex_);
    HYPPO_RETURN_NOT_OK(RecordPipelineStructure(pipeline));
  }
  return ExecuteInternal(aug, plan, replan);
}

Result<Runtime::ExecutionRecord> Runtime::ExecutePlanOnly(
    const Augmentation& aug, const Plan& plan, const Replanner& replan) {
  return ExecuteInternal(aug, plan, replan);
}

void Runtime::PinArtifacts(const std::vector<std::string>& names) {
  std::lock_guard<std::mutex> lock(pinned_mutex_);
  for (const std::string& name : names) {
    pinned_artifacts_.insert(name);
  }
}

void Runtime::UnpinArtifacts(const std::vector<std::string>& names) {
  std::lock_guard<std::mutex> lock(pinned_mutex_);
  for (const std::string& name : names) {
    const auto it = pinned_artifacts_.find(name);
    if (it != pinned_artifacts_.end()) {
      pinned_artifacts_.erase(it);
    }
  }
}

Result<Runtime::BatchExecutionRecord> Runtime::RunBatch(
    const std::vector<Pipeline>& pipelines, const Augmentation& merged,
    const std::vector<BatchPlanner::MemberPlan>& members,
    const Replanner& replan) {
  if (pipelines.empty()) {
    return Status::InvalidArgument("cannot execute an empty batch");
  }
  if (pipelines.size() != members.size()) {
    return Status::InvalidArgument(
        "batch has " + std::to_string(pipelines.size()) + " pipelines but " +
        std::to_string(members.size()) + " member plans");
  }
  if (options_.static_checks) {
    analysis::StaticAnalyzerOptions sa_options;
    sa_options.require_bitwise = fault_injector_ != nullptr;
    const analysis::StaticAnalyzer analyzer(sa_options);
    for (const Pipeline& pipeline : pipelines) {
      const analysis::AnalysisReport report = analyzer.AnalyzePipeline(
          pipeline.graph, dictionary_, ml::OperatorRegistry::Global());
      if (!report.ok()) {
        return Status::InvalidArgument(
            "static analysis rejected batch member '" + pipeline.id + "' (" +
            report.Summary() + "):\n" + report.ToString());
      }
    }
  }
  {
    // Per-member structure recording is deliberate: each member accesses
    // its full prefix, so a shared artifact accumulates fan-out-many
    // access counts before the batch-wide materialization decision.
    CatalogWriteLock commit(catalog_mutex_);
    for (const Pipeline& pipeline : pipelines) {
      HYPPO_RETURN_NOT_OK(RecordPipelineStructure(pipeline));
    }
  }

  // Pin the merged augmentation's artifacts against compaction for the
  // whole batch: member plans and the end-of-batch materializer keep
  // consuming their statistics long after an individual execution commits,
  // and a concurrent session's compaction must not drop them mid-batch.
  std::vector<std::string> pinned_names;
  pinned_names.reserve(static_cast<size_t>(merged.graph.num_artifacts()));
  for (NodeId v = 1; v < merged.graph.num_artifacts(); ++v) {
    pinned_names.push_back(merged.graph.artifact(v).name);
  }
  PinArtifacts(pinned_names);
  struct PinGuard {
    Runtime* runtime;
    const std::vector<std::string>* names;
    ~PinGuard() { runtime->UnpinArtifacts(*names); }
  } pin_guard{this, &pinned_names};

  BatchExecutionRecord batch;
  batch.members.reserve(members.size());
  // Payloads accumulated across members, keyed by merged-graph node id
  // (every member plan shares that id space).
  std::map<NodeId, ArtifactPayload> accumulated;
  for (size_t i = 0; i < members.size(); ++i) {
    // Member view: same graph and weights (so node/edge ids and the seed
    // map carry over), but the member's own targets — plan verification
    // and recovery re-planning must only require THIS member's work.
    Augmentation view = merged;
    view.targets = members[i].targets;
    // Seed only payloads the member's plan actually touches: the commit
    // phase records an access per surviving payload, and an unrelated
    // sibling artifact must not inherit this member's access.
    std::map<NodeId, ArtifactPayload> seed;
    for (EdgeId e : members[i].plan.edges) {
      for (NodeId t : view.graph.ordered_tail(e)) {
        const auto it = accumulated.find(t);
        if (it != accumulated.end()) {
          seed.insert(*it);
        }
      }
      for (NodeId h : view.graph.ordered_head(e)) {
        const auto it = accumulated.find(h);
        if (it != accumulated.end()) {
          seed.insert(*it);
        }
      }
    }
    HYPPO_ASSIGN_OR_RETURN(
        ExecutionRecord record,
        ExecuteInternal(view, members[i].plan, replan, &seed));
    for (auto& [node, payload] : seed) {
      accumulated[node] = std::move(payload);
    }
    batch.seconds += record.seconds;
    batch.shared_prefix_skips += record.seeded_tasks;
    batch.members.push_back(std::move(record));
  }
  monitor_.RecordSharedPrefixHits(batch.shared_prefix_skips);
  return batch;
}

Status Runtime::SaveCatalog(const std::string& directory) const {
  return core::SaveCatalog(history_, *store_, directory);
}

Status Runtime::LoadCatalog(const std::string& directory) {
  // Stage into a scratch store first so a failed load leaves the runtime
  // untouched; the live store object must survive (the executor and the
  // fault decorator hold pointers to it), so commit by refilling it.
  History history;
  storage::InMemoryArtifactStore scratch(store_->tier());
  HYPPO_RETURN_NOT_OK(core::LoadCatalog(directory, &history, &scratch));
  for (const std::string& key : store_->Keys()) {
    HYPPO_RETURN_NOT_OK(store_->Evict(key));
  }
  for (const std::string& key : scratch.Keys()) {
    HYPPO_ASSIGN_OR_RETURN(storage::ArtifactPayload payload,
                           scratch.Get(key));
    HYPPO_ASSIGN_OR_RETURN(int64_t size_bytes, scratch.SizeOf(key));
    HYPPO_RETURN_NOT_OK(store_->Put(key, std::move(payload), size_bytes));
  }
  history_ = std::move(history);
  return Status::OK();
}

Status Runtime::RestoreSession() {
  namespace fs = std::filesystem;
  const std::string path =
      (fs::path(options_.store_dir) / "history.hyppo").string();
  std::error_code ec;
  if (!fs::exists(path, ec)) {
    return Status::OK();  // fresh store: nothing to restore
  }
  HYPPO_ASSIGN_OR_RETURN(std::string bytes, ReadFileToString(path));
  HYPPO_ASSIGN_OR_RETURN(History loaded, DeserializeHistory(bytes));
  // Reconcile with what the disk store actually recovered: the history
  // snapshot and the payload files land independently, so a crash can
  // leave either side ahead. The store <-> history consistency invariant
  // (analysis CheckStoreConsistency) must hold when we are done.
  std::set<std::string> claimed;
  for (NodeId v : loaded.MaterializedArtifacts()) {
    const ArtifactInfo& info = loaded.graph().artifact(v);
    const Result<int64_t> stored_size = store_->SizeOf(info.name);
    if (stored_size.ok() && *stored_size == info.size_bytes) {
      claimed.insert(info.name);
    } else {
      // Payload missing or its size drifted: the entry is not trustworthy.
      HYPPO_RETURN_NOT_OK(loaded.EvictMaterialized(v));
      if (stored_size.ok()) {
        HYPPO_RETURN_NOT_OK(store_->Evict(info.name));
      }
    }
  }
  for (const std::string& key : store_->Keys()) {
    if (claimed.count(key) == 0) {
      HYPPO_RETURN_NOT_OK(store_->Evict(key));  // orphan payload
    }
  }
  history_ = std::move(loaded);
  return Status::OK();
}

Status Runtime::PersistSession() {
  if (options_.store_dir.empty()) {
    return Status::OK();
  }
  HYPPO_RETURN_NOT_OK(session_status_);
  namespace fs = std::filesystem;
  HYPPO_ASSIGN_OR_RETURN(std::string bytes, SerializeHistory(history_));
  return AtomicWriteFile(
      (fs::path(options_.store_dir) / "history.hyppo").string(), bytes);
}

}  // namespace hyppo::core
