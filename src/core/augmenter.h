#ifndef HYPPO_CORE_AUGMENTER_H_
#define HYPPO_CORE_AUGMENTER_H_

#include <vector>

#include "common/result.h"
#include "core/cost_model.h"
#include "core/dictionary.h"
#include "core/graph.h"
#include "core/history.h"
#include "core/monitor.h"
#include "storage/artifact_store.h"

namespace hyppo::core {

/// \brief The augmented pipeline A (paper §IV-D): the pipeline P enriched
/// with every alternative way to derive its artifacts.
///
/// P is a subhypergraph of A. Additional hyperedges come from three
/// sources: (a) 'load' edges for artifacts materialized in the history,
/// (b) equivalent derivations recorded in the history (spliced in via the
/// canonical-name match and backward relevance closure), and (c) parallel
/// hyperedges for alternative physical implementations from the
/// dictionary. Some artifacts therefore have multiple incoming hyperedges
/// — the OR semantics that DAGs cannot express.
struct Augmentation {
  PipelineGraph graph;
  std::vector<NodeId> targets;
  /// Edges not recorded in the history (candidates for exploration mode).
  std::vector<EdgeId> new_tasks;
  /// Optimization weight per edge slot (seconds or EUR, per the
  /// augmenter's objective option).
  std::vector<double> edge_weight;
  /// Estimated duration per edge slot in seconds (used by the executor's
  /// simulation mode and by reporting).
  std::vector<double> edge_seconds;
};

/// \brief Builds augmentations from pipelines and the history.
class Augmenter {
 public:
  enum class Objective { kTime, kPrice };

  struct Options {
    /// Add parallel edges for alternative physical implementations (and
    /// splice equivalent derivations from the history). Baselines without
    /// equivalence support turn this off.
    bool use_equivalences = true;
    /// Splice reusable (identical-artifact) derivations from the history.
    bool use_history = true;
    /// Add load edges for materialized artifacts.
    bool use_materialized = true;
    /// Answer equivalence lookups from the History's incremental index
    /// (O(1) per probe) instead of scanning all history nodes/edges per
    /// submission. Off = the reference scan path, kept as the
    /// differential-testing baseline.
    bool use_index = true;
    /// Cross-check every indexed lookup against the reference scan and
    /// fail with an internal error on divergence. Costs O(history) per
    /// submission — for tests only.
    bool validate_index = false;
    Objective objective = Objective::kTime;
  };

  Augmenter(const Dictionary* dictionary, const CostEstimator* estimator,
            storage::StorageTier local_tier = storage::StorageTier::Local(),
            storage::StorageTier remote_tier = storage::StorageTier::Remote(),
            PricingModel pricing = PricingModel())
      : dictionary_(dictionary),
        estimator_(estimator),
        local_tier_(local_tier),
        remote_tier_(remote_tier),
        pricing_(pricing) {}

  /// Builds the augmentation of `pipeline` against `history`.
  Result<Augmentation> Augment(const Pipeline& pipeline,
                               const History& history,
                               const Options& options) const;

  /// Builds an augmentation for a retrieval request (paper §V, scenario
  /// 2): the targets are artifacts already recorded in the history; the
  /// augmentation is the backward-relevant part of H (plus dictionary
  /// alternatives and load edges), with the named artifacts as targets.
  Result<Augmentation> AugmentForRetrieval(
      const History& history, const std::vector<std::string>& target_names,
      const Options& options) const;

  /// Computes the optimization weight of one (already labelled) edge —
  /// exposed for baselines that build their own graphs.
  double EdgeWeight(const PipelineGraph& graph, EdgeId edge,
                    const History& history, Objective objective) const;

  /// Estimated duration in seconds of one edge (load edges use the
  /// storage tiers; compute edges use history observations, then the cost
  /// estimator).
  double EdgeSeconds(const PipelineGraph& graph, EdgeId edge,
                     const History& history) const;

  /// Attaches a monitor receiving index hit/miss telemetry (not owned).
  void set_monitor(Monitor* monitor) { monitor_ = monitor; }

 private:
  const Dictionary* dictionary_;
  const CostEstimator* estimator_;
  storage::StorageTier local_tier_;
  storage::StorageTier remote_tier_;
  PricingModel pricing_;
  Monitor* monitor_ = nullptr;
};

}  // namespace hyppo::core

#endif  // HYPPO_CORE_AUGMENTER_H_
