#ifndef HYPPO_CORE_HISTORY_H_
#define HYPPO_CORE_HISTORY_H_

#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "core/graph.h"

namespace hyppo::core {

/// \brief Per-artifact execution statistics kept in the history
/// (paper §III-C4: cost, size, access frequency, version).
struct ArtifactRecord {
  /// Mean observed wall time of tasks that produced this artifact.
  double compute_seconds = 0.0;
  int64_t compute_observations = 0;
  /// How often pipelines requested (used) this artifact.
  int64_t access_count = 0;
  double last_access_seconds = 0.0;
  int64_t version = 1;
  /// Materialization state; a materialized artifact has a live 'load'
  /// hyperedge from the source s.
  bool materialized = false;
  EdgeId load_edge = kInvalidEdge;
};

/// \brief Incrementally maintained hash index over the history graph.
///
/// Every History mutator keeps these maps in sync with the labelled
/// hypergraph, so the augmenter answers its per-submission equivalence
/// queries in O(1) instead of scanning all history nodes/edges (the
/// fig9b plan-overhead flattening). The analysis verifier cross-checks
/// index and graph (Verifier::CheckHistoryIndex); exposed read-only.
struct HistoryIndex {
  /// Canonical artifact name -> node (mirrors the graph's name map,
  /// including the source node).
  std::unordered_map<std::string, NodeId> artifact_by_name;
  /// PipelineGraph::TaskSignature -> compute edge. Load edges are
  /// excluded: they are derived from materialization state instead.
  std::unordered_map<std::string, EdgeId> task_by_signature;
  /// Logical-operator class -> live compute edges of that class, in
  /// insertion (= edge id) order.
  std::unordered_map<std::string, std::vector<EdgeId>> tasks_by_logical_op;
  /// Materialized non-source artifacts (ordered: deterministic sweeps).
  std::set<NodeId> materialized;
};

/// \brief The history H: a labelled hypergraph archiving all artifacts and
/// tasks observed across pipeline executions, plus their statistics — the
/// "dual cache" of §III-C4.
///
/// Artifacts are deduplicated by canonical name and tasks by signature, so
/// re-running a pipeline does not grow the graph; it only updates
/// statistics. Raw datasets keep a permanent 'load' edge from s (data
/// sources are never evicted); derived artifacts gain a 'load' edge when
/// materialized and lose it when evicted (§IV-H).
///
/// Mutators are single-owner (not thread-safe); concurrent readers are
/// fine between mutations, *including* CollectBackwardRelevantEdges:
/// its marker scratch is thread-local, so concurrent planners
/// (serving::SessionManager holds them under the reader side of the
/// catalog lock) never contend on it.
class History {
 public:
  History();

  const PipelineGraph& graph() const { return graph_; }
  /// Mutable graph access is a test-only backdoor (corruption fixtures):
  /// mutating the graph directly desyncs the index, which
  /// Verifier::CheckHistoryIndex is designed to catch.
  PipelineGraph& graph() { return graph_; }

  /// Finds or creates the artifact node for `info`, updating its metadata
  /// with the (possibly more precise) sizes in `info`.
  NodeId Observe(const ArtifactInfo& info);

  /// Finds or creates the task edge; updates its observed duration.
  /// Tail/head nodes must already exist in the history.
  Result<EdgeId> ObserveTask(const TaskInfo& info,
                             const std::vector<NodeId>& tails,
                             const std::vector<NodeId>& heads,
                             double seconds);

  /// Marks the artifact as retrievable from raw storage (used for dataset
  /// sources). Idempotent. The load edge is permanent.
  Result<EdgeId> RegisterSourceData(NodeId node);

  /// Records that a pipeline accessed (required) this artifact.
  void RecordAccess(NodeId node, double now_seconds);

  /// Records the observed compute duration for an artifact's production.
  void RecordComputeSeconds(NodeId node, double seconds);

  /// Adds a load edge for a newly materialized artifact.
  Status MarkMaterialized(NodeId node);

  /// Removes the load edge of an evicted artifact (the node and all other
  /// incident hyperedges are kept). Fails for data sources.
  Status EvictMaterialized(NodeId node);

  bool IsMaterialized(NodeId node) const {
    return record(node).materialized;
  }
  bool IsSourceData(NodeId node) const {
    return graph_.artifact(node).kind == ArtifactKind::kRaw;
  }

  const ArtifactRecord& record(NodeId node) const {
    return records_[static_cast<size_t>(node)];
  }
  ArtifactRecord& record(NodeId node) {
    return records_[static_cast<size_t>(node)];
  }

  // -- Indexed lookups (O(1); backed by the incremental HistoryIndex) ----

  /// Looks up an artifact node by canonical name.
  Result<NodeId> FindArtifact(const std::string& name) const;

  /// True iff a live compute edge with this PipelineGraph::TaskSignature
  /// exists — the augmenter's new-task test, previously an O(E) scan.
  bool HasTaskSignature(const std::string& signature) const {
    return index_.task_by_signature.count(signature) > 0;
  }

  /// Live compute edges of one logical-operator class (empty if none).
  const std::vector<EdgeId>& TasksForLogicalOp(const std::string& op) const;

  /// Read-only view of the index for the analysis verifier.
  const HistoryIndex& index() const { return index_; }

  /// Ascending ids of all live edges backward-relevant to `matched`
  /// (every hyperedge that can participate in deriving one of them,
  /// recursively through tails). Cost is proportional to the relevant
  /// sub-hypergraph, not the history size: marker scratch is epoch-reused
  /// across calls instead of reallocated per submission. Scratch lives in
  /// thread-local storage, so concurrent readers are safe and share-free.
  std::vector<EdgeId> CollectBackwardRelevantEdges(
      const std::vector<NodeId>& matched) const;

  /// All currently materialized (non-source) artifacts, ascending.
  std::vector<NodeId> MaterializedArtifacts() const;

  /// Total bytes of materialized (non-source) artifacts.
  int64_t MaterializedBytes() const;

  // -- Pareto history compaction (§IV-H extension) -----------------------

  struct CompactionOptions {
    /// Compact only when num_artifacts() exceeds this; <= 0 disables.
    int32_t max_nodes = 0;
    /// Compaction target as a fraction of max_nodes (hysteresis: dropping
    /// to exactly max_nodes would re-trigger on the next observation).
    double retain_fraction = 0.75;
    /// Canonical names retained unconditionally (like sources and
    /// materialized artifacts). The runtime pins every artifact of an
    /// in-flight batch plan here: batch plans live across many member
    /// executions, and compacting their nodes away mid-batch would drop
    /// the access/compute statistics the end-of-batch materializer
    /// scores shared prefixes with. Not owned; may be null.
    const std::set<std::string>* protect_names = nullptr;
  };

  struct CompactionStats {
    int32_t nodes_before = 0;
    int32_t nodes_after = 0;
    int32_t nodes_dropped = 0;
    int32_t edges_dropped = 0;
  };

  /// Drops dominated, unmaterialized derivations so the history stays
  /// bounded as it grows without limit: data sources and materialized
  /// artifacts are always retained, per-criterion anchors of the Pareto
  /// frontier (reuse count, observed compute seconds, recency) are
  /// retained next, and the remaining slots go to the highest combined
  /// scores. Task edges incident to a dropped node are dropped with it.
  ///
  /// Rebuilds the graph: outstanding NodeId/EdgeId handles are
  /// invalidated; canonical names remain the stable keys. No-op (zero
  /// stats) while the history fits. `now_seconds` anchors recency.
  Result<CompactionStats> Compact(const CompactionOptions& options,
                                  double now_seconds);

  /// Mean observed duration of a task edge; falls back to `fallback` when
  /// never observed.
  double ObservedTaskSeconds(EdgeId edge, double fallback) const;
  bool HasTaskObservation(EdgeId edge) const;

  /// Raw (total seconds, observation count) of a task edge — used by the
  /// catalog persistence layer (core/history_io.h).
  std::pair<double, int64_t> TaskObservation(EdgeId edge) const;

  /// Number of artifacts excluding the source node.
  int32_t num_artifacts() const { return graph_.num_artifacts() - 1; }
  int32_t num_tasks() const { return graph_.num_tasks(); }

  /// Number of statistics records allocated. Always == the graph's node
  /// count after any History mutator ran; exposed so the verifier can
  /// bounds-check before reading records (src/analysis).
  int32_t num_records() const { return static_cast<int32_t>(records_.size()); }

 private:
  struct EdgeStats {
    double total_seconds = 0.0;
    int64_t count = 0;
  };

  void EnsureRecords() {
    records_.resize(static_cast<size_t>(graph_.num_artifacts()));
  }
  void EnsureEdgeStats() {
    edge_stats_.resize(
        static_cast<size_t>(graph_.hypergraph().num_edge_slots()));
  }
  void IndexArtifact(const std::string& name, NodeId node) {
    index_.artifact_by_name.emplace(name, node);
  }
  void IndexTask(std::string signature, EdgeId edge);

  PipelineGraph graph_;
  std::vector<ArtifactRecord> records_;
  std::vector<EdgeStats> edge_stats_;
  HistoryIndex index_;
};

}  // namespace hyppo::core

#endif  // HYPPO_CORE_HISTORY_H_
