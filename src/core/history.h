#ifndef HYPPO_CORE_HISTORY_H_
#define HYPPO_CORE_HISTORY_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/graph.h"

namespace hyppo::core {

/// \brief Per-artifact execution statistics kept in the history
/// (paper §III-C4: cost, size, access frequency, version).
struct ArtifactRecord {
  /// Mean observed wall time of tasks that produced this artifact.
  double compute_seconds = 0.0;
  int64_t compute_observations = 0;
  /// How often pipelines requested (used) this artifact.
  int64_t access_count = 0;
  double last_access_seconds = 0.0;
  int64_t version = 1;
  /// Materialization state; a materialized artifact has a live 'load'
  /// hyperedge from the source s.
  bool materialized = false;
  EdgeId load_edge = kInvalidEdge;
};

/// \brief The history H: a labelled hypergraph archiving all artifacts and
/// tasks observed across pipeline executions, plus their statistics — the
/// "dual cache" of §III-C4.
///
/// Artifacts are deduplicated by canonical name and tasks by signature, so
/// re-running a pipeline does not grow the graph; it only updates
/// statistics. Raw datasets keep a permanent 'load' edge from s (data
/// sources are never evicted); derived artifacts gain a 'load' edge when
/// materialized and lose it when evicted (§IV-H).
class History {
 public:
  History() = default;

  const PipelineGraph& graph() const { return graph_; }
  PipelineGraph& graph() { return graph_; }

  /// Finds or creates the artifact node for `info`, updating its metadata
  /// with the (possibly more precise) sizes in `info`.
  NodeId Observe(const ArtifactInfo& info);

  /// Finds or creates the task edge; updates its observed duration.
  /// Tail/head nodes must already exist in the history.
  Result<EdgeId> ObserveTask(const TaskInfo& info,
                             const std::vector<NodeId>& tails,
                             const std::vector<NodeId>& heads,
                             double seconds);

  /// Marks the artifact as retrievable from raw storage (used for dataset
  /// sources). Idempotent. The load edge is permanent.
  Result<EdgeId> RegisterSourceData(NodeId node);

  /// Records that a pipeline accessed (required) this artifact.
  void RecordAccess(NodeId node, double now_seconds);

  /// Records the observed compute duration for an artifact's production.
  void RecordComputeSeconds(NodeId node, double seconds);

  /// Adds a load edge for a newly materialized artifact.
  Status MarkMaterialized(NodeId node);

  /// Removes the load edge of an evicted artifact (the node and all other
  /// incident hyperedges are kept). Fails for data sources.
  Status EvictMaterialized(NodeId node);

  bool IsMaterialized(NodeId node) const {
    return record(node).materialized;
  }
  bool IsSourceData(NodeId node) const {
    return graph_.artifact(node).kind == ArtifactKind::kRaw;
  }

  const ArtifactRecord& record(NodeId node) const {
    return records_[static_cast<size_t>(node)];
  }
  ArtifactRecord& record(NodeId node) {
    return records_[static_cast<size_t>(node)];
  }

  /// All currently materialized (non-source) artifacts.
  std::vector<NodeId> MaterializedArtifacts() const;

  /// Total bytes of materialized (non-source) artifacts.
  int64_t MaterializedBytes() const;

  /// Mean observed duration of a task edge; falls back to `fallback` when
  /// never observed.
  double ObservedTaskSeconds(EdgeId edge, double fallback) const;
  bool HasTaskObservation(EdgeId edge) const;

  /// Raw (total seconds, observation count) of a task edge — used by the
  /// catalog persistence layer (core/history_io.h).
  std::pair<double, int64_t> TaskObservation(EdgeId edge) const;

  /// Number of artifacts excluding the source node.
  int32_t num_artifacts() const { return graph_.num_artifacts() - 1; }
  int32_t num_tasks() const { return graph_.num_tasks(); }

  /// Number of statistics records allocated. Always == the graph's node
  /// count after any History mutator ran; exposed so the verifier can
  /// bounds-check before reading records (src/analysis).
  int32_t num_records() const { return static_cast<int32_t>(records_.size()); }

 private:
  struct EdgeStats {
    double total_seconds = 0.0;
    int64_t count = 0;
  };

  void EnsureRecords() {
    records_.resize(static_cast<size_t>(graph_.num_artifacts()));
  }
  void EnsureEdgeStats() {
    edge_stats_.resize(static_cast<size_t>(graph_.hypergraph().num_edge_slots()));
  }

  PipelineGraph graph_;
  std::vector<ArtifactRecord> records_;
  std::vector<EdgeStats> edge_stats_;
  std::map<std::string, EdgeId> edge_by_signature_;
};

}  // namespace hyppo::core

#endif  // HYPPO_CORE_HISTORY_H_
