#ifndef HYPPO_CORE_METHOD_H_
#define HYPPO_CORE_METHOD_H_

#include <string>

#include "common/result.h"
#include "core/optimizer.h"
#include "core/runtime.h"

namespace hyppo::core {

/// \brief Interface of one optimization method in the experimental
/// comparison: HYPPO and the baselines (NoOptimization, Sharing, Helix,
/// Collab) all implement it against a shared Runtime.
///
/// The scenario runner drives the paper's workload loop:
///   for each pipeline p:
///     planned = method.PlanPipeline(p)       // reuse/equivalence decisions
///     record  = runtime.ExecuteAndRecord(p, planned.aug, planned.plan)
///     method.AfterExecution(p, planned, record)  // materialization policy
class Method {
 public:
  struct Planned {
    Augmentation aug;
    Plan plan;
    /// Wall time spent planning (the paper's "optimization overhead",
    /// Fig. 9(b)).
    double optimize_seconds = 0.0;
  };

  explicit Method(Runtime* runtime) : runtime_(runtime) {}
  virtual ~Method() = default;

  Method(const Method&) = delete;
  Method& operator=(const Method&) = delete;

  virtual std::string name() const = 0;

  /// Derives the execution plan for one pipeline.
  virtual Result<Planned> PlanPipeline(const Pipeline& pipeline) = 0;

  /// Applies the method's materialization policy after execution.
  virtual Status AfterExecution(const Pipeline& pipeline,
                                const Planned& planned,
                                const Runtime::ExecutionRecord& record) = 0;

  /// Plans a retrieval request for artifacts already recorded in the
  /// history (scenario 2). Default: NotImplemented.
  virtual Result<Planned> PlanRetrieval(
      const std::vector<std::string>& artifact_names);

  /// Plans a set of related pipelines jointly as one merged hypergraph
  /// (core/batch_planner.h) — the multi-query path for hyperparameter
  /// sweeps. Default: NotImplemented; callers fall back to the
  /// sequential per-pipeline loop, so baselines keep their behavior.
  virtual Result<BatchPlanner::Planned> PlanPipelineBatch(
      const std::vector<Pipeline>& pipelines);

  /// Applies the materialization policy ONCE for a whole executed batch,
  /// with every member's payloads and the batch-wide access statistics
  /// visible to the decision. Default: NotImplemented.
  virtual Status AfterBatchExecution(
      const std::vector<Pipeline>& pipelines,
      const BatchPlanner::Planned& planned,
      const Runtime::BatchExecutionRecord& record);

  /// Re-plans a degraded augmentation during execution-layer recovery
  /// (the runtime dropped dead load edges after storage faults). Default:
  /// linear-time greedy search — always feasible, no optimality guarantee.
  /// HyppoMethod overrides this with its configured search strategy.
  virtual Result<Plan> ReplanAugmentation(const Augmentation& aug);

  /// Binds ReplanAugmentation as a Runtime::Replanner, so the scenario
  /// loop can pass `method.MakeReplanner()` into ExecuteAndRecord.
  Runtime::Replanner MakeReplanner();

  Runtime& runtime() { return *runtime_; }

 protected:
  Runtime* runtime_;
};

}  // namespace hyppo::core

#endif  // HYPPO_CORE_METHOD_H_
