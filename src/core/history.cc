#include "core/history.h"

#include <algorithm>
#include <cmath>

namespace hyppo::core {

History::History() {
  // The graph constructor creates the source node s; mirror it so the
  // index covers every named node from the start.
  IndexArtifact(graph_.artifact(graph_.source()).name, graph_.source());
}

NodeId History::Observe(const ArtifactInfo& info) {
  auto it = index_.artifact_by_name.find(info.name);
  if (it != index_.artifact_by_name.end()) {
    const NodeId existing = it->second;
    // Refresh metadata with the latest (typically observed) values. The
    // size of a *materialized* artifact is frozen: it was charged against
    // the storage budget at Put time with its measured size, and letting
    // a later plan-time estimate overwrite it would silently desync the
    // history from the store's byte accounting. It thaws on eviction.
    EnsureRecords();
    ArtifactInfo& stored = graph_.artifact(existing);
    if (info.size_bytes > 0 && !IsMaterialized(existing)) {
      stored.size_bytes = info.size_bytes;
    }
    if (info.rows > 0) {
      stored.rows = info.rows;
      stored.cols = info.cols;
    }
    return existing;
  }
  NodeId node = graph_.AddArtifact(info).ValueOrDie();
  EnsureRecords();
  IndexArtifact(info.name, node);
  return node;
}

void History::IndexTask(std::string signature, EdgeId edge) {
  index_.task_by_signature.emplace(std::move(signature), edge);
  index_.tasks_by_logical_op[graph_.task(edge).logical_op].push_back(edge);
}

Result<EdgeId> History::ObserveTask(const TaskInfo& info,
                                    const std::vector<NodeId>& tails,
                                    const std::vector<NodeId>& heads,
                                    double seconds) {
  // Deduplicate by signature: the same task re-executed does not add a
  // parallel edge. Built to match PipelineGraph::TaskSignature exactly,
  // so the augmenter can probe HasTaskSignature with signatures computed
  // on the augmentation side.
  TaskInfo copy = info;
  std::string signature = copy.logical_op;
  signature += '|';
  signature += TaskTypeToString(copy.type);
  signature += '|';
  signature += copy.config.ToString();
  signature += '|';
  signature += copy.impl;
  signature += '|';
  for (NodeId t : tails) {
    signature += graph_.artifact(t).name;
    signature += ',';
  }
  signature += "->";
  for (NodeId h : heads) {
    signature += graph_.artifact(h).name;
    signature += ',';
  }
  EdgeId edge = kInvalidEdge;
  auto it = index_.task_by_signature.find(signature);
  if (it != index_.task_by_signature.end()) {
    edge = it->second;
  } else {
    HYPPO_ASSIGN_OR_RETURN(edge, graph_.AddTask(std::move(copy), tails, heads));
    IndexTask(std::move(signature), edge);
    EnsureEdgeStats();
  }
  if (seconds >= 0.0) {
    EdgeStats& stats = edge_stats_[static_cast<size_t>(edge)];
    stats.total_seconds += seconds;
    ++stats.count;
  }
  return edge;
}

Result<EdgeId> History::RegisterSourceData(NodeId node) {
  EnsureRecords();
  ArtifactRecord& rec = record(node);
  if (rec.load_edge != kInvalidEdge) {
    return rec.load_edge;
  }
  HYPPO_ASSIGN_OR_RETURN(EdgeId edge, graph_.AddLoadTask(node));
  EnsureEdgeStats();
  rec.load_edge = edge;
  rec.materialized = true;  // retrievable from its source location
  if (!IsSourceData(node)) {
    index_.materialized.insert(node);
  }
  return edge;
}

void History::RecordAccess(NodeId node, double now_seconds) {
  EnsureRecords();
  ArtifactRecord& rec = record(node);
  ++rec.access_count;
  rec.last_access_seconds = now_seconds;
}

void History::RecordComputeSeconds(NodeId node, double seconds) {
  EnsureRecords();
  ArtifactRecord& rec = record(node);
  rec.compute_seconds =
      (rec.compute_seconds * static_cast<double>(rec.compute_observations) +
       seconds) /
      static_cast<double>(rec.compute_observations + 1);
  ++rec.compute_observations;
}

Status History::MarkMaterialized(NodeId node) {
  EnsureRecords();
  ArtifactRecord& rec = record(node);
  if (rec.materialized) {
    return Status::OK();
  }
  HYPPO_ASSIGN_OR_RETURN(EdgeId edge, graph_.AddLoadTask(node));
  EnsureEdgeStats();
  rec.load_edge = edge;
  rec.materialized = true;
  if (!IsSourceData(node)) {
    index_.materialized.insert(node);
  }
  return Status::OK();
}

Status History::EvictMaterialized(NodeId node) {
  EnsureRecords();
  if (IsSourceData(node)) {
    return Status::FailedPrecondition(
        "data sources are not candidates for eviction");
  }
  ArtifactRecord& rec = record(node);
  if (!rec.materialized) {
    return Status::FailedPrecondition("artifact is not materialized");
  }
  HYPPO_RETURN_NOT_OK(graph_.RemoveTask(rec.load_edge));
  rec.load_edge = kInvalidEdge;
  rec.materialized = false;
  ++rec.version;
  index_.materialized.erase(node);
  return Status::OK();
}

Result<NodeId> History::FindArtifact(const std::string& name) const {
  auto it = index_.artifact_by_name.find(name);
  if (it == index_.artifact_by_name.end()) {
    return Status::NotFound("no artifact named '" + name + "'");
  }
  return it->second;
}

const std::vector<EdgeId>& History::TasksForLogicalOp(
    const std::string& op) const {
  static const std::vector<EdgeId> kEmpty;
  auto it = index_.tasks_by_logical_op.find(op);
  return it == index_.tasks_by_logical_op.end() ? kEmpty : it->second;
}

namespace {

/// Epoch-marked traversal scratch for CollectBackwardRelevantEdges.
/// Thread-local (not a History member) so concurrent planning sessions —
/// which reach the traversal under the catalog lock's *reader* side —
/// never share or race on it, and History stays freely movable. Sharing
/// one scratch across History objects on a thread is safe: cells are
/// valid only while they hold the thread's current epoch.
struct MarkScratch {
  std::vector<uint32_t> node_mark;
  std::vector<uint32_t> edge_mark;
  uint32_t epoch = 0;
};

}  // namespace

std::vector<EdgeId> History::CollectBackwardRelevantEdges(
    const std::vector<NodeId>& matched) const {
  static thread_local MarkScratch scratch;
  const Hypergraph& hg = graph_.hypergraph();
  std::vector<uint32_t>& node_mark = scratch.node_mark;
  std::vector<uint32_t>& edge_mark = scratch.edge_mark;
  node_mark.resize(static_cast<size_t>(hg.num_nodes()), 0);
  edge_mark.resize(static_cast<size_t>(hg.num_edge_slots()), 0);
  if (++scratch.epoch == 0) {
    // Epoch wrapped: stale cells could alias the new epoch, so pay one
    // full clear every 2^32 calls.
    std::fill(node_mark.begin(), node_mark.end(), 0u);
    std::fill(edge_mark.begin(), edge_mark.end(), 0u);
    scratch.epoch = 1;
  }
  const uint32_t epoch = scratch.epoch;
  std::vector<NodeId> stack;
  std::vector<EdgeId> out;
  for (NodeId v : matched) {
    if (hg.IsValidNode(v) && node_mark[static_cast<size_t>(v)] != epoch) {
      node_mark[static_cast<size_t>(v)] = epoch;
      stack.push_back(v);
    }
  }
  while (!stack.empty()) {
    const NodeId v = stack.back();
    stack.pop_back();
    for (EdgeId e : hg.bstar(v)) {
      if (!hg.IsLiveEdge(e) || edge_mark[static_cast<size_t>(e)] == epoch) {
        continue;
      }
      edge_mark[static_cast<size_t>(e)] = epoch;
      out.push_back(e);
      for (NodeId t : hg.edge(e).tail) {
        if (node_mark[static_cast<size_t>(t)] != epoch) {
          node_mark[static_cast<size_t>(t)] = epoch;
          stack.push_back(t);
        }
      }
    }
  }
  // Ascending edge order keeps downstream splicing deterministic and
  // byte-identical to the historical full-scan path.
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<NodeId> History::MaterializedArtifacts() const {
  return {index_.materialized.begin(), index_.materialized.end()};
}

int64_t History::MaterializedBytes() const {
  int64_t bytes = 0;
  for (NodeId v : index_.materialized) {
    bytes += graph_.artifact(v).size_bytes;
  }
  return bytes;
}

double History::ObservedTaskSeconds(EdgeId edge, double fallback) const {
  if (static_cast<size_t>(edge) >= edge_stats_.size()) {
    return fallback;
  }
  const EdgeStats& stats = edge_stats_[static_cast<size_t>(edge)];
  if (stats.count == 0) {
    return fallback;
  }
  return stats.total_seconds / static_cast<double>(stats.count);
}

bool History::HasTaskObservation(EdgeId edge) const {
  return static_cast<size_t>(edge) < edge_stats_.size() &&
         edge_stats_[static_cast<size_t>(edge)].count > 0;
}

std::pair<double, int64_t> History::TaskObservation(EdgeId edge) const {
  if (static_cast<size_t>(edge) >= edge_stats_.size()) {
    return {0.0, 0};
  }
  const EdgeStats& stats = edge_stats_[static_cast<size_t>(edge)];
  return {stats.total_seconds, stats.count};
}

Result<History::CompactionStats> History::Compact(
    const CompactionOptions& options, double now_seconds) {
  CompactionStats stats;
  stats.nodes_before = num_artifacts();
  stats.nodes_after = stats.nodes_before;
  if (options.max_nodes <= 0 || num_artifacts() <= options.max_nodes) {
    return stats;
  }
  const double fraction =
      std::min(1.0, std::max(0.0, options.retain_fraction));
  const int32_t target = std::max(
      1, static_cast<int32_t>(static_cast<double>(options.max_nodes) *
                              fraction));

  // Partition non-source nodes into protected (data sources and
  // materialized artifacts survive unconditionally: they back load edges
  // the store still honours) and eviction candidates.
  std::vector<NodeId> kept;
  std::vector<NodeId> candidates;
  for (NodeId v = 1; v < graph_.num_artifacts(); ++v) {
    if (IsSourceData(v) || record(v).materialized ||
        (options.protect_names != nullptr &&
         options.protect_names->count(graph_.artifact(v).name) > 0)) {
      kept.push_back(v);
    } else {
      candidates.push_back(v);
    }
  }

  const int32_t slots =
      std::max(0, target - static_cast<int32_t>(kept.size()));
  if (static_cast<int32_t>(candidates.size()) > slots) {
    // Pareto retention over (reuse count, observed compute seconds,
    // recency). Exact skylines are O(n^2); instead retain the frontier's
    // per-criterion extreme points (top-K anchors, K = slots/8) and fill
    // the remaining slots by a max-normalised scalarized score — every
    // per-criterion maximum is provably retained, the rest approximates
    // the dominated-volume order.
    struct Scored {
      NodeId node;
      double access = 0.0;
      double compute = 0.0;
      double recency = 0.0;
      double combined = 0.0;
    };
    std::vector<Scored> scored;
    scored.reserve(candidates.size());
    double max_access = 0.0, max_compute = 0.0, max_recency = 0.0;
    for (NodeId v : candidates) {
      const ArtifactRecord& rec = record(v);
      Scored s;
      s.node = v;
      s.access = static_cast<double>(rec.access_count);
      s.compute = rec.compute_seconds;
      // Age decays linearly toward 0; never-accessed nodes stay at 0.
      s.recency =
          rec.access_count > 0
              ? 1.0 / (1.0 + std::max(0.0, now_seconds -
                                               rec.last_access_seconds))
              : 0.0;
      max_access = std::max(max_access, s.access);
      max_compute = std::max(max_compute, s.compute);
      max_recency = std::max(max_recency, s.recency);
      scored.push_back(s);
    }
    for (Scored& s : scored) {
      s.combined = (max_access > 0.0 ? s.access / max_access : 0.0) +
                   (max_compute > 0.0 ? s.compute / max_compute : 0.0) +
                   (max_recency > 0.0 ? s.recency / max_recency : 0.0);
    }
    const int32_t anchors = std::max(1, slots / 8);
    std::vector<char> retained(scored.size(), 0);
    int32_t retained_count = 0;
    auto retain_top = [&](auto key) {
      std::vector<size_t> order(scored.size());
      for (size_t i = 0; i < order.size(); ++i) order[i] = i;
      std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        const double ka = key(scored[a]);
        const double kb = key(scored[b]);
        if (ka != kb) return ka > kb;
        // Canonical names are the stable identity across rebuilds; node
        // ids are not (they are re-assigned below).
        return graph_.artifact(scored[a].node).name <
               graph_.artifact(scored[b].node).name;
      });
      int32_t taken = 0;
      for (size_t i : order) {
        if (taken >= anchors || retained_count >= slots) break;
        ++taken;
        if (!retained[i]) {
          retained[i] = 1;
          ++retained_count;
        }
      }
    };
    retain_top([](const Scored& s) { return s.access; });
    retain_top([](const Scored& s) { return s.compute; });
    retain_top([](const Scored& s) { return s.recency; });
    std::vector<size_t> order(scored.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      if (scored[a].combined != scored[b].combined) {
        return scored[a].combined > scored[b].combined;
      }
      return graph_.artifact(scored[a].node).name <
             graph_.artifact(scored[b].node).name;
    });
    for (size_t i : order) {
      if (retained_count >= slots) break;
      if (!retained[i]) {
        retained[i] = 1;
        ++retained_count;
      }
    }
    for (size_t i = 0; i < scored.size(); ++i) {
      if (retained[i]) {
        kept.push_back(scored[i].node);
      }
    }
  } else {
    kept.insert(kept.end(), candidates.begin(), candidates.end());
  }
  std::sort(kept.begin(), kept.end());

  // Rebuild a fresh history from the retained nodes; hypergraph node and
  // edge slots cannot be reclaimed in place (the structure is
  // append-only), so the survivors are replayed through the public
  // mutators — which also rebuilds the index from scratch.
  const int32_t edges_before = graph_.num_tasks();
  History fresh;
  std::vector<NodeId> to_fresh(static_cast<size_t>(graph_.num_artifacts()),
                               kInvalidNode);
  to_fresh[static_cast<size_t>(graph_.source())] = fresh.graph_.source();
  for (NodeId v : kept) {
    const NodeId nv = fresh.Observe(graph_.artifact(v));
    to_fresh[static_cast<size_t>(v)] = nv;
    const ArtifactRecord& old_rec = record(v);
    ArtifactRecord& new_rec = fresh.record(nv);
    new_rec.compute_seconds = old_rec.compute_seconds;
    new_rec.compute_observations = old_rec.compute_observations;
    new_rec.access_count = old_rec.access_count;
    new_rec.last_access_seconds = old_rec.last_access_seconds;
    new_rec.version = old_rec.version;
    if (old_rec.materialized) {
      if (IsSourceData(v)) {
        HYPPO_RETURN_NOT_OK(fresh.RegisterSourceData(nv).status());
      } else {
        HYPPO_RETURN_NOT_OK(fresh.MarkMaterialized(nv));
      }
    }
  }
  for (EdgeId e : graph_.hypergraph().LiveEdges()) {
    if (graph_.task(e).type == TaskType::kLoad) {
      continue;  // load edges were re-derived from materialization state
    }
    bool alive = true;
    std::vector<NodeId> tails;
    std::vector<NodeId> heads;
    for (NodeId t : graph_.ordered_tail(e)) {
      const NodeId nt = to_fresh[static_cast<size_t>(t)];
      if (nt == kInvalidNode) {
        alive = false;
        break;
      }
      tails.push_back(nt);
    }
    if (alive) {
      for (NodeId h : graph_.ordered_head(e)) {
        const NodeId nh = to_fresh[static_cast<size_t>(h)];
        if (nh == kInvalidNode) {
          alive = false;
          break;
        }
        heads.push_back(nh);
      }
    }
    if (!alive) {
      continue;  // an endpoint was evicted; the derivation goes with it
    }
    HYPPO_ASSIGN_OR_RETURN(
        const EdgeId ne,
        fresh.ObserveTask(graph_.task(e), tails, heads, /*seconds=*/-1.0));
    fresh.edge_stats_[static_cast<size_t>(ne)] =
        edge_stats_[static_cast<size_t>(e)];
  }
  stats.nodes_after = fresh.num_artifacts();
  stats.nodes_dropped = stats.nodes_before - stats.nodes_after;
  stats.edges_dropped = edges_before - fresh.graph_.num_tasks();
  *this = std::move(fresh);
  return stats;
}

}  // namespace hyppo::core
