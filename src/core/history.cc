#include "core/history.h"

namespace hyppo::core {

NodeId History::Observe(const ArtifactInfo& info) {
  Result<NodeId> existing = graph_.FindArtifact(info.name);
  if (existing.ok()) {
    // Refresh metadata with the latest (typically observed) values. The
    // size of a *materialized* artifact is frozen: it was charged against
    // the storage budget at Put time with its measured size, and letting
    // a later plan-time estimate overwrite it would silently desync the
    // history from the store's byte accounting. It thaws on eviction.
    EnsureRecords();
    ArtifactInfo& stored = graph_.artifact(*existing);
    if (info.size_bytes > 0 && !IsMaterialized(*existing)) {
      stored.size_bytes = info.size_bytes;
    }
    if (info.rows > 0) {
      stored.rows = info.rows;
      stored.cols = info.cols;
    }
    return *existing;
  }
  NodeId node = graph_.AddArtifact(info).ValueOrDie();
  EnsureRecords();
  return node;
}

Result<EdgeId> History::ObserveTask(const TaskInfo& info,
                                    const std::vector<NodeId>& tails,
                                    const std::vector<NodeId>& heads,
                                    double seconds) {
  // Deduplicate by signature: the same task re-executed does not add a
  // parallel edge.
  TaskInfo copy = info;
  std::string signature = copy.logical_op;
  signature += '|';
  signature += TaskTypeToString(copy.type);
  signature += '|';
  signature += copy.config.ToString();
  signature += '|';
  signature += copy.impl;
  signature += '|';
  for (NodeId t : tails) {
    signature += graph_.artifact(t).name;
    signature += ',';
  }
  signature += "->";
  for (NodeId h : heads) {
    signature += graph_.artifact(h).name;
    signature += ',';
  }
  EdgeId edge = kInvalidEdge;
  auto it = edge_by_signature_.find(signature);
  if (it != edge_by_signature_.end()) {
    edge = it->second;
  } else {
    HYPPO_ASSIGN_OR_RETURN(edge, graph_.AddTask(std::move(copy), tails, heads));
    edge_by_signature_.emplace(std::move(signature), edge);
    EnsureEdgeStats();
  }
  if (seconds >= 0.0) {
    EdgeStats& stats = edge_stats_[static_cast<size_t>(edge)];
    stats.total_seconds += seconds;
    ++stats.count;
  }
  return edge;
}

Result<EdgeId> History::RegisterSourceData(NodeId node) {
  EnsureRecords();
  ArtifactRecord& rec = record(node);
  if (rec.load_edge != kInvalidEdge) {
    return rec.load_edge;
  }
  HYPPO_ASSIGN_OR_RETURN(EdgeId edge, graph_.AddLoadTask(node));
  EnsureEdgeStats();
  rec.load_edge = edge;
  rec.materialized = true;  // retrievable from its source location
  return edge;
}

void History::RecordAccess(NodeId node, double now_seconds) {
  EnsureRecords();
  ArtifactRecord& rec = record(node);
  ++rec.access_count;
  rec.last_access_seconds = now_seconds;
}

void History::RecordComputeSeconds(NodeId node, double seconds) {
  EnsureRecords();
  ArtifactRecord& rec = record(node);
  rec.compute_seconds =
      (rec.compute_seconds * static_cast<double>(rec.compute_observations) +
       seconds) /
      static_cast<double>(rec.compute_observations + 1);
  ++rec.compute_observations;
}

Status History::MarkMaterialized(NodeId node) {
  EnsureRecords();
  ArtifactRecord& rec = record(node);
  if (rec.materialized) {
    return Status::OK();
  }
  HYPPO_ASSIGN_OR_RETURN(EdgeId edge, graph_.AddLoadTask(node));
  EnsureEdgeStats();
  rec.load_edge = edge;
  rec.materialized = true;
  return Status::OK();
}

Status History::EvictMaterialized(NodeId node) {
  EnsureRecords();
  if (IsSourceData(node)) {
    return Status::FailedPrecondition(
        "data sources are not candidates for eviction");
  }
  ArtifactRecord& rec = record(node);
  if (!rec.materialized) {
    return Status::FailedPrecondition("artifact is not materialized");
  }
  HYPPO_RETURN_NOT_OK(graph_.RemoveTask(rec.load_edge));
  rec.load_edge = kInvalidEdge;
  rec.materialized = false;
  ++rec.version;
  return Status::OK();
}

std::vector<NodeId> History::MaterializedArtifacts() const {
  std::vector<NodeId> nodes;
  for (NodeId v = 1; v < graph_.num_artifacts(); ++v) {
    if (static_cast<size_t>(v) < records_.size() && record(v).materialized &&
        !IsSourceData(v)) {
      nodes.push_back(v);
    }
  }
  return nodes;
}

int64_t History::MaterializedBytes() const {
  int64_t bytes = 0;
  for (NodeId v : MaterializedArtifacts()) {
    bytes += graph_.artifact(v).size_bytes;
  }
  return bytes;
}

double History::ObservedTaskSeconds(EdgeId edge, double fallback) const {
  if (static_cast<size_t>(edge) >= edge_stats_.size()) {
    return fallback;
  }
  const EdgeStats& stats = edge_stats_[static_cast<size_t>(edge)];
  if (stats.count == 0) {
    return fallback;
  }
  return stats.total_seconds / static_cast<double>(stats.count);
}

bool History::HasTaskObservation(EdgeId edge) const {
  return static_cast<size_t>(edge) < edge_stats_.size() &&
         edge_stats_[static_cast<size_t>(edge)].count > 0;
}

std::pair<double, int64_t> History::TaskObservation(EdgeId edge) const {
  if (static_cast<size_t>(edge) >= edge_stats_.size()) {
    return {0.0, 0};
  }
  const EdgeStats& stats = edge_stats_[static_cast<size_t>(edge)];
  return {stats.total_seconds, stats.count};
}

}  // namespace hyppo::core
