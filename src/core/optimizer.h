#ifndef HYPPO_CORE_OPTIMIZER_H_
#define HYPPO_CORE_OPTIMIZER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/augmenter.h"

namespace hyppo::core {

/// \brief An execution plan: a minimal subhypergraph of the augmentation
/// that B-connects the source to every target (paper §III-C5).
struct Plan {
  std::vector<EdgeId> edges;
  /// Total optimization weight (seconds or EUR, per the augmentation's
  /// objective).
  double cost = 0.0;
  /// Estimated duration in seconds.
  double seconds = 0.0;
};

/// \brief The plan generator (paper §IV-E): solves Problem 1 by searching
/// backwards from the targets to the source over the augmentation.
///
/// Implements Algorithm 1 (OPTIMIZE) with Algorithm 2 (EXPAND). The data
/// structure Q is selectable: a LIFO stack (OPTIMIZE-STACK), a priority
/// queue keyed by partial cost (OPTIMIZE-PRIORITY), the linear-time greedy
/// variant, an A* extension with an admissible lower bound (the
/// future-work direction of §IV-E, built here as an extension and
/// evaluated in the ablation benches), and a parallel best-first engine
/// (kParallel): worker threads pull states from worker-local open lists
/// with work sharing through a global heap, prune against a shared atomic
/// incumbent bound, deduplicate through a sharded dominance table keyed on
/// the full (visited, frontier) state, and recycle state allocations
/// through per-worker pools. See docs/OPTIMIZER.md.
class PlanGenerator {
 public:
  enum class Strategy { kStack, kPriority, kGreedy, kAStar, kParallel };

  struct Options {
    Strategy strategy = Strategy::kPriority;
    /// Exploration knob c_exp ∈ [0,1]: mo = ceil(#new_tasks × c_exp) new
    /// tasks are forced into the initial plan (paper §IV-E,
    /// exploration vs exploitation).
    double exploration = 0.0;
    /// Extension (ablation): memoize the best cost per
    /// (visited, frontier) state and prune dominated partial plans.
    /// Keys are full states, so hash collisions can never merge two
    /// distinct states (that would unsoundly prune an optimal plan).
    /// kParallel always deduplicates — a transposition table is integral
    /// to the parallel engine — so this flag only affects the serial
    /// strategies.
    bool dominance_pruning = false;
    /// Worker threads for Strategy::kParallel; kPriority and kAStar are
    /// also routed to the parallel engine when this is > 1. 0 means "all
    /// hardware threads"; 1 keeps the serial engines.
    int num_threads = 1;
    /// Safety valve on EXPAND invocations; the search reports
    /// ResourceExhausted beyond it.
    int64_t max_expansions = 20'000'000;
    /// Debug-mode assertion: run the analysis verifier over every plan
    /// before returning it (src/analysis/graph_checks.h) and fail with
    /// Internal if an invariant is violated. Off by default in production;
    /// tests and the workload scenarios turn it on. Applies to every
    /// strategy, including plans returned by the parallel engine.
    bool verify_plans = false;
  };

  struct SearchStats {
    int64_t plans_examined = 0;
    int64_t expansions = 0;
    int64_t pruned_by_bound = 0;
    int64_t pruned_by_dominance = 0;
    /// Worker threads the search actually ran with (1 for the serial
    /// engines).
    int threads_used = 1;
  };

  /// \brief Precomputed admissible lower bounds over an augmentation,
  /// reusable across every OptimizeForTargets call on the SAME
  /// augmentation (the bounds depend only on the graph and edge weights,
  /// not on the targets). OptimizePerTarget computes them once instead of
  /// re-running the O(V·E) fixed point per target.
  struct LowerBounds {
    /// dist(v): lower bound on the cost of any B-derivation of v from the
    /// source (min over incoming edges of weight + max over tail dists).
    std::vector<double> derive_cost;
    /// Cheapest live incoming edge weight per node: any completion must
    /// still pay at least this much for a frontier node's final edge,
    /// even when every tail is already planned.
    std::vector<double> min_incoming;
    bool empty() const { return derive_cost.empty(); }
  };

  static LowerBounds ComputeLowerBounds(const Augmentation& aug);

  static const char* StrategyToString(Strategy strategy);

  /// Finds a minimum-cost plan from the source to `aug.targets`.
  /// kStack/kPriority/kAStar/kParallel return the optimal plan; kGreedy
  /// returns a feasible plan in linear time with no optimality guarantee.
  Result<Plan> Optimize(const Augmentation& aug, const Options& options,
                        SearchStats* stats = nullptr) const;

  /// Convenience: optimize a single-artifact retrieval request.
  /// `bounds`, when non-null, must be ComputeLowerBounds(aug) — passing
  /// them skips the per-call fixed point for the bound-driven strategies.
  Result<Plan> OptimizeForTargets(const Augmentation& aug,
                                  const std::vector<NodeId>& targets,
                                  const Options& options,
                                  SearchStats* stats = nullptr,
                                  const LowerBounds* bounds = nullptr) const;

  /// \brief The paper's frontier-reduction heuristic (§IV-E "the
  /// influence of f can be reduced by creating individual plans for each
  /// request and combining them"): solves each target independently and
  /// unions the plans. Linear in the number of targets, but the union can
  /// be suboptimal — shared sub-derivations are not coordinated across
  /// targets (a test pins such a case).
  Result<Plan> OptimizePerTarget(const Augmentation& aug,
                                 const Options& options,
                                 SearchStats* stats = nullptr) const;

  /// \brief Exhaustive oracle used by tests: enumerates every minimal
  /// plan via unbounded stack search without pruning and returns the best.
  /// Exponential; only for small graphs.
  Result<Plan> BruteForce(const Augmentation& aug) const;
};

/// \brief Structural verification of one plan against its augmentation —
/// the debug assertion behind Options::verify_plans, also used by the
/// executor. Returns Internal with the full diagnostic listing on failure.
Status VerifyPlanStructure(const Augmentation& aug,
                           const std::vector<NodeId>& targets,
                           const Plan& plan);

/// \brief Structural verification of a (possibly degraded) augmentation:
/// hypergraph invariants, weight-vector sizing, and B-reachability of
/// every target from the source. The runtime's recovery loop runs this
/// after dropping dead load edges, before re-planning.
Status VerifyAugmentationStructure(const Augmentation& aug);

}  // namespace hyppo::core

#endif  // HYPPO_CORE_OPTIMIZER_H_
