#ifndef HYPPO_CORE_RUNTIME_H_
#define HYPPO_CORE_RUNTIME_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/augmenter.h"
#include "core/batch_planner.h"
#include "core/cost_model.h"
#include "core/dictionary.h"
#include "core/executor.h"
#include "core/history.h"
#include "core/monitor.h"
#include "storage/artifact_store.h"
#include "storage/fault_injection.h"

namespace hyppo::core {

/// \brief Options shared by every optimization method in an experiment.
struct RuntimeOptions {
  /// Storage budget B in bytes for materialized artifacts.
  int64_t storage_budget_bytes = 64ll << 20;
  /// Simulation mode: tasks charge estimated durations instead of
  /// executing (see Executor::Options::simulate).
  bool simulate = false;
  /// Worker threads for real execution (see Executor::Options) and for
  /// the optimizer's parallel plan-search engine (HyppoMethod forwards
  /// this into PlanGenerator::Options::num_threads). Use
  /// DefaultParallelism() to size it to the machine.
  int parallelism = 1;
  /// One worker per hardware thread (at least 1 when the hardware
  /// concurrency is unknown).
  static int DefaultParallelism();
  /// Thread bound for intra-task kernel parallelism (ml/kernels): the
  /// executor installs it around every operator call. 0 (default)
  /// inherits `parallelism`. Kernels invoked from the parallel
  /// executor's pool workers fall back to serial regardless, so this
  /// composes with task-level parallelism without oversubscription.
  int kernel_threads = 0;
  PricingModel pricing;
  Augmenter::Objective objective = Augmenter::Objective::kTime;
  /// Debug-mode invariant verification: every plan is checked by the
  /// analysis verifier before execution, and methods that honor the flag
  /// (HyppoMethod) also verify plans as the search returns them. Tests
  /// and the workload scenarios enable this. The recovery loop also
  /// verifies every degraded augmentation before re-planning.
  bool verify_plans = false;
  /// Submit-time static analysis (analysis/static): pipelines are
  /// shape-checked and determinism-linted before any planning, rejecting
  /// malformed submissions fail-fast with source-located diagnostics. A
  /// plan the static pre-check clears also skips the runtime
  /// `verify_plans` re-verification (Monitor::num_plan_checks_skipped),
  /// since the pre-check proves the same invariants.
  bool static_checks = true;
  /// Self-healing bound: how many degrade-and-re-plan rounds one
  /// execution may take after task failures before the first failure
  /// surfaces as an error. 0 disables recovery entirely.
  int max_recovery_attempts = 3;
  /// History growth bound: when the history holds more than this many
  /// artifacts after an execution, Pareto compaction (History::Compact)
  /// trims it back to the bound, keeping materialized, recently accessed,
  /// expensive-to-recompute, and frequently reused artifacts. <= 0
  /// (default) disables compaction — the history grows without bound.
  int32_t history_max_artifacts = 0;
  /// Fraction of `history_max_artifacts` that survives one compaction
  /// (hysteresis: compacting below the trigger keeps compaction from
  /// firing on every subsequent execution).
  double history_retain_fraction = 0.75;
  /// Directory of a durable artifact store. Empty (default) keeps the
  /// session in memory; non-empty opens/creates a disk-backed tiered
  /// store there (storage/disk_store.h behind a memory front cache) and
  /// reloads the previous session's history + materialized set on
  /// construction — check Runtime::session_status() before use.
  std::string store_dir;
  /// Batch multi-query optimization (core/batch_planner.h): when a set of
  /// pipelines is submitted together (HyppoSystem::RunBatch, a serving
  /// sweep request), fold them into one merged hypergraph, augment and
  /// bound once, and execute members with cross-member payload seeding so
  /// shared prefixes run once per batch. Off = each member is planned and
  /// executed independently (the sequential baseline the sweep bench
  /// compares against).
  bool batch_planning = true;
  /// Calibrate formula-based cost estimates against the machine's actual
  /// kernel throughput: at construction the runtime times a small GEMM
  /// through the kernel dispatcher (ml::kernels::MeasureGemmGflops) and
  /// installs measured/baseline as the estimator's throughput scale, so
  /// CostHint-based plan costs track the active kernel tier (simd vs
  /// blocked) instead of assuming the blocked-tier plateau the formulas
  /// were tuned on. Off by default: the probe costs tens of milliseconds
  /// and makes plan costs machine-dependent, which deterministic tests
  /// and simulations do not want.
  bool calibrate_kernel_costs = false;
};

/// \brief Shared execution state: catalog (dictionary + history), cost
/// estimator, monitor, artifact store, executor, and dataset sources.
///
/// HYPPO and every baseline method operate against the same Runtime, so
/// experiment comparisons differ only in planning and materialization
/// policy — exactly the paper's setup.
class Runtime {
 public:
  /// Produces a fresh plan for a degraded augmentation during recovery.
  /// Typically Method::ReplanAugmentation bound to the active method, so
  /// recovery re-optimizes with the same strategy that planned the
  /// original run.
  using Replanner = std::function<Result<Plan>(const Augmentation&)>;

  explicit Runtime(RuntimeOptions options = RuntimeOptions(),
                   Dictionary dictionary = Dictionary::FromRegistry(
                       ml::OperatorRegistry::Global()));

  const RuntimeOptions& options() const { return options_; }
  const Dictionary& dictionary() const { return dictionary_; }
  History& history() { return history_; }
  const History& history() const { return history_; }
  CostEstimator& estimator() { return estimator_; }
  Monitor& monitor() { return monitor_; }
  const Monitor& monitor() const { return monitor_; }
  storage::ArtifactStore& store() { return *store_; }
  const storage::ArtifactStore& store() const { return *store_; }

  /// OK unless opening the durable store or restoring the previous
  /// session failed (constructors cannot return a Status). An in-memory
  /// runtime is always OK.
  const Status& session_status() const { return session_status_; }
  const Augmenter& augmenter() const { return augmenter_; }
  const Executor& executor() const { return *executor_; }

  /// Registers a raw dataset the executor can resolve by id.
  void RegisterDataset(const std::string& dataset_id, ml::DatasetPtr data);

  /// Registers a lazy dataset source (generated on first load).
  void RegisterDatasetGenerator(
      const std::string& dataset_id,
      std::function<Result<ml::DatasetPtr>()> generator);

  /// Arms chaos mode: wraps the store in a storage::FaultInjectingStore
  /// and hands the injector to the executor's operator/resolver hooks.
  /// Idempotent per runtime; call before executing. Persistence and the
  /// materializer keep talking to the undecorated store.
  void EnableFaultInjection(const storage::FaultPlan& plan);

  /// The active injector, or null when fault injection is disabled.
  storage::FaultInjector* fault_injector() { return fault_injector_.get(); }

  /// Serving hook (serving::SessionManager): when set, every
  /// catalog-mutating section of ExecuteAndRecord — pipeline-structure
  /// recording, post-execution history/estimator observations, recovery
  /// degradation, and Pareto compaction — takes the writer side of this
  /// lock. Concurrent sessions plan under the reader side against a
  /// consistent history snapshot while executions commit serially; task
  /// execution itself (operator runs, store I/O) stays outside the lock.
  /// Null (default): single-owner, no locking. The mutex must outlive
  /// every execution.
  void set_catalog_mutex(std::shared_mutex* mutex) { catalog_mutex_ = mutex; }
  std::shared_mutex* catalog_mutex() const { return catalog_mutex_; }

  struct ExecutionRecord {
    /// Charged execution time of the plan in seconds (including recovery
    /// attempts — failed work is billed like the paper's monetary model
    /// bills retried cloud tasks).
    double seconds = 0.0;
    /// Payloads of every artifact produced or loaded, by canonical name.
    std::map<std::string, ArtifactPayload> payloads_by_name;
    /// Degrade-and-re-plan rounds this execution needed (0 = clean run).
    int replans = 0;
    /// Task-level failures absorbed across all attempts.
    int64_t failed_tasks = 0;
    /// Tasks recovery attempts skipped because their payloads survived.
    int64_t recovered_tasks = 0;
    /// Tasks skipped on the first attempt because a batch seed already
    /// held their outputs (cross-member shared-prefix reuse; only set by
    /// RunBatch).
    int64_t seeded_tasks = 0;
  };

  /// Executes `plan` and records everything into the history: artifact
  /// observations (sizes), task observations (durations), access counts
  /// for the pipeline's artifacts, and source-data registrations. The
  /// pipeline's *structure* is recorded even for tasks the plan skipped,
  /// so future augmentations can splice these derivations.
  ///
  /// When tasks fail and `replan` is provided, the runtime self-heals: it
  /// drops the dead load edges from a copy of the augmentation, purges the
  /// rotten artifacts from the store and the history, re-plans over the
  /// degraded augmentation, and re-executes reusing every payload that
  /// survived — bounded by RuntimeOptions::max_recovery_attempts, after
  /// which the first failure's Status is returned. Without a replanner the
  /// first failure surfaces immediately.
  Result<ExecutionRecord> ExecuteAndRecord(const Pipeline& pipeline,
                                           const Augmentation& aug,
                                           const Plan& plan,
                                           const Replanner& replan = nullptr);

  /// Variant for retrieval requests (no defining pipeline; only the plan's
  /// own artifacts are recorded/accessed).
  Result<ExecutionRecord> ExecutePlanOnly(const Augmentation& aug,
                                          const Plan& plan,
                                          const Replanner& replan = nullptr);

  struct BatchExecutionRecord {
    /// Per-member records, in submission order.
    std::vector<ExecutionRecord> members;
    /// Total charged seconds across the batch.
    double seconds = 0.0;
    /// Tasks skipped because an earlier member of the SAME batch already
    /// produced their outputs (in-memory shared-prefix reuse; also
    /// recorded as Monitor::num_shared_prefix_hits).
    int64_t shared_prefix_skips = 0;
  };

  /// Executes a batch planned by BatchPlanner::PlanBatch: member plans run
  /// in submission order over the shared merged augmentation, each seeded
  /// with every payload earlier members produced, so shared-prefix tasks
  /// execute exactly once per batch. Every member pipeline's structure is
  /// recorded up front (per-member access counts are what give shared
  /// artifacts their batch-wide fan-out in the materializer's scoring),
  /// and all artifacts of the merged augmentation are pinned against
  /// History::Compact until the batch commits — a concurrent session's
  /// compaction must not drop statistics an in-flight batch still needs.
  /// `pipelines` are the original members, aligned with `members`.
  Result<BatchExecutionRecord> RunBatch(
      const std::vector<Pipeline>& pipelines, const Augmentation& merged,
      const std::vector<BatchPlanner::MemberPlan>& members,
      const Replanner& replan = nullptr);

  /// Cumulative charged seconds so far — the experiment's logical clock
  /// (drives LRU timestamps). Atomic so concurrent sessions can read it
  /// while one commits.
  double now_seconds() const {
    return cumulative_seconds_.load(std::memory_order_relaxed);
  }

  /// Persists the catalog (history + materialized payloads) to a
  /// directory; a later session — or another user's — can LoadCatalog and
  /// reuse everything (across-experiments reuse, paper §I).
  Status SaveCatalog(const std::string& directory) const;

  /// Replaces this runtime's history and store with a saved catalog.
  Status LoadCatalog(const std::string& directory);

  /// Writes the history snapshot into the durable store directory
  /// (atomically), so a restarted session reloads its materialized set.
  /// Payloads are already durable — the materializer's Puts land on disk
  /// as they happen. No-op for in-memory runtimes.
  Status PersistSession();

 private:
  /// Reloads `<store_dir>/history.hyppo` (if present) and reconciles it
  /// with the recovered store: history entries without a store payload
  /// are evicted, store entries the history does not claim (or whose
  /// size drifted) are dropped.
  Status RestoreSession();
  /// `batch_payloads`, when non-null, is the batch accumulator: its
  /// entries seed the first attempt (tasks whose outputs are all present
  /// are skipped and counted into ExecutionRecord::seeded_tasks), and on
  /// success it is replaced with the union of seed and produced payloads.
  /// Keys are node ids of `aug`, so every member of a batch must execute
  /// against the same merged augmentation's id space.
  Result<ExecutionRecord> ExecuteInternal(
      const Augmentation& aug, const Plan& plan, const Replanner& replan,
      std::map<NodeId, ArtifactPayload>* batch_payloads = nullptr);
  /// Pins canonical artifact names against History::Compact for the
  /// lifetime of an in-flight batch (multiset: overlapping batches pin
  /// independently).
  void PinArtifacts(const std::vector<std::string>& names);
  void UnpinArtifacts(const std::vector<std::string>& names);
  /// Mirrors the pipeline structure into the history without durations.
  Status RecordPipelineStructure(const Pipeline& pipeline);
  /// Degrades `aug` in place after `failures`: dead materialized-artifact
  /// loads lose their load edge and the rotten copies are purged from the
  /// store and the history; everything else is transient and retried.
  Status DegradeAfterFailures(
      const std::vector<Executor::TaskFailure>& failures, Augmentation* aug);

  RuntimeOptions options_;
  Dictionary dictionary_;
  History history_;
  CostEstimator estimator_;
  Monitor monitor_;
  /// InMemoryArtifactStore, or a TieredArtifactStore over a
  /// DiskArtifactStore when options_.store_dir is set. Never replaced
  /// after construction (the executor and fault decorator hold pointers).
  std::unique_ptr<storage::ArtifactStore> store_;
  Status session_status_;
  /// Chaos-mode decorations (EnableFaultInjection); null when disabled.
  std::unique_ptr<storage::FaultInjector> fault_injector_;
  std::unique_ptr<storage::FaultInjectingStore> fault_store_;
  Augmenter augmenter_;
  std::unique_ptr<Executor> executor_;
  std::map<std::string, std::function<Result<ml::DatasetPtr>()>> sources_;
  std::map<std::string, ml::DatasetPtr> resolved_sources_;
  /// Guards the lazy source cache: parallel plan execution may resolve
  /// raw loads concurrently.
  std::mutex sources_mutex_;
  /// Serving catalog lock (see set_catalog_mutex); null = single-owner.
  std::shared_mutex* catalog_mutex_ = nullptr;
  /// Artifact names of in-flight batches, protected from history
  /// compaction (see PinArtifacts). Guarded by pinned_mutex_ because
  /// concurrent sessions' batches pin/unpin while another session's
  /// ExecuteInternal snapshots the set for its compaction call.
  mutable std::mutex pinned_mutex_;
  std::multiset<std::string> pinned_artifacts_;
  /// Mutated only under the catalog writer lock (when one is installed);
  /// atomic so readers need no lock.
  std::atomic<double> cumulative_seconds_{0.0};
};

}  // namespace hyppo::core

#endif  // HYPPO_CORE_RUNTIME_H_
