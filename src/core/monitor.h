#ifndef HYPPO_CORE_MONITOR_H_
#define HYPPO_CORE_MONITOR_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "core/artifact.h"
#include "core/cost_model.h"
#include "core/task.h"

namespace hyppo::core {

/// \brief Execution monitor (paper §IV-F): collects task traces, feeds the
/// cost estimator, and aggregates the per-task-type / per-artifact-kind
/// statistics reported in the paper's Fig. 5 study.
///
/// Thread-safe: concurrent serving sessions (src/serving) record task
/// runs and telemetry outside the catalog lock, so counters are atomics
/// and the aggregate maps are guarded by an internal mutex. The map
/// accessors return references; read them only after concurrent
/// execution has quiesced (end of a scenario / session batch).
class Monitor {
 public:
  explicit Monitor(CostEstimator* estimator = nullptr)
      : estimator_(estimator) {}

  struct Aggregate {
    double total_seconds = 0.0;
    int64_t total_bytes = 0;
    int64_t count = 0;

    double MeanSeconds() const {
      return count > 0 ? total_seconds / static_cast<double>(count) : 0.0;
    }
    double MeanBytes() const {
      return count > 0
                 ? static_cast<double>(total_bytes) / static_cast<double>(count)
                 : 0.0;
    }
  };

  /// Records one executed task; forwards the observation to the cost
  /// estimator when attached.
  void RecordTask(const std::string& impl, TaskType type, int64_t rows,
                  int64_t cols, double seconds);

  /// Records one produced artifact with its observed size and the compute
  /// time attributed to it.
  void RecordArtifact(ArtifactKind kind, int64_t size_bytes,
                      double compute_seconds);

  /// Recovery telemetry (execution-layer self-healing): one replan per
  /// degrade-and-re-optimize round.
  void RecordReplan() { Add(&num_replans_, 1); }
  /// Tasks that errored during execution (before recovery retried them).
  void RecordTaskFailures(int64_t count) { Add(&num_task_failures_, count); }
  /// Tasks a recovery attempt skipped because their payloads survived.
  void RecordRecoveredTasks(int64_t count) {
    Add(&num_recovered_tasks_, count);
  }
  /// Faults injected by an attached storage::FaultInjector.
  void RecordInjectedFaults(int64_t count) {
    Add(&num_injected_faults_, count);
  }
  /// Static-analysis telemetry: one clear per plan the submit-time
  /// pre-check proved well-formed before execution.
  void RecordStaticClear() { Add(&num_static_clears_, 1); }
  /// Runtime plan re-verifications skipped because the static pre-check
  /// already cleared the plan (the fig9b plan-overhead win).
  void RecordPlanCheckSkipped() { Add(&num_plan_checks_skipped_, 1); }
  /// History-index telemetry: augmentation-time equivalence probes that
  /// found (hit) / did not find (miss) an indexed entry.
  void RecordIndexHits(int64_t count) { Add(&num_index_hits_, count); }
  void RecordIndexMisses(int64_t count) { Add(&num_index_misses_, count); }
  /// Search states the optimizer's dominance structure discarded.
  void RecordStatesPruned(int64_t count) { Add(&num_states_pruned_, count); }
  /// History artifacts dropped by History::Compact.
  void RecordHistoryCompacted(int64_t count) {
    Add(&num_history_compacted_, count);
  }
  /// Serving telemetry (src/serving): planned loads of materialized
  /// non-raw artifacts (reuse of earlier work), and the subset whose
  /// artifact a *different* session materialized (cross-session reuse —
  /// the multi-tenant payoff).
  void RecordReuseLoads(int64_t count) { Add(&num_reuse_loads_, count); }
  void RecordCrossSessionLoads(int64_t count) {
    Add(&num_cross_session_loads_, count);
  }
  /// Batch-planning telemetry (core/batch_planner.h): task edges merged
  /// away by cross-pipeline signature dedup when a batch's graphs fold
  /// into one hypergraph, shared-prefix tasks a batch execution skipped
  /// because an earlier member's payload was seeded in, and wall time
  /// spent planning batches (stored at microsecond resolution so the
  /// counter stays a lock-free integer).
  void RecordBatchMergedTasks(int64_t count) {
    Add(&num_batch_merged_tasks_, count);
  }
  void RecordSharedPrefixHits(int64_t count) {
    Add(&num_shared_prefix_hits_, count);
  }
  void RecordBatchPlanSeconds(double seconds) {
    Add(&batch_plan_micros_, static_cast<int64_t>(seconds * 1e6));
  }

  const std::map<TaskType, Aggregate>& by_task_type() const {
    return by_task_type_;
  }
  const std::map<ArtifactKind, Aggregate>& by_artifact_kind() const {
    return by_artifact_kind_;
  }
  int64_t num_task_records() const { return Get(num_task_records_); }
  int64_t num_replans() const { return Get(num_replans_); }
  int64_t num_task_failures() const { return Get(num_task_failures_); }
  int64_t num_recovered_tasks() const { return Get(num_recovered_tasks_); }
  int64_t num_injected_faults() const { return Get(num_injected_faults_); }
  int64_t num_static_clears() const { return Get(num_static_clears_); }
  int64_t num_plan_checks_skipped() const {
    return Get(num_plan_checks_skipped_);
  }
  int64_t num_index_hits() const { return Get(num_index_hits_); }
  int64_t num_index_misses() const { return Get(num_index_misses_); }
  int64_t num_states_pruned() const { return Get(num_states_pruned_); }
  int64_t num_history_compacted() const {
    return Get(num_history_compacted_);
  }
  int64_t num_reuse_loads() const { return Get(num_reuse_loads_); }
  int64_t num_cross_session_loads() const {
    return Get(num_cross_session_loads_);
  }
  int64_t num_batch_merged_tasks() const {
    return Get(num_batch_merged_tasks_);
  }
  int64_t num_shared_prefix_hits() const {
    return Get(num_shared_prefix_hits_);
  }
  double batch_plan_seconds() const {
    return static_cast<double>(Get(batch_plan_micros_)) * 1e-6;
  }

 private:
  static void Add(std::atomic<int64_t>* counter, int64_t count) {
    counter->fetch_add(count, std::memory_order_relaxed);
  }
  static int64_t Get(const std::atomic<int64_t>& counter) {
    return counter.load(std::memory_order_relaxed);
  }

  CostEstimator* estimator_;
  /// Guards the aggregate maps (counters are lock-free atomics).
  mutable std::mutex aggregates_mutex_;
  std::map<TaskType, Aggregate> by_task_type_;
  std::map<ArtifactKind, Aggregate> by_artifact_kind_;
  std::atomic<int64_t> num_task_records_{0};
  std::atomic<int64_t> num_replans_{0};
  std::atomic<int64_t> num_task_failures_{0};
  std::atomic<int64_t> num_recovered_tasks_{0};
  std::atomic<int64_t> num_injected_faults_{0};
  std::atomic<int64_t> num_static_clears_{0};
  std::atomic<int64_t> num_plan_checks_skipped_{0};
  std::atomic<int64_t> num_index_hits_{0};
  std::atomic<int64_t> num_index_misses_{0};
  std::atomic<int64_t> num_states_pruned_{0};
  std::atomic<int64_t> num_history_compacted_{0};
  std::atomic<int64_t> num_reuse_loads_{0};
  std::atomic<int64_t> num_cross_session_loads_{0};
  std::atomic<int64_t> num_batch_merged_tasks_{0};
  std::atomic<int64_t> num_shared_prefix_hits_{0};
  std::atomic<int64_t> batch_plan_micros_{0};
};

}  // namespace hyppo::core

#endif  // HYPPO_CORE_MONITOR_H_
