#ifndef HYPPO_CORE_HYPPO_H_
#define HYPPO_CORE_HYPPO_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/materializer.h"
#include "core/method.h"
#include "core/parser.h"

namespace hyppo::core {

/// \brief The HYPPO method (paper §IV): augments each pipeline with
/// equivalences, reuse opportunities, and materialized-artifact loads;
/// searches the augmentation for the minimum-cost plan; and materializes
/// artifacts by SPF gain under the storage budget.
class HyppoMethod final : public Method {
 public:
  struct Options {
    PlanGenerator::Options search;
    Materializer::Options materialization;
    Augmenter::Options augment;
  };

  explicit HyppoMethod(Runtime* runtime);
  HyppoMethod(Runtime* runtime, Options options);

  std::string name() const override { return "HYPPO"; }

  Result<Planned> PlanPipeline(const Pipeline& pipeline) override;
  Status AfterExecution(const Pipeline& pipeline, const Planned& planned,
                        const Runtime::ExecutionRecord& record) override;
  Result<Planned> PlanRetrieval(
      const std::vector<std::string>& artifact_names) override;
  /// Multi-query optimization: folds the batch into one hypergraph,
  /// augments once, and plans each member against shared lower bounds
  /// (core/batch_planner.h). Feeds the monitor's batch counters.
  Result<BatchPlanner::Planned> PlanPipelineBatch(
      const std::vector<Pipeline>& pipelines) override;
  /// One materialization decision for the whole batch: shared-prefix
  /// artifacts carry fan-out-many access counts by now, so the SPF gain
  /// scores them with their batch-wide benefit.
  Status AfterBatchExecution(
      const std::vector<Pipeline>& pipelines,
      const BatchPlanner::Planned& planned,
      const Runtime::BatchExecutionRecord& record) override;
  /// Recovery re-planning with the same search strategy (and greedy
  /// fallback) the original plan used.
  Result<Plan> ReplanAugmentation(const Augmentation& aug) override;

  const PlanGenerator::SearchStats& last_search_stats() const {
    return last_stats_;
  }

 private:
  Result<Planned> PlanAugmentation(Augmentation aug);

  Options options_;
  PlanGenerator generator_;
  Materializer materializer_;
  PlanGenerator::SearchStats last_stats_;
};

/// \brief User-facing facade: owns a Runtime and a HyppoMethod and exposes
/// the paper's end-to-end loop — submit code, get an optimized plan, run
/// it, and let the history manager materialize artifacts.
class HyppoSystem {
 public:
  struct Options {
    RuntimeOptions runtime;
    HyppoMethod::Options method;
  };

  HyppoSystem();
  explicit HyppoSystem(Options options);

  /// Parses pipeline DSL code (see core/parser.h).
  Result<Pipeline> Parse(const std::string& code, const std::string& id);

  struct RunReport {
    Plan plan;
    /// Charged execution time of the optimized plan, in seconds.
    double execute_seconds = 0.0;
    /// Planning overhead in seconds.
    double optimize_seconds = 0.0;
    /// Estimated time the un-optimized pipeline would have taken.
    double baseline_seconds = 0.0;
    /// Number of tasks in the executed plan.
    int32_t tasks_executed = 0;
    /// Payloads of the pipeline's targets, by canonical name.
    std::map<std::string, ArtifactPayload> target_payloads;
  };

  /// Optimizes, executes, records, and materializes one pipeline.
  Result<RunReport> RunPipeline(const Pipeline& pipeline);

  struct BatchRunReport {
    /// Per-member reports, in submission order. In batch mode each
    /// member's optimize_seconds is its amortized share of the one batch
    /// plan.
    std::vector<RunReport> reports;
    /// Planning overhead for the whole batch (one merged augmentation +
    /// per-member searches in batch mode; summed per-pipeline planning
    /// in the sequential fallback).
    double optimize_seconds = 0.0;
    /// Total charged execution seconds across members.
    double execute_seconds = 0.0;
    /// Batch-mode telemetry (all zero in the sequential fallback):
    /// cross-pipeline task merges, plan edges shared across member
    /// plans, and tasks execution skipped via cross-member seeding.
    int64_t merged_tasks = 0;
    int64_t shared_prefix_hits = 0;
    int64_t shared_prefix_skips = 0;
    /// True when the multi-query path ran (batch_planning on, >= 2
    /// members).
    bool batched = false;
  };

  /// Optimizes and executes a set of related pipelines as one batch (a
  /// hyperparameter sweep): merged plan, seeded execution, one batch-wide
  /// materialization decision. With RuntimeOptions::batch_planning off or
  /// fewer than two members, falls back to the sequential RunPipeline
  /// loop — payloads are byte-identical either way, only cost differs.
  Result<BatchRunReport> RunBatch(const std::vector<Pipeline>& pipelines);

  /// Convenience: parse + run.
  Result<RunReport> RunCode(const std::string& code, const std::string& id);

  /// Scenario-2 style retrieval: derive previously recorded artifacts at
  /// minimum cost.
  Result<RunReport> RetrieveArtifacts(
      const std::vector<std::string>& artifact_names);

  Runtime& runtime() { return *runtime_; }
  HyppoMethod& method() { return *method_; }

  /// Registers a raw dataset source.
  void RegisterDataset(const std::string& dataset_id, ml::DatasetPtr data) {
    runtime_->RegisterDataset(dataset_id, data);
  }

 private:
  std::unique_ptr<Runtime> runtime_;
  std::unique_ptr<HyppoMethod> method_;
};

}  // namespace hyppo::core

#endif  // HYPPO_CORE_HYPPO_H_
