#ifndef HYPPO_CORE_MATERIALIZER_H_
#define HYPPO_CORE_MATERIALIZER_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/augmenter.h"
#include "core/history.h"
#include "storage/artifact_store.h"

namespace hyppo::core {

/// \brief The history manager's materialization policy (paper §III-D2 and
/// §IV-H): given a storage budget B, choose which artifacts to keep
/// materialized so that the expected cost of future pipelines is
/// minimized.
///
/// The default policy is the paper's Smaller-Penalty-First (SPF) gain
///   gain(v) = freq(v) × cost(v) / load(v)
/// optionally weighted by the plan-locality coefficient
///   pl(v) = 1 / e^(1/depth(v)),
/// solved greedily under the budget (the exact formulation, Problem 2, is
/// an expensive MILP). LRU / LFU / SFF scores are provided for the
/// ablation study.
class Materializer {
 public:
  enum class Policy { kSpf, kLru, kLfu, kSff };

  struct Options {
    int64_t budget_bytes = 0;
    Policy policy = Policy::kSpf;
    /// Weight gains by the plan-locality coefficient (§III-D2). Ablation
    /// knob; on by default as in the paper.
    bool use_plan_locality = true;
  };

  struct Decision {
    /// Artifacts to materialize (not currently stored).
    std::vector<NodeId> to_store;
    /// Currently materialized artifacts to evict.
    std::vector<NodeId> to_evict;
    /// Total bytes stored after applying the decision.
    int64_t selected_bytes = 0;
  };

  explicit Materializer(const Augmenter* augmenter) : augmenter_(augmenter) {}

  /// Chooses the artifact set to keep materialized. `storable` contains
  /// the canonical names of artifacts whose payloads are currently
  /// available (just produced or already stored) — only those can be
  /// newly materialized.
  Decision Decide(const History& history,
                  const std::set<std::string>& storable,
                  const Options& options) const;

  /// Applies a decision: updates the history's load edges and moves
  /// payloads in/out of the artifact store. Policy-independent (static):
  /// baseline methods apply their own decisions through it too.
  ///
  /// Failure-atomic: new artifacts are stored *before* anything is
  /// evicted, and a failed Put rolls the already-stored ones back, so an
  /// error leaves history and store exactly as they were (at the price
  /// of transiently holding old + new bytes during the store phase).
  static Status Apply(History& history, storage::ArtifactStore& store,
                      const Decision& decision,
                      const std::map<std::string, ArtifactPayload>& available);

  /// The SPF gain of one artifact (exposed for tests and benches).
  /// Computes the recompute-cost and depth vectors itself — O(V·E); use
  /// the precomputed overload when scoring many nodes.
  double Gain(const History& history, NodeId node,
              const Options& options) const;

  /// SPF gain against precomputed RecomputeCosts() / depth vectors, the
  /// same scoring Decide() uses for its candidate sweep.
  double Gain(const History& history, NodeId node, const Options& options,
              const std::vector<double>& recompute_costs,
              const std::vector<double>& depths) const;

  /// \brief The paper's cost(v) estimate: seconds to *re-compute* each
  /// history artifact if it were evicted, where inputs may be obtained as
  /// cheaply as the current materialization allows (value iteration with
  /// sum-over-tails aggregation; v's own load edge excluded).
  ///
  /// Public because baseline materialization policies (Collab's
  /// experiment-graph utility) score recreation cost the same way.
  std::vector<double> RecomputeCosts(const History& history) const;

 private:
  const Augmenter* augmenter_;
};

}  // namespace hyppo::core

#endif  // HYPPO_CORE_MATERIALIZER_H_
