#ifndef HYPPO_WORKLOAD_SYNTHETIC_HYPERGRAPH_H_
#define HYPPO_WORKLOAD_SYNTHETIC_HYPERGRAPH_H_

#include <cstdint>

#include "common/result.h"
#include "core/augmenter.h"

namespace hyppo::workload {

/// \brief Synthetic augmented-hypergraph generator for the scalability
/// study (paper §V-B5): parameters are the number of artifacts n and the
/// number m of alternatives (incoming hyperedges) per artifact.
///
/// Following the paper: pipelines akin to the two use cases (load, split,
/// fit, transform, predict-style task shapes) are generated until the
/// node count reaches n; then additional hyperedges are introduced until
/// every artifact has in-degree m. Artifacts lacking outgoing edges
/// become the request targets T. Edge weights are uniform in [0.5, 2.0].
struct SyntheticConfig {
  int32_t num_artifacts = 12;  // n
  int32_t alternatives = 2;    // m
  uint64_t seed = 42;
};

struct SyntheticHypergraph {
  core::Augmentation aug;
  /// Average (over targets) of the longest s->target path in hyperedges —
  /// the ℓ̄ reported next to n in Fig. 10(a).
  double avg_max_path_length = 0.0;
};

Result<SyntheticHypergraph> GenerateSyntheticHypergraph(
    const SyntheticConfig& config);

}  // namespace hyppo::workload

#endif  // HYPPO_WORKLOAD_SYNTHETIC_HYPERGRAPH_H_
