#include "workload/datagen.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "common/string_util.h"

namespace hyppo::workload {

Result<ml::DatasetPtr> GenerateHiggs(int64_t rows, int64_t cols,
                                     uint64_t seed) {
  if (rows < 10 || cols < 4) {
    return Status::InvalidArgument("GenerateHiggs: rows >= 10, cols >= 4");
  }
  Rng rng(seed);
  auto data = std::make_shared<ml::Dataset>(rows, cols);
  std::vector<std::string> names;
  names.reserve(static_cast<size_t>(cols));
  for (int64_t c = 0; c < cols; ++c) {
    names.push_back("f" + std::to_string(c));
  }
  data->set_column_names(std::move(names));

  std::vector<double> target(static_cast<size_t>(rows), 0.0);
  // Per-class feature means: signal events sit in a shifted, correlated
  // region of feature space (as the derived ATLAS kinematics do).
  std::vector<double> signal_shift(static_cast<size_t>(cols));
  for (int64_t c = 0; c < cols; ++c) {
    signal_shift[static_cast<size_t>(c)] = rng.Gaussian(0.0, 0.8);
  }
  for (int64_t r = 0; r < rows; ++r) {
    const bool signal = rng.Bernoulli(1.0 / 3.0);  // challenge-like skew
    target[static_cast<size_t>(r)] = signal ? 1.0 : 0.0;
    double latent = rng.Gaussian();
    for (int64_t c = 0; c < cols; ++c) {
      double value = rng.Gaussian();
      // Share a latent factor for correlation, add the class shift and a
      // mild nonlinearity so linear and tree models both have signal.
      value += 0.5 * latent;
      if (signal) {
        value += signal_shift[static_cast<size_t>(c)];
        if (c % 3 == 0) {
          value += 0.3 * latent * latent - 0.3;
        }
      }
      // Heavier tails on "momentum"-style columns.
      if (c % 5 == 1) {
        value = value * std::exp(0.25 * std::fabs(rng.Gaussian()));
      }
      data->at(r, c) = value;
    }
  }
  // Missing values (NaN) in a quarter of the columns, ~5% of rows.
  const int64_t missing_cols = std::max<int64_t>(1, cols / 4);
  for (int64_t k = 0; k < missing_cols; ++k) {
    const int64_t c = (k * 4 + 2) % cols;
    double* col = data->col_data(c);
    for (int64_t r = 0; r < rows; ++r) {
      if (rng.Bernoulli(0.05)) {
        col[r] = std::nan("");
      }
    }
  }
  data->set_target(std::move(target));
  return ml::DatasetPtr(std::move(data));
}

Result<ml::DatasetPtr> GenerateTaxi(int64_t rows, uint64_t seed) {
  if (rows < 10) {
    return Status::InvalidArgument("GenerateTaxi: rows >= 10");
  }
  Rng rng(seed);
  std::vector<std::string> names = {
      "pickup_lat",  "pickup_lon",  "dropoff_lat", "dropoff_lon",
      "passengers",  "pickup_hour", "weekday",     "vendor_id",
      "store_fwd",   "month",       "day"};
  auto data = std::make_shared<ml::Dataset>(
      ml::Dataset::WithColumns(rows, std::move(names)));
  std::vector<double> target(static_cast<size_t>(rows), 0.0);
  constexpr double kNycLat = 40.75;
  constexpr double kNycLon = -73.97;
  for (int64_t r = 0; r < rows; ++r) {
    const double pickup_lat = kNycLat + rng.Gaussian(0.0, 0.04);
    const double pickup_lon = kNycLon + rng.Gaussian(0.0, 0.04);
    const double dropoff_lat = pickup_lat + rng.Gaussian(0.0, 0.03);
    const double dropoff_lon = pickup_lon + rng.Gaussian(0.0, 0.03);
    const double hour = static_cast<double>(rng.UniformInt(0, 23));
    const double weekday = static_cast<double>(rng.UniformInt(0, 6));
    data->at(r, 0) = pickup_lat;
    data->at(r, 1) = pickup_lon;
    data->at(r, 2) = dropoff_lat;
    data->at(r, 3) = dropoff_lon;
    data->at(r, 4) = static_cast<double>(rng.UniformInt(1, 6));
    data->at(r, 5) = hour;
    data->at(r, 6) = weekday;
    data->at(r, 7) = static_cast<double>(rng.UniformInt(1, 2));
    data->at(r, 8) = rng.Bernoulli(0.01) ? 1.0 : 0.0;
    data->at(r, 9) = static_cast<double>(rng.UniformInt(1, 6));
    data->at(r, 10) = static_cast<double>(rng.UniformInt(1, 28));
    // Haversine distance in km.
    constexpr double kDegToRad = 3.14159265358979323846 / 180.0;
    const double dlat = (dropoff_lat - pickup_lat) * kDegToRad;
    const double dlon = (dropoff_lon - pickup_lon) * kDegToRad;
    const double a =
        std::sin(dlat / 2) * std::sin(dlat / 2) +
        std::cos(pickup_lat * kDegToRad) * std::cos(dropoff_lat * kDegToRad) *
            std::sin(dlon / 2) * std::sin(dlon / 2);
    const double distance_km =
        2.0 * 6371.0 * std::asin(std::sqrt(std::min(1.0, a)));
    // Rush-hour slowdown + log-normal noise.
    const bool rush = (hour >= 7 && hour <= 9) || (hour >= 16 && hour <= 19);
    const double speed_kmh = (rush ? 12.0 : 22.0) *
                             std::exp(rng.Gaussian(0.0, 0.25));
    const double duration_s =
        60.0 + distance_km / std::max(speed_kmh, 2.0) * 3600.0;
    target[static_cast<size_t>(r)] = duration_s;
  }
  data->set_target(std::move(target));
  return ml::DatasetPtr(std::move(data));
}

std::string UseCase::DatasetId(double multiplier) const {
  return ToLower(name) + "_x" + FormatDouble(multiplier, 4);
}

int64_t UseCase::RowsAt(double multiplier) const {
  return std::max<int64_t>(
      400, static_cast<int64_t>(static_cast<double>(paper_rows) * multiplier));
}

UseCase UseCase::Higgs() {
  UseCase use_case;
  use_case.name = "HIGGS";
  use_case.description =
      "ATLAS Higgs boson detection: imputation, scaling, polynomial "
      "features; SVM and other classifiers with varying regularization";
  use_case.teams = 1784;
  use_case.paper_rows = 800000;
  use_case.paper_cols = 30;
  use_case.classification = true;
  use_case.default_metric = "accuracy";
  return use_case;
}

UseCase UseCase::Taxi() {
  UseCase use_case;
  use_case.name = "TAXI";
  use_case.description =
      "NYC taxi trip duration prediction: heavier preprocessing (geo "
      "features, log target) and a variety of regressors";
  use_case.teams = 1254;
  use_case.paper_rows = 1000000;
  use_case.paper_cols = 11;
  use_case.classification = false;
  use_case.default_metric = "rmsle";
  return use_case;
}

Result<ml::DatasetPtr> GenerateUseCase(const UseCase& use_case,
                                       double multiplier, uint64_t seed) {
  const int64_t rows = use_case.RowsAt(multiplier);
  if (use_case.classification) {
    return GenerateHiggs(rows, use_case.paper_cols, seed);
  }
  return GenerateTaxi(rows, seed);
}

}  // namespace hyppo::workload
