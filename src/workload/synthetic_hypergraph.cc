#include "workload/synthetic_hypergraph.h"

#include <algorithm>
#include <deque>

#include "common/rng.h"

namespace hyppo::workload {

namespace {

using core::ArtifactInfo;
using core::ArtifactKind;
using core::TaskInfo;
using core::TaskType;

}  // namespace

Result<SyntheticHypergraph> GenerateSyntheticHypergraph(
    const SyntheticConfig& config) {
  if (config.num_artifacts < 2 || config.alternatives < 1) {
    return Status::InvalidArgument(
        "synthetic hypergraph needs n >= 2, m >= 1");
  }
  Rng rng(config.seed);
  SyntheticHypergraph out;
  core::PipelineGraph& graph = out.aug.graph;
  const NodeId source = graph.source();

  auto add_artifact = [&](ArtifactKind kind) -> NodeId {
    ArtifactInfo info;
    info.name = "synthetic_v" + std::to_string(graph.num_artifacts());
    info.display = "v" + std::to_string(graph.num_artifacts());
    info.kind = kind;
    info.rows = 1000;
    info.cols = 8;
    info.size_bytes = 64000;
    return graph.AddArtifact(info).ValueOrDie();
  };
  auto add_task = [&](std::vector<NodeId> tails,
                      std::vector<NodeId> heads) -> Result<EdgeId> {
    TaskInfo task;
    task.logical_op = "SyntheticOp";
    task.type = TaskType::kTransform;
    task.impl = "synthetic.Op" + std::to_string(graph.num_tasks());
    return graph.AddTask(std::move(task), std::move(tails),
                         std::move(heads));
  };

  // Phase 1: pipeline-like growth until n artifacts. Task shapes mirror
  // the use cases: load (source -> raw), split (1 -> 2), fit (1 -> 1),
  // transform/predict (2 -> 1).
  std::vector<NodeId> nodes;
  {
    NodeId raw = add_artifact(ArtifactKind::kRaw);
    HYPPO_RETURN_NOT_OK(graph.AddLoadTask(raw).status());
    nodes.push_back(raw);
  }
  while (graph.num_artifacts() - 1 < config.num_artifacts) {
    const int64_t remaining =
        config.num_artifacts - (graph.num_artifacts() - 1);
    const double draw = rng.NextDouble();
    if (draw < 0.25 && remaining >= 2) {
      // split-like: one input, two outputs.
      const NodeId in = nodes[rng.NextBelow(nodes.size())];
      const NodeId a = add_artifact(ArtifactKind::kTrain);
      const NodeId b = add_artifact(ArtifactKind::kTest);
      HYPPO_RETURN_NOT_OK(add_task({in}, {a, b}).status());
      nodes.push_back(a);
      nodes.push_back(b);
    } else if (draw < 0.6 || nodes.size() < 2) {
      // fit-like: one input, one output.
      const NodeId in = nodes[rng.NextBelow(nodes.size())];
      const NodeId o = add_artifact(ArtifactKind::kOpState);
      HYPPO_RETURN_NOT_OK(add_task({in}, {o}).status());
      nodes.push_back(o);
    } else {
      // transform/predict-like: two inputs, one output.
      const NodeId in1 = nodes[rng.NextBelow(nodes.size())];
      NodeId in2 = nodes[rng.NextBelow(nodes.size())];
      if (in2 == in1) {
        in2 = nodes[rng.NextBelow(nodes.size())];
      }
      const NodeId o = add_artifact(ArtifactKind::kData);
      if (in2 == in1) {
        HYPPO_RETURN_NOT_OK(add_task({in1}, {o}).status());
      } else {
        HYPPO_RETURN_NOT_OK(add_task({in1, in2}, {o}).status());
      }
      nodes.push_back(o);
    }
  }

  // Phase 2: add alternative hyperedges until every artifact has m
  // incoming edges. Alternatives draw their tails from lower-id nodes
  // (or the source) to keep the graph acyclic.
  for (NodeId v : nodes) {
    while (static_cast<int32_t>(graph.hypergraph().bstar(v).size()) <
           config.alternatives) {
      std::vector<NodeId> tails;
      // Candidate tails: strictly smaller node ids (acyclic), plus s.
      std::vector<NodeId> pool;
      for (NodeId u : nodes) {
        if (u < v) {
          pool.push_back(u);
        }
      }
      if (pool.empty() || rng.Bernoulli(0.2)) {
        tails.push_back(source);
      } else {
        tails.push_back(pool[rng.NextBelow(pool.size())]);
        if (pool.size() > 1 && rng.Bernoulli(0.4)) {
          const NodeId extra = pool[rng.NextBelow(pool.size())];
          if (extra != tails[0]) {
            tails.push_back(extra);
          }
        }
      }
      HYPPO_RETURN_NOT_OK(add_task(std::move(tails), {v}).status());
    }
  }

  // Targets: artifacts lacking outgoing edges.
  out.aug.targets = graph.SinkArtifacts();
  if (out.aug.targets.empty()) {
    out.aug.targets.push_back(nodes.back());
  }

  // Weights: uniform in [0.5, 2.0].
  const int32_t slots = graph.hypergraph().num_edge_slots();
  out.aug.edge_weight.resize(static_cast<size_t>(slots), 0.0);
  out.aug.edge_seconds.resize(static_cast<size_t>(slots), 0.0);
  for (EdgeId e = 0; e < slots; ++e) {
    if (!graph.hypergraph().IsLiveEdge(e)) {
      continue;
    }
    const double w = rng.Uniform(0.5, 2.0);
    out.aug.edge_weight[static_cast<size_t>(e)] = w;
    out.aug.edge_seconds[static_cast<size_t>(e)] = w;
  }

  // Longest s->v path per node (in edges), via fixed-point over edges.
  std::vector<double> longest(static_cast<size_t>(graph.num_artifacts()),
                              -1.0);
  longest[static_cast<size_t>(source)] = 0.0;
  bool changed = true;
  int guard = graph.num_artifacts() + 2;
  while (changed && guard-- > 0) {
    changed = false;
    for (EdgeId e : graph.hypergraph().LiveEdges()) {
      double tail_max = 0.0;
      bool feasible = true;
      for (NodeId u : graph.hypergraph().edge(e).tail) {
        if (longest[static_cast<size_t>(u)] < 0.0) {
          feasible = false;
          break;
        }
        tail_max = std::max(tail_max, longest[static_cast<size_t>(u)]);
      }
      if (!feasible) {
        continue;
      }
      for (NodeId h : graph.hypergraph().edge(e).head) {
        if (tail_max + 1.0 > longest[static_cast<size_t>(h)]) {
          longest[static_cast<size_t>(h)] = tail_max + 1.0;
          changed = true;
        }
      }
    }
  }
  double total = 0.0;
  for (NodeId t : out.aug.targets) {
    total += std::max(0.0, longest[static_cast<size_t>(t)]);
  }
  out.avg_max_path_length =
      total / static_cast<double>(out.aug.targets.size());
  return out;
}

}  // namespace hyppo::workload
