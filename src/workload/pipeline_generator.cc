#include "workload/pipeline_generator.h"

#include <algorithm>

#include "core/pipeline_builder.h"

namespace hyppo::workload {

namespace {


using core::PipelineBuilder;

StageSpec MakeStage(const std::string& logical_op, const std::string& impl,
                    ml::Config config = {}) {
  StageSpec stage;
  stage.logical_op = logical_op;
  stage.impl = impl;
  stage.config = std::move(config);
  return stage;
}

}  // namespace

std::string StageSpec::Signature() const {
  return logical_op + "[" + config.ToString() + "]";
}

std::string PipelineSpec::PrefixSignature() const {
  return imputer.Signature() + "|" + scaler.Signature() + "|" +
         feature.Signature() + "|split=" + std::to_string(split_seed);
}

PipelineGenerator::PipelineGenerator(UseCase use_case,
                                     double dataset_multiplier, uint64_t seed)
    : use_case_(std::move(use_case)),
      multiplier_(dataset_multiplier),
      rng_(seed) {}

std::string PipelineGenerator::PickImpl(
    const std::string& logical_op, const std::vector<std::string>& frameworks) {
  const size_t pick = static_cast<size_t>(
      rng_.NextBelow(static_cast<uint64_t>(frameworks.size())));
  return frameworks[pick] + "." + logical_op;
}

StageSpec PipelineGenerator::RandomImputer() {
  ml::Config config;
  config.Set("strategy", rng_.Bernoulli(0.5) ? "mean" : "median");
  const std::string logical_op = "SimpleImputer";
  return MakeStage(logical_op, PickImpl(logical_op, {"skl", "tfl"}),
                   std::move(config));
}

StageSpec PipelineGenerator::RandomScaler() {
  static const char* kScalers[] = {"StandardScaler", "MinMaxScaler",
                                   "RobustScaler", "MaxAbsScaler"};
  const std::string logical_op =
      kScalers[rng_.NextBelow(4)];
  return MakeStage(logical_op, PickImpl(logical_op, {"skl", "tfl"}));
}

StageSpec PipelineGenerator::RandomFeature() {
  const double draw = rng_.NextDouble();
  if (draw < 0.35) {
    return StageSpec{};  // no feature stage
  }
  if (draw < 0.6) {
    ml::Config config;
    config.SetInt("n_components",
                  use_case_.classification
                      ? static_cast<int64_t>(5 + 5 * rng_.NextBelow(3))
                      : static_cast<int64_t>(4 + 2 * rng_.NextBelow(3)));
    return MakeStage("PCA", PickImpl("PCA", {"skl", "tfl"}),
                     std::move(config));
  }
  if (draw < 0.75) {
    ml::Config config;
    config.SetInt("degree", 2);
    return MakeStage("PolynomialFeatures",
                     PickImpl("PolynomialFeatures", {"skl", "tfl"}),
                     std::move(config));
  }
  if (draw < 0.85) {
    ml::Config config;
    config.SetInt("n_quantiles", 100);
    return MakeStage("QuantileTransformer",
                     PickImpl("QuantileTransformer", {"skl", "tfl"}),
                     std::move(config));
  }
  if (use_case_.classification) {
    ml::Config config;
    config.SetDouble("threshold", rng_.Bernoulli(0.5) ? 0.0 : 0.05);
    return MakeStage("VarianceThreshold",
                     PickImpl("VarianceThreshold", {"skl", "tfl"}),
                     std::move(config));
  }
  ml::Config config;
  config.SetInt("n_clusters", static_cast<int64_t>(5 + 3 * rng_.NextBelow(2)));
  config.SetInt("max_iter", 25);
  return MakeStage("KMeans", PickImpl("KMeans", {"skl", "tfl"}),
                   std::move(config));
}

StageSpec PipelineGenerator::RandomModel() {
  if (use_case_.classification) {
    const double draw = rng_.NextDouble();
    if (draw < 0.3) {
      ml::Config config;
      static const double kC[] = {0.1, 1.0, 10.0};
      config.SetDouble("C", kC[rng_.NextBelow(3)]);
      config.SetInt("max_iter", 30);
      return MakeStage("LinearSVM", PickImpl("LinearSVM", {"skl", "lib"}),
                       std::move(config));
    }
    if (draw < 0.45) {
      ml::Config config;
      static const double kAlpha[] = {1e-4, 1e-3, 1e-2};
      config.SetDouble("alpha", kAlpha[rng_.NextBelow(3)]);
      return MakeStage("LogisticRegression",
                       PickImpl("LogisticRegression", {"skl", "tfl"}),
                       std::move(config));
    }
    if (draw < 0.85) {
      ml::Config config;
      config.SetInt("n_estimators", static_cast<int64_t>(20 + 20 * rng_.NextBelow(2)));
      config.SetInt("max_depth", static_cast<int64_t>(8 + 2 * rng_.NextBelow(2)));
      return MakeStage("RandomForestClassifier",
                       PickImpl("RandomForestClassifier", {"skl", "lgb"}),
                       std::move(config));
    }
    ml::Config config;
    config.SetInt("max_depth", static_cast<int64_t>(4 + 2 * rng_.NextBelow(3)));
    return MakeStage("DecisionTreeClassifier",
                     PickImpl("DecisionTreeClassifier", {"skl", "lgb"}),
                     std::move(config));
  }
  const double draw = rng_.NextDouble();
  if (draw < 0.2) {
    ml::Config config;
    static const double kAlpha[] = {0.5, 1.0, 10.0};
    config.SetDouble("alpha", kAlpha[rng_.NextBelow(3)]);
    return MakeStage("Ridge", PickImpl("Ridge", {"skl", "tfl"}),
                     std::move(config));
  }
  if (draw < 0.3) {
    ml::Config config;
    config.SetDouble("alpha", rng_.Bernoulli(0.5) ? 0.01 : 0.1);
    return MakeStage("Lasso", PickImpl("Lasso", {"skl", "tfl"}),
                     std::move(config));
  }
  if (draw < 0.38) {
    ml::Config config;
    config.SetDouble("alpha", 0.05);
    config.SetDouble("l1_ratio", rng_.Bernoulli(0.5) ? 0.3 : 0.7);
    return MakeStage("ElasticNet", PickImpl("ElasticNet", {"skl", "tfl"}),
                     std::move(config));
  }
  if (draw < 0.5) {
    return MakeStage("LinearRegression",
                     PickImpl("LinearRegression", {"skl", "tfl"}));
  }
  if (draw < 0.7) {
    ml::Config config;
    config.SetInt("max_depth", static_cast<int64_t>(5 + 2 * rng_.NextBelow(2)));
    return MakeStage("DecisionTreeRegressor",
                     PickImpl("DecisionTreeRegressor", {"skl", "lgb"}),
                     std::move(config));
  }
  if (draw < 0.85) {
    ml::Config config;
    config.SetInt("n_estimators", static_cast<int64_t>(20 + 20 * rng_.NextBelow(2)));
    config.SetInt("max_depth", 8);
    return MakeStage("RandomForestRegressor",
                     PickImpl("RandomForestRegressor", {"skl", "lgb"}),
                     std::move(config));
  }
  ml::Config config;
  config.SetInt("n_estimators", static_cast<int64_t>(40 + 20 * rng_.NextBelow(2)));
  config.SetDouble("learning_rate", 0.1);
  config.SetInt("max_depth", 4);
  return MakeStage("GradientBoostingRegressor",
                   PickImpl("GradientBoostingRegressor", {"skl", "lgb"}),
                   std::move(config));
}

std::string PipelineGenerator::RandomMetric() {
  if (use_case_.classification) {
    static const char* kMetrics[] = {"accuracy", "f1", "logloss", "ams"};
    return kMetrics[rng_.NextBelow(4)];
  }
  static const char* kMetrics[] = {"rmse", "mae", "r2"};
  return kMetrics[rng_.NextBelow(3)];
}

PipelineSpec PipelineGenerator::RandomSpec() {
  PipelineSpec spec;
  // HIGGS data has missing values, so imputation is mandatory there.
  if (use_case_.classification || rng_.Bernoulli(0.3)) {
    spec.imputer = RandomImputer();
  }
  spec.scaler = RandomScaler();
  spec.feature = RandomFeature();
  spec.model = RandomModel();
  // PolynomialFeatures widens HIGGS to ~500 columns; restrict the model
  // family to ones that stay tractable there (mirroring the competition's
  // poly+SVM submissions).
  if (use_case_.classification &&
      spec.feature.logical_op == "PolynomialFeatures" &&
      spec.model.logical_op == "LogisticRegression") {
    ml::Config config;
    config.SetDouble("C", 1.0);
    config.SetInt("max_iter", 30);
    spec.model = MakeStage("LinearSVM", PickImpl("LinearSVM", {"skl", "lib"}),
                           std::move(config));
  }
  spec.metric = RandomMetric();
  spec.split_seed = 13;  // sequences share the split: classic EML habit
  return spec;
}

void PipelineGenerator::Mutate(PipelineSpec& spec) {
  // Exploratory sessions revisit earlier configurations (re-evaluating
  // and comparing previously computed results); a revisit re-runs a past
  // spec, often with a different evaluation — the prime reuse
  // opportunity, and increasingly frequent as the session matures.
  if (specs_.size() > 3 && rng_.Bernoulli(0.3)) {
    spec = specs_[rng_.NextBelow(specs_.size())];
    if (rng_.Bernoulli(0.6)) {
      spec.metric = RandomMetric();
    }
    return;
  }
  const double draw = rng_.NextDouble();
  if (draw < 0.55) {
    spec.model = RandomModel();
    if (use_case_.classification &&
        spec.feature.logical_op == "PolynomialFeatures" &&
        spec.model.logical_op == "LogisticRegression") {
      spec.model.logical_op = "LinearSVM";
      spec.model.impl = PickImpl("LinearSVM", {"skl", "lib"});
      ml::Config config;
      config.SetDouble("C", 1.0);
      config.SetInt("max_iter", 30);
      spec.model.config = std::move(config);
    }
  } else if (draw < 0.75) {
    spec.metric = RandomMetric();
  } else if (draw < 0.9) {
    spec.feature = RandomFeature();
  } else {
    spec.scaler = RandomScaler();
    if (use_case_.classification || spec.imputer.present()) {
      spec.imputer = RandomImputer();
    }
  }
}

Result<core::Pipeline> PipelineGenerator::BuildFromSpec(
    const PipelineSpec& spec, const std::string& id) const {
  PipelineBuilder builder(id);
  const int64_t rows = use_case_.RowsAt(multiplier_);
  HYPPO_ASSIGN_OR_RETURN(
      NodeId data,
      builder.LoadDataset(use_case_.DatasetId(multiplier_), rows,
                          use_case_.paper_cols));
  if (!use_case_.classification) {
    // TAXI preprocessing: engineered geo features + log target.
    HYPPO_ASSIGN_OR_RETURN(
        NodeId tf_state,
        builder.Fit("TaxiFeatures", "skl.TaxiFeatures", data));
    HYPPO_ASSIGN_OR_RETURN(data, builder.Transform(tf_state, data));
    HYPPO_ASSIGN_OR_RETURN(NodeId log_state,
                           builder.Fit("LogTarget", "skl.LogTarget", data));
    HYPPO_ASSIGN_OR_RETURN(data, builder.Transform(log_state, data));
  }
  ml::Config split_config;
  split_config.SetDouble("test_size", 0.25);
  split_config.SetInt("seed", spec.split_seed);
  HYPPO_ASSIGN_OR_RETURN(auto split, builder.Split(data, split_config));
  NodeId train = split.first;
  NodeId test = split.second;
  for (const StageSpec* stage : {&spec.imputer, &spec.scaler, &spec.feature}) {
    if (!stage->present()) {
      continue;
    }
    HYPPO_ASSIGN_OR_RETURN(
        NodeId state,
        builder.Fit(stage->logical_op, stage->impl, train, stage->config));
    HYPPO_ASSIGN_OR_RETURN(train, builder.Transform(state, train));
    HYPPO_ASSIGN_OR_RETURN(test, builder.Transform(state, test));
  }
  HYPPO_ASSIGN_OR_RETURN(
      NodeId model,
      builder.Fit(spec.model.logical_op, spec.model.impl, train,
                  spec.model.config));
  HYPPO_ASSIGN_OR_RETURN(NodeId preds, builder.Predict(model, test));
  HYPPO_RETURN_NOT_OK(builder.Evaluate(preds, test, spec.metric).status());
  return std::move(builder).Build();
}

Result<core::Pipeline> PipelineGenerator::BuildEnsemblePipeline(
    const PipelineSpec& base, const std::vector<StageSpec>& models,
    const std::string& ensemble_op, const std::string& id) const {
  if (models.size() < 2) {
    return Status::InvalidArgument("ensemble needs at least two base models");
  }
  PipelineBuilder builder(id);
  const int64_t rows = use_case_.RowsAt(multiplier_);
  HYPPO_ASSIGN_OR_RETURN(
      NodeId data,
      builder.LoadDataset(use_case_.DatasetId(multiplier_), rows,
                          use_case_.paper_cols));
  if (!use_case_.classification) {
    HYPPO_ASSIGN_OR_RETURN(
        NodeId tf_state,
        builder.Fit("TaxiFeatures", "skl.TaxiFeatures", data));
    HYPPO_ASSIGN_OR_RETURN(data, builder.Transform(tf_state, data));
    HYPPO_ASSIGN_OR_RETURN(NodeId log_state,
                           builder.Fit("LogTarget", "skl.LogTarget", data));
    HYPPO_ASSIGN_OR_RETURN(data, builder.Transform(log_state, data));
  }
  ml::Config split_config;
  split_config.SetDouble("test_size", 0.25);
  split_config.SetInt("seed", base.split_seed);
  HYPPO_ASSIGN_OR_RETURN(auto split, builder.Split(data, split_config));
  NodeId train = split.first;
  NodeId test = split.second;
  for (const StageSpec* stage : {&base.imputer, &base.scaler, &base.feature}) {
    if (!stage->present()) {
      continue;
    }
    HYPPO_ASSIGN_OR_RETURN(
        NodeId state,
        builder.Fit(stage->logical_op, stage->impl, train, stage->config));
    HYPPO_ASSIGN_OR_RETURN(train, builder.Transform(state, train));
    HYPPO_ASSIGN_OR_RETURN(test, builder.Transform(state, test));
  }
  std::vector<NodeId> base_states;
  for (const StageSpec& model : models) {
    HYPPO_ASSIGN_OR_RETURN(
        NodeId state,
        builder.Fit(model.logical_op, model.impl, train, model.config));
    base_states.push_back(state);
  }
  HYPPO_ASSIGN_OR_RETURN(
      NodeId ensemble,
      builder.FitEnsemble(ensemble_op, "skl." + ensemble_op, base_states,
                          ensemble_op == "StackingRegressor" ? train
                                                             : kInvalidNode));
  HYPPO_ASSIGN_OR_RETURN(NodeId preds, builder.Predict(ensemble, test));
  HYPPO_RETURN_NOT_OK(builder.Evaluate(preds, test, base.metric).status());
  return std::move(builder).Build();
}

Result<core::Pipeline> PipelineGenerator::Next() {
  if (!has_current_) {
    current_ = RandomSpec();
    has_current_ = true;
  } else {
    Mutate(current_);
  }
  specs_.push_back(current_);
  ++counter_;
  return BuildFromSpec(current_,
                       use_case_.name + "-p" + std::to_string(counter_));
}

}  // namespace hyppo::workload
