#include "workload/scenario.h"

#include <algorithm>
#include <set>

#include "analysis/verifier.h"
#include "baselines/collab.h"
#include "baselines/helix.h"
#include "baselines/no_optimization.h"
#include "baselines/sharing.h"
#include "core/hyppo.h"
#include "serving/session_manager.h"
#include "storage/fault_injection.h"

namespace hyppo::workload {

namespace {

// Storage budget in bytes for a use case at a scale.
int64_t BudgetBytes(const UseCase& use_case, double multiplier,
                    double budget_factor) {
  const int64_t dataset_bytes =
      use_case.RowsAt(multiplier) * (use_case.paper_cols + 1) * 8;
  return static_cast<int64_t>(static_cast<double>(dataset_bytes) *
                              budget_factor);
}

Result<std::unique_ptr<core::Runtime>> MakeRuntime(
    const UseCase& use_case, double multiplier, double budget_factor,
    bool simulate, uint64_t seed, bool verify, int parallelism,
    double fault_rate = 0.0, uint64_t fault_seed = 0,
    const std::string& store_dir = "") {
  core::RuntimeOptions options;
  options.storage_budget_bytes =
      BudgetBytes(use_case, multiplier, budget_factor);
  options.simulate = simulate;
  options.verify_plans = verify;
  options.parallelism = parallelism <= 0
                            ? core::RuntimeOptions::DefaultParallelism()
                            : parallelism;
  options.store_dir = store_dir;
  auto runtime = std::make_unique<core::Runtime>(options);
  // A durable session that failed to open (unwritable directory, torn
  // manifest beyond recovery) must fail the scenario up front, not at
  // the first materialization.
  HYPPO_RETURN_NOT_OK(runtime->session_status());
  runtime->RegisterDatasetGenerator(
      use_case.DatasetId(multiplier),
      [use_case, multiplier, seed]() -> Result<ml::DatasetPtr> {
        return GenerateUseCase(use_case, multiplier, seed);
      });
  if (fault_rate > 0.0) {
    runtime->EnableFaultInjection(storage::FaultPlan::Uniform(
        fault_seed != 0 ? fault_seed : seed, fault_rate));
  }
  return runtime;
}

// Copies the runtime's self-healing telemetry into a sequence result.
void CollectRecoveryStats(const core::Runtime& runtime,
                          SequenceResult* result) {
  const core::Monitor& monitor = runtime.monitor();
  result->replans = monitor.num_replans();
  result->failed_tasks = monitor.num_task_failures();
  result->recovered_tasks = monitor.num_recovered_tasks();
  result->injected_faults = monitor.num_injected_faults();
  result->index_hits = monitor.num_index_hits();
  result->index_misses = monitor.num_index_misses();
  result->states_pruned = monitor.num_states_pruned();
  result->history_compacted = monitor.num_history_compacted();
  result->reuse_loads = monitor.num_reuse_loads();
  result->cross_session_loads = monitor.num_cross_session_loads();
}

// End-of-run invariant audit: the history the scenario grew (plus the
// materializer's storage decisions) must verify clean, including a
// serialization round-trip and the storage-budget bound.
Status VerifyRuntimeHistory(const core::Runtime& runtime) {
  if (!runtime.options().verify_plans) {
    return Status::OK();
  }
  const analysis::Verifier verifier;
  analysis::AnalysisReport report = verifier.VerifyHistory(
      runtime.history(), &runtime.dictionary(),
      runtime.options().storage_budget_bytes);
  // Store <-> history consistency: every materialized artifact is backed
  // by a store entry of matching charged size, and vice versa.
  report.Merge(
      verifier.CheckStoreConsistency(runtime.history(), runtime.store()));
  if (!report.ok()) {
    return Status::Internal("history verification failed (" +
                            report.Summary() + "):\n" + report.ToString());
  }
  return Status::OK();
}

Result<SequenceResult> DrivePipelines(
    core::Method& method, core::Runtime& runtime,
    const std::vector<core::Pipeline>& pipelines) {
  SequenceResult result;
  result.method = method.name();
  result.budget_bytes = runtime.options().storage_budget_bytes;
  for (const core::Pipeline& pipeline : pipelines) {
    HYPPO_ASSIGN_OR_RETURN(core::Method::Planned planned,
                           method.PlanPipeline(pipeline));
    HYPPO_ASSIGN_OR_RETURN(
        core::Runtime::ExecutionRecord record,
        runtime.ExecuteAndRecord(pipeline, planned.aug, planned.plan,
                                 method.MakeReplanner()));
    HYPPO_RETURN_NOT_OK(method.AfterExecution(pipeline, planned, record));
    result.per_pipeline_seconds.push_back(record.seconds);
    result.cumulative_seconds += record.seconds;
    result.optimize_seconds += planned.optimize_seconds;
    result.cumulative_after.push_back(result.cumulative_seconds);
  }
  result.price_eur = runtime.options().pricing.ExperimentPrice(
      result.cumulative_seconds, result.budget_bytes);
  result.stored_artifacts =
      static_cast<int64_t>(runtime.history().MaterializedArtifacts().size());
  result.history_artifacts = runtime.history().num_artifacts();
  CollectRecoveryStats(runtime, &result);
  HYPPO_RETURN_NOT_OK(VerifyRuntimeHistory(runtime));
  // Durable sessions snapshot the history so a re-run pointed at the
  // same store_dir resumes with this materialized set (no-op otherwise).
  HYPPO_RETURN_NOT_OK(runtime.PersistSession());
  return result;
}

// Multi-session variant of DrivePipelines: the sequence is partitioned
// round-robin across `config.sessions` concurrent sessions of one
// serving::SessionManager, so later pipelines load artifacts earlier
// sessions materialized (cross-session reuse).
Result<SequenceResult> DriveSessions(const MethodFactory& factory,
                                     const ScenarioConfig& config,
                                     std::vector<core::Pipeline> pipelines) {
  const int num_sessions = config.sessions;
  serving::ServingOptions options;
  options.runtime.storage_budget_bytes = BudgetBytes(
      config.use_case, config.dataset_multiplier, config.budget_factor);
  options.runtime.simulate = config.simulate;
  options.runtime.verify_plans = config.verify;
  options.runtime.parallelism =
      config.parallelism <= 0 ? core::RuntimeOptions::DefaultParallelism()
                              : config.parallelism;
  options.runtime.store_dir = config.store_dir;
  options.make_method = factory;
  options.max_in_flight_sessions = num_sessions;
  options.fault_rate = config.fault_rate;
  options.fault_seed =
      config.fault_seed != 0 ? config.fault_seed : config.seed;
  serving::SessionManager manager(options);
  HYPPO_RETURN_NOT_OK(manager.session_status());
  const UseCase use_case = config.use_case;
  const double multiplier = config.dataset_multiplier;
  const uint64_t seed = config.seed;
  manager.runtime().RegisterDatasetGenerator(
      use_case.DatasetId(multiplier),
      [use_case, multiplier, seed]() -> Result<ml::DatasetPtr> {
        return GenerateUseCase(use_case, multiplier, seed);
      });

  std::vector<serving::SessionRequest> requests(
      static_cast<size_t>(num_sessions));
  for (int s = 0; s < num_sessions; ++s) {
    requests[static_cast<size_t>(s)].session_id =
        "session-" + std::to_string(s);
  }
  for (size_t i = 0; i < pipelines.size(); ++i) {
    requests[i % static_cast<size_t>(num_sessions)].pipelines.push_back(
        std::move(pipelines[i]));
  }
  const std::vector<serving::SessionReport> reports =
      manager.RunSessions(requests);

  SequenceResult result;
  result.method = factory(&manager.runtime())->name();
  result.sessions = num_sessions;
  result.budget_bytes = manager.runtime().options().storage_budget_bytes;
  // Reassemble the per-pipeline latencies in original submission order
  // (session s holds original indices s, s + N, s + 2N, ...).
  size_t total_pipelines = 0;
  for (const serving::SessionRequest& request : requests) {
    total_pipelines += request.pipelines.size();
  }
  result.per_pipeline_seconds.assign(total_pipelines, 0.0);
  for (size_t s = 0; s < reports.size(); ++s) {
    const serving::SessionReport& report = reports[s];
    HYPPO_RETURN_NOT_OK(report.status);
    for (size_t k = 0; k < report.per_pipeline_seconds.size(); ++k) {
      const size_t original = k * static_cast<size_t>(num_sessions) + s;
      result.per_pipeline_seconds[original] = report.per_pipeline_seconds[k];
    }
    result.optimize_seconds += report.optimize_seconds;
  }
  for (double seconds : result.per_pipeline_seconds) {
    result.cumulative_seconds += seconds;
    result.cumulative_after.push_back(result.cumulative_seconds);
  }
  result.price_eur = manager.runtime().options().pricing.ExperimentPrice(
      result.cumulative_seconds, result.budget_bytes);
  result.stored_artifacts = static_cast<int64_t>(
      manager.runtime().history().MaterializedArtifacts().size());
  result.history_artifacts = manager.runtime().history().num_artifacts();
  CollectRecoveryStats(manager.runtime(), &result);
  result.sessions_queued = manager.stats().sessions_queued;
  HYPPO_RETURN_NOT_OK(VerifyRuntimeHistory(manager.runtime()));
  return result;
}

}  // namespace

MethodFactory MakeNoOptimizationFactory() {
  return [](core::Runtime* runtime) -> std::unique_ptr<core::Method> {
    return std::make_unique<baselines::NoOptimizationMethod>(runtime);
  };
}

MethodFactory MakeSharingFactory() {
  return [](core::Runtime* runtime) -> std::unique_ptr<core::Method> {
    return std::make_unique<baselines::SharingMethod>(runtime);
  };
}

MethodFactory MakeHelixFactory() {
  return [](core::Runtime* runtime) -> std::unique_ptr<core::Method> {
    return std::make_unique<baselines::HelixMethod>(runtime);
  };
}

MethodFactory MakeCollabFactory() {
  return [](core::Runtime* runtime) -> std::unique_ptr<core::Method> {
    return std::make_unique<baselines::CollabMethod>(runtime);
  };
}

MethodFactory MakeHyppoFactory() {
  return [](core::Runtime* runtime) -> std::unique_ptr<core::Method> {
    return std::make_unique<core::HyppoMethod>(runtime);
  };
}

Result<SequenceResult> RunIterativeScenario(const MethodFactory& factory,
                                            const ScenarioConfig& config) {
  // The same seed yields the same pipeline sequence for every method.
  PipelineGenerator generator(config.use_case, config.dataset_multiplier,
                              config.seed);
  std::vector<core::Pipeline> pipelines;
  pipelines.reserve(static_cast<size_t>(config.num_pipelines));
  for (int i = 0; i < config.num_pipelines; ++i) {
    HYPPO_ASSIGN_OR_RETURN(core::Pipeline pipeline, generator.Next());
    pipelines.push_back(std::move(pipeline));
  }
  if (config.sessions > 1) {
    return DriveSessions(factory, config, std::move(pipelines));
  }
  HYPPO_ASSIGN_OR_RETURN(
      std::unique_ptr<core::Runtime> runtime,
      MakeRuntime(config.use_case, config.dataset_multiplier,
                  config.budget_factor, config.simulate, config.seed,
                  config.verify, config.parallelism, config.fault_rate,
                  config.fault_seed, config.store_dir));
  std::unique_ptr<core::Method> method = factory(runtime.get());
  return DrivePipelines(*method, *runtime, pipelines);
}

Result<RetrievalResult> RunRetrievalScenario(const MethodFactory& factory,
                                             const RetrievalConfig& config) {
  HYPPO_ASSIGN_OR_RETURN(
      std::unique_ptr<core::Runtime> runtime,
      MakeRuntime(config.use_case, config.dataset_multiplier,
                  config.budget_factor, config.simulate, config.seed,
                  config.verify, config.parallelism, config.fault_rate,
                  config.fault_seed, config.store_dir));
  std::unique_ptr<core::Method> method = factory(runtime.get());
  PipelineGenerator generator(config.use_case, config.dataset_multiplier,
                              config.seed);
  // Build the steady-state history.
  for (int i = 0; i < config.history_pipelines; ++i) {
    HYPPO_ASSIGN_OR_RETURN(core::Pipeline pipeline, generator.Next());
    HYPPO_ASSIGN_OR_RETURN(core::Method::Planned planned,
                           method->PlanPipeline(pipeline));
    HYPPO_ASSIGN_OR_RETURN(
        core::Runtime::ExecutionRecord record,
        runtime->ExecuteAndRecord(pipeline, planned.aug, planned.plan,
                                  method->MakeReplanner()));
    HYPPO_RETURN_NOT_OK(method->AfterExecution(pipeline, planned, record));
  }
  // Candidate artifacts for requests.
  const core::History& history = runtime->history();
  static const std::set<std::string> kModelOps = {
      "LinearSVM", "LogisticRegression", "RandomForestClassifier",
      "DecisionTreeClassifier", "Ridge", "Lasso", "LinearRegression",
      "DecisionTreeRegressor", "RandomForestRegressor",
      "GradientBoostingRegressor", "StackingRegressor", "VotingRegressor"};
  std::vector<std::string> candidates;
  for (NodeId v = 1; v < history.graph().num_artifacts(); ++v) {
    const core::ArtifactInfo& info = history.graph().artifact(v);
    if (info.kind == core::ArtifactKind::kRaw ||
        info.kind == core::ArtifactKind::kSource) {
      continue;
    }
    if (config.models_only) {
      if (info.kind != core::ArtifactKind::kOpState) {
        continue;
      }
      // Model states only: look for a producing fit task of a model op.
      bool is_model = false;
      for (EdgeId e : history.graph().hypergraph().bstar(v)) {
        if (kModelOps.count(history.graph().task(e).logical_op) > 0) {
          is_model = true;
          break;
        }
      }
      if (!is_model) {
        continue;
      }
    }
    candidates.push_back(info.name);
  }
  if (candidates.empty()) {
    return Status::FailedPrecondition("no retrievable artifacts in history");
  }
  Rng rng(config.seed + 1);
  RetrievalResult result;
  result.method = method->name();
  for (int r = 0; r < config.num_requests; ++r) {
    std::set<std::string> request;
    for (int k = 0; k < config.request_size; ++k) {
      request.insert(candidates[rng.NextBelow(candidates.size())]);
    }
    std::vector<std::string> names(request.begin(), request.end());
    HYPPO_ASSIGN_OR_RETURN(core::Method::Planned planned,
                           method->PlanRetrieval(names));
    HYPPO_ASSIGN_OR_RETURN(
        core::Runtime::ExecutionRecord record,
        runtime->ExecutePlanOnly(planned.aug, planned.plan,
                                 method->MakeReplanner()));
    result.total_seconds += record.seconds;
    result.mean_optimize_seconds += planned.optimize_seconds;
  }
  result.mean_request_seconds =
      result.total_seconds / static_cast<double>(config.num_requests);
  result.mean_optimize_seconds /= static_cast<double>(config.num_requests);
  int64_t total = 0;
  int64_t stored = 0;
  for (NodeId v = 1; v < history.graph().num_artifacts(); ++v) {
    const core::ArtifactInfo& info = history.graph().artifact(v);
    if (info.kind == core::ArtifactKind::kRaw ||
        info.kind == core::ArtifactKind::kSource) {
      continue;
    }
    ++total;
    if (history.IsMaterialized(v)) {
      ++stored;
    }
  }
  result.stored_fraction =
      total > 0 ? static_cast<double>(stored) / static_cast<double>(total)
                : 0.0;
  HYPPO_RETURN_NOT_OK(VerifyRuntimeHistory(*runtime));
  HYPPO_RETURN_NOT_OK(runtime->PersistSession());
  return result;
}

Result<SequenceResult> RunEnsembleScenario(const MethodFactory& factory,
                                           const EnsembleConfig& config) {
  const UseCase use_case = UseCase::Taxi();
  HYPPO_ASSIGN_OR_RETURN(
      std::unique_ptr<core::Runtime> runtime,
      MakeRuntime(use_case, config.dataset_multiplier, config.budget_factor,
                  config.simulate, config.seed, config.verify,
                  config.parallelism, config.fault_rate, config.fault_seed,
                  config.store_dir));
  std::unique_ptr<core::Method> method = factory(runtime.get());
  PipelineGenerator generator(use_case, config.dataset_multiplier,
                              config.seed);
  // History of ordinary exploratory pipelines; remember their specs so
  // ensembles can extend them.
  for (int i = 0; i < config.history_pipelines; ++i) {
    HYPPO_ASSIGN_OR_RETURN(core::Pipeline pipeline, generator.Next());
    HYPPO_ASSIGN_OR_RETURN(core::Method::Planned planned,
                           method->PlanPipeline(pipeline));
    HYPPO_ASSIGN_OR_RETURN(
        core::Runtime::ExecutionRecord record,
        runtime->ExecuteAndRecord(pipeline, planned.aug, planned.plan,
                                  method->MakeReplanner()));
    HYPPO_RETURN_NOT_OK(method->AfterExecution(pipeline, planned, record));
  }
  // Ensemble workloads: each picks a past preprocessing prefix, reuses its
  // model plus fresh variants, and stacks/votes them.
  Rng rng(config.seed + 7);
  std::vector<core::Pipeline> pipelines;
  const std::vector<PipelineSpec> history_specs = generator.history_specs();
  for (int i = 0; i < config.ensemble_pipelines; ++i) {
    const PipelineSpec& base =
        history_specs[rng.NextBelow(history_specs.size())];
    std::vector<StageSpec> models;
    models.push_back(base.model);
    const int extra = 1 + static_cast<int>(rng.NextBelow(2));
    // Prefer other models from history sharing the same preprocessing (the
    // "models trained in the past" of §V-B3); fall back to fresh variants.
    for (const PipelineSpec& other : history_specs) {
      if (static_cast<int>(models.size()) > extra &&
          models.size() >= 2) {
        break;
      }
      if (other.PrefixSignature() == base.PrefixSignature() &&
          other.model.Signature() != base.model.Signature()) {
        models.push_back(other.model);
      }
    }
    while (models.size() < 2 ||
           static_cast<int>(models.size()) < 1 + extra) {
      StageSpec fresh = generator.RandomModel();
      bool duplicate = false;
      for (const StageSpec& m : models) {
        if (m.Signature() == fresh.Signature()) {
          duplicate = true;
          break;
        }
      }
      if (!duplicate) {
        models.push_back(fresh);
      }
    }
    const std::string ensemble_op =
        rng.Bernoulli(0.5) ? "StackingRegressor" : "VotingRegressor";
    HYPPO_ASSIGN_OR_RETURN(
        core::Pipeline pipeline,
        generator.BuildEnsemblePipeline(base, models, ensemble_op,
                                        "ens-" + std::to_string(i)));
    pipelines.push_back(std::move(pipeline));
  }
  return DrivePipelines(*method, *runtime, pipelines);
}

Result<TypeStudyResult> RunTypeStudy(const ScenarioConfig& config) {
  HYPPO_ASSIGN_OR_RETURN(
      std::unique_ptr<core::Runtime> runtime,
      MakeRuntime(config.use_case, config.dataset_multiplier,
                  config.budget_factor, config.simulate, config.seed,
                  config.verify, config.parallelism, 0.0, 0,
                  config.store_dir));
  core::HyppoMethod method(runtime.get());
  PipelineGenerator generator(config.use_case, config.dataset_multiplier,
                              config.seed);
  for (int i = 0; i < config.num_pipelines; ++i) {
    HYPPO_ASSIGN_OR_RETURN(core::Pipeline pipeline, generator.Next());
    HYPPO_ASSIGN_OR_RETURN(core::Method::Planned planned,
                           method.PlanPipeline(pipeline));
    HYPPO_ASSIGN_OR_RETURN(
        core::Runtime::ExecutionRecord record,
        runtime->ExecuteAndRecord(pipeline, planned.aug, planned.plan,
                                  method.MakeReplanner()));
    HYPPO_RETURN_NOT_OK(method.AfterExecution(pipeline, planned, record));
  }
  TypeStudyResult result;
  result.budget_bytes = runtime->options().storage_budget_bytes;
  const core::History& history = runtime->history();
  // Stored fraction per artifact kind.
  std::map<core::ArtifactKind, std::pair<int64_t, int64_t>> stored_by_kind;
  for (NodeId v = 1; v < history.graph().num_artifacts(); ++v) {
    const core::ArtifactInfo& info = history.graph().artifact(v);
    if (info.kind == core::ArtifactKind::kRaw ||
        info.kind == core::ArtifactKind::kSource) {
      continue;
    }
    auto& [stored, total] = stored_by_kind[info.kind];
    ++total;
    if (history.IsMaterialized(v)) {
      ++stored;
      result.stored_bytes += info.size_bytes;
    }
  }
  for (const auto& [kind, agg] : runtime->monitor().by_artifact_kind()) {
    TypeStudyRow row;
    row.label = core::ArtifactKindToString(kind);
    row.mean_seconds = agg.MeanSeconds();
    row.mean_bytes = agg.MeanBytes();
    row.count = agg.count;
    auto it = stored_by_kind.find(kind);
    if (it != stored_by_kind.end() && it->second.second > 0) {
      row.stored_fraction = static_cast<double>(it->second.first) /
                            static_cast<double>(it->second.second);
    }
    result.artifact_kinds.push_back(row);
  }
  for (const auto& [type, agg] : runtime->monitor().by_task_type()) {
    TypeStudyRow row;
    row.label = core::TaskTypeToString(type);
    row.mean_seconds = agg.MeanSeconds();
    row.count = agg.count;
    result.task_types.push_back(row);
  }
  result.storage_price_eur = runtime->options().pricing.ExperimentPrice(
      0.0, result.budget_bytes);
  HYPPO_RETURN_NOT_OK(VerifyRuntimeHistory(*runtime));
  return result;
}

}  // namespace hyppo::workload
