#ifndef HYPPO_WORKLOAD_PIPELINE_GENERATOR_H_
#define HYPPO_WORKLOAD_PIPELINE_GENERATOR_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "core/graph.h"
#include "ml/config.h"
#include "workload/datagen.h"

namespace hyppo::workload {

/// \brief One stage of an exploratory pipeline specification.
struct StageSpec {
  std::string logical_op;  // empty = stage absent
  std::string impl;
  ml::Config config;

  bool present() const { return !logical_op.empty(); }
  /// Stable signature for grouping (ensembles combine models trained on
  /// identical preprocessing).
  std::string Signature() const;
};

/// \brief Abstract description of one exploratory iteration: the concrete
/// Pipeline hypergraph is built from it deterministically.
struct PipelineSpec {
  StageSpec imputer;
  StageSpec scaler;
  StageSpec feature;
  StageSpec model;
  std::string metric;
  int64_t split_seed = 13;
  /// Preprocessing-prefix signature (everything before the model).
  std::string PrefixSignature() const;
};

/// \brief Generates sequences of exploratory pipelines for a use case
/// (paper §V-A: "a pipeline generator that creates sequences of pipelines
/// containing operators for preprocessing, learning, and evaluation").
///
/// Iterations mutate the current specification, biased toward stages
/// *after* preprocessing (the paper's cited survey finds most changes
/// occur there), which is what creates the within-experiment reuse
/// opportunities HYPPO exploits.
class PipelineGenerator {
 public:
  PipelineGenerator(UseCase use_case, double dataset_multiplier,
                    uint64_t seed);

  /// Generates the next exploratory pipeline (first call: a fresh random
  /// spec; later calls: a mutation of the previous one).
  Result<core::Pipeline> Next();

  /// Builds the Pipeline hypergraph for an explicit spec.
  Result<core::Pipeline> BuildFromSpec(const PipelineSpec& spec,
                                       const std::string& id) const;

  /// Builds a scenario-3 "advanced analysis" pipeline: k model variants
  /// over a shared preprocessing prefix, combined by a Voting or Stacking
  /// regressor (TAXI-style ensembles over previously trained models).
  Result<core::Pipeline> BuildEnsemblePipeline(
      const PipelineSpec& base, const std::vector<StageSpec>& models,
      const std::string& ensemble_op, const std::string& id) const;

  /// Draws a fresh random spec (also used to diversify sequences).
  PipelineSpec RandomSpec();

  /// Mutates a spec in place (model-biased, per the survey).
  void Mutate(PipelineSpec& spec);

  /// Draws a random model stage compatible with the use case.
  StageSpec RandomModel();

  const std::vector<PipelineSpec>& history_specs() const { return specs_; }
  const UseCase& use_case() const { return use_case_; }
  double dataset_multiplier() const { return multiplier_; }

 private:
  StageSpec RandomImputer();
  StageSpec RandomScaler();
  StageSpec RandomFeature();
  std::string RandomMetric();
  std::string PickImpl(const std::string& logical_op,
                       const std::vector<std::string>& frameworks);

  UseCase use_case_;
  double multiplier_;
  Rng rng_;
  PipelineSpec current_;
  bool has_current_ = false;
  std::vector<PipelineSpec> specs_;
  int64_t counter_ = 0;
};

}  // namespace hyppo::workload

#endif  // HYPPO_WORKLOAD_PIPELINE_GENERATOR_H_
