#include "workload/sweep_generator.h"

#include <algorithm>
#include <set>
#include <utility>

#include "common/rng.h"

namespace hyppo::workload {

namespace {

// The spec stage an axis mutates; null when the base left it absent.
StageSpec* AxisStage(PipelineSpec& spec, SweepAxis::Stage stage) {
  switch (stage) {
    case SweepAxis::Stage::kImputer:
      return spec.imputer.present() ? &spec.imputer : nullptr;
    case SweepAxis::Stage::kScaler:
      return spec.scaler.present() ? &spec.scaler : nullptr;
    case SweepAxis::Stage::kFeature:
      return spec.feature.present() ? &spec.feature : nullptr;
    case SweepAxis::Stage::kModel:
      return spec.model.present() ? &spec.model : nullptr;
  }
  return nullptr;
}

const char* StageName(SweepAxis::Stage stage) {
  switch (stage) {
    case SweepAxis::Stage::kImputer:
      return "imputer";
    case SweepAxis::Stage::kScaler:
      return "scaler";
    case SweepAxis::Stage::kFeature:
      return "feature";
    case SweepAxis::Stage::kModel:
      return "model";
  }
  return "?";
}

Result<PipelineSpec> ApplyAssignment(const PipelineSpec& base,
                                     const std::vector<SweepAxis>& axes,
                                     const std::vector<size_t>& assignment) {
  PipelineSpec spec = base;
  for (size_t a = 0; a < axes.size(); ++a) {
    StageSpec* stage = AxisStage(spec, axes[a].stage);
    if (stage == nullptr) {
      return Status::InvalidArgument(
          std::string("sweep axis targets absent stage '") +
          StageName(axes[a].stage) + "'");
    }
    stage->config.Set(axes[a].param, axes[a].values[assignment[a]]);
  }
  return spec;
}

}  // namespace

SweepGenerator::SweepGenerator(UseCase use_case, double dataset_multiplier,
                               uint64_t seed)
    : use_case_(use_case),
      multiplier_(dataset_multiplier),
      seed_(seed),
      builder_(std::move(use_case), dataset_multiplier, seed) {}

Result<SweepWorkload> SweepGenerator::Generate(
    const PipelineSpec& base, const std::vector<SweepAxis>& axes,
    const SweepOptions& options, const std::string& id_prefix) {
  if (axes.empty()) {
    return Status::InvalidArgument("a sweep needs at least one axis");
  }
  for (const SweepAxis& axis : axes) {
    if (axis.values.empty()) {
      return Status::InvalidArgument("sweep axis '" + axis.param +
                                     "' has no values");
    }
  }
  // Enumerate axis-value assignments: the full grid in lexicographic
  // order (last axis fastest), or seeded random draws deduplicated by
  // joint assignment.
  std::vector<std::vector<size_t>> assignments;
  if (options.mode == SweepOptions::Mode::kGrid) {
    std::vector<size_t> odometer(axes.size(), 0);
    bool wrapped = false;
    while (!wrapped) {
      assignments.push_back(odometer);
      if (options.num_configs > 0 &&
          static_cast<int>(assignments.size()) >= options.num_configs) {
        break;
      }
      size_t a = axes.size();
      while (a > 0) {
        --a;
        if (++odometer[a] < axes[a].values.size()) {
          break;
        }
        odometer[a] = 0;
        wrapped = a == 0;  // carried past the first axis: grid exhausted
      }
    }
  } else {
    if (options.num_configs <= 0) {
      return Status::InvalidArgument(
          "random sweeps need an explicit num_configs");
    }
    Rng rng(options.seed);
    std::set<std::vector<size_t>> seen;
    // The joint space may hold fewer distinct configs than requested;
    // bounded attempts keep the draw loop finite either way.
    int64_t attempts = 64ll * options.num_configs;
    while (static_cast<int>(assignments.size()) < options.num_configs &&
           attempts-- > 0) {
      std::vector<size_t> draw(axes.size());
      for (size_t a = 0; a < axes.size(); ++a) {
        draw[a] = static_cast<size_t>(
            rng.NextBelow(static_cast<uint64_t>(axes[a].values.size())));
      }
      if (seen.insert(draw).second) {
        assignments.push_back(std::move(draw));
      }
    }
  }

  SweepWorkload workload;
  workload.pipelines.reserve(assignments.size());
  workload.specs.reserve(assignments.size());
  workload.prefix_signatures.reserve(assignments.size());
  std::set<std::string> prefixes;
  std::set<std::string> task_signatures;
  int64_t total_tasks = 0;
  for (size_t i = 0; i < assignments.size(); ++i) {
    HYPPO_ASSIGN_OR_RETURN(const PipelineSpec spec,
                           ApplyAssignment(base, axes, assignments[i]));
    HYPPO_ASSIGN_OR_RETURN(
        core::Pipeline pipeline,
        builder_.BuildFromSpec(spec, id_prefix + "-c" + std::to_string(i)));
    workload.prefix_signatures.push_back(spec.PrefixSignature());
    prefixes.insert(workload.prefix_signatures.back());
    for (EdgeId e : pipeline.graph.hypergraph().LiveEdges()) {
      ++total_tasks;
      task_signatures.insert(pipeline.graph.TaskSignature(e));
    }
    workload.specs.push_back(spec);
    workload.pipelines.push_back(std::move(pipeline));
  }
  workload.distinct_prefixes = static_cast<int64_t>(prefixes.size());
  workload.expected_merged_tasks =
      total_tasks - static_cast<int64_t>(task_signatures.size());
  return workload;
}

PipelineSpec SweepGenerator::DemoBaseSpec() const {
  PipelineSpec spec;
  spec.imputer.logical_op = "SimpleImputer";
  spec.imputer.impl = "skl.SimpleImputer";
  spec.imputer.config.Set("strategy", "mean");
  spec.scaler.logical_op = "StandardScaler";
  spec.scaler.impl = "skl.StandardScaler";
  if (use_case_.classification) {
    spec.feature.logical_op = "PCA";
    spec.feature.impl = "skl.PCA";
    spec.feature.config.SetInt("n_components", 5);
    spec.model.logical_op = "RandomForestClassifier";
    spec.model.impl = "skl.RandomForestClassifier";
    spec.metric = "accuracy";
  } else {
    spec.model.logical_op = "RandomForestRegressor";
    spec.model.impl = "skl.RandomForestRegressor";
    spec.metric = "rmse";
  }
  spec.model.config.SetInt("n_estimators", 12);
  spec.model.config.SetInt("max_depth", 6);
  spec.split_seed = 13;
  return spec;
}

std::vector<SweepAxis> SweepGenerator::DemoAxes(int num_configs) const {
  // Two model axes whose grid covers any requested size: up to 8 depths,
  // and as many estimator counts as the truncated grid needs.
  const int depth_count = std::max(1, std::min(8, num_configs));
  SweepAxis depth;
  depth.stage = SweepAxis::Stage::kModel;
  depth.param = "max_depth";
  for (int i = 0; i < depth_count; ++i) {
    depth.values.push_back(std::to_string(3 + i));
  }
  const int estimator_count =
      std::max(1, (num_configs + depth_count - 1) / depth_count);
  SweepAxis estimators;
  estimators.stage = SweepAxis::Stage::kModel;
  estimators.param = "n_estimators";
  for (int i = 0; i < estimator_count; ++i) {
    estimators.values.push_back(std::to_string(8 + 4 * i));
  }
  // Estimators vary slowest so a truncated grid still sweeps every depth.
  return {std::move(estimators), std::move(depth)};
}

Result<SweepWorkload> SweepGenerator::DemoSweep(int num_configs,
                                                const std::string& id_prefix) {
  if (num_configs <= 0) {
    return Status::InvalidArgument("a sweep needs at least one config");
  }
  SweepOptions options;
  options.mode = SweepOptions::Mode::kGrid;
  options.num_configs = num_configs;
  options.seed = seed_;
  return Generate(DemoBaseSpec(), DemoAxes(num_configs), options, id_prefix);
}

}  // namespace hyppo::workload
