#ifndef HYPPO_WORKLOAD_SCENARIO_H_
#define HYPPO_WORKLOAD_SCENARIO_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/method.h"
#include "workload/datagen.h"
#include "workload/pipeline_generator.h"

namespace hyppo::workload {

/// Creates one optimization method bound to a fresh runtime. Each method
/// in a comparison gets its own runtime (own history, store, estimator),
/// as in the paper's per-method experiment runs.
using MethodFactory =
    std::function<std::unique_ptr<core::Method>(core::Runtime*)>;

/// Factories for the paper's five methods.
MethodFactory MakeNoOptimizationFactory();
MethodFactory MakeSharingFactory();
MethodFactory MakeHelixFactory();
MethodFactory MakeCollabFactory();
MethodFactory MakeHyppoFactory();

/// \brief Configuration of the iterative-execution scenario (paper §V-B1).
struct ScenarioConfig {
  UseCase use_case = UseCase::Higgs();
  int num_pipelines = 20;
  /// Storage budget as a fraction of the raw dataset size (the paper's
  /// B = 0.01 ... 1.0 sweep).
  double budget_factor = 0.1;
  double dataset_multiplier = 0.01;
  uint64_t seed = 42;
  /// Simulation mode (default): deterministic cost-model execution, used
  /// for the paper-shaped sweeps. Off = real ML execution.
  bool simulate = true;
  /// Invariant verification (on by default): every plan is checked before
  /// execution, and the final history must verify clean (src/analysis).
  bool verify = true;
  /// Worker threads for execution and for the parallel plan search
  /// (core::RuntimeOptions::parallelism); 0 = all hardware threads.
  int parallelism = 1;
  /// Chaos knob: probability of injected execution-layer faults (store
  /// loads vanishing/corrupting/slowing, resolver outages, operator
  /// failures; see storage::FaultPlan::Uniform). 0 disables injection.
  /// Failures are absorbed by the runtime's self-healing recovery loop.
  double fault_rate = 0.0;
  /// Seed of the fault plan; 0 reuses `seed`.
  uint64_t fault_seed = 0;
  /// Durable session directory. Empty (default) keeps artifacts in the
  /// in-memory store; non-empty puts a disk-backed tiered store under
  /// this path and persists the history after every pipeline, so a later
  /// run pointed at the same directory resumes with its materialized set.
  std::string store_dir;
  /// Concurrent client sessions sharing one runtime (history + store).
  /// 1 (default) keeps the classic single-owner loop; > 1 partitions the
  /// pipeline sequence round-robin across this many sessions driven
  /// concurrently by serving::SessionManager, so sessions reuse each
  /// other's materialized artifacts (docs/SERVING.md).
  int sessions = 1;
};

/// \brief Result of running one pipeline sequence under one method.
struct SequenceResult {
  std::string method;
  std::vector<double> per_pipeline_seconds;
  double cumulative_seconds = 0.0;    // the paper's cet
  double optimize_seconds = 0.0;      // total planning overhead
  double price_eur = 0.0;             // cet x 0.00018 + B_GB x 0.023
  int64_t budget_bytes = 0;
  int64_t stored_artifacts = 0;       // after the last pipeline
  int64_t history_artifacts = 0;
  /// Cumulative seconds after each pipeline (for #pipelines sweeps).
  std::vector<double> cumulative_after;
  /// Self-healing telemetry (non-zero only with a fault_rate or real
  /// storage faults): degrade-and-re-plan rounds, task failures absorbed,
  /// tasks recovered from surviving payloads, and faults injected.
  int64_t replans = 0;
  int64_t failed_tasks = 0;
  int64_t recovered_tasks = 0;
  int64_t injected_faults = 0;
  /// Plan-overhead telemetry: equivalence probes the augmenter answered
  /// from the history index (hits found an entry, misses did not), search
  /// states the optimizer's dominance antichain discarded, and history
  /// artifacts dropped by Pareto compaction.
  int64_t index_hits = 0;
  int64_t index_misses = 0;
  int64_t states_pruned = 0;
  int64_t history_compacted = 0;
  /// Serving telemetry (ScenarioConfig::sessions > 1): how many sessions
  /// drove the sequence, planned loads of materialized artifacts
  /// (reuse), the subset another session materialized (cross-session
  /// reuse), and sessions that waited in the admission queue.
  int sessions = 1;
  int64_t reuse_loads = 0;
  int64_t cross_session_loads = 0;
  int64_t sessions_queued = 0;
};

/// Runs scenario 1: execute `num_pipelines` sequentially, materializing
/// after each under the method's policy.
Result<SequenceResult> RunIterativeScenario(const MethodFactory& factory,
                                            const ScenarioConfig& config);

/// \brief Scenario 2 (paper §V-B2): retrieval of artifacts/models from a
/// steady-state history built by `history_pipelines` executions.
struct RetrievalConfig {
  UseCase use_case = UseCase::Higgs();
  int history_pipelines = 20;
  double budget_factor = 0.1;  // 0 disables materialization
  double dataset_multiplier = 0.01;
  uint64_t seed = 42;
  bool simulate = true;
  /// See ScenarioConfig::verify.
  bool verify = true;
  /// See ScenarioConfig::parallelism.
  int parallelism = 1;
  /// See ScenarioConfig::fault_rate / fault_seed.
  double fault_rate = 0.0;
  uint64_t fault_seed = 0;
  /// See ScenarioConfig::store_dir.
  std::string store_dir;
  int request_size = 4;    // artifacts per request
  int num_requests = 50;
  bool models_only = false;  // request fitted models only
};

struct RetrievalResult {
  std::string method;
  double mean_request_seconds = 0.0;
  double total_seconds = 0.0;
  double mean_optimize_seconds = 0.0;
  /// Fraction of history artifacts materialized (paper: HYPPO 83% etc.).
  double stored_fraction = 0.0;
};

Result<RetrievalResult> RunRetrievalScenario(const MethodFactory& factory,
                                             const RetrievalConfig& config);

/// \brief Scenario 3 (paper §V-B3): ensemble workloads over models
/// trained by a pre-built history.
struct EnsembleConfig {
  int history_pipelines = 30;
  int ensemble_pipelines = 10;
  double budget_factor = 0.1;
  double dataset_multiplier = 0.01;
  uint64_t seed = 42;
  bool simulate = true;
  /// See ScenarioConfig::verify.
  bool verify = true;
  /// See ScenarioConfig::parallelism.
  int parallelism = 1;
  /// See ScenarioConfig::fault_rate / fault_seed.
  double fault_rate = 0.0;
  uint64_t fault_seed = 0;
  /// See ScenarioConfig::store_dir.
  std::string store_dir;
};

Result<SequenceResult> RunEnsembleScenario(const MethodFactory& factory,
                                           const EnsembleConfig& config);

/// \brief Fig. 5 study: per-artifact-kind and per-task-type aggregates
/// plus the materializer's stored-fraction-by-kind breakdown, collected
/// while running scenario 1 under HYPPO.
struct TypeStudyRow {
  std::string label;
  double mean_seconds = 0.0;
  double mean_bytes = 0.0;
  int64_t count = 0;
  double stored_fraction = 0.0;
};
struct TypeStudyResult {
  std::vector<TypeStudyRow> artifact_kinds;
  std::vector<TypeStudyRow> task_types;
  int64_t budget_bytes = 0;
  int64_t stored_bytes = 0;
  double storage_price_eur = 0.0;
};
Result<TypeStudyResult> RunTypeStudy(const ScenarioConfig& config);

}  // namespace hyppo::workload

#endif  // HYPPO_WORKLOAD_SCENARIO_H_
