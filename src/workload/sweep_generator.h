#ifndef HYPPO_WORKLOAD_SWEEP_GENERATOR_H_
#define HYPPO_WORKLOAD_SWEEP_GENERATOR_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "workload/pipeline_generator.h"

namespace hyppo::workload {

/// \brief One axis of a hyperparameter sweep: a stage of the pipeline
/// spec, the config key to vary, and the values it ranges over (canonical
/// string form, as stored in ml::Config).
struct SweepAxis {
  enum class Stage { kImputer, kScaler, kFeature, kModel };
  Stage stage = Stage::kModel;
  std::string param;
  std::vector<std::string> values;
};

/// \brief How configurations are drawn from the axes.
struct SweepOptions {
  enum class Mode { kGrid, kRandom };
  Mode mode = Mode::kGrid;
  /// Random mode: number of distinct configurations to draw. Grid mode:
  /// 0 generates the full cross product; > 0 truncates it (lexicographic
  /// order, last axis fastest).
  int num_configs = 0;
  /// Seeds the random-mode draws; grid mode is deterministic regardless.
  uint64_t seed = 17;
};

/// \brief A generated sweep: the member pipelines plus the shared-prefix
/// ground truth a batch planner's merge statistics can be verified
/// against (configs varying only the model stage form a stage tree whose
/// trunk — load, impute, scale, feature, split — every member shares).
struct SweepWorkload {
  std::vector<core::Pipeline> pipelines;
  /// The spec each pipeline was built from, aligned with `pipelines`.
  std::vector<PipelineSpec> specs;
  /// PipelineSpec::PrefixSignature per member, aligned with `pipelines`.
  std::vector<std::string> prefix_signatures;
  /// Number of distinct preprocessing prefixes across the sweep.
  int64_t distinct_prefixes = 0;
  /// Exact number of task edges a signature-dedup merge of the batch
  /// folds away: total tasks across members minus distinct task
  /// signatures (BatchPlanner::Stats::merged_tasks must equal this).
  int64_t expected_merged_tasks = 0;
};

/// \brief Generates hyperparameter-sweep workloads over a base pipeline
/// spec: the exploratory traffic shape where a user submits a *set* of
/// configs at once and the batch planner folds their shared prefixes
/// (ROADMAP "Batch / hyperparameter-sweep workloads").
class SweepGenerator {
 public:
  SweepGenerator(UseCase use_case, double dataset_multiplier, uint64_t seed);

  /// Expands `axes` over `base` per `options` and builds one pipeline per
  /// configuration (ids `<id_prefix>-cN`). Deterministic for a fixed
  /// (base, axes, options, seed).
  Result<SweepWorkload> Generate(const PipelineSpec& base,
                                 const std::vector<SweepAxis>& axes,
                                 const SweepOptions& options,
                                 const std::string& id_prefix);

  /// The canonical demo sweep used by quickstart and the lint tooling
  /// (bench_sweep builds its own trunk-heavy spec): a fixed
  /// preprocessing prefix with a model
  /// hyperparameter grid (stage-tree shaped — one trunk, `num_configs`
  /// leaves). Axis values are tiled to cover any requested size.
  Result<SweepWorkload> DemoSweep(int num_configs,
                                  const std::string& id_prefix);

  /// The demo sweep's base spec and axes — exposed so tooling (lint) can
  /// report them.
  PipelineSpec DemoBaseSpec() const;
  std::vector<SweepAxis> DemoAxes(int num_configs) const;

 private:
  UseCase use_case_;
  double multiplier_;
  uint64_t seed_;
  PipelineGenerator builder_;
};

}  // namespace hyppo::workload

#endif  // HYPPO_WORKLOAD_SWEEP_GENERATOR_H_
