#ifndef HYPPO_WORKLOAD_DATAGEN_H_
#define HYPPO_WORKLOAD_DATAGEN_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "ml/dataset.h"

namespace hyppo::workload {

/// \brief Synthetic stand-ins for the paper's two Kaggle use cases
/// (Table I). The real competition data is not redistributable; these
/// generators reproduce what the evaluation actually depends on — the
/// dataset shapes (row/column counts drive task costs and artifact
/// sizes), the task type (binary classification vs. regression), missing
/// values (imputation work), and learnable non-trivial structure (so
/// models, metrics, and equivalence checks behave realistically).

/// HIGGS-like binary classification data: `cols` continuous physics-style
/// features from signal/background Gaussian mixtures with a nonlinear
/// decision structure; ~5% missing values (NaN) in a quarter of the
/// columns, mirroring the -999 placeholders of the ATLAS data. Target is
/// {0,1}. Paper-scale shape: (800000, 30).
Result<ml::DatasetPtr> GenerateHiggs(int64_t rows, int64_t cols,
                                     uint64_t seed);

/// TAXI-like regression data: NYC-trip-style columns (pickup/dropoff
/// coordinates, passenger count, hour, weekday, vendor, flags); target is
/// the trip duration in seconds, driven by haversine distance with
/// hour-dependent speeds and log-normal noise. Paper-scale shape:
/// (1000000, 11).
Result<ml::DatasetPtr> GenerateTaxi(int64_t rows, uint64_t seed);

/// \brief Descriptor of one use case (Table I row).
struct UseCase {
  std::string name;          // "HIGGS" / "TAXI"
  std::string description;   // Table I text
  int64_t teams = 0;         // T column
  int64_t paper_rows = 0;    // S column
  int64_t paper_cols = 0;
  bool classification = false;
  std::string default_metric;

  /// Dataset id used by pipelines for this use case at the given scale.
  std::string DatasetId(double multiplier) const;
  /// Rows at the given multiplier (at least 400).
  int64_t RowsAt(double multiplier) const;

  static UseCase Higgs();
  static UseCase Taxi();
};

/// Generates the use case's dataset at the given scale.
Result<ml::DatasetPtr> GenerateUseCase(const UseCase& use_case,
                                       double multiplier, uint64_t seed);

}  // namespace hyppo::workload

#endif  // HYPPO_WORKLOAD_DATAGEN_H_
