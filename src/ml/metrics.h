#ifndef HYPPO_ML_METRICS_H_
#define HYPPO_ML_METRICS_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace hyppo::ml {

/// \brief Evaluation metrics (the `evaluate` task type).
///
/// Classification metrics expect predictions as scores in [0,1] or hard
/// labels {0,1}; thresholding at 0.5 is applied where labels are needed.
/// Regression metrics operate on raw values.

/// Fraction of correct hard predictions.
Result<double> Accuracy(const std::vector<double>& predictions,
                        const std::vector<double>& truth);

/// Binary F1 score of the positive class.
Result<double> F1Score(const std::vector<double>& predictions,
                       const std::vector<double>& truth);

/// Binary cross-entropy with probability clipping.
Result<double> LogLoss(const std::vector<double>& predictions,
                       const std::vector<double>& truth);

/// Approximate Median Significance — the HIGGS challenge metric.
/// Treats truth==1 as signal; uses unit event weights.
Result<double> Ams(const std::vector<double>& predictions,
                   const std::vector<double>& truth);

/// Root mean squared error.
Result<double> Rmse(const std::vector<double>& predictions,
                    const std::vector<double>& truth);

/// Root mean squared logarithmic error — the TAXI challenge metric.
/// Negative values are clamped to 0 before log1p.
Result<double> Rmsle(const std::vector<double>& predictions,
                     const std::vector<double>& truth);

/// Mean absolute error.
Result<double> Mae(const std::vector<double>& predictions,
                   const std::vector<double>& truth);

/// Coefficient of determination.
Result<double> R2(const std::vector<double>& predictions,
                  const std::vector<double>& truth);

/// Dispatches by metric name ("accuracy", "f1", "logloss", "ams", "rmse",
/// "rmsle", "mae", "r2").
Result<double> EvaluateMetric(const std::string& metric,
                              const std::vector<double>& predictions,
                              const std::vector<double>& truth);

/// All metric names understood by EvaluateMetric.
std::vector<std::string> KnownMetrics();

}  // namespace hyppo::ml

#endif  // HYPPO_ML_METRICS_H_
