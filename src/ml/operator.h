#ifndef HYPPO_ML_OPERATOR_H_
#define HYPPO_ML_OPERATOR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "ml/config.h"
#include "ml/dataset.h"
#include "ml/op_state.h"

namespace hyppo::ml {

/// \brief Fundamental task types exposed by physical operators (paper
/// §III-A: "there exist some fundamental tasks that are common across
/// physical implementations; we call these task types").
enum class MlTask {
  kSplit,      ///< data -> (train, test)
  kFit,        ///< data [+ states] -> op-state
  kTransform,  ///< op-state + data -> data
  kPredict,    ///< op-state [+ states] + data -> predictions
  kEvaluate,   ///< predictions + data(target) -> value
};

/// Stable lower-case name ("fit", "transform", ...).
const char* MlTaskToString(MlTask task);

/// Parses a task-type name; returns InvalidArgument on unknown names.
Result<MlTask> MlTaskFromString(const std::string& name);

using PredictionsPtr = std::shared_ptr<const std::vector<double>>;

/// \brief Reproducibility contract of a physical implementation.
///
/// `kDeterministic` implementations produce byte-identical payloads for
/// identical (inputs, config) — the contract the executor differential and
/// chaos suites enforce, and the property fault-recovery re-execution
/// depends on. `kNonDeterministic` marks implementations whose output may
/// vary across runs (wall-clock seeding, unordered iteration, thread
/// scheduling); the static determinism lint rejects them on bitwise paths.
enum class Determinism {
  kDeterministic = 0,
  kNonDeterministic = 1,
};

const char* DeterminismToString(Determinism determinism);

/// \brief How tightly implementations of one logical operator agree.
///
/// `kExact` families produce byte-identical outputs across every
/// registered implementation (e.g. both split implementations derive the
/// same permutation from the seed). `kNumeric` families agree only up to
/// floating-point tolerance (e.g. two-pass vs streaming variance). The
/// equivalence soundness audit requires the class to be consistent across
/// a logical operator's implementations.
enum class Tolerance {
  kExact = 0,
  kNumeric = 1,
};

const char* ToleranceToString(Tolerance tolerance);

/// Artifacts consumed by one task execution, grouped by kind. Order within
/// each kind follows the task's tail order in the pipeline.
struct TaskInputs {
  std::vector<DatasetPtr> datasets;
  std::vector<OpStatePtr> states;
  std::vector<PredictionsPtr> predictions;
};

/// Artifacts produced by one task execution.
struct TaskOutputs {
  std::vector<DatasetPtr> datasets;
  std::vector<OpStatePtr> states;
  std::vector<PredictionsPtr> predictions;
  std::vector<double> values;
};

/// \brief A physical operator: one concrete implementation of a logical
/// operator in some emulated framework (paper §III-A).
///
/// Implementations of the same logical operator are *equivalent*: given the
/// same inputs they produce numerically equivalent outputs (tests enforce
/// this), but at different costs — the property HYPPO's augmenter exploits.
/// Framework names mirror the paper's setup: "skl" (scikit-learn-like
/// exact algorithms) and "tfl" (TensorFlow-like iterative/streaming
/// algorithms); a few operators add a third ("lgb", histogram trees).
class PhysicalOperator {
 public:
  PhysicalOperator(std::string logical_op, std::string framework)
      : logical_op_(std::move(logical_op)), framework_(std::move(framework)) {}
  virtual ~PhysicalOperator() = default;

  PhysicalOperator(const PhysicalOperator&) = delete;
  PhysicalOperator& operator=(const PhysicalOperator&) = delete;

  const std::string& logical_op() const { return logical_op_; }
  const std::string& framework() const { return framework_; }
  /// Fully qualified implementation name, e.g. "skl.StandardScaler".
  std::string impl_name() const { return framework_ + "." + logical_op_; }

  /// Reproducibility contract; all builtins are deterministic.
  Determinism determinism() const { return determinism_; }
  /// Cross-implementation agreement class for this logical operator.
  Tolerance tolerance() const { return tolerance_; }

  /// True if this implementation exposes the given task type.
  virtual bool SupportsTask(MlTask task) const = 0;

  /// Runs one task. Input arity/kinds are validated and reported as
  /// InvalidArgument.
  virtual Result<TaskOutputs> Execute(MlTask task, const TaskInputs& inputs,
                                      const Config& config) const = 0;

  /// \brief Analytic cost estimate in seconds for the given input shape.
  ///
  /// This is the "known cost formula parameterized by the input data size"
  /// of paper §IV-G; the cost estimator uses it until enough observations
  /// are collected, then switches to learned bucket statistics.
  virtual double CostHint(MlTask task, int64_t rows, int64_t cols,
                          const Config& config) const;

 protected:
  /// Subclass constructors declare their contract; defaults are the common
  /// case (seed-derived determinism, float-tolerant cross-impl agreement).
  void set_determinism(Determinism determinism) { determinism_ = determinism; }
  void set_tolerance(Tolerance tolerance) { tolerance_ = tolerance; }

 private:
  std::string logical_op_;
  std::string framework_;
  Determinism determinism_ = Determinism::kDeterministic;
  Tolerance tolerance_ = Tolerance::kNumeric;
};

/// \brief Convenience base for fit/transform/predict estimators.
///
/// Subclasses override DoFit and one of DoTransform / DoPredict; Execute
/// performs arity validation and dispatch.
class Estimator : public PhysicalOperator {
 public:
  Estimator(std::string logical_op, std::string framework, bool transforms,
            bool predicts)
      : PhysicalOperator(std::move(logical_op), std::move(framework)),
        transforms_(transforms),
        predicts_(predicts) {}

  bool SupportsTask(MlTask task) const override;
  Result<TaskOutputs> Execute(MlTask task, const TaskInputs& inputs,
                              const Config& config) const override;

 protected:
  virtual Result<OpStatePtr> DoFit(const Dataset& data,
                                   const Config& config) const = 0;
  virtual Result<Dataset> DoTransform(const OpState& state,
                                      const Dataset& data) const;
  virtual Result<std::vector<double>> DoPredict(const OpState& state,
                                                const Dataset& data) const;

 private:
  bool transforms_;
  bool predicts_;
};

/// Dispatches a predict call for an arbitrary fitted state through the
/// global registry (used by ensemble operators to run base models).
Result<std::vector<double>> PredictWithImpl(const std::string& impl_name,
                                            const OpState& state,
                                            const Dataset& data);

}  // namespace hyppo::ml

#endif  // HYPPO_ML_OPERATOR_H_
