#include "ml/operator.h"

#include "ml/registry.h"

namespace hyppo::ml {

const char* MlTaskToString(MlTask task) {
  switch (task) {
    case MlTask::kSplit:
      return "split";
    case MlTask::kFit:
      return "fit";
    case MlTask::kTransform:
      return "transform";
    case MlTask::kPredict:
      return "predict";
    case MlTask::kEvaluate:
      return "evaluate";
  }
  return "unknown";
}

Result<MlTask> MlTaskFromString(const std::string& name) {
  if (name == "split") return MlTask::kSplit;
  if (name == "fit") return MlTask::kFit;
  if (name == "transform") return MlTask::kTransform;
  if (name == "predict") return MlTask::kPredict;
  if (name == "evaluate") return MlTask::kEvaluate;
  return Status::InvalidArgument("unknown task type '" + name + "'");
}

const char* DeterminismToString(Determinism determinism) {
  switch (determinism) {
    case Determinism::kDeterministic:
      return "deterministic";
    case Determinism::kNonDeterministic:
      return "non-deterministic";
  }
  return "unknown";
}

const char* ToleranceToString(Tolerance tolerance) {
  switch (tolerance) {
    case Tolerance::kExact:
      return "exact";
    case Tolerance::kNumeric:
      return "numeric";
  }
  return "unknown";
}

double PhysicalOperator::CostHint(MlTask task, int64_t rows, int64_t cols,
                                  const Config& /*config*/) const {
  // Generic fallback: linear in the number of cells, fit 10x heavier.
  const double cells = static_cast<double>(rows) * static_cast<double>(cols);
  switch (task) {
    case MlTask::kFit:
      return 1e-7 * cells;
    case MlTask::kTransform:
    case MlTask::kPredict:
      return 1e-8 * cells;
    case MlTask::kSplit:
      return 5e-9 * cells;
    case MlTask::kEvaluate:
      return 1e-9 * static_cast<double>(rows);
  }
  return 1e-8 * cells;
}

bool Estimator::SupportsTask(MlTask task) const {
  switch (task) {
    case MlTask::kFit:
      return true;
    case MlTask::kTransform:
      return transforms_;
    case MlTask::kPredict:
      return predicts_;
    default:
      return false;
  }
}

Result<TaskOutputs> Estimator::Execute(MlTask task, const TaskInputs& inputs,
                                       const Config& config) const {
  TaskOutputs outputs;
  switch (task) {
    case MlTask::kFit: {
      if (inputs.datasets.size() != 1) {
        return Status::InvalidArgument(impl_name() +
                                       ".fit expects exactly one dataset");
      }
      HYPPO_ASSIGN_OR_RETURN(OpStatePtr state,
                             DoFit(*inputs.datasets[0], config));
      outputs.states.push_back(std::move(state));
      return outputs;
    }
    case MlTask::kTransform: {
      if (!transforms_) {
        return Status::InvalidArgument(impl_name() +
                                       " does not support transform");
      }
      if (inputs.datasets.size() != 1 || inputs.states.size() != 1) {
        return Status::InvalidArgument(
            impl_name() + ".transform expects one op-state and one dataset");
      }
      HYPPO_ASSIGN_OR_RETURN(
          Dataset data, DoTransform(*inputs.states[0], *inputs.datasets[0]));
      outputs.datasets.push_back(
          std::make_shared<const Dataset>(std::move(data)));
      return outputs;
    }
    case MlTask::kPredict: {
      if (!predicts_) {
        return Status::InvalidArgument(impl_name() +
                                       " does not support predict");
      }
      if (inputs.datasets.size() != 1 || inputs.states.size() != 1) {
        return Status::InvalidArgument(
            impl_name() + ".predict expects one op-state and one dataset");
      }
      HYPPO_ASSIGN_OR_RETURN(
          std::vector<double> preds,
          DoPredict(*inputs.states[0], *inputs.datasets[0]));
      outputs.predictions.push_back(
          std::make_shared<const std::vector<double>>(std::move(preds)));
      return outputs;
    }
    default:
      return Status::InvalidArgument(impl_name() + " does not support task " +
                                     MlTaskToString(task));
  }
}

Result<Dataset> Estimator::DoTransform(const OpState& /*state*/,
                                       const Dataset& /*data*/) const {
  return Status::NotImplemented(impl_name() + " transform");
}

Result<std::vector<double>> Estimator::DoPredict(
    const OpState& /*state*/, const Dataset& /*data*/) const {
  return Status::NotImplemented(impl_name() + " predict");
}

Result<std::vector<double>> PredictWithImpl(const std::string& impl_name,
                                            const OpState& state,
                                            const Dataset& data) {
  HYPPO_ASSIGN_OR_RETURN(const PhysicalOperator* op,
                         OperatorRegistry::Global().Get(impl_name));
  TaskInputs inputs;
  inputs.datasets.push_back(std::make_shared<const Dataset>(data));
  // The state is owned elsewhere; alias it with a no-op deleter.
  inputs.states.push_back(OpStatePtr(&state, [](const OpState*) {}));
  HYPPO_ASSIGN_OR_RETURN(TaskOutputs out,
                         op->Execute(MlTask::kPredict, inputs, Config()));
  if (out.predictions.size() != 1) {
    return Status::Internal(impl_name + " predict produced " +
                            std::to_string(out.predictions.size()) +
                            " outputs");
  }
  return *out.predictions[0];
}

}  // namespace hyppo::ml
