#include "ml/dataset.h"

#include <sstream>

namespace hyppo::ml {

Dataset::Dataset(int64_t rows, int64_t cols)
    : rows_(rows),
      cols_(cols),
      values_(static_cast<size_t>(rows * cols), 0.0) {
  column_names_.reserve(static_cast<size_t>(cols));
  for (int64_t c = 0; c < cols; ++c) {
    column_names_.push_back("f" + std::to_string(c));
  }
}

Dataset Dataset::WithColumns(int64_t rows, std::vector<std::string> names) {
  Dataset dataset(rows, static_cast<int64_t>(names.size()));
  dataset.column_names_ = std::move(names);
  return dataset;
}

void Dataset::CopyRow(int64_t row, double* out) const {
  for (int64_t c = 0; c < cols_; ++c) {
    out[c] = values_[static_cast<size_t>(c * rows_ + row)];
  }
}

void Dataset::set_column_names(std::vector<std::string> names) {
  column_names_ = std::move(names);
}

void Dataset::set_target(std::vector<double> target) {
  target_ = std::move(target);
  has_target_ = !target_.empty();
}

int64_t Dataset::SizeBytes() const {
  return static_cast<int64_t>(values_.size() * sizeof(double)) +
         static_cast<int64_t>(target_.size() * sizeof(double));
}

Dataset Dataset::SelectRows(const std::vector<int64_t>& rows) const {
  Dataset out(static_cast<int64_t>(rows.size()), cols_);
  out.column_names_ = column_names_;
  for (int64_t c = 0; c < cols_; ++c) {
    const double* src = col_data(c);
    double* dst = out.col_data(c);
    for (size_t i = 0; i < rows.size(); ++i) {
      dst[i] = src[rows[i]];
    }
  }
  if (has_target_) {
    std::vector<double> new_target(rows.size());
    for (size_t i = 0; i < rows.size(); ++i) {
      new_target[i] = target_[static_cast<size_t>(rows[i])];
    }
    out.set_target(std::move(new_target));
  }
  return out;
}

Result<Dataset> Dataset::SelectCols(const std::vector<int64_t>& cols) const {
  for (int64_t c : cols) {
    if (c < 0 || c >= cols_) {
      return Status::OutOfRange("column index " + std::to_string(c) +
                                " out of range [0, " + std::to_string(cols_) +
                                ")");
    }
  }
  Dataset out(rows_, static_cast<int64_t>(cols.size()));
  std::vector<std::string> names;
  names.reserve(cols.size());
  for (size_t i = 0; i < cols.size(); ++i) {
    const double* src = col_data(cols[i]);
    double* dst = out.col_data(static_cast<int64_t>(i));
    std::copy(src, src + rows_, dst);
    names.push_back(column_names_[static_cast<size_t>(cols[i])]);
  }
  out.set_column_names(std::move(names));
  if (has_target_) {
    out.set_target(target_);
  }
  return out;
}

Status Dataset::AddColumn(const std::string& name,
                          const std::vector<double>& data) {
  if (static_cast<int64_t>(data.size()) != rows_) {
    return Status::InvalidArgument(
        "column '" + name + "' has " + std::to_string(data.size()) +
        " rows, dataset has " + std::to_string(rows_));
  }
  values_.insert(values_.end(), data.begin(), data.end());
  column_names_.push_back(name);
  ++cols_;
  return Status::OK();
}

std::string Dataset::DebugString() const {
  std::ostringstream os;
  os << "Dataset(" << rows_ << "x" << cols_;
  if (has_target_) {
    os << ", target";
  }
  os << ")";
  return os.str();
}

}  // namespace hyppo::ml
