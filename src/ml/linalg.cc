#include "ml/linalg.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "ml/kernels/kernels.h"

namespace hyppo::ml {

Result<std::vector<double>> CholeskySolve(std::vector<double> a, int64_t n,
                                          const std::vector<double>& b,
                                          double ridge) {
  if (static_cast<int64_t>(b.size()) != n) {
    return Status::InvalidArgument("CholeskySolve: size mismatch");
  }
  for (int64_t i = 0; i < n; ++i) {
    a[static_cast<size_t>(i * n + i)] += ridge;
  }
  // In-place lower Cholesky factorization.
  for (int64_t j = 0; j < n; ++j) {
    double diag = a[static_cast<size_t>(j * n + j)];
    for (int64_t k = 0; k < j; ++k) {
      const double v = a[static_cast<size_t>(j * n + k)];
      diag -= v * v;
    }
    if (diag <= 1e-12) {
      return Status::InvalidArgument(
          "CholeskySolve: matrix not positive definite");
    }
    const double root = std::sqrt(diag);
    a[static_cast<size_t>(j * n + j)] = root;
    for (int64_t i = j + 1; i < n; ++i) {
      double sum = a[static_cast<size_t>(i * n + j)];
      for (int64_t k = 0; k < j; ++k) {
        sum -= a[static_cast<size_t>(i * n + k)] *
               a[static_cast<size_t>(j * n + k)];
      }
      a[static_cast<size_t>(i * n + j)] = sum / root;
    }
  }
  // Forward substitution: L y = b.
  std::vector<double> y(static_cast<size_t>(n), 0.0);
  for (int64_t i = 0; i < n; ++i) {
    double sum = b[static_cast<size_t>(i)];
    for (int64_t k = 0; k < i; ++k) {
      sum -= a[static_cast<size_t>(i * n + k)] * y[static_cast<size_t>(k)];
    }
    y[static_cast<size_t>(i)] = sum / a[static_cast<size_t>(i * n + i)];
  }
  // Back substitution: L^T x = y.
  std::vector<double> x(static_cast<size_t>(n), 0.0);
  for (int64_t i = n - 1; i >= 0; --i) {
    double sum = y[static_cast<size_t>(i)];
    for (int64_t k = i + 1; k < n; ++k) {
      sum -= a[static_cast<size_t>(k * n + i)] * x[static_cast<size_t>(k)];
    }
    x[static_cast<size_t>(i)] = sum / a[static_cast<size_t>(i * n + i)];
  }
  return x;
}

Result<EigenDecomposition> JacobiEigenSymmetric(std::vector<double> a,
                                                int64_t n, int max_sweeps) {
  if (static_cast<int64_t>(a.size()) != n * n) {
    return Status::InvalidArgument("JacobiEigenSymmetric: size mismatch");
  }
  // v starts as identity; accumulates rotations (columns are eigenvectors).
  std::vector<double> v(static_cast<size_t>(n * n), 0.0);
  for (int64_t i = 0; i < n; ++i) {
    v[static_cast<size_t>(i * n + i)] = 1.0;
  }
  auto at = [&](std::vector<double>& m, int64_t r, int64_t c) -> double& {
    return m[static_cast<size_t>(r * n + c)];
  };
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (int64_t p = 0; p < n; ++p) {
      for (int64_t q = p + 1; q < n; ++q) {
        off += at(a, p, q) * at(a, p, q);
      }
    }
    if (off < 1e-22) {
      break;
    }
    for (int64_t p = 0; p < n; ++p) {
      for (int64_t q = p + 1; q < n; ++q) {
        const double apq = at(a, p, q);
        if (std::fabs(apq) < 1e-18) {
          continue;
        }
        const double app = at(a, p, p);
        const double aqq = at(a, q, q);
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::fabs(theta) +
                          std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        for (int64_t k = 0; k < n; ++k) {
          const double akp = at(a, k, p);
          const double akq = at(a, k, q);
          at(a, k, p) = c * akp - s * akq;
          at(a, k, q) = s * akp + c * akq;
        }
        for (int64_t k = 0; k < n; ++k) {
          const double apk = at(a, p, k);
          const double aqk = at(a, q, k);
          at(a, p, k) = c * apk - s * aqk;
          at(a, q, k) = s * apk + c * aqk;
        }
        for (int64_t k = 0; k < n; ++k) {
          const double vkp = at(v, k, p);
          const double vkq = at(v, k, q);
          at(v, k, p) = c * vkp - s * vkq;
          at(v, k, q) = s * vkp + c * vkq;
        }
      }
    }
  }
  EigenDecomposition decomp;
  decomp.n = n;
  std::vector<int64_t> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int64_t x, int64_t y) {
    return at(a, x, x) > at(a, y, y);
  });
  decomp.eigenvalues.reserve(static_cast<size_t>(n));
  decomp.eigenvectors.assign(static_cast<size_t>(n * n), 0.0);
  for (int64_t i = 0; i < n; ++i) {
    const int64_t src = order[static_cast<size_t>(i)];
    decomp.eigenvalues.push_back(at(a, src, src));
    for (int64_t k = 0; k < n; ++k) {
      decomp.eigenvectors[static_cast<size_t>(i * n + k)] = at(v, k, src);
    }
  }
  return decomp;
}

void MatVec(const std::vector<double>& m, int64_t rows, int64_t cols,
            const std::vector<double>& x, std::vector<double>& y) {
  y.assign(static_cast<size_t>(rows), 0.0);
  kernels::Gemv(m.data(), rows, cols, x.data(), y.data());
}

double Dot(const double* a, const double* b, int64_t n) {
  return kernels::Dot(a, b, n);
}

double Norm2(const double* a, int64_t n) { return std::sqrt(Dot(a, a, n)); }

}  // namespace hyppo::ml
