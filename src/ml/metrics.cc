#include "ml/metrics.h"

#include <algorithm>
#include <cmath>

namespace hyppo::ml {

namespace {

Status CheckSizes(const std::vector<double>& predictions,
                  const std::vector<double>& truth) {
  if (predictions.size() != truth.size()) {
    return Status::InvalidArgument(
        "metric: predictions (" + std::to_string(predictions.size()) +
        ") and truth (" + std::to_string(truth.size()) + ") size mismatch");
  }
  if (predictions.empty()) {
    return Status::InvalidArgument("metric: empty inputs");
  }
  return Status::OK();
}

double HardLabel(double score) { return score >= 0.5 ? 1.0 : 0.0; }

}  // namespace

Result<double> Accuracy(const std::vector<double>& predictions,
                        const std::vector<double>& truth) {
  HYPPO_RETURN_NOT_OK(CheckSizes(predictions, truth));
  int64_t correct = 0;
  for (size_t i = 0; i < predictions.size(); ++i) {
    correct += (HardLabel(predictions[i]) == HardLabel(truth[i])) ? 1 : 0;
  }
  return static_cast<double>(correct) / static_cast<double>(truth.size());
}

Result<double> F1Score(const std::vector<double>& predictions,
                       const std::vector<double>& truth) {
  HYPPO_RETURN_NOT_OK(CheckSizes(predictions, truth));
  int64_t tp = 0;
  int64_t fp = 0;
  int64_t fn = 0;
  for (size_t i = 0; i < predictions.size(); ++i) {
    const bool pred = HardLabel(predictions[i]) > 0.5;
    const bool real = HardLabel(truth[i]) > 0.5;
    tp += (pred && real) ? 1 : 0;
    fp += (pred && !real) ? 1 : 0;
    fn += (!pred && real) ? 1 : 0;
  }
  const double denom = static_cast<double>(2 * tp + fp + fn);
  if (denom == 0.0) {
    return 0.0;
  }
  return 2.0 * static_cast<double>(tp) / denom;
}

Result<double> LogLoss(const std::vector<double>& predictions,
                       const std::vector<double>& truth) {
  HYPPO_RETURN_NOT_OK(CheckSizes(predictions, truth));
  double sum = 0.0;
  for (size_t i = 0; i < predictions.size(); ++i) {
    const double p = std::clamp(predictions[i], 1e-12, 1.0 - 1e-12);
    const double y = HardLabel(truth[i]);
    sum += y * std::log(p) + (1.0 - y) * std::log(1.0 - p);
  }
  return -sum / static_cast<double>(truth.size());
}

Result<double> Ams(const std::vector<double>& predictions,
                   const std::vector<double>& truth) {
  HYPPO_RETURN_NOT_OK(CheckSizes(predictions, truth));
  // s = weighted signal selected, b = weighted background selected; with
  // unit weights these are counts. b_reg is the challenge's regularizer.
  double s = 0.0;
  double b = 0.0;
  for (size_t i = 0; i < predictions.size(); ++i) {
    if (HardLabel(predictions[i]) > 0.5) {
      if (HardLabel(truth[i]) > 0.5) {
        s += 1.0;
      } else {
        b += 1.0;
      }
    }
  }
  const double b_reg = 10.0;
  const double inner =
      2.0 * ((s + b + b_reg) * std::log(1.0 + s / (b + b_reg)) - s);
  return std::sqrt(std::max(0.0, inner));
}

Result<double> Rmse(const std::vector<double>& predictions,
                    const std::vector<double>& truth) {
  HYPPO_RETURN_NOT_OK(CheckSizes(predictions, truth));
  double sum = 0.0;
  for (size_t i = 0; i < predictions.size(); ++i) {
    const double diff = predictions[i] - truth[i];
    sum += diff * diff;
  }
  return std::sqrt(sum / static_cast<double>(truth.size()));
}

Result<double> Rmsle(const std::vector<double>& predictions,
                     const std::vector<double>& truth) {
  HYPPO_RETURN_NOT_OK(CheckSizes(predictions, truth));
  double sum = 0.0;
  for (size_t i = 0; i < predictions.size(); ++i) {
    const double p = std::log1p(std::max(0.0, predictions[i]));
    const double t = std::log1p(std::max(0.0, truth[i]));
    const double diff = p - t;
    sum += diff * diff;
  }
  return std::sqrt(sum / static_cast<double>(truth.size()));
}

Result<double> Mae(const std::vector<double>& predictions,
                   const std::vector<double>& truth) {
  HYPPO_RETURN_NOT_OK(CheckSizes(predictions, truth));
  double sum = 0.0;
  for (size_t i = 0; i < predictions.size(); ++i) {
    sum += std::fabs(predictions[i] - truth[i]);
  }
  return sum / static_cast<double>(truth.size());
}

Result<double> R2(const std::vector<double>& predictions,
                  const std::vector<double>& truth) {
  HYPPO_RETURN_NOT_OK(CheckSizes(predictions, truth));
  double mean = 0.0;
  for (double t : truth) {
    mean += t;
  }
  mean /= static_cast<double>(truth.size());
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (size_t i = 0; i < truth.size(); ++i) {
    const double res = truth[i] - predictions[i];
    const double dev = truth[i] - mean;
    ss_res += res * res;
    ss_tot += dev * dev;
  }
  if (ss_tot == 0.0) {
    return ss_res == 0.0 ? 1.0 : 0.0;
  }
  return 1.0 - ss_res / ss_tot;
}

Result<double> EvaluateMetric(const std::string& metric,
                              const std::vector<double>& predictions,
                              const std::vector<double>& truth) {
  if (metric == "accuracy") return Accuracy(predictions, truth);
  if (metric == "f1") return F1Score(predictions, truth);
  if (metric == "logloss") return LogLoss(predictions, truth);
  if (metric == "ams") return Ams(predictions, truth);
  if (metric == "rmse") return Rmse(predictions, truth);
  if (metric == "rmsle") return Rmsle(predictions, truth);
  if (metric == "mae") return Mae(predictions, truth);
  if (metric == "r2") return R2(predictions, truth);
  return Status::InvalidArgument("unknown metric '" + metric + "'");
}

std::vector<std::string> KnownMetrics() {
  return {"accuracy", "f1", "logloss", "ams", "rmse", "rmsle", "mae", "r2"};
}

}  // namespace hyppo::ml
