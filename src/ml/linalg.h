#ifndef HYPPO_ML_LINALG_H_
#define HYPPO_ML_LINALG_H_

#include <cstdint>
#include <vector>

#include "common/result.h"

namespace hyppo::ml {

/// \brief Minimal dense linear algebra used by the exact ("skl"-flavoured)
/// model implementations. Matrices are row-major `n x n` unless stated.

/// Solves A x = b for symmetric positive-definite A via Cholesky.
/// A is row-major n x n; returns InvalidArgument if A is not PD (after
/// adding `ridge` to the diagonal).
Result<std::vector<double>> CholeskySolve(std::vector<double> a, int64_t n,
                                          const std::vector<double>& b,
                                          double ridge = 0.0);

/// Jacobi eigen-decomposition of a symmetric matrix.
/// On return, `eigenvalues` are sorted descending and `eigenvectors` holds
/// the corresponding unit eigenvectors as rows (row-major k==n).
struct EigenDecomposition {
  std::vector<double> eigenvalues;
  std::vector<double> eigenvectors;  // row i = eigenvector of eigenvalue i
  int64_t n = 0;
};
Result<EigenDecomposition> JacobiEigenSymmetric(std::vector<double> a,
                                                int64_t n,
                                                int max_sweeps = 64);

/// y = M x for row-major (rows x cols) M.
void MatVec(const std::vector<double>& m, int64_t rows, int64_t cols,
            const std::vector<double>& x, std::vector<double>& y);

/// Dot product of two equal-length vectors.
double Dot(const double* a, const double* b, int64_t n);

/// Euclidean norm.
double Norm2(const double* a, int64_t n);

}  // namespace hyppo::ml

#endif  // HYPPO_ML_LINALG_H_
