#include "ml/config.h"

#include <cstdlib>

#include "common/string_util.h"

namespace hyppo::ml {

std::string Config::GetString(const std::string& key,
                              const std::string& fallback) const {
  auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

double Config::GetDouble(const std::string& key, double fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) {
    return fallback;
  }
  char* end = nullptr;
  double parsed = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str()) {
    return fallback;
  }
  return parsed;
}

int64_t Config::GetInt(const std::string& key, int64_t fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) {
    return fallback;
  }
  char* end = nullptr;
  long long parsed = std::strtoll(it->second.c_str(), &end, 10);
  if (end == it->second.c_str()) {
    return fallback;
  }
  return static_cast<int64_t>(parsed);
}

bool Config::GetBool(const std::string& key, bool fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) {
    return fallback;
  }
  const std::string lowered = ToLower(it->second);
  if (lowered == "true" || lowered == "1") {
    return true;
  }
  if (lowered == "false" || lowered == "0") {
    return false;
  }
  return fallback;
}

void Config::SetDouble(const std::string& key, double value) {
  values_[key] = FormatDouble(value, 10);
}

void Config::SetInt(const std::string& key, int64_t value) {
  values_[key] = std::to_string(value);
}

std::string Config::ToString() const {
  std::string out;
  for (const auto& [key, value] : values_) {
    if (!out.empty()) {
      out += ",";
    }
    out += key;
    out += "=";
    out += value;
  }
  return out;
}

}  // namespace hyppo::ml
