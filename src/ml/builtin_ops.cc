#include "ml/ops/ops.h"
#include "ml/registry.h"

namespace hyppo::ml {

Status RegisterBuiltinOperators(OperatorRegistry& registry) {
  HYPPO_RETURN_NOT_OK(RegisterSplitOperators(registry));
  HYPPO_RETURN_NOT_OK(RegisterScalerOperators(registry));
  HYPPO_RETURN_NOT_OK(RegisterImputerOperators(registry));
  HYPPO_RETURN_NOT_OK(RegisterFeatureOperators(registry));
  HYPPO_RETURN_NOT_OK(RegisterPcaOperators(registry));
  HYPPO_RETURN_NOT_OK(RegisterLinearModelOperators(registry));
  HYPPO_RETURN_NOT_OK(RegisterSvmOperators(registry));
  HYPPO_RETURN_NOT_OK(RegisterTreeOperators(registry));
  HYPPO_RETURN_NOT_OK(RegisterForestOperators(registry));
  HYPPO_RETURN_NOT_OK(RegisterBoostingOperators(registry));
  HYPPO_RETURN_NOT_OK(RegisterKMeansOperators(registry));
  HYPPO_RETURN_NOT_OK(RegisterEnsembleOperators(registry));
  HYPPO_RETURN_NOT_OK(RegisterEvaluatorOperators(registry));
  HYPPO_RETURN_NOT_OK(RegisterElasticNetOperators(registry));
  HYPPO_RETURN_NOT_OK(RegisterQuantileOperators(registry));
  return Status::OK();
}

}  // namespace hyppo::ml
