#include <algorithm>
#include <vector>

#include "ml/kernels/kernels.h"

namespace hyppo::ml::kernels::blocked {

namespace {

// Blocking parameters (doubles): sized so the hot tiles sit in L1/L2 on
// CI-class x86-64. They are fixed constants — never derived from thread
// count — because they define the floating-point accumulation order and
// that order must not change between serial and parallel dispatch.
constexpr int64_t kGemmRowBlock = 48;   // A/C rows per tile
constexpr int64_t kGemmKBlock = 256;    // inner-dimension panel
constexpr int64_t kGemmColBlock = 256;  // B/C columns per tile
constexpr int64_t kGramTile = 16;       // Gram output tile side
constexpr int64_t kDistRowBlock = 256;  // distance rows per tile

}  // namespace

// C = A * B, restricted to output rows [row_begin, row_end). Loop order
// i0 / k0 / j0 with a j-contiguous inner loop: C and B rows are walked
// sequentially, so the inner loop has independent output lanes and
// vectorizes without -ffast-math. For any fixed (i, j) the k updates run
// in ascending order — the same order as the reference kernel.
void GemmRows(const double* a, const double* b, double* c, int64_t m,
              int64_t k, int64_t n, int64_t row_begin, int64_t row_end) {
  row_end = std::min(row_end, m);
  for (int64_t i = row_begin; i < row_end; ++i) {
    double* crow = c + i * n;
    for (int64_t j = 0; j < n; ++j) {
      crow[j] = 0.0;
    }
  }
  for (int64_t i0 = row_begin; i0 < row_end; i0 += kGemmRowBlock) {
    const int64_t i1 = std::min(row_end, i0 + kGemmRowBlock);
    for (int64_t k0 = 0; k0 < k; k0 += kGemmKBlock) {
      const int64_t k1 = std::min(k, k0 + kGemmKBlock);
      for (int64_t j0 = 0; j0 < n; j0 += kGemmColBlock) {
        const int64_t j1 = std::min(n, j0 + kGemmColBlock);
        for (int64_t i = i0; i < i1; ++i) {
          const double* arow = a + i * k;
          double* crow = c + i * n;
          for (int64_t p = k0; p < k1; ++p) {
            const double aip = arow[p];
            const double* brow = b + p * n;
            for (int64_t j = j0; j < j1; ++j) {
              crow[j] += aip * brow[j];
            }
          }
        }
      }
    }
  }
}

void Gemm(const double* a, const double* b, double* c, int64_t m, int64_t k,
          int64_t n) {
  GemmRows(a, b, c, m, k, n, 0, m);
}

// One dot product with four accumulator banks. Plain single-accumulator
// reductions cannot be vectorized under strict FP semantics; a fixed
// 4-way split gives the compiler independent lanes while keeping the
// accumulation order deterministic.
namespace {
inline double Dot4(const double* a, const double* b, int64_t n) {
  double s0 = 0.0;
  double s1 = 0.0;
  double s2 = 0.0;
  double s3 = 0.0;
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    s0 += a[i] * b[i];
    s1 += a[i + 1] * b[i + 1];
    s2 += a[i + 2] * b[i + 2];
    s3 += a[i + 3] * b[i + 3];
  }
  double tail = 0.0;
  for (; i < n; ++i) {
    tail += a[i] * b[i];
  }
  return ((s0 + s1) + (s2 + s3)) + tail;
}
}  // namespace

double Dot(const double* a, const double* b, int64_t n) {
  return Dot4(a, b, n);
}

void GemvRows(const double* m, int64_t rows, int64_t cols, const double* x,
              double* y, int64_t row_begin, int64_t row_end) {
  row_end = std::min(row_end, rows);
  for (int64_t r = row_begin; r < row_end; ++r) {
    y[r] = Dot4(m + r * cols, x, cols);
  }
}

void Gemv(const double* m, int64_t rows, int64_t cols, const double* x,
          double* y) {
  GemvRows(m, rows, cols, x, y, 0, rows);
}

// out[r] = bias + sum_c w[c] * (cols[c][r] - shift[c]) over a row range.
// Column-at-a-time axpy over a contiguous row block: independent output
// lanes, ascending-c accumulation — bitwise identical to the reference.
void GemvColumnsRows(const double* const* cols, int64_t rows,
                     int64_t num_cols, const double* shift, const double* w,
                     double bias, double* out, int64_t row_begin,
                     int64_t row_end) {
  row_end = std::min(row_end, rows);
  for (int64_t r = row_begin; r < row_end; ++r) {
    out[r] = bias;
  }
  for (int64_t c = 0; c < num_cols; ++c) {
    const double wc = w[c];
    const double sc = shift ? shift[c] : 0.0;
    const double* col = cols[c];
    for (int64_t r = row_begin; r < row_end; ++r) {
      out[r] += wc * (col[r] - sc);
    }
  }
}

void GemvColumns(const double* const* cols, int64_t rows, int64_t num_cols,
                 const double* shift, const double* w, double bias,
                 double* out) {
  GemvColumnsRows(cols, rows, num_cols, shift, w, bias, out, 0, rows);
}

namespace {

// One Gram entry, with optional shift/weight, 4-way unrolled.
inline double GramPair(const double* ci, double si, const double* cj,
                       double sj, const double* weight, int64_t rows) {
  double s0 = 0.0;
  double s1 = 0.0;
  double s2 = 0.0;
  double s3 = 0.0;
  int64_t r = 0;
  if (weight == nullptr) {
    for (; r + 4 <= rows; r += 4) {
      s0 += (ci[r] - si) * (cj[r] - sj);
      s1 += (ci[r + 1] - si) * (cj[r + 1] - sj);
      s2 += (ci[r + 2] - si) * (cj[r + 2] - sj);
      s3 += (ci[r + 3] - si) * (cj[r + 3] - sj);
    }
    double tail = 0.0;
    for (; r < rows; ++r) {
      tail += (ci[r] - si) * (cj[r] - sj);
    }
    return ((s0 + s1) + (s2 + s3)) + tail;
  }
  for (; r + 4 <= rows; r += 4) {
    s0 += weight[r] * (ci[r] - si) * (cj[r] - sj);
    s1 += weight[r + 1] * (ci[r + 1] - si) * (cj[r + 1] - sj);
    s2 += weight[r + 2] * (ci[r + 2] - si) * (cj[r + 2] - sj);
    s3 += weight[r + 3] * (ci[r + 3] - si) * (cj[r + 3] - sj);
  }
  double tail = 0.0;
  for (; r < rows; ++r) {
    tail += weight[r] * (ci[r] - si) * (cj[r] - sj);
  }
  return ((s0 + s1) + (s2 + s3)) + tail;
}

}  // namespace

// Upper-triangle tiles for i in [i_begin, i_end), mirrored into the lower
// triangle. Element (r, c) with r > c is written only by the call owning
// i == c, so row-partitioned parallel tasks never collide.
void GramColumnsRows(const double* const* cols, int64_t rows,
                     int64_t num_cols, const double* shift,
                     const double* weight, double* out, int64_t i_begin,
                     int64_t i_end) {
  i_end = std::min(i_end, num_cols);
  for (int64_t i0 = i_begin; i0 < i_end; i0 += kGramTile) {
    const int64_t i1 = std::min(i_end, i0 + kGramTile);
    for (int64_t j0 = i0; j0 < num_cols; j0 += kGramTile) {
      const int64_t j1 = std::min(num_cols, j0 + kGramTile);
      for (int64_t i = i0; i < i1; ++i) {
        const double si = shift ? shift[i] : 0.0;
        for (int64_t j = std::max(i, j0); j < j1; ++j) {
          const double sj = shift ? shift[j] : 0.0;
          const double v = GramPair(cols[i], si, cols[j], sj, weight, rows);
          out[i * num_cols + j] = v;
          out[j * num_cols + i] = v;
        }
      }
    }
  }
}

void GramColumns(const double* const* cols, int64_t rows, int64_t num_cols,
                 const double* shift, const double* weight, double* out) {
  GramColumnsRows(cols, rows, num_cols, shift, weight, out, 0, num_cols);
}

// Distance tiles: for each block of rows, accumulate (x - c)^2 one data
// dimension at a time into a [center][row] scratch tile (contiguous inner
// loop over rows, center coordinate broadcast), then write the tile out
// row-major. Ascending-dimension accumulation per element — bitwise
// identical to the reference.
void PairwiseSquaredDistancesRows(const double* const* cols, int64_t rows,
                                  int64_t dims, const double* centers,
                                  int64_t k, double* out, int64_t row_begin,
                                  int64_t row_end) {
  row_end = std::min(row_end, rows);
  std::vector<double> tile(static_cast<size_t>(kDistRowBlock));
  for (int64_t r0 = row_begin; r0 < row_end; r0 += kDistRowBlock) {
    const int64_t r1 = std::min(row_end, r0 + kDistRowBlock);
    const int64_t width = r1 - r0;
    for (int64_t i = 0; i < k; ++i) {
      const double* center = centers + i * dims;
      double* acc = tile.data();
      for (int64_t t = 0; t < width; ++t) {
        acc[t] = 0.0;
      }
      for (int64_t c = 0; c < dims; ++c) {
        const double cc = center[c];
        const double* col = cols[c] + r0;
        for (int64_t t = 0; t < width; ++t) {
          const double diff = col[t] - cc;
          acc[t] += diff * diff;
        }
      }
      for (int64_t t = 0; t < width; ++t) {
        out[(r0 + t) * k + i] = acc[t];
      }
    }
  }
}

void PairwiseSquaredDistances(const double* const* cols, int64_t rows,
                              int64_t dims, const double* centers, int64_t k,
                              double* out) {
  PairwiseSquaredDistancesRows(cols, rows, dims, centers, k, out, 0, rows);
}

}  // namespace hyppo::ml::kernels::blocked
