#include "ml/kernels/kernels.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/thread_pool.h"

namespace hyppo::ml::kernels {

namespace {

thread_local KernelOptions g_options;

// ---------------------------------------------------------------------------
// SIMD tier configuration. The build ISA comes from CMake
// (HYPPO_SIMD_ISA → HYPPO_SIMD_REQ_* definitions on this target); the
// runtime probe asks the CPU once whether it can execute that ISA; the
// HYPPO_SIMD environment override caps or disables the tier. Everything
// is cached — dispatch reads one relaxed atomic.

// ISA ranks for the HYPPO_SIMD cap: baseline/"sse2" = 1, avx2 = 2,
// avx512 = 3. "off" maps to 0 (below every build), "on"/"native"/unset
// to a rank above every build.
#if defined(HYPPO_SIMD_REQ_AVX512)
constexpr const char* kSimdBuildIsa = "avx512";
constexpr int kSimdBuildRank = 3;
#elif defined(HYPPO_SIMD_REQ_AVX2)
constexpr const char* kSimdBuildIsa = "avx2";
constexpr int kSimdBuildRank = 2;
#else
constexpr const char* kSimdBuildIsa = "generic";
constexpr int kSimdBuildRank = 1;
#endif

bool ProbeSimdRuntimeSupport() {
#if defined(HYPPO_SIMD_REQ_AVX512)
#if (defined(__GNUC__) || defined(__clang__)) && \
    (defined(__x86_64__) || defined(__i386__))
  return __builtin_cpu_supports("avx512f") != 0;
#else
  return false;
#endif
#elif defined(HYPPO_SIMD_REQ_AVX2)
#if (defined(__GNUC__) || defined(__clang__)) && \
    (defined(__x86_64__) || defined(__i386__))
  return __builtin_cpu_supports("avx2") != 0 &&
         __builtin_cpu_supports("fma") != 0;
#else
  return false;
#endif
#else
  // Generic builds carry no ISA flags beyond the baseline: always safe.
  return true;
#endif
}

int HyppoSimdEnvRank() {
  const char* env = std::getenv("HYPPO_SIMD");
  if (env == nullptr || env[0] == '\0') {
    return 1 << 10;  // unset: defer to the cpuid probe
  }
  if (std::strcmp(env, "off") == 0) {
    return 0;
  }
  if (std::strcmp(env, "sse2") == 0) {
    return 1;
  }
  if (std::strcmp(env, "avx2") == 0) {
    return 2;
  }
  if (std::strcmp(env, "avx512") == 0) {
    return 3;
  }
  // "on", "native", and anything unrecognized: no cap.
  return 1 << 10;
}

bool ComputeSimdEnabled() {
  static const bool runtime_supported = ProbeSimdRuntimeSupport();
  return runtime_supported && HyppoSimdEnvRank() >= kSimdBuildRank;
}

std::atomic<bool> g_simd_enabled{ComputeSimdEnabled()};

// True when dispatch may select the simd tier for this call: enabled
// process-wide and not opted out per call.
inline bool UseSimdTier(const KernelOptions* opts) {
  return g_simd_enabled.load(std::memory_order_relaxed) &&
         (opts != nullptr ? *opts : g_options).allow_simd;
}

// Work thresholds (flop estimates). Path selection depends only on the
// problem shape — never on thread count or nesting — so a given call
// site always takes the same numeric path. Below kBlockedMinWork the
// scalar reference is used (tiny problems; blocking overhead dominates
// and the association difference is irrelevant). Above kParallelMinWork
// the blocked computation is additionally split across the kernel pool —
// which is bitwise neutral, because parallel tasks produce whole output
// tiles whose accumulation order the blocked path already fixes.
constexpr double kBlockedMinWork = 16.0 * 1024.0;
constexpr double kParallelMinWork = 4.0 * 1024.0 * 1024.0;

// Lazily created pool shared by every kernel call in the process, sized
// to the hardware. KernelOptions::num_threads bounds how many chunks a
// single call fans out, not the pool size.
ThreadPool& SharedPool() {
  static ThreadPool pool(
      std::max(1, static_cast<int>(std::thread::hardware_concurrency())));
  return pool;
}

int EffectiveThreads(const KernelOptions* opts) {
  return (opts != nullptr ? *opts : g_options).num_threads;
}

// Splits [0, items) into at most `threads` contiguous chunks and runs
// `fn(begin, end)` for each: chunk 0..n-2 on the shared pool, the last
// chunk on the calling thread. Completion is tracked with a private
// latch (not ThreadPool::Wait) so concurrent kernel calls from different
// threads do not wait on each other's work.
void RunParallel(int64_t items, int threads,
                 const std::function<void(int64_t, int64_t)>& fn) {
  if (items <= 0) {
    return;
  }
  ThreadPool& pool = SharedPool();
  const int64_t chunks =
      std::min<int64_t>(std::min(threads, pool.num_threads() + 1), items);
  if (chunks <= 1) {
    fn(0, items);
    return;
  }
  const int64_t per_chunk = (items + chunks - 1) / chunks;
  std::mutex mutex;
  std::condition_variable done;
  int64_t pending = 0;
  for (int64_t begin = per_chunk; begin < items; begin += per_chunk) {
    const int64_t end = std::min(items, begin + per_chunk);
    {
      std::unique_lock<std::mutex> lock(mutex);
      ++pending;
    }
    pool.Submit([&, begin, end]() {
      fn(begin, end);
      std::unique_lock<std::mutex> lock(mutex);
      if (--pending == 0) {
        done.notify_all();
      }
    });
  }
  fn(0, std::min(items, per_chunk));  // caller takes the first chunk
  std::unique_lock<std::mutex> lock(mutex);
  done.wait(lock, [&]() { return pending == 0; });
}

}  // namespace

const KernelOptions& CurrentOptions() { return g_options; }

KernelScope::KernelScope(const KernelOptions& options)
    : previous_(g_options) {
  g_options = options;
}

KernelScope::~KernelScope() { g_options = previous_; }

bool ParallelismSuppressed(const KernelOptions* opts) {
  return ThreadPool::InAnyPoolWorker() || EffectiveThreads(opts) <= 1;
}

const char* SimdBuildIsa() { return kSimdBuildIsa; }

bool SimdRuntimeSupported() {
  static const bool supported = ProbeSimdRuntimeSupport();
  return supported;
}

bool SimdEnabled() {
  return g_simd_enabled.load(std::memory_order_relaxed);
}

void RefreshSimdConfig() {
  g_simd_enabled.store(ComputeSimdEnabled(), std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Dispatching entry points. Order: shape threshold (tiny problems take
// the scalar reference regardless of tier) → ISA probe / HYPPO_SIMD
// override (simd vs blocked tier) → parallel split of the chosen tier.

void Gemm(const double* a, const double* b, double* c, int64_t m, int64_t k,
          int64_t n, const KernelOptions* opts) {
  const double work = 2.0 * static_cast<double>(m) *
                      static_cast<double>(k) * static_cast<double>(n);
  if (work < kBlockedMinWork) {
    ref::Gemm(a, b, c, m, k, n);
    return;
  }
  const bool use_simd = UseSimdTier(opts);
  if (work < kParallelMinWork || ParallelismSuppressed(opts)) {
    use_simd ? simd::Gemm(a, b, c, m, k, n)
             : blocked::Gemm(a, b, c, m, k, n);
    return;
  }
  RunParallel(m, EffectiveThreads(opts),
              [&](int64_t begin, int64_t end) {
                use_simd ? simd::GemmRows(a, b, c, m, k, n, begin, end)
                         : blocked::GemmRows(a, b, c, m, k, n, begin, end);
              });
}

void Gemv(const double* m, int64_t rows, int64_t cols, const double* x,
          double* y, const KernelOptions* opts) {
  const double work =
      2.0 * static_cast<double>(rows) * static_cast<double>(cols);
  if (work < kBlockedMinWork) {
    ref::Gemv(m, rows, cols, x, y);
    return;
  }
  const bool use_simd = UseSimdTier(opts);
  if (work < kParallelMinWork || ParallelismSuppressed(opts)) {
    use_simd ? simd::Gemv(m, rows, cols, x, y)
             : blocked::Gemv(m, rows, cols, x, y);
    return;
  }
  RunParallel(rows, EffectiveThreads(opts),
              [&](int64_t begin, int64_t end) {
                use_simd ? simd::GemvRows(m, rows, cols, x, y, begin, end)
                         : blocked::GemvRows(m, rows, cols, x, y, begin,
                                             end);
              });
}

void GemvColumns(const double* const* cols, int64_t rows, int64_t num_cols,
                 const double* shift, const double* w, double bias,
                 double* out, const KernelOptions* opts) {
  const double work =
      2.0 * static_cast<double>(rows) * static_cast<double>(num_cols);
  // Both non-reference tiers accumulate in the same order regardless of
  // how rows are later partitioned, so any threshold is numerically safe.
  if (work < kBlockedMinWork) {
    ref::GemvColumns(cols, rows, num_cols, shift, w, bias, out);
    return;
  }
  const bool use_simd = UseSimdTier(opts);
  if (work < kParallelMinWork || ParallelismSuppressed(opts)) {
    use_simd ? simd::GemvColumns(cols, rows, num_cols, shift, w, bias, out)
             : blocked::GemvColumns(cols, rows, num_cols, shift, w, bias,
                                    out);
    return;
  }
  RunParallel(rows, EffectiveThreads(opts),
              [&](int64_t begin, int64_t end) {
                use_simd ? simd::GemvColumnsRows(cols, rows, num_cols, shift,
                                                 w, bias, out, begin, end)
                         : blocked::GemvColumnsRows(cols, rows, num_cols,
                                                    shift, w, bias, out,
                                                    begin, end);
              });
}

void GramColumns(const double* const* cols, int64_t rows, int64_t num_cols,
                 const double* shift, const double* weight, double* out,
                 const KernelOptions* opts) {
  const double work = static_cast<double>(rows) *
                      static_cast<double>(num_cols) *
                      static_cast<double>(num_cols);
  if (work < kBlockedMinWork) {
    ref::GramColumns(cols, rows, num_cols, shift, weight, out);
    return;
  }
  const bool use_simd = UseSimdTier(opts);
  if (work < kParallelMinWork || ParallelismSuppressed(opts)) {
    use_simd ? simd::GramColumns(cols, rows, num_cols, shift, weight, out)
             : blocked::GramColumns(cols, rows, num_cols, shift, weight,
                                    out);
    return;
  }
  RunParallel(num_cols, EffectiveThreads(opts),
              [&](int64_t begin, int64_t end) {
                use_simd ? simd::GramColumnsRows(cols, rows, num_cols, shift,
                                                 weight, out, begin, end)
                         : blocked::GramColumnsRows(cols, rows, num_cols,
                                                    shift, weight, out,
                                                    begin, end);
              });
}

void PairwiseSquaredDistances(const double* const* cols, int64_t rows,
                              int64_t dims, const double* centers, int64_t k,
                              double* out, const KernelOptions* opts) {
  const double work = 3.0 * static_cast<double>(rows) *
                      static_cast<double>(dims) * static_cast<double>(k);
  if (work < kBlockedMinWork) {
    ref::PairwiseSquaredDistances(cols, rows, dims, centers, k, out);
    return;
  }
  const bool use_simd = UseSimdTier(opts);
  if (work < kParallelMinWork || ParallelismSuppressed(opts)) {
    use_simd ? simd::PairwiseSquaredDistances(cols, rows, dims, centers, k,
                                              out)
             : blocked::PairwiseSquaredDistances(cols, rows, dims, centers,
                                                 k, out);
    return;
  }
  RunParallel(rows, EffectiveThreads(opts),
              [&](int64_t begin, int64_t end) {
                use_simd
                    ? simd::PairwiseSquaredDistancesRows(cols, rows, dims,
                                                         centers, k, out,
                                                         begin, end)
                    : blocked::PairwiseSquaredDistancesRows(cols, rows, dims,
                                                            centers, k, out,
                                                            begin, end);
              });
}

namespace {

constexpr int64_t kArgminRowBlock = 256;

// Distance tile + argmin for a row range. Accumulates squared distances
// one dimension at a time (ascending — bitwise identical to the
// reference distances) into a [center][row] scratch tile, then scans
// centers in ascending order with a strict '<', so ties break toward the
// lowest index exactly like the scalar loop it replaces.
void NearestCentroidsRows(const double* const* cols, int64_t rows,
                          int64_t dims, const double* centers, int64_t k,
                          int64_t* index, double* sq, int64_t row_begin,
                          int64_t row_end) {
  row_end = std::min(row_end, rows);
  std::vector<double> tile(static_cast<size_t>(k * kArgminRowBlock));
  for (int64_t r0 = row_begin; r0 < row_end; r0 += kArgminRowBlock) {
    const int64_t r1 = std::min(row_end, r0 + kArgminRowBlock);
    const int64_t width = r1 - r0;
    for (int64_t i = 0; i < k; ++i) {
      const double* center = centers + i * dims;
      double* acc = tile.data() + i * kArgminRowBlock;
      for (int64_t t = 0; t < width; ++t) {
        acc[t] = 0.0;
      }
      for (int64_t c = 0; c < dims; ++c) {
        const double cc = center[c];
        const double* col = cols[c] + r0;
        for (int64_t t = 0; t < width; ++t) {
          const double diff = col[t] - cc;
          acc[t] += diff * diff;
        }
      }
    }
    for (int64_t t = 0; t < width; ++t) {
      double best = tile[static_cast<size_t>(t)];
      int64_t best_i = 0;
      for (int64_t i = 1; i < k; ++i) {
        const double d = tile[static_cast<size_t>(i * kArgminRowBlock + t)];
        if (d < best) {
          best = d;
          best_i = i;
        }
      }
      if (index != nullptr) {
        index[r0 + t] = best_i;
      }
      if (sq != nullptr) {
        sq[r0 + t] = best;
      }
    }
  }
}

}  // namespace

void NearestCentroids(const double* const* cols, int64_t rows, int64_t dims,
                      const double* centers, int64_t k, int64_t* index,
                      double* sq, const KernelOptions* opts) {
  if (rows <= 0 || k <= 0) {
    return;
  }
  const double work = 3.0 * static_cast<double>(rows) *
                      static_cast<double>(dims) * static_cast<double>(k);
  const bool use_simd = work >= kBlockedMinWork && UseSimdTier(opts);
  if (work < kParallelMinWork || ParallelismSuppressed(opts)) {
    use_simd
        ? simd::NearestCentroids(cols, rows, dims, centers, k, index, sq)
        : NearestCentroidsRows(cols, rows, dims, centers, k, index, sq, 0,
                               rows);
    return;
  }
  RunParallel(rows, EffectiveThreads(opts),
              [&](int64_t begin, int64_t end) {
                use_simd ? simd::NearestCentroidsRows(cols, rows, dims,
                                                      centers, k, index, sq,
                                                      begin, end)
                         : NearestCentroidsRows(cols, rows, dims, centers, k,
                                                index, sq, begin, end);
              });
}

// ---------------------------------------------------------------------------
// Fused vector kernels. Serial (memory-bound). When the simd tier is
// enabled they route to the 8-lane-banked implementations; otherwise to
// the 4-bank blocked-tier order below. Either way a given process sees a
// fixed accumulation order for every call, independent of thread count.
// The elementwise ops (Axpy/ShiftedAxpy/Multiply) are bitwise identical
// in every tier (plain mul-then-add per element), so their routing is
// purely a speed choice.

double Dot(const double* a, const double* b, int64_t n) {
  return UseSimdTier(nullptr) ? simd::Dot(a, b, n) : blocked::Dot(a, b, n);
}

double ShiftedDot(const double* x, double shift, const double* y, int64_t n) {
  if (UseSimdTier(nullptr)) {
    return simd::ShiftedDot(x, shift, y, n);
  }
  double s0 = 0.0;
  double s1 = 0.0;
  double s2 = 0.0;
  double s3 = 0.0;
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    s0 += (x[i] - shift) * y[i];
    s1 += (x[i + 1] - shift) * y[i + 1];
    s2 += (x[i + 2] - shift) * y[i + 2];
    s3 += (x[i + 3] - shift) * y[i + 3];
  }
  double tail = 0.0;
  for (; i < n; ++i) {
    tail += (x[i] - shift) * y[i];
  }
  return ((s0 + s1) + (s2 + s3)) + tail;
}

void Axpy(double alpha, const double* x, double* y, int64_t n) {
  if (UseSimdTier(nullptr)) {
    simd::Axpy(alpha, x, y, n);
    return;
  }
  for (int64_t i = 0; i < n; ++i) {
    y[i] += alpha * x[i];
  }
}

void ShiftedAxpy(double alpha, const double* x, double shift, double* y,
                 int64_t n) {
  if (UseSimdTier(nullptr)) {
    simd::ShiftedAxpy(alpha, x, shift, y, n);
    return;
  }
  for (int64_t i = 0; i < n; ++i) {
    y[i] += alpha * (x[i] - shift);
  }
}

void Multiply(const double* a, const double* b, double* out, int64_t n) {
  if (UseSimdTier(nullptr)) {
    simd::Multiply(a, b, out, n);
    return;
  }
  for (int64_t i = 0; i < n; ++i) {
    out[i] = a[i] * b[i];
  }
}

double Sum(const double* x, int64_t n) {
  if (UseSimdTier(nullptr)) {
    return simd::Sum(x, n);
  }
  double s0 = 0.0;
  double s1 = 0.0;
  double s2 = 0.0;
  double s3 = 0.0;
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    s0 += x[i];
    s1 += x[i + 1];
    s2 += x[i + 2];
    s3 += x[i + 3];
  }
  double tail = 0.0;
  for (; i < n; ++i) {
    tail += x[i];
  }
  return ((s0 + s1) + (s2 + s3)) + tail;
}

double ShiftedSumSq(const double* x, double shift, int64_t n) {
  if (UseSimdTier(nullptr)) {
    return simd::ShiftedSumSq(x, shift, n);
  }
  double s0 = 0.0;
  double s1 = 0.0;
  double s2 = 0.0;
  double s3 = 0.0;
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const double d0 = x[i] - shift;
    const double d1 = x[i + 1] - shift;
    const double d2 = x[i + 2] - shift;
    const double d3 = x[i + 3] - shift;
    s0 += d0 * d0;
    s1 += d1 * d1;
    s2 += d2 * d2;
    s3 += d3 * d3;
  }
  double tail = 0.0;
  for (; i < n; ++i) {
    const double d = x[i] - shift;
    tail += d * d;
  }
  return ((s0 + s1) + (s2 + s3)) + tail;
}

void SumAndSumSq(const double* x, int64_t n, double* sum, double* sum_sq) {
  if (UseSimdTier(nullptr)) {
    simd::SumAndSumSq(x, n, sum, sum_sq);
    return;
  }
  double a0 = 0.0;
  double a1 = 0.0;
  double a2 = 0.0;
  double a3 = 0.0;
  double q0 = 0.0;
  double q1 = 0.0;
  double q2 = 0.0;
  double q3 = 0.0;
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    a0 += x[i];
    a1 += x[i + 1];
    a2 += x[i + 2];
    a3 += x[i + 3];
    q0 += x[i] * x[i];
    q1 += x[i + 1] * x[i + 1];
    q2 += x[i + 2] * x[i + 2];
    q3 += x[i + 3] * x[i + 3];
  }
  double at = 0.0;
  double qt = 0.0;
  for (; i < n; ++i) {
    at += x[i];
    qt += x[i] * x[i];
  }
  *sum = ((a0 + a1) + (a2 + a3)) + at;
  *sum_sq = ((q0 + q1) + (q2 + q3)) + qt;
}

// ---------------------------------------------------------------------------
// Throughput calibration. Times a square GEMM through the normal
// dispatcher (so it exercises whichever tier dispatch would pick for real
// workloads) and returns the sustained GFLOPS. Deterministic inputs;
// repeats until enough wall time has accumulated for a stable reading.

double MeasureGemmGflops(int64_t size, const KernelOptions* opts) {
  if (size < 8) {
    size = 8;
  }
  const size_t cells = static_cast<size_t>(size * size);
  std::vector<double> a(cells);
  std::vector<double> b(cells);
  std::vector<double> c(cells);
  for (size_t i = 0; i < cells; ++i) {
    a[i] = 0.25 + 0.5 * static_cast<double>(i % 17);
    b[i] = -0.75 + 0.25 * static_cast<double>(i % 13);
  }
  const double flops_per_rep = 2.0 * static_cast<double>(size) *
                               static_cast<double>(size) *
                               static_cast<double>(size);
  // Warm-up (page-in + icache) outside the timed region.
  Gemm(a.data(), b.data(), c.data(), size, size, size, opts);
  constexpr double kMinSeconds = 0.02;
  const WallClock clock;
  double elapsed = 0.0;
  int64_t reps = 0;
  const double start = clock.Now();
  do {
    Gemm(a.data(), b.data(), c.data(), size, size, size, opts);
    ++reps;
    elapsed = clock.Now() - start;
  } while (elapsed < kMinSeconds && reps < 1024);
  if (elapsed <= 0.0) {
    return kCalibrationBaselineGflops;
  }
  return flops_per_rep * static_cast<double>(reps) / elapsed / 1e9;
}

}  // namespace hyppo::ml::kernels
