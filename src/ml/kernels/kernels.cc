#include "ml/kernels/kernels.h"

#include <algorithm>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/thread_pool.h"

namespace hyppo::ml::kernels {

namespace {

thread_local KernelOptions g_options;

// Work thresholds (flop estimates). Path selection depends only on the
// problem shape — never on thread count or nesting — so a given call
// site always takes the same numeric path. Below kBlockedMinWork the
// scalar reference is used (tiny problems; blocking overhead dominates
// and the association difference is irrelevant). Above kParallelMinWork
// the blocked computation is additionally split across the kernel pool —
// which is bitwise neutral, because parallel tasks produce whole output
// tiles whose accumulation order the blocked path already fixes.
constexpr double kBlockedMinWork = 16.0 * 1024.0;
constexpr double kParallelMinWork = 4.0 * 1024.0 * 1024.0;

// Lazily created pool shared by every kernel call in the process, sized
// to the hardware. KernelOptions::num_threads bounds how many chunks a
// single call fans out, not the pool size.
ThreadPool& SharedPool() {
  static ThreadPool pool(
      std::max(1, static_cast<int>(std::thread::hardware_concurrency())));
  return pool;
}

int EffectiveThreads(const KernelOptions* opts) {
  return (opts != nullptr ? *opts : g_options).num_threads;
}

// Splits [0, items) into at most `threads` contiguous chunks and runs
// `fn(begin, end)` for each: chunk 0..n-2 on the shared pool, the last
// chunk on the calling thread. Completion is tracked with a private
// latch (not ThreadPool::Wait) so concurrent kernel calls from different
// threads do not wait on each other's work.
void RunParallel(int64_t items, int threads,
                 const std::function<void(int64_t, int64_t)>& fn) {
  if (items <= 0) {
    return;
  }
  ThreadPool& pool = SharedPool();
  const int64_t chunks =
      std::min<int64_t>(std::min(threads, pool.num_threads() + 1), items);
  if (chunks <= 1) {
    fn(0, items);
    return;
  }
  const int64_t per_chunk = (items + chunks - 1) / chunks;
  std::mutex mutex;
  std::condition_variable done;
  int64_t pending = 0;
  for (int64_t begin = per_chunk; begin < items; begin += per_chunk) {
    const int64_t end = std::min(items, begin + per_chunk);
    {
      std::unique_lock<std::mutex> lock(mutex);
      ++pending;
    }
    pool.Submit([&, begin, end]() {
      fn(begin, end);
      std::unique_lock<std::mutex> lock(mutex);
      if (--pending == 0) {
        done.notify_all();
      }
    });
  }
  fn(0, std::min(items, per_chunk));  // caller takes the first chunk
  std::unique_lock<std::mutex> lock(mutex);
  done.wait(lock, [&]() { return pending == 0; });
}

}  // namespace

const KernelOptions& CurrentOptions() { return g_options; }

KernelScope::KernelScope(const KernelOptions& options)
    : previous_(g_options) {
  g_options = options;
}

KernelScope::~KernelScope() { g_options = previous_; }

bool ParallelismSuppressed(const KernelOptions* opts) {
  return ThreadPool::InAnyPoolWorker() || EffectiveThreads(opts) <= 1;
}

// ---------------------------------------------------------------------------
// Dispatching entry points.

void Gemm(const double* a, const double* b, double* c, int64_t m, int64_t k,
          int64_t n, const KernelOptions* opts) {
  const double work = 2.0 * static_cast<double>(m) *
                      static_cast<double>(k) * static_cast<double>(n);
  if (work < kBlockedMinWork) {
    ref::Gemm(a, b, c, m, k, n);
    return;
  }
  if (work < kParallelMinWork || ParallelismSuppressed(opts)) {
    blocked::Gemm(a, b, c, m, k, n);
    return;
  }
  RunParallel(m, EffectiveThreads(opts),
              [&](int64_t begin, int64_t end) {
                blocked::GemmRows(a, b, c, m, k, n, begin, end);
              });
}

void Gemv(const double* m, int64_t rows, int64_t cols, const double* x,
          double* y, const KernelOptions* opts) {
  const double work =
      2.0 * static_cast<double>(rows) * static_cast<double>(cols);
  if (work < kBlockedMinWork) {
    ref::Gemv(m, rows, cols, x, y);
    return;
  }
  if (work < kParallelMinWork || ParallelismSuppressed(opts)) {
    blocked::Gemv(m, rows, cols, x, y);
    return;
  }
  RunParallel(rows, EffectiveThreads(opts),
              [&](int64_t begin, int64_t end) {
                blocked::GemvRows(m, rows, cols, x, y, begin, end);
              });
}

void GemvColumns(const double* const* cols, int64_t rows, int64_t num_cols,
                 const double* shift, const double* w, double bias,
                 double* out, const KernelOptions* opts) {
  const double work =
      2.0 * static_cast<double>(rows) * static_cast<double>(num_cols);
  // The blocked path accumulates in the same order as the reference
  // (ascending columns per output element); the split is purely about
  // loop structure, so any threshold is numerically safe.
  if (work < kBlockedMinWork) {
    ref::GemvColumns(cols, rows, num_cols, shift, w, bias, out);
    return;
  }
  if (work < kParallelMinWork || ParallelismSuppressed(opts)) {
    blocked::GemvColumns(cols, rows, num_cols, shift, w, bias, out);
    return;
  }
  RunParallel(rows, EffectiveThreads(opts),
              [&](int64_t begin, int64_t end) {
                blocked::GemvColumnsRows(cols, rows, num_cols, shift, w,
                                         bias, out, begin, end);
              });
}

void GramColumns(const double* const* cols, int64_t rows, int64_t num_cols,
                 const double* shift, const double* weight, double* out,
                 const KernelOptions* opts) {
  const double work = static_cast<double>(rows) *
                      static_cast<double>(num_cols) *
                      static_cast<double>(num_cols);
  if (work < kBlockedMinWork) {
    ref::GramColumns(cols, rows, num_cols, shift, weight, out);
    return;
  }
  if (work < kParallelMinWork || ParallelismSuppressed(opts)) {
    blocked::GramColumns(cols, rows, num_cols, shift, weight, out);
    return;
  }
  RunParallel(num_cols, EffectiveThreads(opts),
              [&](int64_t begin, int64_t end) {
                blocked::GramColumnsRows(cols, rows, num_cols, shift, weight,
                                         out, begin, end);
              });
}

void PairwiseSquaredDistances(const double* const* cols, int64_t rows,
                              int64_t dims, const double* centers, int64_t k,
                              double* out, const KernelOptions* opts) {
  const double work = 3.0 * static_cast<double>(rows) *
                      static_cast<double>(dims) * static_cast<double>(k);
  if (work < kBlockedMinWork) {
    ref::PairwiseSquaredDistances(cols, rows, dims, centers, k, out);
    return;
  }
  if (work < kParallelMinWork || ParallelismSuppressed(opts)) {
    blocked::PairwiseSquaredDistances(cols, rows, dims, centers, k, out);
    return;
  }
  RunParallel(rows, EffectiveThreads(opts),
              [&](int64_t begin, int64_t end) {
                blocked::PairwiseSquaredDistancesRows(cols, rows, dims,
                                                      centers, k, out, begin,
                                                      end);
              });
}

namespace {

constexpr int64_t kArgminRowBlock = 256;

// Distance tile + argmin for a row range. Accumulates squared distances
// one dimension at a time (ascending — bitwise identical to the
// reference distances) into a [center][row] scratch tile, then scans
// centers in ascending order with a strict '<', so ties break toward the
// lowest index exactly like the scalar loop it replaces.
void NearestCentroidsRows(const double* const* cols, int64_t rows,
                          int64_t dims, const double* centers, int64_t k,
                          int64_t* index, double* sq, int64_t row_begin,
                          int64_t row_end) {
  row_end = std::min(row_end, rows);
  std::vector<double> tile(static_cast<size_t>(k * kArgminRowBlock));
  for (int64_t r0 = row_begin; r0 < row_end; r0 += kArgminRowBlock) {
    const int64_t r1 = std::min(row_end, r0 + kArgminRowBlock);
    const int64_t width = r1 - r0;
    for (int64_t i = 0; i < k; ++i) {
      const double* center = centers + i * dims;
      double* acc = tile.data() + i * kArgminRowBlock;
      for (int64_t t = 0; t < width; ++t) {
        acc[t] = 0.0;
      }
      for (int64_t c = 0; c < dims; ++c) {
        const double cc = center[c];
        const double* col = cols[c] + r0;
        for (int64_t t = 0; t < width; ++t) {
          const double diff = col[t] - cc;
          acc[t] += diff * diff;
        }
      }
    }
    for (int64_t t = 0; t < width; ++t) {
      double best = tile[static_cast<size_t>(t)];
      int64_t best_i = 0;
      for (int64_t i = 1; i < k; ++i) {
        const double d = tile[static_cast<size_t>(i * kArgminRowBlock + t)];
        if (d < best) {
          best = d;
          best_i = i;
        }
      }
      if (index != nullptr) {
        index[r0 + t] = best_i;
      }
      if (sq != nullptr) {
        sq[r0 + t] = best;
      }
    }
  }
}

}  // namespace

void NearestCentroids(const double* const* cols, int64_t rows, int64_t dims,
                      const double* centers, int64_t k, int64_t* index,
                      double* sq, const KernelOptions* opts) {
  if (rows <= 0 || k <= 0) {
    return;
  }
  const double work = 3.0 * static_cast<double>(rows) *
                      static_cast<double>(dims) * static_cast<double>(k);
  if (work < kParallelMinWork || ParallelismSuppressed(opts)) {
    NearestCentroidsRows(cols, rows, dims, centers, k, index, sq, 0, rows);
    return;
  }
  RunParallel(rows, EffectiveThreads(opts),
              [&](int64_t begin, int64_t end) {
                NearestCentroidsRows(cols, rows, dims, centers, k, index, sq,
                                     begin, end);
              });
}

// ---------------------------------------------------------------------------
// Fused vector kernels. Serial (memory-bound); reductions use fixed 4-way
// accumulator banks so they vectorize under strict FP semantics while
// staying deterministic.

double Dot(const double* a, const double* b, int64_t n) {
  return blocked::Dot(a, b, n);
}

double ShiftedDot(const double* x, double shift, const double* y, int64_t n) {
  double s0 = 0.0;
  double s1 = 0.0;
  double s2 = 0.0;
  double s3 = 0.0;
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    s0 += (x[i] - shift) * y[i];
    s1 += (x[i + 1] - shift) * y[i + 1];
    s2 += (x[i + 2] - shift) * y[i + 2];
    s3 += (x[i + 3] - shift) * y[i + 3];
  }
  double tail = 0.0;
  for (; i < n; ++i) {
    tail += (x[i] - shift) * y[i];
  }
  return ((s0 + s1) + (s2 + s3)) + tail;
}

void Axpy(double alpha, const double* x, double* y, int64_t n) {
  for (int64_t i = 0; i < n; ++i) {
    y[i] += alpha * x[i];
  }
}

void ShiftedAxpy(double alpha, const double* x, double shift, double* y,
                 int64_t n) {
  for (int64_t i = 0; i < n; ++i) {
    y[i] += alpha * (x[i] - shift);
  }
}

void Multiply(const double* a, const double* b, double* out, int64_t n) {
  for (int64_t i = 0; i < n; ++i) {
    out[i] = a[i] * b[i];
  }
}

double Sum(const double* x, int64_t n) {
  double s0 = 0.0;
  double s1 = 0.0;
  double s2 = 0.0;
  double s3 = 0.0;
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    s0 += x[i];
    s1 += x[i + 1];
    s2 += x[i + 2];
    s3 += x[i + 3];
  }
  double tail = 0.0;
  for (; i < n; ++i) {
    tail += x[i];
  }
  return ((s0 + s1) + (s2 + s3)) + tail;
}

double ShiftedSumSq(const double* x, double shift, int64_t n) {
  double s0 = 0.0;
  double s1 = 0.0;
  double s2 = 0.0;
  double s3 = 0.0;
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const double d0 = x[i] - shift;
    const double d1 = x[i + 1] - shift;
    const double d2 = x[i + 2] - shift;
    const double d3 = x[i + 3] - shift;
    s0 += d0 * d0;
    s1 += d1 * d1;
    s2 += d2 * d2;
    s3 += d3 * d3;
  }
  double tail = 0.0;
  for (; i < n; ++i) {
    const double d = x[i] - shift;
    tail += d * d;
  }
  return ((s0 + s1) + (s2 + s3)) + tail;
}

void SumAndSumSq(const double* x, int64_t n, double* sum, double* sum_sq) {
  double a0 = 0.0;
  double a1 = 0.0;
  double a2 = 0.0;
  double a3 = 0.0;
  double q0 = 0.0;
  double q1 = 0.0;
  double q2 = 0.0;
  double q3 = 0.0;
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    a0 += x[i];
    a1 += x[i + 1];
    a2 += x[i + 2];
    a3 += x[i + 3];
    q0 += x[i] * x[i];
    q1 += x[i + 1] * x[i + 1];
    q2 += x[i + 2] * x[i + 2];
    q3 += x[i + 3] * x[i + 3];
  }
  double at = 0.0;
  double qt = 0.0;
  for (; i < n; ++i) {
    at += x[i];
    qt += x[i] * x[i];
  }
  *sum = ((a0 + a1) + (a2 + a3)) + at;
  *sum_sq = ((q0 + q1) + (q2 + q3)) + qt;
}

}  // namespace hyppo::ml::kernels
