#include "ml/kernels/kernels.h"

namespace hyppo::ml::kernels::ref {

// Naive textbook loops. These pin down the semantics of every kernel; the
// blocked implementations must agree with them up to floating-point
// association (asserted by tests/ml_kernels_test.cc with a max-abs-diff
// bound).

void Gemm(const double* a, const double* b, double* c, int64_t m, int64_t k,
          int64_t n) {
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      double sum = 0.0;
      for (int64_t p = 0; p < k; ++p) {
        sum += a[i * k + p] * b[p * n + j];
      }
      c[i * n + j] = sum;
    }
  }
}

void Gemv(const double* m, int64_t rows, int64_t cols, const double* x,
          double* y) {
  for (int64_t r = 0; r < rows; ++r) {
    double sum = 0.0;
    const double* row = m + r * cols;
    for (int64_t c = 0; c < cols; ++c) {
      sum += row[c] * x[c];
    }
    y[r] = sum;
  }
}

void GemvColumns(const double* const* cols, int64_t rows, int64_t num_cols,
                 const double* shift, const double* w, double bias,
                 double* out) {
  for (int64_t r = 0; r < rows; ++r) {
    double sum = bias;
    for (int64_t c = 0; c < num_cols; ++c) {
      const double v = shift ? cols[c][r] - shift[c] : cols[c][r];
      sum += w[c] * v;
    }
    out[r] = sum;
  }
}

void GramColumns(const double* const* cols, int64_t rows, int64_t num_cols,
                 const double* shift, const double* weight, double* out) {
  for (int64_t i = 0; i < num_cols; ++i) {
    const double si = shift ? shift[i] : 0.0;
    for (int64_t j = i; j < num_cols; ++j) {
      const double sj = shift ? shift[j] : 0.0;
      double sum = 0.0;
      for (int64_t r = 0; r < rows; ++r) {
        const double vi = cols[i][r] - si;
        const double vj = cols[j][r] - sj;
        sum += weight ? weight[r] * vi * vj : vi * vj;
      }
      out[i * num_cols + j] = sum;
      out[j * num_cols + i] = sum;
    }
  }
}

void PairwiseSquaredDistances(const double* const* cols, int64_t rows,
                              int64_t dims, const double* centers, int64_t k,
                              double* out) {
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t i = 0; i < k; ++i) {
      const double* center = centers + i * dims;
      double sq = 0.0;
      for (int64_t c = 0; c < dims; ++c) {
        const double diff = cols[c][r] - center[c];
        sq += diff * diff;
      }
      out[r * k + i] = sq;
    }
  }
}

double Dot(const double* a, const double* b, int64_t n) {
  double sum = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    sum += a[i] * b[i];
  }
  return sum;
}

}  // namespace hyppo::ml::kernels::ref
