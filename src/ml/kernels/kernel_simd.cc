// The simd:: kernel tier. This is the ONLY translation unit in the
// library compiled with ISA flags (see HYPPO_SIMD_ISA in
// src/ml/CMakeLists.txt), and it is compiled with -ffp-contract=off:
// every fused multiply-add below is *explicit* (Vec8::Fma / std::fma),
// never a compiler contraction, so the tier's numeric behavior is fixed
// by this source file alone.
//
// Backend selection (compile time):
//   1. AVX2/FMA intrinsics when the TU is compiled with __AVX2__ &&
//      __FMA__. Intrinsics are preferred over std::experimental::simd
//      here because GCC's fixed_size_simd ABI passes vectors through
//      memory and costs ~3x on the GEMM micro-kernel (measured: 3.5 vs
//      9.9 GFLOPS at 512^3, identical bits).
//   2. std::experimental::simd when the header exists (GCC >= 11,
//      recent Clang) — the portable vector backend for generic builds.
//   3. a scalar 8-lane bank otherwise (the everywhere-compiles fallback;
//      std::fma keeps its numerics identical to the vector backends).
// HYPPO_SIMD_SCALAR_ONLY (the HYPPO_SIMD_ISA=off build) forces 3.
//
// Determinism: every kernel fixes its per-output-element operation
// sequence — matrix kernels accumulate in ascending reduction-index
// order with fused multiply-adds, reductions use a fixed 8-lane bank
// folded by a fixed binary tree plus a scalar tail. A vector lane and
// the scalar tail execute the *same* per-element fma chain, so results
// do not depend on where chunk boundaries fall — which is what makes the
// parallel row split (dispatch(1) == dispatch(N)) bitwise safe at any
// partition. All three backends produce identical bits for identical
// inputs.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "ml/kernels/kernels.h"

#if !defined(HYPPO_SIMD_SCALAR_ONLY) && defined(__AVX2__) && defined(__FMA__)
#define HYPPO_SIMD_BACKEND_AVX2 1
#include <immintrin.h>
#endif
#if !defined(HYPPO_SIMD_BACKEND_AVX2) && \
    !defined(HYPPO_SIMD_SCALAR_ONLY) && defined(__has_include)
#if __has_include(<experimental/simd>)
#define HYPPO_SIMD_BACKEND_STDSIMD 1
#include <experimental/simd>
#endif
#endif

namespace hyppo::ml::kernels::simd {

namespace {

// ---------------------------------------------------------------------------
// Vec8: a fixed 8-lane double vector. The lane count is a tier constant,
// not the native register width — AVX2 builds use two 256-bit registers,
// AVX-512 builds one 512-bit register, scalar builds an array — so the
// accumulation order (and therefore the bits) never depends on which
// backend or ISA the build selected.

#if defined(HYPPO_SIMD_BACKEND_STDSIMD)

namespace stdx = std::experimental;

struct Vec8 {
  stdx::fixed_size_simd<double, 8> v;

  static Vec8 Zero() { return {stdx::fixed_size_simd<double, 8>(0.0)}; }
  static Vec8 Broadcast(double s) {
    return {stdx::fixed_size_simd<double, 8>(s)};
  }
  static Vec8 Load(const double* p) {
    return {stdx::fixed_size_simd<double, 8>(p, stdx::element_aligned)};
  }
  void Store(double* p) const { v.copy_to(p, stdx::element_aligned); }
  double Lane(int i) const { return v[i]; }
  static Vec8 Add(const Vec8& a, const Vec8& b) { return {a.v + b.v}; }
  static Vec8 Sub(const Vec8& a, const Vec8& b) { return {a.v - b.v}; }
  static Vec8 Mul(const Vec8& a, const Vec8& b) { return {a.v * b.v}; }
  /// a * b + c, fused (single rounding) in every lane.
  static Vec8 Fma(const Vec8& a, const Vec8& b, const Vec8& c) {
    return {stdx::fma(a.v, b.v, c.v)};
  }
};

constexpr const char* kBackendName = "stdsimd";

#elif defined(HYPPO_SIMD_BACKEND_AVX2)

struct Vec8 {
  __m256d lo;
  __m256d hi;

  static Vec8 Zero() {
    return {_mm256_setzero_pd(), _mm256_setzero_pd()};
  }
  static Vec8 Broadcast(double s) {
    return {_mm256_set1_pd(s), _mm256_set1_pd(s)};
  }
  static Vec8 Load(const double* p) {
    return {_mm256_loadu_pd(p), _mm256_loadu_pd(p + 4)};
  }
  void Store(double* p) const {
    _mm256_storeu_pd(p, lo);
    _mm256_storeu_pd(p + 4, hi);
  }
  double Lane(int i) const {
    alignas(32) double tmp[8];
    Store(tmp);
    return tmp[i];
  }
  static Vec8 Add(const Vec8& a, const Vec8& b) {
    return {_mm256_add_pd(a.lo, b.lo), _mm256_add_pd(a.hi, b.hi)};
  }
  static Vec8 Sub(const Vec8& a, const Vec8& b) {
    return {_mm256_sub_pd(a.lo, b.lo), _mm256_sub_pd(a.hi, b.hi)};
  }
  static Vec8 Mul(const Vec8& a, const Vec8& b) {
    return {_mm256_mul_pd(a.lo, b.lo), _mm256_mul_pd(a.hi, b.hi)};
  }
  static Vec8 Fma(const Vec8& a, const Vec8& b, const Vec8& c) {
    return {_mm256_fmadd_pd(a.lo, b.lo, c.lo),
            _mm256_fmadd_pd(a.hi, b.hi, c.hi)};
  }
};

constexpr const char* kBackendName = "avx2-intrinsics";

#else  // scalar-banked fallback

struct Vec8 {
  double lane[8];

  static Vec8 Zero() { return Broadcast(0.0); }
  static Vec8 Broadcast(double s) {
    Vec8 out;
    for (double& l : out.lane) {
      l = s;
    }
    return out;
  }
  static Vec8 Load(const double* p) {
    Vec8 out;
    for (int i = 0; i < 8; ++i) {
      out.lane[i] = p[i];
    }
    return out;
  }
  void Store(double* p) const {
    for (int i = 0; i < 8; ++i) {
      p[i] = lane[i];
    }
  }
  double Lane(int i) const { return lane[i]; }
  static Vec8 Add(const Vec8& a, const Vec8& b) {
    Vec8 out;
    for (int i = 0; i < 8; ++i) {
      out.lane[i] = a.lane[i] + b.lane[i];
    }
    return out;
  }
  static Vec8 Sub(const Vec8& a, const Vec8& b) {
    Vec8 out;
    for (int i = 0; i < 8; ++i) {
      out.lane[i] = a.lane[i] - b.lane[i];
    }
    return out;
  }
  static Vec8 Mul(const Vec8& a, const Vec8& b) {
    Vec8 out;
    for (int i = 0; i < 8; ++i) {
      out.lane[i] = a.lane[i] * b.lane[i];
    }
    return out;
  }
  static Vec8 Fma(const Vec8& a, const Vec8& b, const Vec8& c) {
    Vec8 out;
    for (int i = 0; i < 8; ++i) {
      out.lane[i] = std::fma(a.lane[i], b.lane[i], c.lane[i]);
    }
    return out;
  }
};

constexpr const char* kBackendName = "scalar-banked";

#endif

/// Fixed-order horizontal sum: (((l0+l1)+(l2+l3))+((l4+l5)+(l6+l7))).
inline double ReduceTree(const Vec8& v) {
  return ((v.Lane(0) + v.Lane(1)) + (v.Lane(2) + v.Lane(3))) +
         ((v.Lane(4) + v.Lane(5)) + (v.Lane(6) + v.Lane(7)));
}

/// 8-lane banked fused dot product: ReduceTree(banks) + fma'd tail.
inline double Dot8(const double* a, const double* b, int64_t n) {
  Vec8 acc = Vec8::Zero();
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc = Vec8::Fma(Vec8::Load(a + i), Vec8::Load(b + i), acc);
  }
  double tail = 0.0;
  for (; i < n; ++i) {
    tail = std::fma(a[i], b[i], tail);
  }
  return ReduceTree(acc) + tail;
}

// GEMM blocking: the reduction dimension is panelled so the B strip a
// micro-tile streams stays cache-resident; the micro-tile is 6 C rows by
// one Vec8 of C columns held in registers across the panel (12 of the 16
// AVX2 ymm registers as accumulators). The micro-tile height only groups
// work — each C element's fma chain is the same at any height, so MR has
// no numeric effect.
constexpr int64_t kGemmKBlock = 256;
constexpr int64_t kGemmRowTile = 6;

// One MRx8 micro-tile update over p in [k0, k1): accumulators are loaded
// from C (which carries the partial sums of earlier k panels) and
// written back, so each C element sees one fma per p, p ascending. MR is
// a template parameter so the accumulators live in registers — a runtime
// row count would force the array to the stack and throttle the whole
// kernel on accumulator spills.
template <int MR>
inline void GemmMicro(const double* a, const double* b, double* c,
                      int64_t k, int64_t n, int64_t i, int64_t j0,
                      int64_t k0, int64_t k1) {
  Vec8 acc[MR];
  for (int r = 0; r < MR; ++r) {
    acc[r] = Vec8::Load(c + (i + r) * n + j0);
  }
  for (int64_t p = k0; p < k1; ++p) {
    const Vec8 bv = Vec8::Load(b + p * n + j0);
    for (int r = 0; r < MR; ++r) {
      acc[r] = Vec8::Fma(Vec8::Broadcast(a[(i + r) * k + p]), bv, acc[r]);
    }
  }
  for (int r = 0; r < MR; ++r) {
    acc[r].Store(c + (i + r) * n + j0);
  }
}

}  // namespace

const char* BackendName() { return kBackendName; }

void GemmRows(const double* a, const double* b, double* c, int64_t m,
              int64_t k, int64_t n, int64_t row_begin, int64_t row_end) {
  row_end = std::min(row_end, m);
  for (int64_t i = row_begin; i < row_end; ++i) {
    double* crow = c + i * n;
    for (int64_t j = 0; j < n; ++j) {
      crow[j] = 0.0;
    }
  }
  const int64_t j_vec = n - n % 8;
  for (int64_t k0 = 0; k0 < k; k0 += kGemmKBlock) {
    const int64_t k1 = std::min(k, k0 + kGemmKBlock);
    for (int64_t j0 = 0; j0 < j_vec; j0 += 8) {
      int64_t i = row_begin;
      for (; i + kGemmRowTile <= row_end; i += kGemmRowTile) {
        GemmMicro<kGemmRowTile>(a, b, c, k, n, i, j0, k0, k1);
      }
      switch (row_end - i) {
        case 5:
          GemmMicro<5>(a, b, c, k, n, i, j0, k0, k1);
          break;
        case 4:
          GemmMicro<4>(a, b, c, k, n, i, j0, k0, k1);
          break;
        case 3:
          GemmMicro<3>(a, b, c, k, n, i, j0, k0, k1);
          break;
        case 2:
          GemmMicro<2>(a, b, c, k, n, i, j0, k0, k1);
          break;
        case 1:
          GemmMicro<1>(a, b, c, k, n, i, j0, k0, k1);
          break;
        default:
          break;
      }
    }
    // Column tail: same ascending-p fma chain, scalar.
    for (int64_t i = row_begin; i < row_end; ++i) {
      const double* arow = a + i * k;
      double* crow = c + i * n;
      for (int64_t j = j_vec; j < n; ++j) {
        double sum = crow[j];
        for (int64_t p = k0; p < k1; ++p) {
          sum = std::fma(arow[p], b[p * n + j], sum);
        }
        crow[j] = sum;
      }
    }
  }
}

void Gemm(const double* a, const double* b, double* c, int64_t m, int64_t k,
          int64_t n) {
  GemmRows(a, b, c, m, k, n, 0, m);
}

void GemvRows(const double* m, int64_t rows, int64_t cols, const double* x,
              double* y, int64_t row_begin, int64_t row_end) {
  row_end = std::min(row_end, rows);
  for (int64_t r = row_begin; r < row_end; ++r) {
    y[r] = Dot8(m + r * cols, x, cols);
  }
}

void Gemv(const double* m, int64_t rows, int64_t cols, const double* x,
          double* y) {
  GemvRows(m, rows, cols, x, y, 0, rows);
}

// out[r] = bias + sum_c w[c] * (cols[c][r] - shift[c]); ascending-c fma
// chain per output row. Vector rows and scalar-tail rows run the same
// per-element chain, so results are independent of chunk boundaries.
void GemvColumnsRows(const double* const* cols, int64_t rows,
                     int64_t num_cols, const double* shift, const double* w,
                     double bias, double* out, int64_t row_begin,
                     int64_t row_end) {
  row_end = std::min(row_end, rows);
  int64_t r = row_begin;
  for (; r + 8 <= row_end; r += 8) {
    Vec8 acc = Vec8::Broadcast(bias);
    for (int64_t c = 0; c < num_cols; ++c) {
      const Vec8 col = Vec8::Load(cols[c] + r);
      const Vec8 centered =
          shift ? Vec8::Sub(col, Vec8::Broadcast(shift[c])) : col;
      acc = Vec8::Fma(Vec8::Broadcast(w[c]), centered, acc);
    }
    acc.Store(out + r);
  }
  for (; r < row_end; ++r) {
    double sum = bias;
    for (int64_t c = 0; c < num_cols; ++c) {
      const double v = shift ? cols[c][r] - shift[c] : cols[c][r];
      sum = std::fma(w[c], v, sum);
    }
    out[r] = sum;
  }
}

void GemvColumns(const double* const* cols, int64_t rows, int64_t num_cols,
                 const double* shift, const double* w, double bias,
                 double* out) {
  GemvColumnsRows(cols, rows, num_cols, shift, w, bias, out, 0, rows);
}

namespace {

constexpr int64_t kGramTile = 16;

// One Gram entry: 8-lane banked row reduction. The weighted form
// multiplies weight*(ci-si) first, then fma's with (cj-sj) — the same
// left-to-right association as the reference.
inline double GramPair8(const double* ci, double si, const double* cj,
                        double sj, const double* weight, int64_t rows) {
  const Vec8 bsi = Vec8::Broadcast(si);
  const Vec8 bsj = Vec8::Broadcast(sj);
  Vec8 acc = Vec8::Zero();
  int64_t r = 0;
  if (weight == nullptr) {
    for (; r + 8 <= rows; r += 8) {
      acc = Vec8::Fma(Vec8::Sub(Vec8::Load(ci + r), bsi),
                      Vec8::Sub(Vec8::Load(cj + r), bsj), acc);
    }
    double tail = 0.0;
    for (; r < rows; ++r) {
      tail = std::fma(ci[r] - si, cj[r] - sj, tail);
    }
    return ReduceTree(acc) + tail;
  }
  for (; r + 8 <= rows; r += 8) {
    const Vec8 wi =
        Vec8::Mul(Vec8::Load(weight + r), Vec8::Sub(Vec8::Load(ci + r), bsi));
    acc = Vec8::Fma(wi, Vec8::Sub(Vec8::Load(cj + r), bsj), acc);
  }
  double tail = 0.0;
  for (; r < rows; ++r) {
    tail = std::fma(weight[r] * (ci[r] - si), cj[r] - sj, tail);
  }
  return ReduceTree(acc) + tail;
}

}  // namespace

// Upper-triangle tiles for i in [i_begin, i_end), mirrored into the lower
// triangle — the same ownership rule as the blocked tier, so the parallel
// row partition never writes an element twice.
void GramColumnsRows(const double* const* cols, int64_t rows,
                     int64_t num_cols, const double* shift,
                     const double* weight, double* out, int64_t i_begin,
                     int64_t i_end) {
  i_end = std::min(i_end, num_cols);
  for (int64_t i0 = i_begin; i0 < i_end; i0 += kGramTile) {
    const int64_t i1 = std::min(i_end, i0 + kGramTile);
    for (int64_t j0 = i0; j0 < num_cols; j0 += kGramTile) {
      const int64_t j1 = std::min(num_cols, j0 + kGramTile);
      for (int64_t i = i0; i < i1; ++i) {
        const double si = shift ? shift[i] : 0.0;
        for (int64_t j = std::max(i, j0); j < j1; ++j) {
          const double sj = shift ? shift[j] : 0.0;
          const double v = GramPair8(cols[i], si, cols[j], sj, weight, rows);
          out[i * num_cols + j] = v;
          out[j * num_cols + i] = v;
        }
      }
    }
  }
}

void GramColumns(const double* const* cols, int64_t rows, int64_t num_cols,
                 const double* shift, const double* weight, double* out) {
  GramColumnsRows(cols, rows, num_cols, shift, weight, out, 0, num_cols);
}

// Distances: ascending-dimension fused accumulation per (row, center)
// element; rows vectorized 8 at a time with per-lane independence, so
// vector chunks and the scalar row tail agree bitwise.
void PairwiseSquaredDistancesRows(const double* const* cols, int64_t rows,
                                  int64_t dims, const double* centers,
                                  int64_t k, double* out, int64_t row_begin,
                                  int64_t row_end) {
  row_end = std::min(row_end, rows);
  int64_t r = row_begin;
  for (; r + 8 <= row_end; r += 8) {
    for (int64_t i = 0; i < k; ++i) {
      const double* center = centers + i * dims;
      Vec8 acc = Vec8::Zero();
      for (int64_t c = 0; c < dims; ++c) {
        const Vec8 diff =
            Vec8::Sub(Vec8::Load(cols[c] + r), Vec8::Broadcast(center[c]));
        acc = Vec8::Fma(diff, diff, acc);
      }
      alignas(64) double lanes[8];
      acc.Store(lanes);
      for (int64_t t = 0; t < 8; ++t) {
        out[(r + t) * k + i] = lanes[t];
      }
    }
  }
  for (; r < row_end; ++r) {
    for (int64_t i = 0; i < k; ++i) {
      const double* center = centers + i * dims;
      double sq = 0.0;
      for (int64_t c = 0; c < dims; ++c) {
        const double diff = cols[c][r] - center[c];
        sq = std::fma(diff, diff, sq);
      }
      out[r * k + i] = sq;
    }
  }
}

void PairwiseSquaredDistances(const double* const* cols, int64_t rows,
                              int64_t dims, const double* centers, int64_t k,
                              double* out) {
  PairwiseSquaredDistancesRows(cols, rows, dims, centers, k, out, 0, rows);
}

// Distances per 8-row group held in a [center][lane] tile (the fma chain
// of PairwiseSquaredDistancesRows, so a lane and the scalar row tail
// produce identical bits), then a scalar argmin scan over centers in
// ascending order with a strict '<' — ties break toward the lowest index
// exactly like the blocked and reference tiers, which is what keeps the
// *index* outputs bitwise identical across tiers even though the simd
// tier's squared distances round differently.
void NearestCentroidsRows(const double* const* cols, int64_t rows,
                          int64_t dims, const double* centers, int64_t k,
                          int64_t* index, double* sq, int64_t row_begin,
                          int64_t row_end) {
  row_end = std::min(row_end, rows);
  std::vector<double> tile(static_cast<size_t>(k) * 8);
  int64_t r = row_begin;
  for (; r + 8 <= row_end; r += 8) {
    for (int64_t i = 0; i < k; ++i) {
      const double* center = centers + i * dims;
      Vec8 acc = Vec8::Zero();
      for (int64_t c = 0; c < dims; ++c) {
        const Vec8 diff =
            Vec8::Sub(Vec8::Load(cols[c] + r), Vec8::Broadcast(center[c]));
        acc = Vec8::Fma(diff, diff, acc);
      }
      acc.Store(tile.data() + i * 8);
    }
    for (int64_t t = 0; t < 8; ++t) {
      double best = tile[static_cast<size_t>(t)];
      int64_t best_i = 0;
      for (int64_t i = 1; i < k; ++i) {
        const double d = tile[static_cast<size_t>(i * 8 + t)];
        if (d < best) {
          best = d;
          best_i = i;
        }
      }
      if (index != nullptr) {
        index[r + t] = best_i;
      }
      if (sq != nullptr) {
        sq[r + t] = best;
      }
    }
  }
  for (; r < row_end; ++r) {
    double best = 0.0;
    int64_t best_i = 0;
    for (int64_t i = 0; i < k; ++i) {
      const double* center = centers + i * dims;
      double d = 0.0;
      for (int64_t c = 0; c < dims; ++c) {
        const double diff = cols[c][r] - center[c];
        d = std::fma(diff, diff, d);
      }
      if (i == 0 || d < best) {
        best = d;
        best_i = i;
      }
    }
    if (index != nullptr) {
      index[r] = best_i;
    }
    if (sq != nullptr) {
      sq[r] = best;
    }
  }
}

void NearestCentroids(const double* const* cols, int64_t rows, int64_t dims,
                      const double* centers, int64_t k, int64_t* index,
                      double* sq) {
  NearestCentroidsRows(cols, rows, dims, centers, k, index, sq, 0, rows);
}

// ---------------------------------------------------------------------------
// Fused vector kernels.

double Dot(const double* a, const double* b, int64_t n) {
  return Dot8(a, b, n);
}

double ShiftedDot(const double* x, double shift, const double* y, int64_t n) {
  const Vec8 bshift = Vec8::Broadcast(shift);
  Vec8 acc = Vec8::Zero();
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc = Vec8::Fma(Vec8::Sub(Vec8::Load(x + i), bshift), Vec8::Load(y + i),
                    acc);
  }
  double tail = 0.0;
  for (; i < n; ++i) {
    tail = std::fma(x[i] - shift, y[i], tail);
  }
  return ReduceTree(acc) + tail;
}

// The elementwise ops below intentionally use separate multiply and add
// (no fma): each output element is the exact operation sequence of the
// reference, so Axpy/ShiftedAxpy/Multiply stay bitwise identical across
// every tier. (-ffp-contract=off on this TU guarantees the compiler does
// not fuse them behind our back.)

void Axpy(double alpha, const double* x, double* y, int64_t n) {
  const Vec8 balpha = Vec8::Broadcast(alpha);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    Vec8::Add(Vec8::Load(y + i), Vec8::Mul(balpha, Vec8::Load(x + i)))
        .Store(y + i);
  }
  for (; i < n; ++i) {
    y[i] += alpha * x[i];
  }
}

void ShiftedAxpy(double alpha, const double* x, double shift, double* y,
                 int64_t n) {
  const Vec8 balpha = Vec8::Broadcast(alpha);
  const Vec8 bshift = Vec8::Broadcast(shift);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const Vec8 centered = Vec8::Sub(Vec8::Load(x + i), bshift);
    Vec8::Add(Vec8::Load(y + i), Vec8::Mul(balpha, centered)).Store(y + i);
  }
  for (; i < n; ++i) {
    y[i] += alpha * (x[i] - shift);
  }
}

void Multiply(const double* a, const double* b, double* out, int64_t n) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    Vec8::Mul(Vec8::Load(a + i), Vec8::Load(b + i)).Store(out + i);
  }
  for (; i < n; ++i) {
    out[i] = a[i] * b[i];
  }
}

double Sum(const double* x, int64_t n) {
  Vec8 acc = Vec8::Zero();
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc = Vec8::Add(acc, Vec8::Load(x + i));
  }
  double tail = 0.0;
  for (; i < n; ++i) {
    tail += x[i];
  }
  return ReduceTree(acc) + tail;
}

double ShiftedSumSq(const double* x, double shift, int64_t n) {
  const Vec8 bshift = Vec8::Broadcast(shift);
  Vec8 acc = Vec8::Zero();
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const Vec8 d = Vec8::Sub(Vec8::Load(x + i), bshift);
    acc = Vec8::Fma(d, d, acc);
  }
  double tail = 0.0;
  for (; i < n; ++i) {
    const double d = x[i] - shift;
    tail = std::fma(d, d, tail);
  }
  return ReduceTree(acc) + tail;
}

void SumAndSumSq(const double* x, int64_t n, double* sum, double* sum_sq) {
  Vec8 acc_s = Vec8::Zero();
  Vec8 acc_q = Vec8::Zero();
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const Vec8 v = Vec8::Load(x + i);
    acc_s = Vec8::Add(acc_s, v);
    acc_q = Vec8::Fma(v, v, acc_q);
  }
  double tail_s = 0.0;
  double tail_q = 0.0;
  for (; i < n; ++i) {
    tail_s += x[i];
    tail_q = std::fma(x[i], x[i], tail_q);
  }
  *sum = ReduceTree(acc_s) + tail_s;
  *sum_sq = ReduceTree(acc_q) + tail_q;
}

}  // namespace hyppo::ml::kernels::simd
