#ifndef HYPPO_ML_KERNELS_KERNELS_H_
#define HYPPO_ML_KERNELS_KERNELS_H_

#include <cstdint>

namespace hyppo::ml::kernels {

/// \brief High-performance compute kernels backing the physical operators.
///
/// Three explicit tiers plus a dispatcher, all producing deterministic
/// results:
///
///  - `ref::*`     scalar reference implementations — the semantic ground
///                 truth the property tests and benches compare against.
///  - `blocked::*` cache-blocked, vectorization-friendly implementations.
///                 Inner loops are written so the compiler can SIMD-ize
///                 them without -ffast-math (independent output lanes, or
///                 manually unrolled accumulator banks for reductions).
///  - `simd::*`    explicitly vectorized implementations built on
///                 std::experimental::simd where available, AVX2/FMA
///                 intrinsics behind a feature macro otherwise, and a
///                 scalar lane-banked fallback everywhere else. The one
///                 translation unit (kernel_simd.cc) is compiled with the
///                 ISA flags selected by the HYPPO_SIMD_ISA CMake cache
///                 variable; nothing else in the library carries ISA
///                 flags.
///  - dispatch     the unqualified functions below select the tier per
///                 call: problem-shape threshold first (tiny problems run
///                 the scalar reference), then the cached CPU-feature
///                 probe / HYPPO_SIMD override (simd tier when eligible,
///                 blocked otherwise), and finally a parallel split of
///                 the chosen tier across the shared kernel thread pool
///                 when the active KernelOptions allow it.
///
/// Determinism contract (per tier): for a given shape, each tier fixes
/// the floating-point accumulation order of every output element, and
/// the parallel path distributes whole output tiles over workers without
/// changing that order. Hence dispatch(1 thread) == dispatch(N threads)
/// bit for bit — HYPPO's equivalence semantics (and the differential /
/// chaos tests, which compare payloads byte-wise across executor
/// parallelism levels) stay intact. Tiers may differ from each other,
/// but only by floating-point association/contraction (bounded by the
/// property tests): `blocked` uses 4-way accumulator banks, `simd` uses
/// a fixed 8-lane bank with a fixed reduction tree, independent of the
/// vector width the build actually uses.
///
/// Nesting policy: kernels never submit work when the calling thread is
/// already a ThreadPool worker (executor-level parallelism wins and the
/// inner kernel runs serially on the chosen tier), so executor-level and
/// kernel-level parallelism compose without oversubscription. See
/// docs/KERNELS.md.

/// Per-call tuning knobs, normally installed by the executor via
/// KernelScope from RuntimeOptions (see Executor::Options::kernel_threads).
struct KernelOptions {
  /// Upper bound on worker threads a single kernel call may use.
  /// <= 1 disables kernel-level parallelism. The bound is also capped by
  /// the shared pool size (hardware concurrency).
  int num_threads = 1;
  /// Per-call simd-tier opt-out: when false, dispatch never selects the
  /// simd tier even if it is enabled process-wide. Tests and benches use
  /// this to pin the blocked tier; operators leave it true. (Selecting a
  /// different tier changes floating-point association, so this is a
  /// deliberate caller choice, exactly like calling blocked:: directly.)
  bool allow_simd = true;
};

/// Options seen by kernel calls on this thread that do not pass explicit
/// options. Defaults to serial (num_threads = 1).
const KernelOptions& CurrentOptions();

/// RAII installer for thread-local KernelOptions; restores the previous
/// options on destruction. The executor wraps operator execution in one
/// of these so op fit/transform code picks up the runtime's parallelism
/// without threading options through every signature.
class KernelScope {
 public:
  explicit KernelScope(const KernelOptions& options);
  ~KernelScope();

  KernelScope(const KernelScope&) = delete;
  KernelScope& operator=(const KernelScope&) = delete;

 private:
  KernelOptions previous_;
};

// ---------------------------------------------------------------------------
// Scalar reference path. Exported so tests and benches can compare against
// it; operator code should call the dispatching entry points instead.

namespace ref {

/// C = A * B with row-major A (m x k), B (k x n), C (m x n).
void Gemm(const double* a, const double* b, double* c, int64_t m, int64_t k,
          int64_t n);

/// y = M x for row-major M (rows x cols).
void Gemv(const double* m, int64_t rows, int64_t cols, const double* x,
          double* y);

/// out[r] = bias + sum_c w[c] * (cols[c][r] - (shift ? shift[c] : 0)) for a
/// column-major matrix given as `num_cols` column pointers of length
/// `rows` — the dataset-layout GEMV used by linear predict and PCA
/// projection.
void GemvColumns(const double* const* cols, int64_t rows, int64_t num_cols,
                 const double* shift, const double* w, double bias,
                 double* out);

/// SYRK-style column Gram matrix: out (row-major d x d, d = num_cols) with
///   out[i][j] = sum_r weight_r * (cols[i][r] - shift_i) * (cols[j][r] - shift_j)
/// where shift defaults to 0 (Gram / normal equations) and weight to 1.
/// With shift = column means this is the (unnormalized) covariance; with
/// weight = p(1-p) it is the logistic-regression Hessian body.
void GramColumns(const double* const* cols, int64_t rows, int64_t num_cols,
                 const double* shift, const double* weight, double* out);

/// Squared Euclidean distances between every data row and every center:
/// out[r * k + i] = || x_r - center_i ||^2 with column-major data and
/// row-major centers (k x dims).
void PairwiseSquaredDistances(const double* const* cols, int64_t rows,
                              int64_t dims, const double* centers, int64_t k,
                              double* out);

double Dot(const double* a, const double* b, int64_t n);

}  // namespace ref

// ---------------------------------------------------------------------------
// Blocked path. Deterministic accumulation order per output element,
// independent of how tiles are later distributed over threads.

namespace blocked {

void Gemm(const double* a, const double* b, double* c, int64_t m, int64_t k,
          int64_t n);
void Gemv(const double* m, int64_t rows, int64_t cols, const double* x,
          double* y);
void GemvColumns(const double* const* cols, int64_t rows, int64_t num_cols,
                 const double* shift, const double* w, double bias,
                 double* out);
void GramColumns(const double* const* cols, int64_t rows, int64_t num_cols,
                 const double* shift, const double* weight, double* out);
void PairwiseSquaredDistances(const double* const* cols, int64_t rows,
                              int64_t dims, const double* centers, int64_t k,
                              double* out);
double Dot(const double* a, const double* b, int64_t n);

/// Tile-range variants used by the parallel driver; [row_begin, row_end)
/// selects the output rows this call produces. Exposed for tests.
void GemmRows(const double* a, const double* b, double* c, int64_t m,
              int64_t k, int64_t n, int64_t row_begin, int64_t row_end);
void GemvRows(const double* m, int64_t rows, int64_t cols, const double* x,
              double* y, int64_t row_begin, int64_t row_end);
void GemvColumnsRows(const double* const* cols, int64_t rows,
                     int64_t num_cols, const double* shift, const double* w,
                     double bias, double* out, int64_t row_begin,
                     int64_t row_end);
void GramColumnsRows(const double* const* cols, int64_t rows,
                     int64_t num_cols, const double* shift,
                     const double* weight, double* out, int64_t i_begin,
                     int64_t i_end);
void PairwiseSquaredDistancesRows(const double* const* cols, int64_t rows,
                                  int64_t dims, const double* centers,
                                  int64_t k, double* out, int64_t row_begin,
                                  int64_t row_end);

}  // namespace blocked

// ---------------------------------------------------------------------------
// SIMD path (kernel_simd.cc — the only TU compiled with ISA flags).
// Deterministic accumulation order per output element, fixed by the tier
// itself and independent of thread count and of the vector backend:
// matrix kernels accumulate in the same ascending-index order as the
// reference (with FMA contraction where the build provides it), and
// reductions use a fixed 8-lane bank reduced by a fixed binary tree
// (((l0+l1)+(l2+l3))+((l4+l5)+(l6+l7))) plus a scalar tail.
//
// Safety: when the tier was built for an ISA the running CPU lacks
// (SimdRuntimeSupported() == false), calling into simd:: is undefined
// (illegal instruction). The dispatcher checks; direct callers (tests,
// benches) must gate on SimdRuntimeSupported() themselves.

namespace simd {

void Gemm(const double* a, const double* b, double* c, int64_t m, int64_t k,
          int64_t n);
void Gemv(const double* m, int64_t rows, int64_t cols, const double* x,
          double* y);
void GemvColumns(const double* const* cols, int64_t rows, int64_t num_cols,
                 const double* shift, const double* w, double bias,
                 double* out);
void GramColumns(const double* const* cols, int64_t rows, int64_t num_cols,
                 const double* shift, const double* weight, double* out);
void PairwiseSquaredDistances(const double* const* cols, int64_t rows,
                              int64_t dims, const double* centers, int64_t k,
                              double* out);
/// Fused distances + argmin. The argmin scan matches the other tiers
/// exactly (ascending centers, strict '<'), so the index output is
/// bitwise identical across tiers; the squared distances carry the simd
/// tier's fma rounding.
void NearestCentroids(const double* const* cols, int64_t rows, int64_t dims,
                      const double* centers, int64_t k, int64_t* index,
                      double* sq);

/// Tile-range variants used by the parallel driver; same partitioning
/// contract as the blocked:: counterparts.
void GemmRows(const double* a, const double* b, double* c, int64_t m,
              int64_t k, int64_t n, int64_t row_begin, int64_t row_end);
void GemvRows(const double* m, int64_t rows, int64_t cols, const double* x,
              double* y, int64_t row_begin, int64_t row_end);
void GemvColumnsRows(const double* const* cols, int64_t rows,
                     int64_t num_cols, const double* shift, const double* w,
                     double bias, double* out, int64_t row_begin,
                     int64_t row_end);
void GramColumnsRows(const double* const* cols, int64_t rows,
                     int64_t num_cols, const double* shift,
                     const double* weight, double* out, int64_t i_begin,
                     int64_t i_end);
void PairwiseSquaredDistancesRows(const double* const* cols, int64_t rows,
                                  int64_t dims, const double* centers,
                                  int64_t k, double* out, int64_t row_begin,
                                  int64_t row_end);
void NearestCentroidsRows(const double* const* cols, int64_t rows,
                          int64_t dims, const double* centers, int64_t k,
                          int64_t* index, double* sq, int64_t row_begin,
                          int64_t row_end);

// Fused vector kernels (serial). The reductions use the 8-lane banked
// order; the elementwise ops (Axpy/ShiftedAxpy/Multiply) perform exactly
// the per-element operation sequence of the reference (mul then add, no
// contraction), so they stay bitwise identical across tiers.
double Dot(const double* a, const double* b, int64_t n);
double ShiftedDot(const double* x, double shift, const double* y, int64_t n);
void Axpy(double alpha, const double* x, double* y, int64_t n);
void ShiftedAxpy(double alpha, const double* x, double shift, double* y,
                 int64_t n);
void Multiply(const double* a, const double* b, double* out, int64_t n);
double Sum(const double* x, int64_t n);
double ShiftedSumSq(const double* x, double shift, int64_t n);
void SumAndSumSq(const double* x, int64_t n, double* sum, double* sum_sq);

/// Name of the backend this build's simd tier vectorizes with:
/// "stdsimd", "avx2-intrinsics", or "scalar-banked".
const char* BackendName();

}  // namespace simd

// ---------------------------------------------------------------------------
// SIMD tier configuration: which ISA the tier was compiled for, whether
// the running CPU can execute it, and the HYPPO_SIMD environment
// override. All three are cached; RefreshSimdConfig() re-reads the
// environment for tests that mutate HYPPO_SIMD mid-process.

/// ISA the simd translation unit was compiled for, as selected by the
/// HYPPO_SIMD_ISA CMake cache variable: "avx512", "avx2", or "generic"
/// (no ISA flags beyond the baseline; also the HYPPO_SIMD_ISA=off /
/// non-x86 spelling).
const char* SimdBuildIsa();

/// True when the running CPU supports the ISA the simd tier was built
/// for (cached cpuid probe; trivially true for "generic" builds).
bool SimdRuntimeSupported();

/// True when the dispatcher may select the simd tier: the CPU supports
/// the build ISA and the HYPPO_SIMD override allows it.
///
/// HYPPO_SIMD values: "off" disables the tier; "sse2" / "avx2" /
/// "avx512" cap the ISA the tier may require (the tier is disabled when
/// it was built for a newer ISA than the cap, so HYPPO_SIMD=sse2 on an
/// avx2 build forces the blocked tier); "on" / "native" / unset defer to
/// the cpuid probe. Unrecognized values behave like "on".
bool SimdEnabled();

/// Re-reads HYPPO_SIMD and recomputes SimdEnabled(). Test hook: the
/// env override is otherwise read once per process. Not thread-safe
/// against concurrent kernel dispatch.
void RefreshSimdConfig();

/// Measured GEMM throughput (GFLOP/s) of the dispatch path at the given
/// cube size, timed over a handful of repetitions. The cost-estimation
/// calibration hook (CostEstimator::SetComputeThroughputScale) uses this
/// to make formula-based plan costs track the active kernel tier.
double MeasureGemmGflops(int64_t size = 192,
                         const KernelOptions* opts = nullptr);

/// Blocked-tier GEMM throughput the registered CostHint formulas were
/// tuned against (the ~4 GFLOP/s plateau recorded in
/// bench/BENCH_kernels.json before the simd tier existed). The ratio
/// MeasureGemmGflops()/kCalibrationBaselineGflops is the throughput
/// scale a runtime passes to its cost estimator.
inline constexpr double kCalibrationBaselineGflops = 4.0;

// ---------------------------------------------------------------------------
// Dispatching entry points. `opts` overrides the thread-local
// CurrentOptions() when non-null (benches use this to force a thread
// count); path selection by problem size is independent of `opts`, so a
// given shape always takes the same numeric path for a given simd
// configuration.

void Gemm(const double* a, const double* b, double* c, int64_t m, int64_t k,
          int64_t n, const KernelOptions* opts = nullptr);
void Gemv(const double* m, int64_t rows, int64_t cols, const double* x,
          double* y, const KernelOptions* opts = nullptr);
void GemvColumns(const double* const* cols, int64_t rows, int64_t num_cols,
                 const double* shift, const double* w, double bias,
                 double* out, const KernelOptions* opts = nullptr);
void GramColumns(const double* const* cols, int64_t rows, int64_t num_cols,
                 const double* shift, const double* weight, double* out,
                 const KernelOptions* opts = nullptr);
void PairwiseSquaredDistances(const double* const* cols, int64_t rows,
                              int64_t dims, const double* centers, int64_t k,
                              double* out,
                              const KernelOptions* opts = nullptr);

/// Nearest center per data row: index[r] = argmin_i out-of-line distance,
/// sq[r] = the minimum squared distance (either output may be null). Ties
/// break toward the lowest index in every tier. Routes to the simd tier's
/// fused distances+argmin when enabled, else the blocked distance tiles.
void NearestCentroids(const double* const* cols, int64_t rows, int64_t dims,
                      const double* centers, int64_t k, int64_t* index,
                      double* sq, const KernelOptions* opts = nullptr);

// --- fused vector kernels (serial; memory-bound) ---

/// Unrolled dot product (4 accumulator banks — vectorizes without
/// -ffast-math).
double Dot(const double* a, const double* b, int64_t n);
/// sum_i (x[i] - shift) * y[i] — the coordinate-descent correlation step.
double ShiftedDot(const double* x, double shift, const double* y, int64_t n);
/// y[i] += alpha * x[i].
void Axpy(double alpha, const double* x, double* y, int64_t n);
/// y[i] += alpha * (x[i] - shift) — fused centered update (residual
/// maintenance in lasso/elastic-net).
void ShiftedAxpy(double alpha, const double* x, double shift, double* y,
                 int64_t n);
/// out[i] = a[i] * b[i] (polynomial feature products).
void Multiply(const double* a, const double* b, double* out, int64_t n);
/// Unrolled sum.
double Sum(const double* x, int64_t n);
/// sum_i (x[i] - shift)^2 — fused centered second moment.
double ShiftedSumSq(const double* x, double shift, int64_t n);
/// Single-pass sum and sum of squares (variance-threshold style).
void SumAndSumSq(const double* x, int64_t n, double* sum, double* sum_sq);

/// True when the calling thread may not fan out kernel work (it is a
/// ThreadPool worker, or the effective thread bound is 1). Exposed for
/// tests of the nesting policy.
bool ParallelismSuppressed(const KernelOptions* opts = nullptr);

}  // namespace hyppo::ml::kernels

#endif  // HYPPO_ML_KERNELS_KERNELS_H_
