#include "ml/csv.h"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace hyppo::ml {

namespace {

bool IsMissing(const std::string& cell, const CsvOptions& options) {
  if (cell.empty()) {
    return true;
  }
  for (const std::string& marker : options.missing_markers) {
    if (cell == marker) {
      return true;
    }
  }
  return false;
}

Result<double> ParseCell(const std::string& cell, int64_t line,
                         const CsvOptions& options) {
  if (IsMissing(cell, options)) {
    return std::nan("");
  }
  char* end = nullptr;
  const double value = std::strtod(cell.c_str(), &end);
  if (end == cell.c_str() ||
      !StripWhitespace(std::string_view(end)).empty()) {
    return Status::ParseError("line " + std::to_string(line) +
                              ": non-numeric cell '" + cell + "'");
  }
  return value;
}

}  // namespace

Result<Dataset> ParseCsv(const std::string& text, const CsvOptions& options) {
  std::vector<std::string> lines = StrSplit(text, '\n');
  while (!lines.empty() && StripWhitespace(lines.back()).empty()) {
    lines.pop_back();
  }
  if (lines.empty()) {
    return Status::ParseError("empty CSV input");
  }
  size_t first_data_line = 0;
  std::vector<std::string> header;
  if (options.has_header) {
    for (const std::string& name : StrSplit(lines[0], options.delimiter)) {
      header.emplace_back(StripWhitespace(name));
    }
    first_data_line = 1;
  } else {
    const size_t cols = StrSplit(lines[0], options.delimiter).size();
    for (size_t c = 0; c < cols; ++c) {
      header.push_back("f" + std::to_string(c));
    }
  }
  if (header.empty()) {
    return Status::ParseError("CSV has no columns");
  }
  int64_t target_index = -1;
  if (!options.target_column.empty()) {
    for (size_t c = 0; c < header.size(); ++c) {
      if (header[c] == options.target_column) {
        target_index = static_cast<int64_t>(c);
      }
    }
    if (target_index < 0) {
      return Status::InvalidArgument("no column named '" +
                                     options.target_column + "'");
    }
  }
  const int64_t rows =
      static_cast<int64_t>(lines.size() - first_data_line);
  if (rows <= 0) {
    return Status::ParseError("CSV has a header but no data rows");
  }
  std::vector<std::string> feature_names;
  for (size_t c = 0; c < header.size(); ++c) {
    if (static_cast<int64_t>(c) != target_index) {
      feature_names.push_back(header[c]);
    }
  }
  Dataset dataset = Dataset::WithColumns(rows, std::move(feature_names));
  std::vector<double> target(
      target_index >= 0 ? static_cast<size_t>(rows) : 0, 0.0);
  for (int64_t r = 0; r < rows; ++r) {
    const int64_t line_no = static_cast<int64_t>(first_data_line) + r + 1;
    const std::vector<std::string> cells = StrSplit(
        lines[static_cast<size_t>(first_data_line) + static_cast<size_t>(r)],
        options.delimiter);
    if (cells.size() != header.size()) {
      return Status::ParseError(
          "line " + std::to_string(line_no) + ": expected " +
          std::to_string(header.size()) + " cells, found " +
          std::to_string(cells.size()));
    }
    int64_t feature_col = 0;
    for (size_t c = 0; c < cells.size(); ++c) {
      const std::string cell(StripWhitespace(cells[c]));
      HYPPO_ASSIGN_OR_RETURN(double value,
                             ParseCell(cell, line_no, options));
      if (static_cast<int64_t>(c) == target_index) {
        if (std::isnan(value)) {
          return Status::ParseError("line " + std::to_string(line_no) +
                                    ": missing target value");
        }
        target[static_cast<size_t>(r)] = value;
      } else {
        dataset.at(r, feature_col++) = value;
      }
    }
  }
  if (target_index >= 0) {
    dataset.set_target(std::move(target));
  }
  return dataset;
}

Result<Dataset> LoadCsv(const std::string& path, const CsvOptions& options) {
  std::ifstream in(path);
  if (!in) {
    return Status::IoError("cannot open '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseCsv(buffer.str(), options);
}

std::string ToCsv(const Dataset& dataset) {
  std::ostringstream out;
  for (int64_t c = 0; c < dataset.cols(); ++c) {
    if (c > 0) {
      out << ',';
    }
    out << dataset.column_names()[static_cast<size_t>(c)];
  }
  if (dataset.has_target()) {
    out << (dataset.cols() > 0 ? "," : "") << "target";
  }
  out << '\n';
  for (int64_t r = 0; r < dataset.rows(); ++r) {
    for (int64_t c = 0; c < dataset.cols(); ++c) {
      if (c > 0) {
        out << ',';
      }
      const double value = dataset.at(r, c);
      if (!std::isnan(value)) {
        out << FormatDouble(value, 10);
      }
    }
    if (dataset.has_target()) {
      out << (dataset.cols() > 0 ? "," : "")
          << FormatDouble(dataset.target()[static_cast<size_t>(r)], 10);
    }
    out << '\n';
  }
  return out.str();
}

Status SaveCsv(const Dataset& dataset, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status::IoError("cannot open '" + path + "' for writing");
  }
  out << ToCsv(dataset);
  if (!out.good()) {
    return Status::IoError("error while writing '" + path + "'");
  }
  return Status::OK();
}

}  // namespace hyppo::ml
