#ifndef HYPPO_ML_DATASET_H_
#define HYPPO_ML_DATASET_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"

namespace hyppo::ml {

/// \brief A dense, column-major numeric table with an optional target
/// column — the `data` artifact kind of the paper (analogous to a
/// DataFrame / NumPy array).
///
/// Values are stored column-major (`values[c * rows + r]`) because the
/// preprocessing operators are column-wise; model code uses row gathers.
class Dataset {
 public:
  Dataset() = default;

  /// Creates a zero-initialized dataset of the given shape.
  Dataset(int64_t rows, int64_t cols);

  /// Creates a dataset with the given column names, zero-initialized.
  static Dataset WithColumns(int64_t rows, std::vector<std::string> names);

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }

  double at(int64_t row, int64_t col) const {
    return values_[static_cast<size_t>(col * rows_ + row)];
  }
  double& at(int64_t row, int64_t col) {
    return values_[static_cast<size_t>(col * rows_ + row)];
  }

  /// Pointer to the contiguous storage of one column.
  const double* col_data(int64_t col) const {
    return values_.data() + col * rows_;
  }
  double* col_data(int64_t col) { return values_.data() + col * rows_; }

  /// Copies one row into `out` (size cols()).
  void CopyRow(int64_t row, double* out) const;

  const std::vector<std::string>& column_names() const {
    return column_names_;
  }
  void set_column_names(std::vector<std::string> names);

  bool has_target() const { return has_target_; }
  const std::vector<double>& target() const { return target_; }
  std::vector<double>& mutable_target() { return target_; }
  void set_target(std::vector<double> target);

  /// In-memory footprint in bytes (matrix + target), used for artifact
  /// sizing by the materializer and the storage model.
  int64_t SizeBytes() const;

  /// Returns a dataset containing the given rows (indices into this one),
  /// preserving column names and slicing the target if present.
  Dataset SelectRows(const std::vector<int64_t>& rows) const;

  /// Returns a dataset containing the given columns; the target is kept.
  Result<Dataset> SelectCols(const std::vector<int64_t>& cols) const;

  /// Appends a column; `data` must have rows() entries.
  Status AddColumn(const std::string& name, const std::vector<double>& data);

  /// Short human-readable description ("Dataset(1000x30, target)").
  std::string DebugString() const;

 private:
  int64_t rows_ = 0;
  int64_t cols_ = 0;
  std::vector<double> values_;
  std::vector<std::string> column_names_;
  std::vector<double> target_;
  bool has_target_ = false;
};

using DatasetPtr = std::shared_ptr<const Dataset>;

}  // namespace hyppo::ml

#endif  // HYPPO_ML_DATASET_H_
