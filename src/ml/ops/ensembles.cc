#include <memory>

#include "common/string_util.h"
#include "ml/linalg.h"
#include "ml/operator.h"
#include "ml/ops/ops.h"

namespace hyppo::ml {

namespace {

// Model ensembles (paper §V, scenario 3 "advanced analysis"): ensemble
// operators consume previously *fitted* base models — multi-input
// hyperedges whose tails include several op-state artifacts. This is the
// workload where reusing past trained models pays off most.
//
//   fit:     tail = {base op-states..., [train data]} -> ensemble op-state
//   predict: tail = {ensemble op-state, test data}    -> predictions
//
// The `base_impls` config carries the physical impl names of the base
// models ("skl.Ridge;lgb.GradientBoostingRegressor;...") so predict can
// dispatch through the registry.

// Resolves the physical implementation used to run each base model's
// predict. Op-states are framework-agnostic in this catalog (any
// implementation of a logical operator consumes any state of that
// operator), so the dispatch only needs *a* predict-capable implementation
// per base logical op. An explicit semicolon-separated `base_impls` config
// overrides the derivation; note that config participates in canonical
// artifact naming, so overriding makes otherwise-equivalent ensembles
// distinct.
Result<std::vector<std::string>> ResolveBaseImpls(
    const Config& config, const std::vector<OpStatePtr>& states,
    const std::string& who) {
  const std::string raw = config.GetString("base_impls", "");
  if (!raw.empty()) {
    std::vector<std::string> impls = StrSplit(raw, ';');
    if (impls.size() != states.size()) {
      return Status::InvalidArgument(
          who + ": base_impls lists " + std::to_string(impls.size()) +
          " impls but " + std::to_string(states.size()) +
          " op-states were given");
    }
    return impls;
  }
  std::vector<std::string> impls;
  impls.reserve(states.size());
  for (const OpStatePtr& state : states) {
    const PhysicalOperator* chosen = nullptr;
    for (const PhysicalOperator* op :
         OperatorRegistry::Global().ImplsFor(state->logical_op())) {
      if (op->SupportsTask(MlTask::kPredict)) {
        chosen = op;
        break;
      }
    }
    if (chosen == nullptr) {
      return Status::InvalidArgument(
          who + ": no predict-capable implementation for base operator '" +
          state->logical_op() + "'");
    }
    impls.push_back(chosen->impl_name());
  }
  return impls;
}

class EnsembleRegressorBase : public PhysicalOperator {
 public:
  using PhysicalOperator::PhysicalOperator;

  bool SupportsTask(MlTask task) const override {
    return task == MlTask::kFit || task == MlTask::kPredict;
  }

  Result<TaskOutputs> Execute(MlTask task, const TaskInputs& inputs,
                              const Config& config) const override {
    TaskOutputs out;
    switch (task) {
      case MlTask::kFit: {
        if (inputs.states.empty()) {
          return Status::InvalidArgument(
              impl_name() + ".fit expects at least one base op-state");
        }
        HYPPO_ASSIGN_OR_RETURN(OpStatePtr state, DoFit(inputs, config));
        out.states.push_back(std::move(state));
        return out;
      }
      case MlTask::kPredict: {
        if (inputs.states.size() != 1 || inputs.datasets.size() != 1) {
          return Status::InvalidArgument(
              impl_name() +
              ".predict expects the ensemble op-state and one dataset");
        }
        const auto* es =
            dynamic_cast<const EnsembleState*>(inputs.states[0].get());
        if (es == nullptr) {
          return Status::InvalidArgument(impl_name() +
                                         ".predict: incompatible op-state");
        }
        HYPPO_ASSIGN_OR_RETURN(std::vector<double> preds,
                               DoPredict(*es, *inputs.datasets[0]));
        out.predictions.push_back(
            std::make_shared<const std::vector<double>>(std::move(preds)));
        return out;
      }
      default:
        return Status::InvalidArgument(impl_name() +
                                       " does not support task " +
                                       MlTaskToString(task));
    }
  }

  double CostHint(MlTask task, int64_t rows, int64_t cols,
                  const Config& /*config*/) const override {
    const double cells = static_cast<double>(rows) * static_cast<double>(cols);
    // Predict fans out to the base models; fit is cheap relative to the
    // (already fitted) base models.
    return (task == MlTask::kFit ? 5e-9 : 2e-8) * cells;
  }

 protected:
  virtual Result<OpStatePtr> DoFit(const TaskInputs& inputs,
                                   const Config& config) const = 0;

  Result<std::vector<double>> DoPredict(const EnsembleState& state,
                                        const Dataset& data) const {
    if (state.base_states.empty()) {
      return Status::InvalidArgument(impl_name() + ": empty ensemble");
    }
    std::vector<double> combined(static_cast<size_t>(data.rows()),
                                 state.meta_intercept);
    for (size_t b = 0; b < state.base_states.size(); ++b) {
      HYPPO_ASSIGN_OR_RETURN(
          std::vector<double> preds,
          PredictWithImpl(state.base_impls[b], *state.base_states[b], data));
      const double w = state.meta_weights[b];
      for (size_t i = 0; i < preds.size(); ++i) {
        combined[i] += w * preds[i];
      }
    }
    return combined;
  }
};

// VotingRegressor: uniform average of base model predictions. Fit does not
// need data; it records the base models with uniform weights.
class SklVotingRegressor final : public EnsembleRegressorBase {
 public:
  SklVotingRegressor()
      : EnsembleRegressorBase("VotingRegressor", "skl") {}

 protected:
  Result<OpStatePtr> DoFit(const TaskInputs& inputs,
                           const Config& config) const override {
    HYPPO_ASSIGN_OR_RETURN(
        std::vector<std::string> impls,
        ResolveBaseImpls(config, inputs.states, impl_name()));
    auto state = std::make_shared<EnsembleState>("VotingRegressor");
    state->base_states = inputs.states;
    state->base_impls = std::move(impls);
    for (const OpStatePtr& base : inputs.states) {
      state->base_logical_ops.push_back(base->logical_op());
    }
    state->meta_weights.assign(
        inputs.states.size(),
        1.0 / static_cast<double>(inputs.states.size()));
    return OpStatePtr(std::move(state));
  }
};

// StackingRegressor: fits a ridge meta-learner over the base models'
// predictions on the provided training data.
class SklStackingRegressor final : public EnsembleRegressorBase {
 public:
  SklStackingRegressor()
      : EnsembleRegressorBase("StackingRegressor", "skl") {}

 protected:
  Result<OpStatePtr> DoFit(const TaskInputs& inputs,
                           const Config& config) const override {
    if (inputs.datasets.size() != 1) {
      return Status::InvalidArgument(
          impl_name() + ".fit expects the training dataset");
    }
    const Dataset& train = *inputs.datasets[0];
    if (!train.has_target()) {
      return Status::InvalidArgument(impl_name() +
                                     ".fit: dataset has no target");
    }
    HYPPO_ASSIGN_OR_RETURN(
        std::vector<std::string> impls,
        ResolveBaseImpls(config, inputs.states, impl_name()));
    const size_t k = inputs.states.size();
    const int64_t n = train.rows();
    // Base model predictions form the meta design matrix (k columns).
    std::vector<std::vector<double>> base_preds(k);
    for (size_t b = 0; b < k; ++b) {
      HYPPO_ASSIGN_OR_RETURN(
          base_preds[b],
          PredictWithImpl(impls[b], *inputs.states[b], train));
    }
    // Ridge with intercept on the k-dimensional meta features.
    const double alpha = config.GetDouble("alpha", 1.0);
    const int64_t a = static_cast<int64_t>(k) + 1;
    std::vector<double> gram(static_cast<size_t>(a * a), 0.0);
    std::vector<double> moment(static_cast<size_t>(a), 0.0);
    for (size_t i = 0; i < k; ++i) {
      for (size_t j = i; j < k; ++j) {
        double sum = 0.0;
        for (int64_t r = 0; r < n; ++r) {
          sum += base_preds[i][static_cast<size_t>(r)] *
                 base_preds[j][static_cast<size_t>(r)];
        }
        gram[i * static_cast<size_t>(a) + j] = sum;
        gram[j * static_cast<size_t>(a) + i] = sum;
      }
      double col_sum = 0.0;
      double y_sum = 0.0;
      for (int64_t r = 0; r < n; ++r) {
        col_sum += base_preds[i][static_cast<size_t>(r)];
        y_sum += base_preds[i][static_cast<size_t>(r)] *
                 train.target()[static_cast<size_t>(r)];
      }
      gram[i * static_cast<size_t>(a) + k] = col_sum;
      gram[k * static_cast<size_t>(a) + i] = col_sum;
      moment[i] = y_sum;
      gram[i * static_cast<size_t>(a) + i] += alpha;
    }
    gram[k * static_cast<size_t>(a) + k] = static_cast<double>(n);
    double target_sum = 0.0;
    for (double y : train.target()) {
      target_sum += y;
    }
    moment[k] = target_sum;
    HYPPO_ASSIGN_OR_RETURN(std::vector<double> solution,
                           CholeskySolve(std::move(gram), a, moment, 1e-8));
    auto state = std::make_shared<EnsembleState>("StackingRegressor");
    state->base_states = inputs.states;
    state->base_impls = std::move(impls);
    for (const OpStatePtr& base : inputs.states) {
      state->base_logical_ops.push_back(base->logical_op());
    }
    state->meta_weights.assign(solution.begin(), solution.begin() +
                                                     static_cast<int64_t>(k));
    state->meta_intercept = solution[k];
    return OpStatePtr(std::move(state));
  }
};

}  // namespace

Status RegisterEnsembleOperators(OperatorRegistry& registry) {
  HYPPO_RETURN_NOT_OK(
      registry.Register(std::make_unique<SklVotingRegressor>()));
  HYPPO_RETURN_NOT_OK(
      registry.Register(std::make_unique<SklStackingRegressor>()));
  return Status::OK();
}

}  // namespace hyppo::ml
