#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "ml/linalg.h"
#include "ml/operator.h"
#include "ml/ops/ops.h"

namespace hyppo::ml {

namespace {

// Binary linear SVM with hinge loss; labels are {0,1}, converted to ±1
// internally. Predict emits hard {0,1} labels.
//
// The two implementations optimize the same objective
//   min_w  (1/2)||w||^2 + C Σ max(0, 1 - y_i (w·x_i + b))
// with different algorithms: dual coordinate descent (liblinear-style,
// "skl") and Pegasos primal SGD ("lib", after libsvm in the paper's
// library list). Being iterative optimizers of the same convex objective,
// they agree on (almost all) predicted labels rather than bitwise weights —
// the paper's stochastic-equivalence case (§III-C2, note 1).

OpStatePtr MakeSvmState(std::vector<double> weights, double intercept) {
  auto state = std::make_shared<VectorState>("LinearSVM");
  state->vectors["weights"] = std::move(weights);
  state->scalars["intercept"] = intercept;
  return state;
}

class SvmBase : public Estimator {
 public:
  explicit SvmBase(std::string framework)
      : Estimator("LinearSVM", std::move(framework), /*transforms=*/false,
                  /*predicts=*/true) {}

  double CostHint(MlTask task, int64_t rows, int64_t cols,
                  const Config& /*config*/) const override {
    const double cells = static_cast<double>(rows) * static_cast<double>(cols);
    return (task == MlTask::kFit ? 4e-8 : 1.5e-9) * cells;
  }

 protected:
  Result<std::vector<double>> DoPredict(const OpState& state,
                                        const Dataset& data) const override {
    const auto* vs = dynamic_cast<const VectorState*>(&state);
    if (vs == nullptr ||
        static_cast<int64_t>(vs->vec("weights").size()) != data.cols()) {
      return Status::InvalidArgument(impl_name() +
                                     ".predict: incompatible op-state");
    }
    const std::vector<double>& w = vs->vec("weights");
    const double b = vs->scalar("intercept");
    std::vector<double> preds(static_cast<size_t>(data.rows()), b);
    for (int64_t c = 0; c < data.cols(); ++c) {
      const double* col = data.col_data(c);
      const double wc = w[static_cast<size_t>(c)];
      for (int64_t r = 0; r < data.rows(); ++r) {
        preds[static_cast<size_t>(r)] += wc * col[r];
      }
    }
    for (double& p : preds) {
      p = p >= 0.0 ? 1.0 : 0.0;
    }
    return preds;
  }

  static Status CheckInput(const Dataset& data, const std::string& who) {
    if (!data.has_target()) {
      return Status::InvalidArgument(who + ".fit: dataset has no target");
    }
    if (data.rows() < 2) {
      return Status::InvalidArgument(who + ".fit: needs at least two rows");
    }
    return Status::OK();
  }
};

// Dual coordinate descent for L1-loss SVM (liblinear Algorithm 3, with a
// fixed cyclic order for determinism). The intercept is handled by
// augmenting each example with a constant-1 feature.
class SklLinearSvm final : public SvmBase {
 public:
  SklLinearSvm() : SvmBase("skl") {}

 protected:
  Result<OpStatePtr> DoFit(const Dataset& data,
                           const Config& config) const override {
    HYPPO_RETURN_NOT_OK(CheckInput(data, impl_name()));
    const double c_param = config.GetDouble("C", 1.0);
    const int64_t n = data.rows();
    const int64_t d = data.cols();
    std::vector<double> alpha(static_cast<size_t>(n), 0.0);
    std::vector<double> w(static_cast<size_t>(d + 1), 0.0);
    std::vector<double> row(static_cast<size_t>(d));
    // Squared norms of augmented rows.
    std::vector<double> sq(static_cast<size_t>(n), 0.0);
    for (int64_t r = 0; r < n; ++r) {
      data.CopyRow(r, row.data());
      sq[static_cast<size_t>(r)] = Dot(row.data(), row.data(), d) + 1.0;
    }
    const int max_sweeps = static_cast<int>(config.GetInt("max_iter", 60));
    for (int sweep = 0; sweep < max_sweeps; ++sweep) {
      double max_step = 0.0;
      for (int64_t r = 0; r < n; ++r) {
        data.CopyRow(r, row.data());
        const double y =
            data.target()[static_cast<size_t>(r)] >= 0.5 ? 1.0 : -1.0;
        double margin = w[static_cast<size_t>(d)];
        margin += Dot(row.data(), w.data(), d);
        const double grad = y * margin - 1.0;
        const double old_alpha = alpha[static_cast<size_t>(r)];
        double new_alpha =
            std::clamp(old_alpha - grad / sq[static_cast<size_t>(r)], 0.0,
                       c_param);
        const double delta = (new_alpha - old_alpha) * y;
        if (delta != 0.0) {
          for (int64_t c = 0; c < d; ++c) {
            w[static_cast<size_t>(c)] += delta * row[static_cast<size_t>(c)];
          }
          w[static_cast<size_t>(d)] += delta;
          alpha[static_cast<size_t>(r)] = new_alpha;
        }
        max_step = std::max(max_step, std::fabs(delta));
      }
      if (max_step < 1e-8) {
        break;
      }
    }
    std::vector<double> weights(w.begin(), w.begin() + d);
    return MakeSvmState(std::move(weights), w[static_cast<size_t>(d)]);
  }
};

// Pegasos: primal stochastic sub-gradient with 1/(λt) steps and averaging
// over the final epoch; seeded deterministically from config.
class LibLinearSvm final : public SvmBase {
 public:
  LibLinearSvm() : SvmBase("lib") {}

 protected:
  Result<OpStatePtr> DoFit(const Dataset& data,
                           const Config& config) const override {
    HYPPO_RETURN_NOT_OK(CheckInput(data, impl_name()));
    const double c_param = config.GetDouble("C", 1.0);
    const int64_t n = data.rows();
    const int64_t d = data.cols();
    const double lambda = 1.0 / (c_param * static_cast<double>(n));
    const int epochs = static_cast<int>(config.GetInt("max_iter", 40));
    Rng rng(static_cast<uint64_t>(config.GetInt("seed", 11)));
    std::vector<double> w(static_cast<size_t>(d + 1), 0.0);
    std::vector<double> w_avg(static_cast<size_t>(d + 1), 0.0);
    std::vector<double> row(static_cast<size_t>(d));
    int64_t t = 1;
    int64_t avg_count = 0;
    for (int epoch = 0; epoch < epochs; ++epoch) {
      for (int64_t step = 0; step < n; ++step, ++t) {
        const int64_t r = static_cast<int64_t>(rng.NextBelow(
            static_cast<uint64_t>(n)));
        data.CopyRow(r, row.data());
        const double y =
            data.target()[static_cast<size_t>(r)] >= 0.5 ? 1.0 : -1.0;
        double margin = w[static_cast<size_t>(d)];
        margin += Dot(row.data(), w.data(), d);
        const double eta = 1.0 / (lambda * static_cast<double>(t));
        const double shrink = 1.0 - eta * lambda;
        for (int64_t c = 0; c < d; ++c) {
          w[static_cast<size_t>(c)] *= shrink;
        }
        if (y * margin < 1.0) {
          const double scale = eta * y / static_cast<double>(n) *
                               static_cast<double>(n);  // per-example step
          for (int64_t c = 0; c < d; ++c) {
            w[static_cast<size_t>(c)] += scale * row[static_cast<size_t>(c)];
          }
          w[static_cast<size_t>(d)] += scale;
        }
        if (epoch >= epochs - 5) {
          for (int64_t c = 0; c <= d; ++c) {
            w_avg[static_cast<size_t>(c)] += w[static_cast<size_t>(c)];
          }
          ++avg_count;
        }
      }
    }
    if (avg_count > 0) {
      for (double& v : w_avg) {
        v /= static_cast<double>(avg_count);
      }
    } else {
      w_avg = w;
    }
    std::vector<double> weights(w_avg.begin(), w_avg.begin() + d);
    return MakeSvmState(std::move(weights), w_avg[static_cast<size_t>(d)]);
  }
};

}  // namespace

Status RegisterSvmOperators(OperatorRegistry& registry) {
  HYPPO_RETURN_NOT_OK(registry.Register(std::make_unique<SklLinearSvm>()));
  HYPPO_RETURN_NOT_OK(registry.Register(std::make_unique<LibLinearSvm>()));
  return Status::OK();
}

}  // namespace hyppo::ml
