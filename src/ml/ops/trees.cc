#include <memory>
#include <numeric>

#include "ml/operator.h"
#include "ml/ops/ops.h"
#include "ml/ops/tree_builder.h"

namespace hyppo::ml {

namespace {

// DecisionTreeClassifier / DecisionTreeRegressor.
// skl: exact sort-based split finding. lgb: histogram split finding
// (LightGBM-style). Classifier leaves hold positive-class fractions, so
// predictions are probabilities.
class DecisionTreeOp final : public Estimator {
 public:
  DecisionTreeOp(std::string logical_op, std::string framework,
                 bool classifier, bool histogram)
      : Estimator(std::move(logical_op), std::move(framework),
                  /*transforms=*/false, /*predicts=*/true),
        classifier_(classifier),
        histogram_(histogram) {}

  double CostHint(MlTask task, int64_t rows, int64_t cols,
                  const Config& config) const override {
    const double n = static_cast<double>(rows);
    const double d = static_cast<double>(cols);
    const double depth =
        static_cast<double>(config.GetInt("max_depth", 6));
    if (task == MlTask::kFit) {
      const double per_level =
          histogram_ ? 6e-9 * n * d : 2.5e-8 * n * d;
      return per_level * depth;
    }
    return 3e-9 * n * depth;
  }

 protected:
  Result<OpStatePtr> DoFit(const Dataset& data,
                           const Config& config) const override {
    if (!data.has_target()) {
      return Status::InvalidArgument(impl_name() +
                                     ".fit: dataset has no target");
    }
    TreeOptions options;
    options.max_depth = static_cast<int32_t>(config.GetInt("max_depth", 6));
    options.min_samples_leaf = config.GetInt("min_samples_leaf", 5);
    options.min_samples_split = config.GetInt("min_samples_split", 10);
    options.histogram = histogram_;
    options.max_bins = static_cast<int32_t>(config.GetInt("max_bins", 64));
    options.classifier = classifier_;
    std::vector<int64_t> rows(static_cast<size_t>(data.rows()));
    std::iota(rows.begin(), rows.end(), 0);
    HYPPO_ASSIGN_OR_RETURN(FlatTree tree,
                           BuildTree(data, data.target(), rows, options));
    auto state = std::make_shared<TreeState>(logical_op());
    state->tree = std::move(tree);
    state->is_classifier = classifier_;
    return OpStatePtr(std::move(state));
  }

  Result<std::vector<double>> DoPredict(const OpState& state,
                                        const Dataset& data) const override {
    const auto* ts = dynamic_cast<const TreeState*>(&state);
    if (ts == nullptr) {
      return Status::InvalidArgument(impl_name() +
                                     ".predict: incompatible op-state");
    }
    std::vector<double> preds(static_cast<size_t>(data.rows()), 0.0);
    AccumulateTreePredictions(ts->tree, data, 1.0, preds);
    return preds;
  }

 private:
  bool classifier_;
  bool histogram_;
};

}  // namespace

Status RegisterTreeOperators(OperatorRegistry& registry) {
  HYPPO_RETURN_NOT_OK(registry.Register(std::make_unique<DecisionTreeOp>(
      "DecisionTreeClassifier", "skl", /*classifier=*/true,
      /*histogram=*/false)));
  HYPPO_RETURN_NOT_OK(registry.Register(std::make_unique<DecisionTreeOp>(
      "DecisionTreeClassifier", "lgb", /*classifier=*/true,
      /*histogram=*/true)));
  HYPPO_RETURN_NOT_OK(registry.Register(std::make_unique<DecisionTreeOp>(
      "DecisionTreeRegressor", "skl", /*classifier=*/false,
      /*histogram=*/false)));
  HYPPO_RETURN_NOT_OK(registry.Register(std::make_unique<DecisionTreeOp>(
      "DecisionTreeRegressor", "lgb", /*classifier=*/false,
      /*histogram=*/true)));
  return Status::OK();
}

}  // namespace hyppo::ml
