#include <algorithm>
#include <memory>
#include <numeric>

#include "common/rng.h"
#include "ml/operator.h"
#include "ml/ops/ops.h"

namespace hyppo::ml {

namespace {

// Both implementations derive the same deterministic permutation from the
// `seed` config, so their outputs are identical (a requirement for task
// equivalence, paper §III-C2); they differ in how they materialize the two
// partitions, and hence in cost.
std::vector<int64_t> SplitPermutation(int64_t rows, uint64_t seed,
                                      bool shuffle) {
  std::vector<int64_t> perm(static_cast<size_t>(rows));
  std::iota(perm.begin(), perm.end(), 0);
  if (shuffle) {
    Rng rng(seed);
    rng.Shuffle(perm);
  }
  return perm;
}

class TrainTestSplitBase : public PhysicalOperator {
 public:
  using PhysicalOperator::PhysicalOperator;

  bool SupportsTask(MlTask task) const override {
    return task == MlTask::kSplit;
  }

  Result<TaskOutputs> Execute(MlTask task, const TaskInputs& inputs,
                              const Config& config) const override {
    if (task != MlTask::kSplit) {
      return Status::InvalidArgument(impl_name() + " only supports split");
    }
    if (inputs.datasets.size() != 1) {
      return Status::InvalidArgument(impl_name() +
                                     ".split expects one dataset");
    }
    const Dataset& data = *inputs.datasets[0];
    const double test_size = config.GetDouble("test_size", 0.25);
    if (test_size <= 0.0 || test_size >= 1.0) {
      return Status::InvalidArgument("test_size must be in (0, 1)");
    }
    const uint64_t seed =
        static_cast<uint64_t>(config.GetInt("seed", 13));
    const bool shuffle = config.GetBool("shuffle", true);
    const int64_t test_rows = std::max<int64_t>(
        1, static_cast<int64_t>(static_cast<double>(data.rows()) * test_size));
    if (test_rows >= data.rows()) {
      return Status::InvalidArgument("dataset too small to split");
    }
    std::vector<int64_t> perm = SplitPermutation(data.rows(), seed, shuffle);
    std::vector<int64_t> train_idx(perm.begin() + test_rows, perm.end());
    std::vector<int64_t> test_idx(perm.begin(), perm.begin() + test_rows);
    HYPPO_ASSIGN_OR_RETURN(Dataset train,
                           Materialize(data, train_idx));
    HYPPO_ASSIGN_OR_RETURN(Dataset test, Materialize(data, test_idx));
    TaskOutputs out;
    out.datasets.push_back(std::make_shared<const Dataset>(std::move(train)));
    out.datasets.push_back(std::make_shared<const Dataset>(std::move(test)));
    return out;
  }

  double CostHint(MlTask /*task*/, int64_t rows, int64_t cols,
                  const Config& /*config*/) const override {
    return 4e-9 * static_cast<double>(rows) * static_cast<double>(cols);
  }

 protected:
  virtual Result<Dataset> Materialize(
      const Dataset& data, const std::vector<int64_t>& rows) const = 0;
};

// Column-at-a-time gather (cache friendly on the column-major layout).
class SklTrainTestSplit final : public TrainTestSplitBase {
 public:
  SklTrainTestSplit() : TrainTestSplitBase("TrainTestSplit", "skl") {
    set_tolerance(Tolerance::kExact);
  }

 protected:
  Result<Dataset> Materialize(const Dataset& data,
                              const std::vector<int64_t>& rows) const override {
    return data.SelectRows(rows);
  }
};

// Row-at-a-time gather; identical output, worse locality (higher cost).
class TflTrainTestSplit final : public TrainTestSplitBase {
 public:
  TflTrainTestSplit() : TrainTestSplitBase("TrainTestSplit", "tfl") {
    set_tolerance(Tolerance::kExact);
  }

 protected:
  Result<Dataset> Materialize(const Dataset& data,
                              const std::vector<int64_t>& rows) const override {
    Dataset out(static_cast<int64_t>(rows.size()), data.cols());
    out.set_column_names(data.column_names());
    std::vector<double> row_buf(static_cast<size_t>(data.cols()));
    for (size_t i = 0; i < rows.size(); ++i) {
      data.CopyRow(rows[i], row_buf.data());
      for (int64_t c = 0; c < data.cols(); ++c) {
        out.at(static_cast<int64_t>(i), c) = row_buf[static_cast<size_t>(c)];
      }
    }
    if (data.has_target()) {
      std::vector<double> target(rows.size());
      for (size_t i = 0; i < rows.size(); ++i) {
        target[i] = data.target()[static_cast<size_t>(rows[i])];
      }
      out.set_target(std::move(target));
    }
    return out;
  }
};

}  // namespace

Status RegisterSplitOperators(OperatorRegistry& registry) {
  HYPPO_RETURN_NOT_OK(registry.Register(std::make_unique<SklTrainTestSplit>()));
  HYPPO_RETURN_NOT_OK(registry.Register(std::make_unique<TflTrainTestSplit>()));
  return Status::OK();
}

}  // namespace hyppo::ml
