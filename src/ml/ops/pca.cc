#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "ml/kernels/kernels.h"
#include "ml/linalg.h"
#include "ml/operator.h"
#include "ml/ops/ops.h"

namespace hyppo::ml {

namespace {

// Column-pointer view of a dataset for the column-layout kernels.
std::vector<const double*> ColumnPointers(const Dataset& data) {
  std::vector<const double*> cols(static_cast<size_t>(data.cols()));
  for (int64_t c = 0; c < data.cols(); ++c) {
    cols[static_cast<size_t>(c)] = data.col_data(c);
  }
  return cols;
}

// Column means of a dataset.
std::vector<double> ColumnMeans(const Dataset& data) {
  std::vector<double> mean(static_cast<size_t>(data.cols()), 0.0);
  for (int64_t c = 0; c < data.cols(); ++c) {
    mean[static_cast<size_t>(c)] =
        kernels::Sum(data.col_data(c), data.rows()) /
        static_cast<double>(data.rows());
  }
  return mean;
}

// Row-major d x d covariance of mean-centered data — a shifted SYRK.
std::vector<double> Covariance(const Dataset& data,
                               const std::vector<double>& mean) {
  const int64_t d = data.cols();
  const std::vector<const double*> cols = ColumnPointers(data);
  std::vector<double> cov(static_cast<size_t>(d * d), 0.0);
  kernels::GramColumns(cols.data(), data.rows(), d, mean.data(),
                       /*weight=*/nullptr, cov.data());
  const double scale = 1.0 / static_cast<double>(data.rows() - 1);
  for (double& v : cov) {
    v *= scale;
  }
  return cov;
}

// Fixes the sign of each component so that its largest-magnitude coordinate
// is positive; removes the eigenvector sign ambiguity so both
// implementations produce identical projections (paper §III-C2 requires
// equivalent tasks to produce identical results on the same input).
void CanonicalizeSigns(std::vector<double>& components, int64_t k, int64_t d) {
  for (int64_t i = 0; i < k; ++i) {
    double* comp = components.data() + i * d;
    int64_t arg = 0;
    for (int64_t j = 1; j < d; ++j) {
      if (std::fabs(comp[j]) > std::fabs(comp[arg])) {
        arg = j;
      }
    }
    if (comp[arg] < 0.0) {
      for (int64_t j = 0; j < d; ++j) {
        comp[j] = -comp[j];
      }
    }
  }
}

OpStatePtr MakePcaState(std::vector<double> mean,
                        std::vector<double> components, int64_t k,
                        int64_t d) {
  auto state = std::make_shared<VectorState>("PCA");
  state->vectors["mean"] = std::move(mean);
  state->vectors["components"] = std::move(components);  // row-major k x d
  state->scalars["k"] = static_cast<double>(k);
  state->scalars["d"] = static_cast<double>(d);
  return state;
}

class PcaBase : public Estimator {
 public:
  explicit PcaBase(std::string framework)
      : Estimator("PCA", std::move(framework), /*transforms=*/true,
                  /*predicts=*/false) {}

  double CostHint(MlTask task, int64_t rows, int64_t cols,
                  const Config& config) const override {
    const double d = static_cast<double>(cols);
    if (task == MlTask::kFit) {
      // Covariance accumulation dominates.
      return 2e-9 * static_cast<double>(rows) * d * d + 5e-8 * d * d * d;
    }
    const double k = static_cast<double>(config.GetInt("n_components", 2));
    return 2e-9 * static_cast<double>(rows) * d * k;
  }

 protected:
  Result<Dataset> DoTransform(const OpState& state,
                              const Dataset& data) const override {
    const auto* vs = dynamic_cast<const VectorState*>(&state);
    if (vs == nullptr) {
      return Status::InvalidArgument("PCA.transform: incompatible op-state");
    }
    const int64_t k = static_cast<int64_t>(vs->scalar("k"));
    const int64_t d = static_cast<int64_t>(vs->scalar("d"));
    if (d != data.cols()) {
      return Status::InvalidArgument(
          "PCA.transform: fitted on different column count");
    }
    const std::vector<double>& mean = vs->vec("mean");
    const std::vector<double>& comp = vs->vec("components");
    std::vector<std::string> names;
    names.reserve(static_cast<size_t>(k));
    for (int64_t i = 0; i < k; ++i) {
      names.push_back("pc" + std::to_string(i));
    }
    Dataset out = Dataset::WithColumns(data.rows(), std::move(names));
    const std::vector<const double*> cols = ColumnPointers(data);
    for (int64_t i = 0; i < k; ++i) {
      kernels::GemvColumns(cols.data(), data.rows(), d, mean.data(),
                           comp.data() + i * d, /*bias=*/0.0, out.col_data(i));
    }
    if (data.has_target()) {
      out.set_target(data.target());
    }
    return out;
  }
};

// skl: exact covariance eigen-decomposition (Jacobi sweeps).
class SklPca final : public PcaBase {
 public:
  SklPca() : PcaBase("skl") {}

 protected:
  Result<OpStatePtr> DoFit(const Dataset& data,
                           const Config& config) const override {
    const int64_t d = data.cols();
    const int64_t k =
        std::min<int64_t>(config.GetInt("n_components", 2), d);
    if (data.rows() < 2) {
      return Status::InvalidArgument("PCA.fit: needs at least two rows");
    }
    std::vector<double> mean = ColumnMeans(data);
    std::vector<double> cov = Covariance(data, mean);
    HYPPO_ASSIGN_OR_RETURN(EigenDecomposition eig,
                           JacobiEigenSymmetric(std::move(cov), d));
    std::vector<double> components(static_cast<size_t>(k * d));
    for (int64_t i = 0; i < k; ++i) {
      for (int64_t j = 0; j < d; ++j) {
        components[static_cast<size_t>(i * d + j)] =
            eig.eigenvectors[static_cast<size_t>(i * d + j)];
      }
    }
    CanonicalizeSigns(components, k, d);
    return MakePcaState(std::move(mean), std::move(components), k, d);
  }
};

// tfl: subspace (orthogonal/power) iteration on the covariance with
// deflation — the torch.pca_lowrank-style iterative approach.
class TflPca final : public PcaBase {
 public:
  TflPca() : PcaBase("tfl") {}

 protected:
  Result<OpStatePtr> DoFit(const Dataset& data,
                           const Config& config) const override {
    const int64_t d = data.cols();
    const int64_t k =
        std::min<int64_t>(config.GetInt("n_components", 2), d);
    if (data.rows() < 2) {
      return Status::InvalidArgument("PCA.fit: needs at least two rows");
    }
    std::vector<double> mean = ColumnMeans(data);
    std::vector<double> cov = Covariance(data, mean);
    std::vector<double> components(static_cast<size_t>(k * d), 0.0);
    Rng rng(7);
    std::vector<double> v(static_cast<size_t>(d));
    std::vector<double> av;
    for (int64_t i = 0; i < k; ++i) {
      for (double& x : v) {
        x = rng.Gaussian();
      }
      double eigenvalue = 0.0;
      for (int iter = 0; iter < 1000; ++iter) {
        // Deflate against previously extracted components.
        for (int64_t p = 0; p < i; ++p) {
          const double* prev = components.data() + p * d;
          const double proj = Dot(v.data(), prev, d);
          for (int64_t j = 0; j < d; ++j) {
            v[static_cast<size_t>(j)] -= proj * prev[j];
          }
        }
        MatVec(cov, d, d, v, av);
        const double norm = Norm2(av.data(), d);
        if (norm < 1e-30) {
          break;
        }
        double diff = 0.0;
        for (int64_t j = 0; j < d; ++j) {
          const double next = av[static_cast<size_t>(j)] / norm;
          diff += std::fabs(next - v[static_cast<size_t>(j)]);
          v[static_cast<size_t>(j)] = next;
        }
        eigenvalue = norm;
        if (diff < 1e-12 && iter > 2) {
          break;
        }
      }
      (void)eigenvalue;
      for (int64_t j = 0; j < d; ++j) {
        components[static_cast<size_t>(i * d + j)] =
            v[static_cast<size_t>(j)];
      }
    }
    CanonicalizeSigns(components, k, d);
    return MakePcaState(std::move(mean), std::move(components), k, d);
  }
};

}  // namespace

Status RegisterPcaOperators(OperatorRegistry& registry) {
  HYPPO_RETURN_NOT_OK(registry.Register(std::make_unique<SklPca>()));
  HYPPO_RETURN_NOT_OK(registry.Register(std::make_unique<TflPca>()));
  return Status::OK();
}

}  // namespace hyppo::ml
