#ifndef HYPPO_ML_OPS_TREE_BUILDER_H_
#define HYPPO_ML_OPS_TREE_BUILDER_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "ml/dataset.h"
#include "ml/op_state.h"

namespace hyppo::ml {

/// \brief Options controlling decision tree induction.
struct TreeOptions {
  int32_t max_depth = 6;
  int64_t min_samples_leaf = 5;
  int64_t min_samples_split = 10;
  /// Number of features considered per split; 0 means all. Forests set
  /// this for feature subsampling.
  int64_t max_features = 0;
  /// Split finding strategy: exact sorts feature values per node
  /// (scikit-learn-style); histogram bins features globally and scans bins
  /// (LightGBM-style). The two strategies yield statistically equivalent
  /// but not bitwise-identical trees.
  bool histogram = false;
  int32_t max_bins = 64;
  /// Classification uses gini impurity over binary labels; regression uses
  /// variance reduction. Leaves predict the mean target (for classifiers,
  /// the positive-class fraction).
  bool classifier = false;
  /// Seed for feature subsampling.
  uint64_t seed = 1;
};

/// \brief Builds one decision tree on `rows` (indices into `data`) against
/// `targets` (size data.rows(); typically data.target() or residuals).
Result<FlatTree> BuildTree(const Dataset& data,
                           const std::vector<double>& targets,
                           const std::vector<int64_t>& rows,
                           const TreeOptions& options);

/// Predicts with one tree for all rows of `data`, adding
/// `weight * prediction` into `out` (size data.rows()).
void AccumulateTreePredictions(const FlatTree& tree, const Dataset& data,
                               double weight, std::vector<double>& out);

}  // namespace hyppo::ml

#endif  // HYPPO_ML_OPS_TREE_BUILDER_H_
