#include <memory>
#include <numeric>

#include "ml/kernels/kernels.h"
#include "ml/operator.h"
#include "ml/ops/ops.h"
#include "ml/ops/tree_builder.h"

namespace hyppo::ml {

namespace {

// GradientBoostingRegressor: stage-wise least-squares boosting.
// skl grows exact trees; lgb grows histogram trees (the LightGBM the
// paper's setup uses). F0 = mean(y); each stage fits a shallow tree to the
// residuals and is added with the learning rate.
class GradientBoostingOp final : public Estimator {
 public:
  GradientBoostingOp(std::string framework, bool histogram)
      : Estimator("GradientBoostingRegressor", std::move(framework),
                  /*transforms=*/false, /*predicts=*/true),
        histogram_(histogram) {}

  double CostHint(MlTask task, int64_t rows, int64_t cols,
                  const Config& config) const override {
    const double n = static_cast<double>(rows);
    const double d = static_cast<double>(cols);
    const double stages =
        static_cast<double>(config.GetInt("n_estimators", 30));
    const double depth = static_cast<double>(config.GetInt("max_depth", 3));
    if (task == MlTask::kFit) {
      const double per_level = histogram_ ? 6e-9 * n * d : 2.5e-8 * n * d;
      return stages * (per_level * depth + 3e-9 * n * depth);
    }
    return 3e-9 * n * depth * stages;
  }

 protected:
  Result<OpStatePtr> DoFit(const Dataset& data,
                           const Config& config) const override {
    if (!data.has_target()) {
      return Status::InvalidArgument(impl_name() +
                                     ".fit: dataset has no target");
    }
    const int64_t n_estimators = config.GetInt("n_estimators", 30);
    const double learning_rate = config.GetDouble("learning_rate", 0.1);
    TreeOptions options;
    options.max_depth = static_cast<int32_t>(config.GetInt("max_depth", 3));
    options.min_samples_leaf = config.GetInt("min_samples_leaf", 5);
    options.min_samples_split = config.GetInt("min_samples_split", 10);
    options.histogram = histogram_;
    options.max_bins = static_cast<int32_t>(config.GetInt("max_bins", 64));
    options.seed = static_cast<uint64_t>(config.GetInt("seed", 5));

    auto state = std::make_shared<ForestState>(logical_op());
    const double mean = kernels::Sum(data.target().data(), data.rows()) /
                        static_cast<double>(data.rows());
    state->base_prediction = mean;

    std::vector<double> residual = data.target();
    for (double& r : residual) {
      r -= mean;
    }
    std::vector<int64_t> rows(static_cast<size_t>(data.rows()));
    std::iota(rows.begin(), rows.end(), 0);
    std::vector<double> stage_pred(static_cast<size_t>(data.rows()));
    for (int64_t t = 0; t < n_estimators; ++t) {
      HYPPO_ASSIGN_OR_RETURN(FlatTree tree,
                             BuildTree(data, residual, rows, options));
      std::fill(stage_pred.begin(), stage_pred.end(), 0.0);
      AccumulateTreePredictions(tree, data, 1.0, stage_pred);
      kernels::Axpy(-learning_rate, stage_pred.data(), residual.data(),
                    static_cast<int64_t>(residual.size()));
      state->trees.push_back(std::move(tree));
      state->tree_weights.push_back(learning_rate);
    }
    return OpStatePtr(std::move(state));
  }

  Result<std::vector<double>> DoPredict(const OpState& state,
                                        const Dataset& data) const override {
    const auto* fs = dynamic_cast<const ForestState*>(&state);
    if (fs == nullptr) {
      return Status::InvalidArgument(impl_name() +
                                     ".predict: incompatible op-state");
    }
    std::vector<double> preds(static_cast<size_t>(data.rows()),
                              fs->base_prediction);
    for (size_t t = 0; t < fs->trees.size(); ++t) {
      AccumulateTreePredictions(fs->trees[t], data, fs->tree_weights[t],
                                preds);
    }
    return preds;
  }

 private:
  bool histogram_;
};

}  // namespace

Status RegisterBoostingOperators(OperatorRegistry& registry) {
  HYPPO_RETURN_NOT_OK(registry.Register(
      std::make_unique<GradientBoostingOp>("skl", /*histogram=*/false)));
  HYPPO_RETURN_NOT_OK(registry.Register(
      std::make_unique<GradientBoostingOp>("lgb", /*histogram=*/true)));
  return Status::OK();
}

}  // namespace hyppo::ml
