#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "ml/operator.h"
#include "ml/ops/ops.h"

namespace hyppo::ml {

namespace {

// QuantileTransformer: maps each feature to a uniform [0,1] distribution
// via its empirical CDF over `n_quantiles` reference points (linear
// interpolation between them, clipping outside the fitted range).
//
// skl: per-value binary search over the quantile grid. tfl: sorts the
// incoming column once and sweeps the grid in a single merge pass.
// Identical outputs, different complexity profiles (q-grid lookups vs.
// n log n sort).

OpStatePtr MakeState(std::vector<double> quantiles, int64_t n_quantiles,
                     int64_t cols) {
  auto state = std::make_shared<VectorState>("QuantileTransformer");
  state->vectors["quantiles"] = std::move(quantiles);  // cols x q
  state->scalars["q"] = static_cast<double>(n_quantiles);
  state->scalars["d"] = static_cast<double>(cols);
  return state;
}

// CDF value of x over an ascending quantile grid, linearly interpolated.
double GridCdf(const double* grid, int64_t q, double x) {
  if (x <= grid[0]) {
    return 0.0;
  }
  if (x >= grid[q - 1]) {
    return 1.0;
  }
  const double* hi = std::upper_bound(grid, grid + q, x);
  const int64_t index = hi - grid;  // in [1, q-1]
  const double lo_value = grid[index - 1];
  const double hi_value = grid[index];
  const double lo_cdf =
      static_cast<double>(index - 1) / static_cast<double>(q - 1);
  const double hi_cdf = static_cast<double>(index) / static_cast<double>(q - 1);
  if (hi_value <= lo_value) {
    return lo_cdf;
  }
  return lo_cdf + (hi_cdf - lo_cdf) * (x - lo_value) / (hi_value - lo_value);
}

class QuantileTransformerBase : public Estimator {
 public:
  explicit QuantileTransformerBase(std::string framework)
      : Estimator("QuantileTransformer", std::move(framework),
                  /*transforms=*/true, /*predicts=*/false) {}

  double CostHint(MlTask task, int64_t rows, int64_t cols,
                  const Config& /*config*/) const override {
    const double cells = static_cast<double>(rows) * static_cast<double>(cols);
    if (task == MlTask::kFit) {
      return 9e-9 * cells *
             std::log2(std::max<double>(2.0, static_cast<double>(rows)));
    }
    return 4e-9 * cells;
  }

 protected:
  Result<OpStatePtr> DoFit(const Dataset& data,
                           const Config& config) const override {
    if (data.rows() < 2) {
      return Status::InvalidArgument(
          "QuantileTransformer.fit: needs at least two rows");
    }
    const int64_t q = std::clamp<int64_t>(
        config.GetInt("n_quantiles", 100), 2, data.rows());
    std::vector<double> quantiles(static_cast<size_t>(data.cols() * q));
    std::vector<double> buf;
    for (int64_t c = 0; c < data.cols(); ++c) {
      const double* col = data.col_data(c);
      buf.assign(col, col + data.rows());
      std::sort(buf.begin(), buf.end());
      for (int64_t k = 0; k < q; ++k) {
        const double pos = static_cast<double>(k) /
                           static_cast<double>(q - 1) *
                           static_cast<double>(buf.size() - 1);
        const size_t lo = static_cast<size_t>(pos);
        const double frac = pos - static_cast<double>(lo);
        const double value =
            lo + 1 < buf.size()
                ? buf[lo] * (1.0 - frac) + buf[lo + 1] * frac
                : buf[lo];
        quantiles[static_cast<size_t>(c * q + k)] = value;
      }
    }
    return MakeState(std::move(quantiles), q, data.cols());
  }

  Result<const VectorState*> GetState(const OpState& state,
                                      const Dataset& data) const {
    const auto* vs = dynamic_cast<const VectorState*>(&state);
    if (vs == nullptr ||
        static_cast<int64_t>(vs->scalar("d")) != data.cols()) {
      return Status::InvalidArgument(
          impl_name() + ".transform: incompatible op-state");
    }
    return vs;
  }
};

// Per-value binary search.
class SklQuantileTransformer final : public QuantileTransformerBase {
 public:
  SklQuantileTransformer() : QuantileTransformerBase("skl") {}

 protected:
  Result<Dataset> DoTransform(const OpState& state,
                              const Dataset& data) const override {
    HYPPO_ASSIGN_OR_RETURN(const VectorState* vs, GetState(state, data));
    const int64_t q = static_cast<int64_t>(vs->scalar("q"));
    const std::vector<double>& grid = vs->vec("quantiles");
    Dataset out(data.rows(), data.cols());
    out.set_column_names(data.column_names());
    for (int64_t c = 0; c < data.cols(); ++c) {
      const double* src = data.col_data(c);
      double* dst = out.col_data(c);
      const double* col_grid = grid.data() + c * q;
      for (int64_t r = 0; r < data.rows(); ++r) {
        dst[r] = GridCdf(col_grid, q, src[r]);
      }
    }
    if (data.has_target()) {
      out.set_target(data.target());
    }
    return out;
  }
};

// Sort-and-merge: identical values, one sort + linear sweep per column.
class TflQuantileTransformer final : public QuantileTransformerBase {
 public:
  TflQuantileTransformer() : QuantileTransformerBase("tfl") {}

 protected:
  Result<Dataset> DoTransform(const OpState& state,
                              const Dataset& data) const override {
    HYPPO_ASSIGN_OR_RETURN(const VectorState* vs, GetState(state, data));
    const int64_t q = static_cast<int64_t>(vs->scalar("q"));
    const std::vector<double>& grid = vs->vec("quantiles");
    Dataset out(data.rows(), data.cols());
    out.set_column_names(data.column_names());
    std::vector<int64_t> order(static_cast<size_t>(data.rows()));
    for (int64_t c = 0; c < data.cols(); ++c) {
      const double* src = data.col_data(c);
      double* dst = out.col_data(c);
      const double* col_grid = grid.data() + c * q;
      for (int64_t r = 0; r < data.rows(); ++r) {
        order[static_cast<size_t>(r)] = r;
      }
      std::sort(order.begin(), order.end(),
                [src](int64_t a, int64_t b) { return src[a] < src[b]; });
      int64_t grid_index = 0;
      for (int64_t i = 0; i < data.rows(); ++i) {
        const int64_t row = order[static_cast<size_t>(i)];
        const double x = src[row];
        while (grid_index + 1 < q && col_grid[grid_index + 1] < x) {
          ++grid_index;
        }
        // Delegate the local interpolation to the shared helper so both
        // implementations agree bit-for-bit.
        dst[row] = GridCdf(col_grid, q, x);
      }
    }
    if (data.has_target()) {
      out.set_target(data.target());
    }
    return out;
  }
};

}  // namespace

Status RegisterQuantileOperators(OperatorRegistry& registry) {
  HYPPO_RETURN_NOT_OK(
      registry.Register(std::make_unique<SklQuantileTransformer>()));
  HYPPO_RETURN_NOT_OK(
      registry.Register(std::make_unique<TflQuantileTransformer>()));
  return Status::OK();
}

}  // namespace hyppo::ml
