#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "ml/operator.h"
#include "ml/ops/ops.h"

namespace hyppo::ml {

namespace {

// Missing values are encoded as NaN, as in the two Kaggle use cases.
bool IsMissing(double v) { return std::isnan(v); }

Dataset FillMissing(const Dataset& data, const std::vector<double>& fill) {
  Dataset out(data.rows(), data.cols());
  out.set_column_names(data.column_names());
  for (int64_t c = 0; c < data.cols(); ++c) {
    const double* src = data.col_data(c);
    double* dst = out.col_data(c);
    const double value = fill[static_cast<size_t>(c)];
    for (int64_t r = 0; r < data.rows(); ++r) {
      dst[r] = IsMissing(src[r]) ? value : src[r];
    }
  }
  if (data.has_target()) {
    out.set_target(data.target());
  }
  return out;
}

class ImputerBase : public Estimator {
 public:
  ImputerBase(std::string framework)
      : Estimator("SimpleImputer", std::move(framework), /*transforms=*/true,
                  /*predicts=*/false) {}

  double CostHint(MlTask task, int64_t rows, int64_t cols,
                  const Config& config) const override {
    const double cells = static_cast<double>(rows) * static_cast<double>(cols);
    if (task == MlTask::kFit &&
        config.GetString("strategy", "mean") == "median") {
      return 7e-9 * cells;
    }
    return (task == MlTask::kFit ? 3e-9 : 1.5e-9) * cells;
  }

 protected:
  Result<Dataset> DoTransform(const OpState& state,
                              const Dataset& data) const override {
    const auto* vs = dynamic_cast<const VectorState*>(&state);
    if (vs == nullptr ||
        static_cast<int64_t>(vs->vec("fill").size()) != data.cols()) {
      return Status::InvalidArgument(
          impl_name() + ".transform: incompatible op-state");
    }
    return FillMissing(data, vs->vec("fill"));
  }

  static OpStatePtr MakeState(std::vector<double> fill) {
    auto state = std::make_shared<VectorState>("SimpleImputer");
    state->vectors["fill"] = std::move(fill);
    return state;
  }
};

// skl: mean strategy via accumulation; median strategy via full sort.
class SklSimpleImputer final : public ImputerBase {
 public:
  SklSimpleImputer() : ImputerBase("skl") {}

 protected:
  Result<OpStatePtr> DoFit(const Dataset& data,
                           const Config& config) const override {
    const std::string strategy = config.GetString("strategy", "mean");
    if (strategy != "mean" && strategy != "median") {
      return Status::InvalidArgument("SimpleImputer: unknown strategy '" +
                                     strategy + "'");
    }
    std::vector<double> fill(static_cast<size_t>(data.cols()), 0.0);
    std::vector<double> buf;
    for (int64_t c = 0; c < data.cols(); ++c) {
      const double* col = data.col_data(c);
      if (strategy == "mean") {
        double sum = 0.0;
        int64_t count = 0;
        for (int64_t r = 0; r < data.rows(); ++r) {
          if (!IsMissing(col[r])) {
            sum += col[r];
            ++count;
          }
        }
        fill[static_cast<size_t>(c)] =
            count > 0 ? sum / static_cast<double>(count) : 0.0;
      } else {
        buf.clear();
        for (int64_t r = 0; r < data.rows(); ++r) {
          if (!IsMissing(col[r])) {
            buf.push_back(col[r]);
          }
        }
        if (buf.empty()) {
          fill[static_cast<size_t>(c)] = 0.0;
          continue;
        }
        std::sort(buf.begin(), buf.end());
        const size_t n = buf.size();
        fill[static_cast<size_t>(c)] =
            (n % 2 == 1) ? buf[n / 2] : 0.5 * (buf[n / 2 - 1] + buf[n / 2]);
      }
    }
    return MakeState(std::move(fill));
  }
};

// tfl: mean via Kahan-compensated accumulation; median via nth_element.
class TflSimpleImputer final : public ImputerBase {
 public:
  TflSimpleImputer() : ImputerBase("tfl") {}

  double CostHint(MlTask task, int64_t rows, int64_t cols,
                  const Config& config) const override {
    const double cells = static_cast<double>(rows) * static_cast<double>(cols);
    if (task == MlTask::kFit &&
        config.GetString("strategy", "mean") == "median") {
      return 5e-9 * cells;
    }
    return (task == MlTask::kFit ? 3.5e-9 : 1.5e-9) * cells;
  }

 protected:
  Result<OpStatePtr> DoFit(const Dataset& data,
                           const Config& config) const override {
    const std::string strategy = config.GetString("strategy", "mean");
    if (strategy != "mean" && strategy != "median") {
      return Status::InvalidArgument("SimpleImputer: unknown strategy '" +
                                     strategy + "'");
    }
    std::vector<double> fill(static_cast<size_t>(data.cols()), 0.0);
    std::vector<double> buf;
    for (int64_t c = 0; c < data.cols(); ++c) {
      const double* col = data.col_data(c);
      if (strategy == "mean") {
        // Kahan summation: numerically equal (to ulps) but a different
        // algorithm with a different constant factor.
        double sum = 0.0;
        double comp = 0.0;
        int64_t count = 0;
        for (int64_t r = 0; r < data.rows(); ++r) {
          if (IsMissing(col[r])) {
            continue;
          }
          const double y = col[r] - comp;
          const double t = sum + y;
          comp = (t - sum) - y;
          sum = t;
          ++count;
        }
        fill[static_cast<size_t>(c)] =
            count > 0 ? sum / static_cast<double>(count) : 0.0;
      } else {
        buf.clear();
        for (int64_t r = 0; r < data.rows(); ++r) {
          if (!IsMissing(col[r])) {
            buf.push_back(col[r]);
          }
        }
        if (buf.empty()) {
          fill[static_cast<size_t>(c)] = 0.0;
          continue;
        }
        const size_t n = buf.size();
        auto mid = buf.begin() + static_cast<int64_t>(n / 2);
        std::nth_element(buf.begin(), mid, buf.end());
        if (n % 2 == 1) {
          fill[static_cast<size_t>(c)] = *mid;
        } else {
          const double hi = *mid;
          const double lo = *std::max_element(buf.begin(), mid);
          fill[static_cast<size_t>(c)] = 0.5 * (lo + hi);
        }
      }
    }
    return MakeState(std::move(fill));
  }
};

}  // namespace

Status RegisterImputerOperators(OperatorRegistry& registry) {
  HYPPO_RETURN_NOT_OK(registry.Register(std::make_unique<SklSimpleImputer>()));
  HYPPO_RETURN_NOT_OK(registry.Register(std::make_unique<TflSimpleImputer>()));
  return Status::OK();
}

}  // namespace hyppo::ml
