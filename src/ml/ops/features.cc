#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "ml/kernels/kernels.h"
#include "ml/operator.h"
#include "ml/ops/ops.h"

namespace hyppo::ml {

namespace {

// ---------------------------------------------------------------------------
// PolynomialFeatures (degree 2, no bias): output columns are the original
// features followed by all products x_i * x_j, i <= j.

std::vector<std::string> PolynomialNames(
    const std::vector<std::string>& names) {
  std::vector<std::string> out = names;
  for (size_t i = 0; i < names.size(); ++i) {
    for (size_t j = i; j < names.size(); ++j) {
      out.push_back(names[i] + "*" + names[j]);
    }
  }
  return out;
}

class PolynomialFeaturesBase : public Estimator {
 public:
  explicit PolynomialFeaturesBase(std::string framework)
      : Estimator("PolynomialFeatures", std::move(framework),
                  /*transforms=*/true, /*predicts=*/false) {}

  double CostHint(MlTask task, int64_t rows, int64_t cols,
                  const Config& /*config*/) const override {
    if (task == MlTask::kTransform) {
      return 2e-9 * static_cast<double>(rows) * static_cast<double>(cols) *
             static_cast<double>(cols);
    }
    return 1e-9 * static_cast<double>(cols);
  }

 protected:
  Result<OpStatePtr> DoFit(const Dataset& data,
                           const Config& config) const override {
    const int64_t degree = config.GetInt("degree", 2);
    if (degree != 2) {
      return Status::NotImplemented(
          "PolynomialFeatures supports degree=2 only");
    }
    auto state = std::make_shared<VectorState>("PolynomialFeatures");
    state->scalars["input_cols"] = static_cast<double>(data.cols());
    return OpStatePtr(std::move(state));
  }

  Status CheckState(const OpState& state, const Dataset& data) const {
    const auto* vs = dynamic_cast<const VectorState*>(&state);
    if (vs == nullptr ||
        static_cast<int64_t>(vs->scalar("input_cols")) != data.cols()) {
      return Status::InvalidArgument(
          impl_name() + ".transform: incompatible op-state");
    }
    return Status::OK();
  }
};

// skl: pairwise products column pair by column pair.
class SklPolynomialFeatures final : public PolynomialFeaturesBase {
 public:
  SklPolynomialFeatures() : PolynomialFeaturesBase("skl") {}

 protected:
  Result<Dataset> DoTransform(const OpState& state,
                              const Dataset& data) const override {
    HYPPO_RETURN_NOT_OK(CheckState(state, data));
    const int64_t c_in = data.cols();
    const int64_t c_out = c_in + c_in * (c_in + 1) / 2;
    Dataset out(data.rows(), c_out);
    out.set_column_names(PolynomialNames(data.column_names()));
    for (int64_t c = 0; c < c_in; ++c) {
      std::copy(data.col_data(c), data.col_data(c) + data.rows(),
                out.col_data(c));
    }
    int64_t k = c_in;
    for (int64_t i = 0; i < c_in; ++i) {
      const double* a = data.col_data(i);
      for (int64_t j = i; j < c_in; ++j) {
        kernels::Multiply(a, data.col_data(j), out.col_data(k++),
                          data.rows());
      }
    }
    if (data.has_target()) {
      out.set_target(data.target());
    }
    return out;
  }
};

// tfl: row-blocked evaluation (better cache behaviour on wide outputs);
// identical values.
class TflPolynomialFeatures final : public PolynomialFeaturesBase {
 public:
  TflPolynomialFeatures() : PolynomialFeaturesBase("tfl") {}

 protected:
  Result<Dataset> DoTransform(const OpState& state,
                              const Dataset& data) const override {
    HYPPO_RETURN_NOT_OK(CheckState(state, data));
    const int64_t c_in = data.cols();
    const int64_t c_out = c_in + c_in * (c_in + 1) / 2;
    Dataset out(data.rows(), c_out);
    out.set_column_names(PolynomialNames(data.column_names()));
    constexpr int64_t kBlock = 256;
    std::vector<double> row(static_cast<size_t>(c_in));
    for (int64_t r0 = 0; r0 < data.rows(); r0 += kBlock) {
      const int64_t r1 = std::min(data.rows(), r0 + kBlock);
      for (int64_t r = r0; r < r1; ++r) {
        data.CopyRow(r, row.data());
        for (int64_t c = 0; c < c_in; ++c) {
          out.at(r, c) = row[static_cast<size_t>(c)];
        }
        int64_t k = c_in;
        for (int64_t i = 0; i < c_in; ++i) {
          for (int64_t j = i; j < c_in; ++j) {
            out.at(r, k++) = row[static_cast<size_t>(i)] *
                             row[static_cast<size_t>(j)];
          }
        }
      }
    }
    if (data.has_target()) {
      out.set_target(data.target());
    }
    return out;
  }
};

// ---------------------------------------------------------------------------
// VarianceThreshold: keeps columns whose variance exceeds `threshold`.

class VarianceThresholdBase : public Estimator {
 public:
  explicit VarianceThresholdBase(std::string framework)
      : Estimator("VarianceThreshold", std::move(framework),
                  /*transforms=*/true, /*predicts=*/false) {}

 protected:
  Result<Dataset> DoTransform(const OpState& state,
                              const Dataset& data) const override {
    const auto* vs = dynamic_cast<const VectorState*>(&state);
    if (vs == nullptr) {
      return Status::InvalidArgument(
          impl_name() + ".transform: incompatible op-state");
    }
    const std::vector<double>& kept = vs->vec("kept");
    std::vector<int64_t> cols;
    cols.reserve(kept.size());
    for (double c : kept) {
      cols.push_back(static_cast<int64_t>(c));
    }
    return data.SelectCols(cols);
  }

  static OpStatePtr MakeState(std::vector<double> kept) {
    auto state = std::make_shared<VectorState>("VarianceThreshold");
    state->vectors["kept"] = std::move(kept);
    return state;
  }
};

// skl: two-pass variance.
class SklVarianceThreshold final : public VarianceThresholdBase {
 public:
  SklVarianceThreshold() : VarianceThresholdBase("skl") {}

 protected:
  Result<OpStatePtr> DoFit(const Dataset& data,
                           const Config& config) const override {
    const double threshold = config.GetDouble("threshold", 0.0);
    std::vector<double> kept;
    for (int64_t c = 0; c < data.cols(); ++c) {
      const double* col = data.col_data(c);
      const double mu = kernels::Sum(col, data.rows()) /
                        static_cast<double>(data.rows());
      const double sq = kernels::ShiftedSumSq(col, mu, data.rows());
      if (sq / static_cast<double>(data.rows()) > threshold) {
        kept.push_back(static_cast<double>(c));
      }
    }
    if (kept.empty()) {
      return Status::InvalidArgument(
          "VarianceThreshold removed every column");
    }
    return MakeState(std::move(kept));
  }
};

// tfl: E[x^2] - E[x]^2 single pass.
class TflVarianceThreshold final : public VarianceThresholdBase {
 public:
  TflVarianceThreshold() : VarianceThresholdBase("tfl") {}

 protected:
  Result<OpStatePtr> DoFit(const Dataset& data,
                           const Config& config) const override {
    const double threshold = config.GetDouble("threshold", 0.0);
    std::vector<double> kept;
    for (int64_t c = 0; c < data.cols(); ++c) {
      double sum = 0.0;
      double sq = 0.0;
      kernels::SumAndSumSq(data.col_data(c), data.rows(), &sum, &sq);
      const double n = static_cast<double>(data.rows());
      const double variance = sq / n - (sum / n) * (sum / n);
      if (variance > threshold) {
        kept.push_back(static_cast<double>(c));
      }
    }
    if (kept.empty()) {
      return Status::InvalidArgument(
          "VarianceThreshold removed every column");
    }
    return MakeState(std::move(kept));
  }
};

// ---------------------------------------------------------------------------
// TaxiFeatures: TAXI-specific feature engineering (haversine distance,
// bearing, Manhattan distance from pickup/dropoff coordinates). Expects
// column names pickup_lat, pickup_lon, dropoff_lat, dropoff_lon; appends
// three engineered columns. Single implementation (use-case specific).

class SklTaxiFeatures final : public Estimator {
 public:
  SklTaxiFeatures()
      : Estimator("TaxiFeatures", "skl", /*transforms=*/true,
                  /*predicts=*/false) {}

 protected:
  Result<OpStatePtr> DoFit(const Dataset& data,
                           const Config& /*config*/) const override {
    auto state = std::make_shared<VectorState>("TaxiFeatures");
    state->scalars["input_cols"] = static_cast<double>(data.cols());
    return OpStatePtr(std::move(state));
  }

  Result<Dataset> DoTransform(const OpState& /*state*/,
                              const Dataset& data) const override {
    int64_t idx[4] = {-1, -1, -1, -1};
    static constexpr const char* kNames[4] = {"pickup_lat", "pickup_lon",
                                              "dropoff_lat", "dropoff_lon"};
    for (int64_t c = 0; c < data.cols(); ++c) {
      for (int k = 0; k < 4; ++k) {
        if (data.column_names()[static_cast<size_t>(c)] == kNames[k]) {
          idx[k] = c;
        }
      }
    }
    for (int k = 0; k < 4; ++k) {
      if (idx[k] < 0) {
        return Status::InvalidArgument(
            std::string("TaxiFeatures: missing column ") + kNames[k]);
      }
    }
    Dataset out = data;
    std::vector<double> haversine(static_cast<size_t>(data.rows()));
    std::vector<double> manhattan(static_cast<size_t>(data.rows()));
    std::vector<double> bearing(static_cast<size_t>(data.rows()));
    constexpr double kEarthRadiusKm = 6371.0;
    constexpr double kDegToRad = 3.14159265358979323846 / 180.0;
    for (int64_t r = 0; r < data.rows(); ++r) {
      const double lat1 = data.at(r, idx[0]) * kDegToRad;
      const double lon1 = data.at(r, idx[1]) * kDegToRad;
      const double lat2 = data.at(r, idx[2]) * kDegToRad;
      const double lon2 = data.at(r, idx[3]) * kDegToRad;
      const double dlat = lat2 - lat1;
      const double dlon = lon2 - lon1;
      const double a = std::sin(dlat / 2) * std::sin(dlat / 2) +
                       std::cos(lat1) * std::cos(lat2) *
                           std::sin(dlon / 2) * std::sin(dlon / 2);
      haversine[static_cast<size_t>(r)] =
          2.0 * kEarthRadiusKm * std::asin(std::sqrt(std::min(1.0, a)));
      manhattan[static_cast<size_t>(r)] =
          std::fabs(dlat) * kEarthRadiusKm + std::fabs(dlon) * kEarthRadiusKm;
      bearing[static_cast<size_t>(r)] =
          std::atan2(std::sin(dlon) * std::cos(lat2),
                     std::cos(lat1) * std::sin(lat2) -
                         std::sin(lat1) * std::cos(lat2) * std::cos(dlon));
    }
    HYPPO_RETURN_NOT_OK(out.AddColumn("haversine_km", haversine));
    HYPPO_RETURN_NOT_OK(out.AddColumn("manhattan_km", manhattan));
    HYPPO_RETURN_NOT_OK(out.AddColumn("bearing", bearing));
    return out;
  }
};

// ---------------------------------------------------------------------------
// LogTarget: log1p-transforms the target (the standard TAXI trick of
// predicting log trip duration). Single implementation.

class SklLogTarget final : public Estimator {
 public:
  SklLogTarget()
      : Estimator("LogTarget", "skl", /*transforms=*/true,
                  /*predicts=*/false) {}

 protected:
  Result<OpStatePtr> DoFit(const Dataset& /*data*/,
                           const Config& /*config*/) const override {
    return OpStatePtr(std::make_shared<VectorState>("LogTarget"));
  }

  Result<Dataset> DoTransform(const OpState& /*state*/,
                              const Dataset& data) const override {
    if (!data.has_target()) {
      return Status::InvalidArgument("LogTarget: dataset has no target");
    }
    Dataset out = data;
    std::vector<double> target = data.target();
    for (double& t : target) {
      t = std::log1p(std::max(0.0, t));
    }
    out.set_target(std::move(target));
    return out;
  }
};

// ---------------------------------------------------------------------------
// Binarizer: thresholds features to {0,1}. Single implementation
// (HIGGS-specific preprocessing in our workload).

class SklBinarizer final : public Estimator {
 public:
  SklBinarizer()
      : Estimator("Binarizer", "skl", /*transforms=*/true,
                  /*predicts=*/false) {}

 protected:
  Result<OpStatePtr> DoFit(const Dataset& /*data*/,
                           const Config& config) const override {
    auto state = std::make_shared<VectorState>("Binarizer");
    state->scalars["threshold"] = config.GetDouble("threshold", 0.0);
    return OpStatePtr(std::move(state));
  }

  Result<Dataset> DoTransform(const OpState& state,
                              const Dataset& data) const override {
    const auto* vs = dynamic_cast<const VectorState*>(&state);
    if (vs == nullptr) {
      return Status::InvalidArgument("Binarizer: incompatible op-state");
    }
    const double threshold = vs->scalar("threshold");
    Dataset out(data.rows(), data.cols());
    out.set_column_names(data.column_names());
    for (int64_t c = 0; c < data.cols(); ++c) {
      const double* src = data.col_data(c);
      double* dst = out.col_data(c);
      for (int64_t r = 0; r < data.rows(); ++r) {
        dst[r] = src[r] > threshold ? 1.0 : 0.0;
      }
    }
    if (data.has_target()) {
      out.set_target(data.target());
    }
    return out;
  }
};

}  // namespace

Status RegisterFeatureOperators(OperatorRegistry& registry) {
  HYPPO_RETURN_NOT_OK(
      registry.Register(std::make_unique<SklPolynomialFeatures>()));
  HYPPO_RETURN_NOT_OK(
      registry.Register(std::make_unique<TflPolynomialFeatures>()));
  HYPPO_RETURN_NOT_OK(
      registry.Register(std::make_unique<SklVarianceThreshold>()));
  HYPPO_RETURN_NOT_OK(
      registry.Register(std::make_unique<TflVarianceThreshold>()));
  HYPPO_RETURN_NOT_OK(registry.Register(std::make_unique<SklTaxiFeatures>()));
  HYPPO_RETURN_NOT_OK(registry.Register(std::make_unique<SklLogTarget>()));
  HYPPO_RETURN_NOT_OK(registry.Register(std::make_unique<SklBinarizer>()));
  return Status::OK();
}

}  // namespace hyppo::ml
