#ifndef HYPPO_ML_OPS_OPS_H_
#define HYPPO_ML_OPS_OPS_H_

#include "common/status.h"
#include "ml/registry.h"

namespace hyppo::ml {

/// Per-family registration hooks, called by RegisterBuiltinOperators.
Status RegisterSplitOperators(OperatorRegistry& registry);
Status RegisterScalerOperators(OperatorRegistry& registry);
Status RegisterImputerOperators(OperatorRegistry& registry);
Status RegisterFeatureOperators(OperatorRegistry& registry);
Status RegisterPcaOperators(OperatorRegistry& registry);
Status RegisterLinearModelOperators(OperatorRegistry& registry);
Status RegisterSvmOperators(OperatorRegistry& registry);
Status RegisterTreeOperators(OperatorRegistry& registry);
Status RegisterForestOperators(OperatorRegistry& registry);
Status RegisterBoostingOperators(OperatorRegistry& registry);
Status RegisterKMeansOperators(OperatorRegistry& registry);
Status RegisterEnsembleOperators(OperatorRegistry& registry);
Status RegisterEvaluatorOperators(OperatorRegistry& registry);
Status RegisterElasticNetOperators(OperatorRegistry& registry);
Status RegisterQuantileOperators(OperatorRegistry& registry);

}  // namespace hyppo::ml

#endif  // HYPPO_ML_OPS_OPS_H_
