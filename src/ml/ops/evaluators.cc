#include <memory>

#include "ml/metrics.h"
#include "ml/operator.h"
#include "ml/ops/ops.h"

namespace hyppo::ml {

namespace {

// Evaluator: computes a metric over predictions against a dataset's target.
// tail = {predictions, dataset-with-target} -> head = {value}.
// Single implementation, as the paper assigns use-case specific evaluation
// operators a single physical operator. The metric name lives in the
// configuration, so differently-configured evaluations name distinct
// artifacts.
class SklEvaluator final : public PhysicalOperator {
 public:
  SklEvaluator() : PhysicalOperator("Evaluator", "skl") {}

  bool SupportsTask(MlTask task) const override {
    return task == MlTask::kEvaluate;
  }

  Result<TaskOutputs> Execute(MlTask task, const TaskInputs& inputs,
                              const Config& config) const override {
    if (task != MlTask::kEvaluate) {
      return Status::InvalidArgument(impl_name() + " only supports evaluate");
    }
    if (inputs.predictions.size() != 1 || inputs.datasets.size() != 1) {
      return Status::InvalidArgument(
          impl_name() + ".evaluate expects predictions and a dataset");
    }
    const Dataset& data = *inputs.datasets[0];
    if (!data.has_target()) {
      return Status::InvalidArgument(impl_name() +
                                     ".evaluate: dataset has no target");
    }
    const std::string metric = config.GetString("metric", "rmse");
    HYPPO_ASSIGN_OR_RETURN(
        double value,
        EvaluateMetric(metric, *inputs.predictions[0], data.target()));
    TaskOutputs out;
    out.values.push_back(value);
    return out;
  }

  double CostHint(MlTask /*task*/, int64_t rows, int64_t /*cols*/,
                  const Config& /*config*/) const override {
    return 3e-9 * static_cast<double>(rows);
  }
};

}  // namespace

Status RegisterEvaluatorOperators(OperatorRegistry& registry) {
  return registry.Register(std::make_unique<SklEvaluator>());
}

}  // namespace hyppo::ml
