#include <cmath>
#include <memory>

#include "common/rng.h"
#include "ml/operator.h"
#include "ml/ops/ops.h"
#include "ml/ops/tree_builder.h"

namespace hyppo::ml {

namespace {

// RandomForestClassifier / RandomForestRegressor: bagging over decision
// trees with per-tree feature subsampling. skl grows exact trees; lgb grows
// histogram trees. Deterministic given the `seed` config.
class RandomForestOp final : public Estimator {
 public:
  RandomForestOp(std::string logical_op, std::string framework,
                 bool classifier, bool histogram)
      : Estimator(std::move(logical_op), std::move(framework),
                  /*transforms=*/false, /*predicts=*/true),
        classifier_(classifier),
        histogram_(histogram) {}

  double CostHint(MlTask task, int64_t rows, int64_t cols,
                  const Config& config) const override {
    const double n = static_cast<double>(rows);
    const double d = static_cast<double>(cols);
    const double trees =
        static_cast<double>(config.GetInt("n_estimators", 20));
    const double depth =
        static_cast<double>(config.GetInt("max_depth", 8));
    if (task == MlTask::kFit) {
      const double per_level = histogram_ ? 6e-9 * n * d : 2.5e-8 * n * d;
      return trees * per_level * depth * 0.5;  // feature subsampling
    }
    return 3e-9 * n * depth * trees;
  }

 protected:
  Result<OpStatePtr> DoFit(const Dataset& data,
                           const Config& config) const override {
    if (!data.has_target()) {
      return Status::InvalidArgument(impl_name() +
                                     ".fit: dataset has no target");
    }
    const int64_t n_estimators = config.GetInt("n_estimators", 20);
    const uint64_t seed = static_cast<uint64_t>(config.GetInt("seed", 3));
    TreeOptions options;
    options.max_depth = static_cast<int32_t>(config.GetInt("max_depth", 8));
    options.min_samples_leaf = config.GetInt("min_samples_leaf", 3);
    options.min_samples_split = config.GetInt("min_samples_split", 6);
    options.histogram = histogram_;
    options.max_bins = static_cast<int32_t>(config.GetInt("max_bins", 64));
    options.classifier = classifier_;
    const int64_t default_features =
        classifier_
            ? static_cast<int64_t>(
                  std::ceil(std::sqrt(static_cast<double>(data.cols()))))
            : std::max<int64_t>(1, data.cols() / 3);
    options.max_features = config.GetInt("max_features", default_features);
    Rng rng(seed);
    auto state = std::make_shared<ForestState>(logical_op());
    state->is_classifier = classifier_;
    const double weight = 1.0 / static_cast<double>(n_estimators);
    std::vector<int64_t> sample(static_cast<size_t>(data.rows()));
    for (int64_t t = 0; t < n_estimators; ++t) {
      // Bootstrap sample with replacement.
      for (auto& row : sample) {
        row = static_cast<int64_t>(
            rng.NextBelow(static_cast<uint64_t>(data.rows())));
      }
      options.seed = rng.Next();
      HYPPO_ASSIGN_OR_RETURN(
          FlatTree tree, BuildTree(data, data.target(), sample, options));
      state->trees.push_back(std::move(tree));
      state->tree_weights.push_back(weight);
    }
    return OpStatePtr(std::move(state));
  }

  Result<std::vector<double>> DoPredict(const OpState& state,
                                        const Dataset& data) const override {
    const auto* fs = dynamic_cast<const ForestState*>(&state);
    if (fs == nullptr) {
      return Status::InvalidArgument(impl_name() +
                                     ".predict: incompatible op-state");
    }
    std::vector<double> preds(static_cast<size_t>(data.rows()),
                              fs->base_prediction);
    for (size_t t = 0; t < fs->trees.size(); ++t) {
      AccumulateTreePredictions(fs->trees[t], data, fs->tree_weights[t],
                                preds);
    }
    return preds;
  }

 private:
  bool classifier_;
  bool histogram_;
};

}  // namespace

Status RegisterForestOperators(OperatorRegistry& registry) {
  HYPPO_RETURN_NOT_OK(registry.Register(std::make_unique<RandomForestOp>(
      "RandomForestClassifier", "skl", /*classifier=*/true,
      /*histogram=*/false)));
  HYPPO_RETURN_NOT_OK(registry.Register(std::make_unique<RandomForestOp>(
      "RandomForestClassifier", "lgb", /*classifier=*/true,
      /*histogram=*/true)));
  HYPPO_RETURN_NOT_OK(registry.Register(std::make_unique<RandomForestOp>(
      "RandomForestRegressor", "skl", /*classifier=*/false,
      /*histogram=*/false)));
  HYPPO_RETURN_NOT_OK(registry.Register(std::make_unique<RandomForestOp>(
      "RandomForestRegressor", "lgb", /*classifier=*/false,
      /*histogram=*/true)));
  return Status::OK();
}

}  // namespace hyppo::ml
