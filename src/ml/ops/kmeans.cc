#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>

#include "common/rng.h"
#include "ml/kernels/kernels.h"
#include "ml/operator.h"
#include "ml/ops/ops.h"

namespace hyppo::ml {

namespace {

// Column-pointer view of a dataset for the column-layout kernels.
std::vector<const double*> ColumnPointers(const Dataset& data) {
  std::vector<const double*> cols(static_cast<size_t>(data.cols()));
  for (int64_t c = 0; c < data.cols(); ++c) {
    cols[static_cast<size_t>(c)] = data.col_data(c);
  }
  return cols;
}

// KMeans clustering. fit -> centroids (VectorState "centroids", row-major
// k x d); transform -> per-cluster distances as features; predict ->
// assigned cluster index.
//
// skl: full-batch Lloyd iterations. tfl: mini-batch k-means. Both use
// k-means++-style deterministic seeding from the same RNG stream, so they
// converge to nearby (statistically equivalent) centroid sets; exact
// equality is not guaranteed (stochastic-equivalence case of §III-C2).
class KMeansBase : public Estimator {
 public:
  explicit KMeansBase(std::string framework)
      : Estimator("KMeans", std::move(framework), /*transforms=*/true,
                  /*predicts=*/true) {}

  double CostHint(MlTask task, int64_t rows, int64_t cols,
                  const Config& config) const override {
    const double k = static_cast<double>(config.GetInt("n_clusters", 8));
    const double cells = static_cast<double>(rows) * static_cast<double>(cols);
    if (task == MlTask::kFit) {
      return 2e-9 * cells * k * (framework() == "tfl" ? 3.0 : 15.0);
    }
    return 2e-9 * cells * k;
  }

 protected:
  static Result<const VectorState*> GetState(const OpState& state,
                                             const Dataset& data,
                                             const std::string& who) {
    const auto* vs = dynamic_cast<const VectorState*>(&state);
    if (vs == nullptr) {
      return Status::InvalidArgument(who + ": incompatible op-state");
    }
    const int64_t d = static_cast<int64_t>(vs->scalar("d"));
    if (d != data.cols()) {
      return Status::InvalidArgument(who +
                                     ": fitted on different column count");
    }
    return vs;
  }

  Result<Dataset> DoTransform(const OpState& state,
                              const Dataset& data) const override {
    HYPPO_ASSIGN_OR_RETURN(const VectorState* vs,
                           GetState(state, data, impl_name() + ".transform"));
    const int64_t k = static_cast<int64_t>(vs->scalar("k"));
    const int64_t d = data.cols();
    const std::vector<double>& centroids = vs->vec("centroids");
    std::vector<std::string> names;
    for (int64_t i = 0; i < k; ++i) {
      names.push_back("dist_c" + std::to_string(i));
    }
    Dataset out = Dataset::WithColumns(data.rows(), std::move(names));
    const std::vector<const double*> cols = ColumnPointers(data);
    std::vector<double> sq(static_cast<size_t>(data.rows() * k));
    kernels::PairwiseSquaredDistances(cols.data(), data.rows(), d,
                                      centroids.data(), k, sq.data());
    for (int64_t i = 0; i < k; ++i) {
      double* dst = out.col_data(i);
      for (int64_t r = 0; r < data.rows(); ++r) {
        dst[r] = std::sqrt(sq[static_cast<size_t>(r * k + i)]);
      }
    }
    if (data.has_target()) {
      out.set_target(data.target());
    }
    return out;
  }

  Result<std::vector<double>> DoPredict(const OpState& state,
                                        const Dataset& data) const override {
    HYPPO_ASSIGN_OR_RETURN(const VectorState* vs,
                           GetState(state, data, impl_name() + ".predict"));
    const int64_t k = static_cast<int64_t>(vs->scalar("k"));
    const int64_t d = data.cols();
    const std::vector<double>& centroids = vs->vec("centroids");
    std::vector<double> assignment(static_cast<size_t>(data.rows()), 0.0);
    const std::vector<const double*> cols = ColumnPointers(data);
    std::vector<int64_t> index(static_cast<size_t>(data.rows()), 0);
    kernels::NearestCentroids(cols.data(), data.rows(), d, centroids.data(),
                              k, index.data(), /*sq=*/nullptr);
    for (int64_t r = 0; r < data.rows(); ++r) {
      assignment[static_cast<size_t>(r)] =
          static_cast<double>(index[static_cast<size_t>(r)]);
    }
    return assignment;
  }

  // k-means++ seeding shared by both implementations.
  static std::vector<double> SeedCentroids(const Dataset& data, int64_t k,
                                           Rng& rng) {
    const int64_t d = data.cols();
    std::vector<double> centroids(static_cast<size_t>(k * d), 0.0);
    std::vector<double> row(static_cast<size_t>(d));
    const int64_t first = static_cast<int64_t>(
        rng.NextBelow(static_cast<uint64_t>(data.rows())));
    data.CopyRow(first, row.data());
    std::copy(row.begin(), row.end(), centroids.begin());
    std::vector<double> min_sq(static_cast<size_t>(data.rows()),
                               std::numeric_limits<double>::infinity());
    const std::vector<const double*> cols = ColumnPointers(data);
    std::vector<double> sq(static_cast<size_t>(data.rows()));
    for (int64_t i = 1; i < k; ++i) {
      // Update distances against the last placed centroid.
      const double* last = centroids.data() + (i - 1) * d;
      kernels::PairwiseSquaredDistances(cols.data(), data.rows(), d, last,
                                        /*k=*/1, sq.data());
      double total = 0.0;
      for (int64_t r = 0; r < data.rows(); ++r) {
        min_sq[static_cast<size_t>(r)] =
            std::min(min_sq[static_cast<size_t>(r)], sq[static_cast<size_t>(r)]);
        total += min_sq[static_cast<size_t>(r)];
      }
      double draw = rng.NextDouble() * total;
      int64_t chosen = data.rows() - 1;
      for (int64_t r = 0; r < data.rows(); ++r) {
        draw -= min_sq[static_cast<size_t>(r)];
        if (draw < 0.0) {
          chosen = r;
          break;
        }
      }
      data.CopyRow(chosen, row.data());
      std::copy(row.begin(), row.end(), centroids.begin() + i * d);
    }
    return centroids;
  }

  static OpStatePtr MakeState(std::vector<double> centroids, int64_t k,
                              int64_t d) {
    auto state = std::make_shared<VectorState>("KMeans");
    state->vectors["centroids"] = std::move(centroids);
    state->scalars["k"] = static_cast<double>(k);
    state->scalars["d"] = static_cast<double>(d);
    return state;
  }
};

class SklKMeans final : public KMeansBase {
 public:
  SklKMeans() : KMeansBase("skl") {}

 protected:
  Result<OpStatePtr> DoFit(const Dataset& data,
                           const Config& config) const override {
    const int64_t k =
        std::min<int64_t>(config.GetInt("n_clusters", 8), data.rows());
    const int max_iter = static_cast<int>(config.GetInt("max_iter", 50));
    Rng rng(static_cast<uint64_t>(config.GetInt("seed", 17)));
    const int64_t d = data.cols();
    std::vector<double> centroids = SeedCentroids(data, k, rng);
    const std::vector<const double*> cols = ColumnPointers(data);
    std::vector<int64_t> assign(static_cast<size_t>(data.rows()), 0);
    std::vector<double> sums(static_cast<size_t>(k * d));
    std::vector<int64_t> counts(static_cast<size_t>(k));
    for (int iter = 0; iter < max_iter; ++iter) {
      std::fill(sums.begin(), sums.end(), 0.0);
      std::fill(counts.begin(), counts.end(), 0);
      kernels::NearestCentroids(cols.data(), data.rows(), d, centroids.data(),
                                k, assign.data(), /*sq=*/nullptr);
      for (int64_t r = 0; r < data.rows(); ++r) {
        ++counts[static_cast<size_t>(assign[static_cast<size_t>(r)])];
      }
      // Per (center, dim) the accumulation stays row-ascending — the same
      // order as the previous row-at-a-time loop.
      for (int64_t c = 0; c < d; ++c) {
        const double* col = cols[static_cast<size_t>(c)];
        for (int64_t r = 0; r < data.rows(); ++r) {
          sums[static_cast<size_t>(assign[static_cast<size_t>(r)] * d + c)] +=
              col[r];
        }
      }
      double shift = 0.0;
      for (int64_t i = 0; i < k; ++i) {
        if (counts[static_cast<size_t>(i)] == 0) {
          continue;
        }
        double* centroid = centroids.data() + i * d;
        const double* sum = sums.data() + i * d;
        for (int64_t c = 0; c < d; ++c) {
          const double next =
              sum[c] / static_cast<double>(counts[static_cast<size_t>(i)]);
          shift += std::fabs(next - centroid[c]);
          centroid[c] = next;
        }
      }
      if (shift < 1e-9) {
        break;
      }
    }
    return MakeState(std::move(centroids), k, d);
  }
};

class TflKMeans final : public KMeansBase {
 public:
  TflKMeans() : KMeansBase("tfl") {}

 protected:
  Result<OpStatePtr> DoFit(const Dataset& data,
                           const Config& config) const override {
    const int64_t k =
        std::min<int64_t>(config.GetInt("n_clusters", 8), data.rows());
    const int64_t batch =
        std::min<int64_t>(config.GetInt("batch_size", 256), data.rows());
    const int max_iter = static_cast<int>(config.GetInt("max_iter", 150));
    Rng rng(static_cast<uint64_t>(config.GetInt("seed", 17)));
    const int64_t d = data.cols();
    std::vector<double> centroids = SeedCentroids(data, k, rng);
    std::vector<int64_t> per_center(static_cast<size_t>(k), 0);
    std::vector<double> row(static_cast<size_t>(d));
    for (int iter = 0; iter < max_iter; ++iter) {
      for (int64_t b = 0; b < batch; ++b) {
        const int64_t r = static_cast<int64_t>(
            rng.NextBelow(static_cast<uint64_t>(data.rows())));
        data.CopyRow(r, row.data());
        double best = std::numeric_limits<double>::infinity();
        int64_t best_i = 0;
        for (int64_t i = 0; i < k; ++i) {
          const double* centroid = centroids.data() + i * d;
          double sq = 0.0;
          for (int64_t c = 0; c < d; ++c) {
            const double diff = row[static_cast<size_t>(c)] - centroid[c];
            sq += diff * diff;
          }
          if (sq < best) {
            best = sq;
            best_i = i;
          }
        }
        const double eta =
            1.0 / static_cast<double>(++per_center[static_cast<size_t>(best_i)]);
        double* centroid = centroids.data() + best_i * d;
        for (int64_t c = 0; c < d; ++c) {
          centroid[c] += eta * (row[static_cast<size_t>(c)] - centroid[c]);
        }
      }
    }
    return MakeState(std::move(centroids), k, d);
  }
};

}  // namespace

Status RegisterKMeansOperators(OperatorRegistry& registry) {
  HYPPO_RETURN_NOT_OK(registry.Register(std::make_unique<SklKMeans>()));
  HYPPO_RETURN_NOT_OK(registry.Register(std::make_unique<TflKMeans>()));
  return Status::OK();
}

}  // namespace hyppo::ml
