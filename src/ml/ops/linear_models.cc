#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "ml/kernels/kernels.h"
#include "ml/linalg.h"
#include "ml/operator.h"
#include "ml/ops/ops.h"

namespace hyppo::ml {

namespace {

// Column-pointer view of a dataset for the column-layout kernels.
std::vector<const double*> ColumnPointers(const Dataset& data) {
  std::vector<const double*> cols(static_cast<size_t>(data.cols()));
  for (int64_t c = 0; c < data.cols(); ++c) {
    cols[static_cast<size_t>(c)] = data.col_data(c);
  }
  return cols;
}

// Linear models learn weights over the features plus an intercept, stored
// in a VectorState as "weights" (size d) and scalar "intercept".

OpStatePtr MakeLinearState(const std::string& logical_op,
                           std::vector<double> weights, double intercept) {
  auto state = std::make_shared<VectorState>(logical_op);
  state->vectors["weights"] = std::move(weights);
  state->scalars["intercept"] = intercept;
  return state;
}

Result<std::vector<double>> LinearPredict(const OpState& state,
                                          const Dataset& data,
                                          const std::string& who) {
  const auto* vs = dynamic_cast<const VectorState*>(&state);
  if (vs == nullptr ||
      static_cast<int64_t>(vs->vec("weights").size()) != data.cols()) {
    return Status::InvalidArgument(who + ".predict: incompatible op-state");
  }
  const std::vector<double>& w = vs->vec("weights");
  const double b = vs->scalar("intercept");
  std::vector<double> preds(static_cast<size_t>(data.rows()), b);
  const std::vector<const double*> cols = ColumnPointers(data);
  kernels::GemvColumns(cols.data(), data.rows(), data.cols(),
                       /*shift=*/nullptr, w.data(), b, preds.data());
  return preds;
}

// Augmented Gram matrix G = [X 1]'[X 1] (row-major (d+1)^2) and moment
// vector m = [X 1]'y.
void AugmentedNormalEquations(const Dataset& data, std::vector<double>& gram,
                              std::vector<double>& moment) {
  const int64_t d = data.cols();
  const int64_t n = data.rows();
  const int64_t a = d + 1;
  gram.assign(static_cast<size_t>(a * a), 0.0);
  moment.assign(static_cast<size_t>(a), 0.0);
  const std::vector<const double*> cols = ColumnPointers(data);
  // d x d Gram block via the SYRK kernel, spread into the augmented layout.
  std::vector<double> body(static_cast<size_t>(d * d), 0.0);
  kernels::GramColumns(cols.data(), n, d, /*shift=*/nullptr,
                       /*weight=*/nullptr, body.data());
  for (int64_t i = 0; i < d; ++i) {
    for (int64_t j = 0; j < d; ++j) {
      gram[static_cast<size_t>(i * a + j)] =
          body[static_cast<size_t>(i * d + j)];
    }
  }
  const double* y = data.target().data();
  for (int64_t i = 0; i < d; ++i) {
    const double* ci = cols[static_cast<size_t>(i)];
    const double col_sum = kernels::Sum(ci, n);
    gram[static_cast<size_t>(i * a + d)] = col_sum;
    gram[static_cast<size_t>(d * a + i)] = col_sum;
    moment[static_cast<size_t>(i)] = kernels::Dot(ci, y, n);
  }
  gram[static_cast<size_t>(d * a + d)] = static_cast<double>(n);
  moment[static_cast<size_t>(d)] = kernels::Sum(y, n);
}

// Conjugate gradient for symmetric positive definite systems; the
// "tfl"-flavoured iterative counterpart to the Cholesky solve.
std::vector<double> ConjugateGradient(const std::vector<double>& a, int64_t n,
                                      const std::vector<double>& b,
                                      double ridge, int max_iters,
                                      double tol) {
  std::vector<double> x(static_cast<size_t>(n), 0.0);
  std::vector<double> r = b;
  std::vector<double> p = r;
  std::vector<double> ap(static_cast<size_t>(n));
  double rs_old = Dot(r.data(), r.data(), n);
  for (int it = 0; it < max_iters && rs_old > tol; ++it) {
    // ap = (A + ridge I) p as a GEMV plus a fused axpy.
    kernels::Gemv(a.data(), n, n, p.data(), ap.data());
    kernels::Axpy(ridge, p.data(), ap.data(), n);
    const double denom = Dot(p.data(), ap.data(), n);
    if (std::fabs(denom) < 1e-300) {
      break;
    }
    const double alpha = rs_old / denom;
    kernels::Axpy(alpha, p.data(), x.data(), n);
    kernels::Axpy(-alpha, ap.data(), r.data(), n);
    const double rs_new = Dot(r.data(), r.data(), n);
    const double beta = rs_new / rs_old;
    for (int64_t i = 0; i < n; ++i) {
      p[static_cast<size_t>(i)] =
          r[static_cast<size_t>(i)] + beta * p[static_cast<size_t>(i)];
    }
    rs_old = rs_new;
  }
  return x;
}

Status CheckRegressionInput(const Dataset& data, const std::string& who) {
  if (!data.has_target()) {
    return Status::InvalidArgument(who + ".fit: dataset has no target");
  }
  if (data.rows() < 2) {
    return Status::InvalidArgument(who + ".fit: needs at least two rows");
  }
  return Status::OK();
}

class LinearModelBase : public Estimator {
 public:
  LinearModelBase(std::string logical_op, std::string framework)
      : Estimator(std::move(logical_op), std::move(framework),
                  /*transforms=*/false, /*predicts=*/true) {}

  double CostHint(MlTask task, int64_t rows, int64_t cols,
                  const Config& /*config*/) const override {
    const double n = static_cast<double>(rows);
    const double d = static_cast<double>(cols);
    if (task == MlTask::kFit) {
      return 1.2e-9 * n * d * d + 4e-9 * d * d * d;
    }
    return 1.2e-9 * n * d;
  }

 protected:
  Result<std::vector<double>> DoPredict(const OpState& state,
                                        const Dataset& data) const override {
    return LinearPredict(state, data, impl_name());
  }
};

// ---------------------------------------------------------------------------
// LinearRegression / Ridge: "skl" solves the (ridge-regularized) normal
// equations exactly via Cholesky; "tfl" solves the same system with
// conjugate gradient. Both reach the same optimum, at different costs.

class NormalEquationModel : public LinearModelBase {
 public:
  NormalEquationModel(std::string logical_op, std::string framework,
                      bool exact)
      : LinearModelBase(std::move(logical_op), std::move(framework)),
        exact_(exact) {}

 protected:
  Result<OpStatePtr> DoFit(const Dataset& data,
                           const Config& config) const override {
    HYPPO_RETURN_NOT_OK(CheckRegressionInput(data, impl_name()));
    const double alpha = logical_op() == "Ridge"
                             ? config.GetDouble("alpha", 1.0)
                             : config.GetDouble("alpha", 0.0);
    const int64_t d = data.cols();
    const int64_t a = d + 1;
    std::vector<double> gram;
    std::vector<double> moment;
    AugmentedNormalEquations(data, gram, moment);
    // Ridge penalizes the weights but not the intercept.
    for (int64_t i = 0; i < d; ++i) {
      gram[static_cast<size_t>(i * a + i)] += alpha;
    }
    std::vector<double> solution;
    if (exact_) {
      // Small extra ridge for numerical robustness of plain least squares.
      HYPPO_ASSIGN_OR_RETURN(
          solution, CholeskySolve(std::move(gram), a, moment, 1e-8));
    } else {
      solution = ConjugateGradient(gram, a, moment, 1e-8,
                                   /*max_iters=*/2000, /*tol=*/1e-18);
    }
    std::vector<double> weights(solution.begin(), solution.begin() + d);
    return MakeLinearState(logical_op(), std::move(weights),
                           solution[static_cast<size_t>(d)]);
  }

 private:
  bool exact_;
};

class SklLinearRegression final : public NormalEquationModel {
 public:
  SklLinearRegression()
      : NormalEquationModel("LinearRegression", "skl", /*exact=*/true) {}
};

class TflLinearRegression final : public NormalEquationModel {
 public:
  TflLinearRegression()
      : NormalEquationModel("LinearRegression", "tfl", /*exact=*/false) {}
};

class SklRidge final : public NormalEquationModel {
 public:
  SklRidge() : NormalEquationModel("Ridge", "skl", /*exact=*/true) {}
};

class TflRidge final : public NormalEquationModel {
 public:
  TflRidge() : NormalEquationModel("Ridge", "tfl", /*exact=*/false) {}
};

// ---------------------------------------------------------------------------
// Lasso: L1-regularized least squares.
// skl: cyclic coordinate descent. tfl: FISTA (accelerated proximal
// gradient). Both converge to the same optimum of the convex objective
//   (1/2n)||y - Xw - b||^2 + alpha ||w||_1.

struct CenteredDesign {
  std::vector<double> feature_mean;
  double target_mean = 0.0;
};

CenteredDesign CenterStats(const Dataset& data) {
  CenteredDesign stats;
  stats.feature_mean.assign(static_cast<size_t>(data.cols()), 0.0);
  for (int64_t c = 0; c < data.cols(); ++c) {
    stats.feature_mean[static_cast<size_t>(c)] =
        kernels::Sum(data.col_data(c), data.rows()) /
        static_cast<double>(data.rows());
  }
  stats.target_mean = kernels::Sum(data.target().data(), data.rows()) /
                      static_cast<double>(data.rows());
  return stats;
}

double SoftThreshold(double x, double lambda) {
  if (x > lambda) {
    return x - lambda;
  }
  if (x < -lambda) {
    return x + lambda;
  }
  return 0.0;
}

class SklLasso final : public LinearModelBase {
 public:
  SklLasso() : LinearModelBase("Lasso", "skl") {}

 protected:
  Result<OpStatePtr> DoFit(const Dataset& data,
                           const Config& config) const override {
    HYPPO_RETURN_NOT_OK(CheckRegressionInput(data, impl_name()));
    const double alpha = config.GetDouble("alpha", 0.1);
    const int64_t n = data.rows();
    const int64_t d = data.cols();
    const CenteredDesign stats = CenterStats(data);
    std::vector<double> w(static_cast<size_t>(d), 0.0);
    // residual = y_c - X_c w, maintained incrementally.
    std::vector<double> residual(static_cast<size_t>(n));
    for (int64_t r = 0; r < n; ++r) {
      residual[static_cast<size_t>(r)] =
          data.target()[static_cast<size_t>(r)] - stats.target_mean;
    }
    std::vector<double> col_sq(static_cast<size_t>(d), 0.0);
    for (int64_t c = 0; c < d; ++c) {
      col_sq[static_cast<size_t>(c)] =
          kernels::ShiftedSumSq(data.col_data(c),
                                stats.feature_mean[static_cast<size_t>(c)],
                                n) /
          static_cast<double>(n);
    }
    for (int sweep = 0; sweep < 1000; ++sweep) {
      double max_delta = 0.0;
      for (int64_t c = 0; c < d; ++c) {
        if (col_sq[static_cast<size_t>(c)] < 1e-30) {
          continue;
        }
        const double* col = data.col_data(c);
        const double mu = stats.feature_mean[static_cast<size_t>(c)];
        double rho = kernels::ShiftedDot(col, mu, residual.data(), n) /
                     static_cast<double>(n);
        const double old_w = w[static_cast<size_t>(c)];
        rho += col_sq[static_cast<size_t>(c)] * old_w;
        const double new_w =
            SoftThreshold(rho, alpha) / col_sq[static_cast<size_t>(c)];
        const double delta = new_w - old_w;
        if (delta != 0.0) {
          kernels::ShiftedAxpy(-delta, col, mu, residual.data(), n);
          w[static_cast<size_t>(c)] = new_w;
        }
        max_delta = std::max(max_delta, std::fabs(delta));
      }
      if (max_delta < 1e-10) {
        break;
      }
    }
    double intercept = stats.target_mean;
    for (int64_t c = 0; c < d; ++c) {
      intercept -= w[static_cast<size_t>(c)] *
                   stats.feature_mean[static_cast<size_t>(c)];
    }
    return MakeLinearState(logical_op(), std::move(w), intercept);
  }
};

class TflLasso final : public LinearModelBase {
 public:
  TflLasso() : LinearModelBase("Lasso", "tfl") {}

 protected:
  Result<OpStatePtr> DoFit(const Dataset& data,
                           const Config& config) const override {
    HYPPO_RETURN_NOT_OK(CheckRegressionInput(data, impl_name()));
    const double alpha = config.GetDouble("alpha", 0.1);
    const int64_t n = data.rows();
    const int64_t d = data.cols();
    const CenteredDesign stats = CenterStats(data);
    // Lipschitz constant of the gradient: largest eigenvalue of X_c'X_c/n,
    // upper-bounded by its trace.
    double lipschitz = 0.0;
    for (int64_t c = 0; c < d; ++c) {
      lipschitz +=
          kernels::ShiftedSumSq(data.col_data(c),
                                stats.feature_mean[static_cast<size_t>(c)],
                                n) /
          static_cast<double>(n);
    }
    lipschitz = std::max(lipschitz, 1e-12);
    const double step = 1.0 / lipschitz;
    std::vector<double> w(static_cast<size_t>(d), 0.0);
    std::vector<double> z = w;  // FISTA momentum point
    double t_momentum = 1.0;
    std::vector<double> residual(static_cast<size_t>(n));
    std::vector<double> grad(static_cast<size_t>(d));
    for (int iter = 0; iter < 4000; ++iter) {
      // residual at z.
      for (int64_t r = 0; r < n; ++r) {
        residual[static_cast<size_t>(r)] =
            data.target()[static_cast<size_t>(r)] - stats.target_mean;
      }
      for (int64_t c = 0; c < d; ++c) {
        const double zc = z[static_cast<size_t>(c)];
        if (zc == 0.0) {
          continue;
        }
        kernels::ShiftedAxpy(-zc, data.col_data(c),
                             stats.feature_mean[static_cast<size_t>(c)],
                             residual.data(), n);
      }
      for (int64_t c = 0; c < d; ++c) {
        grad[static_cast<size_t>(c)] =
            -kernels::ShiftedDot(data.col_data(c),
                                 stats.feature_mean[static_cast<size_t>(c)],
                                 residual.data(), n) /
            static_cast<double>(n);
      }
      double max_delta = 0.0;
      const double t_next =
          0.5 * (1.0 + std::sqrt(1.0 + 4.0 * t_momentum * t_momentum));
      for (int64_t c = 0; c < d; ++c) {
        const double proposed = SoftThreshold(
            z[static_cast<size_t>(c)] - step * grad[static_cast<size_t>(c)],
            step * alpha);
        const double old_w = w[static_cast<size_t>(c)];
        z[static_cast<size_t>(c)] =
            proposed + ((t_momentum - 1.0) / t_next) * (proposed - old_w);
        max_delta = std::max(max_delta, std::fabs(proposed - old_w));
        w[static_cast<size_t>(c)] = proposed;
      }
      t_momentum = t_next;
      if (max_delta < 1e-10 && iter > 4) {
        break;
      }
    }
    double intercept = stats.target_mean;
    for (int64_t c = 0; c < d; ++c) {
      intercept -= w[static_cast<size_t>(c)] *
                   stats.feature_mean[static_cast<size_t>(c)];
    }
    return MakeLinearState(logical_op(), std::move(w), intercept);
  }
};

// ---------------------------------------------------------------------------
// LogisticRegression: L2-regularized. skl: Newton (IRLS) with Cholesky
// inner solves; tfl: truncated Newton with conjugate-gradient inner solves.
// Predict returns the positive-class probability.

class LogisticBase : public LinearModelBase {
 public:
  LogisticBase(std::string framework, bool exact_inner)
      : LinearModelBase("LogisticRegression", std::move(framework)),
        exact_inner_(exact_inner) {}

  double CostHint(MlTask task, int64_t rows, int64_t cols,
                  const Config& /*config*/) const override {
    const double n = static_cast<double>(rows);
    const double d = static_cast<double>(cols);
    if (task == MlTask::kFit) {
      return 8.0 * (1.5e-9 * n * d * d + 4e-9 * d * d * d);
    }
    return 1.5e-9 * n * d;
  }

 protected:
  Result<OpStatePtr> DoFit(const Dataset& data,
                           const Config& config) const override {
    HYPPO_RETURN_NOT_OK(CheckRegressionInput(data, impl_name()));
    const double alpha = config.GetDouble("alpha", 1e-3);
    const int64_t n = data.rows();
    const int64_t d = data.cols();
    const int64_t a = d + 1;
    std::vector<double> w(static_cast<size_t>(a), 0.0);  // last = intercept
    const std::vector<const double*> cols = ColumnPointers(data);
    std::vector<double> margins(static_cast<size_t>(n));
    std::vector<double> probs(static_cast<size_t>(n));
    std::vector<double> diff(static_cast<size_t>(n));
    std::vector<double> row_weight(static_cast<size_t>(n));
    std::vector<double> gradient(static_cast<size_t>(a));
    std::vector<double> hessian(static_cast<size_t>(a * a));
    std::vector<double> hess_body(static_cast<size_t>(d * d));
    for (int newton = 0; newton < 50; ++newton) {
      // margins = Xw + b, probs = sigmoid(margins).
      kernels::GemvColumns(cols.data(), n, d, /*shift=*/nullptr, w.data(),
                           /*bias=*/w[static_cast<size_t>(d)], margins.data());
      for (int64_t r = 0; r < n; ++r) {
        probs[static_cast<size_t>(r)] =
            1.0 / (1.0 + std::exp(-margins[static_cast<size_t>(r)]));
        diff[static_cast<size_t>(r)] = probs[static_cast<size_t>(r)] -
                                       data.target()[static_cast<size_t>(r)];
      }
      // gradient = X'(p - y)/n + alpha w (intercept unpenalized).
      std::fill(gradient.begin(), gradient.end(), 0.0);
      for (int64_t c = 0; c < d; ++c) {
        gradient[static_cast<size_t>(c)] =
            kernels::Dot(cols[static_cast<size_t>(c)], diff.data(), n) /
                static_cast<double>(n) +
            alpha * w[static_cast<size_t>(c)];
      }
      gradient[static_cast<size_t>(d)] =
          kernels::Sum(diff.data(), n) / static_cast<double>(n);
      double gnorm = Norm2(gradient.data(), a);
      if (gnorm < 1e-10) {
        break;
      }
      // Hessian = X'RX/n + alpha I with R = diag(p(1-p)): the d x d body is
      // a row-weighted SYRK; the border column is X'r and sum(r).
      for (int64_t r = 0; r < n; ++r) {
        row_weight[static_cast<size_t>(r)] =
            probs[static_cast<size_t>(r)] *
            (1.0 - probs[static_cast<size_t>(r)]);
      }
      kernels::GramColumns(cols.data(), n, d, /*shift=*/nullptr,
                           row_weight.data(), hess_body.data());
      std::fill(hessian.begin(), hessian.end(), 0.0);
      for (int64_t i = 0; i < d; ++i) {
        for (int64_t j = 0; j < d; ++j) {
          hessian[static_cast<size_t>(i * a + j)] =
              hess_body[static_cast<size_t>(i * d + j)];
        }
        const double border = kernels::Dot(cols[static_cast<size_t>(i)],
                                           row_weight.data(), n);
        hessian[static_cast<size_t>(i * a + d)] = border;
        hessian[static_cast<size_t>(d * a + i)] = border;
      }
      hessian[static_cast<size_t>(d * a + d)] =
          kernels::Sum(row_weight.data(), n);
      for (size_t i = 0; i < hessian.size(); ++i) {
        hessian[i] /= static_cast<double>(n);
      }
      for (int64_t i = 0; i < d; ++i) {
        hessian[static_cast<size_t>(i * a + i)] += alpha;
      }
      std::vector<double> step;
      if (exact_inner_) {
        HYPPO_ASSIGN_OR_RETURN(
            step, CholeskySolve(hessian, a, gradient, 1e-9));
      } else {
        step = ConjugateGradient(hessian, a, gradient, 1e-9,
                                 /*max_iters=*/500, /*tol=*/1e-20);
      }
      for (int64_t i = 0; i < a; ++i) {
        w[static_cast<size_t>(i)] -= step[static_cast<size_t>(i)];
      }
    }
    std::vector<double> weights(w.begin(), w.begin() + d);
    return MakeLinearState(logical_op(), std::move(weights),
                           w[static_cast<size_t>(d)]);
  }

  Result<std::vector<double>> DoPredict(const OpState& state,
                                        const Dataset& data) const override {
    HYPPO_ASSIGN_OR_RETURN(std::vector<double> margins,
                           LinearPredict(state, data, impl_name()));
    for (double& m : margins) {
      m = 1.0 / (1.0 + std::exp(-m));
    }
    return margins;
  }

 private:
  bool exact_inner_;
};

class SklLogisticRegression final : public LogisticBase {
 public:
  SklLogisticRegression() : LogisticBase("skl", /*exact_inner=*/true) {}
};

class TflLogisticRegression final : public LogisticBase {
 public:
  TflLogisticRegression() : LogisticBase("tfl", /*exact_inner=*/false) {}
};

}  // namespace

Status RegisterLinearModelOperators(OperatorRegistry& registry) {
  HYPPO_RETURN_NOT_OK(
      registry.Register(std::make_unique<SklLinearRegression>()));
  HYPPO_RETURN_NOT_OK(
      registry.Register(std::make_unique<TflLinearRegression>()));
  HYPPO_RETURN_NOT_OK(registry.Register(std::make_unique<SklRidge>()));
  HYPPO_RETURN_NOT_OK(registry.Register(std::make_unique<TflRidge>()));
  HYPPO_RETURN_NOT_OK(registry.Register(std::make_unique<SklLasso>()));
  HYPPO_RETURN_NOT_OK(registry.Register(std::make_unique<TflLasso>()));
  HYPPO_RETURN_NOT_OK(
      registry.Register(std::make_unique<SklLogisticRegression>()));
  HYPPO_RETURN_NOT_OK(
      registry.Register(std::make_unique<TflLogisticRegression>()));
  return Status::OK();
}

}  // namespace hyppo::ml
