#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "ml/kernels/kernels.h"
#include "ml/operator.h"
#include "ml/ops/ops.h"

namespace hyppo::ml {

namespace {

// ElasticNet: least squares with combined L1/L2 regularization,
//   (1/2n)||y - Xw - b||^2 + alpha*(l1_ratio*||w||_1
//                                   + (1-l1_ratio)/2*||w||_2^2).
// skl: cyclic coordinate descent. tfl: proximal gradient (ISTA with the
// L2 term folded into the smooth part). Both converge to the same optimum
// of the strictly convex objective (l1_ratio < 1), at different costs.

OpStatePtr MakeState(std::vector<double> weights, double intercept) {
  auto state = std::make_shared<VectorState>("ElasticNet");
  state->vectors["weights"] = std::move(weights);
  state->scalars["intercept"] = intercept;
  return state;
}

double SoftThreshold(double x, double lambda) {
  if (x > lambda) {
    return x - lambda;
  }
  if (x < -lambda) {
    return x + lambda;
  }
  return 0.0;
}

struct Centered {
  std::vector<double> feature_mean;
  double target_mean = 0.0;
};

Centered CenterStats(const Dataset& data) {
  Centered stats;
  stats.feature_mean.assign(static_cast<size_t>(data.cols()), 0.0);
  for (int64_t c = 0; c < data.cols(); ++c) {
    stats.feature_mean[static_cast<size_t>(c)] =
        kernels::Sum(data.col_data(c), data.rows()) /
        static_cast<double>(data.rows());
  }
  stats.target_mean = kernels::Sum(data.target().data(), data.rows()) /
                      static_cast<double>(data.rows());
  return stats;
}

class ElasticNetBase : public Estimator {
 public:
  explicit ElasticNetBase(std::string framework)
      : Estimator("ElasticNet", std::move(framework), /*transforms=*/false,
                  /*predicts=*/true) {}

  double CostHint(MlTask task, int64_t rows, int64_t cols,
                  const Config& /*config*/) const override {
    const double cells = static_cast<double>(rows) * static_cast<double>(cols);
    return (task == MlTask::kFit ? 3e-8 : 1.2e-9) * cells;
  }

 protected:
  Result<std::vector<double>> DoPredict(const OpState& state,
                                        const Dataset& data) const override {
    const auto* vs = dynamic_cast<const VectorState*>(&state);
    if (vs == nullptr ||
        static_cast<int64_t>(vs->vec("weights").size()) != data.cols()) {
      return Status::InvalidArgument(impl_name() +
                                     ".predict: incompatible op-state");
    }
    const std::vector<double>& w = vs->vec("weights");
    std::vector<double> preds(static_cast<size_t>(data.rows()),
                              vs->scalar("intercept"));
    std::vector<const double*> cols(static_cast<size_t>(data.cols()));
    for (int64_t c = 0; c < data.cols(); ++c) {
      cols[static_cast<size_t>(c)] = data.col_data(c);
    }
    kernels::GemvColumns(cols.data(), data.rows(), data.cols(),
                         /*shift=*/nullptr, w.data(), vs->scalar("intercept"),
                         preds.data());
    return preds;
  }

  static Status CheckInput(const Dataset& data, const std::string& who) {
    if (!data.has_target()) {
      return Status::InvalidArgument(who + ".fit: dataset has no target");
    }
    if (data.rows() < 2) {
      return Status::InvalidArgument(who + ".fit: needs at least two rows");
    }
    return Status::OK();
  }
};

class SklElasticNet final : public ElasticNetBase {
 public:
  SklElasticNet() : ElasticNetBase("skl") {}

 protected:
  Result<OpStatePtr> DoFit(const Dataset& data,
                           const Config& config) const override {
    HYPPO_RETURN_NOT_OK(CheckInput(data, impl_name()));
    const double alpha = config.GetDouble("alpha", 0.1);
    const double l1_ratio = config.GetDouble("l1_ratio", 0.5);
    const double l1 = alpha * l1_ratio;
    const double l2 = alpha * (1.0 - l1_ratio);
    const int64_t n = data.rows();
    const int64_t d = data.cols();
    const Centered stats = CenterStats(data);
    std::vector<double> w(static_cast<size_t>(d), 0.0);
    std::vector<double> residual(static_cast<size_t>(n));
    for (int64_t r = 0; r < n; ++r) {
      residual[static_cast<size_t>(r)] =
          data.target()[static_cast<size_t>(r)] - stats.target_mean;
    }
    std::vector<double> col_sq(static_cast<size_t>(d), 0.0);
    for (int64_t c = 0; c < d; ++c) {
      col_sq[static_cast<size_t>(c)] =
          kernels::ShiftedSumSq(data.col_data(c),
                                stats.feature_mean[static_cast<size_t>(c)],
                                n) /
          static_cast<double>(n);
    }
    for (int sweep = 0; sweep < 1000; ++sweep) {
      double max_delta = 0.0;
      for (int64_t c = 0; c < d; ++c) {
        if (col_sq[static_cast<size_t>(c)] < 1e-30) {
          continue;
        }
        const double* col = data.col_data(c);
        const double mu = stats.feature_mean[static_cast<size_t>(c)];
        double rho = kernels::ShiftedDot(col, mu, residual.data(), n) /
                     static_cast<double>(n);
        const double old_w = w[static_cast<size_t>(c)];
        rho += col_sq[static_cast<size_t>(c)] * old_w;
        const double new_w = SoftThreshold(rho, l1) /
                             (col_sq[static_cast<size_t>(c)] + l2);
        const double delta = new_w - old_w;
        if (delta != 0.0) {
          kernels::ShiftedAxpy(-delta, col, mu, residual.data(), n);
          w[static_cast<size_t>(c)] = new_w;
        }
        max_delta = std::max(max_delta, std::fabs(delta));
      }
      if (max_delta < 1e-11) {
        break;
      }
    }
    double intercept = stats.target_mean;
    for (int64_t c = 0; c < d; ++c) {
      intercept -= w[static_cast<size_t>(c)] *
                   stats.feature_mean[static_cast<size_t>(c)];
    }
    return MakeState(std::move(w), intercept);
  }
};

class TflElasticNet final : public ElasticNetBase {
 public:
  TflElasticNet() : ElasticNetBase("tfl") {}

 protected:
  Result<OpStatePtr> DoFit(const Dataset& data,
                           const Config& config) const override {
    HYPPO_RETURN_NOT_OK(CheckInput(data, impl_name()));
    const double alpha = config.GetDouble("alpha", 0.1);
    const double l1_ratio = config.GetDouble("l1_ratio", 0.5);
    const double l1 = alpha * l1_ratio;
    const double l2 = alpha * (1.0 - l1_ratio);
    const int64_t n = data.rows();
    const int64_t d = data.cols();
    const Centered stats = CenterStats(data);
    double lipschitz = l2;
    for (int64_t c = 0; c < d; ++c) {
      lipschitz +=
          kernels::ShiftedSumSq(data.col_data(c),
                                stats.feature_mean[static_cast<size_t>(c)],
                                n) /
          static_cast<double>(n);
    }
    const double step = 1.0 / std::max(lipschitz, 1e-12);
    std::vector<double> w(static_cast<size_t>(d), 0.0);
    std::vector<double> residual(static_cast<size_t>(n));
    std::vector<double> grad(static_cast<size_t>(d));
    for (int iter = 0; iter < 6000; ++iter) {
      for (int64_t r = 0; r < n; ++r) {
        residual[static_cast<size_t>(r)] =
            data.target()[static_cast<size_t>(r)] - stats.target_mean;
      }
      for (int64_t c = 0; c < d; ++c) {
        const double wc = w[static_cast<size_t>(c)];
        if (wc == 0.0) {
          continue;
        }
        kernels::ShiftedAxpy(-wc, data.col_data(c),
                             stats.feature_mean[static_cast<size_t>(c)],
                             residual.data(), n);
      }
      for (int64_t c = 0; c < d; ++c) {
        grad[static_cast<size_t>(c)] =
            l2 * w[static_cast<size_t>(c)] -
            kernels::ShiftedDot(data.col_data(c),
                                stats.feature_mean[static_cast<size_t>(c)],
                                residual.data(), n) /
                static_cast<double>(n);
      }
      double max_delta = 0.0;
      for (int64_t c = 0; c < d; ++c) {
        const double proposed = SoftThreshold(
            w[static_cast<size_t>(c)] - step * grad[static_cast<size_t>(c)],
            step * l1);
        max_delta =
            std::max(max_delta, std::fabs(proposed - w[static_cast<size_t>(c)]));
        w[static_cast<size_t>(c)] = proposed;
      }
      if (max_delta < 1e-11 && iter > 4) {
        break;
      }
    }
    double intercept = stats.target_mean;
    for (int64_t c = 0; c < d; ++c) {
      intercept -= w[static_cast<size_t>(c)] *
                   stats.feature_mean[static_cast<size_t>(c)];
    }
    return MakeState(std::move(w), intercept);
  }
};

}  // namespace

Status RegisterElasticNetOperators(OperatorRegistry& registry) {
  HYPPO_RETURN_NOT_OK(registry.Register(std::make_unique<SklElasticNet>()));
  HYPPO_RETURN_NOT_OK(registry.Register(std::make_unique<TflElasticNet>()));
  return Status::OK();
}

}  // namespace hyppo::ml
