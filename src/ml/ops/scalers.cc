#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "ml/operator.h"
#include "ml/ops/ops.h"

namespace hyppo::ml {

namespace {

// Applies per-column affine transform out = (x - shift) / scale.
Dataset AffineTransform(const Dataset& data, const std::vector<double>& shift,
                        const std::vector<double>& scale) {
  Dataset out(data.rows(), data.cols());
  out.set_column_names(data.column_names());
  for (int64_t c = 0; c < data.cols(); ++c) {
    const double* src = data.col_data(c);
    double* dst = out.col_data(c);
    const double sh = shift[static_cast<size_t>(c)];
    const double sc = scale[static_cast<size_t>(c)];
    const double inv = sc == 0.0 ? 1.0 : 1.0 / sc;
    for (int64_t r = 0; r < data.rows(); ++r) {
      dst[r] = (src[r] - sh) * inv;
    }
  }
  if (data.has_target()) {
    out.set_target(data.target());
  }
  return out;
}

Status CheckColumns(const OpState& state, const Dataset& data,
                    const std::string& who) {
  const auto* vs = dynamic_cast<const VectorState*>(&state);
  if (vs == nullptr) {
    return Status::InvalidArgument(who + ": op-state has wrong type");
  }
  const auto it = vs->vectors.find("shift");
  if (it == vs->vectors.end() ||
      static_cast<int64_t>(it->second.size()) != data.cols()) {
    return Status::InvalidArgument(
        who + ": op-state fitted on different column count");
  }
  return Status::OK();
}

// Shared transform for all shift/scale scalers.
class AffineScalerBase : public Estimator {
 public:
  AffineScalerBase(std::string logical_op, std::string framework)
      : Estimator(std::move(logical_op), std::move(framework),
                  /*transforms=*/true, /*predicts=*/false) {}

  double CostHint(MlTask task, int64_t rows, int64_t cols,
                  const Config& /*config*/) const override {
    const double cells = static_cast<double>(rows) * static_cast<double>(cols);
    return (task == MlTask::kFit ? 2.5e-9 : 1.5e-9) * cells;
  }

 protected:
  Result<Dataset> DoTransform(const OpState& state,
                              const Dataset& data) const override {
    HYPPO_RETURN_NOT_OK(CheckColumns(state, data, impl_name()));
    const auto& vs = static_cast<const VectorState&>(state);
    return AffineTransform(data, vs.vec("shift"), vs.vec("scale"));
  }

  static OpStatePtr MakeState(const std::string& logical_op,
                              std::vector<double> shift,
                              std::vector<double> scale) {
    auto state = std::make_shared<VectorState>(logical_op);
    state->vectors["shift"] = std::move(shift);
    state->vectors["scale"] = std::move(scale);
    return state;
  }
};

// ---------------------------------------------------------------------------
// StandardScaler: shift = mean, scale = population stddev.

// skl: textbook two-pass algorithm (mean pass + variance pass).
class SklStandardScaler final : public AffineScalerBase {
 public:
  SklStandardScaler() : AffineScalerBase("StandardScaler", "skl") {}

 protected:
  Result<OpStatePtr> DoFit(const Dataset& data,
                           const Config& /*config*/) const override {
    const int64_t rows = data.rows();
    if (rows == 0) {
      return Status::InvalidArgument("StandardScaler.fit: empty dataset");
    }
    std::vector<double> mean(static_cast<size_t>(data.cols()), 0.0);
    std::vector<double> std(static_cast<size_t>(data.cols()), 0.0);
    for (int64_t c = 0; c < data.cols(); ++c) {
      const double* col = data.col_data(c);
      double sum = 0.0;
      for (int64_t r = 0; r < rows; ++r) {
        sum += col[r];
      }
      const double mu = sum / static_cast<double>(rows);
      double sq = 0.0;
      for (int64_t r = 0; r < rows; ++r) {
        const double d = col[r] - mu;
        sq += d * d;
      }
      mean[static_cast<size_t>(c)] = mu;
      std[static_cast<size_t>(c)] = std::sqrt(sq / static_cast<double>(rows));
    }
    return MakeState(logical_op(), std::move(mean), std::move(std));
  }
};

// tfl: single-pass Welford streaming moments (TensorFlow-style).
class TflStandardScaler final : public AffineScalerBase {
 public:
  TflStandardScaler() : AffineScalerBase("StandardScaler", "tfl") {}

 protected:
  Result<OpStatePtr> DoFit(const Dataset& data,
                           const Config& /*config*/) const override {
    const int64_t rows = data.rows();
    if (rows == 0) {
      return Status::InvalidArgument("StandardScaler.fit: empty dataset");
    }
    std::vector<double> mean(static_cast<size_t>(data.cols()), 0.0);
    std::vector<double> std(static_cast<size_t>(data.cols()), 0.0);
    for (int64_t c = 0; c < data.cols(); ++c) {
      const double* col = data.col_data(c);
      double mu = 0.0;
      double m2 = 0.0;
      for (int64_t r = 0; r < rows; ++r) {
        const double delta = col[r] - mu;
        mu += delta / static_cast<double>(r + 1);
        m2 += delta * (col[r] - mu);
      }
      mean[static_cast<size_t>(c)] = mu;
      std[static_cast<size_t>(c)] = std::sqrt(m2 / static_cast<double>(rows));
    }
    return MakeState(logical_op(), std::move(mean), std::move(std));
  }
};

// ---------------------------------------------------------------------------
// MinMaxScaler: shift = min, scale = max - min.

class SklMinMaxScaler final : public AffineScalerBase {
 public:
  SklMinMaxScaler() : AffineScalerBase("MinMaxScaler", "skl") {
    set_tolerance(Tolerance::kExact);
  }

 protected:
  Result<OpStatePtr> DoFit(const Dataset& data,
                           const Config& /*config*/) const override {
    if (data.rows() == 0) {
      return Status::InvalidArgument("MinMaxScaler.fit: empty dataset");
    }
    std::vector<double> lo(static_cast<size_t>(data.cols()), 0.0);
    std::vector<double> range(static_cast<size_t>(data.cols()), 0.0);
    for (int64_t c = 0; c < data.cols(); ++c) {
      const double* col = data.col_data(c);
      double mn = col[0];
      double mx = col[0];
      for (int64_t r = 1; r < data.rows(); ++r) {
        mn = std::min(mn, col[r]);
        mx = std::max(mx, col[r]);
      }
      lo[static_cast<size_t>(c)] = mn;
      range[static_cast<size_t>(c)] = mx - mn;
    }
    return MakeState(logical_op(), std::move(lo), std::move(range));
  }
};

// tfl variant: min/max via std::minmax_element pairs trick (fewer
// comparisons, different constant factor), identical result.
class TflMinMaxScaler final : public AffineScalerBase {
 public:
  TflMinMaxScaler() : AffineScalerBase("MinMaxScaler", "tfl") {
    set_tolerance(Tolerance::kExact);
  }

 protected:
  Result<OpStatePtr> DoFit(const Dataset& data,
                           const Config& /*config*/) const override {
    if (data.rows() == 0) {
      return Status::InvalidArgument("MinMaxScaler.fit: empty dataset");
    }
    std::vector<double> lo(static_cast<size_t>(data.cols()), 0.0);
    std::vector<double> range(static_cast<size_t>(data.cols()), 0.0);
    for (int64_t c = 0; c < data.cols(); ++c) {
      const double* col = data.col_data(c);
      auto [mn_it, mx_it] = std::minmax_element(col, col + data.rows());
      lo[static_cast<size_t>(c)] = *mn_it;
      range[static_cast<size_t>(c)] = *mx_it - *mn_it;
    }
    return MakeState(logical_op(), std::move(lo), std::move(range));
  }
};

// ---------------------------------------------------------------------------
// RobustScaler: shift = median, scale = IQR.

double MedianOfSorted(const std::vector<double>& sorted) {
  const size_t n = sorted.size();
  if (n % 2 == 1) {
    return sorted[n / 2];
  }
  return 0.5 * (sorted[n / 2 - 1] + sorted[n / 2]);
}

// Quantile with linear interpolation (NumPy default), on sorted data.
double QuantileOfSorted(const std::vector<double>& sorted, double q) {
  const size_t n = sorted.size();
  if (n == 1) {
    return sorted[0];
  }
  const double pos = q * static_cast<double>(n - 1);
  const size_t lo = static_cast<size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= n) {
    return sorted[n - 1];
  }
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

// skl: full sort per column, O(n log n).
class SklRobustScaler final : public AffineScalerBase {
 public:
  SklRobustScaler() : AffineScalerBase("RobustScaler", "skl") {
    set_tolerance(Tolerance::kExact);
  }

  double CostHint(MlTask task, int64_t rows, int64_t cols,
                  const Config& /*config*/) const override {
    if (task == MlTask::kFit) {
      return 8e-9 * static_cast<double>(rows) * static_cast<double>(cols) *
             std::log2(std::max<double>(2.0, static_cast<double>(rows)));
    }
    return 1.5e-9 * static_cast<double>(rows) * static_cast<double>(cols);
  }

 protected:
  Result<OpStatePtr> DoFit(const Dataset& data,
                           const Config& /*config*/) const override {
    if (data.rows() == 0) {
      return Status::InvalidArgument("RobustScaler.fit: empty dataset");
    }
    std::vector<double> median(static_cast<size_t>(data.cols()), 0.0);
    std::vector<double> iqr(static_cast<size_t>(data.cols()), 0.0);
    std::vector<double> buf;
    for (int64_t c = 0; c < data.cols(); ++c) {
      const double* col = data.col_data(c);
      buf.assign(col, col + data.rows());
      std::sort(buf.begin(), buf.end());
      median[static_cast<size_t>(c)] = MedianOfSorted(buf);
      iqr[static_cast<size_t>(c)] =
          QuantileOfSorted(buf, 0.75) - QuantileOfSorted(buf, 0.25);
    }
    return MakeState(logical_op(), std::move(median), std::move(iqr));
  }
};

// tfl: selection-based quantiles via nth_element, O(n) expected — a
// genuinely cheaper algorithm for the same statistics.
class TflRobustScaler final : public AffineScalerBase {
 public:
  TflRobustScaler() : AffineScalerBase("RobustScaler", "tfl") {
    set_tolerance(Tolerance::kExact);
  }

  double CostHint(MlTask task, int64_t rows, int64_t cols,
                  const Config& /*config*/) const override {
    const double cells = static_cast<double>(rows) * static_cast<double>(cols);
    return (task == MlTask::kFit ? 6e-9 : 1.5e-9) * cells;
  }

 protected:
  Result<OpStatePtr> DoFit(const Dataset& data,
                           const Config& /*config*/) const override {
    if (data.rows() == 0) {
      return Status::InvalidArgument("RobustScaler.fit: empty dataset");
    }
    std::vector<double> median(static_cast<size_t>(data.cols()), 0.0);
    std::vector<double> iqr(static_cast<size_t>(data.cols()), 0.0);
    std::vector<double> buf;
    // Matches the interpolated quantiles of the sorted implementation by
    // selecting the two straddling order statistics per quantile.
    auto quantile = [&](double q) {
      const size_t n = buf.size();
      if (n == 1) {
        return buf[0];
      }
      const double pos = q * static_cast<double>(n - 1);
      const size_t lo = static_cast<size_t>(pos);
      const double frac = pos - static_cast<double>(lo);
      std::nth_element(buf.begin(), buf.begin() + static_cast<int64_t>(lo),
                       buf.end());
      const double vlo = buf[lo];
      if (frac == 0.0 || lo + 1 >= n) {
        return vlo;
      }
      std::nth_element(buf.begin() + static_cast<int64_t>(lo) + 1,
                       buf.begin() + static_cast<int64_t>(lo) + 1,
                       buf.end());
      const double vhi = buf[lo + 1];
      return vlo * (1.0 - frac) + vhi * frac;
    };
    for (int64_t c = 0; c < data.cols(); ++c) {
      const double* col = data.col_data(c);
      buf.assign(col, col + data.rows());
      median[static_cast<size_t>(c)] = quantile(0.5);
      const double q75 = quantile(0.75);
      const double q25 = quantile(0.25);
      iqr[static_cast<size_t>(c)] = q75 - q25;
    }
    return MakeState(logical_op(), std::move(median), std::move(iqr));
  }
};

// ---------------------------------------------------------------------------
// MaxAbsScaler: shift = 0, scale = max |x|.

class SklMaxAbsScaler final : public AffineScalerBase {
 public:
  SklMaxAbsScaler() : AffineScalerBase("MaxAbsScaler", "skl") {
    set_tolerance(Tolerance::kExact);
  }

 protected:
  Result<OpStatePtr> DoFit(const Dataset& data,
                           const Config& /*config*/) const override {
    if (data.rows() == 0) {
      return Status::InvalidArgument("MaxAbsScaler.fit: empty dataset");
    }
    std::vector<double> shift(static_cast<size_t>(data.cols()), 0.0);
    std::vector<double> scale(static_cast<size_t>(data.cols()), 0.0);
    for (int64_t c = 0; c < data.cols(); ++c) {
      const double* col = data.col_data(c);
      double mx = 0.0;
      for (int64_t r = 0; r < data.rows(); ++r) {
        mx = std::max(mx, std::fabs(col[r]));
      }
      scale[static_cast<size_t>(c)] = mx;
    }
    return MakeState(logical_op(), std::move(shift), std::move(scale));
  }
};

// tfl: tracks min and max separately, derives max-abs; same output.
class TflMaxAbsScaler final : public AffineScalerBase {
 public:
  TflMaxAbsScaler() : AffineScalerBase("MaxAbsScaler", "tfl") {
    set_tolerance(Tolerance::kExact);
  }

 protected:
  Result<OpStatePtr> DoFit(const Dataset& data,
                           const Config& /*config*/) const override {
    if (data.rows() == 0) {
      return Status::InvalidArgument("MaxAbsScaler.fit: empty dataset");
    }
    std::vector<double> shift(static_cast<size_t>(data.cols()), 0.0);
    std::vector<double> scale(static_cast<size_t>(data.cols()), 0.0);
    for (int64_t c = 0; c < data.cols(); ++c) {
      const double* col = data.col_data(c);
      auto [mn_it, mx_it] = std::minmax_element(col, col + data.rows());
      scale[static_cast<size_t>(c)] = std::max(std::fabs(*mn_it),
                                               std::fabs(*mx_it));
    }
    return MakeState(logical_op(), std::move(shift), std::move(scale));
  }
};

// ---------------------------------------------------------------------------
// Normalizer: stateless row-wise L2 normalization (fit is a no-op, like
// sklearn's Normalizer). Single implementation — the paper gives use-case
// specific preprocessing a single physical operator.

class SklNormalizer final : public Estimator {
 public:
  SklNormalizer()
      : Estimator("Normalizer", "skl", /*transforms=*/true,
                  /*predicts=*/false) {}

 protected:
  Result<OpStatePtr> DoFit(const Dataset& /*data*/,
                           const Config& /*config*/) const override {
    return OpStatePtr(std::make_shared<VectorState>("Normalizer"));
  }

  Result<Dataset> DoTransform(const OpState& /*state*/,
                              const Dataset& data) const override {
    Dataset out(data.rows(), data.cols());
    out.set_column_names(data.column_names());
    for (int64_t r = 0; r < data.rows(); ++r) {
      double sq = 0.0;
      for (int64_t c = 0; c < data.cols(); ++c) {
        const double v = data.at(r, c);
        sq += v * v;
      }
      const double inv = sq > 0.0 ? 1.0 / std::sqrt(sq) : 1.0;
      for (int64_t c = 0; c < data.cols(); ++c) {
        out.at(r, c) = data.at(r, c) * inv;
      }
    }
    if (data.has_target()) {
      out.set_target(data.target());
    }
    return out;
  }
};

}  // namespace

Status RegisterScalerOperators(OperatorRegistry& registry) {
  HYPPO_RETURN_NOT_OK(registry.Register(std::make_unique<SklStandardScaler>()));
  HYPPO_RETURN_NOT_OK(registry.Register(std::make_unique<TflStandardScaler>()));
  HYPPO_RETURN_NOT_OK(registry.Register(std::make_unique<SklMinMaxScaler>()));
  HYPPO_RETURN_NOT_OK(registry.Register(std::make_unique<TflMinMaxScaler>()));
  HYPPO_RETURN_NOT_OK(registry.Register(std::make_unique<SklRobustScaler>()));
  HYPPO_RETURN_NOT_OK(registry.Register(std::make_unique<TflRobustScaler>()));
  HYPPO_RETURN_NOT_OK(registry.Register(std::make_unique<SklMaxAbsScaler>()));
  HYPPO_RETURN_NOT_OK(registry.Register(std::make_unique<TflMaxAbsScaler>()));
  HYPPO_RETURN_NOT_OK(registry.Register(std::make_unique<SklNormalizer>()));
  return Status::OK();
}

}  // namespace hyppo::ml
