#include "ml/ops/tree_builder.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/rng.h"

namespace hyppo::ml {

namespace {

// Impurity proxy that is maximized by a split: for regression this is the
// standard variance-reduction surrogate sum^2/count; for binary
// classification with mean-encoded labels gini reduction reduces to the
// same expression on label sums, so one scorer serves both.
double Score(double sum, double count) {
  return count > 0.0 ? sum * sum / count : 0.0;
}

struct SplitDecision {
  int32_t feature = -1;
  double threshold = 0.0;
  double gain = 0.0;
};

struct BuildContext {
  const Dataset* data = nullptr;
  const std::vector<double>* targets = nullptr;
  TreeOptions options;
  std::vector<int64_t> feature_pool;
  Rng rng{1};
  // Histogram mode: per-feature bin edges (size max_bins - 1 interior
  // boundaries) computed once per build.
  std::vector<std::vector<double>> bin_edges;
  FlatTree tree;
};

// Chooses the candidate features for one node split.
std::vector<int64_t> SampleFeatures(BuildContext& ctx) {
  const int64_t d = ctx.data->cols();
  const int64_t k = ctx.options.max_features > 0
                        ? std::min(ctx.options.max_features, d)
                        : d;
  if (k == d) {
    return ctx.feature_pool;
  }
  std::vector<int64_t> pool = ctx.feature_pool;
  ctx.rng.Shuffle(pool);
  pool.resize(static_cast<size_t>(k));
  std::sort(pool.begin(), pool.end());
  return pool;
}

// Exact split finding: sort (value, target) per candidate feature and scan
// boundaries between distinct values.
SplitDecision FindExactSplit(BuildContext& ctx,
                             const std::vector<int64_t>& rows,
                             const std::vector<int64_t>& features,
                             double total_sum) {
  SplitDecision best;
  const double n = static_cast<double>(rows.size());
  const double base = Score(total_sum, n);
  std::vector<std::pair<double, double>> pairs(rows.size());
  for (int64_t f : features) {
    const double* col = ctx.data->col_data(f);
    for (size_t i = 0; i < rows.size(); ++i) {
      pairs[i] = {col[rows[i]], (*ctx.targets)[static_cast<size_t>(rows[i])]};
    }
    std::sort(pairs.begin(), pairs.end());
    double left_sum = 0.0;
    for (size_t i = 0; i + 1 < pairs.size(); ++i) {
      left_sum += pairs[i].second;
      if (pairs[i].first == pairs[i + 1].first) {
        continue;
      }
      const double left_n = static_cast<double>(i + 1);
      const double right_n = n - left_n;
      if (left_n < static_cast<double>(ctx.options.min_samples_leaf) ||
          right_n < static_cast<double>(ctx.options.min_samples_leaf)) {
        continue;
      }
      const double gain =
          Score(left_sum, left_n) + Score(total_sum - left_sum, right_n) -
          base;
      if (gain > best.gain + 1e-12) {
        best.gain = gain;
        best.feature = static_cast<int32_t>(f);
        best.threshold = 0.5 * (pairs[i].first + pairs[i + 1].first);
      }
    }
  }
  return best;
}

// Histogram split finding: accumulate per-bin count/sum and scan bin
// boundaries. Thresholds are bin edges.
SplitDecision FindHistogramSplit(BuildContext& ctx,
                                 const std::vector<int64_t>& rows,
                                 const std::vector<int64_t>& features,
                                 double total_sum) {
  SplitDecision best;
  const double n = static_cast<double>(rows.size());
  const double base = Score(total_sum, n);
  const int32_t bins = ctx.options.max_bins;
  std::vector<double> bin_sum(static_cast<size_t>(bins));
  std::vector<double> bin_count(static_cast<size_t>(bins));
  for (int64_t f : features) {
    const std::vector<double>& edges = ctx.bin_edges[static_cast<size_t>(f)];
    if (edges.empty()) {
      continue;  // constant feature
    }
    std::fill(bin_sum.begin(), bin_sum.end(), 0.0);
    std::fill(bin_count.begin(), bin_count.end(), 0.0);
    const double* col = ctx.data->col_data(f);
    for (int64_t row : rows) {
      const double v = col[row];
      const size_t bin = static_cast<size_t>(
          std::upper_bound(edges.begin(), edges.end(), v) - edges.begin());
      bin_sum[bin] += (*ctx.targets)[static_cast<size_t>(row)];
      bin_count[bin] += 1.0;
    }
    double left_sum = 0.0;
    double left_n = 0.0;
    for (size_t b = 0; b + 1 < static_cast<size_t>(bins); ++b) {
      left_sum += bin_sum[b];
      left_n += bin_count[b];
      const double right_n = n - left_n;
      if (left_n < static_cast<double>(ctx.options.min_samples_leaf) ||
          right_n < static_cast<double>(ctx.options.min_samples_leaf)) {
        continue;
      }
      if (bin_count[b] == 0.0) {
        continue;
      }
      const double gain =
          Score(left_sum, left_n) + Score(total_sum - left_sum, right_n) -
          base;
      if (gain > best.gain + 1e-12 && b < edges.size()) {
        best.gain = gain;
        best.feature = static_cast<int32_t>(f);
        best.threshold = edges[b];
      }
    }
  }
  return best;
}

int32_t AddLeaf(BuildContext& ctx, double value) {
  const int32_t id = static_cast<int32_t>(ctx.tree.feature.size());
  ctx.tree.feature.push_back(-1);
  ctx.tree.threshold.push_back(0.0);
  ctx.tree.left.push_back(-1);
  ctx.tree.right.push_back(-1);
  ctx.tree.value.push_back(value);
  return id;
}

int32_t BuildNode(BuildContext& ctx, std::vector<int64_t>& rows,
                  int32_t depth) {
  double sum = 0.0;
  for (int64_t row : rows) {
    sum += (*ctx.targets)[static_cast<size_t>(row)];
  }
  const double mean = rows.empty()
                          ? 0.0
                          : sum / static_cast<double>(rows.size());
  if (depth >= ctx.options.max_depth ||
      static_cast<int64_t>(rows.size()) < ctx.options.min_samples_split) {
    return AddLeaf(ctx, mean);
  }
  const std::vector<int64_t> features = SampleFeatures(ctx);
  const SplitDecision split =
      ctx.options.histogram ? FindHistogramSplit(ctx, rows, features, sum)
                            : FindExactSplit(ctx, rows, features, sum);
  if (split.feature < 0) {
    return AddLeaf(ctx, mean);
  }
  std::vector<int64_t> left_rows;
  std::vector<int64_t> right_rows;
  left_rows.reserve(rows.size());
  right_rows.reserve(rows.size());
  const double* col = ctx.data->col_data(split.feature);
  for (int64_t row : rows) {
    if (col[row] <= split.threshold) {
      left_rows.push_back(row);
    } else {
      right_rows.push_back(row);
    }
  }
  if (left_rows.empty() || right_rows.empty()) {
    return AddLeaf(ctx, mean);
  }
  rows.clear();
  rows.shrink_to_fit();
  const int32_t id = static_cast<int32_t>(ctx.tree.feature.size());
  ctx.tree.feature.push_back(split.feature);
  ctx.tree.threshold.push_back(split.threshold);
  ctx.tree.left.push_back(-1);
  ctx.tree.right.push_back(-1);
  ctx.tree.value.push_back(mean);
  const int32_t left_id = BuildNode(ctx, left_rows, depth + 1);
  const int32_t right_id = BuildNode(ctx, right_rows, depth + 1);
  ctx.tree.left[static_cast<size_t>(id)] = left_id;
  ctx.tree.right[static_cast<size_t>(id)] = right_id;
  return id;
}

std::vector<std::vector<double>> ComputeBinEdges(const Dataset& data,
                                                 int32_t max_bins) {
  std::vector<std::vector<double>> edges(static_cast<size_t>(data.cols()));
  for (int64_t c = 0; c < data.cols(); ++c) {
    const double* col = data.col_data(c);
    double mn = col[0];
    double mx = col[0];
    for (int64_t r = 1; r < data.rows(); ++r) {
      mn = std::min(mn, col[r]);
      mx = std::max(mx, col[r]);
    }
    if (!(mx > mn)) {
      continue;  // constant or NaN column: no usable edges
    }
    auto& e = edges[static_cast<size_t>(c)];
    e.reserve(static_cast<size_t>(max_bins - 1));
    for (int32_t b = 1; b < max_bins; ++b) {
      e.push_back(mn + (mx - mn) * static_cast<double>(b) /
                           static_cast<double>(max_bins));
    }
  }
  return edges;
}

}  // namespace

Result<FlatTree> BuildTree(const Dataset& data,
                           const std::vector<double>& targets,
                           const std::vector<int64_t>& rows,
                           const TreeOptions& options) {
  if (static_cast<int64_t>(targets.size()) != data.rows()) {
    return Status::InvalidArgument("BuildTree: targets size mismatch");
  }
  if (rows.empty()) {
    return Status::InvalidArgument("BuildTree: no rows");
  }
  BuildContext ctx;
  ctx.data = &data;
  ctx.targets = &targets;
  ctx.options = options;
  ctx.rng.Seed(options.seed);
  ctx.feature_pool.resize(static_cast<size_t>(data.cols()));
  std::iota(ctx.feature_pool.begin(), ctx.feature_pool.end(), 0);
  if (options.histogram) {
    ctx.bin_edges = ComputeBinEdges(data, options.max_bins);
  }
  std::vector<int64_t> root_rows = rows;
  BuildNode(ctx, root_rows, 0);
  return std::move(ctx.tree);
}

void AccumulateTreePredictions(const FlatTree& tree, const Dataset& data,
                               double weight, std::vector<double>& out) {
  std::vector<double> row(static_cast<size_t>(data.cols()));
  for (int64_t r = 0; r < data.rows(); ++r) {
    data.CopyRow(r, row.data());
    out[static_cast<size_t>(r)] += weight * tree.Predict(row.data());
  }
}

}  // namespace hyppo::ml
