#ifndef HYPPO_ML_CSV_H_
#define HYPPO_ML_CSV_H_

#include <string>

#include "common/result.h"
#include "ml/dataset.h"

namespace hyppo::ml {

/// \brief CSV loading/saving for Dataset, so the real competition data can
/// be plugged in when available (the benchmarks default to the synthetic
/// generators; see DESIGN.md §1).
struct CsvOptions {
  char delimiter = ',';
  /// First line holds column names.
  bool has_header = true;
  /// Name of the target column ("" = no target). The column is removed
  /// from the feature matrix and stored as the dataset target.
  std::string target_column;
  /// Cell values treated as missing (mapped to NaN), e.g. the HIGGS
  /// challenge's "-999.0". Empty cells are always missing.
  std::vector<std::string> missing_markers;
};

/// Parses CSV text into a Dataset. Non-numeric cells are an error unless
/// listed as missing markers.
Result<Dataset> ParseCsv(const std::string& text, const CsvOptions& options);

/// Loads a CSV file.
Result<Dataset> LoadCsv(const std::string& path, const CsvOptions& options);

/// Serializes a dataset to CSV (the target becomes a trailing column named
/// "target" when present; NaNs are written as empty cells).
std::string ToCsv(const Dataset& dataset);

/// Writes a dataset to a CSV file.
Status SaveCsv(const Dataset& dataset, const std::string& path);

}  // namespace hyppo::ml

#endif  // HYPPO_ML_CSV_H_
