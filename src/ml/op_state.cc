#include "ml/op_state.h"

namespace hyppo::ml {

int64_t VectorState::SizeBytes() const {
  int64_t bytes = 0;
  for (const auto& [key, vec] : vectors) {
    bytes += static_cast<int64_t>(key.size()) +
             static_cast<int64_t>(vec.size() * sizeof(double));
  }
  bytes += static_cast<int64_t>(scalars.size() * (sizeof(double) + 8));
  return bytes;
}

double FlatTree::Predict(const double* row) const {
  int32_t node = 0;
  while (feature[static_cast<size_t>(node)] >= 0) {
    const size_t n = static_cast<size_t>(node);
    node = (row[feature[n]] <= threshold[n]) ? left[n] : right[n];
  }
  return value[static_cast<size_t>(node)];
}

int64_t ForestState::SizeBytes() const {
  int64_t bytes = 32;
  for (const FlatTree& tree : trees) {
    bytes += tree.SizeBytes();
  }
  bytes += static_cast<int64_t>(tree_weights.size() * sizeof(double));
  return bytes;
}

int64_t EnsembleState::SizeBytes() const {
  // The ensemble state itself is tiny; base states are separate artifacts
  // and are not double-counted here (they are charged under their own
  // nodes in the history).
  int64_t bytes = 64;
  bytes += static_cast<int64_t>(meta_weights.size() * sizeof(double));
  for (const auto& name : base_logical_ops) {
    bytes += static_cast<int64_t>(name.size());
  }
  for (const auto& name : base_impls) {
    bytes += static_cast<int64_t>(name.size());
  }
  return bytes;
}

}  // namespace hyppo::ml
