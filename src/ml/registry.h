#ifndef HYPPO_ML_REGISTRY_H_
#define HYPPO_ML_REGISTRY_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "ml/operator.h"

namespace hyppo::ml {

/// \brief Registry of physical operator implementations, keyed by
/// fully-qualified impl name ("skl.StandardScaler").
///
/// The HYPPO dictionary (core/dictionary.h) is built on top of this: a
/// dictionary entry `lop.tasktype -> [impls]` points at registry entries.
class OperatorRegistry {
 public:
  OperatorRegistry() = default;
  OperatorRegistry(const OperatorRegistry&) = delete;
  OperatorRegistry& operator=(const OperatorRegistry&) = delete;

  /// Process-wide registry pre-populated with all built-in operators.
  static OperatorRegistry& Global();

  /// Registers an implementation; fails on duplicate impl names.
  Status Register(std::unique_ptr<PhysicalOperator> op);

  /// Looks up by fully-qualified impl name.
  Result<const PhysicalOperator*> Get(const std::string& impl_name) const;

  /// All implementations of one logical operator, in registration order.
  std::vector<const PhysicalOperator*> ImplsFor(
      const std::string& logical_op) const;

  /// All distinct logical operator names.
  std::vector<std::string> LogicalOps() const;

  size_t size() const { return by_name_.size(); }

 private:
  std::map<std::string, std::unique_ptr<PhysicalOperator>> by_name_;
  std::map<std::string, std::vector<const PhysicalOperator*>> by_logical_;
};

/// Registers every built-in operator implementation into `registry`.
/// Safe to call once per registry.
Status RegisterBuiltinOperators(OperatorRegistry& registry);

}  // namespace hyppo::ml

#endif  // HYPPO_ML_REGISTRY_H_
