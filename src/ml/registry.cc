#include "ml/registry.h"

namespace hyppo::ml {

OperatorRegistry& OperatorRegistry::Global() {
  // Function-local static reference that is never destroyed (no static
  // destruction order issues; see the style guide on static storage).
  static OperatorRegistry& registry = *[] {
    auto* r = new OperatorRegistry();
    RegisterBuiltinOperators(*r).Abort("RegisterBuiltinOperators");
    return r;
  }();
  return registry;
}

Status OperatorRegistry::Register(std::unique_ptr<PhysicalOperator> op) {
  const std::string name = op->impl_name();
  if (by_name_.count(name) > 0) {
    return Status::AlreadyExists("operator '" + name +
                                 "' is already registered");
  }
  by_logical_[op->logical_op()].push_back(op.get());
  by_name_.emplace(name, std::move(op));
  return Status::OK();
}

Result<const PhysicalOperator*> OperatorRegistry::Get(
    const std::string& impl_name) const {
  auto it = by_name_.find(impl_name);
  if (it == by_name_.end()) {
    return Status::NotFound("no operator implementation named '" + impl_name +
                            "'");
  }
  return it->second.get();
}

std::vector<const PhysicalOperator*> OperatorRegistry::ImplsFor(
    const std::string& logical_op) const {
  auto it = by_logical_.find(logical_op);
  if (it == by_logical_.end()) {
    return {};
  }
  return it->second;
}

std::vector<std::string> OperatorRegistry::LogicalOps() const {
  std::vector<std::string> names;
  names.reserve(by_logical_.size());
  for (const auto& [name, impls] : by_logical_) {
    names.push_back(name);
  }
  return names;
}

}  // namespace hyppo::ml
