#ifndef HYPPO_ML_OP_STATE_H_
#define HYPPO_ML_OP_STATE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace hyppo::ml {

/// \brief The fitted internal state of a physical operator — the `op-state`
/// artifact kind of the paper (e.g. a scaler's mean/std, a model's weights).
///
/// Op-states are immutable once produced by a `fit` task and shared by
/// pointer between history, storage, and downstream tasks. SizeBytes() is
/// the value the materializer charges against the storage budget; the paper
/// observes op-states are typically ~KBytes, orders of magnitude smaller
/// than train/test data, which is why they materialize so well (Fig. 5).
class OpState {
 public:
  explicit OpState(std::string logical_op)
      : logical_op_(std::move(logical_op)) {}
  virtual ~OpState() = default;

  OpState(const OpState&) = delete;
  OpState& operator=(const OpState&) = delete;

  const std::string& logical_op() const { return logical_op_; }

  /// Serialized footprint in bytes.
  virtual int64_t SizeBytes() const = 0;

 private:
  std::string logical_op_;
};

using OpStatePtr = std::shared_ptr<const OpState>;

/// \brief Op-state holding named dense vectors and scalars.
///
/// Covers scalers, imputers, PCA (components flattened), linear models
/// (weights + intercept), k-means (centroids flattened), and feature
/// selectors (kept indices).
class VectorState final : public OpState {
 public:
  explicit VectorState(std::string logical_op)
      : OpState(std::move(logical_op)) {}

  std::map<std::string, std::vector<double>> vectors;
  std::map<std::string, double> scalars;

  const std::vector<double>& vec(const std::string& key) const {
    static const std::vector<double> kEmpty;
    auto it = vectors.find(key);
    return it == vectors.end() ? kEmpty : it->second;
  }
  double scalar(const std::string& key, double fallback = 0.0) const {
    auto it = scalars.find(key);
    return it == scalars.end() ? fallback : it->second;
  }

  int64_t SizeBytes() const override;
};

/// \brief A single decision tree in flattened array form.
///
/// Node i: feature[i] < 0 marks a leaf with prediction value[i]; otherwise
/// the node splits on feature[i] at threshold[i] with children left[i] and
/// right[i].
struct FlatTree {
  std::vector<int32_t> feature;
  std::vector<double> threshold;
  std::vector<int32_t> left;
  std::vector<int32_t> right;
  std::vector<double> value;

  int64_t SizeBytes() const {
    return static_cast<int64_t>(feature.size() * (4 + 8 + 4 + 4 + 8));
  }
  /// Routes one feature row (size >= max feature index) to a leaf value.
  double Predict(const double* row) const;
};

/// \brief Op-state of a single decision tree.
class TreeState final : public OpState {
 public:
  explicit TreeState(std::string logical_op)
      : OpState(std::move(logical_op)) {}

  FlatTree tree;
  bool is_classifier = false;

  int64_t SizeBytes() const override { return 16 + tree.SizeBytes(); }
};

/// \brief Op-state of tree ensembles (random forests, gradient boosting).
class ForestState final : public OpState {
 public:
  explicit ForestState(std::string logical_op)
      : OpState(std::move(logical_op)) {}

  std::vector<FlatTree> trees;
  /// Per-tree multiplier (1/n for forests, learning rate for boosting).
  std::vector<double> tree_weights;
  double base_prediction = 0.0;
  bool is_classifier = false;

  int64_t SizeBytes() const override;
};

/// \brief Op-state of model ensembles (voting/stacking): references the
/// base model states plus meta-learner weights.
class EnsembleState final : public OpState {
 public:
  explicit EnsembleState(std::string logical_op)
      : OpState(std::move(logical_op)) {}

  /// Base estimators, in order.
  std::vector<OpStatePtr> base_states;
  /// Logical ops of the base estimators (needed to dispatch predict).
  std::vector<std::string> base_logical_ops;
  /// Physical impl names of the base estimators.
  std::vector<std::string> base_impls;
  /// Meta weights: voting uses uniform weights, stacking learns them.
  std::vector<double> meta_weights;
  double meta_intercept = 0.0;

  int64_t SizeBytes() const override;
};

}  // namespace hyppo::ml

#endif  // HYPPO_ML_OP_STATE_H_
