#ifndef HYPPO_ML_CONFIG_H_
#define HYPPO_ML_CONFIG_H_

#include <cstdint>
#include <initializer_list>
#include <map>
#include <string>
#include <utility>

namespace hyppo::ml {

/// \brief Hyperparameter configuration of an operator (paper §III-A).
///
/// Keys map to string values; typed getters parse on access. The canonical
/// serialization (sorted `k=v` pairs) participates in artifact naming, so
/// two tasks with different configurations never collide as equivalent.
class Config {
 public:
  Config() = default;
  Config(std::initializer_list<std::pair<const std::string, std::string>> kv)
      : values_(kv) {}

  bool Has(const std::string& key) const { return values_.count(key) > 0; }

  /// Returns the raw string value or `fallback` when absent.
  std::string GetString(const std::string& key,
                        const std::string& fallback = "") const;

  /// Returns the value parsed as double, or `fallback` when absent or
  /// unparsable.
  double GetDouble(const std::string& key, double fallback) const;

  /// Returns the value parsed as int64, or `fallback`.
  int64_t GetInt(const std::string& key, int64_t fallback) const;

  /// Returns the value parsed as bool ("true"/"1"), or `fallback`.
  bool GetBool(const std::string& key, bool fallback) const;

  void Set(const std::string& key, std::string value) {
    values_[key] = std::move(value);
  }
  void SetDouble(const std::string& key, double value);
  void SetInt(const std::string& key, int64_t value);

  bool empty() const { return values_.empty(); }
  size_t size() const { return values_.size(); }
  const std::map<std::string, std::string>& values() const { return values_; }

  /// Canonical "k1=v1,k2=v2" form (keys sorted by map order); used in
  /// artifact naming and debugging.
  std::string ToString() const;

  bool operator==(const Config& other) const {
    return values_ == other.values_;
  }

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace hyppo::ml

#endif  // HYPPO_ML_CONFIG_H_
