#ifndef HYPPO_BASELINES_COLLAB_E_H_
#define HYPPO_BASELINES_COLLAB_E_H_

#include <cstdint>

#include "common/result.h"
#include "core/optimizer.h"

namespace hyppo::baselines {

/// \brief COLLAB-E (paper §V-B5): the exhaustive equivalence-aware
/// baseline of the scalability study. For each combination of
/// alternatives — one compute hyperedge chosen per artifact — it builds
/// the induced DAG and solves optimal reuse on it, returning the best
/// plan over all combinations.
///
/// Exponential in the number of artifacts with alternatives (O(m^n), the
/// curve of Fig. 10); per-DAG reuse uses the exact min-cut solver, so the
/// returned plan is optimal under equivalences, matching what the HYPPO
/// variants find.
struct CollabEStats {
  int64_t combinations = 0;
  int64_t feasible = 0;
};

Result<core::Plan> CollabEOptimize(const core::Augmentation& aug,
                                   int64_t max_combinations = 100'000'000,
                                   CollabEStats* stats = nullptr);

}  // namespace hyppo::baselines

#endif  // HYPPO_BASELINES_COLLAB_E_H_
