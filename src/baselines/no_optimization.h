#ifndef HYPPO_BASELINES_NO_OPTIMIZATION_H_
#define HYPPO_BASELINES_NO_OPTIMIZATION_H_

#include <string>

#include "core/method.h"

namespace hyppo::baselines {

/// \brief The paper's straw man: executes every pipeline exactly as
/// written — no reuse, no materialization, no equivalences.
class NoOptimizationMethod final : public core::Method {
 public:
  explicit NoOptimizationMethod(core::Runtime* runtime)
      : core::Method(runtime) {}

  std::string name() const override { return "NoOptimization"; }

  Result<Planned> PlanPipeline(const core::Pipeline& pipeline) override;

  Status AfterExecution(const core::Pipeline& /*pipeline*/,
                        const Planned& /*planned*/,
                        const core::Runtime::ExecutionRecord& /*record*/)
      override {
    return Status::OK();  // never materializes
  }
};

}  // namespace hyppo::baselines

#endif  // HYPPO_BASELINES_NO_OPTIMIZATION_H_
