#include "baselines/binary_energy.h"

#include "baselines/flow.h"

namespace hyppo::baselines {

BinaryEnergy::BinaryEnergy(int32_t num_variables)
    : num_variables_(num_variables),
      unary_(static_cast<size_t>(num_variables)) {}

void BinaryEnergy::AddUnaryIfOne(int32_t v, double cost) {
  unary_[static_cast<size_t>(v)].if_one += cost;
}

void BinaryEnergy::AddUnaryIfZero(int32_t v, double cost) {
  unary_[static_cast<size_t>(v)].if_zero += cost;
}

void BinaryEnergy::AddPairwiseOneZero(int32_t a, int32_t b, double cost) {
  pairwise_.push_back(Pairwise{a, b, cost});
}

Result<BinaryEnergy::Solution> BinaryEnergy::Minimize() {
  // Graph layout: node 0 = source (label 1 side), node 1 = sink (label 0
  // side), variable v -> node v + 2.
  const int32_t source = 0;
  const int32_t sink = 1;
  MaxFlow flow(num_variables_ + 2);
  for (int32_t v = 0; v < num_variables_; ++v) {
    const Unary& u = unary_[static_cast<size_t>(v)];
    if (u.if_one > 0.0) {
      // Paying when labelled 1 == edge to sink is cut when v is on the
      // source side.
      flow.AddEdge(v + 2, sink, u.if_one);
    }
    if (u.if_zero > 0.0) {
      flow.AddEdge(source, v + 2, u.if_zero);
    }
  }
  for (const Pairwise& p : pairwise_) {
    if (p.cost > 0.0) {
      // Cut when a ∈ source side (1) and b ∈ sink side (0).
      flow.AddEdge(p.a + 2, p.b + 2, p.cost);
    }
  }
  const double energy = flow.Compute(source, sink);
  if (energy >= kHardConstraint / 2) {
    return Status::FailedPrecondition(
        "binary energy has no labeling satisfying the hard constraints");
  }
  const std::vector<bool> reachable = flow.SourceSide(source);
  Solution solution;
  solution.energy = energy;
  solution.labels.resize(static_cast<size_t>(num_variables_));
  for (int32_t v = 0; v < num_variables_; ++v) {
    solution.labels[static_cast<size_t>(v)] =
        reachable[static_cast<size_t>(v + 2)];
  }
  return solution;
}

}  // namespace hyppo::baselines
