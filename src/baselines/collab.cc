#include "baselines/collab.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <set>

#include "baselines/dag_reuse.h"
#include "common/clock.h"
#include "core/materializer.h"
#include "hypergraph/algorithms.h"

namespace hyppo::baselines {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

Result<core::Plan> CollabMethod::LinearReuse(
    const core::Augmentation& aug, const std::vector<NodeId>& targets) {
  const Hypergraph& graph = aug.graph.hypergraph();
  const NodeId source = aug.graph.source();
  const std::vector<EdgeId> chosen = OriginalDerivations(aug);
  const std::vector<EdgeId> loads = LoadEdges(aug);

  // Forward pass in B-topological order over the original-derivation
  // edges: each node's cost-to-obtain is the min of loading it and
  // computing it from its (already finalized) inputs. The Σ over inputs
  // double-counts shared sub-derivations — Collab's documented
  // suboptimality.
  std::vector<EdgeId> original_edges;
  for (NodeId v = 1; v < graph.num_nodes(); ++v) {
    if (chosen[static_cast<size_t>(v)] != kInvalidEdge) {
      original_edges.push_back(chosen[static_cast<size_t>(v)]);
    }
    if (loads[static_cast<size_t>(v)] != kInvalidEdge) {
      original_edges.push_back(loads[static_cast<size_t>(v)]);
    }
  }
  std::sort(original_edges.begin(), original_edges.end());
  original_edges.erase(
      std::unique(original_edges.begin(), original_edges.end()),
      original_edges.end());
  HYPPO_ASSIGN_OR_RETURN(
      std::vector<EdgeId> order,
      BTopologicalEdgeOrder(graph, original_edges, {source}));

  std::vector<double> cost(static_cast<size_t>(graph.num_nodes()), kInf);
  // pick[v]: the edge the backward pass should follow for v.
  std::vector<EdgeId> pick(static_cast<size_t>(graph.num_nodes()),
                           kInvalidEdge);
  cost[static_cast<size_t>(source)] = 0.0;
  for (EdgeId e : order) {
    double tail_sum = 0.0;
    for (NodeId u : graph.edge(e).tail) {
      if (u == source) {
        continue;
      }
      if (cost[static_cast<size_t>(u)] == kInf) {
        tail_sum = kInf;
        break;
      }
      tail_sum += cost[static_cast<size_t>(u)];
    }
    if (tail_sum == kInf) {
      continue;
    }
    const double through =
        aug.edge_weight[static_cast<size_t>(e)] + tail_sum;
    for (NodeId h : graph.edge(e).head) {
      if (through < cost[static_cast<size_t>(h)]) {
        cost[static_cast<size_t>(h)] = through;
        pick[static_cast<size_t>(h)] = e;
      }
    }
  }

  // Backward extraction from the targets.
  core::Plan plan;
  std::vector<bool> in_plan(static_cast<size_t>(graph.num_edge_slots()),
                            false);
  std::vector<bool> visited(static_cast<size_t>(graph.num_nodes()), false);
  std::deque<NodeId> queue;
  for (NodeId t : targets) {
    if (cost[static_cast<size_t>(t)] == kInf) {
      return Status::FailedPrecondition(
          "collab reuse: a target cannot be derived");
    }
    if (!visited[static_cast<size_t>(t)]) {
      visited[static_cast<size_t>(t)] = true;
      queue.push_back(t);
    }
  }
  while (!queue.empty()) {
    const NodeId v = queue.front();
    queue.pop_front();
    const EdgeId e = pick[static_cast<size_t>(v)];
    if (e == kInvalidEdge) {
      return Status::Internal("collab reuse: missing derivation pick");
    }
    if (!in_plan[static_cast<size_t>(e)]) {
      in_plan[static_cast<size_t>(e)] = true;
      plan.edges.push_back(e);
      plan.cost += aug.edge_weight[static_cast<size_t>(e)];
      plan.seconds += aug.edge_seconds[static_cast<size_t>(e)];
    }
    for (NodeId u : graph.edge(e).tail) {
      if (u != source && !visited[static_cast<size_t>(u)]) {
        visited[static_cast<size_t>(u)] = true;
        queue.push_back(u);
      }
    }
  }
  return plan;
}

Result<core::Method::Planned> CollabMethod::PlanPipeline(
    const core::Pipeline& pipeline) {
  WallClock clock;
  Stopwatch stopwatch(clock);
  core::Augmenter::Options options;
  options.use_equivalences = false;
  options.use_history = false;
  options.use_materialized = true;
  options.objective = runtime_->options().objective;
  HYPPO_ASSIGN_OR_RETURN(
      core::Augmentation aug,
      runtime_->augmenter().Augment(pipeline, runtime_->history(), options));
  HYPPO_ASSIGN_OR_RETURN(core::Plan plan, LinearReuse(aug, aug.targets));
  Planned planned;
  planned.aug = std::move(aug);
  planned.plan = std::move(plan);
  planned.optimize_seconds = stopwatch.Elapsed();
  return planned;
}

Result<core::Method::Planned> CollabMethod::PlanRetrieval(
    const std::vector<std::string>& artifact_names) {
  WallClock clock;
  Stopwatch stopwatch(clock);
  core::Augmenter::Options options;
  options.use_equivalences = false;
  options.use_materialized = true;
  options.objective = runtime_->options().objective;
  HYPPO_ASSIGN_OR_RETURN(core::Augmentation aug,
                         runtime_->augmenter().AugmentForRetrieval(
                             runtime_->history(), artifact_names, options));
  HYPPO_ASSIGN_OR_RETURN(core::Plan plan, LinearReuse(aug, aug.targets));
  Planned planned;
  planned.aug = std::move(aug);
  planned.plan = std::move(plan);
  planned.optimize_seconds = stopwatch.Elapsed();
  return planned;
}

Status CollabMethod::AfterExecution(
    const core::Pipeline& /*pipeline*/, const Planned& /*planned*/,
    const core::Runtime::ExecutionRecord& record) {
  core::History& history = runtime_->history();
  const storage::StorageTier local = storage::StorageTier::Local();
  // Experiment-graph-wide candidates: everything materialized already plus
  // everything whose payload is currently available.
  struct Candidate {
    NodeId node;
    double utility;
    int64_t size;
  };
  std::set<std::string> storable;
  for (const auto& [name, payload] : record.payloads_by_name) {
    storable.insert(name);
  }
  // Collab's experiment-graph utility: recreation cost x frequency per
  // byte. Recreation cost is the chain estimate over the experiment
  // graph, like HYPPO's (the policies differ in the load-time vs size
  // normalization and the plan-locality weighting HYPPO adds).
  const core::Materializer scorer(&runtime_->augmenter());
  const std::vector<double> recompute = scorer.RecomputeCosts(history);
  std::vector<Candidate> candidates;
  for (NodeId v = 1; v < history.graph().num_artifacts(); ++v) {
    const core::ArtifactInfo& info = history.graph().artifact(v);
    if (info.kind == core::ArtifactKind::kRaw ||
        info.kind == core::ArtifactKind::kSource || info.size_bytes <= 0) {
      continue;
    }
    const bool already = history.IsMaterialized(v);
    if (!already && storable.count(info.name) == 0) {
      continue;
    }
    const core::ArtifactRecord& rec = history.record(v);
    double compute = recompute[static_cast<size_t>(v)];
    if (std::isinf(compute) || compute <= 0.0) {
      compute = rec.compute_seconds;
    }
    if (compute <= 0.0) {
      continue;
    }
    const double load = local.LoadSeconds(info.size_bytes);
    if (compute <= load) {
      continue;  // loading is no better than recomputing
    }
    const double freq =
        std::max<double>(1.0, static_cast<double>(rec.access_count));
    candidates.push_back(Candidate{
        v, freq * compute / static_cast<double>(info.size_bytes),
        info.size_bytes});
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.utility != b.utility) {
                return a.utility > b.utility;
              }
              return a.node < b.node;
            });
  core::Materializer::Decision decision;
  int64_t used = 0;
  const int64_t budget = runtime_->options().storage_budget_bytes;
  std::set<NodeId> selected;
  for (const Candidate& c : candidates) {
    if (used + c.size > budget) {
      continue;
    }
    selected.insert(c.node);
    used += c.size;
  }
  for (NodeId v : history.MaterializedArtifacts()) {
    if (selected.count(v) == 0) {
      decision.to_evict.push_back(v);
    }
  }
  for (NodeId v : selected) {
    if (!history.IsMaterialized(v)) {
      decision.to_store.push_back(v);
    }
  }
  decision.selected_bytes = used;
  std::map<std::string, core::ArtifactPayload> available(
      record.payloads_by_name.begin(), record.payloads_by_name.end());
  return core::Materializer::Apply(history, runtime_->store(), decision,
                                   available);
}

}  // namespace hyppo::baselines
