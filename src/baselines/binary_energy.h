#ifndef HYPPO_BASELINES_BINARY_ENERGY_H_
#define HYPPO_BASELINES_BINARY_ENERGY_H_

#include <cstdint>
#include <vector>

#include "common/result.h"

namespace hyppo::baselines {

/// \brief Exact minimization of submodular binary pairwise energies via
/// s-t minimum cut (Kolmogorov–Zabih construction).
///
/// Energy over binary variables x_i ∈ {0,1}:
///   E(x) = Σ_i  θ_i(x_i)  +  Σ_{ij} θ_ij(x_i, x_j)
/// where every pairwise term here has the restricted form
/// θ_ij(1, 0) = c ≥ 0 and 0 otherwise — which is submodular and therefore
/// graph-representable. This is exactly the structure of Helix's
/// project-selection reuse problem: "compute x ⟹ inputs available" and
/// "available but not computed ⟹ pay the load cost".
class BinaryEnergy {
 public:
  explicit BinaryEnergy(int32_t num_variables);

  /// Charges `cost` when variable `v` takes label 1.
  void AddUnaryIfOne(int32_t v, double cost);
  /// Charges `cost` when variable `v` takes label 0.
  void AddUnaryIfZero(int32_t v, double cost);
  /// Charges `cost` when `a` is 1 and `b` is 0 (cost ≥ 0; use
  /// kHardConstraint for implications).
  void AddPairwiseOneZero(int32_t a, int32_t b, double cost);

  /// Effectively-infinite capacity for hard constraints.
  static constexpr double kHardConstraint = 1e18;

  struct Solution {
    std::vector<bool> labels;  // true = 1
    double energy = 0.0;
  };

  /// Solves for the labeling of minimum energy. Returns
  /// FailedPrecondition if even the optimum violates a hard constraint.
  Result<Solution> Minimize();

 private:
  int32_t num_variables_;
  struct Unary {
    double if_one = 0.0;
    double if_zero = 0.0;
  };
  struct Pairwise {
    int32_t a;
    int32_t b;
    double cost;
  };
  std::vector<Unary> unary_;
  std::vector<Pairwise> pairwise_;
};

}  // namespace hyppo::baselines

#endif  // HYPPO_BASELINES_BINARY_ENERGY_H_
