#ifndef HYPPO_BASELINES_HELIX_H_
#define HYPPO_BASELINES_HELIX_H_

#include <string>

#include "core/method.h"

namespace hyppo::baselines {

/// \brief Reimplementation of Helix's policies (paper §II and §V-A):
///
///  - Reuse: per pipeline, the *optimal* load-vs-compute decision over the
///    pipeline DAG with materialized identical artifacts, solved exactly
///    via project selection / min-cut (baselines/dag_reuse.h). No
///    equivalences: only identical artifacts are reused.
///  - Materialization: restricted to the artifacts of the immediately
///    preceding pipeline (Helix "does not keep history beyond the
///    previous iteration"); an artifact is worth storing when recomputing
///    it costs more than twice its load time, greedily under the budget.
class HelixMethod final : public core::Method {
 public:
  explicit HelixMethod(core::Runtime* runtime) : core::Method(runtime) {}

  std::string name() const override { return "Helix"; }

  Result<Planned> PlanPipeline(const core::Pipeline& pipeline) override;
  Status AfterExecution(const core::Pipeline& pipeline,
                        const Planned& planned,
                        const core::Runtime::ExecutionRecord& record) override;
};

}  // namespace hyppo::baselines

#endif  // HYPPO_BASELINES_HELIX_H_
