#include "baselines/sharing.h"

#include <deque>

#include "baselines/dag_reuse.h"
#include "common/clock.h"

namespace hyppo::baselines {

Result<core::Method::Planned> SharingMethod::PlanPipeline(
    const core::Pipeline& pipeline) {
  // One pipeline at a time: identical to NoOptimization (the pipeline
  // hypergraph already shares identical subexpressions by construction).
  WallClock clock;
  Stopwatch stopwatch(clock);
  core::Augmenter::Options options;
  options.use_equivalences = false;
  options.use_history = false;
  options.use_materialized = false;
  options.objective = runtime_->options().objective;
  HYPPO_ASSIGN_OR_RETURN(
      core::Augmentation aug,
      runtime_->augmenter().Augment(pipeline, runtime_->history(), options));
  Planned planned;
  planned.plan.edges = aug.graph.hypergraph().LiveEdges();
  for (EdgeId e : planned.plan.edges) {
    planned.plan.cost += aug.edge_weight[static_cast<size_t>(e)];
    planned.plan.seconds += aug.edge_seconds[static_cast<size_t>(e)];
  }
  planned.aug = std::move(aug);
  planned.optimize_seconds = stopwatch.Elapsed();
  return planned;
}

Result<core::Method::Planned> SharingMethod::PlanRetrieval(
    const std::vector<std::string>& artifact_names) {
  WallClock clock;
  Stopwatch stopwatch(clock);
  core::Augmenter::Options options;
  options.use_equivalences = false;
  options.use_materialized = false;  // nothing is ever stored
  options.objective = runtime_->options().objective;
  HYPPO_ASSIGN_OR_RETURN(core::Augmentation aug,
                         runtime_->augmenter().AugmentForRetrieval(
                             runtime_->history(), artifact_names, options));
  // Recompute every requested artifact through its original derivation,
  // deduplicating shared tasks (the essence of subexpression sharing).
  const Hypergraph& graph = aug.graph.hypergraph();
  const std::vector<EdgeId> chosen = OriginalDerivations(aug);
  const std::vector<EdgeId> loads = LoadEdges(aug);
  Planned planned;
  std::vector<bool> needed(static_cast<size_t>(graph.num_nodes()), false);
  std::vector<bool> in_plan(static_cast<size_t>(graph.num_edge_slots()),
                            false);
  std::deque<NodeId> queue;
  for (NodeId t : aug.targets) {
    if (!needed[static_cast<size_t>(t)]) {
      needed[static_cast<size_t>(t)] = true;
      queue.push_back(t);
    }
  }
  while (!queue.empty()) {
    const NodeId v = queue.front();
    queue.pop_front();
    EdgeId e = chosen[static_cast<size_t>(v)];
    if (e == kInvalidEdge) {
      e = loads[static_cast<size_t>(v)];  // raw data: load from source
    }
    if (e == kInvalidEdge) {
      return Status::FailedPrecondition(
          "sharing: artifact has no recorded derivation");
    }
    if (in_plan[static_cast<size_t>(e)]) {
      continue;
    }
    in_plan[static_cast<size_t>(e)] = true;
    planned.plan.edges.push_back(e);
    planned.plan.cost += aug.edge_weight[static_cast<size_t>(e)];
    planned.plan.seconds += aug.edge_seconds[static_cast<size_t>(e)];
    for (NodeId u : graph.edge(e).tail) {
      if (u != aug.graph.source() && !needed[static_cast<size_t>(u)]) {
        needed[static_cast<size_t>(u)] = true;
        queue.push_back(u);
      }
    }
  }
  planned.aug = std::move(aug);
  planned.optimize_seconds = stopwatch.Elapsed();
  return planned;
}

}  // namespace hyppo::baselines
