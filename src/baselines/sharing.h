#ifndef HYPPO_BASELINES_SHARING_H_
#define HYPPO_BASELINES_SHARING_H_

#include <string>
#include <vector>

#include "core/method.h"

namespace hyppo::baselines {

/// \brief Common-subexpression-elimination baseline: within one request,
/// identical tasks execute once; across requests nothing is kept (no
/// materialization, no equivalences).
///
/// For sequential single-pipeline execution this coincides with
/// NoOptimization (as the paper notes for scenario 1); for retrieval
/// requests over k artifacts (scenario 2) it executes the union of the
/// artifacts' original derivations, sharing common prefixes.
class SharingMethod final : public core::Method {
 public:
  explicit SharingMethod(core::Runtime* runtime) : core::Method(runtime) {}

  std::string name() const override { return "Sharing"; }

  Result<Planned> PlanPipeline(const core::Pipeline& pipeline) override;

  Result<Planned> PlanRetrieval(
      const std::vector<std::string>& artifact_names) override;

  Status AfterExecution(const core::Pipeline& /*pipeline*/,
                        const Planned& /*planned*/,
                        const core::Runtime::ExecutionRecord& /*record*/)
      override {
    return Status::OK();  // never materializes
  }
};

}  // namespace hyppo::baselines

#endif  // HYPPO_BASELINES_SHARING_H_
