#ifndef HYPPO_BASELINES_COLLAB_H_
#define HYPPO_BASELINES_COLLAB_H_

#include <string>
#include <vector>

#include "core/method.h"

namespace hyppo::baselines {

/// \brief Reimplementation of Collab's policies (paper §II and §V-A):
///
///  - Reuse: a linear-time heuristic — a single forward pass computes
///    cost-to-obtain(v) = min(load(v), task(v) + Σ cost-to-obtain(inputs))
///    in topological order, then a backward pass extracts the plan.
///    Summing shared sub-derivation costs over-counts, so the result can
///    be suboptimal ("good enough plans"), unlike Helix's exact min-cut.
///  - Materialization: experiment-graph wide — candidates from *all*
///    prior pipelines, scored by utility freq × recompute / size, greedy
///    under the budget.
class CollabMethod final : public core::Method {
 public:
  explicit CollabMethod(core::Runtime* runtime) : core::Method(runtime) {}

  std::string name() const override { return "Collab"; }

  Result<Planned> PlanPipeline(const core::Pipeline& pipeline) override;
  Result<Planned> PlanRetrieval(
      const std::vector<std::string>& artifact_names) override;
  Status AfterExecution(const core::Pipeline& pipeline,
                        const Planned& planned,
                        const core::Runtime::ExecutionRecord& record) override;

  /// The linear reuse heuristic over an augmentation restricted to the
  /// original derivation per artifact (exposed for tests and for the
  /// optimization-overhead bench, Fig. 9(b)).
  static Result<core::Plan> LinearReuse(const core::Augmentation& aug,
                                        const std::vector<NodeId>& targets);
};

}  // namespace hyppo::baselines

#endif  // HYPPO_BASELINES_COLLAB_H_
