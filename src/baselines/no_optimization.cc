#include "baselines/no_optimization.h"

#include "common/clock.h"

namespace hyppo::baselines {

Result<core::Method::Planned> NoOptimizationMethod::PlanPipeline(
    const core::Pipeline& pipeline) {
  WallClock clock;
  Stopwatch stopwatch(clock);
  core::Augmenter::Options options;
  options.use_equivalences = false;
  options.use_history = false;
  options.use_materialized = false;
  options.objective = runtime_->options().objective;
  HYPPO_ASSIGN_OR_RETURN(
      core::Augmentation aug,
      runtime_->augmenter().Augment(pipeline, runtime_->history(), options));
  Planned planned;
  planned.plan.edges = aug.graph.hypergraph().LiveEdges();
  for (EdgeId e : planned.plan.edges) {
    planned.plan.cost += aug.edge_weight[static_cast<size_t>(e)];
    planned.plan.seconds += aug.edge_seconds[static_cast<size_t>(e)];
  }
  planned.aug = std::move(aug);
  planned.optimize_seconds = stopwatch.Elapsed();
  return planned;
}

}  // namespace hyppo::baselines
