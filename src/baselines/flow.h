#ifndef HYPPO_BASELINES_FLOW_H_
#define HYPPO_BASELINES_FLOW_H_

#include <cstdint>
#include <vector>

namespace hyppo::baselines {

/// \brief Dinic's max-flow, the substrate of Helix's project-selection
/// reuse optimizer (Helix reduces optimal reuse to MAX-FLOW / min-cut;
/// see baselines/helix.h and binary_energy.h).
class MaxFlow {
 public:
  explicit MaxFlow(int32_t num_nodes);

  /// Adds a directed edge with the given capacity (plus a zero-capacity
  /// reverse edge). Returns the edge index.
  int32_t AddEdge(int32_t from, int32_t to, double capacity);

  /// Computes the maximum s-t flow.
  double Compute(int32_t source, int32_t sink);

  /// After Compute: nodes reachable from the source in the residual graph
  /// (the source side of a minimum cut).
  std::vector<bool> SourceSide(int32_t source) const;

  int32_t num_nodes() const { return static_cast<int32_t>(head_.size()); }

 private:
  struct Edge {
    int32_t to;
    double capacity;
    int32_t reverse;  // index of the reverse edge in adjacency_[to]
  };

  bool Bfs(int32_t source, int32_t sink);
  double Dfs(int32_t node, int32_t sink, double pushed);

  std::vector<std::vector<Edge>> adjacency_;
  std::vector<int32_t> head_;   // per-node DFS iterator
  std::vector<int32_t> level_;  // BFS levels
};

}  // namespace hyppo::baselines

#endif  // HYPPO_BASELINES_FLOW_H_
