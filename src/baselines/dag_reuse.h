#ifndef HYPPO_BASELINES_DAG_REUSE_H_
#define HYPPO_BASELINES_DAG_REUSE_H_

#include <vector>

#include "common/result.h"
#include "core/optimizer.h"

namespace hyppo::baselines {

/// \brief Exact optimal load-vs-compute ("reuse") decisions on a DAG —
/// the polynomial special case Helix solves via project selection / max
/// flow (paper §II: "Helix tackles the optimal reuse plan as a solvable
/// project selection problem").
///
/// The graph is an augmentation in which every non-source artifact has at
/// most one *chosen* compute hyperedge (`chosen_compute[v]`, kInvalidEdge
/// when the node can only be loaded) plus optionally a 'load' hyperedge.
/// The solver chooses, for every artifact needed by `targets`, whether to
/// load it (paying its load weight) or compute it (paying the task weight
/// once, and requiring all task inputs to be available), pruning
/// un-needed ancestors. Encoded as a submodular binary energy and solved
/// with a single min-cut (see binary_energy.h).
Result<core::Plan> SolveDagReuse(const core::Augmentation& aug,
                                 const std::vector<EdgeId>& chosen_compute,
                                 const std::vector<NodeId>& targets);

/// Returns, per node, the first (lowest edge id) non-load incoming edge —
/// the "original derivation" selection used by the baselines, which treat
/// parallel equivalent derivations as invisible.
std::vector<EdgeId> OriginalDerivations(const core::Augmentation& aug);

/// Returns, per node, its 'load' hyperedge if present (kInvalidEdge
/// otherwise).
std::vector<EdgeId> LoadEdges(const core::Augmentation& aug);

}  // namespace hyppo::baselines

#endif  // HYPPO_BASELINES_DAG_REUSE_H_
