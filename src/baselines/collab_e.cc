#include "baselines/collab_e.h"

#include <vector>

#include "baselines/dag_reuse.h"
#include "core/task.h"

namespace hyppo::baselines {

Result<core::Plan> CollabEOptimize(const core::Augmentation& aug,
                                   int64_t max_combinations,
                                   CollabEStats* stats) {
  const Hypergraph& graph = aug.graph.hypergraph();
  // Per node: the list of compute alternatives.
  std::vector<std::vector<EdgeId>> alternatives(
      static_cast<size_t>(graph.num_nodes()));
  std::vector<NodeId> varying;  // nodes with >= 1 compute alternative
  for (NodeId v = 1; v < graph.num_nodes(); ++v) {
    for (EdgeId e : graph.bstar(v)) {
      if (aug.graph.task(e).type != core::TaskType::kLoad) {
        alternatives[static_cast<size_t>(v)].push_back(e);
      }
    }
    if (!alternatives[static_cast<size_t>(v)].empty()) {
      varying.push_back(v);
    }
  }
  CollabEStats local;
  CollabEStats& st = stats != nullptr ? *stats : local;
  std::vector<size_t> index(varying.size(), 0);
  std::vector<EdgeId> chosen(static_cast<size_t>(graph.num_nodes()),
                             kInvalidEdge);
  core::Plan best;
  bool found = false;
  while (true) {
    if (++st.combinations > max_combinations) {
      return Status::ResourceExhausted(
          "COLLAB-E exceeded the combination budget");
    }
    for (size_t i = 0; i < varying.size(); ++i) {
      chosen[static_cast<size_t>(varying[i])] =
          alternatives[static_cast<size_t>(varying[i])][index[i]];
    }
    Result<core::Plan> plan = SolveDagReuse(aug, chosen, aug.targets);
    if (plan.ok()) {
      ++st.feasible;
      if (!found || plan->cost < best.cost) {
        best = std::move(*plan);
        found = true;
      }
    }
    // Advance the odometer over alternative combinations.
    size_t pos = 0;
    while (pos < varying.size() &&
           ++index[pos] ==
               alternatives[static_cast<size_t>(varying[pos])].size()) {
      index[pos] = 0;
      ++pos;
    }
    if (pos == varying.size()) {
      break;
    }
    if (varying.empty()) {
      break;
    }
  }
  if (!found) {
    return Status::FailedPrecondition(
        "COLLAB-E found no feasible alternative combination");
  }
  return best;
}

}  // namespace hyppo::baselines
