#include "baselines/dag_reuse.h"

#include <map>

#include "baselines/binary_energy.h"
#include "core/task.h"

namespace hyppo::baselines {

using core::ArtifactKind;
using core::Augmentation;
using core::Plan;
using core::TaskType;

std::vector<EdgeId> OriginalDerivations(const Augmentation& aug) {
  const Hypergraph& graph = aug.graph.hypergraph();
  std::vector<EdgeId> chosen(static_cast<size_t>(graph.num_nodes()),
                             kInvalidEdge);
  for (NodeId v = 1; v < graph.num_nodes(); ++v) {
    for (EdgeId e : graph.bstar(v)) {
      if (aug.graph.task(e).type == TaskType::kLoad) {
        continue;
      }
      if (chosen[static_cast<size_t>(v)] == kInvalidEdge ||
          e < chosen[static_cast<size_t>(v)]) {
        chosen[static_cast<size_t>(v)] = e;
      }
    }
  }
  return chosen;
}

std::vector<EdgeId> LoadEdges(const Augmentation& aug) {
  const Hypergraph& graph = aug.graph.hypergraph();
  std::vector<EdgeId> loads(static_cast<size_t>(graph.num_nodes()),
                            kInvalidEdge);
  for (NodeId v = 1; v < graph.num_nodes(); ++v) {
    for (EdgeId e : graph.bstar(v)) {
      if (aug.graph.task(e).type == TaskType::kLoad) {
        loads[static_cast<size_t>(v)] = e;
        break;
      }
    }
  }
  return loads;
}

Result<Plan> SolveDagReuse(const Augmentation& aug,
                           const std::vector<EdgeId>& chosen_compute,
                           const std::vector<NodeId>& targets) {
  const Hypergraph& graph = aug.graph.hypergraph();
  const NodeId source = aug.graph.source();
  const std::vector<EdgeId> loads = LoadEdges(aug);

  // Variable layout: avail_v per non-source node, then comp_e per distinct
  // chosen compute edge.
  std::map<EdgeId, int32_t> comp_var;
  for (NodeId v = 1; v < graph.num_nodes(); ++v) {
    const EdgeId e = chosen_compute[static_cast<size_t>(v)];
    if (e != kInvalidEdge && comp_var.count(e) == 0) {
      const int32_t index =
          graph.num_nodes() - 1 + static_cast<int32_t>(comp_var.size());
      comp_var.emplace(e, index);
    }
  }
  auto avail_var = [](NodeId v) { return static_cast<int32_t>(v) - 1; };

  BinaryEnergy energy(graph.num_nodes() - 1 +
                      static_cast<int32_t>(comp_var.size()));
  // Targets must be available.
  for (NodeId t : targets) {
    energy.AddUnaryIfZero(avail_var(t), BinaryEnergy::kHardConstraint);
  }
  // Compute costs, input-availability implications.
  for (const auto& [e, var] : comp_var) {
    energy.AddUnaryIfOne(var, aug.edge_weight[static_cast<size_t>(e)]);
    for (NodeId u : graph.edge(e).tail) {
      if (u != source) {
        energy.AddPairwiseOneZero(var, avail_var(u),
                                  BinaryEnergy::kHardConstraint);
      }
    }
  }
  // Load charges: available-but-not-computed pays the load weight
  // (infeasible when the node has no load edge).
  for (NodeId v = 1; v < graph.num_nodes(); ++v) {
    const EdgeId ce = chosen_compute[static_cast<size_t>(v)];
    const EdgeId le = loads[static_cast<size_t>(v)];
    const double load_cost =
        le != kInvalidEdge ? aug.edge_weight[static_cast<size_t>(le)]
                           : BinaryEnergy::kHardConstraint;
    if (ce == kInvalidEdge) {
      energy.AddUnaryIfOne(avail_var(v), load_cost);
    } else {
      energy.AddPairwiseOneZero(avail_var(v), comp_var.at(ce), load_cost);
    }
  }
  HYPPO_ASSIGN_OR_RETURN(BinaryEnergy::Solution solution, energy.Minimize());

  Plan plan;
  std::vector<bool> in_plan(static_cast<size_t>(graph.num_edge_slots()),
                            false);
  auto add_edge = [&](EdgeId e) {
    if (!in_plan[static_cast<size_t>(e)]) {
      in_plan[static_cast<size_t>(e)] = true;
      plan.edges.push_back(e);
      plan.cost += aug.edge_weight[static_cast<size_t>(e)];
      plan.seconds += aug.edge_seconds[static_cast<size_t>(e)];
    }
  };
  for (const auto& [e, var] : comp_var) {
    if (solution.labels[static_cast<size_t>(var)]) {
      add_edge(e);
    }
  }
  for (NodeId v = 1; v < graph.num_nodes(); ++v) {
    if (!solution.labels[static_cast<size_t>(avail_var(v))]) {
      continue;
    }
    const EdgeId ce = chosen_compute[static_cast<size_t>(v)];
    const bool computed =
        ce != kInvalidEdge && solution.labels[static_cast<size_t>(
                                  comp_var.at(ce))];
    if (!computed) {
      const EdgeId le = loads[static_cast<size_t>(v)];
      if (le == kInvalidEdge) {
        return Status::Internal(
            "reuse solver marked an unloadable artifact as loaded");
      }
      add_edge(le);
    }
  }
  return plan;
}

}  // namespace hyppo::baselines
