#include "baselines/flow.h"

#include <algorithm>
#include <deque>
#include <limits>

namespace hyppo::baselines {

namespace {
constexpr double kEps = 1e-12;
}  // namespace

MaxFlow::MaxFlow(int32_t num_nodes)
    : adjacency_(static_cast<size_t>(num_nodes)),
      head_(static_cast<size_t>(num_nodes), 0),
      level_(static_cast<size_t>(num_nodes), -1) {}

int32_t MaxFlow::AddEdge(int32_t from, int32_t to, double capacity) {
  Edge forward{to, capacity,
               static_cast<int32_t>(adjacency_[static_cast<size_t>(to)].size())};
  Edge backward{
      from, 0.0,
      static_cast<int32_t>(adjacency_[static_cast<size_t>(from)].size())};
  adjacency_[static_cast<size_t>(from)].push_back(forward);
  adjacency_[static_cast<size_t>(to)].push_back(backward);
  return static_cast<int32_t>(adjacency_[static_cast<size_t>(from)].size()) -
         1;
}

bool MaxFlow::Bfs(int32_t source, int32_t sink) {
  std::fill(level_.begin(), level_.end(), -1);
  std::deque<int32_t> queue;
  level_[static_cast<size_t>(source)] = 0;
  queue.push_back(source);
  while (!queue.empty()) {
    int32_t node = queue.front();
    queue.pop_front();
    for (const Edge& edge : adjacency_[static_cast<size_t>(node)]) {
      if (edge.capacity > kEps && level_[static_cast<size_t>(edge.to)] < 0) {
        level_[static_cast<size_t>(edge.to)] =
            level_[static_cast<size_t>(node)] + 1;
        queue.push_back(edge.to);
      }
    }
  }
  return level_[static_cast<size_t>(sink)] >= 0;
}

double MaxFlow::Dfs(int32_t node, int32_t sink, double pushed) {
  if (node == sink || pushed <= kEps) {
    return pushed;
  }
  for (int32_t& i = head_[static_cast<size_t>(node)];
       i < static_cast<int32_t>(adjacency_[static_cast<size_t>(node)].size());
       ++i) {
    Edge& edge = adjacency_[static_cast<size_t>(node)][static_cast<size_t>(i)];
    if (edge.capacity <= kEps ||
        level_[static_cast<size_t>(edge.to)] !=
            level_[static_cast<size_t>(node)] + 1) {
      continue;
    }
    const double flow = Dfs(edge.to, sink, std::min(pushed, edge.capacity));
    if (flow > kEps) {
      edge.capacity -= flow;
      adjacency_[static_cast<size_t>(edge.to)][static_cast<size_t>(
          edge.reverse)]
          .capacity += flow;
      return flow;
    }
  }
  return 0.0;
}

double MaxFlow::Compute(int32_t source, int32_t sink) {
  double total = 0.0;
  while (Bfs(source, sink)) {
    std::fill(head_.begin(), head_.end(), 0);
    while (true) {
      const double flow =
          Dfs(source, sink, std::numeric_limits<double>::infinity());
      if (flow <= kEps) {
        break;
      }
      total += flow;
    }
  }
  return total;
}

std::vector<bool> MaxFlow::SourceSide(int32_t source) const {
  std::vector<bool> reachable(adjacency_.size(), false);
  std::deque<int32_t> queue;
  reachable[static_cast<size_t>(source)] = true;
  queue.push_back(source);
  while (!queue.empty()) {
    int32_t node = queue.front();
    queue.pop_front();
    for (const Edge& edge : adjacency_[static_cast<size_t>(node)]) {
      if (edge.capacity > kEps && !reachable[static_cast<size_t>(edge.to)]) {
        reachable[static_cast<size_t>(edge.to)] = true;
        queue.push_back(edge.to);
      }
    }
  }
  return reachable;
}

}  // namespace hyppo::baselines
