#include "baselines/helix.h"

#include <algorithm>
#include <set>

#include "baselines/dag_reuse.h"
#include "common/clock.h"
#include "core/materializer.h"

namespace hyppo::baselines {

Result<core::Method::Planned> HelixMethod::PlanPipeline(
    const core::Pipeline& pipeline) {
  WallClock clock;
  Stopwatch stopwatch(clock);
  core::Augmenter::Options options;
  options.use_equivalences = false;
  options.use_history = false;      // identical reuse only, via loads
  options.use_materialized = true;  // materialized identical artifacts
  options.objective = runtime_->options().objective;
  HYPPO_ASSIGN_OR_RETURN(
      core::Augmentation aug,
      runtime_->augmenter().Augment(pipeline, runtime_->history(), options));
  const std::vector<EdgeId> chosen = OriginalDerivations(aug);
  HYPPO_ASSIGN_OR_RETURN(core::Plan plan,
                         SolveDagReuse(aug, chosen, aug.targets));
  Planned planned;
  planned.aug = std::move(aug);
  planned.plan = std::move(plan);
  planned.optimize_seconds = stopwatch.Elapsed();
  return planned;
}

Status HelixMethod::AfterExecution(
    const core::Pipeline& /*pipeline*/, const Planned& /*planned*/,
    const core::Runtime::ExecutionRecord& record) {
  core::History& history = runtime_->history();
  const storage::StorageTier local = storage::StorageTier::Local();

  // Candidates: artifacts of the just-executed pipeline only.
  struct Candidate {
    NodeId node;
    double benefit;
    int64_t size;
  };
  std::vector<Candidate> candidates;
  std::set<NodeId> current;
  for (const auto& [name, payload] : record.payloads_by_name) {
    Result<NodeId> node = history.graph().FindArtifact(name);
    if (!node.ok()) {
      continue;
    }
    current.insert(*node);
    const core::ArtifactInfo& info = history.graph().artifact(*node);
    if (info.kind == core::ArtifactKind::kRaw || info.size_bytes <= 0) {
      continue;
    }
    const double compute = history.record(*node).compute_seconds;
    const double load_store =
        local.LoadSeconds(info.size_bytes) + local.StoreSeconds(info.size_bytes);
    // Helix's heuristic: store when recomputation costs more than twice
    // the (load + store) round trip.
    if (compute > 2.0 * load_store) {
      candidates.push_back(
          Candidate{*node, compute / load_store, info.size_bytes});
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.benefit != b.benefit) {
                return a.benefit > b.benefit;
              }
              return a.node < b.node;
            });
  core::Materializer::Decision decision;
  int64_t used = 0;
  const int64_t budget = runtime_->options().storage_budget_bytes;
  std::set<NodeId> selected;
  for (const Candidate& c : candidates) {
    if (used + c.size > budget) {
      continue;
    }
    selected.insert(c.node);
    used += c.size;
  }
  // Evict everything not selected — including artifacts of older
  // pipelines (no history beyond the previous iteration).
  for (NodeId v : history.MaterializedArtifacts()) {
    if (selected.count(v) == 0) {
      decision.to_evict.push_back(v);
    }
  }
  for (NodeId v : selected) {
    if (!history.IsMaterialized(v)) {
      decision.to_store.push_back(v);
    }
  }
  decision.selected_bytes = used;
  std::map<std::string, core::ArtifactPayload> available(
      record.payloads_by_name.begin(), record.payloads_by_name.end());
  return core::Materializer::Apply(history, runtime_->store(), decision,
                                   available);
}

}  // namespace hyppo::baselines
