#ifndef HYPPO_ANALYSIS_GRAPH_CHECKS_H_
#define HYPPO_ANALYSIS_GRAPH_CHECKS_H_

#include <vector>

#include "analysis/diagnostic.h"
#include "hypergraph/hypergraph.h"

namespace hyppo::analysis {

/// \brief Structural well-formedness of a directed hypergraph
/// (paper §III-B; the invariants Hypergraph promises but never rechecks).
///
/// Checks, per edge slot and per node:
///  - `hypergraph.dangling-node`   — a tail/head id outside [0, num_nodes)
///  - `hypergraph.edge-id`         — a stored edge id disagreeing with its
///                                   slot index
///  - `hypergraph.unsorted-edge`   — tail/head not sorted and duplicate-free
///  - `hypergraph.corrupt-dead-edge` — a removed edge that kept tail nodes
///  - `hypergraph.star-missing`    — a live edge absent from the bstar/fstar
///                                   of one of its head/tail nodes
///  - `hypergraph.star-stale`      — a bstar/fstar entry pointing at a dead
///                                   edge or an edge not incident to the node
///  - `hypergraph.star-duplicate`  — the same edge twice in one star
///  - `hypergraph.live-count`      — num_edges() out of sync with the slots
///  - `hypergraph.cycle`           — a directed cycle (the history and every
///                                   augmentation must stay a DAG)
AnalysisReport CheckHypergraph(const Hypergraph& graph);

/// \brief What a plan claims to be, structurally.
///
/// `edges` is the plan's edge set, `source`/`targets` define the request it
/// answers. The optional weight vectors let the check recompute the plan's
/// claimed totals (paper §III-C5: cost(plan) = Σ w(e)).
struct PlanSpec {
  const Hypergraph* graph = nullptr;
  const std::vector<EdgeId>* edges = nullptr;
  NodeId source = kInvalidNode;
  const std::vector<NodeId>* targets = nullptr;
  /// Optional: per-edge-slot optimization weights and the plan's claimed
  /// total. Checked when `edge_weight` is non-null and large enough.
  const std::vector<double>* edge_weight = nullptr;
  double claimed_cost = 0.0;
  /// Optional: per-edge-slot duration estimates and the claimed total.
  const std::vector<double>* edge_seconds = nullptr;
  double claimed_seconds = 0.0;
  /// Relative tolerance for the cost/seconds totals.
  double cost_tolerance = 1e-6;
};

/// \brief Feasibility and cost consistency of one plan
/// (paper §III-C5 properties (a)/(b)).
///
/// Checks:
///  - `plan.dead-edge`          — a plan edge that is not live
///  - `plan.duplicate-edge`     — the same edge listed twice
///  - `plan.invalid-target`     — a target node that does not exist
///  - `plan.unsatisfied-input`  — a task whose input no earlier plan step,
///                                load edge, or source provides
///  - `plan.missing-target`     — a target the plan never derives
///  - `plan.duplicate-producer` — (warning) two plan edges producing the
///                                same artifact
///  - `plan.cost-mismatch`      — claimed cost differs from Σ edge_weight
///  - `plan.seconds-mismatch`   — claimed seconds differ from Σ edge_seconds
AnalysisReport CheckPlanStructure(const PlanSpec& spec);

/// \brief What an augmentation claims to be, structurally. Used by the
/// runtime's recovery loop to check that a degraded augmentation (dead
/// load edges dropped after storage faults) is still plannable.
struct AugmentationSpec {
  const Hypergraph* graph = nullptr;
  NodeId source = kInvalidNode;
  const std::vector<NodeId>* targets = nullptr;
  /// Optional per-edge-slot vectors; checked for sizing when non-null.
  const std::vector<double>* edge_weight = nullptr;
  const std::vector<double>* edge_seconds = nullptr;
};

/// \brief Well-formedness of a (possibly degraded) augmentation.
///
/// Checks:
///  - everything CheckHypergraph reports on the underlying hypergraph
///  - `augmentation.weight-size`         — an edge weight/seconds vector
///                                         smaller than the edge slots
///  - `augmentation.invalid-target`      — a target node that does not exist
///  - `augmentation.unreachable-target`  — a target with no B-derivation
///                                         from the source over the live
///                                         edges (re-planning is infeasible)
AnalysisReport CheckAugmentationStructure(const AugmentationSpec& spec);

}  // namespace hyppo::analysis

#endif  // HYPPO_ANALYSIS_GRAPH_CHECKS_H_
