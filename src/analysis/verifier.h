#ifndef HYPPO_ANALYSIS_VERIFIER_H_
#define HYPPO_ANALYSIS_VERIFIER_H_

#include <cstdint>

#include "analysis/diagnostic.h"
#include "analysis/graph_checks.h"
#include "core/augmenter.h"
#include "core/dictionary.h"
#include "core/graph.h"
#include "core/history.h"
#include "core/optimizer.h"
#include "storage/artifact_store.h"

namespace hyppo::analysis {

/// \brief The invariant verifier: static analysis over HYPPO's labelled
/// hypergraphs, plans, and the history catalog.
///
/// Every check returns an AnalysisReport of structured Diagnostics and
/// never mutates its input. The verifier backs three consumers: debug-mode
/// assertions in the executor and plan generator (via the cheaper
/// primitives in graph_checks.h), the `hyppo_lint` CLI, and the
/// corrupted-fixture tests. See docs/ANALYSIS.md for the invariant
/// catalog.
class Verifier {
 public:
  struct Options {
    /// Relative tolerance when recomputing plan cost totals.
    double cost_tolerance = 1e-6;
    /// Also serialize + deserialize the history and diff the result
    /// (catches encoder/decoder drift; costs one full round-trip).
    bool check_roundtrip = true;
    /// Flag redundant plan edges (plan stays valid without them) as
    /// warnings. Quadratic in plan size; meant for lint and tests.
    bool check_minimality = false;
  };

  Verifier() = default;
  explicit Verifier(Options options) : options_(options) {}

  /// Structural hypergraph invariants plus label-layer consistency:
  /// artifact-name lookup is a bijection, ordered tails/heads agree with
  /// the structural edge sets, load tasks have shape s -> {v}.
  AnalysisReport CheckGraph(const core::PipelineGraph& graph) const;

  /// Plan validity over its augmentation (paper §III-C5): every consumed
  /// artifact is produced by an earlier step, loaded, or the source;
  /// targets are derived; claimed cost/seconds match the augmentation's
  /// edge weights.
  AnalysisReport CheckPlan(const core::Augmentation& aug,
                           const core::Plan& plan) const;

  /// Augmentation well-formedness, including after execution-layer
  /// degradation (dead load edges removed by the recovery loop): label
  /// layer + hypergraph invariants, weight-vector sizing, and
  /// B-reachability of every target from the source.
  AnalysisReport CheckAugmentation(const core::Augmentation& aug) const;

  /// History/dictionary consistency (paper §III-C4, §IV-B/C): graph
  /// well-formedness, materialization flags vs load edges, per-artifact
  /// statistics sanity, task-signature dedup, canonical-name closure
  /// (every task's outputs carry the lineage hash of its inputs), and —
  /// when a dictionary is given — implementations resolving inside their
  /// equivalence class.
  AnalysisReport CheckHistory(const core::History& history,
                              const core::Dictionary* dictionary =
                                  nullptr) const;

  /// History-index consistency: the incrementally maintained HistoryIndex
  /// (core/history.h) must mirror the labelled hypergraph exactly —
  /// artifact_by_name is a bijection onto the nodes, task_by_signature
  /// holds exactly the live compute edges keyed by their TaskSignature,
  /// tasks_by_logical_op partitions those same edges by operator class,
  /// and the materialized set equals the records' materialization flags
  /// (data sources excluded). A divergence means an index-answered
  /// equivalence lookup can disagree with the graph.
  AnalysisReport CheckHistoryIndex(const core::History& history) const;

  /// Serialize + deserialize the history and diff structure, statistics,
  /// and materialization state.
  AnalysisReport CheckHistoryRoundTrip(const core::History& history) const;

  /// Materializer budget compliance (§IV-H): materialized bytes within
  /// `budget_bytes`. A negative budget skips the check.
  AnalysisReport CheckBudget(const core::History& history,
                             int64_t budget_bytes) const;

  /// Store <-> history consistency: every artifact the history marks
  /// materialized has a store entry whose charged size matches
  /// `ArtifactInfo::size_bytes`, no store entry lacks a materialized
  /// history record (orphans waste budget), and the store's used_bytes
  /// equals the sum of its entries. Backend-independent — holds for the
  /// in-memory store and for a reopened disk/tiered store alike.
  AnalysisReport CheckStoreConsistency(
      const core::History& history,
      const storage::ArtifactStore& store) const;

  /// Runs every history-level check: CheckHistory, the round-trip (when
  /// enabled), and budget compliance.
  AnalysisReport VerifyHistory(const core::History& history,
                               const core::Dictionary* dictionary = nullptr,
                               int64_t budget_bytes = -1) const;

 private:
  Options options_;
};

}  // namespace hyppo::analysis

#endif  // HYPPO_ANALYSIS_VERIFIER_H_
