#include "analysis/graph_checks.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <deque>
#include <string>

namespace hyppo::analysis {

namespace {

bool SortedUnique(const std::vector<NodeId>& nodes) {
  for (size_t i = 1; i < nodes.size(); ++i) {
    if (nodes[i - 1] >= nodes[i]) {
      return false;
    }
  }
  return true;
}

bool Contains(const std::vector<NodeId>& sorted_nodes, NodeId node) {
  return std::binary_search(sorted_nodes.begin(), sorted_nodes.end(), node);
}

// One star direction: star(v) must list exactly the live edges incident to
// v on `side` (side(e) is the edge's head for bstar, tail for fstar).
void CheckStars(const Hypergraph& graph, bool backward,
                AnalysisReport* report) {
  const char* star_name = backward ? "bstar" : "fstar";
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    const std::vector<EdgeId>& star =
        backward ? graph.bstar(v) : graph.fstar(v);
    std::vector<EdgeId> seen;
    for (EdgeId e : star) {
      if (e < 0 || e >= graph.num_edge_slots() || !graph.IsLiveEdge(e)) {
        report->AddError(
            "hypergraph.star-stale",
            std::string(star_name) + " of node " + std::to_string(v) +
                " references non-live edge " + std::to_string(e),
            EntityKind::kNode, v);
        continue;
      }
      const Hyperedge& edge = graph.edge(e);
      const std::vector<NodeId>& side = backward ? edge.head : edge.tail;
      if (!Contains(side, v)) {
        report->AddError(
            "hypergraph.star-stale",
            std::string(star_name) + " of node " + std::to_string(v) +
                " lists edge " + std::to_string(e) +
                " which is not incident to it",
            EntityKind::kNode, v);
      }
      if (std::find(seen.begin(), seen.end(), e) != seen.end()) {
        report->AddError("hypergraph.star-duplicate",
                         std::string(star_name) + " of node " +
                             std::to_string(v) + " lists edge " +
                             std::to_string(e) + " twice",
                         EntityKind::kNode, v);
      }
      seen.push_back(e);
    }
  }
  // Reverse direction: every live edge must appear in the star of each of
  // its incident nodes.
  for (EdgeId e = 0; e < graph.num_edge_slots(); ++e) {
    if (!graph.IsLiveEdge(e)) {
      continue;
    }
    const Hyperedge& edge = graph.edge(e);
    const std::vector<NodeId>& side = backward ? edge.head : edge.tail;
    for (NodeId v : side) {
      if (!graph.IsValidNode(v)) {
        continue;  // reported as hypergraph.dangling-node already
      }
      const std::vector<EdgeId>& star =
          backward ? graph.bstar(v) : graph.fstar(v);
      if (std::find(star.begin(), star.end(), e) == star.end()) {
        report->AddError(
            "hypergraph.star-missing",
            "edge " + std::to_string(e) + " is missing from the " +
                star_name + " of node " + std::to_string(v),
            EntityKind::kEdge, e);
      }
    }
  }
}

// Kahn's algorithm over the bipartite expansion (tail -> edge -> head):
// anything left unprocessed sits on a directed cycle.
void CheckAcyclic(const Hypergraph& graph, AnalysisReport* report) {
  const size_t num_slots = static_cast<size_t>(graph.num_edge_slots());
  std::vector<int32_t> missing_tail(num_slots, 0);
  std::vector<int32_t> missing_producers(
      static_cast<size_t>(graph.num_nodes()), 0);
  std::vector<bool> edge_done(num_slots, true);
  std::vector<bool> node_done(static_cast<size_t>(graph.num_nodes()), false);
  int32_t pending_edges = 0;
  for (EdgeId e = 0; e < graph.num_edge_slots(); ++e) {
    if (!graph.IsLiveEdge(e)) {
      continue;
    }
    edge_done[static_cast<size_t>(e)] = false;
    ++pending_edges;
    int32_t in_range = 0;
    for (NodeId t : graph.edge(e).tail) {
      if (graph.IsValidNode(t)) {
        ++in_range;
      }
    }
    missing_tail[static_cast<size_t>(e)] = in_range;
    for (NodeId h : graph.edge(e).head) {
      if (graph.IsValidNode(h)) {
        ++missing_producers[static_cast<size_t>(h)];
      }
    }
  }
  std::deque<NodeId> ready_nodes;
  std::deque<EdgeId> ready_edges;
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    if (missing_producers[static_cast<size_t>(v)] == 0) {
      node_done[static_cast<size_t>(v)] = true;
      ready_nodes.push_back(v);
    }
  }
  for (EdgeId e = 0; e < graph.num_edge_slots(); ++e) {
    if (!edge_done[static_cast<size_t>(e)] &&
        missing_tail[static_cast<size_t>(e)] == 0) {
      ready_edges.push_back(e);
    }
  }
  while (!ready_nodes.empty() || !ready_edges.empty()) {
    while (!ready_edges.empty()) {
      const EdgeId e = ready_edges.front();
      ready_edges.pop_front();
      if (edge_done[static_cast<size_t>(e)]) {
        continue;
      }
      edge_done[static_cast<size_t>(e)] = true;
      --pending_edges;
      for (NodeId h : graph.edge(e).head) {
        if (graph.IsValidNode(h) &&
            --missing_producers[static_cast<size_t>(h)] == 0) {
          node_done[static_cast<size_t>(h)] = true;
          ready_nodes.push_back(h);
        }
      }
    }
    while (!ready_nodes.empty()) {
      const NodeId v = ready_nodes.front();
      ready_nodes.pop_front();
      for (EdgeId e : graph.fstar(v)) {
        if (e < 0 || e >= graph.num_edge_slots() ||
            edge_done[static_cast<size_t>(e)]) {
          continue;
        }
        if (--missing_tail[static_cast<size_t>(e)] == 0) {
          ready_edges.push_back(e);
        }
      }
    }
  }
  if (pending_edges > 0) {
    for (EdgeId e = 0; e < graph.num_edge_slots(); ++e) {
      if (!edge_done[static_cast<size_t>(e)]) {
        report->AddError("hypergraph.cycle",
                         "edge " + std::to_string(e) +
                             " lies on a directed cycle (the graph must be "
                             "a DAG)",
                         EntityKind::kEdge, e);
        break;  // one representative is enough; cycles cascade
      }
    }
  }
}

}  // namespace

AnalysisReport CheckHypergraph(const Hypergraph& graph) {
  AnalysisReport report;
  int32_t live = 0;
  for (EdgeId e = 0; e < graph.num_edge_slots(); ++e) {
    const Hyperedge& edge = graph.edge(e);
    if (edge.head.empty()) {
      if (!edge.tail.empty()) {
        report.AddError("hypergraph.corrupt-dead-edge",
                        "removed edge kept " +
                            std::to_string(edge.tail.size()) + " tail nodes",
                        EntityKind::kEdge, e);
      }
      continue;
    }
    ++live;
    if (edge.id != e) {
      report.AddError("hypergraph.edge-id",
                      "edge stored in slot " + std::to_string(e) +
                          " carries id " + std::to_string(edge.id),
                      EntityKind::kEdge, e);
    }
    for (NodeId t : edge.tail) {
      if (!graph.IsValidNode(t)) {
        report.AddError("hypergraph.dangling-node",
                        "tail references nonexistent node " +
                            std::to_string(t),
                        EntityKind::kEdge, e);
      }
    }
    for (NodeId h : edge.head) {
      if (!graph.IsValidNode(h)) {
        report.AddError("hypergraph.dangling-node",
                        "head references nonexistent node " +
                            std::to_string(h),
                        EntityKind::kEdge, e);
      }
    }
    if (!SortedUnique(edge.tail) || !SortedUnique(edge.head)) {
      report.AddError("hypergraph.unsorted-edge",
                      "tail/head must be sorted and duplicate-free",
                      EntityKind::kEdge, e);
    }
  }
  if (live != graph.num_edges()) {
    report.AddError("hypergraph.live-count",
                    "num_edges() reports " + std::to_string(graph.num_edges()) +
                        " but " + std::to_string(live) +
                        " live edges exist");
  }
  CheckStars(graph, /*backward=*/true, &report);
  CheckStars(graph, /*backward=*/false, &report);
  CheckAcyclic(graph, &report);
  return report;
}

AnalysisReport CheckPlanStructure(const PlanSpec& spec) {
  AnalysisReport report;
  const Hypergraph& graph = *spec.graph;
  const std::vector<EdgeId>& edges = *spec.edges;

  std::vector<bool> in_plan(static_cast<size_t>(graph.num_edge_slots()),
                            false);
  std::vector<EdgeId> usable;
  for (EdgeId e : edges) {
    if (e < 0 || e >= graph.num_edge_slots() || !graph.IsLiveEdge(e)) {
      report.AddError("plan.dead-edge",
                      "plan lists edge " + std::to_string(e) +
                          " which is not a live edge",
                      EntityKind::kEdge, e);
      continue;
    }
    if (in_plan[static_cast<size_t>(e)]) {
      report.AddError("plan.duplicate-edge",
                      "plan lists edge " + std::to_string(e) + " twice",
                      EntityKind::kEdge, e);
      continue;
    }
    in_plan[static_cast<size_t>(e)] = true;
    usable.push_back(e);
  }

  // Forward chaining over plan edges only: an edge fires once every tail
  // node is available (produced earlier or the source). Whatever never
  // fires has an unsatisfied input — property (a) of §III-C5.
  std::vector<bool> available(static_cast<size_t>(graph.num_nodes()), false);
  if (graph.IsValidNode(spec.source)) {
    available[static_cast<size_t>(spec.source)] = true;
  }
  std::vector<int32_t> missing_tail(static_cast<size_t>(graph.num_edge_slots()),
                                    0);
  std::vector<bool> fired(static_cast<size_t>(graph.num_edge_slots()), false);
  std::deque<EdgeId> ready;
  for (EdgeId e : usable) {
    int32_t missing = 0;
    for (NodeId t : graph.edge(e).tail) {
      if (graph.IsValidNode(t) && t != spec.source) {
        ++missing;
      }
    }
    missing_tail[static_cast<size_t>(e)] = missing;
    if (missing == 0) {
      ready.push_back(e);
    }
  }
  std::vector<int32_t> producers(static_cast<size_t>(graph.num_nodes()), 0);
  while (!ready.empty()) {
    const EdgeId e = ready.front();
    ready.pop_front();
    if (fired[static_cast<size_t>(e)]) {
      continue;
    }
    fired[static_cast<size_t>(e)] = true;
    for (NodeId h : graph.edge(e).head) {
      if (!graph.IsValidNode(h)) {
        continue;
      }
      ++producers[static_cast<size_t>(h)];
      if (available[static_cast<size_t>(h)]) {
        continue;
      }
      available[static_cast<size_t>(h)] = true;
      for (EdgeId next : graph.fstar(h)) {
        if (next >= 0 && next < graph.num_edge_slots() &&
            in_plan[static_cast<size_t>(next)] &&
            !fired[static_cast<size_t>(next)] &&
            --missing_tail[static_cast<size_t>(next)] == 0) {
          ready.push_back(next);
        }
      }
    }
  }
  for (EdgeId e : usable) {
    if (fired[static_cast<size_t>(e)]) {
      continue;
    }
    NodeId blocked_on = kInvalidNode;
    for (NodeId t : graph.edge(e).tail) {
      if (graph.IsValidNode(t) && t != spec.source &&
          !available[static_cast<size_t>(t)]) {
        blocked_on = t;
        break;
      }
    }
    report.AddError("plan.unsatisfied-input",
                    "task edge " + std::to_string(e) + " consumes node " +
                        std::to_string(blocked_on) +
                        " which no earlier plan step produces or loads",
                    EntityKind::kEdge, e);
  }
  if (spec.targets != nullptr) {
    for (NodeId t : *spec.targets) {
      if (!graph.IsValidNode(t)) {
        report.AddError("plan.invalid-target",
                        "target node " + std::to_string(t) +
                            " does not exist",
                        EntityKind::kNode, t);
      } else if (!available[static_cast<size_t>(t)]) {
        report.AddError("plan.missing-target",
                        "plan never derives target node " + std::to_string(t),
                        EntityKind::kNode, t);
      }
    }
  }
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    if (producers[static_cast<size_t>(v)] > 1) {
      // Legal (a multi-output task plus a cheap load can both cover one
      // artifact) but worth surfacing: the plan does redundant work.
      report.AddWarning("plan.duplicate-producer",
                        "node " + std::to_string(v) + " is produced by " +
                            std::to_string(producers[static_cast<size_t>(v)]) +
                            " plan edges",
                        EntityKind::kNode, v);
    }
  }

  const auto totals_match = [&](double claimed, double actual) {
    const double scale = std::max({1.0, std::abs(claimed), std::abs(actual)});
    return std::abs(claimed - actual) <= spec.cost_tolerance * scale;
  };
  if (spec.edge_weight != nullptr &&
      spec.edge_weight->size() >=
          static_cast<size_t>(graph.num_edge_slots())) {
    double cost = 0.0;
    for (EdgeId e : usable) {
      cost += (*spec.edge_weight)[static_cast<size_t>(e)];
    }
    if (!totals_match(spec.claimed_cost, cost)) {
      report.AddError("plan.cost-mismatch",
                      "plan claims cost " + std::to_string(spec.claimed_cost) +
                          " but its edges sum to " + std::to_string(cost));
    }
  }
  if (spec.edge_seconds != nullptr &&
      spec.edge_seconds->size() >=
          static_cast<size_t>(graph.num_edge_slots())) {
    double seconds = 0.0;
    for (EdgeId e : usable) {
      seconds += (*spec.edge_seconds)[static_cast<size_t>(e)];
    }
    if (!totals_match(spec.claimed_seconds, seconds)) {
      report.AddError(
          "plan.seconds-mismatch",
          "plan claims " + std::to_string(spec.claimed_seconds) +
              " estimated seconds but its edges sum to " +
              std::to_string(seconds));
    }
  }
  return report;
}

AnalysisReport CheckAugmentationStructure(const AugmentationSpec& spec) {
  const Hypergraph& graph = *spec.graph;
  AnalysisReport report = CheckHypergraph(graph);

  const size_t num_slots = static_cast<size_t>(graph.num_edge_slots());
  if (spec.edge_weight != nullptr && spec.edge_weight->size() < num_slots) {
    report.AddError("augmentation.weight-size",
                    "edge_weight holds " +
                        std::to_string(spec.edge_weight->size()) +
                        " entries for " + std::to_string(num_slots) +
                        " edge slots");
  }
  if (spec.edge_seconds != nullptr && spec.edge_seconds->size() < num_slots) {
    report.AddError("augmentation.weight-size",
                    "edge_seconds holds " +
                        std::to_string(spec.edge_seconds->size()) +
                        " entries for " + std::to_string(num_slots) +
                        " edge slots");
  }

  // B-reachability over every live edge: forward chaining from the source;
  // an edge fires once all tails are available. Targets left unavailable
  // cannot be derived by ANY plan over this augmentation.
  std::vector<bool> available(static_cast<size_t>(graph.num_nodes()), false);
  if (graph.IsValidNode(spec.source)) {
    available[static_cast<size_t>(spec.source)] = true;
  }
  std::vector<int32_t> missing_tail(num_slots, 0);
  std::vector<bool> fired(num_slots, false);
  std::deque<EdgeId> ready;
  for (EdgeId e = 0; e < graph.num_edge_slots(); ++e) {
    if (!graph.IsLiveEdge(e)) {
      fired[static_cast<size_t>(e)] = true;
      continue;
    }
    int32_t missing = 0;
    for (NodeId t : graph.edge(e).tail) {
      if (graph.IsValidNode(t) &&
          !available[static_cast<size_t>(t)]) {
        ++missing;
      }
    }
    missing_tail[static_cast<size_t>(e)] = missing;
    if (missing == 0) {
      ready.push_back(e);
    }
  }
  while (!ready.empty()) {
    const EdgeId e = ready.front();
    ready.pop_front();
    if (fired[static_cast<size_t>(e)]) {
      continue;
    }
    fired[static_cast<size_t>(e)] = true;
    for (NodeId h : graph.edge(e).head) {
      if (!graph.IsValidNode(h) || available[static_cast<size_t>(h)]) {
        continue;
      }
      available[static_cast<size_t>(h)] = true;
      for (EdgeId next : graph.fstar(h)) {
        if (next >= 0 && next < graph.num_edge_slots() &&
            !fired[static_cast<size_t>(next)] &&
            --missing_tail[static_cast<size_t>(next)] == 0) {
          ready.push_back(next);
        }
      }
    }
  }
  if (spec.targets != nullptr) {
    for (NodeId t : *spec.targets) {
      if (!graph.IsValidNode(t)) {
        report.AddError("augmentation.invalid-target",
                        "target node " + std::to_string(t) +
                            " does not exist",
                        EntityKind::kNode, t);
      } else if (!available[static_cast<size_t>(t)]) {
        report.AddError(
            "augmentation.unreachable-target",
            "no B-derivation from the source reaches target node " +
                std::to_string(t) + " over the live edges",
            EntityKind::kNode, t);
      }
    }
  }
  return report;
}

}  // namespace hyppo::analysis
