#ifndef HYPPO_ANALYSIS_DIAGNOSTIC_H_
#define HYPPO_ANALYSIS_DIAGNOSTIC_H_

#include <cstdint>
#include <string>
#include <vector>

namespace hyppo::analysis {

/// \brief Severity of one invariant violation.
///
/// `kError` marks a broken structural invariant: executing or optimizing
/// over the offending entity may produce wrong results. `kWarning` marks a
/// suspicious-but-legal state (e.g. a redundant plan edge) that a human
/// should review but that does not invalidate execution.
enum class Severity {
  kWarning = 0,
  kError = 1,
};

const char* SeverityToString(Severity severity);

/// What kind of entity a diagnostic points at.
enum class EntityKind {
  kNone = 0,
  kNode,  ///< a hypergraph node / artifact id
  kEdge,  ///< a hyperedge / task id
};

const char* EntityKindToString(EntityKind kind);

/// \brief One structured invariant violation.
///
/// `check` is a stable dotted identifier of the violated invariant
/// ("hypergraph.cycle", "plan.unsatisfied-input", ...) so tests and tools
/// can match diagnostics without parsing messages.
struct Diagnostic {
  Severity severity = Severity::kError;
  std::string check;
  EntityKind entity = EntityKind::kNone;
  int64_t entity_id = -1;
  /// 1-based DSL source location, when the diagnostic traces back to a
  /// parsed pipeline statement; 0 means "no source location".
  int line = 0;
  int column = 0;
  std::string message;

  /// "error [plan.unsatisfied-input] edge 7: ...message..."; appends
  /// " (line L, col C)" when a source location is attached.
  std::string ToString() const;
};

/// \brief The collected outcome of one verification pass.
///
/// A report is `ok()` when it contains no error-severity diagnostics;
/// warnings do not fail verification.
class AnalysisReport {
 public:
  AnalysisReport() = default;

  void Add(Diagnostic diagnostic);

  /// Convenience: appends an error-severity diagnostic.
  void AddError(std::string check, std::string message,
                EntityKind entity = EntityKind::kNone, int64_t entity_id = -1);

  /// Convenience: appends a warning-severity diagnostic.
  void AddWarning(std::string check, std::string message,
                  EntityKind entity = EntityKind::kNone,
                  int64_t entity_id = -1);

  /// Moves every diagnostic of `other` into this report, dropping exact
  /// duplicates of diagnostics already present (repeated store/history
  /// audits would otherwise double-report the same violation).
  void Merge(AnalysisReport other);

  bool ok() const { return num_errors_ == 0; }
  int64_t num_errors() const { return num_errors_; }
  int64_t num_warnings() const {
    return static_cast<int64_t>(diagnostics_.size()) - num_errors_;
  }

  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }

  /// True iff some diagnostic violates the named check.
  bool HasCheck(const std::string& check) const;

  /// All diagnostics, one per line; "" when the report is empty.
  std::string ToString() const;

  /// One-line outcome: "clean" or "3 errors, 1 warning".
  std::string Summary() const;

 private:
  std::vector<Diagnostic> diagnostics_;
  int64_t num_errors_ = 0;
};

}  // namespace hyppo::analysis

#endif  // HYPPO_ANALYSIS_DIAGNOSTIC_H_
