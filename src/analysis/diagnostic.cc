#include "analysis/diagnostic.h"

#include <sstream>

namespace hyppo::analysis {

const char* SeverityToString(Severity severity) {
  switch (severity) {
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "unknown";
}

const char* EntityKindToString(EntityKind kind) {
  switch (kind) {
    case EntityKind::kNone:
      return "none";
    case EntityKind::kNode:
      return "node";
    case EntityKind::kEdge:
      return "edge";
  }
  return "unknown";
}

std::string Diagnostic::ToString() const {
  std::ostringstream os;
  os << SeverityToString(severity) << " [" << check << "]";
  if (entity != EntityKind::kNone) {
    os << " " << EntityKindToString(entity) << " " << entity_id;
  }
  os << ": " << message;
  if (line > 0) {
    os << " (line " << line;
    if (column > 0) {
      os << ", col " << column;
    }
    os << ")";
  }
  return os.str();
}

namespace {

bool SameDiagnostic(const Diagnostic& a, const Diagnostic& b) {
  return a.severity == b.severity && a.entity == b.entity &&
         a.entity_id == b.entity_id && a.line == b.line &&
         a.column == b.column && a.check == b.check && a.message == b.message;
}

}  // namespace

void AnalysisReport::Add(Diagnostic diagnostic) {
  if (diagnostic.severity == Severity::kError) {
    ++num_errors_;
  }
  diagnostics_.push_back(std::move(diagnostic));
}

void AnalysisReport::AddError(std::string check, std::string message,
                              EntityKind entity, int64_t entity_id) {
  Diagnostic d;
  d.severity = Severity::kError;
  d.check = std::move(check);
  d.entity = entity;
  d.entity_id = entity_id;
  d.message = std::move(message);
  Add(std::move(d));
}

void AnalysisReport::AddWarning(std::string check, std::string message,
                                EntityKind entity, int64_t entity_id) {
  Diagnostic d;
  d.severity = Severity::kWarning;
  d.check = std::move(check);
  d.entity = entity;
  d.entity_id = entity_id;
  d.message = std::move(message);
  Add(std::move(d));
}

void AnalysisReport::Merge(AnalysisReport other) {
  for (Diagnostic& d : other.diagnostics_) {
    bool duplicate = false;
    for (const Diagnostic& existing : diagnostics_) {
      if (SameDiagnostic(existing, d)) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) {
      Add(std::move(d));
    }
  }
}

bool AnalysisReport::HasCheck(const std::string& check) const {
  for (const Diagnostic& d : diagnostics_) {
    if (d.check == check) {
      return true;
    }
  }
  return false;
}

std::string AnalysisReport::ToString() const {
  std::ostringstream os;
  for (const Diagnostic& d : diagnostics_) {
    os << d.ToString() << "\n";
  }
  return os.str();
}

std::string AnalysisReport::Summary() const {
  if (diagnostics_.empty()) {
    return "clean";
  }
  std::ostringstream os;
  os << num_errors() << (num_errors() == 1 ? " error, " : " errors, ")
     << num_warnings() << (num_warnings() == 1 ? " warning" : " warnings");
  return os.str();
}

}  // namespace hyppo::analysis
