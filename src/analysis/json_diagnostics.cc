#include "analysis/json_diagnostics.h"

#include <sstream>

#include "common/string_util.h"

namespace hyppo::analysis {

std::string JsonEscape(const std::string& s) {
  // Delegates to the shared escaper so the bench writer and the
  // diagnostics emitter cannot drift apart.
  return hyppo::JsonEscape(s);
}

std::string ReportToJson(const AnalysisReport& report,
                         const std::string& target) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"target\": \"" << JsonEscape(target) << "\",\n";
  os << "  \"summary\": {\"errors\": " << report.num_errors()
     << ", \"warnings\": " << report.num_warnings()
     << ", \"clean\": " << (report.ok() ? "true" : "false") << "},\n";
  os << "  \"diagnostics\": [";
  bool first = true;
  for (const Diagnostic& d : report.diagnostics()) {
    os << (first ? "\n" : ",\n");
    first = false;
    os << "    {\"severity\": \"" << SeverityToString(d.severity)
       << "\", \"check\": \"" << JsonEscape(d.check) << "\"";
    if (d.entity != EntityKind::kNone) {
      os << ", \"entity\": \"" << EntityKindToString(d.entity)
         << "\", \"entity_id\": " << d.entity_id;
    }
    if (d.line > 0) {
      os << ", \"line\": " << d.line;
      if (d.column > 0) {
        os << ", \"column\": " << d.column;
      }
    }
    os << ", \"message\": \"" << JsonEscape(d.message) << "\"}";
  }
  os << (first ? "]\n" : "\n  ]\n");
  os << "}\n";
  return os.str();
}

}  // namespace hyppo::analysis
