#include "analysis/json_diagnostics.h"

#include <cstdio>
#include <sstream>

namespace hyppo::analysis {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char raw : s) {
    const unsigned char c = static_cast<unsigned char>(raw);
    switch (raw) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += raw;
        }
    }
  }
  return out;
}

std::string ReportToJson(const AnalysisReport& report,
                         const std::string& target) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"target\": \"" << JsonEscape(target) << "\",\n";
  os << "  \"summary\": {\"errors\": " << report.num_errors()
     << ", \"warnings\": " << report.num_warnings()
     << ", \"clean\": " << (report.ok() ? "true" : "false") << "},\n";
  os << "  \"diagnostics\": [";
  bool first = true;
  for (const Diagnostic& d : report.diagnostics()) {
    os << (first ? "\n" : ",\n");
    first = false;
    os << "    {\"severity\": \"" << SeverityToString(d.severity)
       << "\", \"check\": \"" << JsonEscape(d.check) << "\"";
    if (d.entity != EntityKind::kNone) {
      os << ", \"entity\": \"" << EntityKindToString(d.entity)
         << "\", \"entity_id\": " << d.entity_id;
    }
    if (d.line > 0) {
      os << ", \"line\": " << d.line;
      if (d.column > 0) {
        os << ", \"column\": " << d.column;
      }
    }
    os << ", \"message\": \"" << JsonEscape(d.message) << "\"}";
  }
  os << (first ? "]\n" : "\n  ]\n");
  os << "}\n";
  return os.str();
}

}  // namespace hyppo::analysis
