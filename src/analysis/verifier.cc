#include "analysis/verifier.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/history_io.h"
#include "core/naming.h"

namespace hyppo::analysis {

namespace {

using core::ArtifactInfo;
using core::ArtifactKind;
using core::ArtifactRecord;
using core::Augmentation;
using core::Dictionary;
using core::History;
using core::PipelineGraph;
using core::Plan;
using core::TaskInfo;
using core::TaskType;
using core::TaskTypeToString;

bool CloseEnough(double a, double b, double tolerance) {
  const double scale = std::max({1.0, std::fabs(a), std::fabs(b)});
  return std::fabs(a - b) <= tolerance * scale;
}

/// Declaration-order node list, deduplicated and sorted — the form the
/// structural Hypergraph stores.
std::vector<NodeId> SortedUnique(std::vector<NodeId> nodes) {
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  return nodes;
}

bool AllValid(const std::vector<NodeId>& nodes, const Hypergraph& graph) {
  for (NodeId v : nodes) {
    if (!graph.IsValidNode(v)) {
      return false;
    }
  }
  return true;
}

}  // namespace

AnalysisReport Verifier::CheckGraph(const PipelineGraph& graph) const {
  AnalysisReport report = CheckHypergraph(graph.hypergraph());

  const Hypergraph& hg = graph.hypergraph();
  const NodeId source = graph.source();

  // The source node s: always node 0, kind kSource, and unique.
  if (hg.num_nodes() == 0) {
    report.AddError("graph.source-node", "graph has no source node");
    return report;
  }
  for (NodeId v = 0; v < hg.num_nodes(); ++v) {
    const bool is_source_kind = graph.artifact(v).kind == ArtifactKind::kSource;
    if ((v == source) != is_source_kind) {
      report.AddError("graph.source-node",
                      v == source
                          ? "node 0 is not labelled as the source artifact"
                          : "non-zero node labelled with the source kind",
                      EntityKind::kNode, v);
    }
  }

  // Canonical-name lookup must be a bijection onto the nodes.
  for (NodeId v = 0; v < hg.num_nodes(); ++v) {
    const ArtifactInfo& info = graph.artifact(v);
    if (info.name.empty()) {
      report.AddError("graph.name-lookup", "artifact has an empty name",
                      EntityKind::kNode, v);
      continue;
    }
    Result<NodeId> found = graph.FindArtifact(info.name);
    if (!found.ok()) {
      report.AddError("graph.name-lookup",
                      "artifact name '" + info.name +
                          "' is not resolvable via FindArtifact",
                      EntityKind::kNode, v);
    } else if (*found != v) {
      report.AddError("graph.name-lookup",
                      "artifact name '" + info.name + "' resolves to node " +
                          std::to_string(*found),
                      EntityKind::kNode, v);
    }
  }

  for (EdgeId e = 0; e < hg.num_edge_slots(); ++e) {
    if (!hg.IsLiveEdge(e)) {
      continue;
    }
    const std::vector<NodeId>& otail = graph.ordered_tail(e);
    const std::vector<NodeId>& ohead = graph.ordered_head(e);
    if (!AllValid(otail, hg) || !AllValid(ohead, hg)) {
      report.AddError("graph.ordered-mismatch",
                      "ordered tail/head reference nonexistent nodes",
                      EntityKind::kEdge, e);
      continue;
    }
    // Declaration-order lists must describe the same sets the structural
    // edge stores (the executor binds inputs by declaration order; a
    // divergence silently feeds a task the wrong artifacts).
    if (SortedUnique(otail) != hg.edge(e).tail ||
        SortedUnique(ohead) != hg.edge(e).head) {
      report.AddError("graph.ordered-mismatch",
                      "ordered tail/head disagree with the structural edge",
                      EntityKind::kEdge, e);
      continue;
    }
    const TaskInfo& task = graph.task(e);
    if (task.type == TaskType::kLoad) {
      // Load tasks retrieve one artifact from the source s.
      if (otail.size() != 1 || otail[0] != source || ohead.size() != 1 ||
          ohead[0] == source || task.logical_op != core::kLoadOp) {
        report.AddError("graph.load-shape",
                        "load task is not of the form s -> {artifact}",
                        EntityKind::kEdge, e);
      }
    } else {
      // Only load tasks may consume the source node.
      for (NodeId t : otail) {
        if (t == source) {
          report.AddError("graph.source-consumed",
                          "non-load task '" + task.logical_op +
                              "' consumes the source node",
                          EntityKind::kEdge, e);
        }
      }
    }
  }
  return report;
}

AnalysisReport Verifier::CheckPlan(const Augmentation& aug,
                                   const Plan& plan) const {
  PlanSpec spec;
  spec.graph = &aug.graph.hypergraph();
  spec.edges = &plan.edges;
  spec.source = aug.graph.source();
  spec.targets = &aug.targets;
  spec.edge_weight = &aug.edge_weight;
  spec.claimed_cost = plan.cost;
  spec.edge_seconds = &aug.edge_seconds;
  spec.claimed_seconds = plan.seconds;
  spec.cost_tolerance = options_.cost_tolerance;
  AnalysisReport report = CheckPlanStructure(spec);

  if (options_.check_minimality && report.ok()) {
    // A plan is minimal when no edge can be dropped (paper §III-C5
    // property (c)). Quadratic: one B-connectivity pass per plan edge.
    const std::vector<NodeId> sources = {aug.graph.source()};
    for (size_t skip = 0; skip < plan.edges.size(); ++skip) {
      std::vector<EdgeId> reduced;
      reduced.reserve(plan.edges.size() - 1);
      for (size_t i = 0; i < plan.edges.size(); ++i) {
        if (i != skip) {
          reduced.push_back(plan.edges[i]);
        }
      }
      if (aug.graph.hypergraph().AreBConnected(aug.targets, sources,
                                               &reduced)) {
        report.AddWarning("plan.redundant-edge",
                          "plan remains feasible without this edge",
                          EntityKind::kEdge, plan.edges[skip]);
      }
    }
  }
  return report;
}

AnalysisReport Verifier::CheckAugmentation(const Augmentation& aug) const {
  AnalysisReport report = CheckGraph(aug.graph);
  AugmentationSpec spec;
  spec.graph = &aug.graph.hypergraph();
  spec.source = aug.graph.source();
  spec.targets = &aug.targets;
  spec.edge_weight = &aug.edge_weight;
  spec.edge_seconds = &aug.edge_seconds;
  AnalysisReport structure = CheckAugmentationStructure(spec);
  // CheckGraph already ran the hypergraph invariants; keep only the
  // augmentation-level findings to avoid duplicate diagnostics.
  for (const Diagnostic& d : structure.diagnostics()) {
    if (d.check.rfind("augmentation.", 0) == 0) {
      report.Add(d);
    }
  }
  return report;
}

AnalysisReport Verifier::CheckHistory(const History& history,
                                      const Dictionary* dictionary) const {
  const PipelineGraph& graph = history.graph();
  const Hypergraph& hg = graph.hypergraph();
  AnalysisReport report = CheckGraph(graph);

  // Statistics records must cover every artifact node.
  const int32_t num_records = history.num_records();
  if (num_records < hg.num_nodes()) {
    report.AddError("history.record-count",
                    "history holds " + std::to_string(num_records) +
                        " records for " + std::to_string(hg.num_nodes()) +
                        " artifact nodes");
  }

  // Per-artifact record sanity + materialization flags.
  for (NodeId v = 1; v < std::min(hg.num_nodes(), num_records); ++v) {
    const ArtifactRecord& rec = history.record(v);
    if (rec.compute_seconds < 0.0 || rec.compute_observations < 0 ||
        rec.access_count < 0 || rec.version < 1) {
      report.AddError("history.negative-stat",
                      "artifact record holds a negative statistic",
                      EntityKind::kNode, v);
    }
    if (graph.artifact(v).size_bytes < 0) {
      report.AddError("history.negative-stat",
                      "artifact has a negative size estimate",
                      EntityKind::kNode, v);
    }
    if (rec.materialized) {
      // A materialized artifact must be retrievable: its recorded load
      // edge is live and loads exactly this node (paper §IV-H).
      if (!hg.IsLiveEdge(rec.load_edge)) {
        report.AddError("history.materialized-flag",
                        "materialized artifact has no live load edge",
                        EntityKind::kNode, v);
      } else if (graph.task(rec.load_edge).type != TaskType::kLoad ||
                 hg.edge(rec.load_edge).head !=
                     std::vector<NodeId>{v}) {
        report.AddError("history.materialized-flag",
                        "recorded load edge does not load this artifact",
                        EntityKind::kNode, v);
      }
    } else if (rec.load_edge != kInvalidEdge) {
      report.AddError("history.materialized-flag",
                      "non-materialized artifact keeps a load edge id",
                      EntityKind::kNode, v);
    }
    if (history.IsSourceData(v) && !rec.materialized) {
      // Raw datasets are permanently retrievable once registered; a raw
      // node without a load edge is unreachable from s and can never be
      // planned. Legal mid-construction, hence a warning.
      report.AddWarning("history.unregistered-source",
                        "raw dataset was never registered as source data",
                        EntityKind::kNode, v);
    }
  }

  // Load edges seen from the edge side: each must be owned by the record
  // of the artifact it loads (no orphan load edges after eviction).
  std::map<std::string, EdgeId> by_signature;
  for (EdgeId e = 0; e < hg.num_edge_slots(); ++e) {
    if (!hg.IsLiveEdge(e)) {
      continue;
    }
    // Task signatures are the history's dedup key: two live edges with
    // the same signature mean ObserveTask's map went out of sync.
    auto [it, inserted] = by_signature.emplace(graph.TaskSignature(e), e);
    if (!inserted) {
      report.AddError("history.duplicate-signature",
                      "task duplicates the signature of edge " +
                          std::to_string(it->second),
                      EntityKind::kEdge, e);
    }
    const auto [total_seconds, count] = history.TaskObservation(e);
    if (total_seconds < 0.0 || count < 0) {
      report.AddError("history.negative-stat",
                      "task observation holds a negative statistic",
                      EntityKind::kEdge, e);
    }
    const TaskInfo& task = graph.task(e);
    if (task.type == TaskType::kLoad) {
      const std::vector<NodeId>& head = hg.edge(e).head;
      if (head.size() == 1 && head[0] < num_records) {
        const ArtifactRecord& rec = history.record(head[0]);
        if (!rec.materialized || rec.load_edge != e) {
          report.AddError("history.materialized-flag",
                          "live load edge not owned by its artifact record",
                          EntityKind::kEdge, e);
        }
      }
      continue;
    }
    // Canonical-name closure (paper §IV-C): every recorded derivation's
    // outputs must carry the lineage hash of its operator + inputs. This
    // is the invariant that makes equivalence discovery a name lookup —
    // a violation silently splits or merges equivalence classes.
    const std::vector<NodeId>& otail = graph.ordered_tail(e);
    const std::vector<NodeId>& ohead = graph.ordered_head(e);
    if (!AllValid(otail, hg) || !AllValid(ohead, hg)) {
      continue;  // reported as graph.ordered-mismatch above
    }
    std::vector<std::string> input_names;
    input_names.reserve(otail.size());
    for (NodeId t : otail) {
      input_names.push_back(graph.artifact(t).name);
    }
    const std::vector<std::string> expected = core::TaskOutputNames(
        task, input_names, static_cast<int>(ohead.size()));
    for (size_t i = 0; i < ohead.size(); ++i) {
      if (graph.artifact(ohead[i]).name != expected[i]) {
        report.AddError(
            "history.name-closure",
            "output " + std::to_string(i) + " of task '" + task.logical_op +
                "' is named '" + graph.artifact(ohead[i]).name +
                "' but its lineage hashes to '" + expected[i] + "'",
            EntityKind::kEdge, e);
      }
    }
    if (dictionary != nullptr && dictionary->Knows(task.logical_op,
                                                   task.type)) {
      const std::vector<std::string>& impls =
          dictionary->ImplsFor(task.logical_op, task.type);
      if (std::find(impls.begin(), impls.end(), task.impl) == impls.end()) {
        report.AddWarning("history.unknown-impl",
                          "implementation '" + task.impl +
                              "' is not in the dictionary entry for '" +
                              task.logical_op + "." +
                              TaskTypeToString(task.type) + "'",
                          EntityKind::kEdge, e);
      }
    }
  }
  return report;
}

AnalysisReport Verifier::CheckHistoryIndex(const History& history) const {
  AnalysisReport report;
  const PipelineGraph& graph = history.graph();
  const Hypergraph& hg = graph.hypergraph();
  const core::HistoryIndex& index = history.index();

  // Name index: a bijection onto the nodes (source included). Checking
  // both the per-node lookup and the total count catches stale entries
  // left behind by direct graph mutation.
  for (NodeId v = 0; v < hg.num_nodes(); ++v) {
    const std::string& name = graph.artifact(v).name;
    auto it = index.artifact_by_name.find(name);
    if (it == index.artifact_by_name.end()) {
      report.AddError("index.artifact-missing",
                      "artifact '" + name + "' is not in the name index",
                      EntityKind::kNode, v);
    } else if (it->second != v) {
      report.AddError("index.artifact-mismatch",
                      "name index resolves '" + name + "' to node " +
                          std::to_string(it->second),
                      EntityKind::kNode, v);
    }
  }
  if (static_cast<int32_t>(index.artifact_by_name.size()) != hg.num_nodes()) {
    report.AddError("index.artifact-count",
                    "name index holds " +
                        std::to_string(index.artifact_by_name.size()) +
                        " entries for " + std::to_string(hg.num_nodes()) +
                        " nodes");
  }

  // Task-signature index: exactly the live compute edges, keyed by
  // PipelineGraph::TaskSignature. Load edges are derived state and must
  // stay out.
  int32_t live_compute_edges = 0;
  for (EdgeId e : hg.LiveEdges()) {
    if (graph.task(e).type == TaskType::kLoad) {
      continue;
    }
    ++live_compute_edges;
    const std::string signature = graph.TaskSignature(e);
    auto it = index.task_by_signature.find(signature);
    if (it == index.task_by_signature.end()) {
      report.AddError("index.task-missing",
                      "live compute task is not in the signature index",
                      EntityKind::kEdge, e);
    } else if (it->second != e) {
      report.AddError("index.task-mismatch",
                      "signature index resolves this task's signature to "
                      "edge " +
                          std::to_string(it->second),
                      EntityKind::kEdge, e);
    }
  }
  if (static_cast<int32_t>(index.task_by_signature.size()) !=
      live_compute_edges) {
    report.AddError("index.task-count",
                    "signature index holds " +
                        std::to_string(index.task_by_signature.size()) +
                        " entries for " + std::to_string(live_compute_edges) +
                        " live compute edges");
  }

  // Logical-operator buckets: together they must partition the live
  // compute edges; each edge sits in its own operator's bucket once.
  std::set<EdgeId> bucketed;
  int64_t bucket_entries = 0;
  for (const auto& [op, edges] : index.tasks_by_logical_op) {
    for (EdgeId e : edges) {
      ++bucket_entries;
      if (!hg.IsLiveEdge(e)) {
        report.AddError("index.op-dead-edge",
                        "operator bucket '" + op + "' lists a dead edge",
                        EntityKind::kEdge, e);
        continue;
      }
      const TaskInfo& task = graph.task(e);
      if (task.type == TaskType::kLoad || task.logical_op != op) {
        report.AddError("index.op-mismatch",
                        "edge of operator '" + task.logical_op +
                            "' sits in bucket '" + op + "'",
                        EntityKind::kEdge, e);
      }
      if (!bucketed.insert(e).second) {
        report.AddError("index.op-duplicate",
                        "edge appears in operator buckets more than once",
                        EntityKind::kEdge, e);
      }
    }
  }
  if (bucket_entries != live_compute_edges &&
      static_cast<int32_t>(bucketed.size()) != live_compute_edges) {
    report.AddError("index.op-count",
                    "operator buckets hold " +
                        std::to_string(bucket_entries) + " entries for " +
                        std::to_string(live_compute_edges) +
                        " live compute edges");
  }

  // Statistics records must cover every node. A short records vector —
  // e.g. a node added to the graph behind the History mutators' back, or
  // an unsynchronized Observe racing a reader — would silently clamp the
  // materialized sweep below, so it is an explicit error, not a mask.
  // (A fresh history legitimately holds the source node with no records:
  // the vector is allocated lazily by the first mutator.)
  if (hg.num_nodes() > 1 && history.num_records() < hg.num_nodes()) {
    report.AddError("index.records-short",
                    "history holds " +
                        std::to_string(history.num_records()) +
                        " statistics records for " +
                        std::to_string(hg.num_nodes()) +
                        " nodes; the newest artifacts have no records");
  }

  // Materialized set: exactly the non-source artifacts whose record says
  // materialized.
  for (NodeId v = 1; v < std::min(hg.num_nodes(), history.num_records());
       ++v) {
    const bool expected =
        history.record(v).materialized && !history.IsSourceData(v);
    const bool indexed = index.materialized.count(v) > 0;
    if (expected != indexed) {
      report.AddError("index.materialized-drift",
                      expected
                          ? "materialized artifact missing from the index"
                          : "index lists a non-materialized (or source) "
                            "artifact as materialized",
                      EntityKind::kNode, v);
    }
  }
  for (NodeId v : index.materialized) {
    if (!hg.IsValidNode(v)) {
      report.AddError("index.materialized-drift",
                      "materialized index holds a nonexistent node",
                      EntityKind::kNode, v);
    }
  }
  return report;
}

AnalysisReport Verifier::CheckHistoryRoundTrip(const History& history) const {
  AnalysisReport report;
  Result<std::string> bytes = core::SerializeHistory(history);
  if (!bytes.ok()) {
    report.AddError("history.roundtrip",
                    "serialization failed: " + bytes.status().ToString());
    return report;
  }
  Result<History> restored = core::DeserializeHistory(*bytes);
  if (!restored.ok()) {
    report.AddError("history.roundtrip",
                    "deserialization failed: " +
                        restored.status().ToString());
    return report;
  }
  const PipelineGraph& a = history.graph();
  const PipelineGraph& b = restored->graph();
  if (a.num_artifacts() != b.num_artifacts()) {
    report.AddError("history.roundtrip",
                    "artifact count changed: " +
                        std::to_string(a.num_artifacts()) + " -> " +
                        std::to_string(b.num_artifacts()));
  }
  if (a.num_tasks() != b.num_tasks()) {
    report.AddError("history.roundtrip",
                    "task count changed: " + std::to_string(a.num_tasks()) +
                        " -> " + std::to_string(b.num_tasks()));
  }
  // Artifacts and statistics, matched by canonical name.
  for (NodeId v = 1; v < a.num_artifacts(); ++v) {
    const ArtifactInfo& info = a.artifact(v);
    Result<NodeId> found = b.FindArtifact(info.name);
    if (!found.ok()) {
      report.AddError("history.roundtrip",
                      "artifact '" + info.name + "' lost in round-trip",
                      EntityKind::kNode, v);
      continue;
    }
    const ArtifactInfo& other = b.artifact(*found);
    if (info.kind != other.kind || info.size_bytes != other.size_bytes ||
        info.rows != other.rows || info.cols != other.cols) {
      report.AddError("history.roundtrip",
                      "artifact '" + info.name +
                          "' metadata changed in round-trip",
                      EntityKind::kNode, v);
    }
    if (v >= history.num_records() || *found >= restored->num_records()) {
      continue;
    }
    const ArtifactRecord& ra = history.record(v);
    const ArtifactRecord& rb = restored->record(*found);
    if (!CloseEnough(ra.compute_seconds, rb.compute_seconds, 1e-9) ||
        ra.compute_observations != rb.compute_observations ||
        ra.access_count != rb.access_count ||
        !CloseEnough(ra.last_access_seconds, rb.last_access_seconds, 1e-9) ||
        ra.version != rb.version || ra.materialized != rb.materialized) {
      report.AddError("history.roundtrip",
                      "record of artifact '" + info.name +
                          "' changed in round-trip",
                      EntityKind::kNode, v);
    }
  }
  // Tasks and observations, matched by signature (edge ids may be
  // renumbered because load edges are reconstructed).
  std::map<std::string, EdgeId> restored_edges;
  for (EdgeId e : b.hypergraph().LiveEdges()) {
    restored_edges.emplace(b.TaskSignature(e), e);
  }
  for (EdgeId e : a.hypergraph().LiveEdges()) {
    const std::string signature = a.TaskSignature(e);
    auto it = restored_edges.find(signature);
    if (it == restored_edges.end()) {
      report.AddError("history.roundtrip",
                      "task '" + a.task(e).logical_op +
                          "' lost in round-trip",
                      EntityKind::kEdge, e);
      continue;
    }
    const auto [sa, ca] = history.TaskObservation(e);
    const auto [sb, cb] = restored->TaskObservation(it->second);
    if (ca != cb || !CloseEnough(sa, sb, 1e-9)) {
      report.AddError("history.roundtrip",
                      "observations of task '" + a.task(e).logical_op +
                          "' changed in round-trip",
                      EntityKind::kEdge, e);
    }
  }
  return report;
}

AnalysisReport Verifier::CheckBudget(const History& history,
                                     int64_t budget_bytes) const {
  AnalysisReport report;
  if (budget_bytes < 0) {
    return report;
  }
  const int64_t used = history.MaterializedBytes();
  if (used > budget_bytes) {
    report.AddError("budget.exceeded",
                    "materialized artifacts hold " + std::to_string(used) +
                        " bytes, over the budget of " +
                        std::to_string(budget_bytes));
  }
  return report;
}

AnalysisReport Verifier::CheckStoreConsistency(
    const History& history, const storage::ArtifactStore& store) const {
  AnalysisReport report;
  std::set<std::string> materialized_names;
  int64_t expected_used = 0;
  for (NodeId v : history.MaterializedArtifacts()) {
    const ArtifactInfo& info = history.graph().artifact(v);
    materialized_names.insert(info.name);
    const Result<int64_t> stored = store.SizeOf(info.name);
    if (!stored.ok()) {
      report.AddError("store.missing-entry",
                      "artifact '" + info.display +
                          "' is marked materialized but has no store entry",
                      EntityKind::kNode, v);
      continue;
    }
    expected_used += *stored;
    if (*stored != info.size_bytes) {
      report.AddError(
          "store.size-mismatch",
          "artifact '" + info.display + "' is charged " +
              std::to_string(*stored) + " bytes in the store but " +
              std::to_string(info.size_bytes) + " in the history",
          EntityKind::kNode, v);
    }
  }
  for (const std::string& key : store.Keys()) {
    if (materialized_names.count(key) == 0) {
      const Result<int64_t> stored = store.SizeOf(key);
      expected_used += stored.ok() ? *stored : 0;
      report.AddError("store.orphan-entry",
                      "store holds '" + key +
                          "' but no history artifact is materialized "
                          "under that name");
    }
  }
  const int64_t used = store.used_bytes();
  if (used != expected_used) {
    report.AddError("store.used-bytes-drift",
                    "store reports " + std::to_string(used) +
                        " used bytes but its entries sum to " +
                        std::to_string(expected_used));
  }
  return report;
}

AnalysisReport Verifier::VerifyHistory(const History& history,
                                       const Dictionary* dictionary,
                                       int64_t budget_bytes) const {
  AnalysisReport report = CheckHistory(history, dictionary);
  report.Merge(CheckHistoryIndex(history));
  if (options_.check_roundtrip) {
    report.Merge(CheckHistoryRoundTrip(history));
  }
  report.Merge(CheckBudget(history, budget_bytes));
  return report;
}

}  // namespace hyppo::analysis
