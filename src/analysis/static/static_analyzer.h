#ifndef HYPPO_ANALYSIS_STATIC_STATIC_ANALYZER_H_
#define HYPPO_ANALYSIS_STATIC_STATIC_ANALYZER_H_

#include <vector>

#include "analysis/diagnostic.h"
#include "core/dictionary.h"
#include "core/graph.h"
#include "ml/registry.h"

namespace hyppo::analysis {

/// \brief Configuration of the static analyzer passes.
struct StaticAnalyzerOptions {
  /// When true the determinism lint escalates non-deterministic
  /// implementations to error severity: bitwise-contract paths (executor
  /// differential suites, fault-recovery re-execution) require
  /// byte-identical reproduction, so a non-deterministic op reachable
  /// from such a path is a correctness bug, not a style issue.
  bool require_bitwise = false;
};

/// \brief Static pipeline & catalog analyzer (pre-execution checking).
///
/// Four passes over the parsed pipeline hypergraph, the task dictionary,
/// and the physical-operator registry — all running before the optimizer
/// or executor touch anything:
///
///  1. CheckPipelineShapes — abstract interpretation of (rows, cols,
///     artifact kind) through every task edge; rejects arity, kind, and
///     dimension mismatches with source-located diagnostics
///     (`shape.*` checks).
///  2. CheckCatalog — equivalence soundness audit: every registered
///     implementation of one logical operator must agree on signature,
///     output kind, tolerance class, and determinism class, and
///     dictionary entries must be type-compatible with the registry
///     (`catalog.*` checks).
///  3. CheckDeterminism — flags ops whose bound implementation (or any
///     dictionary-equivalent substitute the augmenter may bind) is
///     tagged non-deterministic (`determinism.*` checks; error severity
///     on bitwise-contract paths).
///  4. CheckCostMonotonicity — plan/augmentation pre-check: cost-model
///     outputs must be finite and non-negative so Dijkstra-style plan
///     search stays monotone (`cost.*` checks). Structural augmentation
///     and plan checks are shared with graph_checks.h.
///
/// A pipeline whose passes all come back clean can safely skip the
/// runtime `Verifier::CheckPlan` re-verification (the fig9b plan-overhead
/// win); the Runtime wires this through `RuntimeOptions::static_checks`.
class StaticAnalyzer {
 public:
  explicit StaticAnalyzer(StaticAnalyzerOptions options = {})
      : options_(options) {}

  /// Pass 1: shape & schema inference over every task edge.
  AnalysisReport CheckPipelineShapes(const core::PipelineGraph& graph) const;

  /// Pass 2: equivalence soundness audit of dictionary vs registry.
  AnalysisReport CheckCatalog(const core::Dictionary& dictionary,
                              const ml::OperatorRegistry& registry) const;

  /// Pass 3: determinism lint over the ops a pipeline can bind.
  AnalysisReport CheckDeterminism(const core::PipelineGraph& graph,
                                  const core::Dictionary& dictionary,
                                  const ml::OperatorRegistry& registry) const;

  /// Pass 4 (cost leg): every augmentation edge weight must be finite and
  /// non-negative, and observed seconds must not be negative.
  AnalysisReport CheckCostMonotonicity(
      const std::vector<double>& edge_weight,
      const std::vector<double>& edge_seconds) const;

  /// Runs the pipeline-level passes (1 and 3) in one call — the Runtime
  /// submit-time entry point.
  AnalysisReport AnalyzePipeline(const core::PipelineGraph& graph,
                                 const core::Dictionary& dictionary,
                                 const ml::OperatorRegistry& registry) const;

  const StaticAnalyzerOptions& options() const { return options_; }

 private:
  StaticAnalyzerOptions options_;
};

}  // namespace hyppo::analysis

#endif  // HYPPO_ANALYSIS_STATIC_STATIC_ANALYZER_H_
