#include "analysis/static/static_analyzer.h"

#include <cmath>
#include <cstdint>
#include <set>
#include <string>
#include <vector>

namespace hyppo::analysis {

namespace {

using core::ArtifactInfo;
using core::ArtifactKind;
using core::PipelineGraph;
using core::TaskInfo;
using core::TaskType;

bool IsDataKind(ArtifactKind kind) {
  switch (kind) {
    case ArtifactKind::kRaw:
    case ArtifactKind::kTrain:
    case ArtifactKind::kTest:
    case ArtifactKind::kData:
      return true;
    default:
      return false;
  }
}

// Inputs of one task edge bucketed by payload kind — mirrors the
// executor's input binding, which groups tail artifacts the same way.
struct InputShape {
  std::vector<const ArtifactInfo*> datasets;
  std::vector<const ArtifactInfo*> states;
  std::vector<const ArtifactInfo*> predictions;
  int sources = 0;
};

InputShape BucketInputs(const PipelineGraph& graph, EdgeId edge) {
  InputShape in;
  for (NodeId t : graph.ordered_tail(edge)) {
    const ArtifactInfo& a = graph.artifact(t);
    if (t == graph.source() || a.kind == ArtifactKind::kSource) {
      ++in.sources;
    } else if (a.kind == ArtifactKind::kOpState) {
      in.states.push_back(&a);
    } else if (a.kind == ArtifactKind::kPredictions) {
      in.predictions.push_back(&a);
    } else {
      in.datasets.push_back(&a);
    }
  }
  return in;
}

// Attaches a source location (when the parser stamped one) and the edge
// entity to a diagnostic.
void AddTaskError(AnalysisReport& report, const std::string& check,
                  const TaskInfo& task, EdgeId edge, std::string message) {
  Diagnostic d;
  d.severity = Severity::kError;
  d.check = check;
  d.entity = EntityKind::kEdge;
  d.entity_id = edge;
  d.line = task.source_line;
  d.message = std::move(message);
  report.Add(std::move(d));
}

void AddTaskWarning(AnalysisReport& report, const std::string& check,
                    const TaskInfo& task, EdgeId edge, std::string message) {
  Diagnostic d;
  d.severity = Severity::kWarning;
  d.check = check;
  d.entity = EntityKind::kEdge;
  d.entity_id = edge;
  d.line = task.source_line;
  d.message = std::move(message);
  report.Add(std::move(d));
}

std::string TaskLabel(const TaskInfo& task) {
  return task.logical_op + "." + core::TaskTypeToString(task.type);
}

// Finds the non-load edge producing `node`, or -1.
EdgeId ProducerEdge(const PipelineGraph& graph, NodeId node) {
  for (EdgeId e : graph.hypergraph().bstar(node)) {
    if (graph.task(e).type != TaskType::kLoad) {
      return e;
    }
  }
  return -1;
}

// True when `edge` is a plain single-dataset fit (no state inputs) —
// the only fit shape whose input column count is trustworthy for
// downstream dimension checks (ensemble fits carry a sentinel).
bool IsPlainFit(const PipelineGraph& graph, EdgeId edge) {
  if (graph.task(edge).type != TaskType::kFit) {
    return false;
  }
  const InputShape in = BucketInputs(graph, edge);
  return in.datasets.size() == 1 && in.states.empty() &&
         in.predictions.empty();
}

void CheckSplitEdge(const PipelineGraph& graph, EdgeId edge,
                    const TaskInfo& task, const InputShape& in,
                    AnalysisReport& report) {
  const auto& heads = graph.ordered_head(edge);
  if (in.datasets.size() != 1 || !in.states.empty() ||
      !in.predictions.empty()) {
    AddTaskError(report, "shape.bad-arity", task, edge,
                 TaskLabel(task) + " expects exactly one dataset input, got " +
                     std::to_string(in.datasets.size()) + " dataset(s), " +
                     std::to_string(in.states.size()) + " state(s), " +
                     std::to_string(in.predictions.size()) +
                     " prediction(s)");
    return;
  }
  if (heads.size() != 2) {
    AddTaskError(report, "shape.bad-arity", task, edge,
                 TaskLabel(task) + " produces two outputs (train, test), " +
                     std::to_string(heads.size()) + " declared");
    return;
  }
  const ArtifactKind k0 = graph.artifact(heads[0]).kind;
  const ArtifactKind k1 = graph.artifact(heads[1]).kind;
  if (k0 != ArtifactKind::kTrain || k1 != ArtifactKind::kTest) {
    AddTaskError(report, "shape.kind-mismatch", task, edge,
                 TaskLabel(task) + " heads must be (train, test), got (" +
                     core::ArtifactKindToString(k0) + ", " +
                     core::ArtifactKindToString(k1) + ")");
  }
  const double test_size = task.config.GetDouble("test_size", 0.25);
  if (test_size <= 0.0 || test_size >= 1.0) {
    AddTaskError(report, "shape.bad-config", task, edge,
                 TaskLabel(task) + " test_size must be in (0, 1), got " +
                     std::to_string(test_size));
  }
}

void CheckFitEdge(const PipelineGraph& graph, EdgeId edge,
                  const TaskInfo& task, const InputShape& in,
                  AnalysisReport& report) {
  const auto& heads = graph.ordered_head(edge);
  // Plain fit: one dataset. Ensemble fit: base states + optional dataset.
  if (!in.predictions.empty() || in.datasets.size() > 1 ||
      in.datasets.size() + in.states.size() == 0) {
    AddTaskError(
        report, "shape.bad-arity", task, edge,
        TaskLabel(task) + " expects one dataset (plus op-states for "
                          "ensembles), got " +
            std::to_string(in.datasets.size()) + " dataset(s), " +
            std::to_string(in.states.size()) + " state(s), " +
            std::to_string(in.predictions.size()) + " prediction(s)");
    return;
  }
  if (heads.size() != 1 ||
      graph.artifact(heads[0]).kind != ArtifactKind::kOpState) {
    AddTaskError(report, "shape.kind-mismatch", task, edge,
                 TaskLabel(task) + " produces one op-state output");
  }
}

void CheckApplyEdge(const PipelineGraph& graph, EdgeId edge,
                    const TaskInfo& task, const InputShape& in,
                    AnalysisReport& report) {
  const auto& heads = graph.ordered_head(edge);
  if (in.states.size() != 1 || in.datasets.size() != 1 ||
      !in.predictions.empty()) {
    AddTaskError(report, "shape.bad-arity", task, edge,
                 TaskLabel(task) +
                     " expects exactly one op-state and one dataset, got " +
                     std::to_string(in.states.size()) + " state(s), " +
                     std::to_string(in.datasets.size()) + " dataset(s), " +
                     std::to_string(in.predictions.size()) +
                     " prediction(s)");
    return;
  }
  const ArtifactKind want = task.type == TaskType::kPredict
                                ? ArtifactKind::kPredictions
                                : ArtifactKind::kData;
  if (heads.size() != 1) {
    AddTaskError(report, "shape.bad-arity", task, edge,
                 TaskLabel(task) + " produces one output, " +
                     std::to_string(heads.size()) + " declared");
    return;
  }
  const ArtifactKind got = graph.artifact(heads[0]).kind;
  const bool head_ok = task.type == TaskType::kPredict
                           ? got == ArtifactKind::kPredictions
                           : IsDataKind(got);
  if (!head_ok) {
    AddTaskError(report, "shape.kind-mismatch", task, edge,
                 TaskLabel(task) + " output must be " +
                     core::ArtifactKindToString(want) + ", got " +
                     core::ArtifactKindToString(got));
  }
  // Dimension check: the data fed to transform/predict must match the
  // feature width the state was fitted on. Only plain fits propagate a
  // trustworthy column count (ensemble states carry a sentinel width).
  NodeId state_node = -1;
  for (NodeId t : graph.ordered_tail(edge)) {
    if (t != graph.source() &&
        graph.artifact(t).kind == ArtifactKind::kOpState) {
      state_node = t;
      break;
    }
  }
  if (state_node < 0) {
    return;
  }
  const EdgeId producer = ProducerEdge(graph, state_node);
  if (producer < 0 || !IsPlainFit(graph, producer)) {
    return;
  }
  const InputShape fit_in = BucketInputs(graph, producer);
  const int64_t fitted_cols = fit_in.datasets[0]->cols;
  const int64_t data_cols = in.datasets[0]->cols;
  if (fitted_cols > 0 && data_cols > 0 && fitted_cols != data_cols) {
    AddTaskError(report, "shape.dim-mismatch", task, edge,
                 TaskLabel(task) + " applies a state fitted on " +
                     std::to_string(fitted_cols) + " columns to data with " +
                     std::to_string(data_cols) + " columns");
  }
}

void CheckEvaluateEdge(const PipelineGraph& graph, EdgeId edge,
                       const TaskInfo& task, const InputShape& in,
                       AnalysisReport& report) {
  const auto& heads = graph.ordered_head(edge);
  if (in.predictions.size() != 1 || in.datasets.size() != 1 ||
      !in.states.empty()) {
    AddTaskError(report, "shape.bad-arity", task, edge,
                 TaskLabel(task) +
                     " expects exactly one predictions and one dataset "
                     "input, got " +
                     std::to_string(in.predictions.size()) +
                     " prediction(s), " + std::to_string(in.datasets.size()) +
                     " dataset(s), " + std::to_string(in.states.size()) +
                     " state(s)");
    return;
  }
  if (heads.size() != 1 ||
      graph.artifact(heads[0]).kind != ArtifactKind::kValue) {
    AddTaskError(report, "shape.kind-mismatch", task, edge,
                 TaskLabel(task) + " produces one value output");
  }
  const int64_t pred_rows = in.predictions[0]->rows;
  const int64_t data_rows = in.datasets[0]->rows;
  if (pred_rows > 0 && data_rows > 0 && pred_rows != data_rows) {
    AddTaskError(report, "shape.dim-mismatch", task, edge,
                 TaskLabel(task) + " compares " + std::to_string(pred_rows) +
                     " predictions against " + std::to_string(data_rows) +
                     " labelled rows");
  }
}

// Splits a dictionary key "lop.tasktype" at its last dot.
bool SplitKey(const std::string& key, std::string& lop, std::string& type) {
  const size_t dot = key.rfind('.');
  if (dot == std::string::npos || dot == 0 || dot + 1 == key.size()) {
    return false;
  }
  lop = key.substr(0, dot);
  type = key.substr(dot + 1);
  return true;
}

}  // namespace

AnalysisReport StaticAnalyzer::CheckPipelineShapes(
    const PipelineGraph& graph) const {
  AnalysisReport report;
  for (EdgeId e = 0; e < graph.num_tasks(); ++e) {
    const TaskInfo& task = graph.task(e);
    if (task.type == TaskType::kLoad) {
      continue;  // load edges are s -> node by construction
    }
    const InputShape in = BucketInputs(graph, e);
    if (in.sources > 0) {
      AddTaskError(report, "shape.kind-mismatch", task, e,
                   TaskLabel(task) +
                       " consumes the source node directly; only load "
                       "tasks may read from s");
      continue;
    }
    switch (task.type) {
      case TaskType::kSplit:
        CheckSplitEdge(graph, e, task, in, report);
        break;
      case TaskType::kFit:
        CheckFitEdge(graph, e, task, in, report);
        break;
      case TaskType::kTransform:
      case TaskType::kPredict:
        CheckApplyEdge(graph, e, task, in, report);
        break;
      case TaskType::kEvaluate:
        CheckEvaluateEdge(graph, e, task, in, report);
        break;
      case TaskType::kLoad:
        break;
    }
  }
  return report;
}

AnalysisReport StaticAnalyzer::CheckCatalog(
    const core::Dictionary& dictionary,
    const ml::OperatorRegistry& registry) const {
  AnalysisReport report;
  for (const std::string& key : dictionary.Keys()) {
    std::string lop;
    std::string type_name;
    if (!SplitKey(key, lop, type_name)) {
      report.AddError("catalog.malformed-key",
                      "dictionary key '" + key +
                          "' is not of the form lop.tasktype");
      continue;
    }
    Result<TaskType> type = core::TaskTypeFromString(type_name);
    if (!type.ok()) {
      report.AddError("catalog.malformed-key",
                      "dictionary key '" + key + "' has unknown task type '" +
                          type_name + "'");
      continue;
    }
    Result<ml::MlTask> ml_task = core::ToMlTask(*type);
    const std::vector<std::string>& impls = dictionary.ImplsFor(lop, *type);
    if (impls.empty()) {
      report.AddWarning("catalog.empty-entry",
                        "dictionary entry '" + key +
                            "' lists no implementations");
      continue;
    }
    std::set<std::string> seen;
    // Tolerance/determinism agreement across the equivalence class: every
    // implementation bound to one dictionary entry must declare the same
    // contracts, otherwise substituting one for another silently changes
    // what downstream consumers may assume.
    const ml::PhysicalOperator* reference = nullptr;
    for (const std::string& impl : impls) {
      if (!seen.insert(impl).second) {
        report.AddWarning("catalog.duplicate-impl",
                          "dictionary entry '" + key +
                              "' lists implementation '" + impl +
                              "' more than once");
        continue;
      }
      Result<const ml::PhysicalOperator*> op = registry.Get(impl);
      if (!op.ok()) {
        // Unknown operators are legal single-implementation operators
        // (paper §IV-C): the user may bind impls the registry never saw.
        report.AddWarning("catalog.unknown-impl",
                          "dictionary entry '" + key +
                              "' references implementation '" + impl +
                              "' that is not in the operator registry");
        continue;
      }
      if ((*op)->logical_op() != lop) {
        report.AddError("catalog.logical-op-mismatch",
                        "dictionary entry '" + key + "' binds '" + impl +
                            "' which implements logical operator '" +
                            (*op)->logical_op() + "', not '" + lop + "'");
        continue;
      }
      if (ml_task.ok() && !(*op)->SupportsTask(*ml_task)) {
        report.AddError("catalog.unsupported-task",
                        "dictionary entry '" + key + "' binds '" + impl +
                            "' which does not support task type '" +
                            type_name + "'");
        continue;
      }
      if (reference == nullptr) {
        reference = *op;
        continue;
      }
      if ((*op)->tolerance() != reference->tolerance()) {
        report.AddError(
            "catalog.tolerance-mismatch",
            "equivalence class '" + key + "' is inconsistent: '" +
                reference->impl_name() + "' declares " +
                ml::ToleranceToString(reference->tolerance()) +
                " tolerance but '" + impl + "' declares " +
                ml::ToleranceToString((*op)->tolerance()));
      }
      if ((*op)->determinism() != reference->determinism()) {
        report.AddWarning(
            "catalog.determinism-mismatch",
            "equivalence class '" + key + "' mixes determinism classes: '" +
                reference->impl_name() + "' is " +
                ml::DeterminismToString(reference->determinism()) +
                " but '" + impl + "' is " +
                ml::DeterminismToString((*op)->determinism()));
      }
    }
  }
  return report;
}

AnalysisReport StaticAnalyzer::CheckDeterminism(
    const PipelineGraph& graph, const core::Dictionary& dictionary,
    const ml::OperatorRegistry& registry) const {
  AnalysisReport report;
  const Severity severity =
      options_.require_bitwise ? Severity::kError : Severity::kWarning;
  for (EdgeId e = 0; e < graph.num_tasks(); ++e) {
    const TaskInfo& task = graph.task(e);
    if (task.type == TaskType::kLoad) {
      continue;
    }
    // The op the pipeline binds plus every dictionary-equivalent impl the
    // augmenter may substitute: any of them can end up executing this
    // task, so all must honour the reproducibility contract.
    std::vector<std::string> candidates;
    candidates.push_back(task.impl);
    for (const std::string& impl :
         dictionary.ImplsFor(task.logical_op, task.type)) {
      if (impl != task.impl) {
        candidates.push_back(impl);
      }
    }
    for (const std::string& impl : candidates) {
      Result<const ml::PhysicalOperator*> op = registry.Get(impl);
      if (!op.ok()) {
        if (impl == task.impl) {
          AddTaskWarning(report, "determinism.unknown-impl", task, e,
                         TaskLabel(task) + " binds implementation '" + impl +
                             "' that is not in the operator registry; its "
                             "determinism cannot be verified");
        }
        continue;
      }
      if ((*op)->determinism() == ml::Determinism::kNonDeterministic) {
        Diagnostic d;
        d.severity = severity;
        d.check = "determinism.non-deterministic-op";
        d.entity = EntityKind::kEdge;
        d.entity_id = e;
        d.line = task.source_line;
        d.message =
            TaskLabel(task) + " can bind non-deterministic implementation '" +
            impl + "'" +
            (options_.require_bitwise
                 ? " on a bitwise-contract path (fault recovery or "
                   "differential execution requires byte-identical replay)"
                 : "");
        report.Add(std::move(d));
      }
    }
  }
  return report;
}

AnalysisReport StaticAnalyzer::CheckCostMonotonicity(
    const std::vector<double>& edge_weight,
    const std::vector<double>& edge_seconds) const {
  AnalysisReport report;
  for (size_t i = 0; i < edge_weight.size(); ++i) {
    const double w = edge_weight[i];
    if (!std::isfinite(w) || w < 0.0) {
      report.AddError("cost.non-monotone",
                      "edge weight " + std::to_string(w) +
                          " breaks cost-model monotonicity (plan search "
                          "requires finite non-negative weights)",
                      EntityKind::kEdge, static_cast<int64_t>(i));
    }
  }
  for (size_t i = 0; i < edge_seconds.size(); ++i) {
    const double s = edge_seconds[i];
    if (!std::isfinite(s) || s < 0.0) {
      report.AddError("cost.non-monotone",
                      "edge seconds " + std::to_string(s) +
                          " is not a finite non-negative duration",
                      EntityKind::kEdge, static_cast<int64_t>(i));
    }
  }
  return report;
}

AnalysisReport StaticAnalyzer::AnalyzePipeline(
    const PipelineGraph& graph, const core::Dictionary& dictionary,
    const ml::OperatorRegistry& registry) const {
  AnalysisReport report = CheckPipelineShapes(graph);
  report.Merge(CheckDeterminism(graph, dictionary, registry));
  return report;
}

}  // namespace hyppo::analysis
