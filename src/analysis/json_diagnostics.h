#ifndef HYPPO_ANALYSIS_JSON_DIAGNOSTICS_H_
#define HYPPO_ANALYSIS_JSON_DIAGNOSTICS_H_

#include <string>

#include "analysis/diagnostic.h"

namespace hyppo::analysis {

/// \brief Renders an analysis report as a machine-readable JSON document.
///
/// Shared by `hyppo_lint --json` and the CI lint gate so automation can
/// consume diagnostics without parsing human-oriented text. The layout is
/// stable:
///
/// ```json
/// {
///   "target": "<what was analyzed>",
///   "summary": {"errors": 1, "warnings": 0, "clean": false},
///   "diagnostics": [
///     {"severity": "error", "check": "plan.unsatisfied-input",
///      "entity": "edge", "entity_id": 7, "line": 3, "column": 12,
///      "message": "..."}
///   ]
/// }
/// ```
///
/// `line`/`column` are emitted only when > 0; `entity`/`entity_id` only
/// when the diagnostic points at a graph entity.
std::string ReportToJson(const AnalysisReport& report,
                         const std::string& target);

/// Escapes `s` for inclusion inside a JSON string literal (quotes,
/// backslashes, control characters).
std::string JsonEscape(const std::string& s);

}  // namespace hyppo::analysis

#endif  // HYPPO_ANALYSIS_JSON_DIAGNOSTICS_H_
