#ifndef HYPPO_SERVING_SESSION_MANAGER_H_
#define HYPPO_SERVING_SESSION_MANAGER_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "core/hyppo.h"
#include "core/method.h"
#include "core/runtime.h"
#include "storage/fault_injection.h"

namespace hyppo::serving {

/// Creates the per-session optimization method bound to the shared
/// runtime (the serving analogue of workload::MethodFactory). Defaults
/// to HyppoMethod with ServingOptions::method when unset.
using MethodMaker =
    std::function<std::unique_ptr<core::Method>(core::Runtime*)>;

/// \brief Configuration of a multi-tenant serving runtime.
struct ServingOptions {
  /// Options of the one shared Runtime (history + store + estimator)
  /// every session plans against and commits into.
  core::RuntimeOptions runtime;
  /// Planning options of the default per-session HyppoMethod.
  core::HyppoMethod::Options method;
  /// Overrides the per-session method (baselines, instrumented methods).
  MethodMaker make_method;
  /// Admission control: at most this many sessions execute concurrently;
  /// excess submissions queue FIFO. <= 0 disables the gate.
  int max_in_flight_sessions = 8;
  /// Chaos knob: probability of injected storage/compute faults, shared
  /// by all sessions (storage::FaultPlan::Uniform). 0 disables.
  double fault_rate = 0.0;
  uint64_t fault_seed = 1;
};

/// \brief One client's work: an ordered pipeline sequence submitted under
/// a stable session id.
struct SessionRequest {
  std::string session_id;
  std::vector<core::Pipeline> pipelines;
  /// Submit the pipelines as one hyperparameter sweep: the session plans
  /// them as a batch (Method::PlanPipelineBatch — merged hypergraph, one
  /// augmentation, shared lower bounds) and executes with cross-member
  /// shared-prefix seeding (Runtime::RunBatch). Methods without a batch
  /// path fall back to the ordered sequential loop; payloads are
  /// byte-identical either way.
  bool as_sweep = false;
};

/// \brief Per-session outcome and telemetry.
struct SessionReport {
  std::string session_id;
  /// First error the session hit; pipelines after it are not executed.
  Status status = Status::OK();
  int32_t pipelines_completed = 0;
  /// Charged execution seconds per completed pipeline, in submission
  /// order (the per-session latency profile).
  std::vector<double> per_pipeline_seconds;
  /// Totals across the sequence.
  double charged_seconds = 0.0;
  double optimize_seconds = 0.0;
  /// Wall-clock seconds from submission to completion, including the
  /// admission-queue wait below.
  double wall_seconds = 0.0;
  double queue_seconds = 0.0;
  /// Planned loads of materialized non-raw artifacts (reuse), and the
  /// subset first materialized by a *different* session (cross-session
  /// reuse — the multi-tenant payoff).
  int64_t reuse_loads = 0;
  int64_t cross_session_loads = 0;
  /// Self-healing telemetry summed over the sequence.
  int64_t replans = 0;
  int64_t failed_tasks = 0;
  int64_t recovered_tasks = 0;
  /// Serialized-payload-ready target payloads by canonical name (the
  /// differential tests compare these byte-for-byte across topologies).
  std::map<std::string, storage::ArtifactPayload> target_payloads;
};

/// \brief Multi-tenant serving runtime: N concurrent client sessions
/// against one shared Runtime (history + artifact store + estimator), so
/// one session's materialized artifacts serve every other session's
/// equivalent plans (docs/SERVING.md).
///
/// Locking contract (the catalog lock, a reader/writer lock the manager
/// installs into the shared runtime):
///  - PLAN under the reader side: a session's method sees a consistent
///    history snapshot; any number of sessions plan concurrently.
///  - COMMIT under the writer side: Runtime::ExecuteAndRecord takes it
///    internally around every catalog mutation (structure recording,
///    observation recording, recovery degradation, compaction), and the
///    manager takes it around the materializer's decide+apply.
///  - EXECUTE outside the lock: operator runs and store I/O are already
///    internally synchronized, so heavy work never blocks planners.
///
/// A plan can go stale between planning and execution (another session's
/// materializer evicted an artifact the plan loads). That surfaces as a
/// load failure and is absorbed by the runtime's existing self-healing
/// recovery loop — degrade, re-plan, re-execute — so conflict resolution
/// reuses the chaos machinery instead of adding a second mechanism.
class SessionManager {
 public:
  explicit SessionManager(ServingOptions options);
  ~SessionManager();

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// The shared runtime (register datasets here before serving).
  core::Runtime& runtime() { return *runtime_; }
  const core::Runtime& runtime() const { return *runtime_; }

  /// Forwarded Runtime::session_status(): a durable store that failed to
  /// open (e.g. its directory is locked by another live manager) makes
  /// every session fail fast with this status.
  const Status& session_status() const { return runtime_->session_status(); }

  /// Runs one session's sequence to completion on the calling thread
  /// (blocks in the admission queue when the gate is full). Thread-safe:
  /// sessions run concurrently from any number of threads.
  SessionReport RunSession(const SessionRequest& request);

  /// Runs every request on its own thread and returns the reports in
  /// request order. Persists the session afterwards when durable.
  std::vector<SessionReport> RunSessions(
      const std::vector<SessionRequest>& requests);

  /// \brief Aggregate serving statistics across all sessions so far.
  struct Stats {
    int64_t sessions_completed = 0;
    /// Sessions that waited in the admission queue before running.
    int64_t sessions_queued = 0;
    /// High-water mark of concurrently executing sessions.
    int max_observed_in_flight = 0;
    int64_t pipelines_completed = 0;
    int64_t reuse_loads = 0;
    int64_t cross_session_loads = 0;
  };
  Stats stats() const;

 private:
  /// Blocks until an in-flight slot frees up (FIFO by ticket). Records
  /// the wait into `report`.
  void Admit(SessionReport* report);
  void Release();
  std::unique_ptr<core::Method> MakeMethod();
  /// Runs an as_sweep request through the batch path (plan under the
  /// reader lock, RunBatch outside it, one materialization under the
  /// writer lock). Returns false when the method lacks a batch path or
  /// batch planning is disabled — the caller falls back to the
  /// sequential loop with the report untouched.
  bool RunSweep(const SessionRequest& request, core::Method* method,
                SessionReport* report);
  /// Counts the plan's materialized-artifact loads and classifies them by
  /// owning session. Caller holds the catalog lock (reader side).
  void CountReuseLocked(const core::Method::Planned& planned,
                        const std::string& session_id,
                        SessionReport* report) const;
  /// Same, for one member plan of a batch over the merged augmentation.
  void CountPlanReuseLocked(const core::Augmentation& aug,
                            const core::Plan& plan,
                            const std::string& session_id,
                            SessionReport* report) const;
  /// Diffs the materialized set around a materializer run and assigns
  /// newly materialized names to `session_id`. Caller holds the catalog
  /// lock (writer side).
  void RecordNewMaterializationsLocked(
      const std::vector<std::string>& before_names,
      const std::string& session_id);

  ServingOptions options_;
  std::unique_ptr<core::Runtime> runtime_;
  /// The catalog reader/writer lock installed into runtime_.
  mutable std::shared_mutex catalog_mutex_;
  /// Which session first materialized each artifact name; guarded by
  /// catalog_mutex_ (read under shared, written under exclusive).
  std::unordered_map<std::string, std::string> materialized_by_;

  /// Admission gate (FIFO tickets) + aggregate stats.
  mutable std::mutex admission_mutex_;
  std::condition_variable admission_cv_;
  uint64_t next_ticket_ = 0;
  uint64_t serving_ticket_ = 0;
  int in_flight_ = 0;
  Stats stats_;
};

}  // namespace hyppo::serving

#endif  // HYPPO_SERVING_SESSION_MANAGER_H_
