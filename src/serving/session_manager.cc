#include "serving/session_manager.h"

#include <algorithm>
#include <set>
#include <thread>
#include <utility>

#include "common/clock.h"

namespace hyppo::serving {

SessionManager::SessionManager(ServingOptions options)
    : options_(std::move(options)),
      runtime_(std::make_unique<core::Runtime>(options_.runtime)) {
  runtime_->set_catalog_mutex(&catalog_mutex_);
  if (options_.fault_rate > 0.0) {
    runtime_->EnableFaultInjection(storage::FaultPlan::Uniform(
        options_.fault_seed, options_.fault_rate));
  }
}

SessionManager::~SessionManager() = default;

std::unique_ptr<core::Method> SessionManager::MakeMethod() {
  if (options_.make_method) {
    return options_.make_method(runtime_.get());
  }
  return std::make_unique<core::HyppoMethod>(runtime_.get(),
                                             options_.method);
}

void SessionManager::Admit(SessionReport* report) {
  const WallClock clock;
  const Stopwatch wait(clock);
  std::unique_lock<std::mutex> lock(admission_mutex_);
  const uint64_t ticket = next_ticket_++;
  const int max_in_flight = options_.max_in_flight_sessions;
  bool queued = false;
  // FIFO by ticket: a session runs once every earlier ticket has been
  // admitted and a slot is free, so the gate cannot starve anyone.
  while (ticket != serving_ticket_ ||
         (max_in_flight > 0 && in_flight_ >= max_in_flight)) {
    queued = true;
    admission_cv_.wait(lock);
  }
  ++serving_ticket_;
  ++in_flight_;
  stats_.max_observed_in_flight =
      std::max(stats_.max_observed_in_flight, in_flight_);
  if (queued) {
    ++stats_.sessions_queued;
    report->queue_seconds = wait.Elapsed();
  }
  // The next ticket may already be admissible (gate not full).
  admission_cv_.notify_all();
}

void SessionManager::Release() {
  std::lock_guard<std::mutex> lock(admission_mutex_);
  --in_flight_;
  admission_cv_.notify_all();
}

void SessionManager::CountReuseLocked(const core::Method::Planned& planned,
                                      const std::string& session_id,
                                      SessionReport* report) const {
  CountPlanReuseLocked(planned.aug, planned.plan, session_id, report);
}

void SessionManager::CountPlanReuseLocked(const core::Augmentation& aug,
                                          const core::Plan& plan,
                                          const std::string& session_id,
                                          SessionReport* report) const {
  for (EdgeId e : plan.edges) {
    const core::TaskInfo& task = aug.graph.task(e);
    if (task.type != core::TaskType::kLoad) {
      continue;
    }
    const NodeId head = aug.graph.ordered_head(e)[0];
    const core::ArtifactInfo& info = aug.graph.artifact(head);
    if (info.kind == core::ArtifactKind::kRaw) {
      continue;  // raw dataset loads are sources, not reused work
    }
    ++report->reuse_loads;
    auto owner = materialized_by_.find(info.name);
    if (owner != materialized_by_.end() && owner->second != session_id) {
      ++report->cross_session_loads;
    }
  }
}

void SessionManager::RecordNewMaterializationsLocked(
    const std::vector<std::string>& before_names,
    const std::string& session_id) {
  const std::set<std::string> before(before_names.begin(),
                                     before_names.end());
  for (NodeId v : runtime_->history().MaterializedArtifacts()) {
    const std::string& name = runtime_->history().graph().artifact(v).name;
    if (before.count(name) == 0) {
      // emplace keeps the first materializer on re-materialization after
      // an eviction by the same name — ownership is first-writer-wins.
      materialized_by_.emplace(name, session_id);
    }
  }
}

bool SessionManager::RunSweep(const SessionRequest& request,
                              core::Method* method, SessionReport* report) {
  if (!options_.runtime.batch_planning) {
    return false;
  }
  // PLAN the whole sweep under the reader side: one merged augmentation
  // against a consistent history snapshot. Reuse is counted per member
  // plan inside the same critical section so the counts and the plans
  // describe the same catalog state.
  SessionReport reuse_counts;
  Result<core::BatchPlanner::Planned> planned = [&] {
    std::shared_lock<std::shared_mutex> plan_lock(catalog_mutex_);
    Result<core::BatchPlanner::Planned> p =
        method->PlanPipelineBatch(request.pipelines);
    if (p.ok()) {
      for (const core::BatchPlanner::MemberPlan& member : p->members) {
        CountPlanReuseLocked(p->merged, member.plan, request.session_id,
                             &reuse_counts);
      }
    }
    return p;
  }();
  if (!planned.ok()) {
    if (planned.status().IsNotImplemented()) {
      return false;  // the method has no batch path; run sequentially
    }
    report->status = planned.status();
    return true;
  }
  report->reuse_loads += reuse_counts.reuse_loads;
  report->cross_session_loads += reuse_counts.cross_session_loads;
  report->optimize_seconds += planned->optimize_seconds;
  // EXECUTE outside the lock, with cross-member shared-prefix seeding;
  // the runtime pins the batch's artifact names against concurrent
  // compaction and takes the writer side around each commit.
  Result<core::Runtime::BatchExecutionRecord> record = runtime_->RunBatch(
      request.pipelines, planned->merged, planned->members,
      method->MakeReplanner());
  if (!record.ok()) {
    report->status = record.status();
    return true;
  }
  for (const core::Runtime::ExecutionRecord& member : record->members) {
    report->per_pipeline_seconds.push_back(member.seconds);
    report->charged_seconds += member.seconds;
    report->replans += member.replans;
    report->failed_tasks += member.failed_tasks;
    report->recovered_tasks += member.recovered_tasks;
  }
  {
    // MATERIALIZE once for the whole batch under the writer side.
    std::unique_lock<std::shared_mutex> commit_lock(catalog_mutex_);
    std::vector<std::string> before;
    for (NodeId v : runtime_->history().MaterializedArtifacts()) {
      before.push_back(runtime_->history().graph().artifact(v).name);
    }
    const Status materialized =
        method->AfterBatchExecution(request.pipelines, *planned, *record);
    if (!materialized.ok()) {
      report->status = materialized;
      return true;
    }
    RecordNewMaterializationsLocked(before, request.session_id);
  }
  for (size_t i = 0; i < request.pipelines.size(); ++i) {
    const core::Pipeline& pipeline = request.pipelines[i];
    for (NodeId t : pipeline.targets) {
      const std::string& name = pipeline.graph.artifact(t).name;
      auto it = record->members[i].payloads_by_name.find(name);
      if (it != record->members[i].payloads_by_name.end()) {
        report->target_payloads[name] = it->second;
      }
    }
    ++report->pipelines_completed;
  }
  return true;
}

SessionReport SessionManager::RunSession(const SessionRequest& request) {
  SessionReport report;
  report.session_id = request.session_id;
  const WallClock clock;
  const Stopwatch total(clock);
  if (!session_status().ok()) {
    report.status = session_status();
    return report;
  }
  Admit(&report);
  std::unique_ptr<core::Method> method = MakeMethod();
  bool handled = false;
  if (request.as_sweep && request.pipelines.size() >= 2) {
    handled = RunSweep(request, method.get(), &report);
  }
  for (const core::Pipeline& pipeline : request.pipelines) {
    if (handled) {
      break;
    }
    // PLAN under the reader side of the catalog lock: the method sees a
    // consistent history snapshot, concurrently with other planners.
    Result<core::Method::Planned> planned = [&] {
      std::shared_lock<std::shared_mutex> plan_lock(catalog_mutex_);
      Result<core::Method::Planned> p = method->PlanPipeline(pipeline);
      if (p.ok()) {
        CountReuseLocked(*p, request.session_id, &report);
      }
      return p;
    }();
    if (!planned.ok()) {
      report.status = planned.status();
      break;
    }
    report.optimize_seconds += planned->optimize_seconds;
    // EXECUTE outside the lock; the runtime takes the writer side
    // internally around each catalog commit. A plan gone stale under us
    // (another session evicted an artifact it loads) fails the load and
    // is healed by the runtime's degrade-and-re-plan recovery.
    Result<core::Runtime::ExecutionRecord> record =
        runtime_->ExecuteAndRecord(pipeline, planned->aug, planned->plan,
                                   method->MakeReplanner());
    if (!record.ok()) {
      report.status = record.status();
      break;
    }
    report.per_pipeline_seconds.push_back(record->seconds);
    report.charged_seconds += record->seconds;
    report.replans += record->replans;
    report.failed_tasks += record->failed_tasks;
    report.recovered_tasks += record->recovered_tasks;
    {
      // MATERIALIZE under the writer side: the policy reads history
      // statistics and mutates the store + materialized set.
      std::unique_lock<std::shared_mutex> commit_lock(catalog_mutex_);
      std::vector<std::string> before;
      for (NodeId v : runtime_->history().MaterializedArtifacts()) {
        before.push_back(runtime_->history().graph().artifact(v).name);
      }
      const Status materialized =
          method->AfterExecution(pipeline, *planned, *record);
      if (!materialized.ok()) {
        report.status = materialized;
        break;
      }
      RecordNewMaterializationsLocked(before, request.session_id);
    }
    for (NodeId t : pipeline.targets) {
      const std::string& name = pipeline.graph.artifact(t).name;
      auto it = record->payloads_by_name.find(name);
      if (it != record->payloads_by_name.end()) {
        report.target_payloads[name] = it->second;
      }
    }
    ++report.pipelines_completed;
  }
  Release();
  report.wall_seconds = total.Elapsed();
  runtime_->monitor().RecordReuseLoads(report.reuse_loads);
  runtime_->monitor().RecordCrossSessionLoads(report.cross_session_loads);
  {
    std::lock_guard<std::mutex> lock(admission_mutex_);
    ++stats_.sessions_completed;
    stats_.pipelines_completed += report.pipelines_completed;
    stats_.reuse_loads += report.reuse_loads;
    stats_.cross_session_loads += report.cross_session_loads;
  }
  return report;
}

std::vector<SessionReport> SessionManager::RunSessions(
    const std::vector<SessionRequest>& requests) {
  std::vector<SessionReport> reports(requests.size());
  std::vector<std::thread> threads;
  threads.reserve(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    threads.emplace_back([this, &requests, &reports, i] {
      reports[i] = RunSession(requests[i]);
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  if (!options_.runtime.store_dir.empty() && session_status().ok()) {
    const Status persisted = runtime_->PersistSession();
    if (!persisted.ok()) {
      for (SessionReport& report : reports) {
        if (report.status.ok()) {
          report.status = persisted;
        }
      }
    }
  }
  return reports;
}

SessionManager::Stats SessionManager::stats() const {
  std::lock_guard<std::mutex> lock(admission_mutex_);
  return stats_;
}

}  // namespace hyppo::serving
