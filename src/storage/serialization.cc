#include "storage/serialization.h"

#include <cstring>

namespace hyppo::storage {

namespace {

constexpr uint32_t kMagic = 0x48595031;  // "HYP1"

enum class PayloadTag : uint32_t {
  kMonostate = 0,
  kDataset = 1,
  kVectorState = 2,
  kTreeState = 3,
  kForestState = 4,
  kEnsembleState = 5,
  kPredictions = 6,
  kValue = 7,
};

void WriteFlatTree(BinaryWriter& writer, const ml::FlatTree& tree) {
  writer.WriteI32Vector(tree.feature);
  writer.WriteDoubleVector(tree.threshold);
  writer.WriteI32Vector(tree.left);
  writer.WriteI32Vector(tree.right);
  writer.WriteDoubleVector(tree.value);
}

Result<ml::FlatTree> ReadFlatTree(BinaryReader& reader) {
  ml::FlatTree tree;
  HYPPO_ASSIGN_OR_RETURN(tree.feature, reader.ReadI32Vector());
  HYPPO_ASSIGN_OR_RETURN(tree.threshold, reader.ReadDoubleVector());
  HYPPO_ASSIGN_OR_RETURN(tree.left, reader.ReadI32Vector());
  HYPPO_ASSIGN_OR_RETURN(tree.right, reader.ReadI32Vector());
  HYPPO_ASSIGN_OR_RETURN(tree.value, reader.ReadDoubleVector());
  const size_t n = tree.feature.size();
  if (tree.threshold.size() != n || tree.left.size() != n ||
      tree.right.size() != n || tree.value.size() != n) {
    return Status::ParseError("flat tree arrays have inconsistent sizes");
  }
  return tree;
}

Status WriteState(BinaryWriter& writer, const ml::OpState& state);

Result<ml::OpStatePtr> ReadState(BinaryReader& reader);

Status WriteStateBody(BinaryWriter& writer, const ml::OpState& state) {
  if (const auto* vs = dynamic_cast<const ml::VectorState*>(&state)) {
    writer.WriteU32(static_cast<uint32_t>(PayloadTag::kVectorState));
    writer.WriteString(state.logical_op());
    writer.WriteU64(vs->vectors.size());
    for (const auto& [key, values] : vs->vectors) {
      writer.WriteString(key);
      writer.WriteDoubleVector(values);
    }
    writer.WriteU64(vs->scalars.size());
    for (const auto& [key, value] : vs->scalars) {
      writer.WriteString(key);
      writer.WriteDouble(value);
    }
    return Status::OK();
  }
  if (const auto* ts = dynamic_cast<const ml::TreeState*>(&state)) {
    writer.WriteU32(static_cast<uint32_t>(PayloadTag::kTreeState));
    writer.WriteString(state.logical_op());
    writer.WriteBool(ts->is_classifier);
    WriteFlatTree(writer, ts->tree);
    return Status::OK();
  }
  if (const auto* fs = dynamic_cast<const ml::ForestState*>(&state)) {
    writer.WriteU32(static_cast<uint32_t>(PayloadTag::kForestState));
    writer.WriteString(state.logical_op());
    writer.WriteBool(fs->is_classifier);
    writer.WriteDouble(fs->base_prediction);
    writer.WriteDoubleVector(fs->tree_weights);
    writer.WriteU64(fs->trees.size());
    for (const ml::FlatTree& tree : fs->trees) {
      WriteFlatTree(writer, tree);
    }
    return Status::OK();
  }
  if (const auto* es = dynamic_cast<const ml::EnsembleState*>(&state)) {
    writer.WriteU32(static_cast<uint32_t>(PayloadTag::kEnsembleState));
    writer.WriteString(state.logical_op());
    writer.WriteDouble(es->meta_intercept);
    writer.WriteDoubleVector(es->meta_weights);
    writer.WriteU64(es->base_impls.size());
    for (const std::string& impl : es->base_impls) {
      writer.WriteString(impl);
    }
    writer.WriteU64(es->base_logical_ops.size());
    for (const std::string& lop : es->base_logical_ops) {
      writer.WriteString(lop);
    }
    writer.WriteU64(es->base_states.size());
    for (const ml::OpStatePtr& base : es->base_states) {
      HYPPO_RETURN_NOT_OK(WriteState(writer, *base));
    }
    return Status::OK();
  }
  return Status::NotImplemented("unknown op-state subtype '" +
                                state.logical_op() + "'");
}

Status WriteState(BinaryWriter& writer, const ml::OpState& state) {
  return WriteStateBody(writer, state);
}

Result<ml::OpStatePtr> ReadStateBody(BinaryReader& reader, PayloadTag tag) {
  switch (tag) {
    case PayloadTag::kVectorState: {
      HYPPO_ASSIGN_OR_RETURN(std::string lop, reader.ReadString());
      auto state = std::make_shared<ml::VectorState>(lop);
      HYPPO_ASSIGN_OR_RETURN(uint64_t vectors, reader.ReadU64());
      for (uint64_t i = 0; i < vectors; ++i) {
        HYPPO_ASSIGN_OR_RETURN(std::string key, reader.ReadString());
        HYPPO_ASSIGN_OR_RETURN(state->vectors[key],
                               reader.ReadDoubleVector());
      }
      HYPPO_ASSIGN_OR_RETURN(uint64_t scalars, reader.ReadU64());
      for (uint64_t i = 0; i < scalars; ++i) {
        HYPPO_ASSIGN_OR_RETURN(std::string key, reader.ReadString());
        HYPPO_ASSIGN_OR_RETURN(state->scalars[key], reader.ReadDouble());
      }
      return ml::OpStatePtr(std::move(state));
    }
    case PayloadTag::kTreeState: {
      HYPPO_ASSIGN_OR_RETURN(std::string lop, reader.ReadString());
      auto state = std::make_shared<ml::TreeState>(lop);
      HYPPO_ASSIGN_OR_RETURN(state->is_classifier, reader.ReadBool());
      HYPPO_ASSIGN_OR_RETURN(state->tree, ReadFlatTree(reader));
      return ml::OpStatePtr(std::move(state));
    }
    case PayloadTag::kForestState: {
      HYPPO_ASSIGN_OR_RETURN(std::string lop, reader.ReadString());
      auto state = std::make_shared<ml::ForestState>(lop);
      HYPPO_ASSIGN_OR_RETURN(state->is_classifier, reader.ReadBool());
      HYPPO_ASSIGN_OR_RETURN(state->base_prediction, reader.ReadDouble());
      HYPPO_ASSIGN_OR_RETURN(state->tree_weights,
                             reader.ReadDoubleVector());
      HYPPO_ASSIGN_OR_RETURN(uint64_t trees, reader.ReadU64());
      for (uint64_t i = 0; i < trees; ++i) {
        HYPPO_ASSIGN_OR_RETURN(ml::FlatTree tree, ReadFlatTree(reader));
        state->trees.push_back(std::move(tree));
      }
      if (state->trees.size() != state->tree_weights.size()) {
        return Status::ParseError("forest tree/weight count mismatch");
      }
      return ml::OpStatePtr(std::move(state));
    }
    case PayloadTag::kEnsembleState: {
      HYPPO_ASSIGN_OR_RETURN(std::string lop, reader.ReadString());
      auto state = std::make_shared<ml::EnsembleState>(lop);
      HYPPO_ASSIGN_OR_RETURN(state->meta_intercept, reader.ReadDouble());
      HYPPO_ASSIGN_OR_RETURN(state->meta_weights,
                             reader.ReadDoubleVector());
      HYPPO_ASSIGN_OR_RETURN(uint64_t impls, reader.ReadU64());
      for (uint64_t i = 0; i < impls; ++i) {
        HYPPO_ASSIGN_OR_RETURN(std::string impl, reader.ReadString());
        state->base_impls.push_back(std::move(impl));
      }
      HYPPO_ASSIGN_OR_RETURN(uint64_t lops, reader.ReadU64());
      for (uint64_t i = 0; i < lops; ++i) {
        HYPPO_ASSIGN_OR_RETURN(std::string base_lop, reader.ReadString());
        state->base_logical_ops.push_back(std::move(base_lop));
      }
      HYPPO_ASSIGN_OR_RETURN(uint64_t bases, reader.ReadU64());
      for (uint64_t i = 0; i < bases; ++i) {
        HYPPO_ASSIGN_OR_RETURN(ml::OpStatePtr base, ReadState(reader));
        state->base_states.push_back(std::move(base));
      }
      return ml::OpStatePtr(std::move(state));
    }
    default:
      return Status::ParseError("unexpected op-state tag");
  }
}

Result<ml::OpStatePtr> ReadState(BinaryReader& reader) {
  HYPPO_ASSIGN_OR_RETURN(uint32_t raw_tag, reader.ReadU32());
  return ReadStateBody(reader, static_cast<PayloadTag>(raw_tag));
}

}  // namespace

void BinaryWriter::WriteU32(uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    buffer_.push_back(static_cast<char>((value >> (8 * i)) & 0xff));
  }
}

void BinaryWriter::WriteU64(uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    buffer_.push_back(static_cast<char>((value >> (8 * i)) & 0xff));
  }
}

void BinaryWriter::WriteDouble(double value) {
  uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  WriteU64(bits);
}

void BinaryWriter::WriteString(const std::string& value) {
  WriteU64(value.size());
  buffer_.append(value);
}

void BinaryWriter::WriteDoubleVector(const std::vector<double>& values) {
  WriteU64(values.size());
  for (double value : values) {
    WriteDouble(value);
  }
}

void BinaryWriter::WriteI32Vector(const std::vector<int32_t>& values) {
  WriteU64(values.size());
  for (int32_t value : values) {
    WriteU32(static_cast<uint32_t>(value));
  }
}

Status BinaryReader::Need(size_t bytes) const {
  // Subtraction form: `position_ + bytes` can wrap for attacker-sized
  // length prefixes, which would let a huge read past the bounds check.
  if (bytes > buffer_.size() - position_) {
    return Status::ParseError("binary payload truncated");
  }
  return Status::OK();
}

Result<uint32_t> BinaryReader::ReadU32() {
  HYPPO_RETURN_NOT_OK(Need(4));
  uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    value |= static_cast<uint32_t>(
                 static_cast<unsigned char>(buffer_[position_ + i]))
             << (8 * i);
  }
  position_ += 4;
  return value;
}

Result<uint64_t> BinaryReader::ReadU64() {
  HYPPO_RETURN_NOT_OK(Need(8));
  uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<uint64_t>(
                 static_cast<unsigned char>(buffer_[position_ + i]))
             << (8 * i);
  }
  position_ += 8;
  return value;
}

Result<int64_t> BinaryReader::ReadI64() {
  HYPPO_ASSIGN_OR_RETURN(uint64_t value, ReadU64());
  return static_cast<int64_t>(value);
}

Result<double> BinaryReader::ReadDouble() {
  HYPPO_ASSIGN_OR_RETURN(uint64_t bits, ReadU64());
  double value;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

Result<bool> BinaryReader::ReadBool() {
  HYPPO_RETURN_NOT_OK(Need(1));
  const bool value = buffer_[position_] != 0;
  ++position_;
  return value;
}

Result<std::string> BinaryReader::ReadString() {
  HYPPO_ASSIGN_OR_RETURN(uint64_t size, ReadU64());
  HYPPO_RETURN_NOT_OK(Need(size));
  std::string value = buffer_.substr(position_, size);
  position_ += size;
  return value;
}

Result<std::vector<double>> BinaryReader::ReadDoubleVector() {
  HYPPO_ASSIGN_OR_RETURN(uint64_t size, ReadU64());
  // Divide instead of multiplying: `size * 8` wraps for huge corrupted
  // prefixes, passing the bounds check and then aborting in reserve().
  if (size > (buffer_.size() - position_) / 8) {
    return Status::ParseError("binary payload truncated");
  }
  std::vector<double> values;
  values.reserve(size);
  for (uint64_t i = 0; i < size; ++i) {
    HYPPO_ASSIGN_OR_RETURN(double value, ReadDouble());
    values.push_back(value);
  }
  return values;
}

Result<std::vector<int32_t>> BinaryReader::ReadI32Vector() {
  HYPPO_ASSIGN_OR_RETURN(uint64_t size, ReadU64());
  if (size > (buffer_.size() - position_) / 4) {
    return Status::ParseError("binary payload truncated");
  }
  std::vector<int32_t> values;
  values.reserve(size);
  for (uint64_t i = 0; i < size; ++i) {
    HYPPO_ASSIGN_OR_RETURN(uint32_t value, ReadU32());
    values.push_back(static_cast<int32_t>(value));
  }
  return values;
}

Result<std::string> SerializePayload(const ArtifactPayload& payload) {
  BinaryWriter writer;
  writer.WriteU32(kMagic);
  if (std::get_if<std::monostate>(&payload) != nullptr) {
    writer.WriteU32(static_cast<uint32_t>(PayloadTag::kMonostate));
  } else if (const auto* dataset = std::get_if<ml::DatasetPtr>(&payload)) {
    writer.WriteU32(static_cast<uint32_t>(PayloadTag::kDataset));
    const ml::Dataset& data = **dataset;
    writer.WriteI64(data.rows());
    writer.WriteI64(data.cols());
    writer.WriteU64(data.column_names().size());
    for (const std::string& name : data.column_names()) {
      writer.WriteString(name);
    }
    for (int64_t c = 0; c < data.cols(); ++c) {
      for (int64_t r = 0; r < data.rows(); ++r) {
        writer.WriteDouble(data.at(r, c));
      }
    }
    writer.WriteBool(data.has_target());
    if (data.has_target()) {
      writer.WriteDoubleVector(data.target());
    }
  } else if (const auto* state = std::get_if<ml::OpStatePtr>(&payload)) {
    HYPPO_RETURN_NOT_OK(WriteState(writer, **state));
  } else if (const auto* preds = std::get_if<ml::PredictionsPtr>(&payload)) {
    writer.WriteU32(static_cast<uint32_t>(PayloadTag::kPredictions));
    writer.WriteDoubleVector(**preds);
  } else if (const double* value = std::get_if<double>(&payload)) {
    writer.WriteU32(static_cast<uint32_t>(PayloadTag::kValue));
    writer.WriteDouble(*value);
  } else {
    return Status::Internal("unknown payload alternative");
  }
  return writer.Take();
}

Result<ArtifactPayload> DeserializePayload(const std::string& bytes) {
  BinaryReader reader(bytes);
  HYPPO_ASSIGN_OR_RETURN(uint32_t magic, reader.ReadU32());
  if (magic != kMagic) {
    return Status::ParseError("bad payload magic");
  }
  HYPPO_ASSIGN_OR_RETURN(uint32_t raw_tag, reader.ReadU32());
  const PayloadTag tag = static_cast<PayloadTag>(raw_tag);
  switch (tag) {
    case PayloadTag::kMonostate:
      return ArtifactPayload(std::monostate{});
    case PayloadTag::kDataset: {
      HYPPO_ASSIGN_OR_RETURN(int64_t rows, reader.ReadI64());
      HYPPO_ASSIGN_OR_RETURN(int64_t cols, reader.ReadI64());
      // Bound each dimension before multiplying: `rows * cols` on
      // corrupt inputs is signed-overflow UB. The buffer must still hold
      // the matrix itself, so a shape larger than the remaining bytes is
      // corrupt — reject it *before* allocating the dataset.
      constexpr int64_t kMaxCells = int64_t{1} << 34;
      if (rows < 0 || cols < 0 || rows > kMaxCells || cols > kMaxCells ||
          (rows > 0 && cols > kMaxCells / rows)) {
        return Status::ParseError("implausible dataset shape");
      }
      if (rows * cols > static_cast<int64_t>(reader.remaining() / 8)) {
        return Status::ParseError("binary payload truncated");
      }
      HYPPO_ASSIGN_OR_RETURN(uint64_t names, reader.ReadU64());
      std::vector<std::string> column_names;
      for (uint64_t i = 0; i < names; ++i) {
        HYPPO_ASSIGN_OR_RETURN(std::string name, reader.ReadString());
        column_names.push_back(std::move(name));
      }
      auto data = std::make_shared<ml::Dataset>(rows, cols);
      if (static_cast<int64_t>(column_names.size()) == cols) {
        data->set_column_names(std::move(column_names));
      }
      for (int64_t c = 0; c < cols; ++c) {
        for (int64_t r = 0; r < rows; ++r) {
          HYPPO_ASSIGN_OR_RETURN(data->at(r, c), reader.ReadDouble());
        }
      }
      HYPPO_ASSIGN_OR_RETURN(bool has_target, reader.ReadBool());
      if (has_target) {
        HYPPO_ASSIGN_OR_RETURN(std::vector<double> target,
                               reader.ReadDoubleVector());
        if (static_cast<int64_t>(target.size()) != rows) {
          return Status::ParseError("target length mismatch");
        }
        data->set_target(std::move(target));
      }
      return ArtifactPayload(ml::DatasetPtr(std::move(data)));
    }
    case PayloadTag::kVectorState:
    case PayloadTag::kTreeState:
    case PayloadTag::kForestState:
    case PayloadTag::kEnsembleState: {
      HYPPO_ASSIGN_OR_RETURN(ml::OpStatePtr state,
                             ReadStateBody(reader, tag));
      return ArtifactPayload(std::move(state));
    }
    case PayloadTag::kPredictions: {
      HYPPO_ASSIGN_OR_RETURN(std::vector<double> preds,
                             reader.ReadDoubleVector());
      return ArtifactPayload(std::make_shared<const std::vector<double>>(
          std::move(preds)));
    }
    case PayloadTag::kValue: {
      HYPPO_ASSIGN_OR_RETURN(double value, reader.ReadDouble());
      return ArtifactPayload(value);
    }
  }
  return Status::ParseError("unknown payload tag");
}

}  // namespace hyppo::storage
