#include "storage/disk_store.h"

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <utility>

#include "common/hash.h"
#include "storage/serialization.h"

namespace hyppo::storage {

namespace {

namespace fs = std::filesystem;

constexpr uint32_t kManifestMagic = 0x4859504D;  // "HYPM"
constexpr uint32_t kManifestVersion = 1;

Result<std::string> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IoError("cannot open '" + path + "' for reading");
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (!in.good() && !in.eof()) {
    return Status::IoError("error while reading '" + path + "'");
  }
  return bytes;
}

/// Crash-safe file write: bytes land in `<path>.tmp` and are renamed into
/// place, so `path` only ever holds a complete old or new version.
Status WriteFileAtomic(const std::string& path, const std::string& bytes) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::IoError("cannot open '" + tmp + "' for writing");
    }
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out.good()) {
      out.close();
      std::error_code ec;
      fs::remove(tmp, ec);
      return Status::IoError("error while writing '" + tmp + "'");
    }
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    return Status::IoError("cannot rename '" + tmp + "' into place: " +
                           ec.message());
  }
  return Status::OK();
}

/// Payload file name for a key: canonical names are filesystem-safe hex
/// already; anything else falls back to a hash-derived name.
std::string FileNameForKey(const std::string& key) {
  bool safe = !key.empty() && key.size() <= 80;
  for (char c : key) {
    const bool ok = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'z') ||
                    (c >= 'A' && c <= 'Z') || c == '.' || c == '_' ||
                    c == '-';
    if (!ok) {
      safe = false;
      break;
    }
  }
  if (safe) {
    return key + ".bin";
  }
  return "h-" + HashToHex(Fnv1a64(key)) + ".bin";
}

}  // namespace

DiskArtifactStore::DiskArtifactStore(std::string directory, StorageTier tier)
    : directory_(std::move(directory)), tier_(tier) {
  init_status_ = Recover();
}

DiskArtifactStore::~DiskArtifactStore() {
  if (lock_fd_ >= 0) {
    ::flock(lock_fd_, LOCK_UN);
    ::close(lock_fd_);
  }
}

Status DiskArtifactStore::AcquireDirectoryLock() {
  const std::string path = (fs::path(directory_) / "store.lock").string();
  lock_fd_ = ::open(path.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644);
  if (lock_fd_ < 0) {
    return Status::IoError("cannot open store lock file '" + path + "'");
  }
  // flock locks are per open file description, so two stores in one
  // process conflict just like stores in different processes — and the
  // kernel releases the lock when the holder closes or dies, so a crash
  // never strands the directory.
  if (::flock(lock_fd_, LOCK_EX | LOCK_NB) != 0) {
    ::close(lock_fd_);
    lock_fd_ = -1;
    return Status::FailedPrecondition(
        "store directory '" + directory_ +
        "' is locked by another live session (store.lock is held); a "
        "store_dir must back exactly one runtime at a time — close the "
        "other session or point this one at a different directory");
  }
  return Status::OK();
}

std::string DiskArtifactStore::PayloadPath(const std::string& file) const {
  return (fs::path(directory_) / "payloads" / file).string();
}

std::string DiskArtifactStore::ManifestPath() const {
  return (fs::path(directory_) / "store.manifest").string();
}

Status DiskArtifactStore::Recover() {
  std::error_code ec;
  fs::create_directories(fs::path(directory_) / "payloads", ec);
  if (ec) {
    return Status::IoError("cannot create store directory '" + directory_ +
                           "': " + ec.message());
  }
  // Claim exclusive ownership before reading anything: a second live
  // store over the same directory must fail fast here, not race the
  // manifest. store.lock lives at the directory root, outside payloads/,
  // so recovery GC below never touches it.
  HYPPO_RETURN_NOT_OK(AcquireDirectoryLock());
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  used_bytes_ = 0;
  payload_bytes_ = 0;
  if (fs::exists(ManifestPath())) {
    HYPPO_ASSIGN_OR_RETURN(std::string bytes, ReadFileBytes(ManifestPath()));
    if (bytes.size() < 8) {
      return Status::ParseError("store manifest truncated");
    }
    // The trailing u64 checksums the manifest body, so a corrupted index
    // is rejected as a whole rather than trusted entry by entry.
    const std::string body = bytes.substr(0, bytes.size() - 8);
    BinaryReader trailer_reader(bytes);
    BinaryReader reader(body);
    HYPPO_ASSIGN_OR_RETURN(uint32_t magic, reader.ReadU32());
    if (magic != kManifestMagic) {
      return Status::ParseError("bad store manifest magic");
    }
    HYPPO_ASSIGN_OR_RETURN(uint32_t version, reader.ReadU32());
    if (version != kManifestVersion) {
      return Status::ParseError("unsupported store manifest version " +
                                std::to_string(version));
    }
    uint64_t trailer = 0;
    for (size_t i = 0; i < 8; ++i) {
      trailer |= static_cast<uint64_t>(static_cast<unsigned char>(
                     bytes[bytes.size() - 8 + i]))
                 << (8 * i);
    }
    if (trailer != Fnv1a64(body)) {
      return Status::ParseError("store manifest checksum mismatch");
    }
    HYPPO_ASSIGN_OR_RETURN(uint64_t count, reader.ReadU64());
    for (uint64_t i = 0; i < count; ++i) {
      Entry entry;
      HYPPO_ASSIGN_OR_RETURN(std::string key, reader.ReadString());
      HYPPO_ASSIGN_OR_RETURN(entry.file, reader.ReadString());
      HYPPO_ASSIGN_OR_RETURN(entry.size_bytes, reader.ReadI64());
      HYPPO_ASSIGN_OR_RETURN(entry.payload_bytes, reader.ReadI64());
      HYPPO_ASSIGN_OR_RETURN(entry.checksum, reader.ReadU64());
      // Trust an entry only if its payload file is present with exactly
      // the recorded length; anything else is a torn leftover.
      std::error_code size_ec;
      const auto on_disk = fs::file_size(PayloadPath(entry.file), size_ec);
      if (size_ec ||
          static_cast<int64_t>(on_disk) != entry.payload_bytes) {
        continue;
      }
      used_bytes_ += entry.size_bytes;
      payload_bytes_ += entry.payload_bytes;
      entries_.emplace(std::move(key), std::move(entry));
    }
    if (!reader.AtEnd()) {
      return Status::ParseError("trailing bytes in store manifest");
    }
  }
  // Garbage-collect: *.tmp leftovers from interrupted writes and payload
  // files no live manifest entry names.
  std::set<std::string> live_files;
  for (const auto& [key, entry] : entries_) {
    live_files.insert(entry.file);
  }
  for (const auto& dir_entry :
       fs::directory_iterator(fs::path(directory_) / "payloads", ec)) {
    const std::string name = dir_entry.path().filename().string();
    if (live_files.count(name) == 0) {
      std::error_code rm_ec;
      fs::remove(dir_entry.path(), rm_ec);
    }
  }
  // Entries were dropped or files collected: rewrite the index so the
  // directory and the manifest agree again.
  return WriteManifestLocked();
}

Status DiskArtifactStore::WriteManifestLocked() {
  BinaryWriter writer;
  writer.WriteU32(kManifestMagic);
  writer.WriteU32(kManifestVersion);
  writer.WriteU64(entries_.size());
  for (const auto& [key, entry] : entries_) {
    writer.WriteString(key);
    writer.WriteString(entry.file);
    writer.WriteI64(entry.size_bytes);
    writer.WriteI64(entry.payload_bytes);
    writer.WriteU64(entry.checksum);
  }
  std::string bytes = writer.Take();
  BinaryWriter trailer;
  trailer.WriteU64(Fnv1a64(bytes));
  bytes += trailer.Take();
  return WriteFileAtomic(ManifestPath(), bytes);
}

Status DiskArtifactStore::Put(const std::string& key, ArtifactPayload payload,
                              int64_t size_bytes) {
  HYPPO_RETURN_NOT_OK(init_status_);
  HYPPO_ASSIGN_OR_RETURN(std::string bytes, SerializePayload(payload));
  const uint64_t checksum = Fnv1a64(bytes);

  std::lock_guard<std::mutex> lock(mutex_);
  Entry entry;
  entry.file = FileNameForKey(key);
  entry.size_bytes = size_bytes;
  entry.payload_bytes = static_cast<int64_t>(bytes.size());
  entry.checksum = checksum;
  HYPPO_RETURN_NOT_OK(WriteFileAtomic(PayloadPath(entry.file), bytes));

  auto it = entries_.find(key);
  const bool existed = it != entries_.end();
  const Entry previous = existed ? it->second : Entry{};
  if (existed) {
    used_bytes_ -= previous.size_bytes;
    payload_bytes_ -= previous.payload_bytes;
    it->second = entry;
  } else {
    entries_.emplace(key, entry);
  }
  used_bytes_ += entry.size_bytes;
  payload_bytes_ += entry.payload_bytes;

  Status manifest = WriteManifestLocked();
  if (!manifest.ok()) {
    // Roll the index back so a failed Put leaves the store exactly as it
    // was (the payload file may linger; recovery collects it).
    used_bytes_ -= entry.size_bytes;
    payload_bytes_ -= entry.payload_bytes;
    if (existed) {
      entries_[key] = previous;
      used_bytes_ += previous.size_bytes;
      payload_bytes_ += previous.payload_bytes;
    } else {
      entries_.erase(key);
    }
    return manifest;
  }
  return Status::OK();
}

Result<std::string> DiskArtifactStore::ReadPayloadLocked(
    const std::string& key, const Entry& entry) const {
  HYPPO_ASSIGN_OR_RETURN(std::string bytes,
                         ReadFileBytes(PayloadPath(entry.file)));
  if (static_cast<int64_t>(bytes.size()) != entry.payload_bytes) {
    return Status::IoError("artifact '" + key + "' payload file has " +
                           std::to_string(bytes.size()) + " bytes, expected " +
                           std::to_string(entry.payload_bytes));
  }
  if (Fnv1a64(bytes) != entry.checksum) {
    return Status::IoError("artifact '" + key +
                           "' payload failed its checksum");
  }
  return bytes;
}

Result<ArtifactPayload> DiskArtifactStore::Get(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    return Status::NotFound("artifact '" + key + "' is not materialized");
  }
  HYPPO_ASSIGN_OR_RETURN(std::string bytes,
                         ReadPayloadLocked(key, it->second));
  return DeserializePayload(bytes);
}

Result<ArtifactStore::Loaded> DiskArtifactStore::Load(
    const std::string& key) const {
  const Stopwatch watch(clock_);
  HYPPO_ASSIGN_OR_RETURN(ArtifactPayload payload, Get(key));
  return Loaded{std::move(payload), watch.Elapsed()};
}

bool DiskArtifactStore::Contains(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.count(key) > 0;
}

Status DiskArtifactStore::Evict(const std::string& key) {
  HYPPO_RETURN_NOT_OK(init_status_);
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    return Status::NotFound("artifact '" + key + "' is not materialized");
  }
  const Entry entry = it->second;
  entries_.erase(it);
  used_bytes_ -= entry.size_bytes;
  payload_bytes_ -= entry.payload_bytes;
  Status manifest = WriteManifestLocked();
  if (!manifest.ok()) {
    entries_.emplace(key, entry);
    used_bytes_ += entry.size_bytes;
    payload_bytes_ += entry.payload_bytes;
    return manifest;
  }
  // Manifest no longer names the entry; losing the race to delete the
  // file only leaves an orphan for the next recovery pass.
  std::error_code ec;
  fs::remove(PayloadPath(entry.file), ec);
  return Status::OK();
}

Result<int64_t> DiskArtifactStore::SizeOf(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    return Status::NotFound("artifact '" + key + "' is not materialized");
  }
  return it->second.size_bytes;
}

int64_t DiskArtifactStore::used_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return used_bytes_;
}

int64_t DiskArtifactStore::payload_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return payload_bytes_;
}

size_t DiskArtifactStore::num_entries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

std::vector<std::string> DiskArtifactStore::Keys() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> keys;
  keys.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) {
    keys.push_back(key);
  }
  return keys;
}

}  // namespace hyppo::storage
