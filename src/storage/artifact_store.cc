#include "storage/artifact_store.h"

namespace hyppo::storage {

int64_t PayloadSizeBytes(const ArtifactPayload& payload) {
  struct Visitor {
    int64_t operator()(std::monostate) const { return 0; }
    int64_t operator()(const ml::DatasetPtr& dataset) const {
      return dataset ? dataset->SizeBytes() : 0;
    }
    int64_t operator()(const ml::OpStatePtr& state) const {
      return state ? state->SizeBytes() : 0;
    }
    int64_t operator()(const ml::PredictionsPtr& preds) const {
      return preds ? static_cast<int64_t>(preds->size() * sizeof(double)) : 0;
    }
    int64_t operator()(double) const { return 8; }
  };
  return std::visit(Visitor{}, payload);
}

Result<ArtifactStore::Loaded> ArtifactStore::Load(
    const std::string& key) const {
  HYPPO_ASSIGN_OR_RETURN(ArtifactPayload payload, Get(key));
  const int64_t bytes = PayloadSizeBytes(payload);
  return Loaded{std::move(payload), LoadSeconds(bytes)};
}

InMemoryArtifactStore::InMemoryArtifactStore(
    InMemoryArtifactStore&& other) noexcept {
  std::lock_guard<std::mutex> lock(other.mutex_);
  tier_ = other.tier_;
  entries_ = std::move(other.entries_);
  used_bytes_ = other.used_bytes_;
  other.entries_.clear();
  other.used_bytes_ = 0;
}

InMemoryArtifactStore& InMemoryArtifactStore::operator=(
    InMemoryArtifactStore&& other) noexcept {
  if (this != &other) {
    std::scoped_lock lock(mutex_, other.mutex_);
    tier_ = other.tier_;
    entries_ = std::move(other.entries_);
    used_bytes_ = other.used_bytes_;
    other.entries_.clear();
    other.used_bytes_ = 0;
  }
  return *this;
}

Status InMemoryArtifactStore::Put(const std::string& key,
                                  ArtifactPayload payload,
                                  int64_t size_bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    used_bytes_ -= it->second.size_bytes;
    it->second.payload = std::move(payload);
    it->second.size_bytes = size_bytes;
  } else {
    entries_.emplace(key, Entry{std::move(payload), size_bytes});
  }
  used_bytes_ += size_bytes;
  return Status::OK();
}

Result<ArtifactPayload> InMemoryArtifactStore::Get(
    const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    return Status::NotFound("artifact '" + key + "' is not materialized");
  }
  return it->second.payload;
}

Result<ArtifactStore::Loaded> InMemoryArtifactStore::Load(
    const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    return Status::NotFound("artifact '" + key + "' is not materialized");
  }
  const int64_t bytes = PayloadSizeBytes(it->second.payload);
  return Loaded{it->second.payload, tier_.LoadSeconds(bytes)};
}

bool InMemoryArtifactStore::Contains(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.count(key) > 0;
}

Status InMemoryArtifactStore::Evict(const std::string& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    return Status::NotFound("artifact '" + key + "' is not materialized");
  }
  used_bytes_ -= it->second.size_bytes;
  entries_.erase(it);
  return Status::OK();
}

Result<int64_t> InMemoryArtifactStore::SizeOf(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    return Status::NotFound("artifact '" + key + "' is not materialized");
  }
  return it->second.size_bytes;
}

int64_t InMemoryArtifactStore::used_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return used_bytes_;
}

size_t InMemoryArtifactStore::num_entries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

std::vector<std::string> InMemoryArtifactStore::Keys() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> keys;
  keys.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) {
    keys.push_back(key);
  }
  return keys;
}

}  // namespace hyppo::storage
