#include "storage/artifact_store.h"

namespace hyppo::storage {

int64_t PayloadSizeBytes(const ArtifactPayload& payload) {
  struct Visitor {
    int64_t operator()(std::monostate) const { return 0; }
    int64_t operator()(const ml::DatasetPtr& dataset) const {
      return dataset ? dataset->SizeBytes() : 0;
    }
    int64_t operator()(const ml::OpStatePtr& state) const {
      return state ? state->SizeBytes() : 0;
    }
    int64_t operator()(const ml::PredictionsPtr& preds) const {
      return preds ? static_cast<int64_t>(preds->size() * sizeof(double)) : 0;
    }
    int64_t operator()(double) const { return 8; }
  };
  return std::visit(Visitor{}, payload);
}

Status ArtifactStore::Put(const std::string& key, ArtifactPayload payload,
                          int64_t size_bytes) {
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    used_bytes_ -= it->second.size_bytes;
    it->second.payload = std::move(payload);
    it->second.size_bytes = size_bytes;
  } else {
    entries_.emplace(key, Entry{std::move(payload), size_bytes});
  }
  used_bytes_ += size_bytes;
  return Status::OK();
}

Result<ArtifactPayload> ArtifactStore::Get(const std::string& key) const {
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    return Status::NotFound("artifact '" + key + "' is not materialized");
  }
  return it->second.payload;
}

Status ArtifactStore::Evict(const std::string& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    return Status::NotFound("artifact '" + key + "' is not materialized");
  }
  used_bytes_ -= it->second.size_bytes;
  entries_.erase(it);
  return Status::OK();
}

std::vector<std::string> ArtifactStore::Keys() const {
  std::vector<std::string> keys;
  keys.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) {
    keys.push_back(key);
  }
  return keys;
}

Result<int64_t> ArtifactStore::SizeOf(const std::string& key) const {
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    return Status::NotFound("artifact '" + key + "' is not materialized");
  }
  return it->second.size_bytes;
}

}  // namespace hyppo::storage
