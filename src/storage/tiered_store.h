#ifndef HYPPO_STORAGE_TIERED_STORE_H_
#define HYPPO_STORAGE_TIERED_STORE_H_

#include <memory>
#include <string>
#include <vector>

#include "storage/artifact_store.h"

namespace hyppo::storage {

/// \brief Two-tier artifact store: a memory front cache over a durable
/// back store (typically DiskArtifactStore).
///
/// The back tier is authoritative for everything observable — Contains,
/// SizeOf, used_bytes, num_entries, Keys, and the budget the materializer
/// enforces all reflect the back store alone. The front is a write-through
/// cache: Put lands durably in the back first and only then mirrors into
/// memory; Load serves hot keys from the front (charged at the memory
/// tier's cost model) and promotes misses after the back's real,
/// measured load. Evict drops both copies. A crash therefore loses only
/// cache warmth, never data, and the decorator contract of the PR-3
/// interface is preserved: FaultInjectingStore wraps a TieredArtifactStore
/// exactly like it wraps the in-memory store.
class TieredArtifactStore final : public ArtifactStore {
 public:
  /// An effectively-free tier for front-cache hits (DRAM bandwidth,
  /// sub-microsecond latency).
  static StorageTier MemoryTier();

  explicit TieredArtifactStore(std::unique_ptr<ArtifactStore> back);

  Status Put(const std::string& key, ArtifactPayload payload,
             int64_t size_bytes) override;
  Result<ArtifactPayload> Get(const std::string& key) const override;
  bool Contains(const std::string& key) const override;
  Status Evict(const std::string& key) override;
  Result<int64_t> SizeOf(const std::string& key) const override;
  int64_t used_bytes() const override;
  size_t num_entries() const override;
  std::vector<std::string> Keys() const override;
  /// The back tier: cost estimates stay conservative (planning assumes a
  /// load may have to go to disk).
  const StorageTier& tier() const override;
  Result<Loaded> Load(const std::string& key) const override;

  ArtifactStore& back() { return *back_; }
  const ArtifactStore& back() const { return *back_; }

  /// Entries currently mirrored in the memory front (for tests and
  /// telemetry).
  size_t front_entries() const { return front_.num_entries(); }

 private:
  std::unique_ptr<ArtifactStore> back_;
  /// Write-through cache; mutable so Load can promote on a miss.
  mutable InMemoryArtifactStore front_;
};

}  // namespace hyppo::storage

#endif  // HYPPO_STORAGE_TIERED_STORE_H_
