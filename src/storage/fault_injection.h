#ifndef HYPPO_STORAGE_FAULT_INJECTION_H_
#define HYPPO_STORAGE_FAULT_INJECTION_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "storage/artifact_store.h"

namespace hyppo::storage {

/// Where a fault strikes in the execution layer.
enum class FaultSite {
  kStoreLoad = 0,  ///< loading a materialized artifact from the store
  kResolver = 1,   ///< resolving a raw dataset id
  kCompute = 2,    ///< running a physical operator
  kStorePut = 3,   ///< persisting an artifact into the store
};

const char* FaultSiteToString(FaultSite site);

/// What a fault does at its site.
enum class FaultKind {
  kNone = 0,
  kNotFound = 1,  ///< store load: the entry has vanished
  kCorrupt = 2,   ///< store load: the payload comes back unreadable
  kSlowLoad = 3,  ///< store load: latency inflated by `slow_multiplier`
  kFail = 4,      ///< resolver / compute: the operation errors out
};

const char* FaultKindToString(FaultKind kind);

/// \brief Deterministic fault schedule for chaos and differential tests.
///
/// Faults are drawn per (site, key, occurrence) from a hash of the seed —
/// NOT from a shared RNG stream — so the decision for a given load or
/// compute is identical regardless of thread interleaving, parallelism,
/// or how many other faults fired first. `occurrence` counts how many
/// times that (site, key) has been exercised, so a retried operation
/// re-draws and transient faults clear on retry.
///
/// Explicit schedule entries override the probabilistic draw, letting
/// tests script exact failure sequences ("the scaler state is corrupt on
/// its first load, fine afterwards").
struct FaultPlan {
  uint64_t seed = 0;
  /// Store-load fault rates (independent thresholds over one draw).
  double load_not_found_rate = 0.0;
  double load_corrupt_rate = 0.0;
  double load_slow_rate = 0.0;
  /// Latency multiplier applied by kSlowLoad.
  double slow_multiplier = 8.0;
  double resolver_failure_rate = 0.0;
  double compute_failure_rate = 0.0;
  /// Store-put fault rate: a Put errors out with IoError (a full disk, a
  /// failed rename). Exercises the materializer's Apply atomicity.
  double put_failure_rate = 0.0;
  /// Transient-fault model: after this many injected faults on one
  /// (site, key), further draws pass. Guarantees a bounded-retry recovery
  /// loop converges; 0 means unlimited (faults may repeat forever).
  int max_faults_per_key = 2;

  struct ScheduledFault {
    FaultSite site = FaultSite::kStoreLoad;
    std::string key;
    /// 0-based occurrence of (site, key) the fault fires on.
    int occurrence = 0;
    FaultKind kind = FaultKind::kNone;
  };
  std::vector<ScheduledFault> schedule;

  /// Convenience: one rate spread uniformly over every fault kind
  /// (NotFound/corrupt/slow loads split the rate; resolver and compute
  /// fail at the full rate).
  static FaultPlan Uniform(uint64_t seed, double rate);
};

/// \brief Thread-safe fault decision engine shared by the store decorator
/// and the executor's operator/resolver hooks, so one plan governs every
/// site and the injected-fault counters aggregate in one place.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan)
      : plan_(std::move(plan)),
        site_armed_{SiteArmed(plan_, FaultSite::kStoreLoad),
                    SiteArmed(plan_, FaultSite::kResolver),
                    SiteArmed(plan_, FaultSite::kCompute),
                    SiteArmed(plan_, FaultSite::kStorePut)} {}

  struct Decision {
    FaultKind kind = FaultKind::kNone;
    double slow_multiplier = 1.0;
  };

  /// Draws the fault decision for the next occurrence of (site, key).
  /// Deterministic in (plan.seed, site, key, occurrence); safe to call
  /// from concurrent executor workers.
  Decision Decide(FaultSite site, const std::string& key);

  struct Counters {
    int64_t injected_not_found = 0;
    int64_t injected_corrupt = 0;
    int64_t injected_slow = 0;
    int64_t injected_resolver = 0;
    int64_t injected_compute = 0;
    int64_t injected_put = 0;

    int64_t total() const {
      return injected_not_found + injected_corrupt + injected_slow +
             injected_resolver + injected_compute + injected_put;
    }
  };

  /// Snapshot of the injected-fault tallies.
  Counters counters() const;

  const FaultPlan& plan() const { return plan_; }

 private:
  /// True when `plan` can ever inject at `site` (a nonzero rate or a
  /// schedule entry). Cold sites take a lock-free fast path in Decide.
  static bool SiteArmed(const FaultPlan& plan, FaultSite site);

  FaultPlan plan_;
  /// Indexed by FaultSite; immutable after construction.
  bool site_armed_[4];
  mutable std::mutex mutex_;
  /// Occurrence count per "site|key".
  std::map<std::string, int> occurrences_;
  /// Injected-fault count per "site|key" (for max_faults_per_key).
  std::map<std::string, int> injected_;
  Counters counters_;
};

/// \brief ArtifactStore decorator that injects the plan's store-load
/// faults into the executor's Load() path and put faults into Put().
/// The remaining bookkeeping entry points (Get/Evict/Keys/...) forward
/// untouched, so persistence and inspection see the real store.
class FaultInjectingStore final : public ArtifactStore {
 public:
  FaultInjectingStore(ArtifactStore* base, FaultInjector* injector)
      : base_(base), injector_(injector) {}

  /// Injection point for kStorePut: may refuse the write with IoError
  /// before it reaches the base store (a full disk, a failed rename).
  Status Put(const std::string& key, ArtifactPayload payload,
             int64_t size_bytes) override;
  Result<ArtifactPayload> Get(const std::string& key) const override {
    return base_->Get(key);
  }
  bool Contains(const std::string& key) const override {
    return base_->Contains(key);
  }
  Status Evict(const std::string& key) override { return base_->Evict(key); }
  Result<int64_t> SizeOf(const std::string& key) const override {
    return base_->SizeOf(key);
  }
  int64_t used_bytes() const override { return base_->used_bytes(); }
  size_t num_entries() const override { return base_->num_entries(); }
  std::vector<std::string> Keys() const override { return base_->Keys(); }
  const StorageTier& tier() const override { return base_->tier(); }

  /// The injection point: may report NotFound, hand back a corrupted
  /// (empty) payload, or inflate the charged load time.
  Result<Loaded> Load(const std::string& key) const override;

  ArtifactStore* base() const { return base_; }

 private:
  ArtifactStore* base_;
  FaultInjector* injector_;
};

}  // namespace hyppo::storage

#endif  // HYPPO_STORAGE_FAULT_INJECTION_H_
