#ifndef HYPPO_STORAGE_SERIALIZATION_H_
#define HYPPO_STORAGE_SERIALIZATION_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "storage/artifact_store.h"

namespace hyppo::storage {

/// \brief Binary (de)serialization of artifact payloads.
///
/// This is what makes the history a cross-session cache (the paper's
/// *across-experiments* reuse, §I): materialized artifacts survive process
/// restarts. The format is a tagged little-endian binary encoding covering
/// every payload kind — datasets, all op-state variants (vector, tree,
/// forest, ensemble — ensembles recursively embed their base states),
/// prediction vectors, and scalar values.
///
/// Format stability: a 4-byte magic + version header guards against
/// incompatible readers; strings and vectors are length-prefixed.

/// Serializes a payload into a byte buffer.
Result<std::string> SerializePayload(const ArtifactPayload& payload);

/// Reconstructs a payload from bytes produced by SerializePayload.
Result<ArtifactPayload> DeserializePayload(const std::string& bytes);

/// \brief Little-endian binary writer over a growing string buffer.
class BinaryWriter {
 public:
  void WriteU32(uint32_t value);
  void WriteU64(uint64_t value);
  void WriteI64(int64_t value) { WriteU64(static_cast<uint64_t>(value)); }
  void WriteDouble(double value);
  void WriteBool(bool value) { buffer_.push_back(value ? 1 : 0); }
  void WriteString(const std::string& value);
  void WriteDoubleVector(const std::vector<double>& values);
  void WriteI32Vector(const std::vector<int32_t>& values);

  const std::string& buffer() const { return buffer_; }
  std::string Take() { return std::move(buffer_); }

 private:
  std::string buffer_;
};

/// \brief Bounds-checked reader over a byte buffer.
class BinaryReader {
 public:
  explicit BinaryReader(const std::string& buffer) : buffer_(buffer) {}

  Result<uint32_t> ReadU32();
  Result<uint64_t> ReadU64();
  Result<int64_t> ReadI64();
  Result<double> ReadDouble();
  Result<bool> ReadBool();
  Result<std::string> ReadString();
  Result<std::vector<double>> ReadDoubleVector();
  Result<std::vector<int32_t>> ReadI32Vector();

  bool AtEnd() const { return position_ == buffer_.size(); }
  /// Bytes left to read — lets decoders sanity-check length prefixes
  /// before allocating (a corrupt header must not drive a huge reserve).
  size_t remaining() const { return buffer_.size() - position_; }

 private:
  Status Need(size_t bytes) const;

  const std::string& buffer_;
  size_t position_ = 0;
};

}  // namespace hyppo::storage

#endif  // HYPPO_STORAGE_SERIALIZATION_H_
