#ifndef HYPPO_STORAGE_DISK_STORE_H_
#define HYPPO_STORAGE_DISK_STORE_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "storage/artifact_store.h"

namespace hyppo::storage {

/// \brief Durable artifact store backed by a directory on disk.
///
/// Layout under the store directory:
///   store.manifest          index of every live entry ("HYPM" binary)
///   store.lock              advisory flock(2) guard (see below)
///   payloads/<file>.bin     one encoded payload per entry (HYP1 codec)
///
/// Exclusive-ownership contract: a store directory backs exactly one
/// live DiskArtifactStore at a time. The constructor takes an exclusive
/// advisory lock on `store.lock` (non-blocking) and fails fast through
/// init_status() when another live store — in this process or any other
/// — already holds it, instead of letting two sessions race the
/// manifest. The lock dies with the owning store (or its process), so
/// crashes never leave a stale lock behind.
///
/// Durability contract:
///  - Every Put serializes the payload (storage/serialization.h), writes
///    it to a temporary file, renames it into place, and then rewrites
///    the manifest the same way. A crash at any point leaves either the
///    old entry or the new one — never a torn payload: readers only trust
///    files the manifest names, with the recorded byte count and FNV-1a
///    checksum.
///  - Evict removes the manifest entry first and the payload file second,
///    so a crash in between leaves an orphan file (garbage-collected on
///    the next open), never a manifest entry without bytes.
///  - Opening a store recovers from whatever a previous session left:
///    manifest entries whose payload file is missing or has the wrong
///    length are dropped, `*.tmp` leftovers and orphan payload files are
///    deleted.
///
/// Accounting is byte-accurate on two axes: `used_bytes()` charges the
/// caller-declared logical `size_bytes` (what the materializer budgets
/// against, matching `ArtifactInfo::size_bytes`), while
/// `payload_bytes()` reports the physical encoded bytes on disk.
///
/// Load() reports *measured* wall-clock seconds for the read + decode —
/// the disk tier charges real costs, not the StorageTier simulation
/// (the tier model still answers cost *estimates* for planning).
///
/// Thread-safe: a single mutex guards the index; file writes happen
/// under it (writers serialize, matching InMemoryArtifactStore's
/// coarse-grained contract).
class DiskArtifactStore final : public ArtifactStore {
 public:
  /// Opens (or creates) the store rooted at `directory`, acquires its
  /// exclusive directory lock, and recovers the index from the manifest.
  /// Errors — including the directory being locked by another live store
  /// — are reported through init_status(); a store that failed to open
  /// behaves as empty and rejects Puts.
  explicit DiskArtifactStore(std::string directory,
                             StorageTier tier = StorageTier::Local());
  ~DiskArtifactStore() override;

  /// OK when the directory was opened/recovered successfully.
  const Status& init_status() const { return init_status_; }

  const std::string& directory() const { return directory_; }

  Status Put(const std::string& key, ArtifactPayload payload,
             int64_t size_bytes) override;
  Result<ArtifactPayload> Get(const std::string& key) const override;
  bool Contains(const std::string& key) const override;
  Status Evict(const std::string& key) override;
  Result<int64_t> SizeOf(const std::string& key) const override;
  int64_t used_bytes() const override;
  size_t num_entries() const override;
  std::vector<std::string> Keys() const override;
  const StorageTier& tier() const override { return tier_; }

  /// Reads + decodes the payload and charges the measured wall-clock
  /// seconds of the disk round-trip.
  Result<Loaded> Load(const std::string& key) const override;

  /// Physical bytes of all encoded payloads on disk (vs. the logical
  /// used_bytes() the budget is charged in).
  int64_t payload_bytes() const;

 private:
  struct Entry {
    std::string file;        ///< payload file name under payloads/
    int64_t size_bytes = 0;  ///< logical size charged against the budget
    int64_t payload_bytes = 0;  ///< encoded bytes on disk
    uint64_t checksum = 0;      ///< FNV-1a64 of the encoded payload
  };

  /// Takes the exclusive advisory lock on `<directory>/store.lock`;
  /// FailedPrecondition when another live store holds it.
  Status AcquireDirectoryLock();
  /// Scans the manifest + payload directory, drops unreadable entries,
  /// and deletes *.tmp and orphan files. Called once from the ctor.
  Status Recover();
  /// Atomically rewrites store.manifest from entries_ (caller holds
  /// mutex_).
  Status WriteManifestLocked();
  /// Reads + verifies one entry's payload bytes (caller holds mutex_).
  Result<std::string> ReadPayloadLocked(const std::string& key,
                                        const Entry& entry) const;

  std::string PayloadPath(const std::string& file) const;
  std::string ManifestPath() const;

  std::string directory_;
  StorageTier tier_;
  WallClock clock_;
  Status init_status_;
  /// File descriptor holding the advisory directory lock; -1 when the
  /// lock was never acquired (init failure).
  int lock_fd_ = -1;
  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;
  int64_t used_bytes_ = 0;
  int64_t payload_bytes_ = 0;
};

}  // namespace hyppo::storage

#endif  // HYPPO_STORAGE_DISK_STORE_H_
