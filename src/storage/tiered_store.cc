#include "storage/tiered_store.h"

#include <utility>

namespace hyppo::storage {

StorageTier TieredArtifactStore::MemoryTier() {
  StorageTier tier;
  tier.read_bandwidth_bytes_per_sec = 20e9;
  tier.write_bandwidth_bytes_per_sec = 20e9;
  tier.latency_seconds = 5e-7;
  return tier;
}

TieredArtifactStore::TieredArtifactStore(std::unique_ptr<ArtifactStore> back)
    : back_(std::move(back)), front_(MemoryTier()) {}

Status TieredArtifactStore::Put(const std::string& key,
                                ArtifactPayload payload, int64_t size_bytes) {
  // Durability first: only a payload the back tier accepted may be served
  // from memory later.
  HYPPO_RETURN_NOT_OK(back_->Put(key, payload, size_bytes));
  return front_.Put(key, std::move(payload), size_bytes);
}

Result<ArtifactPayload> TieredArtifactStore::Get(const std::string& key) const {
  Result<ArtifactPayload> hit = front_.Get(key);
  if (hit.ok()) {
    return hit;
  }
  HYPPO_ASSIGN_OR_RETURN(ArtifactPayload payload, back_->Get(key));
  HYPPO_ASSIGN_OR_RETURN(int64_t size_bytes, back_->SizeOf(key));
  (void)front_.Put(key, payload, size_bytes);
  return payload;
}

bool TieredArtifactStore::Contains(const std::string& key) const {
  return back_->Contains(key);
}

Status TieredArtifactStore::Evict(const std::string& key) {
  if (front_.Contains(key)) {
    (void)front_.Evict(key);
  }
  return back_->Evict(key);
}

Result<int64_t> TieredArtifactStore::SizeOf(const std::string& key) const {
  return back_->SizeOf(key);
}

int64_t TieredArtifactStore::used_bytes() const {
  return back_->used_bytes();
}

size_t TieredArtifactStore::num_entries() const {
  return back_->num_entries();
}

std::vector<std::string> TieredArtifactStore::Keys() const {
  return back_->Keys();
}

const StorageTier& TieredArtifactStore::tier() const { return back_->tier(); }

Result<ArtifactStore::Loaded> TieredArtifactStore::Load(
    const std::string& key) const {
  // Serve hot keys from memory — but only keys the authoritative back
  // tier still holds, so an Evict raced by a stale front copy cannot
  // resurrect an artifact.
  if (back_->Contains(key)) {
    Result<Loaded> hit = front_.Load(key);
    if (hit.ok()) {
      return hit;
    }
  }
  HYPPO_ASSIGN_OR_RETURN(Loaded loaded, back_->Load(key));
  Result<int64_t> size_bytes = back_->SizeOf(key);
  if (size_bytes.ok()) {
    (void)front_.Put(key, loaded.payload, *size_bytes);
  }
  return loaded;
}

}  // namespace hyppo::storage
