#include "storage/fault_injection.h"

#include "common/hash.h"

namespace hyppo::storage {

namespace {

std::string SiteKey(FaultSite site, const std::string& key) {
  return std::string(FaultSiteToString(site)) + "|" + key;
}

// Uniform double in [0, 1) from a deterministic hash of (seed, site, key,
// occurrence).
double DrawUniform(uint64_t seed, FaultSite site, const std::string& key,
                   int occurrence) {
  uint64_t h = HashCombine(seed, Fnv1a64(key));
  h = HashCombine(h, (static_cast<uint64_t>(site) << 32) |
                         static_cast<uint64_t>(occurrence));
  return static_cast<double>(Mix64(h) >> 11) * 0x1.0p-53;
}

}  // namespace

const char* FaultSiteToString(FaultSite site) {
  switch (site) {
    case FaultSite::kStoreLoad:
      return "store-load";
    case FaultSite::kResolver:
      return "resolver";
    case FaultSite::kCompute:
      return "compute";
    case FaultSite::kStorePut:
      return "store-put";
  }
  return "unknown";
}

const char* FaultKindToString(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone:
      return "none";
    case FaultKind::kNotFound:
      return "not-found";
    case FaultKind::kCorrupt:
      return "corrupt";
    case FaultKind::kSlowLoad:
      return "slow-load";
    case FaultKind::kFail:
      return "fail";
  }
  return "unknown";
}

FaultPlan FaultPlan::Uniform(uint64_t seed, double rate) {
  FaultPlan plan;
  plan.seed = seed;
  plan.load_not_found_rate = rate / 3.0;
  plan.load_corrupt_rate = rate / 3.0;
  plan.load_slow_rate = rate / 3.0;
  plan.resolver_failure_rate = rate;
  plan.compute_failure_rate = rate;
  return plan;
}

bool FaultInjector::SiteArmed(const FaultPlan& plan, FaultSite site) {
  for (const FaultPlan::ScheduledFault& f : plan.schedule) {
    if (f.site == site) {
      return true;
    }
  }
  switch (site) {
    case FaultSite::kStoreLoad:
      return plan.load_not_found_rate > 0.0 || plan.load_corrupt_rate > 0.0 ||
             plan.load_slow_rate > 0.0;
    case FaultSite::kResolver:
      return plan.resolver_failure_rate > 0.0;
    case FaultSite::kCompute:
      return plan.compute_failure_rate > 0.0;
    case FaultSite::kStorePut:
      return plan.put_failure_rate > 0.0;
  }
  return false;
}

FaultInjector::Decision FaultInjector::Decide(FaultSite site,
                                              const std::string& key) {
  // Fast path: a site whose rates are zero and that no schedule entry
  // names can never inject, so skip the bookkeeping entirely. This keeps
  // an armed-but-silent injector within noise of running with none (the
  // fault-hook overhead column of bench_fig9b_overhead).
  if (!site_armed_[static_cast<size_t>(site)]) {
    return Decision{};
  }
  const std::string sk = SiteKey(site, key);
  int occurrence = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    occurrence = occurrences_[sk]++;
  }
  FaultKind kind = FaultKind::kNone;
  bool scheduled = false;
  for (const FaultPlan::ScheduledFault& f : plan_.schedule) {
    if (f.site == site && f.occurrence == occurrence && f.key == key) {
      kind = f.kind;
      scheduled = true;
      break;
    }
  }
  if (!scheduled) {
    // Transient-fault cap: once a key has absorbed its share of faults,
    // further draws pass so bounded retries converge.
    if (plan_.max_faults_per_key > 0) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (injected_[sk] >= plan_.max_faults_per_key) {
        return Decision{};
      }
    }
    const double u = DrawUniform(plan_.seed, site, key, occurrence);
    switch (site) {
      case FaultSite::kStoreLoad:
        if (u < plan_.load_not_found_rate) {
          kind = FaultKind::kNotFound;
        } else if (u < plan_.load_not_found_rate + plan_.load_corrupt_rate) {
          kind = FaultKind::kCorrupt;
        } else if (u < plan_.load_not_found_rate + plan_.load_corrupt_rate +
                           plan_.load_slow_rate) {
          kind = FaultKind::kSlowLoad;
        }
        break;
      case FaultSite::kResolver:
        if (u < plan_.resolver_failure_rate) {
          kind = FaultKind::kFail;
        }
        break;
      case FaultSite::kCompute:
        if (u < plan_.compute_failure_rate) {
          kind = FaultKind::kFail;
        }
        break;
      case FaultSite::kStorePut:
        if (u < plan_.put_failure_rate) {
          kind = FaultKind::kFail;
        }
        break;
    }
  }
  Decision decision;
  decision.kind = kind;
  if (kind == FaultKind::kSlowLoad) {
    decision.slow_multiplier = plan_.slow_multiplier;
  }
  if (kind != FaultKind::kNone) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++injected_[sk];
    switch (kind) {
      case FaultKind::kNotFound:
        ++counters_.injected_not_found;
        break;
      case FaultKind::kCorrupt:
        ++counters_.injected_corrupt;
        break;
      case FaultKind::kSlowLoad:
        ++counters_.injected_slow;
        break;
      case FaultKind::kFail:
        if (site == FaultSite::kResolver) {
          ++counters_.injected_resolver;
        } else if (site == FaultSite::kStorePut) {
          ++counters_.injected_put;
        } else {
          ++counters_.injected_compute;
        }
        break;
      case FaultKind::kNone:
        break;
    }
  }
  return decision;
}

FaultInjector::Counters FaultInjector::counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_;
}

Status FaultInjectingStore::Put(const std::string& key,
                                ArtifactPayload payload, int64_t size_bytes) {
  const FaultInjector::Decision decision =
      injector_->Decide(FaultSite::kStorePut, key);
  if (decision.kind == FaultKind::kFail) {
    return Status::IoError("injected fault: store refused to persist '" +
                           key + "'");
  }
  return base_->Put(key, std::move(payload), size_bytes);
}

Result<ArtifactStore::Loaded> FaultInjectingStore::Load(
    const std::string& key) const {
  const FaultInjector::Decision decision =
      injector_->Decide(FaultSite::kStoreLoad, key);
  switch (decision.kind) {
    case FaultKind::kNotFound:
      return Status::NotFound("injected fault: artifact '" + key +
                              "' vanished from the store");
    case FaultKind::kCorrupt: {
      // Hand back an unreadable payload; the executor's load validation
      // rejects it as corruption (and the recovery loop evicts the entry).
      HYPPO_ASSIGN_OR_RETURN(Loaded real, base_->Load(key));
      return Loaded{std::monostate{}, real.seconds};
    }
    case FaultKind::kSlowLoad: {
      HYPPO_ASSIGN_OR_RETURN(Loaded real, base_->Load(key));
      real.seconds *= decision.slow_multiplier;
      return real;
    }
    case FaultKind::kFail:
    case FaultKind::kNone:
      break;
  }
  return base_->Load(key);
}

}  // namespace hyppo::storage
