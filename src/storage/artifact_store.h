#ifndef HYPPO_STORAGE_ARTIFACT_STORE_H_
#define HYPPO_STORAGE_ARTIFACT_STORE_H_

#include <cstdint>
#include <map>
#include <string>
#include <variant>

#include "common/result.h"
#include "ml/dataset.h"
#include "ml/op_state.h"
#include "ml/operator.h"

namespace hyppo::storage {

/// \brief The value of an artifact: a dataset, a fitted op-state, a
/// prediction vector, or a scalar metric value. Monostate marks artifacts
/// whose value is only simulated (planner-scalability experiments).
using ArtifactPayload =
    std::variant<std::monostate, ml::DatasetPtr, ml::OpStatePtr,
                 ml::PredictionsPtr, double>;

/// Byte size of a payload (0 for monostate).
int64_t PayloadSizeBytes(const ArtifactPayload& payload);

/// \brief Cost model of a storage tier: a fixed per-request latency plus a
/// bandwidth term. Loading artifact v costs
///   latency + size(v) / read_bandwidth   seconds.
struct StorageTier {
  double read_bandwidth_bytes_per_sec = 400e6;
  double write_bandwidth_bytes_per_sec = 250e6;
  double latency_seconds = 2e-3;

  double LoadSeconds(int64_t bytes) const {
    return latency_seconds +
           static_cast<double>(bytes) / read_bandwidth_bytes_per_sec;
  }
  double StoreSeconds(int64_t bytes) const {
    return latency_seconds +
           static_cast<double>(bytes) / write_bandwidth_bytes_per_sec;
  }

  /// A local materialization tier (fast SSD-like).
  static StorageTier Local() { return StorageTier{}; }
  /// The remote tier raw datasets live on (slower, higher latency) —
  /// loading raw data is a real task with a real cost, as in the paper's
  /// source node s.
  static StorageTier Remote() {
    StorageTier tier;
    tier.read_bandwidth_bytes_per_sec = 150e6;
    tier.write_bandwidth_bytes_per_sec = 80e6;
    tier.latency_seconds = 1e-2;
    return tier;
  }
};

/// \brief Key-value store of materialized artifacts with byte accounting.
///
/// The materializer (core/materializer.h) decides *what* lives here under
/// the storage budget; the store tracks usage and answers load-cost
/// queries. Keys are canonical artifact names.
class ArtifactStore {
 public:
  explicit ArtifactStore(StorageTier tier = StorageTier::Local())
      : tier_(tier) {}

  /// Stores a payload under `key`. `size_bytes` is charged against usage
  /// (passed explicitly so simulated artifacts can carry estimated sizes).
  Status Put(const std::string& key, ArtifactPayload payload,
             int64_t size_bytes);

  /// Retrieves a payload; NotFound if absent.
  Result<ArtifactPayload> Get(const std::string& key) const;

  bool Contains(const std::string& key) const {
    return entries_.count(key) > 0;
  }

  /// Removes an entry; NotFound if absent.
  Status Evict(const std::string& key);

  /// Size on storage of one entry; NotFound if absent.
  Result<int64_t> SizeOf(const std::string& key) const;

  int64_t used_bytes() const { return used_bytes_; }
  size_t num_entries() const { return entries_.size(); }
  /// All stored keys, sorted (for persistence and inspection).
  std::vector<std::string> Keys() const;
  const StorageTier& tier() const { return tier_; }

  double LoadSeconds(int64_t bytes) const { return tier_.LoadSeconds(bytes); }
  double StoreSeconds(int64_t bytes) const {
    return tier_.StoreSeconds(bytes);
  }

 private:
  struct Entry {
    ArtifactPayload payload;
    int64_t size_bytes = 0;
  };
  StorageTier tier_;
  std::map<std::string, Entry> entries_;
  int64_t used_bytes_ = 0;
};

}  // namespace hyppo::storage

#endif  // HYPPO_STORAGE_ARTIFACT_STORE_H_
