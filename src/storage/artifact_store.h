#ifndef HYPPO_STORAGE_ARTIFACT_STORE_H_
#define HYPPO_STORAGE_ARTIFACT_STORE_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <variant>
#include <vector>

#include "common/result.h"
#include "ml/dataset.h"
#include "ml/op_state.h"
#include "ml/operator.h"

namespace hyppo::storage {

/// \brief The value of an artifact: a dataset, a fitted op-state, a
/// prediction vector, or a scalar metric value. Monostate marks artifacts
/// whose value is only simulated (planner-scalability experiments).
using ArtifactPayload =
    std::variant<std::monostate, ml::DatasetPtr, ml::OpStatePtr,
                 ml::PredictionsPtr, double>;

/// Byte size of a payload (0 for monostate).
int64_t PayloadSizeBytes(const ArtifactPayload& payload);

/// \brief Cost model of a storage tier: a fixed per-request latency plus a
/// bandwidth term. Loading artifact v costs
///   latency + size(v) / read_bandwidth   seconds.
struct StorageTier {
  double read_bandwidth_bytes_per_sec = 400e6;
  double write_bandwidth_bytes_per_sec = 250e6;
  double latency_seconds = 2e-3;

  double LoadSeconds(int64_t bytes) const {
    return latency_seconds +
           static_cast<double>(bytes) / read_bandwidth_bytes_per_sec;
  }
  double StoreSeconds(int64_t bytes) const {
    return latency_seconds +
           static_cast<double>(bytes) / write_bandwidth_bytes_per_sec;
  }

  /// A local materialization tier (fast SSD-like).
  static StorageTier Local() { return StorageTier{}; }
  /// The remote tier raw datasets live on (slower, higher latency) —
  /// loading raw data is a real task with a real cost, as in the paper's
  /// source node s.
  static StorageTier Remote() {
    StorageTier tier;
    tier.read_bandwidth_bytes_per_sec = 150e6;
    tier.write_bandwidth_bytes_per_sec = 80e6;
    tier.latency_seconds = 1e-2;
    return tier;
  }
};

/// \brief Key-value store interface for materialized artifacts with byte
/// accounting.
///
/// The materializer (core/materializer.h) decides *what* lives here under
/// the storage budget; the store tracks usage and answers load-cost
/// queries. Keys are canonical artifact names. Implementations:
/// InMemoryArtifactStore (the production backend, safe under concurrent
/// access from the parallel executor) and FaultInjectingStore
/// (storage/fault_injection.h), a decorator that injects deterministic
/// faults into the executor's load path for chaos testing.
class ArtifactStore {
 public:
  virtual ~ArtifactStore() = default;

  /// Stores a payload under `key`. `size_bytes` is charged against usage
  /// (passed explicitly so simulated artifacts can carry estimated sizes).
  virtual Status Put(const std::string& key, ArtifactPayload payload,
                     int64_t size_bytes) = 0;

  /// Retrieves a payload; NotFound if absent.
  virtual Result<ArtifactPayload> Get(const std::string& key) const = 0;

  virtual bool Contains(const std::string& key) const = 0;

  /// Removes an entry; NotFound if absent.
  virtual Status Evict(const std::string& key) = 0;

  /// Size on storage of one entry; NotFound if absent.
  virtual Result<int64_t> SizeOf(const std::string& key) const = 0;

  virtual int64_t used_bytes() const = 0;
  virtual size_t num_entries() const = 0;
  /// All stored keys, sorted (for persistence and inspection).
  virtual std::vector<std::string> Keys() const = 0;
  virtual const StorageTier& tier() const = 0;

  /// \brief One serviced load: the payload plus the charged load time
  /// under the tier's cost model.
  struct Loaded {
    ArtifactPayload payload;
    double seconds = 0.0;
  };

  /// Get + the tier's load-cost model in one call — the executor's load
  /// path. Decorators override this to perturb payloads or timings
  /// without affecting the bookkeeping entry points above.
  virtual Result<Loaded> Load(const std::string& key) const;

  double LoadSeconds(int64_t bytes) const { return tier().LoadSeconds(bytes); }
  double StoreSeconds(int64_t bytes) const {
    return tier().StoreSeconds(bytes);
  }
};

/// \brief The production artifact store: an in-memory map guarded by a
/// mutex, safe under concurrent Get/Put/Evict from the parallel executor's
/// worker threads.
class InMemoryArtifactStore final : public ArtifactStore {
 public:
  explicit InMemoryArtifactStore(StorageTier tier = StorageTier::Local())
      : tier_(tier) {}

  /// Movable so a freshly loaded catalog can replace a runtime's store
  /// (single-threaded contexts only; concurrent access to a store being
  /// moved from is a bug).
  InMemoryArtifactStore(InMemoryArtifactStore&& other) noexcept;
  InMemoryArtifactStore& operator=(InMemoryArtifactStore&& other) noexcept;

  Status Put(const std::string& key, ArtifactPayload payload,
             int64_t size_bytes) override;
  Result<ArtifactPayload> Get(const std::string& key) const override;
  bool Contains(const std::string& key) const override;
  Status Evict(const std::string& key) override;
  Result<int64_t> SizeOf(const std::string& key) const override;
  int64_t used_bytes() const override;
  size_t num_entries() const override;
  std::vector<std::string> Keys() const override;
  const StorageTier& tier() const override { return tier_; }
  Result<Loaded> Load(const std::string& key) const override;

 private:
  struct Entry {
    ArtifactPayload payload;
    int64_t size_bytes = 0;
  };
  StorageTier tier_;
  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;
  int64_t used_bytes_ = 0;
};

}  // namespace hyppo::storage

#endif  // HYPPO_STORAGE_ARTIFACT_STORE_H_
