// hyppo_lint: standalone invariant checker for serialized HYPPO catalogs.
//
// Loads `<catalog-dir>/history.hyppo` (written by Runtime::SaveCatalog or
// core::SerializeHistory) and runs the full analysis verifier over it:
// hypergraph well-formedness, label consistency, canonical-name closure,
// materialization flags, serialization round-trip, and — when a budget is
// given — storage-budget compliance. Also cross-checks that every
// materialized artifact has its payload file on disk. Durable store
// directories (store.manifest + payloads/, written with --store-dir /
// RuntimeOptions::store_dir) get the full history<->store consistency
// audit instead of the per-file check.
//
// Usage:
//   hyppo_lint <catalog-dir | history-file> [options]
//     --budget <bytes>   also enforce the storage budget
//     --no-roundtrip     skip the serialize/deserialize round-trip check
//     --quiet            print only the summary line
//
// Exit codes: 0 clean (warnings allowed), 1 errors found, 2 usage/IO.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>

#include "analysis/verifier.h"
#include "core/history_io.h"
#include "ml/registry.h"
#include "storage/disk_store.h"

namespace {

namespace fs = std::filesystem;

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <catalog-dir | history-file> "
               "[--budget <bytes>] [--no-roundtrip] [--quiet]\n",
               argv0);
  return 2;
}

hyppo::Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return hyppo::Status::IoError("cannot open '" + path + "'");
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (!in.good() && !in.eof()) {
    return hyppo::Status::IoError("error while reading '" + path + "'");
  }
  return bytes;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return Usage(argv[0]);
  }
  const std::string target = argv[1];
  int64_t budget_bytes = -1;
  bool roundtrip = true;
  bool quiet = false;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--budget") == 0 && i + 1 < argc) {
      budget_bytes = std::strtoll(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--no-roundtrip") == 0) {
      roundtrip = false;
    } else if (std::strcmp(argv[i], "--quiet") == 0) {
      quiet = true;
    } else {
      return Usage(argv[0]);
    }
  }

  // Accept a catalog directory (artifacts/<name>.bin layout), a durable
  // store directory (store.manifest + payloads/, written by the tiered
  // disk store), or a bare history file.
  std::string history_path = target;
  std::string artifacts_dir;
  bool is_store_dir = false;
  if (fs::is_directory(history_path)) {
    is_store_dir = fs::exists(fs::path(target) / "store.manifest");
    if (!is_store_dir) {
      artifacts_dir = (fs::path(target) / "artifacts").string();
    }
    history_path = (fs::path(target) / "history.hyppo").string();
  }
  hyppo::Result<std::string> bytes = ReadFile(history_path);
  if (!bytes.ok()) {
    std::fprintf(stderr, "hyppo_lint: %s\n",
                 bytes.status().ToString().c_str());
    return 2;
  }
  hyppo::Result<hyppo::core::History> history =
      hyppo::core::DeserializeHistory(*bytes);
  if (!history.ok()) {
    std::fprintf(stderr, "hyppo_lint: cannot parse '%s': %s\n",
                 history_path.c_str(), history.status().ToString().c_str());
    return 2;
  }

  hyppo::analysis::Verifier::Options options;
  options.check_roundtrip = roundtrip;
  const hyppo::analysis::Verifier verifier(options);
  const hyppo::core::Dictionary dictionary =
      hyppo::core::Dictionary::FromRegistry(
          hyppo::ml::OperatorRegistry::Global());
  hyppo::analysis::AnalysisReport report =
      verifier.VerifyHistory(*history, &dictionary, budget_bytes);

  // Store-dir layout: open the disk store (recovering its manifest) and
  // run the full history<->store consistency check — entry presence,
  // charged-size agreement, orphans, and used_bytes accounting.
  if (is_store_dir) {
    hyppo::storage::DiskArtifactStore store(target);
    if (!store.init_status().ok()) {
      std::fprintf(stderr, "hyppo_lint: cannot open store '%s': %s\n",
                   target.c_str(),
                   store.init_status().ToString().c_str());
      return 2;
    }
    report.Merge(verifier.CheckStoreConsistency(*history, store));
  }

  // Catalog-level check: a materialized artifact without its payload file
  // cannot actually be loaded by a plan.
  if (!artifacts_dir.empty()) {
    for (hyppo::NodeId v : history->MaterializedArtifacts()) {
      const std::string& name = history->graph().artifact(v).name;
      if (!fs::exists(fs::path(artifacts_dir) / (name + ".bin"))) {
        report.AddError("catalog.missing-payload",
                        "materialized artifact '" + name +
                            "' has no payload file under " + artifacts_dir,
                        hyppo::analysis::EntityKind::kNode, v);
      }
    }
  }

  if (!quiet && !report.diagnostics().empty()) {
    std::fputs(report.ToString().c_str(), stdout);
  }
  std::printf("%s: %d artifacts, %d tasks: %s\n", history_path.c_str(),
              history->num_artifacts(), history->num_tasks(),
              report.Summary().c_str());
  return report.ok() ? 0 : 1;
}
